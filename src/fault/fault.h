// Deterministic fault injection for the synthesis engine: a seedable
// FaultPlan describes *which* failure to provoke and *when* (node-budget
// trips, computed-cache poison-eviction, synthetic allocation failure at the
// unique-table growth site, deadline expiry at an exact BDD step, worker
// death), and a per-job JobFaultInjector replays that plan through the
// BddFaultInjector hooks of the worker's manager. All randomness is derived
// from (plan.seed, job_id) only, never from scheduling, so the same plan
// produces the same faults — and the same reports — on one worker or eight.
#ifndef BIDEC_FAULT_FAULT_H
#define BIDEC_FAULT_FAULT_H

#include <cstdint>
#include <string>
#include <vector>

#include "bdd/bdd.h"

namespace bidec {

enum class FaultPoint : std::uint8_t {
  kNodeBudgetTrip,   ///< BddAbortError after `at` node allocations
  kCachePoison,      ///< drop computed-cache inserts with `probability`
  kUniqueGrowAlloc,  ///< std::bad_alloc at the `at`-th unique-table growth
  kDeadlineAtStep,   ///< BddAbortError at recursive step `at` (deterministic
                     ///< stand-in for wall-clock deadline expiry)
  kWorkerDeath,      ///< kill the executing worker thread at step `at`
  kProofCorrupt,     ///< corrupt the SAT engine's first UNSAT verdict clause
                     ///< before the proof checker sees it; under
                     ///< --proof=check this must surface as an engine-bug
                     ///< report, never a decomposition (the acceptance test
                     ///< for the checker actually gating results)
};

[[nodiscard]] const char* to_string(FaultPoint point) noexcept;

/// One fault to inject. `at` is the trigger threshold in the unit natural
/// to the point (allocations, growth events, or recursive steps); `times`
/// bounds how often the fault fires per job (so a plan can kill the first
/// attempt of a job and let its degraded retry through).
struct FaultSpec {
  FaultPoint point = FaultPoint::kDeadlineAtStep;
  std::uint64_t at = 0;
  double probability = 1.0;  ///< kCachePoison: per-insert drop probability
  int job = -1;              ///< restrict to this job id (-1 = every job)
  int worker = -1;           ///< kWorkerDeath: this worker only (-1 = any)
  unsigned times = 1;        ///< max firings per job (0 = unlimited)
};

/// A reproducible failure scenario: a seed plus the faults to inject.
/// Immutable while an engine run is in flight; every worker derives its own
/// injector state from it, so the plan itself is shared without locking.
struct FaultPlan {
  std::uint64_t seed = 0;
  std::vector<FaultSpec> faults;

  [[nodiscard]] bool empty() const noexcept { return faults.empty(); }
  FaultPlan& add(FaultSpec spec) {
    faults.push_back(spec);
    return *this;
  }
  /// Human-readable one-liner for logs: "seed=7: deadline_at_step@500, ...".
  [[nodiscard]] std::string to_string() const;
};

/// Thrown out of the BDD substrate by a kWorkerDeath fault. Deliberately
/// NOT derived from std::exception: it must fly through the engine's
/// per-job error handling (which catches BddAbortError and std::exception)
/// and reach the worker loop, exactly like an uncatchable crash would kill
/// the thread — except the queue survives and the test can observe it.
struct WorkerDeathFault {
  std::size_t worker = 0;
  std::uint64_t at_step = 0;
};

/// Replays a FaultPlan for one job through the manager hooks. Install with
/// BddManager::set_fault_injector; the injector must outlive the job (the
/// engine keeps it on the worker's stack). State (firing counters, RNG)
/// persists across the job's retry attempts, so a `times = 1` fault kills
/// attempt one and lets the degraded retry finish.
class JobFaultInjector final : public BddFaultInjector {
 public:
  /// `allow_worker_death` is cleared on the engine's post-join recovery
  /// pass, where there is no pool left to kill.
  JobFaultInjector(const FaultPlan& plan, std::size_t job_id,
                   std::size_t worker_id, bool allow_worker_death = true);

  void on_step(std::uint64_t steps) override;
  void on_node_alloc(std::size_t live_nodes) override;
  bool poison_cache_insert() noexcept override;
  void on_unique_table_grow(unsigned var, std::size_t new_buckets) override;

  /// Total faults fired so far (all points), for assertions in tests.
  [[nodiscard]] std::uint64_t fired() const noexcept { return fired_; }

 private:
  struct Armed {
    FaultSpec spec;
    std::uint64_t count = 0;  ///< events seen at this point (allocs, grows)
    unsigned fires = 0;       ///< times this fault has fired for this job
  };

  [[nodiscard]] bool should_fire(Armed& a);
  [[nodiscard]] double next_uniform() noexcept;

  std::vector<Armed> armed_;  ///< plan entries that apply to this job
  std::size_t worker_id_;
  std::uint64_t rng_;  ///< splitmix64 state, seeded from (seed, job_id)
  std::uint64_t fired_ = 0;
  bool allow_worker_death_;
};

}  // namespace bidec

#endif  // BIDEC_FAULT_FAULT_H
