#include "fault/fault.h"

#include <new>

namespace bidec {

namespace {

// splitmix64: tiny, seedable, and stateless apart from one counter — the
// right shape for "derive an independent deterministic stream per job".
std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

const char* to_string(FaultPoint point) noexcept {
  switch (point) {
    case FaultPoint::kNodeBudgetTrip: return "node_budget_trip";
    case FaultPoint::kCachePoison: return "cache_poison";
    case FaultPoint::kUniqueGrowAlloc: return "unique_grow_alloc";
    case FaultPoint::kDeadlineAtStep: return "deadline_at_step";
    case FaultPoint::kWorkerDeath: return "worker_death";
    case FaultPoint::kProofCorrupt: return "proof_corrupt";
  }
  return "unknown";
}

std::string FaultPlan::to_string() const {
  std::string s = "seed=" + std::to_string(seed) + ":";
  for (const FaultSpec& f : faults) {
    s += " ";
    s += bidec::to_string(f.point);
    s += "@" + std::to_string(f.at);
    if (f.job >= 0) s += " job=" + std::to_string(f.job);
    if (f.worker >= 0) s += " worker=" + std::to_string(f.worker);
  }
  return s;
}

JobFaultInjector::JobFaultInjector(const FaultPlan& plan, std::size_t job_id,
                                   std::size_t worker_id, bool allow_worker_death)
    : worker_id_(worker_id),
      // Mix the job id into the seed so every job draws an independent
      // stream; the worker id is deliberately NOT mixed in — determinism
      // must not depend on which worker picked the job up.
      rng_(plan.seed ^ (0x9e3779b97f4a7c15ull * (job_id + 1))),
      allow_worker_death_(allow_worker_death) {
  for (const FaultSpec& spec : plan.faults) {
    if (spec.job >= 0 && static_cast<std::size_t>(spec.job) != job_id) continue;
    armed_.push_back(Armed{spec, 0, 0});
  }
}

bool JobFaultInjector::should_fire(Armed& a) {
  if (a.spec.times != 0 && a.fires >= a.spec.times) return false;
  ++a.fires;
  ++fired_;
  return true;
}

double JobFaultInjector::next_uniform() noexcept {
  return static_cast<double>(splitmix64(rng_) >> 11) * 0x1.0p-53;
}

void JobFaultInjector::on_step(std::uint64_t steps) {
  for (Armed& a : armed_) {
    switch (a.spec.point) {
      case FaultPoint::kDeadlineAtStep:
        if (steps >= a.spec.at && should_fire(a)) {
          throw BddAbortError(
              "BDD operation aborted: deadline exceeded (injected at step " +
              std::to_string(a.spec.at) + ")");
        }
        break;
      case FaultPoint::kWorkerDeath:
        if (a.spec.worker >= 0 &&
            static_cast<std::size_t>(a.spec.worker) != worker_id_) {
          break;
        }
        if (allow_worker_death_ && steps >= a.spec.at && should_fire(a)) {
          throw WorkerDeathFault{worker_id_, steps};
        }
        break;
      default: break;
    }
  }
}

void JobFaultInjector::on_node_alloc(std::size_t) {
  for (Armed& a : armed_) {
    if (a.spec.point != FaultPoint::kNodeBudgetTrip) continue;
    if (++a.count > a.spec.at && should_fire(a)) {
      throw BddAbortError(
          "BDD operation aborted: node budget exceeded (injected after " +
          std::to_string(a.spec.at) + " allocations)");
    }
  }
}

bool JobFaultInjector::poison_cache_insert() noexcept {
  bool poisoned = false;
  for (Armed& a : armed_) {
    if (a.spec.point != FaultPoint::kCachePoison) continue;
    if (next_uniform() < a.spec.probability && should_fire(a)) poisoned = true;
  }
  return poisoned;
}

void JobFaultInjector::on_unique_table_grow(unsigned, std::size_t) {
  for (Armed& a : armed_) {
    if (a.spec.point != FaultPoint::kUniqueGrowAlloc) continue;
    if (++a.count > a.spec.at && should_fire(a)) throw std::bad_alloc{};
  }
}

}  // namespace bidec
