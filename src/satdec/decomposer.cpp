#include "satdec/decomposer.h"

#include <algorithm>
#include <cassert>
#include <optional>
#include <span>
#include <stdexcept>
#include <utility>

namespace bidec::satdec {

namespace {

std::string default_name(const char* prefix, std::size_t i) {
  std::string s = prefix;
  s += std::to_string(i);
  return s;
}

std::vector<unsigned> mask_vars(std::uint64_t mask) {
  std::vector<unsigned> vars;
  for (unsigned v = 0; v < kMaxSatDecVars; ++v) {
    if (mask & (std::uint64_t{1} << v)) vars.push_back(v);
  }
  return vars;
}

}  // namespace

SatDecomposer::SatDecomposer(unsigned num_inputs,
                             std::vector<std::string> input_names,
                             SatDecOptions options)
    : options_(std::move(options)), budget_(options_, stats_) {
  if (num_inputs > kMaxSatDecVars) {
    throw std::runtime_error("satdec: more than 64 inputs is unsupported");
  }
  options_.tt_threshold = std::clamp(options_.tt_threshold, 2u, 16u);
  var_signal_.reserve(num_inputs);
  for (unsigned v = 0; v < num_inputs; ++v) {
    std::string name =
        v < input_names.size() ? input_names[v] : default_name("x", v);
    var_signal_.push_back(net_.add_input(std::move(name)));
  }
}

SignalId SatDecomposer::add_output(const std::string& name, FuncPtr q,
                                   FuncPtr r) {
  const FormulaResult res =
      decompose_formula(q, r, 0, options_.weak_budget);
  net_.add_output(name, res.signal);
  return res.signal;
}

void SatDecomposer::finish() {
  if (options_.absorb_inverters) net_.absorb_inverters();
}

// ---------------------------------------------------------------------------
// Formula level
// ---------------------------------------------------------------------------

bool SatDecomposer::unsatisfiable(const FuncPtr& f) {
  if (f->kind == FuncKind::kConst) return !f->value;
  BudgetedSolver bs(budget_);
  const std::vector<sat::Lit> frame =
      bs.funcs().fresh_frame(static_cast<unsigned>(var_signal_.size()));
  const sat::Lit lit = bs.funcs().encode(f, frame, Polarity::kPos);
  return bs.solve({lit}) == sat::Solver::Result::kUnsat;
}

bool SatDecomposer::usefulness_sat(const FuncPtr& care, const FuncPtr& shadow) {
  BudgetedSolver bs(budget_);
  const std::vector<sat::Lit> frame =
      bs.funcs().fresh_frame(static_cast<unsigned>(var_signal_.size()));
  const sat::Lit care_lit = bs.funcs().encode(care, frame, Polarity::kPos);
  const sat::Lit shadow_lit = bs.funcs().encode(shadow, frame, Polarity::kNeg);
  return bs.solve({care_lit, ~shadow_lit}) == sat::Solver::Result::kSat;
}

SatDecomposer::FormulaResult SatDecomposer::decompose_formula(
    const FuncPtr& q, const FuncPtr& r, unsigned depth, unsigned weak_left) {
  ++stats_.formula_calls;
  if (depth > options_.max_depth) {
    throw SatDecAbortError("satdec: recursion depth exceeded");
  }
  budget_.check_deadline();

  const std::vector<unsigned> vars = mask_vars(q->support | r->support);
  if (vars.size() <= options_.tt_threshold) {
    const TtIsf t = materialize(q, r, vars);
    return FormulaResult{decompose_tt(t).signal};
  }

  // Constant-compatible intervals (an empty on- or off-set can surface from
  // the B-side derivations long before the support shrinks).
  if (unsatisfiable(q)) return FormulaResult{net_.get_const(false)};
  if (unsatisfiable(r)) return FormulaResult{net_.get_const(true)};

  if (options_.use_strong) {
    std::optional<SatBestGrouping> best;
    try {
      best = sat_find_best_grouping(
          q, r, static_cast<unsigned>(var_signal_.size()), vars, budget_);
    } catch (const ExpansionCappedError&) {
      // Derived intervals keep existentials in positive positions, so this
      // is not expected; treat it as "no strong grouping found".
      best = std::nullopt;
    }
    if (best) return strong_formula(q, r, *best, depth);
  }

  FormulaResult weak;
  if (try_weak_formula(q, r, vars, depth, weak_left, weak)) return weak;

  return shannon_formula(q, r, vars.front(), depth);
}

SatDecomposer::FormulaResult SatDecomposer::strong_formula(
    const FuncPtr& q, const FuncPtr& r, const SatBestGrouping& best,
    unsigned depth) {
  const std::uint64_t am = mask_of(best.grouping.xa);
  const std::uint64_t bm = mask_of(best.grouping.xb);

  if (best.gate == DecGate::kOr) {
    ++stats_.strong_or;
    // Theorem 3: A = (Ex_XB (Q & Ex_XA R), Ex_XB R).
    const FuncPtr qa = f_exists(f_and(q, f_exists(r, am)), bm);
    const FuncPtr ra = f_exists(r, bm);
    const FormulaResult a =
        decompose_formula(qa, ra, depth + 1, options_.weak_budget);
    // Theorem 4 with the realized component: B = (Ex_XA (Q - fa), Ex_XA R).
    const FuncPtr fa = f_cone(net_, a.signal);
    const FuncPtr qb = f_exists(f_and(q, f_not(fa)), am);
    const FuncPtr rb = f_exists(r, am);
    const FormulaResult b =
        decompose_formula(qb, rb, depth + 1, options_.weak_budget);
    return FormulaResult{net_.add_or(a.signal, b.signal)};
  }

  ++stats_.strong_and;
  // AND duals (interval complementation of the OR formulas).
  const FuncPtr qa = f_exists(q, bm);
  const FuncPtr ra = f_exists(f_and(r, f_exists(q, am)), bm);
  const FormulaResult a =
      decompose_formula(qa, ra, depth + 1, options_.weak_budget);
  const FuncPtr fa = f_cone(net_, a.signal);
  const FuncPtr qb = f_exists(q, am);
  const FuncPtr rb = f_exists(f_and(r, fa), am);
  const FormulaResult b =
      decompose_formula(qb, rb, depth + 1, options_.weak_budget);
  return FormulaResult{net_.add_and(a.signal, b.signal)};
}

bool SatDecomposer::try_weak_formula(const FuncPtr& q, const FuncPtr& r,
                                     const std::vector<unsigned>& vars,
                                     unsigned depth, unsigned weak_left,
                                     FormulaResult& out) {
  if (weak_left == 0) return false;
  for (const unsigned v : vars) {
    const std::uint64_t vbit = std::uint64_t{1} << v;
    // Ex_v over a singleton is the two-cofactor disjunction — no quantifier
    // node needed, so the negative-polarity query below never expands more
    // than the nested existentials already inside q/r.
    const FuncPtr er =
        f_or(f_cofactor(r, v, false), f_cofactor(r, v, true));
    bool or_useful = false;
    try {
      or_useful = usefulness_sat(q, er);
    } catch (const ExpansionCappedError&) {
    }
    if (or_useful) {
      ++stats_.weak_or;
      // Weak OR (Table 1): A = (Q & Ex_XA R, R); B as in the strong case.
      const FormulaResult a =
          decompose_formula(f_and(q, er), r, depth + 1, weak_left - 1);
      const FuncPtr fa = f_cone(net_, a.signal);
      const FuncPtr qb = f_exists(f_and(q, f_not(fa)), vbit);
      const FuncPtr rb = f_exists(r, vbit);
      const FormulaResult b =
          decompose_formula(qb, rb, depth + 1, options_.weak_budget);
      out = FormulaResult{net_.add_or(a.signal, b.signal)};
      return true;
    }

    const FuncPtr eq =
        f_or(f_cofactor(q, v, false), f_cofactor(q, v, true));
    bool and_useful = false;
    try {
      and_useful = usefulness_sat(r, eq);
    } catch (const ExpansionCappedError&) {
    }
    if (and_useful) {
      ++stats_.weak_and;
      const FormulaResult a =
          decompose_formula(q, f_and(r, eq), depth + 1, weak_left - 1);
      const FuncPtr fa = f_cone(net_, a.signal);
      const FuncPtr qb = f_exists(q, vbit);
      const FuncPtr rb = f_exists(f_and(r, fa), vbit);
      const FormulaResult b =
          decompose_formula(qb, rb, depth + 1, options_.weak_budget);
      out = FormulaResult{net_.add_and(a.signal, b.signal)};
      return true;
    }
  }
  return false;
}

SatDecomposer::FormulaResult SatDecomposer::shannon_formula(const FuncPtr& q,
                                                            const FuncPtr& r,
                                                            unsigned var,
                                                            unsigned depth) {
  ++stats_.shannon_steps;
  const FormulaResult lo =
      decompose_formula(f_cofactor(q, var, false), f_cofactor(r, var, false),
                        depth + 1, options_.weak_budget);
  const FormulaResult hi =
      decompose_formula(f_cofactor(q, var, true), f_cofactor(r, var, true),
                        depth + 1, options_.weak_budget);
  const SignalId sv = var_signal_[var];
  return FormulaResult{net_.add_or(net_.add_and(net_.add_not(sv), lo.signal),
                                   net_.add_and(sv, hi.signal))};
}

// ---------------------------------------------------------------------------
// Materialization: formula -> truth table by projected AllSAT enumeration
// ---------------------------------------------------------------------------

TruthTable SatDecomposer::enumerate_models(const FuncPtr& f,
                                           const std::vector<unsigned>& vars) {
  const unsigned k = static_cast<unsigned>(vars.size());
  if (f->kind == FuncKind::kConst) {
    return f->value ? TruthTable::ones(k) : TruthTable::zeros(k);
  }
  // Truth-table leaves re-map directly (the common case once a Shannon
  // cofactor has folded into a kTt node).
  if (f->kind == FuncKind::kTt) {
    std::vector<unsigned> pos(f->tt_vars.size(), 0);
    for (unsigned local = 0; local < f->tt_vars.size(); ++local) {
      const auto it = std::find(vars.begin(), vars.end(), f->tt_vars[local]);
      pos[local] =
          it == vars.end() ? k : static_cast<unsigned>(it - vars.begin());
    }
    return TruthTable::from_function(k, [&](std::uint64_t m) {
      std::uint64_t src = 0;
      for (unsigned local = 0; local < pos.size(); ++local) {
        if (pos[local] < k && ((m >> pos[local]) & 1u)) {
          src |= std::uint64_t{1} << local;
        }
      }
      return f->table.get(src);
    });
  }

  BudgetedSolver bs(budget_);
  const std::vector<sat::Lit> frame =
      bs.funcs().fresh_frame(static_cast<unsigned>(var_signal_.size()));
  const sat::Lit lit = bs.funcs().encode(f, frame, Polarity::kPos);

  TruthTable table = TruthTable::zeros(k);
  while (bs.solve({lit}) == sat::Solver::Result::kSat) {
    std::uint64_t idx = 0;
    std::vector<sat::Lit> block;
    block.reserve(k);
    for (unsigned i = 0; i < k; ++i) {
      const bool bit = bs.solver().model_value(frame[vars[i]]);
      if (bit) idx |= std::uint64_t{1} << i;
      block.push_back(bit ? ~frame[vars[i]] : frame[vars[i]]);
    }
    table.set(idx, true);
    ++stats_.enumerated_models;
    if (!bs.solver().add_clause(std::move(block))) break;
  }
  return table;
}

TtIsf SatDecomposer::materialize(const FuncPtr& q, const FuncPtr& r,
                                 const std::vector<unsigned>& vars) {
  ++stats_.materializations;
  TtIsf t{enumerate_models(q, vars), enumerate_models(r, vars), vars};
  if (!(t.q & t.r).is_zero()) {
    throw std::runtime_error(
        "satdec: inconsistent interval (on-set and off-set overlap)");
  }
  return t;
}

// ---------------------------------------------------------------------------
// Truth-table level (complete mirror of BiDecomposer::bidecompose)
// ---------------------------------------------------------------------------

namespace {

/// Area cost of a two-variable function (same table as BiDecomposer).
double tt2_cost(unsigned tt) {
  switch (tt) {
    case 0x0: case 0xF: return 0.0;
    case 0xA: case 0xC: return 0.0;
    case 0x5: case 0x3: return 1.0;
    case 0x7: case 0x1: return 2.0;
    case 0x9: return 5.0;
    case 0x8: case 0xE: return 3.0;
    case 0x6: return 5.0;
    case 0x2: case 0x4: return 4.0;
    case 0xB: case 0xD: return 4.0;
    default: return 1e9;
  }
}

std::string memo_key(const TtIsf& t) {
  std::string key = t.q.to_binary_string();
  key += '/';
  key += t.r.to_binary_string();
  for (const unsigned v : t.vars) {
    key += ',';
    key += std::to_string(v);
  }
  return key;
}

}  // namespace

SatDecomposer::TtResult SatDecomposer::tt_combine(DecGate gate,
                                                  const TtResult& a,
                                                  const TtResult& b) {
  switch (gate) {
    case DecGate::kOr:
      return TtResult{net_.add_or(a.signal, b.signal), a.func | b.func};
    case DecGate::kAnd:
      return TtResult{net_.add_and(a.signal, b.signal), a.func & b.func};
    case DecGate::kExor:
      return TtResult{net_.add_xor(a.signal, b.signal), a.func ^ b.func};
  }
  throw std::logic_error("tt_combine: unreachable");
}

SatDecomposer::TtResult SatDecomposer::tt_terminal(
    const TtIsf& t, std::span<const unsigned> support) {
  ++stats_.terminal_cases;
  const unsigned width = t.q.num_vars();

  if (support.empty()) {
    // Constant interval: pick 0 unless the on-set forces 1.
    const bool one = !t.q.is_zero();
    return TtResult{net_.get_const(one),
                    one ? TruthTable::ones(width) : TruthTable::zeros(width)};
  }

  const unsigned va = support[0];
  const unsigned vb = support.size() >= 2 ? support[1] : 0;

  unsigned q_tt = 0, r_tt = 0;
  for (unsigned m = 0; m < 4; ++m) {
    // Build the minterm with bit va = m&1, bit vb = m&2 (vb wins when the
    // two coincide — same resolution as the BDD terminal case).
    std::uint64_t idx = 0;
    if (m & 1u) idx |= std::uint64_t{1} << va;
    idx &= ~(std::uint64_t{1} << vb);
    if (m & 2u) idx |= std::uint64_t{1} << vb;
    if (t.q.get(idx)) q_tt |= 1u << m;
    if (t.r.get(idx)) r_tt |= 1u << m;
  }

  unsigned best_tt = 0;
  double best_cost = 1e18;
  for (unsigned tt = 0; tt < 16; ++tt) {
    if ((q_tt & ~tt) != 0 || (tt & r_tt) != 0) continue;
    double cost = tt2_cost(tt);
    if (!options_.use_exor && (tt == 0x6 || tt == 0x9)) cost = 11.0;
    if (cost < best_cost) {
      best_cost = cost;
      best_tt = tt;
    }
  }
  assert(best_cost < 1e18);

  const SignalId sa = var_signal_[t.vars[va]];
  const SignalId sb = var_signal_[t.vars[vb]];
  SignalId sig = kNoSignal;
  switch (best_tt) {
    case 0x0: sig = net_.get_const(false); break;
    case 0xF: sig = net_.get_const(true); break;
    case 0xA: sig = sa; break;
    case 0x5: sig = net_.add_not(sa); break;
    case 0xC: sig = sb; break;
    case 0x3: sig = net_.add_not(sb); break;
    case 0x8: sig = net_.add_and(sa, sb); break;
    case 0xE: sig = net_.add_or(sa, sb); break;
    case 0x6:
      sig = options_.use_exor
                ? net_.add_xor(sa, sb)
                : net_.add_or(net_.add_and(sa, net_.add_not(sb)),
                              net_.add_and(net_.add_not(sa), sb));
      break;
    case 0x7: sig = net_.add_not(net_.add_and(sa, sb)); break;
    case 0x1: sig = net_.add_not(net_.add_or(sa, sb)); break;
    case 0x9:
      sig = options_.use_exor
                ? net_.add_not(net_.add_xor(sa, sb))
                : net_.add_or(net_.add_and(sa, sb),
                              net_.add_and(net_.add_not(sa), net_.add_not(sb)));
      break;
    case 0x2: sig = net_.add_and(sa, net_.add_not(sb)); break;
    case 0x4: sig = net_.add_and(net_.add_not(sa), sb); break;
    case 0xB: sig = net_.add_or(sa, net_.add_not(sb)); break;
    case 0xD: sig = net_.add_or(net_.add_not(sa), sb); break;
    default: throw std::logic_error("tt_terminal: unreachable");
  }

  const TruthTable func =
      TruthTable::from_function(width, [&](std::uint64_t m) {
        const unsigned a_bit = static_cast<unsigned>((m >> va) & 1u);
        const unsigned b_bit = static_cast<unsigned>((m >> vb) & 1u);
        return ((best_tt >> (a_bit + 2u * b_bit)) & 1u) != 0;
      });
  return TtResult{sig, func};
}

SatDecomposer::TtResult SatDecomposer::decompose_tt(const TtIsf& isf_in) {
  ++stats_.tt_calls;
  budget_.check_deadline();

  TtIsf t = isf_in;
  tt_remove_inessential(t);

  const std::string key = memo_key(t);
  if (const auto it = tt_memo_.find(key); it != tt_memo_.end()) {
    ++stats_.memo_hits;
    return it->second;
  }

  const std::vector<unsigned> support = tt_support(t);

  TtResult result;
  if (support.size() <= 2) {
    result = tt_terminal(t, support);
  } else {
    std::optional<TtBestGrouping> best;
    if (options_.use_strong) {
      best = tt_find_best_grouping(t, support, options_);
    }
    if (best) {
      const std::span<const unsigned> xa(best->grouping.xa);
      const std::span<const unsigned> xb(best->grouping.xb);
      switch (best->gate) {
        case DecGate::kOr: {
          ++stats_.strong_or;
          const TtResult a = decompose_tt(tt_derive_or_a(t, xa, xb));
          const TtResult b = decompose_tt(tt_derive_or_b(t, a.func, xa));
          result = tt_combine(DecGate::kOr, a, b);
          break;
        }
        case DecGate::kAnd: {
          ++stats_.strong_and;
          const TtResult a = decompose_tt(tt_derive_and_a(t, xa, xb));
          const TtResult b = decompose_tt(tt_derive_and_b(t, a.func, xa));
          result = tt_combine(DecGate::kAnd, a, b);
          break;
        }
        case DecGate::kExor: {
          ++stats_.strong_exor;
          const auto components = tt_check_exor(t, xa, xb);
          if (!components) {
            throw std::logic_error("satdec: EXOR grouping not decomposable");
          }
          const TtResult a = decompose_tt(components->a);
          const TtResult b = decompose_tt(components->b);
          result = tt_combine(DecGate::kExor, a, b);
          break;
        }
      }
    } else if (const auto weak = tt_group_weak(t, support)) {
      const std::span<const unsigned> xa(weak->xa);
      if (weak->gate == DecGate::kOr) {
        ++stats_.weak_or;
        const TtResult a = decompose_tt(tt_derive_weak_or_a(t, xa));
        const TtResult b = decompose_tt(tt_derive_or_b(t, a.func, xa));
        result = tt_combine(DecGate::kOr, a, b);
      } else {
        ++stats_.weak_and;
        const TtResult a = decompose_tt(tt_derive_weak_and_a(t, xa));
        const TtResult b = decompose_tt(tt_derive_and_b(t, a.func, xa));
        result = tt_combine(DecGate::kAnd, a, b);
      }
    } else {
      ++stats_.shannon_steps;
      const unsigned v = support.front();
      const TtResult lo = decompose_tt(
          TtIsf{t.q.cofactor(v, false), t.r.cofactor(v, false), t.vars});
      const TtResult hi = decompose_tt(
          TtIsf{t.q.cofactor(v, true), t.r.cofactor(v, true), t.vars});
      const SignalId sv = var_signal_[t.vars[v]];
      const TruthTable proj = TruthTable::projection(t.q.num_vars(), v);
      result = TtResult{
          net_.add_or(net_.add_and(net_.add_not(sv), lo.signal),
                      net_.add_and(sv, hi.signal)),
          (~proj & lo.func) | (proj & hi.func)};
    }
  }

  // Theorem-6 self-check: Q <= f <= !R. Cheap here and catches any engine
  // bug before a wrong gate can leave the TT domain.
  if (!(t.q - result.func).is_zero() || !(result.func & t.r).is_zero()) {
    throw std::logic_error("satdec: derived component violates its interval");
  }
  tt_memo_.emplace(key, result);
  return result;
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

SatFlowResult synthesize_satdec(const PlaFile& pla,
                                const SatDecOptions& options) {
  std::vector<std::string> names;
  names.reserve(pla.num_inputs);
  for (unsigned i = 0; i < pla.num_inputs; ++i) {
    names.push_back(pla.input_name(i));
  }
  SatDecomposer dec(pla.num_inputs, std::move(names), options);
  for (unsigned o = 0; o < pla.num_outputs; ++o) {
    const FuncPtr on = f_cover(pla, o, '1');
    FuncPtr q, r;
    switch (pla.type) {
      case PlaFile::Type::kF:
        q = on;
        r = f_not(on);
        break;
      case PlaFile::Type::kFD: {
        const FuncPtr dc = f_cover(pla, o, '-');
        q = f_and(on, f_not(dc));
        r = f_not(f_or(on, dc));
        break;
      }
      case PlaFile::Type::kFR: {
        const FuncPtr off = f_cover(pla, o, '0');
        q = f_and(on, f_not(off));
        r = off;
        break;
      }
    }
    dec.add_output(pla.output_name(o), std::move(q), std::move(r));
  }
  dec.finish();
  return SatFlowResult{dec.take_netlist(), dec.stats()};
}

SatFlowResult synthesize_satdec(const Netlist& source,
                                const SatDecOptions& options) {
  std::vector<std::string> names;
  names.reserve(source.num_inputs());
  for (std::size_t i = 0; i < source.num_inputs(); ++i) {
    names.push_back(source.input_name(i));
  }
  SatDecomposer dec(static_cast<unsigned>(source.num_inputs()),
                    std::move(names), options);
  for (std::size_t o = 0; o < source.num_outputs(); ++o) {
    const FuncPtr cone = f_cone(source, source.output_signal(o));
    dec.add_output(source.output_name(o), cone, f_not(cone));
  }
  dec.finish();
  return SatFlowResult{dec.take_netlist(), dec.stats()};
}

}  // namespace bidec::satdec
