// Dense truth-table ISF kernel: the terminal domain of the SAT
// decomposition engine. Once a subproblem's support fits
// SatDecOptions::tt_threshold the formula pair is enumerated into
// (TruthTable q, TruthTable r) and the paper's complete machinery — the
// Theorem-1 OR/AND checks, the Theorem-2/Fig.-4 EXOR check, the Table-1
// weak gains, the Fig.-5/6 grouping greedy and all component derivations —
// runs bitwise on 64 minterms per word. These are straight ports of
// src/bidec/{check,derive,exor_check,grouping}.cpp with BDD operations
// replaced by TruthTable operations; no BddManager is involved.
//
// Index spaces: a TtIsf's tables live in a *local* variable space;
// `vars[local]` maps back to the engine's global input index. All functions
// in this header take local indices.
#ifndef BIDEC_SATDEC_TT_ISF_H
#define BIDEC_SATDEC_TT_ISF_H

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "satdec/options.h"
#include "tt/truth_table.h"

namespace bidec::satdec {

enum class DecGate : std::uint8_t { kOr, kAnd, kExor };
[[nodiscard]] const char* dec_gate_name(DecGate g);

/// A candidate grouping: private variable sets of the two components (the
/// common set is implicitly the rest of the support). Indices are local or
/// global depending on the owning context.
struct Grouping {
  std::vector<unsigned> xa;
  std::vector<unsigned> xb;

  [[nodiscard]] bool empty() const noexcept { return xa.empty() || xb.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return xa.size() + xb.size(); }
  [[nodiscard]] std::size_t imbalance() const noexcept {
    return xa.size() > xb.size() ? xa.size() - xb.size() : xb.size() - xa.size();
  }
};

/// Incompletely specified function as an (on-set, off-set) truth-table pair
/// over a local variable space.
struct TtIsf {
  TruthTable q{0};
  TruthTable r{0};
  std::vector<unsigned> vars;  ///< local index -> global input index
};

/// Local indices at least one of the two tables depends on.
[[nodiscard]] std::vector<unsigned> tt_support(const TtIsf& f);

/// Quantify out every variable whose care sets never disagree across its
/// cofactors ((Ex_v q) & (Ex_v r) == 0): the RemoveInessentialVariables step.
void tt_remove_inessential(TtIsf& f);

// --- decomposability checks (Theorems 1 and 2, Fig. 4) --------------------

[[nodiscard]] bool tt_or_decomposable(const TtIsf& f, std::span<const unsigned> xa,
                                      std::span<const unsigned> xb);
[[nodiscard]] bool tt_and_decomposable(const TtIsf& f, std::span<const unsigned> xa,
                                       std::span<const unsigned> xb);
[[nodiscard]] bool tt_exor_decomposable_11(const TtIsf& f, unsigned a, unsigned b);

struct TtExorComponents {
  TtIsf a;
  TtIsf b;
};
/// Constructive Fig.-4 check: component intervals on success, nullopt when a
/// propagation conflict proves EXOR-non-decomposability.
[[nodiscard]] std::optional<TtExorComponents> tt_check_exor(
    const TtIsf& f, std::span<const unsigned> xa, std::span<const unsigned> xb);

// --- weak decomposition (Table 1) -----------------------------------------

/// Minterms that become don't-cares for component A (0 = not useful).
[[nodiscard]] std::uint64_t tt_weak_or_gain(const TtIsf& f,
                                            std::span<const unsigned> xa);
[[nodiscard]] std::uint64_t tt_weak_and_gain(const TtIsf& f,
                                             std::span<const unsigned> xa);

// --- component derivation (Theorems 3 and 4 and their duals) --------------

[[nodiscard]] TtIsf tt_derive_or_a(const TtIsf& f, std::span<const unsigned> xa,
                                   std::span<const unsigned> xb);
[[nodiscard]] TtIsf tt_derive_or_b(const TtIsf& f, const TruthTable& fa,
                                   std::span<const unsigned> xa);
[[nodiscard]] TtIsf tt_derive_and_a(const TtIsf& f, std::span<const unsigned> xa,
                                    std::span<const unsigned> xb);
[[nodiscard]] TtIsf tt_derive_and_b(const TtIsf& f, const TruthTable& fa,
                                    std::span<const unsigned> xa);
[[nodiscard]] TtIsf tt_derive_weak_or_a(const TtIsf& f,
                                        std::span<const unsigned> xa);
[[nodiscard]] TtIsf tt_derive_weak_and_a(const TtIsf& f,
                                         std::span<const unsigned> xa);

// --- grouping search (Figs. 5 and 6) --------------------------------------

struct TtBestGrouping {
  Grouping grouping;
  DecGate gate = DecGate::kOr;
};
/// Greedy private-set growth over all enabled gate kinds; the Section-7
/// score (size, balance tie-break) picks the winner. Local indices.
[[nodiscard]] std::optional<TtBestGrouping> tt_find_best_grouping(
    const TtIsf& f, std::span<const unsigned> support, const SatDecOptions& opt);

struct TtWeakGrouping {
  std::vector<unsigned> xa;
  DecGate gate = DecGate::kOr;
};
/// Best useful weak singleton by exact don't-care gain.
[[nodiscard]] std::optional<TtWeakGrouping> tt_group_weak(
    const TtIsf& f, std::span<const unsigned> support);

}  // namespace bidec::satdec

#endif  // BIDEC_SATDEC_TT_ISF_H
