// Options, statistics and abort signalling for the SAT-backed decomposition
// engine (src/satdec). The engine mirrors the paper's flow on a CDCL solver
// instead of a BDD manager: decomposability checks are two-copy SAT queries
// (the QBF bi-decomposition formulation referenced in PAPERS.md), component
// intervals are formula DAGs, and small-support subproblems are materialized
// into dense truth tables where the full grouping/derivation machinery runs
// bitwise. No BddManager is ever constructed on this path — that is the
// point: it is the rescue engine for functions whose BDDs blow the node
// budget (multipliers, Section "Escape the BDD ceiling" of ROADMAP.md).
#ifndef BIDEC_SATDEC_OPTIONS_H
#define BIDEC_SATDEC_OPTIONS_H

#include <chrono>
#include <cstdint>
#include <optional>

#include "bdd/bdd.h"
#include "proof/policy.h"
#include "sat/solver.h"

namespace bidec::satdec {

/// Thrown when the engine exceeds its conflict budget or deadline. Derives
/// from BddAbortError so the batch engine's degradation ladder treats a SAT
/// resource trip exactly like a BDD budget trip: retryable exhaustion.
class SatDecAbortError : public BddAbortError {
 public:
  explicit SatDecAbortError(const std::string& what) : BddAbortError(what) {}
};

struct SatDecOptions {
  /// Materialize subproblems into dense truth tables once their support has
  /// at most this many variables; the TT domain runs the complete grouping
  /// and derivation machinery (including EXOR) bitwise. Clamped to [2, 16].
  unsigned tt_threshold = 12;

  /// Mirror of BidecOptions::grouping_pairs for the SAT grouping search.
  unsigned grouping_pairs = 4;
  /// Mirror of BidecOptions::balance_cost.
  bool balance_cost = true;
  /// Consider strong (disjoint-support) decompositions at formula level.
  bool use_strong = true;
  /// Consider EXOR bi-decomposition in the truth-table domain. (Formula
  /// level never proposes EXOR: the Fig. 4 constructive check needs the
  /// whole care set, which plain SAT cannot enumerate cheaply.)
  bool use_exor = true;
  /// Post-process the netlist by absorbing inverters into NAND/NOR/XNOR.
  bool absorb_inverters = true;

  /// Consecutive formula-level weak steps allowed before falling back to a
  /// Shannon step (a weak-A child keeps the parent's support, so this bounds
  /// the only recursion that does not shrink the problem structurally).
  unsigned weak_budget = 4;

  /// Cap on the disjunction width when a negative-polarity existential must
  /// be expanded over its bound variables (2^k disjuncts). Exceeding the cap
  /// conservatively reports "not useful"/"not decomposable" — a quality
  /// loss, never a wrong netlist.
  std::size_t expand_limit = 1024;

  /// Total CDCL conflicts the engine may spend across all queries
  /// (0 = unlimited). Tripping throws SatDecAbortError.
  std::uint64_t total_conflict_budget = 0;
  /// Wall-clock deadline, checked between solver calls. Leave unset for
  /// deterministic runs (reports must not depend on timing).
  std::optional<std::chrono::steady_clock::time_point> deadline;

  /// Hard recursion-depth guard (engine bug fuse, not a tuning knob).
  unsigned max_depth = 80;

  /// Clause-proof policy. kLog arms a DRAT log on every solver the engine
  /// creates; kCheck additionally re-validates every UNSAT verdict with the
  /// independent checker before the engine is allowed to act on it — a
  /// rejected verdict throws proof::ProofCheckError (terminal engine bug,
  /// not a retryable budget trip).
  proof::ProofPolicy proof = proof::ProofPolicy::kOff;

  /// Fault-injection hook (FaultPoint::kProofCorrupt): corrupt the first
  /// UNSAT verdict clause before it is checked, to prove the checker gates
  /// results. Only honoured under kCheck; tests only.
  bool proof_corrupt_fault = false;
};

/// Everything measured about one synthesize_satdec run. The CDCL counters
/// aggregate every solver the engine created (grouping oracles, usefulness
/// checks, materialization enumerations); they are deterministic — the
/// solver has no randomness and every solver instance is private to the
/// job — so they may appear in byte-stable reports.
struct SatDecStats {
  std::uint64_t formula_calls = 0;  ///< recursion nodes handled at formula level
  std::uint64_t tt_calls = 0;       ///< recursion nodes handled in the TT domain
  std::uint64_t grouping_queries = 0;  ///< two-copy decomposability solves
  std::uint64_t core_freed_vars = 0;   ///< vars admitted straight from UNSAT cores
  std::uint64_t solves = 0;            ///< total solve() calls, all solvers
  std::uint64_t materializations = 0;  ///< formula -> truth-table transfers
  std::uint64_t enumerated_models = 0; ///< AllSAT models during materialization
  std::uint64_t expansions_capped = 0; ///< negative existentials given up on

  std::uint64_t strong_or = 0;
  std::uint64_t strong_and = 0;
  std::uint64_t strong_exor = 0;  ///< TT domain only
  std::uint64_t weak_or = 0;
  std::uint64_t weak_and = 0;
  std::uint64_t shannon_steps = 0;
  std::uint64_t terminal_cases = 0;
  std::uint64_t memo_hits = 0;  ///< TT-domain exact-interval reuse hits

  /// Aggregated CDCL solver statistics (satellite: SolverStats surfacing).
  sat::SolverStats solver;

  /// Aggregated proof-logging/checking statistics across every solver the
  /// engine created. All-zero when SatDecOptions::proof is kOff.
  proof::ProofStats proof;
};

}  // namespace bidec::satdec

#endif  // BIDEC_SATDEC_OPTIONS_H
