// The SAT-backed bi-decomposition engine (tentpole of the satdec
// subsystem). Mirrors BiDecomposer's recursion (Fig. 7) with the BDD
// substrate replaced by two cooperating domains:
//
//  * Formula level (large supports): intervals are SatFunc DAGs. Strong
//    OR/AND groupings come from the two-copy SAT oracle with core-guided
//    growth (grouping.h); components are derived symbolically with the
//    Theorem-3/4 formulas (existentials stay unevaluated); weak steps use
//    capped negative-polarity usefulness queries; Shannon cofactoring is the
//    guaranteed-progress fallback.
//  * Truth-table level (supports <= SatDecOptions::tt_threshold): the
//    interval is materialized by AllSAT enumeration with blocking clauses
//    projected onto the support, then the complete paper machinery —
//    including EXOR and exact weak gains — runs bitwise (tt_isf.h).
//
// Every path is deterministic: the CDCL solver has no randomness, every
// solver instance is private to the run, and no wall-clock value influences
// a decision (deadlines only abort). Identical inputs therefore produce
// identical netlists and identical SatDecStats, which is what lets the batch
// engine put SAT results into byte-stable reports.
#ifndef BIDEC_SATDEC_DECOMPOSER_H
#define BIDEC_SATDEC_DECOMPOSER_H

#include <string>
#include <unordered_map>
#include <vector>

#include "io/pla.h"
#include "netlist/netlist.h"
#include "satdec/budget.h"
#include "satdec/grouping.h"
#include "satdec/options.h"
#include "satdec/sat_func.h"
#include "satdec/tt_isf.h"

namespace bidec::satdec {

class SatDecomposer {
 public:
  SatDecomposer(unsigned num_inputs, std::vector<std::string> input_names,
                SatDecOptions options);

  /// Decompose the interval (q, r) into two-input gates and register the
  /// root as primary output `name`. Throws SatDecAbortError on budget or
  /// deadline exhaustion and std::runtime_error on an inconsistent interval
  /// (a minterm in both q and r).
  SignalId add_output(const std::string& name, FuncPtr q, FuncPtr r);

  /// Run the inverter-absorption mapping pass (once, after all outputs).
  void finish();

  [[nodiscard]] const Netlist& netlist() const noexcept { return net_; }
  [[nodiscard]] Netlist take_netlist() noexcept { return std::move(net_); }
  [[nodiscard]] const SatDecStats& stats() const noexcept { return stats_; }

 private:
  struct FormulaResult {
    SignalId signal = kNoSignal;
  };
  struct TtResult {
    SignalId signal = kNoSignal;
    TruthTable func{0};  ///< the realized cover, local space of its TtIsf
  };

  FormulaResult decompose_formula(const FuncPtr& q, const FuncPtr& r,
                                  unsigned depth, unsigned weak_left);
  FormulaResult strong_formula(const FuncPtr& q, const FuncPtr& r,
                               const SatBestGrouping& best, unsigned depth);
  /// Scans the support for the first variable whose weak-OR or weak-AND
  /// usefulness query is satisfiable; fills `out` and returns true on
  /// success. Capped expansions skip the variable, never abort.
  bool try_weak_formula(const FuncPtr& q, const FuncPtr& r,
                        const std::vector<unsigned>& vars, unsigned depth,
                        unsigned weak_left, FormulaResult& out);
  /// SAT(care & !shadow) — the Table-1 weak usefulness query.
  [[nodiscard]] bool usefulness_sat(const FuncPtr& care, const FuncPtr& shadow);
  FormulaResult shannon_formula(const FuncPtr& q, const FuncPtr& r,
                                unsigned var, unsigned depth);
  [[nodiscard]] bool unsatisfiable(const FuncPtr& f);

  TtIsf materialize(const FuncPtr& q, const FuncPtr& r,
                    const std::vector<unsigned>& vars);
  TruthTable enumerate_models(const FuncPtr& f,
                              const std::vector<unsigned>& vars);

  TtResult decompose_tt(const TtIsf& isf_in);
  TtResult tt_terminal(const TtIsf& f, std::span<const unsigned> support);
  TtResult tt_combine(DecGate gate, const TtResult& a, const TtResult& b);

  Netlist net_;
  std::vector<SignalId> var_signal_;  ///< global input index -> PI signal
  SatDecOptions options_;
  SatDecStats stats_;
  Budget budget_;
  /// Exact-interval reuse across the recursion and across outputs, keyed on
  /// (q bits, r bits, global var list) of the normalized TtIsf.
  std::unordered_map<std::string, TtResult> tt_memo_;
};

/// End-to-end result of the SAT engine for one source function.
struct SatFlowResult {
  Netlist netlist;
  SatDecStats stats;
};

/// Decompose every output of a PLA (interval semantics per .type, identical
/// to verify/sat_verifier.cpp) without ever touching a BddManager.
[[nodiscard]] SatFlowResult synthesize_satdec(const PlaFile& pla,
                                              const SatDecOptions& options);

/// Decompose every output of an existing netlist (the BLIF path); the
/// source cone is the completely specified spec (r = !q).
[[nodiscard]] SatFlowResult synthesize_satdec(const Netlist& source,
                                              const SatDecOptions& options);

}  // namespace bidec::satdec

#endif  // BIDEC_SATDEC_DECOMPOSER_H
