#include "satdec/sat_func.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <utility>

namespace bidec::satdec {

namespace {

std::shared_ptr<SatFunc> make_node(FuncKind kind) {
  auto n = std::make_shared<SatFunc>();
  n->kind = kind;
  return n;
}

void check_var_index(unsigned v) {
  if (v >= kMaxSatDecVars) {
    throw std::invalid_argument("satdec: variable index " + std::to_string(v) +
                                " exceeds the engine's 64-input limit");
  }
}

/// Support of a netlist cone as a global-variable mask.
std::uint64_t cone_support(const Netlist& net, SignalId cone_root) {
  std::uint64_t mask = 0;
  std::vector<SignalId> stack{cone_root};
  std::vector<bool> seen(net.num_nodes(), false);
  while (!stack.empty()) {
    const SignalId id = stack.back();
    stack.pop_back();
    if (seen[id]) continue;
    seen[id] = true;
    const Netlist::Node& nd = net.node(id);
    if (nd.type == GateType::kInput) {
      const std::size_t idx = net.input_index(id);
      check_var_index(static_cast<unsigned>(idx));
      mask |= std::uint64_t{1} << idx;
      continue;
    }
    if (nd.fanin0 != kNoSignal) stack.push_back(nd.fanin0);
    if (nd.fanin1 != kNoSignal) stack.push_back(nd.fanin1);
  }
  return mask;
}

std::uint64_t cover_support(const PlaFile& pla, unsigned output, char match) {
  std::uint64_t mask = 0;
  for (const PlaFile::Row& row : pla.rows) {
    if (row.outputs[output] != match) continue;
    for (unsigned i = 0; i < pla.num_inputs; ++i) {
      if (row.inputs[i] != '-') {
        check_var_index(i);
        mask |= std::uint64_t{1} << i;
      }
    }
  }
  return mask;
}

}  // namespace

std::vector<unsigned> SatFunc::support_vars() const {
  std::vector<unsigned> vars;
  for (unsigned v = 0; v < kMaxSatDecVars; ++v) {
    if (support & (std::uint64_t{1} << v)) vars.push_back(v);
  }
  return vars;
}

std::uint64_t mask_of(std::span<const unsigned> vars) {
  std::uint64_t mask = 0;
  for (unsigned v : vars) {
    check_var_index(v);
    mask |= std::uint64_t{1} << v;
  }
  return mask;
}

FuncPtr f_const(bool value) {
  auto n = make_node(FuncKind::kConst);
  n->value = value;
  return n;
}

FuncPtr f_cone(const Netlist& net, SignalId root) {
  const Netlist::Node& nd = net.node(root);
  if (nd.type == GateType::kConst0) return f_const(false);
  if (nd.type == GateType::kConst1) return f_const(true);
  auto n = make_node(FuncKind::kCone);
  n->net = &net;
  n->root = root;
  n->support = cone_support(net, root);
  return n;
}

FuncPtr f_cover(const PlaFile& pla, unsigned output, char match) {
  bool any = false;
  for (const PlaFile::Row& row : pla.rows) {
    if (row.outputs[output] == match) {
      any = true;
      break;
    }
  }
  if (!any) return f_const(false);
  auto n = make_node(FuncKind::kCover);
  n->pla = &pla;
  n->output = output;
  n->match = match;
  n->support = cover_support(pla, output, match);
  return n;
}

FuncPtr f_tt(TruthTable table, std::vector<unsigned> global_vars) {
  assert(table.num_vars() == global_vars.size());
  if (table.is_zero()) return f_const(false);
  if (table.is_ones()) return f_const(true);
  auto n = make_node(FuncKind::kTt);
  std::uint64_t mask = 0;
  for (unsigned local = 0; local < global_vars.size(); ++local) {
    if (table.depends_on(local)) {
      check_var_index(global_vars[local]);
      mask |= std::uint64_t{1} << global_vars[local];
    }
  }
  n->support = mask;
  n->table = std::move(table);
  n->tt_vars = std::move(global_vars);
  return n;
}

FuncPtr f_not(FuncPtr f) {
  if (f->kind == FuncKind::kConst) return f_const(!f->value);
  if (f->kind == FuncKind::kNot) return f->a;
  auto n = make_node(FuncKind::kNot);
  n->support = f->support;
  n->a = std::move(f);
  return n;
}

FuncPtr f_and(FuncPtr x, FuncPtr y) {
  if (x->is_const(false) || y->is_const(false)) return f_const(false);
  if (x->is_const(true)) return y;
  if (y->is_const(true)) return x;
  if (x.get() == y.get()) return x;
  auto n = make_node(FuncKind::kAnd);
  n->support = x->support | y->support;
  n->a = std::move(x);
  n->b = std::move(y);
  return n;
}

FuncPtr f_or(FuncPtr x, FuncPtr y) {
  if (x->is_const(true) || y->is_const(true)) return f_const(true);
  if (x->is_const(false)) return y;
  if (y->is_const(false)) return x;
  if (x.get() == y.get()) return x;
  auto n = make_node(FuncKind::kOr);
  n->support = x->support | y->support;
  n->a = std::move(x);
  n->b = std::move(y);
  return n;
}

FuncPtr f_cofactor(FuncPtr f, unsigned var, bool val) {
  check_var_index(var);
  const std::uint64_t bit = std::uint64_t{1} << var;
  if ((f->support & bit) == 0) return f;
  // Cofactoring a truth-table leaf is exact and cheap; do it eagerly.
  if (f->kind == FuncKind::kTt) {
    const auto it = std::find(f->tt_vars.begin(), f->tt_vars.end(), var);
    assert(it != f->tt_vars.end());
    const unsigned local = static_cast<unsigned>(it - f->tt_vars.begin());
    return f_tt(f->table.cofactor(local, val), f->tt_vars);
  }
  auto n = make_node(FuncKind::kCofactor);
  n->support = f->support & ~bit;
  n->a = std::move(f);
  n->var = var;
  n->val = val;
  return n;
}

FuncPtr f_exists(FuncPtr f, std::uint64_t mask) {
  mask &= f->support;
  if (mask == 0) return f;
  if (f->kind == FuncKind::kTt) {
    TruthTable t = f->table;
    for (unsigned local = 0; local < f->tt_vars.size(); ++local) {
      if (mask & (std::uint64_t{1} << f->tt_vars[local])) t = t.exists(local);
    }
    return f_tt(std::move(t), f->tt_vars);
  }
  // Flatten nested quantifiers: Ex a (Ex b f) == Ex {a,b} f.
  if (f->kind == FuncKind::kExists) {
    auto n = make_node(FuncKind::kExists);
    n->support = f->support & ~mask;
    n->bound = f->bound | mask;
    n->a = f->a;
    return n;
  }
  auto n = make_node(FuncKind::kExists);
  n->support = f->support & ~mask;
  n->bound = mask;
  n->a = std::move(f);
  return n;
}

// ---------------------------------------------------------------------------
// Encoding

std::vector<sat::Lit> FuncEncoder::fresh_frame(unsigned n) {
  std::vector<sat::Lit> frame;
  frame.reserve(n);
  for (unsigned i = 0; i < n; ++i) frame.push_back(sat::mk_lit(enc_.add_var()));
  return frame;
}

sat::Lit FuncEncoder::encode(const FuncPtr& f, std::span<const sat::Lit> frame,
                             Polarity pol) {
  Ctx ctx;
  ctx.frame.assign(frame.begin(), frame.end());
  return encode_in(ctx, *f, pol);
}

sat::Lit FuncEncoder::encode_in(Ctx& ctx, const SatFunc& f, Polarity pol) {
  const auto key = std::make_pair(&f, static_cast<std::uint8_t>(pol));
  if (const auto it = ctx.memo.find(key); it != ctx.memo.end()) {
    return it->second;
  }
  sat::Lit result;
  switch (f.kind) {
    case FuncKind::kConst:
      result = enc_.constant(f.value);
      break;
    case FuncKind::kCone:
      result = encode_cone(ctx, *f.net, f.root);
      break;
    case FuncKind::kCover: {
      const std::vector<sat::Var> vars =
          tied_var_frame(ctx, f.support, f.pla->num_inputs);
      result = enc_.encode_cover(*f.pla, vars, f.output, f.match);
      break;
    }
    case FuncKind::kTt: {
      std::vector<sat::Lit> lits(f.tt_vars.size());
      for (unsigned local = 0; local < f.tt_vars.size(); ++local) {
        lits[local] = ctx.frame[f.tt_vars[local]];
      }
      result = encode_tt(f.table, lits);
      break;
    }
    case FuncKind::kNot:
      result = ~encode_in(ctx, *f.a, flip(pol));
      break;
    case FuncKind::kAnd:
      result = enc_.encode_and(encode_in(ctx, *f.a, pol),
                               encode_in(ctx, *f.b, pol));
      break;
    case FuncKind::kOr:
      result = enc_.encode_or(encode_in(ctx, *f.a, pol),
                              encode_in(ctx, *f.b, pol));
      break;
    case FuncKind::kCofactor: {
      Ctx sub;
      sub.frame = ctx.frame;
      sub.frame[f.var] = enc_.constant(f.val);
      result = encode_in(sub, *f.a, pol);
      break;
    }
    case FuncKind::kExists: {
      const std::vector<unsigned> bound = [&] {
        std::vector<unsigned> vs;
        for (unsigned v = 0; v < kMaxSatDecVars; ++v) {
          if (f.bound & (std::uint64_t{1} << v)) vs.push_back(v);
        }
        return vs;
      }();
      if (pol == Polarity::kPos) {
        // Positive context: Skolemize — fresh unconstrained bound variables
        // act as the existential witness. Linear in the child size.
        Ctx sub;
        sub.frame = ctx.frame;
        for (unsigned v : bound) sub.frame[v] = sat::mk_lit(enc_.add_var());
        result = encode_in(sub, *f.a, pol);
      } else {
        // Negative/mixed context: expand into the 2^k cofactor disjuncts.
        const std::size_t k = bound.size();
        if (k >= 63 || (std::size_t{1} << k) > opt_.expand_limit) {
          ++stats_.expansions_capped;
          throw ExpansionCappedError(k >= 63 ? opt_.expand_limit + 1
                                             : (std::size_t{1} << k));
        }
        std::vector<sat::Lit> disjuncts;
        disjuncts.reserve(std::size_t{1} << k);
        for (std::uint64_t m = 0; m < (std::uint64_t{1} << k); ++m) {
          Ctx sub;
          sub.frame = ctx.frame;
          for (std::size_t i = 0; i < k; ++i) {
            sub.frame[bound[i]] = enc_.constant((m >> i) & 1u);
          }
          disjuncts.push_back(encode_in(sub, *f.a, pol));
        }
        result = or_reduce(std::move(disjuncts));
      }
      break;
    }
  }
  ctx.memo.emplace(key, result);
  return result;
}

sat::Lit FuncEncoder::encode_cone(Ctx& ctx, const Netlist& net,
                                  SignalId cone_root) {
  // Iterative post-order over the cone; signal -> literal map local to this
  // frame (the same cone encoded under another frame gets fresh clauses).
  std::unordered_map<SignalId, sat::Lit> lit_of;
  std::vector<std::pair<SignalId, bool>> stack{{cone_root, false}};
  while (!stack.empty()) {
    const auto [id, expanded] = stack.back();
    stack.pop_back();
    if (lit_of.count(id) != 0) continue;
    const Netlist::Node& nd = net.node(id);
    if (!expanded) {
      switch (nd.type) {
        case GateType::kInput:
          lit_of[id] = ctx.frame[net.input_index(id)];
          continue;
        case GateType::kConst0:
          lit_of[id] = enc_.constant(false);
          continue;
        case GateType::kConst1:
          lit_of[id] = enc_.constant(true);
          continue;
        default:
          stack.emplace_back(id, true);
          if (nd.fanin0 != kNoSignal) stack.emplace_back(nd.fanin0, false);
          if (nd.fanin1 != kNoSignal) stack.emplace_back(nd.fanin1, false);
          continue;
      }
    }
    const sat::Lit a = lit_of.at(nd.fanin0);
    switch (nd.type) {
      case GateType::kBuf:
        lit_of[id] = a;
        break;
      case GateType::kNot:
        lit_of[id] = ~a;
        break;
      default:
        lit_of[id] = enc_.encode_gate(nd.type, a, lit_of.at(nd.fanin1));
        break;
    }
  }
  return lit_of.at(cone_root);
}

sat::Lit FuncEncoder::encode_tt(const TruthTable& t,
                                std::span<const sat::Lit> lits) {
  if (t.is_zero()) return enc_.constant(false);
  if (t.is_ones()) return enc_.constant(true);
  // Shannon-expand on the highest variable the table depends on; the
  // recursion depth is bounded by the leaf's (small) variable count.
  unsigned v = t.num_vars();
  while (v > 0 && !t.depends_on(v - 1)) --v;
  assert(v > 0);
  --v;
  const sat::Lit lo = encode_tt(t.cofactor(v, false), lits);
  const sat::Lit hi = encode_tt(t.cofactor(v, true), lits);
  if (lo == hi) return lo;
  // ITE(x, hi, lo) as (x & hi) | (!x & lo).
  return enc_.encode_or(enc_.encode_and(lits[v], hi),
                        enc_.encode_and(~lits[v], lo));
}

sat::Lit FuncEncoder::or_reduce(std::vector<sat::Lit> lits) {
  if (lits.empty()) return enc_.constant(false);
  // Balanced reduction keeps the auxiliary-variable chain shallow.
  while (lits.size() > 1) {
    std::vector<sat::Lit> next;
    next.reserve((lits.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < lits.size(); i += 2) {
      next.push_back(enc_.encode_or(lits[i], lits[i + 1]));
    }
    if (lits.size() % 2 != 0) next.push_back(lits.back());
    lits = std::move(next);
  }
  return lits[0];
}

std::vector<sat::Var> FuncEncoder::tied_var_frame(const Ctx& ctx,
                                                  std::uint64_t support_mask,
                                                  unsigned width) {
  std::vector<sat::Var> vars(width);
  for (unsigned i = 0; i < width; ++i) {
    vars[i] = enc_.add_var();
    if (i < kMaxSatDecVars && (support_mask & (std::uint64_t{1} << i))) {
      enc_.add_equal(sat::mk_lit(vars[i]), ctx.frame[i]);
    }
  }
  return vars;
}

}  // namespace bidec::satdec
