// Formula DAG for the SAT decomposition engine: a tiny symbolic function
// representation whose only "evaluation" is CNF encoding. Where the BDD flow
// manipulates canonical diagrams, the SAT flow manipulates these lazy
// formulas (netlist cones, PLA covers, truth-table leaves, boolean
// connectives, cofactors, existential quantifiers) and asks a CDCL solver
// the paper's questions about them. Nothing here is canonical — equality is
// never tested syntactically; every semantic question is a SAT query.
//
// Encoding is polarity-aware (Plaisted–Greenbaum style at the quantifier
// level): an existential in a positive context is Skolemized with fresh
// bound variables (linear), while one in a negative or mixed context must be
// expanded into its 2^k cofactor disjuncts (capped by
// SatDecOptions::expand_limit; the cap throws ExpansionCappedError and the
// caller conservatively declines the optimization it was probing).
#ifndef BIDEC_SATDEC_SAT_FUNC_H
#define BIDEC_SATDEC_SAT_FUNC_H

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "io/pla.h"
#include "netlist/netlist.h"
#include "sat/solver.h"
#include "sat/tseitin.h"
#include "satdec/options.h"
#include "tt/truth_table.h"

namespace bidec::satdec {

/// The engine addresses inputs by global variable index (the source's input
/// order); supports are bitmasks, so the SAT path handles up to 64 inputs.
inline constexpr unsigned kMaxSatDecVars = 64;

enum class FuncKind : std::uint8_t {
  kConst,     ///< constant 0 / 1
  kCone,      ///< output cone of a signal in a (borrowed) netlist
  kCover,     ///< one output plane of a (borrowed) PLA, by match character
  kTt,        ///< dense truth table over an explicit global-variable list
  kNot,
  kAnd,
  kOr,
  kCofactor,  ///< child with one global variable fixed to a constant
  kExists,    ///< child existentially quantified over a variable mask
};

class SatFunc;
using FuncPtr = std::shared_ptr<const SatFunc>;

/// Immutable formula node. Build through the f_* factories below — they
/// fold constants and drop vacuous cofactors/quantifiers so derived
/// formulas stay small; the constructor is public only for the factories.
class SatFunc {
 public:
  FuncKind kind = FuncKind::kConst;
  /// Structural support as a bitmask over global variables (an
  /// overapproximation of the semantic support, exact for leaves).
  std::uint64_t support = 0;

  bool value = false;  ///< kConst

  const Netlist* net = nullptr;  ///< kCone (borrowed; must outlive the DAG)
  SignalId root = kNoSignal;     ///< kCone

  const PlaFile* pla = nullptr;  ///< kCover (borrowed)
  unsigned output = 0;           ///< kCover
  char match = '1';              ///< kCover

  TruthTable table{0};                ///< kTt (local variable space)
  std::vector<unsigned> tt_vars;      ///< kTt: local index -> global variable

  FuncPtr a;  ///< first child (kNot/kAnd/kOr/kCofactor/kExists)
  FuncPtr b;  ///< second child (kAnd/kOr)

  unsigned var = 0;   ///< kCofactor
  bool val = false;   ///< kCofactor
  std::uint64_t bound = 0;  ///< kExists: mask of quantified variables

  [[nodiscard]] bool is_const(bool v) const {
    return kind == FuncKind::kConst && value == v;
  }
  /// Support as a sorted list of global variable indices.
  [[nodiscard]] std::vector<unsigned> support_vars() const;
};

[[nodiscard]] FuncPtr f_const(bool value);
/// Cone of `root` in `net`; netlist input i is global variable i.
[[nodiscard]] FuncPtr f_cone(const Netlist& net, SignalId root);
/// Disjunction of the input cubes of rows whose output-plane character for
/// `output` equals `match` (same semantics as TseitinEncoder::encode_cover).
[[nodiscard]] FuncPtr f_cover(const PlaFile& pla, unsigned output, char match);
[[nodiscard]] FuncPtr f_tt(TruthTable table, std::vector<unsigned> global_vars);
[[nodiscard]] FuncPtr f_not(FuncPtr f);
[[nodiscard]] FuncPtr f_and(FuncPtr x, FuncPtr y);
[[nodiscard]] FuncPtr f_or(FuncPtr x, FuncPtr y);
[[nodiscard]] FuncPtr f_cofactor(FuncPtr f, unsigned var, bool val);
/// Exists over every variable in `mask` (no-op bits outside f->support).
[[nodiscard]] FuncPtr f_exists(FuncPtr f, std::uint64_t mask);

[[nodiscard]] std::uint64_t mask_of(std::span<const unsigned> vars);

/// Thrown when a negative-polarity existential would exceed
/// SatDecOptions::expand_limit disjuncts. Callers catch it and decline the
/// check they were running (conservative: never produces a wrong netlist).
class ExpansionCappedError : public std::runtime_error {
 public:
  explicit ExpansionCappedError(std::size_t disjuncts)
      : std::runtime_error("satdec: existential expansion capped (" +
                           std::to_string(disjuncts) + " disjuncts)") {}
};

/// Required relationship between an encoded literal L and its formula f:
///   kPos:  L -> f   (assume L true to assert f)
///   kNeg:  f -> L   (assume L false to assert !f)
///   kBoth: L <-> f
/// Gate and leaf encodings are always full equivalences; polarity only
/// selects the quantifier strategy (Skolemization vs expansion).
enum class Polarity : std::uint8_t { kPos, kNeg, kBoth };

[[nodiscard]] constexpr Polarity flip(Polarity p) {
  if (p == Polarity::kPos) return Polarity::kNeg;
  if (p == Polarity::kNeg) return Polarity::kPos;
  return Polarity::kBoth;
}

/// CNF-encodes formula DAGs into one solver. A "frame" gives the literal
/// standing for each global variable; oracles use several frames (the
/// two-copy encoding) over the same encoder.
class FuncEncoder {
 public:
  FuncEncoder(sat::TseitinEncoder& enc, const SatDecOptions& opt,
              SatDecStats& stats)
      : enc_(enc), opt_(opt), stats_(stats) {}

  /// Encode `f` under `frame` with the guarantee selected by `pol`.
  /// Throws ExpansionCappedError when a quantifier expansion trips the cap.
  [[nodiscard]] sat::Lit encode(const FuncPtr& f,
                                std::span<const sat::Lit> frame, Polarity pol);

  /// Fresh solver-variable frame of `n` positive literals.
  [[nodiscard]] std::vector<sat::Lit> fresh_frame(unsigned n);

 private:
  struct Ctx {
    std::vector<sat::Lit> frame;
    // Memo is per-frame: a cofactor or quantifier changes the frame, so the
    // child is encoded in a child context with its own memo.
    std::map<std::pair<const SatFunc*, std::uint8_t>, sat::Lit> memo;
  };

  [[nodiscard]] sat::Lit encode_in(Ctx& ctx, const SatFunc& f, Polarity pol);
  [[nodiscard]] sat::Lit encode_cone(Ctx& ctx, const Netlist& net,
                                     SignalId cone_root);
  [[nodiscard]] sat::Lit encode_tt(const TruthTable& t,
                                   std::span<const sat::Lit> lits);
  [[nodiscard]] sat::Lit or_reduce(std::vector<sat::Lit> lits);
  /// Leaf encoders that need solver Vars (cover): a fresh var frame tied to
  /// the current literal frame on the leaf's support.
  [[nodiscard]] std::vector<sat::Var> tied_var_frame(
      const Ctx& ctx, std::uint64_t support_mask, unsigned width);

  sat::TseitinEncoder& enc_;
  const SatDecOptions& opt_;
  SatDecStats& stats_;
};

}  // namespace bidec::satdec

#endif  // BIDEC_SATDEC_SAT_FUNC_H
