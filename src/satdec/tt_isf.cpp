#include "satdec/tt_isf.h"

#include <algorithm>
#include <cassert>
#include <functional>

namespace bidec::satdec {

const char* dec_gate_name(DecGate g) {
  switch (g) {
    case DecGate::kOr: return "or";
    case DecGate::kAnd: return "and";
    case DecGate::kExor: return "exor";
  }
  return "?";
}

std::vector<unsigned> tt_support(const TtIsf& f) {
  std::vector<unsigned> support;
  for (unsigned v = 0; v < f.q.num_vars(); ++v) {
    if (f.q.depends_on(v) || f.r.depends_on(v)) support.push_back(v);
  }
  return support;
}

void tt_remove_inessential(TtIsf& f) {
  for (unsigned v = 0; v < f.q.num_vars(); ++v) {
    if (!f.q.depends_on(v) && !f.r.depends_on(v)) continue;
    const TruthTable eq = f.q.exists(v);
    const TruthTable er = f.r.exists(v);
    if ((eq & er).is_zero()) {
      f.q = eq;
      f.r = er;
    }
  }
}

bool tt_or_decomposable(const TtIsf& f, std::span<const unsigned> xa,
                        std::span<const unsigned> xb) {
  return (f.q & f.r.exists(xa) & f.r.exists(xb)).is_zero();
}

bool tt_and_decomposable(const TtIsf& f, std::span<const unsigned> xa,
                         std::span<const unsigned> xb) {
  return (f.r & f.q.exists(xa) & f.q.exists(xb)).is_zero();
}

bool tt_exor_decomposable_11(const TtIsf& f, unsigned a, unsigned b) {
  // Theorem 2 via the ISF derivative w.r.t. `a` (see bidec/check.h).
  const TruthTable qd = f.q.exists(a) & f.r.exists(a);
  const TruthTable rd = f.q.forall(a) | f.r.forall(a);
  return (qd & rd.exists(b)).is_zero();
}

namespace {

/// A truth table that is 1 exactly at the first on-minterm of `t` (the
/// cube seed of Fig. 4, reduced to a single minterm: any subset of the
/// remaining on-set is a valid seed, and a minterm keeps this exact).
TruthTable pick_minterm(const TruthTable& t) {
  TruthTable cube = TruthTable::zeros(t.num_vars());
  const std::uint64_t m = t.find_first();
  assert(m < t.num_minterms() && "pick_minterm on constant-zero table");
  cube.set(m, true);
  return cube;
}

}  // namespace

std::optional<TtExorComponents> tt_check_exor(const TtIsf& f,
                                              std::span<const unsigned> xa,
                                              std::span<const unsigned> xb) {
  // Straight port of check_exor_bidecomp (bidec/exor_check.cpp, paper
  // Fig. 4) with BDD ops replaced by TruthTable ops.
  TruthTable q = f.q;
  TruthTable r = f.r;
  const unsigned width = q.num_vars();

  TruthTable big_qa = TruthTable::zeros(width), big_ra = big_qa;
  TruthTable big_qb = big_qa, big_rb = big_qa;

  while (!q.is_zero()) {
    TruthTable qa = pick_minterm(q).exists(xb);
    TruthTable ra = TruthTable::zeros(width);

    while (!(qa | ra).is_zero()) {
      TruthTable qb = ((q & ra) | (r & qa)).exists(xa);
      TruthTable rb = ((q & qa) | (r & ra)).exists(xa);
      if (!(qb & rb).is_zero()) return std::nullopt;

      q = q - (qa | ra);
      r = r - (qa | ra);
      big_qa = big_qa | qa;
      big_ra = big_ra | ra;

      qa = ((q & rb) | (r & qb)).exists(xb);
      ra = ((q & qb) | (r & rb)).exists(xb);
      if (!(qa & ra).is_zero()) return std::nullopt;

      q = q - (qb | rb);
      r = r - (qb | rb);
      big_qb = big_qb | qb;
      big_rb = big_rb | rb;
    }
  }

  if (!r.is_zero()) {
    big_ra = big_ra | r.exists(xb);
    big_rb = big_rb | r.exists(xa);
  }

  if (!(big_qa & big_ra).is_zero() || !(big_qb & big_rb).is_zero()) {
    return std::nullopt;
  }
  return TtExorComponents{TtIsf{big_qa, big_ra, f.vars},
                          TtIsf{big_qb, big_rb, f.vars}};
}

std::uint64_t tt_weak_or_gain(const TtIsf& f, std::span<const unsigned> xa) {
  return (f.q - f.r.exists(xa)).count_ones();
}

std::uint64_t tt_weak_and_gain(const TtIsf& f, std::span<const unsigned> xa) {
  return (f.r - f.q.exists(xa)).count_ones();
}

TtIsf tt_derive_or_a(const TtIsf& f, std::span<const unsigned> xa,
                     std::span<const unsigned> xb) {
  const TruthTable exa_r = f.r.exists(xa);
  return TtIsf{(f.q & exa_r).exists(xb), f.r.exists(xb), f.vars};
}

TtIsf tt_derive_or_b(const TtIsf& f, const TruthTable& fa,
                     std::span<const unsigned> xa) {
  return TtIsf{(f.q - fa).exists(xa), f.r.exists(xa), f.vars};
}

TtIsf tt_derive_and_a(const TtIsf& f, std::span<const unsigned> xa,
                      std::span<const unsigned> xb) {
  // Dual of tt_derive_or_a through interval complementation (swap q/r).
  const TruthTable exa_q = f.q.exists(xa);
  return TtIsf{f.q.exists(xb), (f.r & exa_q).exists(xb), f.vars};
}

TtIsf tt_derive_and_b(const TtIsf& f, const TruthTable& fa,
                      std::span<const unsigned> xa) {
  return TtIsf{f.q.exists(xa), (f.r & fa).exists(xa), f.vars};
}

TtIsf tt_derive_weak_or_a(const TtIsf& f, std::span<const unsigned> xa) {
  return TtIsf{f.q & f.r.exists(xa), f.r, f.vars};
}

TtIsf tt_derive_weak_and_a(const TtIsf& f, std::span<const unsigned> xa) {
  return TtIsf{f.q, f.r & f.q.exists(xa), f.vars};
}

// ---------------------------------------------------------------------------
// Grouping greedy (port of bidec/grouping.cpp with TT checks)
// ---------------------------------------------------------------------------

namespace {

using CheckFn =
    std::function<bool(std::span<const unsigned>, std::span<const unsigned>)>;

bool contains(const std::vector<unsigned>& set, unsigned v) {
  return std::find(set.begin(), set.end(), v) != set.end();
}

std::vector<Grouping> find_initial_groupings(std::span<const unsigned> support,
                                             const CheckFn& check,
                                             std::size_t max_pairs) {
  std::vector<Grouping> pairs;
  for (std::size_t i = 0; i < support.size() && pairs.size() < max_pairs; ++i) {
    for (std::size_t j = i + 1; j < support.size() && pairs.size() < max_pairs;
         ++j) {
      const unsigned xa[] = {support[i]};
      const unsigned xb[] = {support[j]};
      if (check(xa, xb)) pairs.push_back(Grouping{{support[i]}, {support[j]}});
    }
  }
  return pairs;
}

void grow_grouping(Grouping& g, std::span<const unsigned> support,
                   const CheckFn& check) {
  for (const unsigned z : support) {
    if (contains(g.xa, z) || contains(g.xb, z)) continue;
    std::vector<unsigned>& first = g.xa.size() <= g.xb.size() ? g.xa : g.xb;
    std::vector<unsigned>& second = g.xa.size() <= g.xb.size() ? g.xb : g.xa;
    first.push_back(z);
    if (check(g.xa, g.xb)) continue;
    first.pop_back();
    second.push_back(z);
    if (check(g.xa, g.xb)) continue;
    second.pop_back();
  }
}

void canonicalize_contiguous(Grouping& g, const CheckFn& check) {
  std::vector<unsigned> all;
  all.reserve(g.size());
  all.insert(all.end(), g.xa.begin(), g.xa.end());
  all.insert(all.end(), g.xb.begin(), g.xb.end());
  std::sort(all.begin(), all.end());

  const auto try_split = [&](std::size_t xa_size) {
    if (xa_size == 0 || xa_size >= all.size()) return false;
    Grouping contiguous;
    contiguous.xa.assign(all.begin(),
                         all.begin() + static_cast<std::ptrdiff_t>(xa_size));
    contiguous.xb.assign(all.begin() + static_cast<std::ptrdiff_t>(xa_size),
                         all.end());
    if (contiguous.xa == g.xa && contiguous.xb == g.xb) return true;
    if (!check(contiguous.xa, contiguous.xb)) return false;
    g = std::move(contiguous);
    return true;
  };

  std::size_t pow2 = 1;
  while (pow2 * 2 < all.size()) pow2 *= 2;
  if (pow2 > 1 && try_split(pow2)) return;
  (void)try_split(g.xa.size());
}

Grouping group_variables(std::span<const unsigned> support,
                         const SatDecOptions& opt, const CheckFn& check) {
  const std::size_t max_pairs = std::max(1u, opt.grouping_pairs);
  std::vector<Grouping> candidates =
      find_initial_groupings(support, check, max_pairs);
  if (candidates.empty()) return {};
  Grouping best;
  long best_score = -1;
  for (Grouping& g : candidates) {
    grow_grouping(g, support, check);
    const long score = static_cast<long>(g.size()) * 1000 -
                       (opt.balance_cost ? static_cast<long>(g.imbalance()) : 0);
    if (score > best_score) {
      best_score = score;
      best = std::move(g);
    }
  }
  canonicalize_contiguous(best, check);
  return best;
}

}  // namespace

std::optional<TtBestGrouping> tt_find_best_grouping(
    const TtIsf& f, std::span<const unsigned> support,
    const SatDecOptions& opt) {
  std::vector<TtBestGrouping> candidates;
  if (Grouping g = group_variables(
          support, opt,
          [&f](std::span<const unsigned> xa, std::span<const unsigned> xb) {
            return tt_or_decomposable(f, xa, xb);
          });
      !g.empty()) {
    candidates.push_back({std::move(g), DecGate::kOr});
  }
  if (Grouping g = group_variables(
          support, opt,
          [&f](std::span<const unsigned> xa, std::span<const unsigned> xb) {
            return tt_and_decomposable(f, xa, xb);
          });
      !g.empty()) {
    candidates.push_back({std::move(g), DecGate::kAnd});
  }
  if (opt.use_exor) {
    const CheckFn check = [&f](std::span<const unsigned> xa,
                               std::span<const unsigned> xb) {
      if (xa.size() == 1 && xb.size() == 1) {
        return tt_exor_decomposable_11(f, xa[0], xb[0]);
      }
      return tt_check_exor(f, xa, xb).has_value();
    };
    if (Grouping g = group_variables(support, opt, check); !g.empty()) {
      candidates.push_back({std::move(g), DecGate::kExor});
    }
  }
  if (candidates.empty()) return std::nullopt;

  const auto score = [&opt](const TtBestGrouping& c) {
    return static_cast<long>(c.grouping.size()) * 1000 -
           (opt.balance_cost ? static_cast<long>(c.grouping.imbalance()) : 0);
  };
  return *std::max_element(candidates.begin(), candidates.end(),
                           [&score](const TtBestGrouping& a,
                                    const TtBestGrouping& b) {
                             return score(a) < score(b);
                           });
}

std::optional<TtWeakGrouping> tt_group_weak(const TtIsf& f,
                                            std::span<const unsigned> support) {
  std::optional<TtWeakGrouping> best;
  std::uint64_t best_gain = 0;
  for (const unsigned v : support) {
    const unsigned xa[] = {v};
    const std::uint64_t or_gain = tt_weak_or_gain(f, xa);
    if (or_gain > best_gain) {
      best_gain = or_gain;
      best = TtWeakGrouping{{v}, DecGate::kOr};
    }
    const std::uint64_t and_gain = tt_weak_and_gain(f, xa);
    if (and_gain > best_gain) {
      best_gain = and_gain;
      best = TtWeakGrouping{{v}, DecGate::kAnd};
    }
  }
  return best;
}

}  // namespace bidec::satdec
