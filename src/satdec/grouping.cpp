#include "satdec/grouping.h"

#include <algorithm>

namespace bidec::satdec {

namespace {

bool contains(const std::vector<unsigned>& set, unsigned v) {
  return std::find(set.begin(), set.end(), v) != set.end();
}

bool lit_in(const std::vector<sat::Lit>& lits, sat::Lit l) {
  return std::find(lits.begin(), lits.end(), l) != lits.end();
}

}  // namespace

TwoCopyOracle::TwoCopyOracle(const FuncPtr& q, const FuncPtr& r,
                             unsigned num_inputs,
                             std::span<const unsigned> support, Budget& budget)
    : budget_(budget), bs_(budget) {
  FuncEncoder& fe = bs_.funcs();
  const std::vector<sat::Lit> x = fe.fresh_frame(num_inputs);
  const std::vector<sat::Lit> x1 = fe.fresh_frame(num_inputs);
  const std::vector<sat::Lit> x2 = fe.fresh_frame(num_inputs);

  // All three occurrences are asserted true by assumption, so positive
  // polarity suffices (and keeps any existentials Skolemized).
  q_lit_ = fe.encode(q, x, Polarity::kPos);
  r1_lit_ = fe.encode(r, x1, Polarity::kPos);
  r2_lit_ = fe.encode(r, x2, Polarity::kPos);

  sel_a_.assign(num_inputs, sat::kUndefLit);
  sel_b_.assign(num_inputs, sat::kUndefLit);
  sat::Solver& s = bs_.solver();
  for (const unsigned v : support) {
    const sat::Lit ea = sat::mk_lit(s.new_var());
    const sat::Lit eb = sat::mk_lit(s.new_var());
    sel_a_[v] = ea;
    sel_b_[v] = eb;
    // ea -> (x1[v] == x[v]),  eb -> (x2[v] == x[v]).
    s.add_clause({~ea, ~x1[v], x[v]});
    s.add_clause({~ea, x1[v], ~x[v]});
    s.add_clause({~eb, ~x2[v], x[v]});
    s.add_clause({~eb, x2[v], ~x[v]});
  }
}

bool TwoCopyOracle::decomposable(std::span<const unsigned> xa,
                                 std::span<const unsigned> xb) {
  std::vector<sat::Lit> assumptions{q_lit_, r1_lit_, r2_lit_};
  for (unsigned v = 0; v < sel_a_.size(); ++v) {
    if (sel_a_[v] == sat::kUndefLit) continue;  // off-support
    const bool in_a = std::find(xa.begin(), xa.end(), v) != xa.end();
    const bool in_b = std::find(xb.begin(), xb.end(), v) != xb.end();
    if (!in_a) assumptions.push_back(sel_a_[v]);
    if (!in_b) assumptions.push_back(sel_b_[v]);
  }
  ++budget_.stats().grouping_queries;
  return bs_.solve(assumptions) == sat::Solver::Result::kUnsat;
}

void TwoCopyOracle::harvest_core(Grouping& g,
                                 std::span<const unsigned> support) {
  const std::vector<sat::Lit>& core = bs_.solver().conflict();
  std::vector<unsigned> free_a, free_b;
  for (const unsigned v : support) {
    if (contains(g.xa, v) || contains(g.xb, v)) continue;
    const bool a_free = sel_a_[v] != sat::kUndefLit && !lit_in(core, sel_a_[v]);
    const bool b_free = sel_b_[v] != sat::kUndefLit && !lit_in(core, sel_b_[v]);
    if (a_free && b_free) {
      // Free on both sides: place for balance.
      (g.xa.size() <= g.xb.size() ? free_a : free_b).push_back(v);
    } else if (a_free) {
      free_a.push_back(v);
    } else if (b_free) {
      free_b.push_back(v);
    }
  }
  budget_.stats().core_freed_vars += free_a.size() + free_b.size();
  g.xa.insert(g.xa.end(), free_a.begin(), free_a.end());
  g.xb.insert(g.xb.end(), free_b.begin(), free_b.end());
}

namespace {

Grouping sat_group_variables(TwoCopyOracle& oracle,
                             std::span<const unsigned> support, Budget& budget) {
  const SatDecOptions& opt = budget.options();
  const std::size_t max_pairs = std::max(1u, opt.grouping_pairs);

  const auto check = [&oracle](std::span<const unsigned> xa,
                               std::span<const unsigned> xb) {
    return oracle.decomposable(xa, xb);
  };

  // Fig. 5: decomposable singleton pairs as seeds.
  std::vector<Grouping> candidates;
  for (std::size_t i = 0; i < support.size() && candidates.size() < max_pairs;
       ++i) {
    for (std::size_t j = i + 1;
         j < support.size() && candidates.size() < max_pairs; ++j) {
      const unsigned xa[] = {support[i]};
      const unsigned xb[] = {support[j]};
      if (check(xa, xb)) {
        Grouping g{{support[i]}, {support[j]}};
        // Core-guided fast path: admit everything the UNSAT core ignored.
        oracle.harvest_core(g, support);
        candidates.push_back(std::move(g));
      }
    }
  }
  if (candidates.empty()) return {};

  // Fig. 6 greedy growth for the variables the cores did not settle,
  // re-harvesting after every successful placement.
  Grouping best;
  long best_score = -1;
  for (Grouping& g : candidates) {
    for (const unsigned z : support) {
      if (contains(g.xa, z) || contains(g.xb, z)) continue;
      std::vector<unsigned>& first = g.xa.size() <= g.xb.size() ? g.xa : g.xb;
      std::vector<unsigned>& second = g.xa.size() <= g.xb.size() ? g.xb : g.xa;
      first.push_back(z);
      if (check(g.xa, g.xb)) {
        oracle.harvest_core(g, support);
        continue;
      }
      first.pop_back();
      second.push_back(z);
      if (check(g.xa, g.xb)) {
        oracle.harvest_core(g, support);
        continue;
      }
      second.pop_back();
    }
    const long score = static_cast<long>(g.size()) * 1000 -
                       (opt.balance_cost ? static_cast<long>(g.imbalance()) : 0);
    if (score > best_score) {
      best_score = score;
      best = std::move(g);
    }
  }

  // Canonical contiguous split (shared with the BDD flow's heuristics): a
  // contiguous low/high split reuses across outputs far more often.
  {
    std::vector<unsigned> all;
    all.reserve(best.size());
    all.insert(all.end(), best.xa.begin(), best.xa.end());
    all.insert(all.end(), best.xb.begin(), best.xb.end());
    std::sort(all.begin(), all.end());
    const auto try_split = [&](std::size_t xa_size) {
      if (xa_size == 0 || xa_size >= all.size()) return false;
      Grouping contiguous;
      contiguous.xa.assign(all.begin(),
                           all.begin() + static_cast<std::ptrdiff_t>(xa_size));
      contiguous.xb.assign(all.begin() + static_cast<std::ptrdiff_t>(xa_size),
                           all.end());
      if (contiguous.xa == best.xa && contiguous.xb == best.xb) return true;
      if (!check(contiguous.xa, contiguous.xb)) return false;
      best = std::move(contiguous);
      return true;
    };
    std::size_t pow2 = 1;
    while (pow2 * 2 < all.size()) pow2 *= 2;
    if (pow2 <= 1 || !try_split(pow2)) (void)try_split(best.xa.size());
  }
  return best;
}

}  // namespace

std::optional<SatBestGrouping> sat_find_best_grouping(
    const FuncPtr& q, const FuncPtr& r, unsigned num_inputs,
    std::span<const unsigned> support, Budget& budget) {
  std::vector<SatBestGrouping> candidates;
  {
    TwoCopyOracle or_oracle(q, r, num_inputs, support, budget);
    if (Grouping g = sat_group_variables(or_oracle, support, budget);
        !g.empty()) {
      candidates.push_back({std::move(g), DecGate::kOr});
    }
  }
  {
    TwoCopyOracle and_oracle(r, q, num_inputs, support, budget);
    if (Grouping g = sat_group_variables(and_oracle, support, budget);
        !g.empty()) {
      candidates.push_back({std::move(g), DecGate::kAnd});
    }
  }
  if (candidates.empty()) return std::nullopt;

  const bool balance = budget.options().balance_cost;
  const auto score = [balance](const SatBestGrouping& c) {
    return static_cast<long>(c.grouping.size()) * 1000 -
           (balance ? static_cast<long>(c.grouping.imbalance()) : 0);
  };
  return *std::max_element(
      candidates.begin(), candidates.end(),
      [&score](const SatBestGrouping& a, const SatBestGrouping& b) {
        return score(a) < score(b);
      });
}

}  // namespace bidec::satdec
