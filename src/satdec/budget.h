// Resource accounting shared by every CDCL solver the SAT decomposition
// engine creates. One Budget per synthesize run enforces the global conflict
// ceiling and the wall-clock deadline; each query site wraps its private
// Solver in a BudgetedSolver so every solve() is charged, folded into
// SatDecStats, and aborted uniformly via SatDecAbortError.
#ifndef BIDEC_SATDEC_BUDGET_H
#define BIDEC_SATDEC_BUDGET_H

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>

#include "proof/drat_check.h"
#include "proof/proof_log.h"
#include "sat/solver.h"
#include "sat/tseitin.h"
#include "satdec/options.h"
#include "satdec/sat_func.h"

namespace bidec::satdec {

class Budget {
 public:
  Budget(const SatDecOptions& opt, SatDecStats& stats)
      : opt_(opt), stats_(stats) {}

  void check_deadline() const {
    if (opt_.deadline && std::chrono::steady_clock::now() > *opt_.deadline) {
      throw SatDecAbortError("satdec: deadline exceeded");
    }
  }

  /// Conflicts the next solve may still spend; nullopt = unlimited.
  [[nodiscard]] std::optional<std::uint64_t> remaining_conflicts() const {
    if (opt_.total_conflict_budget == 0) return std::nullopt;
    return opt_.total_conflict_budget > used_
               ? opt_.total_conflict_budget - used_
               : 0;
  }

  void charge(std::uint64_t conflicts) {
    used_ += conflicts;
    if (opt_.total_conflict_budget != 0 && used_ > opt_.total_conflict_budget) {
      throw SatDecAbortError("satdec: conflict budget exhausted");
    }
  }

  [[nodiscard]] SatDecStats& stats() noexcept { return stats_; }
  [[nodiscard]] const SatDecOptions& options() const noexcept { return opt_; }

 private:
  const SatDecOptions& opt_;
  SatDecStats& stats_;
  std::uint64_t used_ = 0;
};

/// A private CDCL solver plus its encoders, with budget-enforced solving.
class BudgetedSolver {
 public:
  explicit BudgetedSolver(Budget& budget)
      : budget_(budget),
        enc_(solver_),
        funcs_(enc_, budget.options(), budget.stats()) {
    // Arm the proof log before any clause reaches the solver (the encoder
    // constructors add none), so the checker sees the complete formula.
    if (budget.options().proof != proof::ProofPolicy::kOff) {
      log_ = std::make_unique<proof::ProofLog>();
      solver_.set_proof_log(log_.get());
      if (budget.options().proof == proof::ProofPolicy::kCheck) {
        checker_ = std::make_unique<proof::DratChecker>();
      }
    }
  }

  ~BudgetedSolver() {
    if (log_ != nullptr) {
      proof::ProofStats& ps = budget_.stats().proof;
      ps.logged_inputs += log_->input_clauses();
      ps.proof_clauses += log_->derived_clauses();
      ps.deletions += log_->deletions();
    }
  }

  BudgetedSolver(const BudgetedSolver&) = delete;
  BudgetedSolver& operator=(const BudgetedSolver&) = delete;

  [[nodiscard]] sat::Solver& solver() noexcept { return solver_; }
  [[nodiscard]] sat::TseitinEncoder& encoder() noexcept { return enc_; }
  [[nodiscard]] FuncEncoder& funcs() noexcept { return funcs_; }

  /// solve() with the remaining global conflict budget applied as this
  /// call's cap; never returns kUnknown (a budget trip throws).
  [[nodiscard]] sat::Solver::Result solve(
      std::span<const sat::Lit> assumptions) {
    budget_.check_deadline();
    const auto remaining = budget_.remaining_conflicts();
    if (remaining && *remaining == 0) {
      throw SatDecAbortError("satdec: conflict budget exhausted");
    }
    solver_.set_conflict_budget(remaining ? *remaining : 0);
    const sat::SolverStats before = solver_.stats();
    const sat::Solver::Result res = solver_.solve(assumptions);
    sat::SolverStats delta = solver_.stats();
    delta.conflicts -= before.conflicts;
    delta.decisions -= before.decisions;
    delta.propagations -= before.propagations;
    delta.restarts -= before.restarts;
    delta.learned -= before.learned;
    delta.deleted_learned -= before.deleted_learned;
    budget_.stats().solver += delta;
    ++budget_.stats().solves;
    budget_.charge(delta.conflicts);
    if (res == sat::Solver::Result::kUnknown) {
      throw SatDecAbortError("satdec: conflict budget exhausted");
    }
    if (res == sat::Solver::Result::kUnsat && checker_ != nullptr) {
      check_unsat_proof(assumptions);
    }
    return res;
  }
  [[nodiscard]] sat::Solver::Result solve(
      std::initializer_list<sat::Lit> assumptions) {
    return solve(std::span<const sat::Lit>(assumptions.begin(),
                                           assumptions.size()));
  }

 private:
  /// Re-validate the UNSAT verdict the solver just produced against the
  /// clause proof, per-call (ProofPolicy::kCheck). The checker is
  /// incremental, so repeated calls on one growing log only pay for the
  /// newest verdict's derivation cone.
  void check_unsat_proof(std::span<const sat::Lit> assumptions) {
    proof::ProofStats& ps = budget_.stats().proof;
    if (budget_.options().proof_corrupt_fault) {
      log_->corrupt_last_derived_for_test();
    }
    const proof::CheckResult r = checker_->check(*log_, assumptions);
    ++ps.checked_unsat;
    ps.check_ms += r.check_ms;
    // The checker's marked counters are cumulative per solver; fold deltas.
    ps.trimmed_clauses += r.checked - checked_seen_;
    ps.core_inputs += r.core_inputs - core_seen_;
    checked_seen_ = r.checked;
    core_seen_ = r.core_inputs;
    if (!r.valid) {
      ++ps.failed_checks;
      throw proof::ProofCheckError("satdec: UNSAT proof check failed: " +
                                   r.error);
    }
  }

  Budget& budget_;
  sat::Solver solver_;
  sat::TseitinEncoder enc_;
  FuncEncoder funcs_;
  std::unique_ptr<proof::ProofLog> log_;
  std::unique_ptr<proof::DratChecker> checker_;
  std::uint64_t checked_seen_ = 0;
  std::uint64_t core_seen_ = 0;
};

}  // namespace bidec::satdec

#endif  // BIDEC_SATDEC_BUDGET_H
