// Resource accounting shared by every CDCL solver the SAT decomposition
// engine creates. One Budget per synthesize run enforces the global conflict
// ceiling and the wall-clock deadline; each query site wraps its private
// Solver in a BudgetedSolver so every solve() is charged, folded into
// SatDecStats, and aborted uniformly via SatDecAbortError.
#ifndef BIDEC_SATDEC_BUDGET_H
#define BIDEC_SATDEC_BUDGET_H

#include <chrono>
#include <cstdint>
#include <optional>
#include <span>

#include "sat/solver.h"
#include "sat/tseitin.h"
#include "satdec/options.h"
#include "satdec/sat_func.h"

namespace bidec::satdec {

class Budget {
 public:
  Budget(const SatDecOptions& opt, SatDecStats& stats)
      : opt_(opt), stats_(stats) {}

  void check_deadline() const {
    if (opt_.deadline && std::chrono::steady_clock::now() > *opt_.deadline) {
      throw SatDecAbortError("satdec: deadline exceeded");
    }
  }

  /// Conflicts the next solve may still spend; nullopt = unlimited.
  [[nodiscard]] std::optional<std::uint64_t> remaining_conflicts() const {
    if (opt_.total_conflict_budget == 0) return std::nullopt;
    return opt_.total_conflict_budget > used_
               ? opt_.total_conflict_budget - used_
               : 0;
  }

  void charge(std::uint64_t conflicts) {
    used_ += conflicts;
    if (opt_.total_conflict_budget != 0 && used_ > opt_.total_conflict_budget) {
      throw SatDecAbortError("satdec: conflict budget exhausted");
    }
  }

  [[nodiscard]] SatDecStats& stats() noexcept { return stats_; }
  [[nodiscard]] const SatDecOptions& options() const noexcept { return opt_; }

 private:
  const SatDecOptions& opt_;
  SatDecStats& stats_;
  std::uint64_t used_ = 0;
};

/// A private CDCL solver plus its encoders, with budget-enforced solving.
class BudgetedSolver {
 public:
  explicit BudgetedSolver(Budget& budget)
      : budget_(budget),
        enc_(solver_),
        funcs_(enc_, budget.options(), budget.stats()) {}

  [[nodiscard]] sat::Solver& solver() noexcept { return solver_; }
  [[nodiscard]] sat::TseitinEncoder& encoder() noexcept { return enc_; }
  [[nodiscard]] FuncEncoder& funcs() noexcept { return funcs_; }

  /// solve() with the remaining global conflict budget applied as this
  /// call's cap; never returns kUnknown (a budget trip throws).
  [[nodiscard]] sat::Solver::Result solve(
      std::span<const sat::Lit> assumptions) {
    budget_.check_deadline();
    const auto remaining = budget_.remaining_conflicts();
    if (remaining && *remaining == 0) {
      throw SatDecAbortError("satdec: conflict budget exhausted");
    }
    solver_.set_conflict_budget(remaining ? *remaining : 0);
    const sat::SolverStats before = solver_.stats();
    const sat::Solver::Result res = solver_.solve(assumptions);
    sat::SolverStats delta = solver_.stats();
    delta.conflicts -= before.conflicts;
    delta.decisions -= before.decisions;
    delta.propagations -= before.propagations;
    delta.restarts -= before.restarts;
    delta.learned -= before.learned;
    delta.deleted_learned -= before.deleted_learned;
    budget_.stats().solver += delta;
    ++budget_.stats().solves;
    budget_.charge(delta.conflicts);
    if (res == sat::Solver::Result::kUnknown) {
      throw SatDecAbortError("satdec: conflict budget exhausted");
    }
    return res;
  }
  [[nodiscard]] sat::Solver::Result solve(
      std::initializer_list<sat::Lit> assumptions) {
    return solve(std::span<const sat::Lit>(assumptions.begin(),
                                           assumptions.size()));
  }

 private:
  Budget& budget_;
  sat::Solver solver_;
  sat::TseitinEncoder enc_;
  FuncEncoder funcs_;
};

}  // namespace bidec::satdec

#endif  // BIDEC_SATDEC_BUDGET_H
