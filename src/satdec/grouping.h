// SAT-driven variable grouping: the Fig. 5/6 greedy private-set growth with
// the Theorem-1 decomposability check replaced by an incremental two-copy
// SAT query, plus the QBF paper's core-guided acceleration.
//
// The oracle encodes Q(x) ∧ R(x') ∧ R(x'') once, with copy x' tied to x
// outside X_A and copy x'' tied to x outside X_B through *selector
// literals*: eqA[v] → (x'[v] = x[v]) and eqB[v] → (x''[v] = x[v]). A
// candidate grouping is then a single solve under assumptions — UNSAT means
// decomposable (no witness where Q holds but both quantified copies of R can
// reach an off-point). When a query is UNSAT, the solver's final conflict
// clause names the selector assumptions that actually mattered; every tied
// variable whose selector is absent from that core can be moved into a
// private set immediately without a recheck (the remaining assumptions are a
// superset of the core, so the query stays UNSAT). On BDD-hostile functions
// this harvesting admits most of the support in O(1) queries instead of one
// query per variable.
#ifndef BIDEC_SATDEC_GROUPING_H
#define BIDEC_SATDEC_GROUPING_H

#include <optional>
#include <span>
#include <vector>

#include "satdec/budget.h"
#include "satdec/sat_func.h"
#include "satdec/tt_isf.h"

namespace bidec::satdec {

/// Incremental two-copy Theorem-1 oracle for one (q, r) orientation.
/// Construct with (q, r) for OR-decomposability, (r, q) for the AND dual.
class TwoCopyOracle {
 public:
  TwoCopyOracle(const FuncPtr& q, const FuncPtr& r, unsigned num_inputs,
                std::span<const unsigned> support, Budget& budget);

  /// One assumption solve: is the interval decomposable with private sets
  /// (xa, xb)? Global variable indices; xa and xb must be disjoint subsets
  /// of the support.
  [[nodiscard]] bool decomposable(std::span<const unsigned> xa,
                                  std::span<const unsigned> xb);

  /// After decomposable(...) returned true: grow `g` in place with every
  /// support variable whose selector assumption is absent from the UNSAT
  /// core. Variables free on both sides go to the smaller set.
  void harvest_core(Grouping& g, std::span<const unsigned> support);

 private:
  Budget& budget_;
  BudgetedSolver bs_;
  std::vector<sat::Lit> sel_a_;  ///< indexed by global var; kUndefLit off-support
  std::vector<sat::Lit> sel_b_;
  sat::Lit q_lit_;
  sat::Lit r1_lit_;
  sat::Lit r2_lit_;
};

struct SatBestGrouping {
  Grouping grouping;  ///< global variable indices
  DecGate gate = DecGate::kOr;
};

/// The strong grouping search of find_best_grouping, run on two oracles
/// (OR and AND orientation) with core harvesting after every successful
/// query. EXOR is not offered at formula level (see SatDecOptions::use_exor
/// — it applies to the truth-table domain).
[[nodiscard]] std::optional<SatBestGrouping> sat_find_best_grouping(
    const FuncPtr& q, const FuncPtr& r, unsigned num_inputs,
    std::span<const unsigned> support, Budget& budget);

}  // namespace bidec::satdec

#endif  // BIDEC_SATDEC_GROUPING_H
