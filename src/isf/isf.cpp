#include "isf/isf.h"

#include <stdexcept>

namespace bidec {

Isf::Isf(Bdd on_set, Bdd off_set) : q_(std::move(on_set)), r_(std::move(off_set)) {
  if (!q_.is_valid() || !r_.is_valid() || q_.manager() != r_.manager()) {
    throw std::invalid_argument("Isf: on-set and off-set must share a manager");
  }
  if (!q_.disjoint_with(r_)) {
    throw std::invalid_argument("Isf: on-set and off-set intersect");
  }
}

Isf Isf::from_csf(const Bdd& f) { return Isf(f, ~f); }

Isf Isf::from_on_dc(const Bdd& on_set, const Bdd& dc_set) {
  return Isf(on_set - dc_set, ~(on_set | dc_set));
}

Bdd Isf::dc() const { return ~(q_ | r_); }

bool Isf::is_csf() const { return (q_ | r_).is_true(); }

bool Isf::is_compatible(const Bdd& f) const {
  return q_.implies(f) && r_.disjoint_with(f);
}

bool Isf::is_compatible_complement(const Bdd& f) const {
  return r_.implies(f) && q_.disjoint_with(f);
}

Bdd Isf::any_cover() const {
  BddManager& mgr = *manager();
  if (is_csf()) return q_;
  return mgr.isop_bdd(q_, ~r_);
}

Bdd Isf::minimized_cover() const {
  BddManager& mgr = *manager();
  if (is_csf()) return q_;
  return mgr.restrict_to(q_, q_ | r_);
}

std::vector<unsigned> Isf::support() const { return manager()->support_vars(q_, r_); }

Isf Isf::cofactor(unsigned v, bool val) const {
  BddManager& mgr = *manager();
  return Isf(mgr.cofactor(q_, v, val), mgr.cofactor(r_, v, val));
}

bool Isf::variable_inessential(unsigned v) const {
  BddManager& mgr = *manager();
  const unsigned vars[] = {v};
  const Bdd eq = mgr.exists(q_, vars);
  const Bdd er = mgr.exists(r_, vars);
  return eq.disjoint_with(er);
}

Isf Isf::remove_inessential_variables() const {
  BddManager& mgr = *manager();
  Bdd q = q_;
  Bdd r = r_;
  for (const unsigned v : manager()->support_vars(q, r)) {
    const unsigned vars[] = {v};
    const Bdd eq = mgr.exists(q, vars);
    const Bdd er = mgr.exists(r, vars);
    if (eq.disjoint_with(er)) {
      q = eq;
      r = er;
    }
  }
  return Isf(std::move(q), std::move(r));
}

}  // namespace bidec
