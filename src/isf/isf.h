// Incompletely specified functions (ISFs) represented by an on-set Q and an
// off-set R as BDDs, with Q & R = 0 (paper, Section 2). The don't-care set
// is the complement of Q | R. A completely specified function f is
// compatible with the ISF iff Q <= f <= ~R.
#ifndef BIDEC_ISF_ISF_H
#define BIDEC_ISF_ISF_H

#include <vector>

#include "bdd/bdd.h"

namespace bidec {

class Isf {
 public:
  /// Invalid (empty) ISF; only useful as a placeholder.
  Isf() = default;

  /// Construct from on-set and off-set. Throws std::invalid_argument if the
  /// two sets intersect.
  Isf(Bdd on_set, Bdd off_set);

  /// ISF of a completely specified function (empty don't-care set).
  [[nodiscard]] static Isf from_csf(const Bdd& f);
  /// ISF from on-set and don't-care set: off-set = ~(on | dc).
  [[nodiscard]] static Isf from_on_dc(const Bdd& on_set, const Bdd& dc_set);

  [[nodiscard]] bool is_valid() const noexcept { return q_.is_valid(); }
  [[nodiscard]] const Bdd& q() const noexcept { return q_; }  ///< on-set
  [[nodiscard]] const Bdd& r() const noexcept { return r_; }  ///< off-set
  [[nodiscard]] Bdd dc() const;                               ///< don't-care set
  [[nodiscard]] BddManager* manager() const noexcept { return q_.manager(); }

  /// True iff the don't-care set is empty (exactly one compatible CSF).
  [[nodiscard]] bool is_csf() const;
  /// True iff the constant-0 (constant-1) function is compatible.
  [[nodiscard]] bool admits_const0() const { return q_.is_false(); }
  [[nodiscard]] bool admits_const1() const { return r_.is_false(); }

  /// Theorem 6: f is compatible iff Q & ~f = 0 and R & f = 0.
  [[nodiscard]] bool is_compatible(const Bdd& f) const;
  /// Theorem 6 (second half): ~f is compatible.
  [[nodiscard]] bool is_compatible_complement(const Bdd& f) const;

  /// A canonical compatible CSF: the irredundant SOP cover of the interval
  /// [Q, ~R] (never fails; returns Q itself if the ISF is completely
  /// specified).
  [[nodiscard]] Bdd any_cover() const;

  /// A compatible CSF chosen to minimize BDD size: Coudert-Madre restrict
  /// of the on-set against the care set Q | R (the classic don't-care BDD
  /// minimization used by BDD-structural synthesis flows).
  [[nodiscard]] Bdd minimized_cover() const;

  /// Union of the supports of Q and R (sorted variable indices). Note that
  /// some of these variables may still be inessential for the *interval*
  /// (see remove_inessential_variables).
  [[nodiscard]] std::vector<unsigned> support() const;

  /// Cofactor both bounds w.r.t. one variable.
  [[nodiscard]] Isf cofactor(unsigned v, bool val) const;

  /// True iff variable `v` can be dropped: the quantified interval
  /// (exists v Q, exists v R) is still consistent.
  [[nodiscard]] bool variable_inessential(unsigned v) const;

  /// Paper Fig. 7, RemoveInessentialVariables: greedily drop variables that
  /// are inessential for the interval. Returns the reduced ISF.
  [[nodiscard]] Isf remove_inessential_variables() const;

 private:
  Bdd q_;
  Bdd r_;
};

}  // namespace bidec

#endif  // BIDEC_ISF_ISF_H
