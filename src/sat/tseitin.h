// Tseitin transformation layer: turns the repo's function representations
// (two-input-gate netlists, espresso PLA covers, ROBDDs) into CNF over a
// sat::Solver. Every encode_* call introduces auxiliary variables with
// defining clauses and returns a literal equivalent to the encoded function,
// so callers compose conditions with assumptions (e.g. the miter checks in
// verify/sat_verifier.cpp and the two-copy decomposability encoding in
// bidec/sat_check.cpp).
#ifndef BIDEC_SAT_TSEITIN_H
#define BIDEC_SAT_TSEITIN_H

#include <span>
#include <string_view>
#include <vector>

#include "bdd/bdd.h"
#include "io/pla.h"
#include "netlist/gate.h"
#include "netlist/netlist.h"
#include "sat/solver.h"

namespace bidec::sat {

class TseitinEncoder {
 public:
  explicit TseitinEncoder(Solver& solver) : solver_(solver) {}

  [[nodiscard]] Solver& solver() noexcept { return solver_; }

  /// Fresh solver variables (used as circuit inputs or BDD variables).
  Var add_var() { return solver_.new_var(); }
  std::vector<Var> add_vars(std::size_t n);

  /// A literal fixed to `value` (one shared variable, created on demand).
  Lit constant(bool value);

  // --- gate primitives ----------------------------------------------------
  // Each returns a literal defined (via new clauses) to equal the gate
  // function of its operands. Negation is free in CNF, so the negated gate
  // types reuse their base gate's encoding.
  Lit encode_and(Lit a, Lit b);
  Lit encode_or(Lit a, Lit b);
  Lit encode_xor(Lit a, Lit b);
  /// Any GateType (arity from gate_arity; `b` ignored for 1-input types).
  Lit encode_gate(GateType type, Lit a, Lit b);
  /// Assert a == b (two binary clauses).
  void add_equal(Lit a, Lit b);

  // --- structure encodings ------------------------------------------------
  /// Encode the reachable cone of `net`; netlist input i is represented by
  /// in_vars[i]. Returns one literal per primary output.
  std::vector<Lit> encode_netlist(const Netlist& net, std::span<const Var> in_vars);

  /// Cube over the inputs, one character per variable: '0' negative
  /// literal, '1' positive, '-' absent. Returns a literal equal to the
  /// cube's conjunction.
  Lit encode_cube(std::string_view pattern, std::span<const Var> in_vars);

  /// Disjunction of the input cubes of every PLA row whose output-plane
  /// character for output `o` equals `match` ('1' for the on-set cover,
  /// '0' for the off-set cover of .type fr files, '-' for the dc cover).
  Lit encode_cover(const PlaFile& pla, std::span<const Var> in_vars, unsigned o,
                   char match);

  /// Encode a BDD as CNF: one auxiliary variable per internal node with the
  /// Shannon-expansion (ITE) clauses; BDD variable v maps to in_vars[v].
  /// Independent recursive engines meet here: the *structure* comes from the
  /// BDD, but the returned literal's semantics are checked by SAT search.
  Lit encode_bdd(const Bdd& f, std::span<const Var> in_vars);

 private:
  Solver& solver_;
  Var true_var_ = kNoVar;
};

}  // namespace bidec::sat

#endif  // BIDEC_SAT_TSEITIN_H
