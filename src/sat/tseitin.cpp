#include "sat/tseitin.h"

#include <stdexcept>
#include <unordered_map>

namespace bidec::sat {

std::vector<Var> TseitinEncoder::add_vars(std::size_t n) {
  std::vector<Var> vars;
  vars.reserve(n);
  for (std::size_t i = 0; i < n; ++i) vars.push_back(solver_.new_var());
  return vars;
}

Lit TseitinEncoder::constant(bool value) {
  if (true_var_ == kNoVar) {
    true_var_ = solver_.new_var();
    solver_.add_clause({mk_lit(true_var_)});
  }
  return mk_lit(true_var_, !value);
}

Lit TseitinEncoder::encode_and(Lit a, Lit b) {
  const Lit n = mk_lit(solver_.new_var());
  solver_.add_clause({~n, a});
  solver_.add_clause({~n, b});
  solver_.add_clause({n, ~a, ~b});
  return n;
}

Lit TseitinEncoder::encode_or(Lit a, Lit b) {
  const Lit n = mk_lit(solver_.new_var());
  solver_.add_clause({n, ~a});
  solver_.add_clause({n, ~b});
  solver_.add_clause({~n, a, b});
  return n;
}

Lit TseitinEncoder::encode_xor(Lit a, Lit b) {
  const Lit n = mk_lit(solver_.new_var());
  solver_.add_clause({~n, a, b});
  solver_.add_clause({~n, ~a, ~b});
  solver_.add_clause({n, ~a, b});
  solver_.add_clause({n, a, ~b});
  return n;
}

Lit TseitinEncoder::encode_gate(GateType type, Lit a, Lit b) {
  switch (type) {
    case GateType::kConst0: return constant(false);
    case GateType::kConst1: return constant(true);
    case GateType::kInput:
    case GateType::kBuf: return a;
    case GateType::kNot: return ~a;
    case GateType::kAnd: return encode_and(a, b);
    case GateType::kOr: return encode_or(a, b);
    case GateType::kXor: return encode_xor(a, b);
    case GateType::kNand: return ~encode_and(a, b);
    case GateType::kNor: return ~encode_or(a, b);
    case GateType::kXnor: return ~encode_xor(a, b);
  }
  throw std::invalid_argument("encode_gate: unknown gate type");
}

void TseitinEncoder::add_equal(Lit a, Lit b) {
  solver_.add_clause({~a, b});
  solver_.add_clause({a, ~b});
}

std::vector<Lit> TseitinEncoder::encode_netlist(const Netlist& net,
                                                std::span<const Var> in_vars) {
  if (in_vars.size() < net.num_inputs()) {
    throw std::invalid_argument("encode_netlist: too few input variables");
  }
  std::vector<Lit> value(net.num_nodes(), kUndefLit);
  for (std::size_t i = 0; i < net.num_inputs(); ++i) {
    value[net.inputs()[i]] = mk_lit(in_vars[i]);
  }
  for (const SignalId id : net.reachable_topo_order()) {
    const Netlist::Node& n = net.node(id);
    if (n.type == GateType::kInput) continue;
    const Lit a = n.fanin0 != kNoSignal ? value[n.fanin0] : kUndefLit;
    const Lit b = n.fanin1 != kNoSignal ? value[n.fanin1] : kUndefLit;
    value[id] = encode_gate(n.type, a, b);
  }
  std::vector<Lit> outputs;
  outputs.reserve(net.num_outputs());
  for (std::size_t o = 0; o < net.num_outputs(); ++o) {
    outputs.push_back(value[net.output_signal(o)]);
  }
  return outputs;
}

Lit TseitinEncoder::encode_cube(std::string_view pattern,
                                std::span<const Var> in_vars) {
  if (pattern.size() > in_vars.size()) {
    throw std::invalid_argument("encode_cube: too few input variables");
  }
  std::vector<Lit> lits;
  for (std::size_t v = 0; v < pattern.size(); ++v) {
    if (pattern[v] == '1') {
      lits.push_back(mk_lit(in_vars[v]));
    } else if (pattern[v] == '0') {
      lits.push_back(mk_lit(in_vars[v], /*negated=*/true));
    }
  }
  if (lits.empty()) return constant(true);
  if (lits.size() == 1) return lits[0];
  const Lit c = mk_lit(solver_.new_var());
  std::vector<Lit> long_clause{c};
  for (const Lit l : lits) {
    solver_.add_clause({~c, l});
    long_clause.push_back(~l);
  }
  solver_.add_clause(std::move(long_clause));
  return c;
}

Lit TseitinEncoder::encode_cover(const PlaFile& pla, std::span<const Var> in_vars,
                                 unsigned o, char match) {
  if (o >= pla.num_outputs) {
    throw std::invalid_argument("encode_cover: output index out of range");
  }
  std::vector<Lit> cubes;
  for (const PlaFile::Row& row : pla.rows) {
    if (row.outputs[o] == match) cubes.push_back(encode_cube(row.inputs, in_vars));
  }
  if (cubes.empty()) return constant(false);
  if (cubes.size() == 1) return cubes[0];
  const Lit d = mk_lit(solver_.new_var());
  std::vector<Lit> long_clause{~d};
  for (const Lit c : cubes) {
    solver_.add_clause({d, ~c});
    long_clause.push_back(c);
  }
  solver_.add_clause(std::move(long_clause));
  return d;
}

Lit TseitinEncoder::encode_bdd(const Bdd& f, std::span<const Var> in_vars) {
  if (!f.is_valid()) throw std::invalid_argument("encode_bdd: invalid BDD handle");
  if (f.is_const()) return constant(f.is_true());

  std::unordered_map<NodeId, Lit> node_lit;
  // Iterative DFS over the shared DAG: children first, then define the node.
  std::vector<Bdd> stack{f};
  while (!stack.empty()) {
    const Bdd g = stack.back();
    if (g.is_const() || node_lit.count(g.id()) != 0) {
      stack.pop_back();
      continue;
    }
    const Bdd lo = g.low();
    const Bdd hi = g.high();
    const bool lo_ready = lo.is_const() || node_lit.count(lo.id()) != 0;
    const bool hi_ready = hi.is_const() || node_lit.count(hi.id()) != 0;
    if (!lo_ready || !hi_ready) {
      if (!lo_ready) stack.push_back(lo);
      if (!hi_ready) stack.push_back(hi);
      continue;
    }
    stack.pop_back();
    const unsigned v = g.top_var();
    if (v >= in_vars.size()) {
      throw std::invalid_argument("encode_bdd: too few input variables");
    }
    const Lit x = mk_lit(in_vars[v]);
    const Lit l = lo.is_const() ? constant(lo.is_true()) : node_lit.at(lo.id());
    const Lit h = hi.is_const() ? constant(hi.is_true()) : node_lit.at(hi.id());
    const Lit n = mk_lit(solver_.new_var());
    // n <-> ITE(x, h, l), plus the two redundant clauses that let unit
    // propagation fire when both branches agree.
    solver_.add_clause({~n, ~x, h});
    solver_.add_clause({~n, x, l});
    solver_.add_clause({n, ~x, ~h});
    solver_.add_clause({n, x, ~l});
    solver_.add_clause({~n, l, h});
    solver_.add_clause({n, ~l, ~h});
    node_lit.emplace(g.id(), n);
  }
  return node_lit.at(f.id());
}

}  // namespace bidec::sat
