#include "sat/solver.h"

#include <algorithm>
#include <cassert>

namespace bidec::sat {

namespace {

// Luby restart sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
std::uint64_t luby(std::uint64_t i) {
  // Find the finite subsequence containing index i and its position in it.
  std::uint64_t size = 1, seq = 0;
  while (size < i + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != i) {
    size = (size - 1) / 2;
    --seq;
    i = i % size;
  }
  return std::uint64_t{1} << seq;
}

}  // namespace

Solver::Solver() = default;

Var Solver::new_var() {
  const Var v = static_cast<Var>(assigns_.size());
  assigns_.push_back(LBool::kUndef);
  polarity_.push_back(false);
  level_.push_back(0);
  reason_.push_back(kNoClause);
  activity_.push_back(0.0);
  heap_pos_.push_back(-1);
  seen_.push_back(0);
  watches_.emplace_back();
  watches_.emplace_back();
  heap_insert(v);
  return v;
}

bool Solver::add_clause(std::vector<Lit> lits) {
  assert(decision_level() == 0);
  if (!ok_) return false;

  // Log the clause exactly as the caller gave it: the normalization below
  // (dropping false literals, merging duplicates) is RUP-derivable by the
  // checker's own unit propagation, so the original form is the honest
  // input axiom.
  if (proof_ != nullptr) proof_->on_add(lits, /*derived=*/false);

  // Normalize: sort, merge duplicates, drop top-level-false literals and
  // detect tautologies / top-level-true literals.
  std::sort(lits.begin(), lits.end(),
            [](Lit a, Lit b) { return a.code < b.code; });
  std::vector<Lit> out;
  out.reserve(lits.size());
  Lit prev = kUndefLit;
  for (const Lit p : lits) {
    if (value(p) == LBool::kTrue || p == ~prev) return true;  // satisfied / tautology
    if (value(p) == LBool::kFalse || p == prev) continue;     // falsified / duplicate
    out.push_back(p);
    prev = p;
  }

  if (out.empty()) {
    ok_ = false;
    // Every literal of the clause is false at the top level, so unit
    // propagation alone refutes the formula: the empty clause is RUP.
    if (proof_ != nullptr) proof_->on_add({}, /*derived=*/true);
    return false;
  }
  if (out.size() == 1) {
    unchecked_enqueue(out[0], kNoClause);
    ok_ = propagate() == kNoClause;
    if (!ok_ && proof_ != nullptr) proof_->on_add({}, /*derived=*/true);
    return ok_;
  }
  const ClauseRef cref = alloc_clause(std::move(out), /*learned=*/false);
  problem_clauses_.push_back(cref);
  attach_clause(cref);
  return true;
}

bool Solver::add_clause(std::initializer_list<Lit> lits) {
  return add_clause(std::vector<Lit>(lits));
}

Solver::ClauseRef Solver::alloc_clause(std::vector<Lit> lits, bool learned) {
  Clause c;
  c.lits = std::move(lits);
  c.learned = learned;
  if (!free_refs_.empty()) {
    const ClauseRef cref = free_refs_.back();
    free_refs_.pop_back();
    clauses_[cref] = std::move(c);
    return cref;
  }
  clauses_.push_back(std::move(c));
  return static_cast<ClauseRef>(clauses_.size() - 1);
}

void Solver::attach_clause(ClauseRef cref) {
  const Clause& c = clauses_[cref];
  assert(c.lits.size() >= 2);
  // Watch the negations: when ~lits[k] is assigned, the clause needs a look.
  watches_[(~c.lits[0]).code].push_back(Watcher{cref, c.lits[1]});
  watches_[(~c.lits[1]).code].push_back(Watcher{cref, c.lits[0]});
}

void Solver::detach_clause(ClauseRef cref) {
  const Clause& c = clauses_[cref];
  for (const Lit w : {c.lits[0], c.lits[1]}) {
    std::vector<Watcher>& ws = watches_[(~w).code];
    for (std::size_t i = 0; i < ws.size(); ++i) {
      if (ws[i].cref == cref) {
        ws[i] = ws.back();
        ws.pop_back();
        break;
      }
    }
  }
}

void Solver::remove_clause(ClauseRef cref) {
  if (proof_ != nullptr && clauses_[cref].learned) {
    proof_->on_delete(clauses_[cref].lits);
  }
  detach_clause(cref);
  clauses_[cref].deleted = true;
  clauses_[cref].lits.clear();
  clauses_[cref].lits.shrink_to_fit();
  free_refs_.push_back(cref);
}

bool Solver::clause_locked(ClauseRef cref) const {
  const Clause& c = clauses_[cref];
  const Var v = c.lits[0].var();
  return value(c.lits[0]) == LBool::kTrue && reason_[v] == cref;
}

void Solver::unchecked_enqueue(Lit p, ClauseRef from) {
  assert(value(p) == LBool::kUndef);
  assigns_[p.var()] = p.negated() ? LBool::kFalse : LBool::kTrue;
  polarity_[p.var()] = !p.negated();
  level_[p.var()] = decision_level();
  reason_[p.var()] = from;
  trail_.push_back(p);
}

Solver::ClauseRef Solver::propagate() {
  ClauseRef confl = kNoClause;
  while (qhead_ < trail_.size()) {
    const Lit p = trail_[qhead_++];  // p became true; visit watchers of ~p
    ++stats_.propagations;
    std::vector<Watcher>& ws = watches_[p.code];
    std::size_t i = 0, j = 0;
    while (i < ws.size()) {
      const Watcher w = ws[i++];
      if (value(w.blocker) == LBool::kTrue) {
        ws[j++] = w;
        continue;
      }
      Clause& c = clauses_[w.cref];
      // Ensure the false literal (~p) sits at position 1.
      const Lit false_lit = ~p;
      if (c.lits[0] == false_lit) std::swap(c.lits[0], c.lits[1]);
      assert(c.lits[1] == false_lit);
      const Lit first = c.lits[0];
      if (first != w.blocker && value(first) == LBool::kTrue) {
        ws[j++] = Watcher{w.cref, first};
        continue;
      }
      // Look for a new literal to watch.
      bool found = false;
      for (std::size_t k = 2; k < c.lits.size(); ++k) {
        if (value(c.lits[k]) != LBool::kFalse) {
          std::swap(c.lits[1], c.lits[k]);
          watches_[(~c.lits[1]).code].push_back(Watcher{w.cref, first});
          found = true;
          break;
        }
      }
      if (found) continue;
      // Clause is unit or conflicting.
      ws[j++] = w;
      if (value(first) == LBool::kFalse) {
        confl = w.cref;
        qhead_ = trail_.size();
        while (i < ws.size()) ws[j++] = ws[i++];
        break;
      }
      unchecked_enqueue(first, w.cref);
    }
    ws.resize(j);
    if (confl != kNoClause) break;
  }
  return confl;
}

void Solver::cancel_until(unsigned lvl) {
  if (decision_level() <= lvl) return;
  for (std::size_t i = trail_.size(); i > trail_lim_[lvl];) {
    --i;
    const Var v = trail_[i].var();
    assigns_[v] = LBool::kUndef;
    reason_[v] = kNoClause;
    if (!heap_contains(v)) heap_insert(v);
  }
  trail_.resize(trail_lim_[lvl]);
  trail_lim_.resize(lvl);
  qhead_ = trail_.size();
}

void Solver::bump_var(Var v) {
  activity_[v] += var_inc_;
  if (activity_[v] > 1e100) {
    for (double& a : activity_) a *= 1e-100;
    var_inc_ *= 1e-100;
  }
  if (heap_contains(v)) heap_sift_up(static_cast<std::size_t>(heap_pos_[v]));
}

void Solver::bump_clause(Clause& c) {
  c.activity += cla_inc_;
  if (c.activity > 1e20) {
    for (const ClauseRef cref : learned_clauses_) clauses_[cref].activity *= 1e-20;
    cla_inc_ *= 1e-20;
  }
}

// First-UIP conflict analysis (MiniSat's analyze): walk the trail backwards
// resolving on literals of the current decision level until a single one
// remains; the rest form the learned clause.
void Solver::analyze(ClauseRef confl, std::vector<Lit>& out_learnt,
                     unsigned& out_btlevel) {
  out_learnt.clear();
  out_learnt.push_back(kUndefLit);  // slot for the asserting literal

  int path_count = 0;
  Lit p = kUndefLit;
  std::size_t index = trail_.size();

  do {
    assert(confl != kNoClause);
    Clause& c = clauses_[confl];
    if (c.learned) bump_clause(c);
    for (std::size_t j = (p == kUndefLit) ? 0 : 1; j < c.lits.size(); ++j) {
      const Lit q = c.lits[j];
      if (seen_[q.var()] == 0 && level_[q.var()] > 0) {
        bump_var(q.var());
        seen_[q.var()] = 1;
        if (level_[q.var()] >= decision_level()) {
          ++path_count;
        } else {
          out_learnt.push_back(q);
        }
      }
    }
    // Select the next seen literal from the trail to resolve on.
    while (seen_[trail_[--index].var()] == 0) {
    }
    p = trail_[index];
    confl = reason_[p.var()];
    seen_[p.var()] = 0;
    --path_count;
  } while (path_count > 0);
  out_learnt[0] = ~p;

  // Local minimization: drop a literal whose reason clause is entirely
  // covered by the remaining learned literals (self-subsumption). The seen
  // flags of erased literals must be cleared too, so keep the full list.
  const std::vector<Lit> to_clear = out_learnt;
  const auto new_end = std::remove_if(
      out_learnt.begin() + 1, out_learnt.end(),
      [this](Lit l) { return literal_redundant(l); });
  out_learnt.erase(new_end, out_learnt.end());

  // Find the backtrack level: the highest level below the current one.
  if (out_learnt.size() == 1) {
    out_btlevel = 0;
  } else {
    std::size_t max_i = 1;
    for (std::size_t i = 2; i < out_learnt.size(); ++i) {
      if (level_[out_learnt[i].var()] > level_[out_learnt[max_i].var()]) max_i = i;
    }
    std::swap(out_learnt[1], out_learnt[max_i]);
    out_btlevel = level_[out_learnt[1].var()];
  }

  for (const Lit l : to_clear) seen_[l.var()] = 0;
}

bool Solver::literal_redundant(Lit l) const {
  const ClauseRef r = reason_[l.var()];
  if (r == kNoClause) return false;
  const Clause& c = clauses_[r];
  for (std::size_t j = 1; j < c.lits.size(); ++j) {
    const Lit q = c.lits[j];
    if (seen_[q.var()] == 0 && level_[q.var()] > 0) return false;
  }
  return true;
}

// Compute the subset of assumptions sufficient for the conflict on `p`
// (p is an assumption found false under the earlier assumptions).
void Solver::analyze_final(Lit p) {
  // `p` is the negation of the failed assumption; conflict_ reports failed
  // assumptions in as-assumed form throughout (see the header contract),
  // so store ~p here and the raw trail decisions below.
  conflict_.clear();
  conflict_.push_back(~p);
  if (decision_level() == 0) return;

  seen_[p.var()] = 1;
  for (std::size_t i = trail_.size(); i > trail_lim_[0];) {
    --i;
    const Var v = trail_[i].var();
    if (seen_[v] == 0) continue;
    if (reason_[v] == kNoClause) {
      // A decision here is necessarily one of the assumptions.
      assert(level_[v] > 0);
      conflict_.push_back(trail_[i]);
    } else {
      const Clause& c = clauses_[reason_[v]];
      for (std::size_t j = 1; j < c.lits.size(); ++j) {
        if (level_[c.lits[j].var()] > 0) seen_[c.lits[j].var()] = 1;
      }
    }
    seen_[v] = 0;
  }
  seen_[p.var()] = 0;
}

Lit Solver::pick_branch_lit() {
  while (!heap_.empty()) {
    const Var v = heap_pop();
    if (value(v) == LBool::kUndef) {
      ++stats_.decisions;
      return mk_lit(v, !polarity_[v]);  // phase saving
    }
  }
  return kUndefLit;
}

void Solver::reduce_db() {
  // Remove the less active half of the learned clauses (never locked ones,
  // i.e. clauses currently acting as a reason on the trail).
  std::sort(learned_clauses_.begin(), learned_clauses_.end(),
            [this](ClauseRef a, ClauseRef b) {
              return clauses_[a].activity < clauses_[b].activity;
            });
  std::vector<ClauseRef> kept;
  kept.reserve(learned_clauses_.size());
  const std::size_t target = learned_clauses_.size() / 2;
  for (std::size_t i = 0; i < learned_clauses_.size(); ++i) {
    const ClauseRef cref = learned_clauses_[i];
    if (i < target && clauses_[cref].lits.size() > 2 && !clause_locked(cref)) {
      remove_clause(cref);
      ++stats_.deleted_learned;
    } else {
      kept.push_back(cref);
    }
  }
  learned_clauses_ = std::move(kept);
}

Solver::Result Solver::search(std::uint64_t max_conflicts_this_restart) {
  std::uint64_t conflicts_here = 0;
  std::vector<Lit> learnt;

  for (;;) {
    const ClauseRef confl = propagate();
    if (confl != kNoClause) {
      ++stats_.conflicts;
      ++conflicts_here;
      if (decision_level() == 0) {
        // Conflict under top-level propagation alone: the empty clause is
        // the RUP verdict for a globally unsatisfiable formula.
        if (proof_ != nullptr) proof_->on_add({}, /*derived=*/true);
        return Result::kUnsat;
      }

      unsigned bt_level = 0;
      analyze(confl, learnt, bt_level);
      if (proof_ != nullptr) proof_->on_add(learnt, /*derived=*/true);
      cancel_until(bt_level);
      if (learnt.size() == 1) {
        unchecked_enqueue(learnt[0], kNoClause);
      } else {
        const ClauseRef cref = alloc_clause(learnt, /*learned=*/true);
        learned_clauses_.push_back(cref);
        attach_clause(cref);
        bump_clause(clauses_[cref]);
        unchecked_enqueue(learnt[0], cref);
        ++stats_.learned;
      }
      decay_var_activity();
      decay_clause_activity();
      continue;
    }

    // No conflict.
    if (conflict_budget_ != 0 &&
        stats_.conflicts - conflicts_at_solve_start_ >= conflict_budget_) {
      cancel_until(0);
      return Result::kUnknown;
    }
    if (conflicts_here >= max_conflicts_this_restart) {
      ++stats_.restarts;
      cancel_until(0);
      return Result::kUnknown;  // restart: the caller loops
    }
    if (static_cast<double>(learned_clauses_.size()) >= max_learnts_ &&
        decision_level() == 0) {
      reduce_db();
    }

    // Assumptions are asserted as pseudo-decisions below real decisions.
    Lit next = kUndefLit;
    while (decision_level() < assumptions_.size()) {
      const Lit a = assumptions_[decision_level()];
      if (value(a) == LBool::kTrue) {
        new_decision_level();  // already implied: dummy level
      } else if (value(a) == LBool::kFalse) {
        analyze_final(~a);
        if (proof_ != nullptr) {
          // The verdict of an assumption UNSAT is the clause "some failed
          // assumption is false": the disjunction of the negated failed
          // assumptions, RUP against the formula plus the learned prefix.
          std::vector<Lit> verdict;
          verdict.reserve(conflict_.size());
          for (const Lit l : conflict_) verdict.push_back(~l);
          proof_->on_add(verdict, /*derived=*/true);
        }
        return Result::kUnsat;
      } else {
        next = a;
        break;
      }
    }
    if (next == kUndefLit) {
      next = pick_branch_lit();
      if (next == kUndefLit) return Result::kSat;  // all variables assigned
    }
    new_decision_level();
    unchecked_enqueue(next, kNoClause);
  }
}

Solver::Result Solver::solve(std::span<const Lit> assumptions) {
  model_.clear();
  conflict_.clear();
  if (!ok_) return Result::kUnsat;

  assumptions_.assign(assumptions.begin(), assumptions.end());
  conflicts_at_solve_start_ = stats_.conflicts;
  if (max_learnts_ <= 0.0) {
    max_learnts_ = std::max(1000.0, static_cast<double>(problem_clauses_.size()) / 3.0);
  }

  Result status = Result::kUnknown;
  for (std::uint64_t restarts = 0; status == Result::kUnknown; ++restarts) {
    status = search(luby(restarts) * kRestartBase);
    if (status == Result::kUnknown && conflict_budget_ != 0 &&
        stats_.conflicts - conflicts_at_solve_start_ >= conflict_budget_) {
      break;  // budget exhausted, keep kUnknown
    }
    max_learnts_ *= 1.02;
  }

  if (status == Result::kSat) {
    model_.resize(num_vars());
    for (Var v = 0; v < num_vars(); ++v) model_[v] = value(v) == LBool::kTrue;
  }
  cancel_until(0);
  assumptions_.clear();
  return status;
}

Solver::Result Solver::solve(std::initializer_list<Lit> assumptions) {
  return solve(std::span<const Lit>(assumptions.begin(), assumptions.size()));
}

bool Solver::model_value(Var v) const {
  return v < model_.size() && model_[v];
}

// --- activity heap ---------------------------------------------------------

void Solver::heap_insert(Var v) {
  heap_pos_[v] = static_cast<int>(heap_.size());
  heap_.push_back(v);
  heap_sift_up(heap_.size() - 1);
}

Var Solver::heap_pop() {
  const Var top = heap_[0];
  heap_pos_[top] = -1;
  const Var last = heap_.back();
  heap_.pop_back();
  // Guard the singleton case: moving `last` into slot 0 when it IS `top`
  // would resurrect heap_pos_[top] and make the var look heap-resident
  // forever, so cancel_until would never re-insert it and the search could
  // declare SAT with the var unassigned.
  if (!heap_.empty()) {
    heap_[0] = last;
    heap_pos_[last] = 0;
    heap_sift_down(0);
  }
  return top;
}

void Solver::heap_sift_up(std::size_t i) {
  const Var v = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (activity_[heap_[parent]] >= activity_[v]) break;
    heap_[i] = heap_[parent];
    heap_pos_[heap_[i]] = static_cast<int>(i);
    i = parent;
  }
  heap_[i] = v;
  heap_pos_[v] = static_cast<int>(i);
}

void Solver::heap_sift_down(std::size_t i) {
  const Var v = heap_[i];
  for (;;) {
    std::size_t child = 2 * i + 1;
    if (child >= heap_.size()) break;
    if (child + 1 < heap_.size() &&
        activity_[heap_[child + 1]] > activity_[heap_[child]]) {
      ++child;
    }
    if (activity_[heap_[child]] <= activity_[v]) break;
    heap_[i] = heap_[child];
    heap_pos_[heap_[i]] = static_cast<int>(i);
    i = child;
  }
  heap_[i] = v;
  heap_pos_[v] = static_cast<int>(i);
}

}  // namespace bidec::sat
