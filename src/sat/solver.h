// Self-contained CDCL SAT solver in the MiniSat lineage: two-watched-literal
// propagation, VSIDS-style variable activities with phase saving, first-UIP
// clause learning with local minimization, Luby restarts, learned-clause
// database reduction and incremental solving under assumptions.
//
// This is the second reasoning engine of the repository, next to the ROBDD
// package: every correctness claim checked with BDDs (netlist validity,
// Theorem-5 testability, the decomposability conditions) has a SAT
// formulation, so the two engines cross-check each other (see
// verify/sat_verifier.h, atpg/sat_atpg.h, bidec/sat_check.h and the
// QBF-based bi-decomposition paper referenced in PAPERS.md).
#ifndef BIDEC_SAT_SOLVER_H
#define BIDEC_SAT_SOLVER_H

#include <cstdint>
#include <initializer_list>
#include <span>
#include <vector>

namespace bidec::sat {

/// 0-based variable index.
using Var = std::uint32_t;

inline constexpr Var kNoVar = 0xffffffffu;

/// A literal packed as 2*var + sign (sign bit set = negated literal).
struct Lit {
  std::uint32_t code = 0xffffffffu;

  [[nodiscard]] constexpr Var var() const noexcept { return code >> 1; }
  [[nodiscard]] constexpr bool negated() const noexcept { return (code & 1u) != 0; }
  [[nodiscard]] constexpr Lit operator~() const noexcept { return Lit{code ^ 1u}; }
  [[nodiscard]] constexpr bool operator==(const Lit& o) const noexcept = default;
};

/// Literal of variable `v`, positive unless `negated`.
[[nodiscard]] constexpr Lit mk_lit(Var v, bool negated = false) noexcept {
  return Lit{(v << 1) | static_cast<std::uint32_t>(negated)};
}

inline constexpr Lit kUndefLit{};

/// Emission interface for DRAT clause-proof logging. The solver only ever
/// *calls* this (original clauses, learned clauses, deletions, and the
/// final verdict clause of an UNSAT solve); the log container and the
/// independent backward-RUP checker live in src/proof and share zero code
/// with the solver's propagation loop — that independence is the point.
class ProofSink {
 public:
  ProofSink() = default;
  virtual ~ProofSink() = default;
  ProofSink(const ProofSink&) = delete;
  ProofSink& operator=(const ProofSink&) = delete;

  /// A clause became part of the derivation state. `derived` is false for
  /// original problem clauses (logged as given, before any normalization)
  /// and true for clauses the solver claims are RUP-derivable: learned
  /// clauses, the empty clause on global UNSAT, and the negated failed
  /// assumptions on an assumption UNSAT.
  virtual void on_add(std::span<const Lit> lits, bool derived) = 0;
  /// A learned clause left the database (clause-DB reduction).
  virtual void on_delete(std::span<const Lit> lits) = 0;
};

class Solver {
 public:
  enum class Result {
    kSat,      ///< satisfiable; a model is available
    kUnsat,    ///< unsatisfiable (under the given assumptions)
    kUnknown,  ///< conflict budget exhausted before a verdict
  };

  struct Stats {
    std::uint64_t conflicts = 0;
    std::uint64_t decisions = 0;
    std::uint64_t propagations = 0;
    std::uint64_t restarts = 0;
    std::uint64_t learned = 0;        ///< learned clauses ever added
    std::uint64_t deleted_learned = 0;  ///< removed by database reduction

    /// Fold another solver's counters into this one. Engine code creates
    /// many short-lived solvers (one per query/orientation); reports want
    /// the per-job aggregate.
    Stats& operator+=(const Stats& o) noexcept {
      conflicts += o.conflicts;
      decisions += o.decisions;
      propagations += o.propagations;
      restarts += o.restarts;
      learned += o.learned;
      deleted_learned += o.deleted_learned;
      return *this;
    }
  };

  Solver();

  Solver(const Solver&) = delete;
  Solver& operator=(const Solver&) = delete;

  // --- problem construction ----------------------------------------------
  Var new_var();
  [[nodiscard]] std::size_t num_vars() const noexcept { return assigns_.size(); }
  [[nodiscard]] Lit lit(Var v, bool negated = false) const noexcept {
    return mk_lit(v, negated);
  }

  /// Add a clause (disjunction of `lits`). Literals false at the top level
  /// are dropped, duplicates merged; returns false once the formula is
  /// known unsatisfiable without search. Clauses may be added between
  /// solve() calls (incremental interface).
  bool add_clause(std::vector<Lit> lits);
  bool add_clause(std::initializer_list<Lit> lits);

  // --- solving ------------------------------------------------------------
  /// Solve under the given assumptions (temporarily asserted literals).
  [[nodiscard]] Result solve(std::span<const Lit> assumptions);
  [[nodiscard]] Result solve(std::initializer_list<Lit> assumptions);
  [[nodiscard]] Result solve() { return solve(std::span<const Lit>{}); }

  /// Abort with Result::kUnknown after this many conflicts per solve()
  /// call (0 = no limit).
  void set_conflict_budget(std::uint64_t max_conflicts) noexcept {
    conflict_budget_ = max_conflicts;
  }

  // --- results ------------------------------------------------------------
  /// Model access after Result::kSat. Variables the search never assigned
  /// report false.
  [[nodiscard]] bool model_value(Var v) const;
  [[nodiscard]] bool model_value(Lit l) const { return model_value(l.var()) != l.negated(); }

  /// After Result::kUnsat under assumptions: a subset of the assumptions
  /// whose conjunction is already contradictory (the "failed" assumptions).
  [[nodiscard]] const std::vector<Lit>& conflict() const noexcept { return conflict_; }

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] bool ok() const noexcept { return ok_; }

  /// Arm (or with nullptr disarm) clause-proof emission. Must be armed
  /// before the first add_clause() call, or the log's input formula will be
  /// incomplete and no derived clause can check. Disarmed costs one branch
  /// per learned clause — negligible (bench/micro_proof pins it).
  void set_proof_log(ProofSink* sink) noexcept { proof_ = sink; }
  [[nodiscard]] ProofSink* proof_log() const noexcept { return proof_; }

 private:
  using ClauseRef = std::uint32_t;
  static constexpr ClauseRef kNoClause = 0xffffffffu;

  // 2-bit assignment: value of the *variable*.
  enum class LBool : std::uint8_t { kFalse = 0, kTrue = 1, kUndef = 2 };

  struct Clause {
    std::vector<Lit> lits;
    double activity = 0.0;
    bool learned = false;
    bool deleted = false;
  };

  // One watcher entry: the clause plus a cached "blocker" literal whose
  // satisfaction lets propagation skip the clause without touching it.
  struct Watcher {
    ClauseRef cref = kNoClause;
    Lit blocker = kUndefLit;
  };

  [[nodiscard]] LBool value(Var v) const noexcept { return assigns_[v]; }
  [[nodiscard]] LBool value(Lit l) const noexcept {
    const LBool v = assigns_[l.var()];
    if (v == LBool::kUndef) return LBool::kUndef;
    return (v == LBool::kTrue) != l.negated() ? LBool::kTrue : LBool::kFalse;
  }
  [[nodiscard]] unsigned decision_level() const noexcept {
    return static_cast<unsigned>(trail_lim_.size());
  }

  ClauseRef alloc_clause(std::vector<Lit> lits, bool learned);
  void attach_clause(ClauseRef cref);
  void detach_clause(ClauseRef cref);
  void remove_clause(ClauseRef cref);
  [[nodiscard]] bool clause_locked(ClauseRef cref) const;

  void new_decision_level() { trail_lim_.push_back(trail_.size()); }
  void unchecked_enqueue(Lit p, ClauseRef from);
  [[nodiscard]] ClauseRef propagate();
  void cancel_until(unsigned level);

  void analyze(ClauseRef confl, std::vector<Lit>& out_learnt, unsigned& out_btlevel);
  [[nodiscard]] bool literal_redundant(Lit l) const;
  void analyze_final(Lit p);

  [[nodiscard]] Lit pick_branch_lit();
  Result search(std::uint64_t max_conflicts_this_restart);
  void reduce_db();

  // VSIDS activity bookkeeping.
  void bump_var(Var v);
  void decay_var_activity() { var_inc_ /= kVarDecay; }
  void bump_clause(Clause& c);
  void decay_clause_activity() { cla_inc_ /= kClauseDecay; }

  // Activity-ordered max-heap over variables (MiniSat's order heap).
  void heap_insert(Var v);
  Var heap_pop();
  void heap_sift_up(std::size_t i);
  void heap_sift_down(std::size_t i);
  [[nodiscard]] bool heap_contains(Var v) const { return heap_pos_[v] >= 0; }

  static constexpr double kVarDecay = 0.95;
  static constexpr double kClauseDecay = 0.999;
  static constexpr std::uint64_t kRestartBase = 100;

  bool ok_ = true;

  std::vector<Clause> clauses_;
  std::vector<ClauseRef> free_refs_;  ///< reusable slots of removed clauses
  std::vector<ClauseRef> problem_clauses_;
  std::vector<ClauseRef> learned_clauses_;
  std::vector<std::vector<Watcher>> watches_;  ///< indexed by Lit::code

  std::vector<LBool> assigns_;
  std::vector<bool> polarity_;  ///< saved phase (last assigned value)
  std::vector<unsigned> level_;
  std::vector<ClauseRef> reason_;
  std::vector<double> activity_;
  double var_inc_ = 1.0;
  double cla_inc_ = 1.0;

  std::vector<Var> heap_;
  std::vector<int> heap_pos_;  ///< -1 when not in the heap

  std::vector<Lit> trail_;
  std::vector<std::size_t> trail_lim_;
  std::size_t qhead_ = 0;

  std::vector<Lit> assumptions_;
  std::vector<Lit> conflict_;
  std::vector<bool> model_;

  mutable std::vector<std::uint8_t> seen_;

  std::uint64_t conflict_budget_ = 0;
  std::uint64_t conflicts_at_solve_start_ = 0;
  double max_learnts_ = 0.0;

  ProofSink* proof_ = nullptr;

  Stats stats_;
};

/// Public aggregate name for solver counters, used wherever they leave the
/// SAT layer (JobReport JSON, SatDecStats, verifier out-params).
using SolverStats = Solver::Stats;

}  // namespace bidec::sat

#endif  // BIDEC_SAT_SOLVER_H
