// Dense truth tables over up to 26 variables, used as the brute-force golden
// model in tests (BDD operations, decomposability checks, derived components
// are all validated against this representation) and by the benchmark
// function generators.
#ifndef BIDEC_TT_TRUTH_TABLE_H
#define BIDEC_TT_TRUTH_TABLE_H

#include <cstdint>
#include <functional>
#include <random>
#include <span>
#include <string>
#include <vector>

namespace bidec {

class Bdd;
class BddManager;

/// A completely specified Boolean function of `num_vars()` variables stored
/// as a bit vector of 2^n entries (minterm i = value under the assignment
/// whose bit k is (i >> k) & 1).
class TruthTable {
 public:
  /// Constant-zero table of `num_vars` variables.
  explicit TruthTable(unsigned num_vars);

  [[nodiscard]] static TruthTable zeros(unsigned num_vars);
  [[nodiscard]] static TruthTable ones(unsigned num_vars);
  /// Projection of variable `v`.
  [[nodiscard]] static TruthTable projection(unsigned num_vars, unsigned v);
  /// Table built by evaluating `fn` on every minterm (assignment bits).
  [[nodiscard]] static TruthTable from_function(
      unsigned num_vars, const std::function<bool(std::uint64_t)>& fn);
  /// Random table; each minterm is 1 with probability `density`.
  [[nodiscard]] static TruthTable random(unsigned num_vars, std::mt19937_64& rng,
                                         double density = 0.5);
  /// Parse a string of '0'/'1' characters, minterm 0 first.
  [[nodiscard]] static TruthTable from_binary_string(const std::string& bits);

  [[nodiscard]] unsigned num_vars() const noexcept { return num_vars_; }
  [[nodiscard]] std::uint64_t num_minterms() const noexcept {
    return std::uint64_t{1} << num_vars_;
  }

  [[nodiscard]] bool get(std::uint64_t minterm) const noexcept;
  void set(std::uint64_t minterm, bool value) noexcept;

  [[nodiscard]] bool is_zero() const noexcept;
  [[nodiscard]] bool is_ones() const noexcept;
  [[nodiscard]] std::uint64_t count_ones() const noexcept;
  /// Index of the first on-minterm, or num_minterms() if the table is zero.
  [[nodiscard]] std::uint64_t find_first() const noexcept;

  [[nodiscard]] TruthTable operator&(const TruthTable& g) const;
  [[nodiscard]] TruthTable operator|(const TruthTable& g) const;
  [[nodiscard]] TruthTable operator^(const TruthTable& g) const;
  [[nodiscard]] TruthTable operator~() const;
  /// Boolean difference: `f & ~g`.
  [[nodiscard]] TruthTable operator-(const TruthTable& g) const;
  [[nodiscard]] bool operator==(const TruthTable& g) const;

  /// Cofactor w.r.t. variable `v` (result still has num_vars variables and
  /// does not depend on v).
  [[nodiscard]] TruthTable cofactor(unsigned v, bool val) const;
  [[nodiscard]] TruthTable exists(unsigned v) const;
  [[nodiscard]] TruthTable forall(unsigned v) const;
  [[nodiscard]] TruthTable exists(std::span<const unsigned> vars) const;
  [[nodiscard]] TruthTable forall(std::span<const unsigned> vars) const;
  /// Boolean derivative w.r.t. `v`.
  [[nodiscard]] TruthTable derivative(unsigned v) const;
  [[nodiscard]] bool depends_on(unsigned v) const;

  /// Transfer to a BDD (the manager must have at least num_vars variables).
  [[nodiscard]] Bdd to_bdd(BddManager& mgr) const;
  /// Build from a BDD by evaluating all 2^n assignments.
  [[nodiscard]] static TruthTable from_bdd(BddManager& mgr, const Bdd& f,
                                           unsigned num_vars);

  /// '0'/'1' string, minterm 0 first (inverse of from_binary_string).
  [[nodiscard]] std::string to_binary_string() const;

 private:
  void mask_tail() noexcept;

  unsigned num_vars_;
  std::vector<std::uint64_t> words_;
};

}  // namespace bidec

#endif  // BIDEC_TT_TRUTH_TABLE_H
