#include "tt/truth_table.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "bdd/bdd.h"

namespace bidec {

namespace {
constexpr std::uint64_t kVarMask[6] = {
    0xaaaaaaaaaaaaaaaaull, 0xccccccccccccccccull, 0xf0f0f0f0f0f0f0f0ull,
    0xff00ff00ff00ff00ull, 0xffff0000ffff0000ull, 0xffffffff00000000ull,
};

std::size_t word_count(unsigned num_vars) {
  return num_vars <= 6 ? 1 : (std::size_t{1} << (num_vars - 6));
}
}  // namespace

TruthTable::TruthTable(unsigned num_vars) : num_vars_(num_vars) {
  if (num_vars > 26) throw std::invalid_argument("TruthTable: too many variables");
  words_.assign(word_count(num_vars), 0);
}

void TruthTable::mask_tail() noexcept {
  if (num_vars_ < 6) words_[0] &= (std::uint64_t{1} << (1u << num_vars_)) - 1;
}

TruthTable TruthTable::zeros(unsigned num_vars) { return TruthTable(num_vars); }

TruthTable TruthTable::ones(unsigned num_vars) {
  TruthTable t(num_vars);
  std::fill(t.words_.begin(), t.words_.end(), ~std::uint64_t{0});
  t.mask_tail();
  return t;
}

TruthTable TruthTable::projection(unsigned num_vars, unsigned v) {
  TruthTable t(num_vars);
  if (v >= num_vars) throw std::out_of_range("TruthTable::projection");
  if (v < 6) {
    std::fill(t.words_.begin(), t.words_.end(), kVarMask[v]);
  } else {
    const std::size_t block = std::size_t{1} << (v - 6);
    for (std::size_t w = 0; w < t.words_.size(); ++w) {
      if ((w / block) & 1) t.words_[w] = ~std::uint64_t{0};
    }
  }
  t.mask_tail();
  return t;
}

TruthTable TruthTable::from_function(unsigned num_vars,
                                     const std::function<bool(std::uint64_t)>& fn) {
  TruthTable t(num_vars);
  for (std::uint64_t m = 0; m < t.num_minterms(); ++m) {
    if (fn(m)) t.set(m, true);
  }
  return t;
}

TruthTable TruthTable::random(unsigned num_vars, std::mt19937_64& rng, double density) {
  TruthTable t(num_vars);
  std::bernoulli_distribution bit(density);
  for (std::uint64_t m = 0; m < t.num_minterms(); ++m) {
    if (bit(rng)) t.set(m, true);
  }
  return t;
}

TruthTable TruthTable::from_binary_string(const std::string& bits) {
  unsigned nv = 0;
  while ((std::uint64_t{1} << nv) < bits.size()) ++nv;
  if ((std::uint64_t{1} << nv) != bits.size()) {
    throw std::invalid_argument("from_binary_string: length must be a power of two");
  }
  TruthTable t(nv);
  for (std::uint64_t m = 0; m < bits.size(); ++m) {
    if (bits[m] == '1') {
      t.set(m, true);
    } else if (bits[m] != '0') {
      throw std::invalid_argument("from_binary_string: invalid character");
    }
  }
  return t;
}

bool TruthTable::get(std::uint64_t minterm) const noexcept {
  return (words_[minterm >> 6] >> (minterm & 63)) & 1;
}

void TruthTable::set(std::uint64_t minterm, bool value) noexcept {
  const std::uint64_t bit = std::uint64_t{1} << (minterm & 63);
  if (value) {
    words_[minterm >> 6] |= bit;
  } else {
    words_[minterm >> 6] &= ~bit;
  }
}

bool TruthTable::is_zero() const noexcept {
  return std::all_of(words_.begin(), words_.end(), [](std::uint64_t w) { return w == 0; });
}

bool TruthTable::is_ones() const noexcept { return *this == ones(num_vars_); }

std::uint64_t TruthTable::find_first() const noexcept {
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if (words_[i] != 0) {
      return (static_cast<std::uint64_t>(i) << 6) +
             static_cast<std::uint64_t>(__builtin_ctzll(words_[i]));
    }
  }
  return num_minterms();
}

std::uint64_t TruthTable::count_ones() const noexcept {
  std::uint64_t n = 0;
  for (const std::uint64_t w : words_) n += static_cast<std::uint64_t>(__builtin_popcountll(w));
  return n;
}

TruthTable TruthTable::operator&(const TruthTable& g) const {
  assert(num_vars_ == g.num_vars_);
  TruthTable r(num_vars_);
  for (std::size_t i = 0; i < words_.size(); ++i) r.words_[i] = words_[i] & g.words_[i];
  return r;
}

TruthTable TruthTable::operator|(const TruthTable& g) const {
  assert(num_vars_ == g.num_vars_);
  TruthTable r(num_vars_);
  for (std::size_t i = 0; i < words_.size(); ++i) r.words_[i] = words_[i] | g.words_[i];
  return r;
}

TruthTable TruthTable::operator^(const TruthTable& g) const {
  assert(num_vars_ == g.num_vars_);
  TruthTable r(num_vars_);
  for (std::size_t i = 0; i < words_.size(); ++i) r.words_[i] = words_[i] ^ g.words_[i];
  return r;
}

TruthTable TruthTable::operator~() const {
  TruthTable r(num_vars_);
  for (std::size_t i = 0; i < words_.size(); ++i) r.words_[i] = ~words_[i];
  r.mask_tail();
  return r;
}

TruthTable TruthTable::operator-(const TruthTable& g) const { return *this & ~g; }

bool TruthTable::operator==(const TruthTable& g) const {
  return num_vars_ == g.num_vars_ && words_ == g.words_;
}

// Quantification and cofactoring run word-parallel: within a 64-bit word
// the two halves of a variable's block are aligned with shifts against the
// kVarMask patterns, above it they are whole-word copies. The bit-at-a-time
// loops these replace dominated the SAT engine's truth-table domain (>90%
// of its runtime on 12-variable materializations).

TruthTable TruthTable::cofactor(unsigned v, bool val) const {
  assert(v < num_vars_);
  TruthTable r(num_vars_);
  if (v < 6) {
    const unsigned s = 1u << v;
    const std::uint64_t m1 = kVarMask[v];
    if (val) {
      for (std::size_t i = 0; i < words_.size(); ++i) {
        const std::uint64_t h = words_[i] & m1;
        r.words_[i] = h | (h >> s);
      }
    } else {
      const std::uint64_t m0 = ~m1;
      for (std::size_t i = 0; i < words_.size(); ++i) {
        const std::uint64_t l = words_[i] & m0;
        r.words_[i] = l | (l << s);
      }
    }
    r.mask_tail();
  } else {
    const std::size_t block = std::size_t{1} << (v - 6);
    for (std::size_t i = 0; i < words_.size(); i += 2 * block) {
      const std::size_t src = val ? i + block : i;
      for (std::size_t b = 0; b < block; ++b) {
        r.words_[i + b] = r.words_[i + block + b] = words_[src + b];
      }
    }
  }
  return r;
}

TruthTable TruthTable::exists(unsigned v) const {
  assert(v < num_vars_);
  TruthTable r(num_vars_);
  if (v < 6) {
    const unsigned s = 1u << v;
    const std::uint64_t m1 = kVarMask[v];
    const std::uint64_t m0 = ~m1;
    for (std::size_t i = 0; i < words_.size(); ++i) {
      const std::uint64_t w = words_[i];
      const std::uint64_t u = (w & m0) | ((w & m1) >> s);
      r.words_[i] = u | (u << s);
    }
    r.mask_tail();
  } else {
    const std::size_t block = std::size_t{1} << (v - 6);
    for (std::size_t i = 0; i < words_.size(); i += 2 * block) {
      for (std::size_t b = 0; b < block; ++b) {
        r.words_[i + b] = r.words_[i + block + b] =
            words_[i + b] | words_[i + block + b];
      }
    }
  }
  return r;
}

TruthTable TruthTable::forall(unsigned v) const {
  assert(v < num_vars_);
  TruthTable r(num_vars_);
  if (v < 6) {
    const unsigned s = 1u << v;
    const std::uint64_t m1 = kVarMask[v];
    const std::uint64_t m0 = ~m1;
    for (std::size_t i = 0; i < words_.size(); ++i) {
      const std::uint64_t w = words_[i];
      const std::uint64_t u = (w & m0) & ((w & m1) >> s);
      r.words_[i] = u | (u << s);
    }
    r.mask_tail();
  } else {
    const std::size_t block = std::size_t{1} << (v - 6);
    for (std::size_t i = 0; i < words_.size(); i += 2 * block) {
      for (std::size_t b = 0; b < block; ++b) {
        r.words_[i + b] = r.words_[i + block + b] =
            words_[i + b] & words_[i + block + b];
      }
    }
  }
  return r;
}

TruthTable TruthTable::derivative(unsigned v) const {
  assert(v < num_vars_);
  TruthTable r(num_vars_);
  if (v < 6) {
    const unsigned s = 1u << v;
    const std::uint64_t m1 = kVarMask[v];
    const std::uint64_t m0 = ~m1;
    for (std::size_t i = 0; i < words_.size(); ++i) {
      const std::uint64_t w = words_[i];
      const std::uint64_t u = (w & m0) ^ ((w & m1) >> s);
      r.words_[i] = u | (u << s);
    }
    r.mask_tail();
  } else {
    const std::size_t block = std::size_t{1} << (v - 6);
    for (std::size_t i = 0; i < words_.size(); i += 2 * block) {
      for (std::size_t b = 0; b < block; ++b) {
        r.words_[i + b] = r.words_[i + block + b] =
            words_[i + b] ^ words_[i + block + b];
      }
    }
  }
  return r;
}

// The span folds mutate one copy in place instead of allocating a fresh
// table per variable — quantification over a span is the hottest operation
// in the SAT engine's grouping checks.

TruthTable TruthTable::exists(std::span<const unsigned> vars) const {
  TruthTable r = *this;
  for (const unsigned v : vars) {
    assert(v < num_vars_);
    if (v < 6) {
      const unsigned s = 1u << v;
      const std::uint64_t m1 = kVarMask[v];
      const std::uint64_t m0 = ~m1;
      for (std::uint64_t& w : r.words_) {
        const std::uint64_t u = (w & m0) | ((w & m1) >> s);
        w = u | (u << s);
      }
    } else {
      const std::size_t block = std::size_t{1} << (v - 6);
      for (std::size_t i = 0; i < r.words_.size(); i += 2 * block) {
        for (std::size_t b = 0; b < block; ++b) {
          r.words_[i + b] = r.words_[i + block + b] =
              r.words_[i + b] | r.words_[i + block + b];
        }
      }
    }
  }
  r.mask_tail();
  return r;
}

TruthTable TruthTable::forall(std::span<const unsigned> vars) const {
  TruthTable r = *this;
  for (const unsigned v : vars) {
    assert(v < num_vars_);
    if (v < 6) {
      const unsigned s = 1u << v;
      const std::uint64_t m1 = kVarMask[v];
      const std::uint64_t m0 = ~m1;
      for (std::uint64_t& w : r.words_) {
        const std::uint64_t u = (w & m0) & ((w & m1) >> s);
        w = u | (u << s);
      }
    } else {
      const std::size_t block = std::size_t{1} << (v - 6);
      for (std::size_t i = 0; i < r.words_.size(); i += 2 * block) {
        for (std::size_t b = 0; b < block; ++b) {
          r.words_[i + b] = r.words_[i + block + b] =
              r.words_[i + b] & r.words_[i + block + b];
        }
      }
    }
  }
  r.mask_tail();
  return r;
}

bool TruthTable::depends_on(unsigned v) const {
  assert(v < num_vars_);
  if (v < 6) {
    const unsigned s = 1u << v;
    const std::uint64_t m1 = kVarMask[v];
    const std::uint64_t m0 = ~m1;
    for (const std::uint64_t w : words_) {
      if (((w & m0) ^ ((w & m1) >> s)) != 0) return true;
    }
    return false;
  }
  const std::size_t block = std::size_t{1} << (v - 6);
  for (std::size_t i = 0; i < words_.size(); i += 2 * block) {
    for (std::size_t b = 0; b < block; ++b) {
      if (words_[i + b] != words_[i + block + b]) return true;
    }
  }
  return false;
}

Bdd TruthTable::to_bdd(BddManager& mgr) const {
  if (mgr.num_vars() < num_vars_) {
    throw std::invalid_argument("to_bdd: manager has too few variables");
  }
  // Build bottom-up by Shannon expansion on the highest variable; minterm
  // blocks halve at each level.
  std::function<Bdd(unsigned, std::uint64_t)> build =
      [&](unsigned var_count, std::uint64_t offset) -> Bdd {
    if (var_count == 0) return get(offset) ? mgr.bdd_true() : mgr.bdd_false();
    const unsigned v = var_count - 1;
    Bdd lo = build(v, offset);
    Bdd hi = build(v, offset | (std::uint64_t{1} << v));
    return mgr.ite(mgr.var(v), hi, lo);
  };
  return build(num_vars_, 0);
}

TruthTable TruthTable::from_bdd(BddManager& mgr, const Bdd& f, unsigned num_vars) {
  TruthTable t(num_vars);
  std::vector<bool> assign(mgr.num_vars(), false);
  for (std::uint64_t m = 0; m < t.num_minterms(); ++m) {
    for (unsigned v = 0; v < num_vars; ++v) assign[v] = (m >> v) & 1;
    if (mgr.eval(f, assign)) t.set(m, true);
  }
  return t;
}

std::string TruthTable::to_binary_string() const {
  std::string s(num_minterms(), '0');
  for (std::uint64_t m = 0; m < num_minterms(); ++m) {
    if (get(m)) s[m] = '1';
  }
  return s;
}

}  // namespace bidec
