// Model queries and two-level covers: satisfy-count, cube/minterm picking
// and the Minato-Morreale irredundant sum-of-products (ISOP) generator.
#include "bdd/bdd.h"

#include <cassert>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

namespace bidec {

double BddManager::sat_count(const Bdd& f) {
  ensure_owned(f, "sat_count");
  // memo[i] = minterm count of node i's *regular* function over the
  // variables at or below its level; a complemented edge at level v counts
  // the complement, 2^(num_vars - v) - memo[i]. No nodes are created here,
  // so Node references stay stable.
  std::unordered_map<std::uint32_t, double> memo;
  memo[0] = 0.0;  // regular terminal = FALSE
  struct Rec {
    BddManager& m;
    std::unordered_map<std::uint32_t, double>& memo;
    // Count of edge `e` over the variables [level(e), num_vars).
    double operator()(NodeId e) {
      const std::uint32_t idx = edge_index(e);
      double base;
      const auto it = memo.find(idx);
      if (it != memo.end()) {
        base = it->second;
      } else {
        const Node& n = m.nodes_[idx];
        const double lo = (*this)(n.lo);
        const double hi = (*this)(n.hi);
        const unsigned lo_gap = m.level_of(n.lo) - n.var - 1;
        const unsigned hi_gap = m.level_of(n.hi) - n.var - 1;
        base = lo * std::ldexp(1.0, static_cast<int>(lo_gap)) +
               hi * std::ldexp(1.0, static_cast<int>(hi_gap));
        memo.emplace(idx, base);
      }
      if (edge_complemented(e)) {
        return std::ldexp(1.0, static_cast<int>(m.num_vars_ - m.level_of(e))) - base;
      }
      return base;
    }
  } rec{*this, memo};
  const double at_top = rec(f.id());
  const unsigned gap = level_of(f.id());  // free variables above the root
  return at_top * std::ldexp(1.0, static_cast<int>(gap));
}

CubeLits BddManager::pick_one_cube_lits(const Bdd& f) {
  ensure_owned(f, "pick_one_cube");
  if (f.is_false()) throw std::invalid_argument("pick_one_cube: function is empty");
  CubeLits lits(num_vars_, -1);
  NodeId e = f.id();
  while (e > kTrueId) {
    const unsigned v = level_of(e);
    const NodeId lo = lo_of(e);
    // Deterministic choice: prefer the 0-branch when it is not empty.
    if (lo != kFalseId) {
      lits[v] = 0;
      e = lo;
    } else {
      lits[v] = 1;
      e = hi_of(e);
    }
  }
  return lits;
}

Bdd BddManager::pick_one_cube(const Bdd& f) { return make_cube(pick_one_cube_lits(f)); }

std::vector<bool> BddManager::pick_one_minterm(const Bdd& f) {
  const CubeLits lits = pick_one_cube_lits(f);
  std::vector<bool> minterm(num_vars_, false);
  for (unsigned v = 0; v < num_vars_; ++v) minterm[v] = lits[v] == 1;
  return minterm;
}

// ---------------------------------------------------------------------------
// ISOP (Minato-Morreale): irredundant SOP of some function in [lower, upper].
// ---------------------------------------------------------------------------

namespace {

struct IsopKey {
  NodeId lower, upper;
  bool operator==(const IsopKey&) const = default;
};

struct IsopKeyHash {
  std::size_t operator()(const IsopKey& k) const noexcept {
    return (static_cast<std::size_t>(k.lower) << 32) ^ k.upper;
  }
};

struct IsopResult {
  NodeId func = kFalseId;
  std::vector<CubeLits> cubes;
};

}  // namespace

std::vector<CubeLits> BddManager::isop(const Bdd& lower, const Bdd& upper) {
  ensure_owned(lower, "isop");
  ensure_owned(upper, "isop");
  if (!(lower - upper).is_false()) {
    throw std::invalid_argument("isop: lower bound must imply upper bound");
  }
  maybe_gc();

  std::unordered_map<IsopKey, IsopResult, IsopKeyHash> memo;
  std::vector<Bdd> keep;  // keep intermediate cover functions alive

  // Returns the cover function and cubes for the interval [l, u]. Results
  // are returned by value: the memo map rehashes as it grows, so references
  // into it would dangle across recursive calls.
  auto rec = [&](auto&& self, NodeId l, NodeId u) -> IsopResult {
    const IsopKey key{l, u};
    if (const auto it = memo.find(key); it != memo.end()) return it->second;
    IsopResult res;
    if (l == kFalseId) {
      res.func = kFalseId;
    } else if (u == kTrueId) {
      res.func = kTrueId;
      res.cubes.emplace_back(num_vars_, static_cast<signed char>(-1));  // tautology cube
    } else {
      const unsigned v = std::min(level_of(l), level_of(u));
      const NodeId l0 = level_of(l) == v ? lo_of(l) : l;
      const NodeId l1 = level_of(l) == v ? hi_of(l) : l;
      const NodeId u0 = level_of(u) == v ? lo_of(u) : u;
      const NodeId u1 = level_of(u) == v ? hi_of(u) : u;

      // Cubes that must contain literal ~v: needed where the function must
      // be 1 with v=0 but may not be 1 with v=1.
      const NodeId nl0 = ite_rec(l0, edge_not(u1), kFalseId);
      const IsopResult c0 = self(self, nl0, u0);
      // Cubes that must contain literal v.
      const NodeId nl1 = ite_rec(l1, edge_not(u0), kFalseId);
      const IsopResult c1 = self(self, nl1, u1);

      // What remains uncovered must be covered by cubes without v.
      const NodeId rem0 = ite_rec(l0, edge_not(c0.func), kFalseId);
      const NodeId rem1 = ite_rec(l1, edge_not(c1.func), kFalseId);
      const NodeId ld = ite_rec(rem0, kTrueId, rem1);
      const NodeId ud = ite_rec(u0, u1, kFalseId);
      const IsopResult cd = self(self, ld, ud);

      // Assemble cover function: ~v&c0 + v&c1 + cd.
      const NodeId with0 = make_node(v, c0.func, kFalseId);
      const NodeId with1 = make_node(v, kFalseId, c1.func);
      NodeId func = ite_rec(with0, kTrueId, with1);
      func = ite_rec(func, kTrueId, cd.func);
      keep.push_back(wrap(func));

      res.func = func;
      res.cubes.reserve(c0.cubes.size() + c1.cubes.size() + cd.cubes.size());
      for (CubeLits cube : c0.cubes) {
        cube[v] = 0;
        res.cubes.push_back(std::move(cube));
      }
      for (CubeLits cube : c1.cubes) {
        cube[v] = 1;
        res.cubes.push_back(std::move(cube));
      }
      for (const CubeLits& cube : cd.cubes) res.cubes.push_back(cube);
    }
    memo.emplace(key, res);
    return res;
  };

  return rec(rec, lower.id(), upper.id()).cubes;
}

Bdd BddManager::cover_to_bdd(std::span<const CubeLits> cover) {
  Bdd sum = bdd_false();
  for (const CubeLits& cube : cover) sum |= make_cube(cube);
  return sum;
}

Bdd BddManager::isop_bdd(const Bdd& lower, const Bdd& upper) {
  return cover_to_bdd(isop(lower, upper));
}

}  // namespace bidec
