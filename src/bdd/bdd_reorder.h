// Static variable-ordering utilities. The manager keeps the identity order
// (variable i at level i), so reordering is expressed as (a) computing a
// good order for a set of functions and (b) transferring functions into a
// manager under that order. The decomposition flows use this to present
// well-ordered BDDs to the algorithm; the micro benches show the size
// impact (the classic lever for the CPU-time columns of Table 2).
#ifndef BIDEC_BDD_BDD_REORDER_H
#define BIDEC_BDD_BDD_REORDER_H

#include <span>
#include <vector>

#include "bdd/bdd.h"

namespace bidec {

/// Copy `f` from its manager into `dst`, renaming variable v to
/// `var_map[v]`. Managers may differ in variable count as long as every
/// mapped index is valid in `dst`.
[[nodiscard]] Bdd bdd_transfer(BddManager& dst, const Bdd& f,
                               std::span<const unsigned> var_map);

/// Identity transfer (same variable names).
[[nodiscard]] Bdd bdd_transfer(BddManager& dst, const Bdd& f);

/// One span-based placement pass of the FORCE heuristic (Aloul et al.):
/// hyperedges are the BDD nodes' (var, lo-top, hi-top) triples; variables
/// are iteratively placed at the centre of gravity of their edges. Returns
/// `order` with order[new_level] = old_variable.
[[nodiscard]] std::vector<unsigned> force_order(BddManager& mgr, std::span<const Bdd> fs,
                                                unsigned iterations = 12);

/// Greedy sifting-flavoured search in "rebuild" form: starting from the
/// identity, repeatedly try moving each variable to the position that
/// minimizes the total transferred DAG size. O(n^2) rebuilds; intended for
/// the moderate variable counts of the benchmark suite.
[[nodiscard]] std::vector<unsigned> sift_order(BddManager& mgr, std::span<const Bdd> fs,
                                               unsigned rounds = 1);

/// Shared-size of `fs` when rebuilt under `order` (order[new_level] = old
/// variable). Used by the search heuristics and exposed for tests.
[[nodiscard]] std::size_t size_under_order(BddManager& mgr, std::span<const Bdd> fs,
                                           std::span<const unsigned> order);

/// Convenience: invert an order vector (old variable -> new level).
[[nodiscard]] std::vector<unsigned> invert_order(std::span<const unsigned> order);

}  // namespace bidec

#endif  // BIDEC_BDD_BDD_REORDER_H
