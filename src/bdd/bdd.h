// ROBDD package: reduced ordered binary decision diagrams with complement
// edges, per-variable unique subtables, a resizable two-way computed table
// with aging, reference-counted external handles and mark-and-sweep garbage
// collection that sweeps (rather than clears) the computed table.
//
// This is the substrate the bi-decomposition algorithm of
// Mishchenko/Steinbach/Perkowski (DAC 2001) runs on; the paper used BuDDy
// 1.9, this package implements the same ROBDD model extended with the
// CUDD-style complement-edge representation, so negation is O(1) and a
// function and its complement share one DAG.
//
// Representation: a `NodeId` is an *edge* — the node index shifted left by
// one with the complement flag in bit 0. The single terminal node lives at
// index 0 and denotes the constant FALSE in its regular polarity, so the
// edge constants keep their historical values: kFalseId == 0 (regular
// terminal) and kTrueId == 1 (complemented terminal). Canonicity rule: the
// high (then) edge of every stored node is regular; make_node() complements
// both children and tags the returned edge when a caller asks for a
// complemented high edge.
//
// Usage:
//   BddManager mgr(8);
//   Bdd f = (mgr.var(0) & mgr.var(1)) | ~mgr.var(2);
//   Bdd g = mgr.exists(f, mgr.make_cube({0}));
//
// All `Bdd` handles are RAII reference holders; nodes reachable from live
// handles are never collected. Operations are only valid between handles of
// the same manager.
#ifndef BIDEC_BDD_BDD_H
#define BIDEC_BDD_BDD_H

#include <chrono>
#include <cstdint>
#include <cstddef>
#include <initializer_list>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace bidec {

namespace par {
struct ParallelState;  // task pool + concurrent cache (bdd_parallel.cpp)
struct WorkerCtx;      // per-worker scratch handed through mt_* recursion
}  // namespace par

/// Edge to a BDD node inside its manager: (node index << 1) | complement.
/// 0 and 1 are the constant edges (both polarities of the terminal node).
using NodeId = std::uint32_t;

inline constexpr NodeId kFalseId = 0;
inline constexpr NodeId kTrueId = 1;
inline constexpr NodeId kInvalidId = 0xffffffffu;

class BddManager;

/// Reference-counted handle to a BDD node. Default-constructed handles are
/// invalid; all other handles keep their node (and its cone) alive.
///
/// Lifetime: a handle dereferences its manager when destroyed, so every
/// Bdd (and everything holding one, e.g. Isf) must be destroyed before its
/// BddManager — declare the manager first in any scope that owns both.
class Bdd {
 public:
  Bdd() noexcept = default;
  Bdd(const Bdd& other) noexcept;
  Bdd(Bdd&& other) noexcept;
  Bdd& operator=(const Bdd& other) noexcept;
  Bdd& operator=(Bdd&& other) noexcept;
  ~Bdd();

  [[nodiscard]] bool is_valid() const noexcept { return mgr_ != nullptr; }
  [[nodiscard]] bool is_false() const noexcept { return is_valid() && id_ == kFalseId; }
  [[nodiscard]] bool is_true() const noexcept { return is_valid() && id_ == kTrueId; }
  [[nodiscard]] bool is_const() const noexcept { return is_valid() && id_ <= kTrueId; }

  [[nodiscard]] NodeId id() const noexcept { return id_; }
  [[nodiscard]] BddManager* manager() const noexcept { return mgr_; }

  /// Variable labelling the root node. Precondition: non-constant.
  [[nodiscard]] unsigned top_var() const;
  /// Negative / positive cofactor w.r.t. the root variable.
  [[nodiscard]] Bdd low() const;
  [[nodiscard]] Bdd high() const;

  // Boolean connectives (delegate to the manager).
  [[nodiscard]] Bdd operator&(const Bdd& g) const;
  [[nodiscard]] Bdd operator|(const Bdd& g) const;
  [[nodiscard]] Bdd operator^(const Bdd& g) const;
  [[nodiscard]] Bdd operator~() const;
  /// Boolean difference (SHARP): `f - g = f & ~g`.
  [[nodiscard]] Bdd operator-(const Bdd& g) const;
  Bdd& operator&=(const Bdd& g) { return *this = *this & g; }
  Bdd& operator|=(const Bdd& g) { return *this = *this | g; }
  Bdd& operator^=(const Bdd& g) { return *this = *this ^ g; }
  Bdd& operator-=(const Bdd& g) { return *this = *this - g; }

  /// Structural (== semantic, by canonicity) equality. Only meaningful for
  /// handles of the same manager.
  [[nodiscard]] bool operator==(const Bdd& g) const noexcept {
    return mgr_ == g.mgr_ && id_ == g.id_;
  }
  [[nodiscard]] bool operator!=(const Bdd& g) const noexcept { return !(*this == g); }

  /// True iff this function implies `g` (this <= g pointwise).
  [[nodiscard]] bool implies(const Bdd& g) const;
  /// True iff this function and `g` have an empty intersection.
  [[nodiscard]] bool disjoint_with(const Bdd& g) const;

  /// Number of distinct nodes in this function's DAG (the shared terminal
  /// counted once; with complement edges f and ~f have the same size).
  [[nodiscard]] std::size_t dag_size() const;

 private:
  friend class BddManager;
  Bdd(BddManager* mgr, NodeId id) noexcept;  // takes a reference

  BddManager* mgr_ = nullptr;
  NodeId id_ = kFalseId;
};

/// A cube as a vector of literal codes, one per variable:
/// -1 = variable absent, 0 = negative literal, 1 = positive literal.
using CubeLits = std::vector<signed char>;

/// Thrown by BDD operations when the manager's cooperative abort limit
/// (step budget or deadline, see BddManager::set_step_budget /
/// set_deadline) is exceeded. The manager stays consistent: all live
/// handles remain valid and operations may continue after clear_abort().
class BddAbortError : public std::runtime_error {
 public:
  explicit BddAbortError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a handle of one BddManager is passed into an operation of a
/// different manager (or an invalid handle into any operation). Node ids are
/// only meaningful inside their own manager, so mixing corrupts the unique
/// table silently — the per-worker-manager batch engine makes this the
/// easiest serious mistake to write. Every public operation validates its
/// operands up front so the mistake fails loudly at the call site.
class BddOwnershipError : public std::logic_error {
 public:
  explicit BddOwnershipError(const std::string& what) : std::logic_error(what) {}
};

/// One invariant violation found by BddManager::audit(). `rule` is a stable
/// BM2xx id (catalogued in lint/diagnostics.h); `object` names the node or
/// cache slot ("node 17", "cache 42").
struct BddAuditFinding {
  std::string rule;
  std::string object;
  std::string message;
};

/// Observation/injection hooks at the manager's resource sites. Installed
/// with BddManager::set_fault_injector; every hook defaults to a no-op, so
/// the hot paths pay only a null-pointer compare when no injector is set.
/// The fault layer (src/fault) implements this interface to make every
/// failure path — node-budget trips, cache starvation, allocation failures
/// at the unique-table growth site, deadline expiry at an exact step —
/// reachable on demand and deterministically in tests and CI. Hooks may
/// throw; the manager's abort machinery already guarantees the structure
/// stays consistent across an exception from any of these sites.
class BddFaultInjector {
 public:
  virtual ~BddFaultInjector();
  /// After every recursive core step (`steps` = steps since reset_stats).
  virtual void on_step(std::uint64_t steps);
  /// Before a new node slot is claimed; `live_nodes` is the current count.
  virtual void on_node_alloc(std::size_t live_nodes);
  /// Before a computed-table insert; return true to drop the entry
  /// (poison-eviction: correctness-neutral, the operation just recomputes).
  virtual bool poison_cache_insert() noexcept;
  /// At the entry of a unique-subtable growth (the allocation site a real
  /// out-of-memory would hit first); may throw std::bad_alloc.
  virtual void on_unique_table_grow(unsigned var, std::size_t new_buckets);
};

/// Statistics counters exposed for benchmarking and tests.
struct BddStats {
  std::size_t live_nodes = 0;      ///< allocated minus freed
  std::size_t peak_nodes = 0;      ///< high-water mark of live nodes
  std::size_t gc_runs = 0;         ///< completed garbage collections
  double gc_ms = 0.0;              ///< total wall time spent collecting
  std::size_t unique_hits = 0;     ///< unique-table lookups that hit
  std::size_t unique_misses = 0;   ///< unique-table lookups that created a node
  std::size_t cache_hits = 0;      ///< computed-table hits
  std::size_t cache_lookups = 0;   ///< computed-table probes
  std::size_t cache_inserts = 0;   ///< computed-table stores
  std::size_t cache_resizes = 0;   ///< computed-table growth events
  std::size_t cache_swept = 0;     ///< entries dropped by GC sweeps (dead operands)
  std::size_t cache_kept = 0;      ///< entries that survived GC sweeps

  // Per-op recursion profile (the normalization-tax counters). and_calls
  // counts the dedicated two-operand AND core, ite_calls the general
  // three-operand ITE core; ite_norms counts standard-triple/complement
  // normalization rewrites the ITE core actually performed. A healthy
  // AND-heavy workload shows and_calls >> ite_calls.
  std::uint64_t and_calls = 0;     ///< recursive calls into the AND fast path
  std::uint64_t ite_calls = 0;     ///< recursive calls into the general ITE core
  std::uint64_t ite_norms = 0;     ///< standard-triple/complement rewrites in ITE

  // Parallel-kernel contention counters (all exactly zero on a serial run —
  // a pinned test and the stable-JSON gating depend on that).
  std::uint64_t par_ops = 0;          ///< public ops that took the parallel path
  std::uint64_t par_tasks = 0;        ///< sibling cofactor tasks spawned
  std::uint64_t par_steals = 0;       ///< tasks executed by a non-spawning worker
  std::uint64_t par_cache_drops = 0;  ///< lossy computed-cache inserts dropped
  std::uint64_t par_cas_retries = 0;  ///< CAS retry loops (allocation, seqlock)
};

/// Manager owning all nodes of one BDD universe with a fixed variable count.
/// Variable order is the identity (variable i at level i); `permute` and the
/// reordering helpers in bdd_reorder.cpp remap functions explicitly.
class BddManager {
 public:
  explicit BddManager(unsigned num_vars, std::size_t initial_capacity = 1u << 14);
  ~BddManager();

  BddManager(const BddManager&) = delete;
  BddManager& operator=(const BddManager&) = delete;

  [[nodiscard]] unsigned num_vars() const noexcept { return num_vars_; }

  // --- leaf / variable constructors -------------------------------------
  [[nodiscard]] Bdd bdd_false() noexcept { return Bdd(this, kFalseId); }
  [[nodiscard]] Bdd bdd_true() noexcept { return Bdd(this, kTrueId); }
  /// Projection function of variable `v`.
  [[nodiscard]] Bdd var(unsigned v);
  /// Complemented projection of variable `v`.
  [[nodiscard]] Bdd nvar(unsigned v);
  /// Literal: `var(v)` if `positive`, else `nvar(v)`.
  [[nodiscard]] Bdd literal(unsigned v, bool positive);

  /// Conjunction of positive literals of `vars` (a "variable set" cube).
  [[nodiscard]] Bdd make_cube(std::span<const unsigned> vars);
  [[nodiscard]] Bdd make_cube(std::initializer_list<unsigned> vars);
  /// Cube from literal codes (see CubeLits).
  [[nodiscard]] Bdd make_cube(const CubeLits& lits);

  // --- core connectives ---------------------------------------------------
  [[nodiscard]] Bdd ite(const Bdd& f, const Bdd& g, const Bdd& h);
  [[nodiscard]] Bdd apply_and(const Bdd& f, const Bdd& g);
  [[nodiscard]] Bdd apply_or(const Bdd& f, const Bdd& g);
  [[nodiscard]] Bdd apply_xor(const Bdd& f, const Bdd& g);
  [[nodiscard]] Bdd apply_xnor(const Bdd& f, const Bdd& g);
  /// O(1): flips the complement bit of the edge.
  [[nodiscard]] Bdd apply_not(const Bdd& f);
  /// `f & ~g` (Boolean SHARP of the paper's formulas).
  [[nodiscard]] Bdd apply_sharp(const Bdd& f, const Bdd& g);

  // --- cofactors, composition, permutation -------------------------------
  /// Cofactor w.r.t. a single variable: f|_{v=val}.
  [[nodiscard]] Bdd cofactor(const Bdd& f, unsigned v, bool val);
  /// Generalized cofactor w.r.t. a cube (each literal fixed).
  [[nodiscard]] Bdd cofactor_cube(const Bdd& f, const Bdd& cube);
  /// Coudert-Madre generalized cofactor: agrees with `f` on `c` and is
  /// chosen to shrink the BDD. Precondition: c != 0.
  [[nodiscard]] Bdd constrain(const Bdd& f, const Bdd& c);
  /// Coudert-Madre restrict: like constrain but skips care-set variables
  /// outside f's support, so the result's support stays within f's.
  [[nodiscard]] Bdd restrict_to(const Bdd& f, const Bdd& c);
  /// Substitute function `g` for variable `v` in `f`.
  [[nodiscard]] Bdd compose(const Bdd& f, unsigned v, const Bdd& g);
  /// Simultaneously substitute `subst[i]` for variable i. `subst` must have
  /// one entry per variable (use `var(i)` for identity positions).
  [[nodiscard]] Bdd vector_compose(const Bdd& f, std::span<const Bdd> subst);
  /// Rename variables: variable i becomes `perm[i]`. `perm` must be a
  /// permutation of [0, num_vars).
  [[nodiscard]] Bdd permute(const Bdd& f, std::span<const unsigned> perm);

  // --- quantification -----------------------------------------------------
  /// Existential quantification over the variables of `cube`.
  [[nodiscard]] Bdd exists(const Bdd& f, const Bdd& cube);
  [[nodiscard]] Bdd exists(const Bdd& f, std::span<const unsigned> vars);
  /// Universal quantification over the variables of `cube`.
  [[nodiscard]] Bdd forall(const Bdd& f, const Bdd& cube);
  [[nodiscard]] Bdd forall(const Bdd& f, std::span<const unsigned> vars);
  /// exists(f & g, cube) computed without building f & g first.
  [[nodiscard]] Bdd and_exists(const Bdd& f, const Bdd& g, const Bdd& cube);
  /// Boolean derivative w.r.t. one variable: f|_{v=0} ^ f|_{v=1}.
  [[nodiscard]] Bdd derivative(const Bdd& f, unsigned v);

  // --- structural queries ---------------------------------------------------
  [[nodiscard]] unsigned top_var(const Bdd& f) const;
  [[nodiscard]] Bdd low(const Bdd& f);
  [[nodiscard]] Bdd high(const Bdd& f);
  /// Support as a positive cube.
  [[nodiscard]] Bdd support_cube(const Bdd& f);
  /// Support of the pair of functions (union), as sorted variable indices.
  [[nodiscard]] std::vector<unsigned> support_vars(const Bdd& f);
  [[nodiscard]] std::vector<unsigned> support_vars(const Bdd& f, const Bdd& g);
  /// True iff variable `v` is in the support of `f`.
  [[nodiscard]] bool depends_on(const Bdd& f, unsigned v);
  [[nodiscard]] std::size_t dag_size(const Bdd& f) const;
  /// DAG size of a set of functions with shared nodes counted once.
  [[nodiscard]] std::size_t dag_size(std::span<const Bdd> fs) const;
  /// Live nodes labelled with variable `v` (from the per-variable unique
  /// subtable; O(1)). Level scans — sifting cost models, audit cross-checks
  /// — read this instead of walking global chains.
  [[nodiscard]] std::size_t level_node_count(unsigned v) const;
  /// All per-level counts at once (index = variable).
  [[nodiscard]] std::vector<std::size_t> level_profile() const;

  // --- model queries -------------------------------------------------------
  /// Evaluate under a complete assignment (inputs[i] = value of variable i).
  [[nodiscard]] bool eval(const Bdd& f, const std::vector<bool>& inputs) const;
  /// Number of satisfying assignments over all num_vars() variables.
  [[nodiscard]] double sat_count(const Bdd& f);
  /// One cube contained in `f` (lexicographically smallest path choosing the
  /// 0-branch first). Returns the empty (tautology) cube for f == true and
  /// an invalid handle-cube pair... Precondition: f != false.
  [[nodiscard]] Bdd pick_one_cube(const Bdd& f);
  /// Same cube as literal codes.
  [[nodiscard]] CubeLits pick_one_cube_lits(const Bdd& f);
  /// A complete minterm (all variables assigned) contained in `f`.
  [[nodiscard]] std::vector<bool> pick_one_minterm(const Bdd& f);

  // --- two-level covers ------------------------------------------------------
  /// Irredundant sum-of-products between lower and upper bound
  /// (Minato-Morreale ISOP). Requires lower.implies(upper). The returned
  /// cover satisfies lower <= cover <= upper.
  [[nodiscard]] std::vector<CubeLits> isop(const Bdd& lower, const Bdd& upper);
  /// The characteristic function of `isop(lower, upper)`.
  [[nodiscard]] Bdd isop_bdd(const Bdd& lower, const Bdd& upper);
  /// Disjunction of a cover built with `isop`.
  [[nodiscard]] Bdd cover_to_bdd(std::span<const CubeLits> cover);

  // --- debugging / IO ---------------------------------------------------------
  /// Multi-line structural dump (one node per line) for debugging.
  /// Complemented edges are rendered with a `~` prefix.
  [[nodiscard]] std::string to_string(const Bdd& f) const;
  /// Graphviz dot rendering of the DAG (complemented edges drawn with a dot
  /// arrowhead, as in the CUDD manual).
  [[nodiscard]] std::string to_dot(const Bdd& f) const;

  // --- self audit ----------------------------------------------------------
  /// Full structural audit of the manager: unique-table canonicity (no
  /// duplicate (var, lo, hi) triples, no redundant lo == hi nodes, variable
  /// order strictly increasing on every edge, every live node findable in
  /// its per-variable subtable bucket, high edges regular), complement-edge
  /// and terminal invariants, free-list and reference-count consistency
  /// against a full sweep of the node store, per-level subtable counters,
  /// and computed-cache entry validity. Purely read-only and
  /// allocation-light; returns structured findings (empty = healthy)
  /// instead of asserting, so it is callable from tests and production
  /// gates in any build type.
  [[nodiscard]] std::vector<BddAuditFinding> audit() const;

  // --- cooperative abort ---------------------------------------------------
  // Recursive cores count "steps" (one per recursive apply/quantifier call)
  // and throw BddAbortError when a configured limit is exceeded. This is the
  // hook the batch engine uses to cancel runaway jobs: managers stay
  // single-threaded, the owner of the manager sets a budget before an
  // operation and catches the abort.
  /// Abort any operation once `max_steps` further recursive steps have run
  /// (0 = unlimited). Counted from the moment of this call.
  void set_step_budget(std::uint64_t max_steps) noexcept;
  /// Abort any operation running past `deadline` (checked every few
  /// thousand steps, so granularity is coarse but overhead negligible).
  void set_deadline(std::chrono::steady_clock::time_point deadline) noexcept;
  /// Abort node construction once more than `max_live_nodes` nodes are
  /// alive (0 = unlimited). Unlike the step budget this is a cap on a
  /// *resource*, not on work: it models a memory ceiling, so the batch
  /// engine can degrade a job to a cheaper algorithm instead of letting one
  /// blow-up evict everything else on the machine.
  void set_node_budget(std::size_t max_live_nodes) noexcept;
  [[nodiscard]] std::size_t node_budget() const noexcept { return node_budget_; }
  /// Remove all limits (step budget, deadline, node budget) and detach any
  /// fault injector. The step counter itself is kept (see steps_used).
  void clear_abort() noexcept;
  /// Copy the remaining budget/deadline/node budget and the fault injector
  /// of `src` onto this manager; used when a flow transfers work into a
  /// helper manager mid-job.
  void adopt_abort_limits(const BddManager& src) noexcept;
  /// Install (or with nullptr remove) a fault injector observing this
  /// manager's resource sites. Not owned; must outlive its installation.
  void set_fault_injector(BddFaultInjector* injector) noexcept {
    fault_ = injector;
  }
  /// The installed fault injector (nullptr outside fault-plan runs). Lets
  /// layers above the kernel fire their own injection sites — e.g. the
  /// shared component cache poisons publishes through the same plan.
  [[nodiscard]] BddFaultInjector* fault_injector() const noexcept { return fault_; }
  /// Recursive steps executed since construction or reset_stats().
  [[nodiscard]] std::uint64_t steps_used() const noexcept { return steps_; }

  // --- parallelism ---------------------------------------------------------
  /// Worker threads for the task-parallel apply/ITE kernel. 1 (the default)
  /// keeps every operation on the serial recursion — bit-identical results,
  /// counters and stable JSON to a build without the parallel layer. 0
  /// resolves to the hardware concurrency. Values above 1 let apply/ITE/
  /// compose spawn sibling cofactor recursions on a work-stealing pool;
  /// results are the same canonical nodes (the unique table stays the
  /// single source of canonicity), only discovery order differs. The
  /// manager itself remains externally single-threaded: callers must not
  /// invoke operations concurrently; parallelism lives *inside* one call.
  void set_threads(unsigned n);
  [[nodiscard]] unsigned threads() const noexcept { return threads_; }
  /// Escalation grain for the parallel kernel (ignored at threads=1).
  /// Entering a fork-join region costs a pool wakeup, an arena reserve and
  /// a teardown reconciliation pass, which short operations never repay —
  /// so every operation first runs on the serial core under a synthetic
  /// step cap and only escalates to a real region when the cap trips.
  /// 0 (default): adaptive cap, max(4096, live nodes) steps. 1: no serial
  /// trial, every operation opens a region (benchmark / kernel-stress
  /// mode). n>1: fixed cap of n steps before escalating.
  void set_parallel_grain(std::uint64_t steps) noexcept { parallel_grain_ = steps; }
  [[nodiscard]] std::uint64_t parallel_grain() const noexcept { return parallel_grain_; }

  // --- memory management -------------------------------------------------------
  /// Nodes currently alive (reachable or not yet collected).
  [[nodiscard]] std::size_t live_node_count() const noexcept;
  [[nodiscard]] const BddStats& stats() const noexcept { return stats_; }
  /// Zero all counters and restart the peak-node high-water mark from the
  /// current live count; per-job metrics on a reused manager start here.
  void reset_stats() noexcept;
  /// Force a mark-and-sweep collection now. Computed-table entries whose
  /// operands and result all survive are kept (swept, not cleared), so
  /// long-running decompositions do not re-derive everything after a
  /// collection.
  void collect_garbage();
  /// Collections trigger automatically when live nodes exceed this value at
  /// the entry of a public operation. The effective threshold adapts: it
  /// doubles when a collection reclaims little, and decays back toward the
  /// configured value when collections leave the heap far below it (so a
  /// one-off spike cannot permanently disable GC pressure on a reused
  /// manager). This call (re)sets both the current threshold and the decay
  /// floor.
  void set_gc_threshold(std::size_t threshold) noexcept {
    gc_threshold_ = threshold;
    gc_floor_ = threshold;
  }
  /// Current effective auto-GC trigger (observing the adaptive behaviour).
  [[nodiscard]] std::size_t gc_threshold() const noexcept { return gc_threshold_; }
  /// Cap the computed table at `max_entries` slots (rounded up to a power
  /// of two). The table starts small and doubles with insert pressure up to
  /// this budget.
  void set_cache_budget(std::size_t max_entries) noexcept;
  /// Current computed-table capacity in entries.
  [[nodiscard]] std::size_t cache_entries() const noexcept { return cache_.size(); }

 private:
  friend class Bdd;
  friend struct par::ParallelState;  // pool workers call run_stolen_task
  // Test-only corruption hook: the audit tests define this struct to poke
  // private node storage and verify every audit rule actually fires.
  friend struct BddTestCorruptor;

  // --- edge helpers ---------------------------------------------------------
  // A NodeId is (index << 1) | complement; these never touch memory.
  [[nodiscard]] static constexpr std::uint32_t edge_index(NodeId e) noexcept {
    return e >> 1;
  }
  [[nodiscard]] static constexpr NodeId edge_not(NodeId e) noexcept { return e ^ 1u; }
  [[nodiscard]] static constexpr NodeId edge_regular(NodeId e) noexcept {
    return e & ~NodeId{1};
  }
  [[nodiscard]] static constexpr NodeId edge_complement_bit(NodeId e) noexcept {
    return e & 1u;
  }
  [[nodiscard]] static constexpr bool edge_complemented(NodeId e) noexcept {
    return (e & 1u) != 0;
  }
  [[nodiscard]] static constexpr NodeId make_edge(std::uint32_t index,
                                                  NodeId complement) noexcept {
    return (index << 1) | complement;
  }

  struct Node {
    std::uint32_t var;   // level == variable index; terminal uses var = num_vars
    NodeId lo;           // edge; also: next free *index* when on the free list
    NodeId hi;           // edge; regular by the canonicity rule
    std::uint32_t next;  // node index chain within the per-variable subtable
    std::uint32_t refs;  // external references (handles), shared by both polarities
  };

  // One unique subtable per variable (BuDDy/CUDD style): hash chains only
  // ever contain nodes of one level, so level scans and sifting never walk
  // foreign nodes, and each subtable grows independently of the others.
  struct VarTable {
    std::vector<std::uint32_t> buckets;  // node-index chain heads, pow2 size
    std::size_t count = 0;               // live nodes at this level
  };

  // Computed-table entry. Two entries form one bucket; `stamp` implements
  // aging (the older entry of a full bucket is evicted), so hot entries
  // survive collisions. tag 0 = empty slot.
  struct CacheEntry {
    std::uint32_t tag = 0;
    NodeId a = 0, b = 0, c = 0;
    NodeId result = kInvalidId;
    std::uint32_t stamp = 0;
  };

  // Tags for the computed table. kCompose packs the substituted variable
  // into the upper bits of the tag. kOpAnd is the dedicated tag of the
  // two-operand AND core: binary conjunctions and general ITE triples hash
  // to distinct buckets, so the two-slot aging probe stops thrashing
  // between them on conjunction-heavy flows.
  enum Op : std::uint32_t {
    kOpIte = 1,
    kOpExists = 2,
    kOpForall = 3,
    kOpAndExists = 4,
    kOpCompose = 5,  // tag = kOpCompose | (var << 8)
    kOpConstrain = 6,
    kOpRestrict = 7,
    kOpCofCube = 8,
    kOpAnd = 9,
  };
  static constexpr std::uint32_t kOpLast = kOpAnd;

  // reference management (used by Bdd handles)
  void inc_ref(NodeId id) noexcept;
  void dec_ref(NodeId id) noexcept;

  // node construction
  NodeId make_node(unsigned var, NodeId lo, NodeId hi);
  std::uint32_t alloc_slot();
  void grow_subtable(unsigned var);
  [[nodiscard]] std::size_t unique_hash(NodeId lo, NodeId hi) const noexcept;

  // computed table
  [[nodiscard]] std::size_t cache_bucket(std::uint32_t tag, NodeId a, NodeId b,
                                         NodeId c) const noexcept;
  [[nodiscard]] NodeId cache_lookup(std::uint32_t tag, NodeId a, NodeId b, NodeId c) noexcept;
  void cache_insert(std::uint32_t tag, NodeId a, NodeId b, NodeId c, NodeId result);
  void grow_cache();

  // recursive cores (work on raw edges; never trigger GC)
  NodeId and_rec(NodeId f, NodeId g);
  NodeId ite_rec(NodeId f, NodeId g, NodeId h);
  NodeId quant_rec(NodeId f, const std::vector<bool>& qvars, unsigned max_qvar,
                   bool existential, NodeId cube_id);
  NodeId and_exists_rec(NodeId f, NodeId g, const std::vector<bool>& qvars,
                        unsigned max_qvar, NodeId cube_id);
  NodeId compose_rec(NodeId f, unsigned v, NodeId g);
  NodeId constrain_rec(NodeId f, NodeId c, bool restrict_mode);
  NodeId cofactor_cube_rec(NodeId f, NodeId cube);
  void support_rec(NodeId f, std::vector<bool>& seen, std::vector<NodeId>& visited) const;

  // parallel kernel (bdd_parallel.cpp). parallel_apply runs one public
  // operation as a fork-join region: it sizes an allocation arena, wakes
  // the pool, runs the root recursion on the calling thread, and tears the
  // region down (trim arena, recount subtables, merge worker counters)
  // before returning — so outside a region the manager is structurally
  // indistinguishable from a serial one.
  [[nodiscard]] bool parallel_eligible() const noexcept {
    return threads_ > 1 && fault_ == nullptr;
  }
  NodeId parallel_apply(std::uint32_t op, NodeId f, NodeId g, NodeId h);
  NodeId mt_and(NodeId f, NodeId g, unsigned depth, par::WorkerCtx& wk);
  NodeId mt_ite(NodeId f, NodeId g, NodeId h, unsigned depth, par::WorkerCtx& wk);
  NodeId mt_make_node(unsigned var, NodeId lo, NodeId hi, par::WorkerCtx& wk);
  std::uint32_t mt_alloc_slot(par::WorkerCtx& wk);
  void mt_check_step(par::WorkerCtx& wk);
  void run_stolen_task(void* task, par::WorkerCtx& wk);  // pool callback

  void maybe_gc();
  [[nodiscard]] unsigned level_of(NodeId e) const noexcept {
    return nodes_[edge_index(e)].var;
  }
  // Functional cofactors of an edge: the stored children with the edge's
  // complement bit pushed through.
  [[nodiscard]] NodeId lo_of(NodeId e) const noexcept {
    return nodes_[edge_index(e)].lo ^ edge_complement_bit(e);
  }
  [[nodiscard]] NodeId hi_of(NodeId e) const noexcept {
    return nodes_[edge_index(e)].hi ^ edge_complement_bit(e);
  }
  // Deterministic operand order for commutative standard triples: by top
  // level, ties by regular edge value.
  [[nodiscard]] bool edge_before(NodeId a, NodeId b) const noexcept {
    const unsigned la = level_of(a), lb = level_of(b);
    return la < lb || (la == lb && edge_regular(a) < edge_regular(b));
  }
  [[nodiscard]] std::vector<bool> cube_var_mask(NodeId cube) const;

  // Cross-manager misuse detector: every public operation taking handles
  // calls this on each operand. One pointer compare on the hot path; the
  // throw lives out of line (bdd_audit.cpp).
  void ensure_owned(const Bdd& f, const char* op) const {
    if (f.manager() != this) throw_ownership(f, op);
  }
  [[noreturn]] void throw_ownership(const Bdd& f, const char* op) const;

  // Cooperative abort: called at the head of every recursive core step.
  // The hot path is one increment plus two predictable branches; the
  // deadline clock is consulted only every 8192 steps.
  void check_step() {
    ++steps_;
    if (step_budget_ != 0 && steps_ > step_budget_) throw_step_abort();
    if (has_deadline_ && (steps_ & 0x1fffu) == 0) check_deadline();
    if (fault_ != nullptr) fault_->on_step(steps_);
  }
  [[noreturn]] void throw_step_abort() const;
  [[noreturn]] void throw_node_abort() const;
  void check_deadline() const;  // throws BddAbortError past the deadline

  Bdd wrap(NodeId id) noexcept { return Bdd(this, id); }

  unsigned num_vars_;
  std::vector<Node> nodes_;              // indexed by node index (not edge)
  std::uint32_t free_list_ = kInvalidId;  // node-index chain through Node::lo
  std::size_t free_count_ = 0;

  std::vector<VarTable> subtables_;  // one unique subtable per variable
  std::vector<CacheEntry> cache_;    // 2-entry buckets, power-of-two size
  std::size_t cache_budget_ = 1u << 20;  // max entries; growth stops here
  std::size_t cache_inserts_since_grow_ = 0;
  std::uint32_t cache_tick_ = 0;  // aging clock (wrap-around is harmless)

  std::size_t gc_threshold_;
  std::size_t gc_floor_;       // decay floor for the adaptive threshold
  bool in_operation_ = false;  // guards against GC during recursion
  // Monotonic collection counter for cross-region cache invalidation.
  // stats_.gc_runs is NOT usable for that: reset_stats() zeroes it, so on a
  // pooled manager a post-reset collection can land the counter back on a
  // previously seen value and stale cache entries would survive a real GC.
  std::size_t gc_epoch_ = 0;
  BddStats stats_;

  // cooperative abort state (see set_step_budget / set_deadline)
  std::uint64_t steps_ = 0;
  std::uint64_t step_budget_ = 0;   // 0 = unlimited
  std::size_t node_budget_ = 0;     // 0 = unlimited (cap on live nodes)
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};
  BddFaultInjector* fault_ = nullptr;  // not owned; see set_fault_injector

  // parallel kernel state (lazily created by set_threads(>1); owned).
  // std::unique_ptr would drag the full ParallelState definition into every
  // includer via the destructor, so a raw pointer + explicit delete in
  // ~BddManager (bdd_parallel.cpp) keeps this header dependency-free.
  unsigned threads_ = 1;
  std::uint64_t parallel_grain_ = 0;  // see set_parallel_grain
  par::ParallelState* par_ = nullptr;

  // scratch marks for traversals (indexed by node index)
  mutable std::vector<bool> mark_;
};

}  // namespace bidec

#endif  // BIDEC_BDD_BDD_H
