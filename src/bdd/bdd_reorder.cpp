#include "bdd/bdd_reorder.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <unordered_map>

namespace bidec {

Bdd bdd_transfer(BddManager& dst, const Bdd& f, std::span<const unsigned> var_map) {
  BddManager& src = *f.manager();
  if (var_map.size() < src.num_vars()) {
    throw std::invalid_argument("bdd_transfer: var_map too short");
  }
  std::unordered_map<NodeId, Bdd> memo;
  // Recursive copy with memoization on source node ids. The destination
  // variable order may differ, so nodes are rebuilt with ITE.
  auto rec = [&](auto&& self, const Bdd& g) -> Bdd {
    if (g.is_false()) return dst.bdd_false();
    if (g.is_true()) return dst.bdd_true();
    if (const auto it = memo.find(g.id()); it != memo.end()) return it->second;
    const Bdd lo = self(self, g.low());
    const Bdd hi = self(self, g.high());
    const Bdd result = dst.ite(dst.var(var_map[g.top_var()]), hi, lo);
    memo.emplace(g.id(), result);
    return result;
  };
  return rec(rec, f);
}

Bdd bdd_transfer(BddManager& dst, const Bdd& f) {
  std::vector<unsigned> identity(f.manager()->num_vars());
  std::iota(identity.begin(), identity.end(), 0u);
  return bdd_transfer(dst, f, identity);
}

std::vector<unsigned> invert_order(std::span<const unsigned> order) {
  std::vector<unsigned> inverse(order.size());
  for (unsigned level = 0; level < order.size(); ++level) inverse[order[level]] = level;
  return inverse;
}

std::size_t size_under_order(BddManager& mgr, std::span<const Bdd> fs,
                             std::span<const unsigned> order) {
  BddManager scratch(mgr.num_vars(),
                     /*initial_capacity=*/1u << 12);
  // order[new_level] = old var  =>  var_map[old var] = new level.
  const std::vector<unsigned> var_map = invert_order(order);
  std::vector<Bdd> copies;
  copies.reserve(fs.size());
  for (const Bdd& f : fs) copies.push_back(bdd_transfer(scratch, f, var_map));
  return scratch.dag_size(copies);
}

std::vector<unsigned> force_order(BddManager& mgr, std::span<const Bdd> fs,
                                  unsigned iterations) {
  const unsigned n = mgr.num_vars();
  std::vector<unsigned> order(n);
  std::iota(order.begin(), order.end(), 0u);
  if (fs.empty()) return order;

  // Hyperedges: for every BDD node labelled v with children labelled a, b,
  // connect {v, a, b} (terminal children are skipped). Gathered once.
  struct Edge {
    unsigned v, a, b;  // a or b may equal v when the child is a terminal
  };
  std::vector<Edge> edges;
  {
    std::vector<bool> seen;
    for (const Bdd& f : fs) {
      std::vector<Bdd> stack{f};
      while (!stack.empty()) {
        const Bdd g = stack.back();
        stack.pop_back();
        if (g.is_const()) continue;
        if (g.id() >= seen.size()) seen.resize(g.id() + 1, false);
        if (seen[g.id()]) continue;
        seen[g.id()] = true;
        const Bdd lo = g.low(), hi = g.high();
        Edge e{g.top_var(), g.top_var(), g.top_var()};
        if (!lo.is_const()) e.a = lo.top_var();
        if (!hi.is_const()) e.b = hi.top_var();
        edges.push_back(e);
        stack.push_back(lo);
        stack.push_back(hi);
      }
    }
  }
  if (edges.empty()) return order;

  std::vector<double> position(n);
  for (unsigned v = 0; v < n; ++v) position[v] = v;
  for (unsigned iter = 0; iter < iterations; ++iter) {
    std::vector<double> sum(n, 0.0);
    std::vector<unsigned> count(n, 0);
    for (const Edge& e : edges) {
      const double cog = (position[e.v] + position[e.a] + position[e.b]) / 3.0;
      sum[e.v] += cog;
      ++count[e.v];
      sum[e.a] += cog;
      ++count[e.a];
      sum[e.b] += cog;
      ++count[e.b];
    }
    for (unsigned v = 0; v < n; ++v) {
      if (count[v] != 0) position[v] = sum[v] / count[v];
    }
    std::sort(order.begin(), order.end(), [&position](unsigned x, unsigned y) {
      return position[x] < position[y] || (position[x] == position[y] && x < y);
    });
    // Re-quantize positions to ranks to keep the iteration stable.
    for (unsigned level = 0; level < n; ++level) position[order[level]] = level;
  }
  return order;
}

std::vector<unsigned> sift_order(BddManager& mgr, std::span<const Bdd> fs,
                                 unsigned rounds) {
  const unsigned n = mgr.num_vars();
  std::vector<unsigned> order(n);
  std::iota(order.begin(), order.end(), 0u);
  if (fs.empty() || n < 2) return order;

  // Rudell's heuristic: sift the heaviest levels first, so the early (most
  // expensive) moves act on the variables with the most nodes. The
  // per-variable unique subtables make this profile an O(num_vars) read.
  const std::vector<std::size_t> profile = mgr.level_profile();
  std::vector<unsigned> sift_vars(n);
  std::iota(sift_vars.begin(), sift_vars.end(), 0u);
  std::sort(sift_vars.begin(), sift_vars.end(), [&profile](unsigned x, unsigned y) {
    return profile[x] > profile[y] || (profile[x] == profile[y] && x < y);
  });

  std::size_t best_size = size_under_order(mgr, fs, order);
  for (unsigned round = 0; round < rounds; ++round) {
    bool improved = false;
    for (const unsigned v_sift : sift_vars) {
      const unsigned pos = static_cast<unsigned>(
          std::find(order.begin(), order.end(), v_sift) - order.begin());
      // Try moving the variable currently at `pos` to every other slot.
      std::vector<unsigned> best_local = order;
      std::size_t best_local_size = best_size;
      for (unsigned target = 0; target < n; ++target) {
        if (target == pos) continue;
        std::vector<unsigned> candidate = order;
        const unsigned v = candidate[pos];
        candidate.erase(candidate.begin() + pos);
        candidate.insert(candidate.begin() + target, v);
        const std::size_t size = size_under_order(mgr, fs, candidate);
        if (size < best_local_size) {
          best_local_size = size;
          best_local = std::move(candidate);
        }
      }
      if (best_local_size < best_size) {
        best_size = best_local_size;
        order = std::move(best_local);
        improved = true;
      }
    }
    if (!improved) break;
  }
  return order;
}

}  // namespace bidec
