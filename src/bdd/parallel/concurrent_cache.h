// Lossy concurrent computed table for the task-parallel kernel.
//
// Contract (the "lossy cache" of DESIGN.md §16): a lookup may miss spuriously
// and an insert may be dropped entirely, but a hit always returns a value some
// thread actually computed and published for exactly that key. Losing an
// insert costs a recompute, never a wrong node — canonicity lives in the
// unique table, not here — so the cache can stay lock-free on the read side
// and wait-free on the write side (one CAS attempt, drop on contention).
//
// Each entry is a seqlock: `seq` is even when the entry is stable and odd
// while a writer owns it. All payload fields are std::atomic with relaxed
// ordering; the seq transitions carry the acquire/release edges. That keeps
// the protocol ThreadSanitizer-clean: there are no plain loads racing with
// plain stores, and a torn read is detected by the seq re-check and treated
// as a miss.
#ifndef BIDEC_BDD_PARALLEL_CONCURRENT_CACHE_H
#define BIDEC_BDD_PARALLEL_CONCURRENT_CACHE_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace bidec::par {

class ConcurrentCache {
 public:
  /// `entries` is rounded up to a power of two. Memory is ~24 B per entry.
  explicit ConcurrentCache(std::size_t entries) {
    std::size_t n = 64;
    while (n < entries) n <<= 1;
    slots_ = std::vector<Entry>(n);
    mask_ = n - 1;
  }

  /// Returns the cached result or kInvalid when absent / torn / being
  /// written. Never blocks.
  [[nodiscard]] std::uint32_t lookup(std::uint32_t tag, std::uint32_t a,
                                     std::uint32_t b, std::uint32_t c) noexcept {
    Entry& e = slots_[bucket(tag, a, b, c)];
    const std::uint32_t s1 = e.seq.load(std::memory_order_acquire);
    if ((s1 & 1u) != 0) return kInvalid;  // writer active
    const std::uint32_t et = e.tag.load(std::memory_order_relaxed);
    const std::uint32_t ea = e.a.load(std::memory_order_relaxed);
    const std::uint32_t eb = e.b.load(std::memory_order_relaxed);
    const std::uint32_t ec = e.c.load(std::memory_order_relaxed);
    const std::uint32_t er = e.result.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (e.seq.load(std::memory_order_relaxed) != s1) return kInvalid;  // torn
    if (et != tag || ea != a || eb != b || ec != c) return kInvalid;
    return er;
  }

  /// One CAS attempt to lock the entry; returns false (insert dropped) when
  /// another writer holds or wins it. Never blocks, never retries.
  bool insert(std::uint32_t tag, std::uint32_t a, std::uint32_t b,
              std::uint32_t c, std::uint32_t result) noexcept {
    Entry& e = slots_[bucket(tag, a, b, c)];
    std::uint32_t s = e.seq.load(std::memory_order_relaxed);
    if ((s & 1u) != 0) return false;
    if (!e.seq.compare_exchange_strong(s, s + 1, std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
      return false;
    }
    e.tag.store(tag, std::memory_order_relaxed);
    e.a.store(a, std::memory_order_relaxed);
    e.b.store(b, std::memory_order_relaxed);
    e.c.store(c, std::memory_order_relaxed);
    e.result.store(result, std::memory_order_relaxed);
    e.seq.store(s + 2, std::memory_order_release);
    return true;
  }

  /// Drop every entry. Only callable while no region is active (GC just ran
  /// and freed nodes the entries may reference).
  void clear() noexcept {
    for (Entry& e : slots_) {
      e.tag.store(0, std::memory_order_relaxed);
      // Keep seq even and monotone so an (impossible) stale reader still
      // fails its re-check rather than seeing a half-cleared entry.
      e.seq.store(e.seq.load(std::memory_order_relaxed) + 2,
                  std::memory_order_relaxed);
    }
    std::atomic_thread_fence(std::memory_order_release);
  }

  static constexpr std::uint32_t kInvalid = 0xffffffffu;

 private:
  struct Entry {
    std::atomic<std::uint32_t> seq{0};
    std::atomic<std::uint32_t> tag{0};  // 0 = empty
    std::atomic<std::uint32_t> a{0}, b{0}, c{0};
    std::atomic<std::uint32_t> result{0};
  };

  [[nodiscard]] std::size_t bucket(std::uint32_t tag, std::uint32_t a,
                                   std::uint32_t b, std::uint32_t c) const noexcept {
    // splitmix64 finalizer over the folded key, same spirit as the serial
    // computed table's cache_bucket.
    std::uint64_t x = (static_cast<std::uint64_t>(a) << 32) ^
                      (static_cast<std::uint64_t>(b) << 11) ^
                      (static_cast<std::uint64_t>(tag) << 54) ^ c;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return static_cast<std::size_t>(x) & mask_;
  }

  std::vector<Entry> slots_;
  std::size_t mask_ = 0;
};

}  // namespace bidec::par

#endif  // BIDEC_BDD_PARALLEL_CONCURRENT_CACHE_H
