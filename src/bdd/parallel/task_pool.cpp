// Pool mechanics for the task-parallel BDD kernel: thread lifecycle, the
// deque protocol, and the safepoint. The recursion itself (mt_and / mt_ite)
// lives in src/bdd/bdd_parallel.cpp next to its serial counterparts.
#include "bdd/parallel/task_pool.h"

#include "bdd/bdd.h"

namespace bidec::par {

ParallelState::ParallelState(BddManager* owner, unsigned num_threads)
    : mgr(owner),
      nthreads(num_threads),
      // ~1 entry per 4 serial cache slots is plenty: the lossy cache only
      // has to carry one region's working set, not a whole flow's.
      cache(1u << 18),
      deques(num_threads),
      ctxs(num_threads) {
  for (unsigned i = 0; i < nthreads; ++i) {
    ctxs[i].index = i;
    ctxs[i].ps = this;
  }
  threads.reserve(nthreads - 1);
  for (unsigned i = 1; i < nthreads; ++i) {
    threads.emplace_back([this, i] { worker_main(i); });
  }
}

ParallelState::~ParallelState() {
  {
    std::lock_guard<std::mutex> lk(region_mu);
    shutdown = true;
  }
  region_cv.notify_all();
  for (std::thread& t : threads) t.join();
}

void ParallelState::begin_region() {
  abort_kind.store(0, std::memory_order_relaxed);
  shared_steps.store(0, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lk(region_mu);
    ++epoch;
    live.store(true, std::memory_order_release);
  }
  region_cv.notify_all();
}

void ParallelState::end_region() {
  live.store(false, std::memory_order_release);
  // Spin until the resident workers have dropped their shared table locks
  // and left; after that the manager is provably single-threaded and the
  // caller may trim the arena and merge counters with plain code.
  while (in_region.load(std::memory_order_acquire) != 0) {
    std::this_thread::yield();
  }
}

void ParallelState::worker_main(unsigned index) {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(region_mu);
      region_cv.wait(lk, [&] { return shutdown || epoch != seen_epoch; });
      if (shutdown) return;
      seen_epoch = epoch;
    }
    in_region.fetch_add(1, std::memory_order_acq_rel);
    WorkerCtx& wk = ctxs[index];
    {
      std::shared_lock<std::shared_mutex> tl(table_mu);
      wk.region_lock = &tl;
      while (live.load(std::memory_order_acquire)) {
        bool stolen = false;
        Task* t = grab(index, stolen);
        if (t != nullptr) {
          if (stolen) ++wk.st.steals;
          run(t, wk);
        } else {
          checkpoint(wk);
          std::this_thread::yield();
        }
      }
      wk.region_lock = nullptr;
    }
    in_region.fetch_sub(1, std::memory_order_acq_rel);
  }
}

void ParallelState::run(Task* t, WorkerCtx& wk) { mgr->run_stolen_task(t, wk); }

void ParallelState::push(unsigned worker, Task* t) {
  WorkerDeque& d = deques[worker];
  std::lock_guard<std::mutex> lk(d.mu);
  d.q.push_back(t);
}

bool ParallelState::pop_if_back(unsigned worker, Task* t) {
  WorkerDeque& d = deques[worker];
  std::lock_guard<std::mutex> lk(d.mu);
  if (d.q.empty() || d.q.back() != t) return false;
  d.q.pop_back();
  return true;
}

Task* ParallelState::grab(unsigned worker, bool& stolen) {
  stolen = false;
  {
    WorkerDeque& own = deques[worker];
    std::lock_guard<std::mutex> lk(own.mu);
    if (!own.q.empty()) {
      Task* t = own.q.back();
      own.q.pop_back();
      return t;
    }
  }
  // Steal the oldest task of the first non-empty victim. Start at the next
  // worker so victims differ per thief.
  for (unsigned k = 1; k < nthreads; ++k) {
    WorkerDeque& v = deques[(worker + k) % nthreads];
    std::lock_guard<std::mutex> lk(v.mu);
    if (!v.q.empty()) {
      Task* t = v.q.front();
      v.q.pop_front();
      stolen = true;
      return t;
    }
  }
  return nullptr;
}

void ParallelState::checkpoint_slow(WorkerCtx& wk) {
  // A grower wants table_mu exclusive: release our shared hold until every
  // pending growth is done, then re-acquire and resume. Nothing on this
  // thread's stack points into nodes_ across this window (mt_* reload
  // through indices), so the resize is invisible to us.
  wk.region_lock->unlock();
  while (pause_waiters.load(std::memory_order_acquire) != 0) {
    std::this_thread::yield();
  }
  wk.region_lock->lock();
}

}  // namespace bidec::par
