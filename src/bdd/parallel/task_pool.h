// Work-stealing fork-join pool + shared region state for the task-parallel
// BDD kernel (DESIGN.md §16).
//
// Execution model: a public BddManager operation opens a *region*. The
// calling thread becomes worker 0; the pool's N-1 resident threads wake and
// join it. Inside the region mt_and/mt_ite spawn their high-cofactor
// recursion as a Task pushed on the spawner's deque; the spawner recurses
// into the low cofactor, then joins — popping the task back if nobody stole
// it (the common case: fork-join overhead is one push + one pop), otherwise
// helping (running other tasks) until the thief publishes the result. Owners
// pop the back of their deque, thieves steal from the front, so steals take
// the oldest (largest) subtrees.
//
// Safepoint protocol: every worker holds `table_mu` shared for the whole
// region and polls `pause_waiters` at checkpoints (the idle loop and every
// ~1k recursion steps). A thread that must grow the node store increments
// `pause_waiters`, drops its shared lock, takes `table_mu` exclusive — which
// drains once every other worker checkpoints and releases — resizes, and
// restores. Checkpoints are only ever reached with no stripe mutex held, so
// the exclusive acquisition cannot deadlock against a blocked chain insert.
#ifndef BIDEC_BDD_PARALLEL_TASK_POOL_H
#define BIDEC_BDD_PARALLEL_TASK_POOL_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <vector>

#include "bdd/parallel/concurrent_cache.h"

namespace bidec {
class BddManager;

namespace par {

/// One spawned sibling recursion. Stack-allocated in the spawning frame;
/// `done` is the release/acquire edge that publishes `result`.
struct Task {
  std::uint8_t kind = 0;  // 0 = AND(f, g), 1 = ITE(f, g, h)
  std::uint32_t f = 0, g = 0, h = 0;
  unsigned depth = 0;
  std::atomic<std::uint32_t> result{0xffffffffu};
  std::atomic<bool> done{false};
};

/// Per-worker counters, merged into BddStats at region teardown (workers
/// never touch the manager's counters directly).
struct WorkerStats {
  std::uint64_t steps = 0;
  std::uint64_t and_calls = 0;
  std::uint64_t ite_calls = 0;
  std::uint64_t ite_norms = 0;
  std::uint64_t cache_lookups = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_inserts = 0;
  std::uint64_t unique_hits = 0;
  std::uint64_t unique_misses = 0;
  std::uint64_t tasks_spawned = 0;
  std::uint64_t steals = 0;
  std::uint64_t cache_drops = 0;
  std::uint64_t cas_retries = 0;
};

struct ParallelState;

/// Per-worker context threaded through the mt_* recursion.
struct WorkerCtx {
  unsigned index = 0;
  ParallelState* ps = nullptr;
  std::shared_lock<std::shared_mutex>* region_lock = nullptr;  // held lock
  WorkerStats st;
  std::vector<std::uint32_t> spare_slots;  // allocated, lost the insert race
  unsigned steps_since_poll = 0;
};

/// Pool + shared region state, owned by one BddManager. Threads are created
/// once (set_threads) and sleep between regions.
struct ParallelState {
  ParallelState(BddManager* owner, unsigned num_threads);
  ~ParallelState();

  ParallelState(const ParallelState&) = delete;
  ParallelState& operator=(const ParallelState&) = delete;

  // --- region lifecycle (called by worker 0 / BddManager) -----------------
  /// Wake the resident threads into a new region. Caller is worker 0.
  void begin_region();
  /// Mark the region over and wait until every resident worker has left the
  /// tables (after this the manager is single-threaded again).
  void end_region();

  /// Execute a task on this worker (forwards to the manager's mt_* cores).
  void run(Task* t, WorkerCtx& wk);

  // --- deque ops ----------------------------------------------------------
  void push(unsigned worker, Task* t);
  /// Pop `t` from the back of `worker`'s deque iff it is still there.
  bool pop_if_back(unsigned worker, Task* t);
  /// Grab work: own deque from the back, then other deques from the front.
  /// Sets `stolen` when the task came from another worker's deque.
  Task* grab(unsigned worker, bool& stolen);

  // --- safepoint ----------------------------------------------------------
  /// Cooperative yield point; must be called with no stripe mutex held.
  void checkpoint(WorkerCtx& wk) {
    if (pause_waiters.load(std::memory_order_relaxed) != 0) checkpoint_slow(wk);
  }
  void checkpoint_slow(WorkerCtx& wk);

  BddManager* mgr;
  unsigned nthreads;

  // Region control. `epoch` distinguishes regions so a worker that wakes
  // late cannot re-enter a finished region; `live` is the fast-path flag the
  // in-region work loop polls.
  std::mutex region_mu;
  std::condition_variable region_cv;
  std::uint64_t epoch = 0;       // guarded by region_mu
  bool shutdown = false;         // guarded by region_mu
  std::atomic<bool> live{false};
  std::atomic<unsigned> in_region{0};

  // Node-store arena: [alloc_base, alloc_next) are this region's new slots;
  // alloc_cap mirrors nodes_.size() (only changed under table_mu exclusive).
  std::atomic<std::uint32_t> alloc_next{0};
  std::atomic<std::uint32_t> alloc_cap{0};
  std::uint32_t alloc_base = 0;

  // Safepoint (see file comment).
  std::shared_mutex table_mu;
  std::atomic<unsigned> pause_waiters{0};

  // Abort propagation: 0 = none, 1 = step budget, 2 = deadline, 3 = node
  // budget / allocation failure. First setter wins; workers poll and unwind
  // by returning invalid ids, worker 0 throws after teardown.
  std::atomic<int> abort_kind{0};
  std::atomic<std::uint64_t> shared_steps{0};

  // Lock stripes for unique-table inserts. Same (var, bucket) always maps to
  // the same stripe, so a chain is never mutated by two threads at once.
  static constexpr unsigned kStripes = 64;
  std::mutex stripes[kStripes];

  ConcurrentCache cache;
  // GC-epoch stamp for cache invalidation. Compared against the manager's
  // monotonic gc_epoch_ (not stats_.gc_runs, which reset_stats() zeroes and
  // could therefore revisit a stamped value after a real collection).
  std::size_t gc_epoch_at_last_region = 0;

  struct WorkerDeque {
    std::mutex mu;
    std::deque<Task*> q;
  };
  std::vector<WorkerDeque> deques;  // one per worker, index 0 = caller
  std::vector<WorkerCtx> ctxs;      // resident-thread contexts (1..n-1); 0 unused

  std::vector<std::thread> threads;  // the n-1 resident workers

 private:
  void worker_main(unsigned index);
};

}  // namespace par
}  // namespace bidec

#endif  // BIDEC_BDD_PARALLEL_TASK_POOL_H
