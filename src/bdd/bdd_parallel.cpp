// Task-parallel apply/ITE: the mt_* twins of and_rec/ite_rec, the region
// lifecycle, and the concurrent unique-table insert. See DESIGN.md §16 for
// the protocol write-up and src/bdd/parallel/task_pool.h for the pool.
//
// Invariants that keep this sound:
//  * Canonicity is owned by the unique table alone. The striped insert makes
//    every (var, lo, hi) triple unique across threads, so two threads
//    computing the same function always end at the same NodeId — results are
//    identical to the serial kernel's up to allocation order.
//  * The lossy cache can drop or miss, never lie: wrong-key hits are
//    excluded by the full-key compare under the seqlock.
//  * Workers never touch serial-kernel state (serial computed table, stats_,
//    free list): those stay bit-exact for threads=1 and are reconciled once,
//    single-threaded, at region teardown.
//  * A frame never returns while a task it spawned is outstanding, abort or
//    not — tasks live on the spawner's stack.
#include "bdd/bdd.h"
#include "bdd/parallel/task_pool.h"

#include <algorithm>
#include <cassert>
#include <new>
#include <thread>

namespace bidec {

using par::ParallelState;
using par::Task;
using par::WorkerCtx;

namespace {
// Spawn sibling tasks only above this recursion depth: deep frames are tiny
// and the push/pop overhead would dominate the work shipped.
constexpr unsigned kSpawnDepth = 8;
}  // namespace

BddManager::~BddManager() { delete par_; }

void BddManager::set_threads(unsigned n) {
  if (n == 0) n = std::max(1u, std::thread::hardware_concurrency());
  if (n == threads_) return;
  delete par_;
  par_ = nullptr;
  threads_ = n;
  if (threads_ > 1) par_ = new ParallelState(this, threads_);
}

// ---------------------------------------------------------------------------
// Region lifecycle
// ---------------------------------------------------------------------------

NodeId BddManager::parallel_apply(std::uint32_t op, NodeId f, NodeId g, NodeId h) {
  // Serial trial: a region costs a pool wakeup, an arena reserve and a
  // teardown reconciliation pass, which the short operations that dominate
  // synthesis flows can never repay — measured on the batch suite, opening
  // a region per operation was a 75x slowdown, not a speedup. So every
  // operation first runs on the serial core under a synthetic step cap
  // scaled to the store size; only the rare operation that blows the cap
  // re-enters as a real region, and the region overhead is then amortized
  // against at least a cap's worth of work. set_parallel_grain overrides
  // the cap (1 = no trial, benchmark mode).
  const std::uint64_t grain =
      parallel_grain_ != 0
          ? parallel_grain_
          : std::max<std::uint64_t>(1u << 12, live_node_count());
  if (grain > 1) {
    const std::uint64_t saved_budget = step_budget_;
    const std::uint64_t cap = steps_ + grain;
    if (saved_budget != 0 && saved_budget <= cap) {
      // The caller's own budget is tighter than the trial cap; the serial
      // core enforces it and any abort it raises is genuine.
      return op == kOpAnd ? and_rec(f, g) : ite_rec(f, g, h);
    }
    step_budget_ = cap;
    try {
      const NodeId r = op == kOpAnd ? and_rec(f, g) : ite_rec(f, g, h);
      step_budget_ = saved_budget;
      return r;
    } catch (const BddAbortError&) {
      step_budget_ = saved_budget;
      // Rethrow genuine aborts; only a synthetic cap trip falls through to
      // the parallel region below.
      if (saved_budget != 0 && steps_ > saved_budget) throw;
      if (node_budget_ != 0 && live_node_count() >= node_budget_) throw;
      if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_) {
        throw;
      }
    }
  }

  ParallelState& ps = *par_;
  // The cross-region cache may reference nodes a collection has since freed;
  // drop it wholesale whenever a GC ran. (Node indices are stable across GC,
  // so without a collection every entry stays valid.) The stamp is the
  // monotonic gc_epoch_, not stats_.gc_runs: reset_stats() zeroes the
  // latter, and on a pooled manager a post-reset collection could land it
  // back on the stamped value — stale entries would then survive a real GC
  // and hand out freed node ids.
  if (gc_epoch_ != ps.gc_epoch_at_last_region) {
    ps.cache.clear();
    ps.gc_epoch_at_last_region = gc_epoch_;
  }

  // Arena: pre-size the node store so workers bump-allocate without moving
  // `nodes_` (growth mid-region goes through the stop-the-world safepoint).
  ps.alloc_base = static_cast<std::uint32_t>(nodes_.size());
  const std::size_t slack = std::max<std::size_t>(nodes_.size() / 2, 1u << 13);
  nodes_.resize(nodes_.size() + slack);
  ps.alloc_next.store(ps.alloc_base, std::memory_order_relaxed);
  ps.alloc_cap.store(static_cast<std::uint32_t>(nodes_.size()),
                     std::memory_order_relaxed);

  ps.begin_region();
  NodeId result = kInvalidId;
  {
    std::shared_lock<std::shared_mutex> tl(ps.table_mu);
    WorkerCtx& wk = ps.ctxs[0];
    wk.region_lock = &tl;
    result = op == kOpAnd ? mt_and(f, g, 0, wk) : mt_ite(f, g, h, 0, wk);
    wk.region_lock = nullptr;
  }
  ps.end_region();

  // --- teardown: single-threaded from here on ------------------------------
  const std::uint32_t alloc_end = ps.alloc_next.load(std::memory_order_relaxed);
  nodes_.resize(alloc_end);  // trim unused slack

  // Slots that lost their insert race (or were left spare) go back to the
  // free list exactly like GC-freed slots, so no node is ever lost.
  for (WorkerCtx& wk : ps.ctxs) {
    for (const std::uint32_t s : wk.spare_slots) {
      nodes_[s].var = kInvalidId;
      nodes_[s].lo = free_list_;
      free_list_ = s;
      ++free_count_;
    }
    wk.spare_slots.clear();
  }

  // Reconcile the per-variable counters the lock-free inserts skipped, and
  // apply the deferred subtable growth (growing mid-region would rehash
  // chains under concurrent readers).
  for (std::uint32_t idx = ps.alloc_base; idx < alloc_end; ++idx) {
    if (nodes_[idx].var != kInvalidId) ++subtables_[nodes_[idx].var].count;
  }
  for (unsigned v = 0; v < num_vars_; ++v) {
    while (subtables_[v].count * 2 > subtables_[v].buckets.size()) {
      grow_subtable(v);
    }
  }

  // Merge worker counters into the serial stats.
  std::uint64_t steps = 0;
  for (WorkerCtx& wk : ps.ctxs) {
    const par::WorkerStats& s = wk.st;
    steps += s.steps;
    stats_.and_calls += s.and_calls;
    stats_.ite_calls += s.ite_calls;
    stats_.ite_norms += s.ite_norms;
    stats_.cache_lookups += s.cache_lookups;
    stats_.cache_hits += s.cache_hits;
    stats_.cache_inserts += s.cache_inserts;
    stats_.unique_hits += s.unique_hits;
    stats_.unique_misses += s.unique_misses;
    stats_.par_tasks += s.tasks_spawned;
    stats_.par_steals += s.steals;
    stats_.par_cache_drops += s.cache_drops;
    stats_.par_cas_retries += s.cas_retries;
    wk.st = par::WorkerStats{};
  }
  steps_ += steps;
  ++stats_.par_ops;
  stats_.live_nodes = live_node_count();
  stats_.peak_nodes = std::max(stats_.peak_nodes, stats_.live_nodes);

  const int abort = ps.abort_kind.load(std::memory_order_relaxed);
  if (abort != 0) {
    // The manager is consistent (every allocated slot is either a canonical
    // node or back on the free list); report the abort like the serial core.
    if (abort == 1) throw_step_abort();
    if (abort == 2) throw BddAbortError("BDD operation aborted: deadline exceeded");
    throw_node_abort();
  }
  // Workers only evaluate the limits every ~1k steps, so a region smaller
  // than that ends without ever looking at them. Re-check here with the
  // merged step count: abort granularity is then one region, matching the
  // serial kernel's per-call check closely enough for the batch engine.
  if (step_budget_ != 0 && steps_ > step_budget_) throw_step_abort();
  if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_) {
    throw BddAbortError("BDD operation aborted: deadline exceeded");
  }
  return result;
}

void BddManager::run_stolen_task(void* task, WorkerCtx& wk) {
  Task& t = *static_cast<Task*>(task);
  const NodeId r = t.kind == 0 ? mt_and(t.f, t.g, t.depth, wk)
                               : mt_ite(t.f, t.g, t.h, t.depth, wk);
  t.result.store(r, std::memory_order_relaxed);
  t.done.store(true, std::memory_order_release);
}

// ---------------------------------------------------------------------------
// Step accounting / abort propagation
// ---------------------------------------------------------------------------

void BddManager::mt_check_step(WorkerCtx& wk) {
  ++wk.st.steps;
  if (++wk.steps_since_poll < 1024) return;
  wk.steps_since_poll = 0;
  ParallelState& ps = *wk.ps;
  const std::uint64_t total =
      ps.shared_steps.fetch_add(1024, std::memory_order_relaxed) + 1024 + steps_;
  int expect = 0;
  if (step_budget_ != 0 && total > step_budget_) {
    ps.abort_kind.compare_exchange_strong(expect, 1, std::memory_order_relaxed);
  } else if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_) {
    ps.abort_kind.compare_exchange_strong(expect, 2, std::memory_order_relaxed);
  }
  ps.checkpoint(wk);
}

// ---------------------------------------------------------------------------
// Concurrent node construction
// ---------------------------------------------------------------------------

std::uint32_t BddManager::mt_alloc_slot(WorkerCtx& wk) {
  if (!wk.spare_slots.empty()) {
    const std::uint32_t s = wk.spare_slots.back();
    wk.spare_slots.pop_back();
    return s;
  }
  ParallelState& ps = *wk.ps;
  for (;;) {
    std::uint32_t cur = ps.alloc_next.load(std::memory_order_relaxed);
    if (node_budget_ != 0 &&
        stats_.live_nodes + (cur - ps.alloc_base) >= node_budget_) {
      int expect = 0;
      ps.abort_kind.compare_exchange_strong(expect, 3, std::memory_order_relaxed);
      return kInvalidId;
    }
    if (cur < ps.alloc_cap.load(std::memory_order_acquire)) {
      // CAS (not fetch_add) so a loser retries instead of claiming an index
      // past the capacity check — the arena never gets overshoot holes.
      if (ps.alloc_next.compare_exchange_weak(cur, cur + 1,
                                              std::memory_order_relaxed)) {
        return cur;
      }
      ++wk.st.cas_retries;
      continue;
    }
    // Arena exhausted: stop the world and grow the node store. The waiter
    // count makes every worker (including us, at checkpoints) release its
    // shared table lock so the exclusive acquisition drains quickly.
    ps.pause_waiters.fetch_add(1, std::memory_order_acq_rel);
    wk.region_lock->unlock();
    {
      std::unique_lock<std::shared_mutex> grow(ps.table_mu);
      if (ps.alloc_next.load(std::memory_order_relaxed) >=
          ps.alloc_cap.load(std::memory_order_relaxed)) {
        try {
          const std::size_t add =
              std::max<std::size_t>(nodes_.size() / 2, 1u << 13);
          nodes_.resize(nodes_.size() + add);
          ps.alloc_cap.store(static_cast<std::uint32_t>(nodes_.size()),
                             std::memory_order_release);
        } catch (const std::bad_alloc&) {
          int expect = 0;
          ps.abort_kind.compare_exchange_strong(expect, 3,
                                                std::memory_order_relaxed);
        }
      }
    }
    ps.pause_waiters.fetch_sub(1, std::memory_order_acq_rel);
    wk.region_lock->lock();
    if (ps.abort_kind.load(std::memory_order_relaxed) != 0) return kInvalidId;
  }
}

NodeId BddManager::mt_make_node(unsigned var, NodeId lo, NodeId hi, WorkerCtx& wk) {
  if (lo == hi) return lo;  // reduction rule
  const NodeId out_c = edge_complement_bit(hi);
  lo ^= out_c;
  hi ^= out_c;
  assert(var < num_vars_);
  assert(level_of(lo) > var && level_of(hi) > var);
  ParallelState& ps = *wk.ps;
  VarTable& table = subtables_[var];
  // Bucket geometry is frozen for the region (growth is deferred to
  // teardown), so the mask is a plain read.
  const std::size_t b = unique_hash(lo, hi) & (table.buckets.size() - 1);
  std::atomic_ref<std::uint32_t> head(table.buckets[b]);

  // Optimistic lock-free probe: chains only ever grow at the head during a
  // region, and the release store below publishes the node fields before the
  // index becomes reachable.
  for (std::uint32_t idx = head.load(std::memory_order_acquire);
       idx != kInvalidId; idx = nodes_[idx].next) {
    const Node& n = nodes_[idx];
    if (n.lo == lo && n.hi == hi) {
      ++wk.st.unique_hits;
      return make_edge(idx, out_c);
    }
  }

  // Claim a slot *before* taking the stripe: the allocation may enter the
  // growth safepoint, which must never run while holding a stripe mutex.
  const std::uint32_t slot = mt_alloc_slot(wk);
  if (slot == kInvalidId) return kInvalidId;  // abort propagating

  std::mutex& stripe =
      ps.stripes[(b ^ (static_cast<std::size_t>(var) * 0x9e3779b9u)) &
                 (ParallelState::kStripes - 1)];
  {
    std::lock_guard<std::mutex> lk(stripe);
    // Re-probe under the stripe: a racing thread may have inserted the same
    // triple between our optimistic probe and this lock.
    const std::uint32_t h0 = head.load(std::memory_order_acquire);
    for (std::uint32_t idx = h0; idx != kInvalidId; idx = nodes_[idx].next) {
      const Node& n = nodes_[idx];
      if (n.lo == lo && n.hi == hi) {
        wk.spare_slots.push_back(slot);  // recycled at teardown
        ++wk.st.unique_hits;
        return make_edge(idx, out_c);
      }
    }
    ++wk.st.unique_misses;
    Node& n = nodes_[slot];
    n.var = var;
    n.lo = lo;
    n.hi = hi;
    n.refs = 0;
    n.next = h0;
    head.store(slot, std::memory_order_release);  // publish
  }
  return make_edge(slot, out_c);
}

// ---------------------------------------------------------------------------
// Fork-join recursion
// ---------------------------------------------------------------------------

namespace {
// Join a spawned sibling: run it inline if it was not stolen, otherwise help
// (execute other tasks) until the thief publishes. Never returns with the
// task outstanding.
NodeId join_task(ParallelState& ps, WorkerCtx& wk, Task& t) {
  if (ps.pop_if_back(wk.index, &t)) {
    // Not stolen: plain recursion, the common case.
    ps.run(&t, wk);
    return t.result.load(std::memory_order_relaxed);
  }
  while (!t.done.load(std::memory_order_acquire)) {
    bool stolen = false;
    Task* other = ps.grab(wk.index, stolen);
    if (other != nullptr) {
      if (stolen) ++wk.st.steals;
      ps.run(other, wk);
    } else {
      ps.checkpoint(wk);
      std::this_thread::yield();
    }
  }
  return t.result.load(std::memory_order_relaxed);
}
}  // namespace

NodeId BddManager::mt_and(NodeId f, NodeId g, unsigned depth, WorkerCtx& wk) {
  mt_check_step(wk);
  ParallelState& ps = *wk.ps;
  if (ps.abort_kind.load(std::memory_order_relaxed) != 0) return kInvalidId;
  ++wk.st.and_calls;
  // Terminal rules — identical to and_rec.
  if (f == kFalseId || g == kFalseId || f == edge_not(g)) return kFalseId;
  if (f == kTrueId) return g;
  if (g == kTrueId || f == g) return f;
  if (edge_before(g, f)) std::swap(f, g);

  ++wk.st.cache_lookups;
  const NodeId cached = ps.cache.lookup(kOpAnd, f, g, 0);
  if (cached != par::ConcurrentCache::kInvalid) {
    ++wk.st.cache_hits;
    return cached;
  }

  const unsigned vf = level_of(f), vg = level_of(g);
  const unsigned v = std::min(vf, vg);
  const NodeId f0 = vf == v ? lo_of(f) : f;
  const NodeId f1 = vf == v ? hi_of(f) : f;
  const NodeId g0 = vg == v ? lo_of(g) : g;
  const NodeId g1 = vg == v ? hi_of(g) : g;

  NodeId r0, r1;
  if (depth < kSpawnDepth) {
    Task t;
    t.kind = 0;
    t.f = f1;
    t.g = g1;
    t.depth = depth + 1;
    ps.push(wk.index, &t);
    ++wk.st.tasks_spawned;
    r0 = mt_and(f0, g0, depth + 1, wk);
    r1 = join_task(ps, wk, t);
  } else {
    r0 = mt_and(f0, g0, depth + 1, wk);
    r1 = mt_and(f1, g1, depth + 1, wk);
  }
  if (r0 == kInvalidId || r1 == kInvalidId) return kInvalidId;

  const NodeId r = mt_make_node(v, r0, r1, wk);
  if (r == kInvalidId) return kInvalidId;
  ++wk.st.cache_inserts;
  if (!ps.cache.insert(kOpAnd, f, g, 0, r)) ++wk.st.cache_drops;
  return r;
}

NodeId BddManager::mt_ite(NodeId f, NodeId g, NodeId h, unsigned depth, WorkerCtx& wk) {
  mt_check_step(wk);
  ParallelState& ps = *wk.ps;
  if (ps.abort_kind.load(std::memory_order_relaxed) != 0) return kInvalidId;
  ++wk.st.ite_calls;
  // Terminal rules — identical to ite_rec.
  if (f == kTrueId) return g;
  if (f == kFalseId) return h;
  if (g == h) return g;
  if (g == kTrueId && h == kFalseId) return f;
  if (g == kFalseId && h == kTrueId) return edge_not(f);
  if (f == g) {
    g = kTrueId;
  } else if (f == edge_not(g)) {
    g = kFalseId;
  }
  if (f == h) {
    h = kFalseId;
  } else if (f == edge_not(h)) {
    h = kTrueId;
  }
  if (g == h) return g;
  if (g == kTrueId && h == kFalseId) return f;
  if (g == kFalseId && h == kTrueId) return edge_not(f);

  // Binary shapes divert to the AND core, as in ite_rec.
  if (h == kFalseId) return mt_and(f, g, depth, wk);
  if (g == kTrueId) {
    const NodeId r = mt_and(edge_not(f), edge_not(h), depth, wk);
    return r == kInvalidId ? kInvalidId : edge_not(r);
  }
  if (g == kFalseId) return mt_and(edge_not(f), h, depth, wk);
  if (h == kTrueId) {
    const NodeId r = mt_and(f, edge_not(g), depth, wk);
    return r == kInvalidId ? kInvalidId : edge_not(r);
  }

  if (g == edge_not(h) && edge_before(g, f)) {  // XOR standard triple
    ++wk.st.ite_norms;
    const NodeId t = g;
    g = f;
    h = edge_not(f);
    f = t;
  }
  if (edge_complemented(f)) {
    ++wk.st.ite_norms;
    f = edge_not(f);
    std::swap(g, h);
  }
  NodeId out_c = 0;
  if (edge_complemented(g)) {
    ++wk.st.ite_norms;
    out_c = 1;
    g = edge_not(g);
    h = edge_not(h);
  }

  ++wk.st.cache_lookups;
  const NodeId cached = ps.cache.lookup(kOpIte, f, g, h);
  if (cached != par::ConcurrentCache::kInvalid) {
    ++wk.st.cache_hits;
    return cached ^ out_c;
  }

  const unsigned vf = level_of(f), vg = level_of(g), vh = level_of(h);
  const unsigned v = std::min({vf, vg, vh});
  const NodeId f0 = vf == v ? lo_of(f) : f;
  const NodeId f1 = vf == v ? hi_of(f) : f;
  const NodeId g0 = vg == v ? lo_of(g) : g;
  const NodeId g1 = vg == v ? hi_of(g) : g;
  const NodeId h0 = vh == v ? lo_of(h) : h;
  const NodeId h1 = vh == v ? hi_of(h) : h;

  NodeId r0, r1;
  if (depth < kSpawnDepth) {
    Task t;
    t.kind = 1;
    t.f = f1;
    t.g = g1;
    t.h = h1;
    t.depth = depth + 1;
    ps.push(wk.index, &t);
    ++wk.st.tasks_spawned;
    r0 = mt_ite(f0, g0, h0, depth + 1, wk);
    r1 = join_task(ps, wk, t);
  } else {
    r0 = mt_ite(f0, g0, h0, depth + 1, wk);
    r1 = mt_ite(f1, g1, h1, depth + 1, wk);
  }
  if (r0 == kInvalidId || r1 == kInvalidId) return kInvalidId;

  const NodeId r = mt_make_node(v, r0, r1, wk);
  if (r == kInvalidId) return kInvalidId;
  ++wk.st.cache_inserts;
  if (!ps.cache.insert(kOpIte, f, g, h, r)) ++wk.st.cache_drops;
  return r ^ out_c;
}

}  // namespace bidec
