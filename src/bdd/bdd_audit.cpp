// BddManager::audit(): read-only structural self-check of the node store,
// unique table, free list and computed cache, plus the out-of-line throw of
// the cross-manager ownership guard. Findings carry the BM2xx rule ids from
// lint/diagnostics.h; an empty result means every invariant holds. The audit
// never throws and never mutates, so it is safe to call mid-flow, from tests
// in Release builds (where the internal asserts compile away), and from the
// batch engine's post-job gate.
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "bdd/bdd.h"

namespace bidec {

namespace {

// Rule ids, mirrored from lint/diagnostics.h (the bdd library sits below
// the lint library and must not depend on it).
constexpr const char* kDuplicateTriple = "BM201";
constexpr const char* kRedundantNode = "BM202";
constexpr const char* kLevelOrder = "BM203";
constexpr const char* kVarRange = "BM204";
constexpr const char* kChainMiss = "BM205";
constexpr const char* kFreeList = "BM206";
constexpr const char* kStatsDrift = "BM207";
constexpr const char* kCacheDead = "BM208";
constexpr const char* kCacheTag = "BM209";
constexpr const char* kTerminal = "BM210";

std::string node_name(NodeId id) { return "node " + std::to_string(id); }

}  // namespace

void BddManager::throw_ownership(const Bdd& f, const char* op) const {
  if (f.manager() == nullptr) {
    throw BddOwnershipError(std::string("BddManager::") + op +
                            ": invalid (default-constructed) handle");
  }
  throw BddOwnershipError(std::string("BddManager::") + op +
                          ": handle belongs to a different BddManager (node " +
                          std::to_string(f.id()) +
                          " of a foreign manager passed into this one)");
}

std::vector<BddAuditFinding> BddManager::audit() const {
  std::vector<BddAuditFinding> out;
  const auto add = [&out](const char* rule, std::string object, std::string message) {
    out.push_back(BddAuditFinding{rule, std::move(object), std::move(message)});
  };
  const std::size_t n = nodes_.size();

  // --- terminal invariants -------------------------------------------------
  for (const NodeId t : {kFalseId, kTrueId}) {
    const Node& node = nodes_[t];
    if (node.var != num_vars_) {
      add(kTerminal, node_name(t),
          "terminal level is " + std::to_string(node.var) + ", expected " +
              std::to_string(num_vars_));
    }
    if (node.refs == 0) {
      add(kTerminal, node_name(t), "terminal lost its permanent reference");
    }
  }

  // --- free list vs. tombstones -------------------------------------------
  std::vector<bool> on_free_list(n, false);
  {
    std::size_t walked = 0;
    NodeId id = free_list_;
    while (id != kInvalidId && walked <= n) {
      if (id >= n) {
        add(kFreeList, node_name(id), "free-list pointer out of range");
        break;
      }
      if (on_free_list[id]) {
        add(kFreeList, node_name(id), "free list is cyclic");
        break;
      }
      on_free_list[id] = true;
      ++walked;
      if (nodes_[id].var != kInvalidId) {
        add(kFreeList, node_name(id), "free-list slot is not tombstoned");
      }
      if (nodes_[id].refs != 0) {
        add(kFreeList, node_name(id),
            "free-list slot still carries " + std::to_string(nodes_[id].refs) +
                " external reference(s)");
      }
      id = nodes_[id].lo;  // lo doubles as the next-free pointer
    }
    if (walked != free_count_) {
      add(kFreeList, "free list",
          "free list holds " + std::to_string(walked) + " slots but free_count is " +
              std::to_string(free_count_));
    }
    for (NodeId i = 2; i < n; ++i) {
      if (nodes_[i].var == kInvalidId && !on_free_list[i]) {
        add(kFreeList, node_name(i), "tombstoned slot is not on the free list");
      }
    }
  }

  // --- per-node canonicity -------------------------------------------------
  std::map<std::tuple<unsigned, NodeId, NodeId>, NodeId> triples;
  const std::size_t mask = unique_table_.size() - 1;
  for (NodeId id = 2; id < n; ++id) {
    const Node& node = nodes_[id];
    if (node.var == kInvalidId) continue;  // free slot
    if (node.var >= num_vars_) {
      add(kVarRange, node_name(id),
          "variable " + std::to_string(node.var) + " out of range (num_vars " +
              std::to_string(num_vars_) + ")");
      continue;
    }
    bool children_ok = true;
    for (const NodeId child : {node.lo, node.hi}) {
      if (child >= n) {
        add(kVarRange, node_name(id),
            "child " + std::to_string(child) + " out of range");
        children_ok = false;
      } else if (child >= 2 && nodes_[child].var == kInvalidId) {
        add(kVarRange, node_name(id),
            "child " + std::to_string(child) + " is a freed slot");
        children_ok = false;
      }
    }
    if (!children_ok) continue;
    if (node.lo == node.hi) {
      add(kRedundantNode, node_name(id),
          "both branches reach node " + std::to_string(node.lo) +
              "; the reduction rule should have removed this node");
    }
    if (level_of(node.lo) <= node.var || level_of(node.hi) <= node.var) {
      add(kLevelOrder, node_name(id),
          "child level not strictly below the node's level " +
              std::to_string(node.var) + " (lo level " +
              std::to_string(level_of(node.lo)) + ", hi level " +
              std::to_string(level_of(node.hi)) + ")");
    }
    const auto [it, inserted] =
        triples.emplace(std::make_tuple(node.var, node.lo, node.hi), id);
    if (!inserted) {
      add(kDuplicateTriple, node_name(id),
          "same (var, lo, hi) triple as node " + std::to_string(it->second) +
              "; the unique table no longer canonicalizes");
    }
    // The node must be discoverable through its own hash bucket, or every
    // future make_node of this triple silently duplicates it.
    bool found = false;
    std::size_t chain_len = 0;
    for (NodeId c = unique_table_[unique_hash(node.var, node.lo, node.hi) & mask];
         c != kInvalidId && chain_len <= n; c = nodes_[c].next, ++chain_len) {
      if (c == id) {
        found = true;
        break;
      }
      if (c >= n) break;
    }
    if (!found) {
      add(kChainMiss, node_name(id),
          "live node is absent from its unique-table bucket chain");
    }
  }

  // --- statistics ----------------------------------------------------------
  if (stats_.live_nodes != n - free_count_) {
    add(kStatsDrift, "stats",
        "live_nodes counter says " + std::to_string(stats_.live_nodes) +
            " but the store holds " + std::to_string(n - free_count_));
  }

  // --- computed cache ------------------------------------------------------
  for (std::size_t slot = 0; slot < cache_.size(); ++slot) {
    const CacheEntry& e = cache_[slot];
    if (e.tag == 0) continue;  // empty
    const std::uint32_t op = e.tag & 0xffu;
    if (op < kOpIte || op > kOpRestrict) {
      add(kCacheTag, "cache " + std::to_string(slot),
          "unknown operation tag " + std::to_string(e.tag));
      continue;
    }
    if (op != kOpCompose && (e.tag >> 8) != 0) {
      add(kCacheTag, "cache " + std::to_string(slot),
          "tag " + std::to_string(e.tag) + " carries payload bits but is not compose");
    }
    for (const NodeId ref : {e.a, e.b, e.c, e.result}) {
      if (ref >= n) {
        add(kCacheDead, "cache " + std::to_string(slot),
            "entry references out-of-range node " + std::to_string(ref));
      } else if (ref >= 2 && nodes_[ref].var == kInvalidId) {
        add(kCacheDead, "cache " + std::to_string(slot),
            "entry references freed node " + std::to_string(ref) +
                "; the cache must be cleared when nodes die");
      }
    }
  }

  return out;
}

}  // namespace bidec
