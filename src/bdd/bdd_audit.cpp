// BddManager::audit(): read-only structural self-check of the node store,
// per-variable unique subtables, free list, complement-edge canonicity and
// the computed cache, plus the out-of-line throw of the cross-manager
// ownership guard. Findings carry the BM2xx rule ids from
// lint/diagnostics.h; an empty result means every invariant holds. The audit
// never throws and never mutates, so it is safe to call mid-flow, from tests
// in Release builds (where the internal asserts compile away), and from the
// batch engine's post-job gate.
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "bdd/bdd.h"

namespace bidec {

namespace {

// Rule ids, mirrored from lint/diagnostics.h (the bdd library sits below
// the lint library and must not depend on it).
constexpr const char* kDuplicateTriple = "BM201";
constexpr const char* kRedundantNode = "BM202";
constexpr const char* kLevelOrder = "BM203";
constexpr const char* kVarRange = "BM204";
constexpr const char* kChainMiss = "BM205";
constexpr const char* kFreeList = "BM206";
constexpr const char* kStatsDrift = "BM207";
constexpr const char* kCacheDead = "BM208";
constexpr const char* kCacheTag = "BM209";
constexpr const char* kTerminal = "BM210";
constexpr const char* kComplementHigh = "BM211";
constexpr const char* kTaggedTerminal = "BM212";
constexpr const char* kSubtableDrift = "BM213";

std::string node_name(std::uint32_t idx) { return "node " + std::to_string(idx); }

}  // namespace

void BddManager::throw_ownership(const Bdd& f, const char* op) const {
  if (f.manager() == nullptr) {
    throw BddOwnershipError(std::string("BddManager::") + op +
                            ": invalid (default-constructed) handle");
  }
  throw BddOwnershipError(std::string("BddManager::") + op +
                          ": handle belongs to a different BddManager (node " +
                          std::to_string(f.id()) +
                          " of a foreign manager passed into this one)");
}

std::vector<BddAuditFinding> BddManager::audit() const {
  std::vector<BddAuditFinding> out;
  const auto add = [&out](const char* rule, std::string object, std::string message) {
    out.push_back(BddAuditFinding{rule, std::move(object), std::move(message)});
  };
  const std::size_t n = nodes_.size();

  // --- terminal invariants -------------------------------------------------
  // A single terminal node lives at index 0; edges 0/1 are its two
  // polarities.
  {
    const Node& t = nodes_[0];
    if (t.var != num_vars_) {
      add(kTerminal, node_name(0),
          "terminal level is " + std::to_string(t.var) + ", expected " +
              std::to_string(num_vars_));
    }
    if (t.refs == 0) {
      add(kTerminal, node_name(0), "terminal lost its permanent reference");
    }
    // Tagged-terminal rule: the terminal's self-edges must be the regular
    // false edge; a complement tag (or a pointer elsewhere) here would make
    // constant folds like `e <= kTrueId` silently wrong.
    if (t.lo != kFalseId || t.hi != kFalseId) {
      add(kTaggedTerminal, node_name(0),
          "terminal self-edges must be the regular false edge (lo " +
              std::to_string(t.lo) + ", hi " + std::to_string(t.hi) + ")");
    }
  }

  // --- free list vs. tombstones -------------------------------------------
  std::vector<bool> on_free_list(n, false);
  {
    std::size_t walked = 0;
    std::uint32_t idx = free_list_;
    while (idx != kInvalidId && walked <= n) {
      if (idx >= n) {
        add(kFreeList, node_name(idx), "free-list pointer out of range");
        break;
      }
      if (on_free_list[idx]) {
        add(kFreeList, node_name(idx), "free list is cyclic");
        break;
      }
      on_free_list[idx] = true;
      ++walked;
      if (nodes_[idx].var != kInvalidId) {
        add(kFreeList, node_name(idx), "free-list slot is not tombstoned");
      }
      if (nodes_[idx].refs != 0) {
        add(kFreeList, node_name(idx),
            "free-list slot still carries " + std::to_string(nodes_[idx].refs) +
                " external reference(s)");
      }
      idx = nodes_[idx].lo;  // lo doubles as the next-free index
    }
    if (walked != free_count_) {
      add(kFreeList, "free list",
          "free list holds " + std::to_string(walked) + " slots but free_count is " +
              std::to_string(free_count_));
    }
    for (std::uint32_t i = 1; i < n; ++i) {
      if (nodes_[i].var == kInvalidId && !on_free_list[i]) {
        add(kFreeList, node_name(i), "tombstoned slot is not on the free list");
      }
    }
  }

  // --- per-node canonicity -------------------------------------------------
  std::map<std::tuple<unsigned, NodeId, NodeId>, std::uint32_t> triples;
  std::vector<std::size_t> level_counts(num_vars_, 0);
  for (std::uint32_t idx = 1; idx < n; ++idx) {
    const Node& node = nodes_[idx];
    if (node.var == kInvalidId) continue;  // free slot
    if (node.var == num_vars_) {
      // Only index 0 may carry the terminal level: a stray second terminal
      // breaks canonicity (two spellings of a constant).
      add(kTaggedTerminal, node_name(idx),
          "non-root node carries the terminal level " + std::to_string(num_vars_));
      continue;
    }
    if (node.var > num_vars_) {
      add(kVarRange, node_name(idx),
          "variable " + std::to_string(node.var) + " out of range (num_vars " +
              std::to_string(num_vars_) + ")");
      continue;
    }
    ++level_counts[node.var];
    bool children_ok = true;
    for (const NodeId child : {node.lo, node.hi}) {
      const std::uint32_t child_idx = edge_index(child);
      if (child_idx >= n) {
        add(kVarRange, node_name(idx),
            "child edge " + std::to_string(child) + " out of range");
        children_ok = false;
      } else if (child_idx != 0 && nodes_[child_idx].var == kInvalidId) {
        add(kVarRange, node_name(idx),
            "child edge " + std::to_string(child) + " targets a freed slot");
        children_ok = false;
      }
    }
    if (!children_ok) continue;
    if (edge_complemented(node.hi)) {
      // Complement-edge canonicity: the stored high edge is regular;
      // make_node pushes a complemented high into the parent edge. A tagged
      // high edge here means two spellings of the same function can coexist.
      add(kComplementHigh, node_name(idx),
          "stored high edge " + std::to_string(node.hi) +
              " is complemented; canonical form requires a regular high edge");
    }
    if (node.lo == node.hi) {
      add(kRedundantNode, node_name(idx),
          "both branches are edge " + std::to_string(node.lo) +
              "; the reduction rule should have removed this node");
    }
    if (level_of(node.lo) <= node.var || level_of(node.hi) <= node.var) {
      add(kLevelOrder, node_name(idx),
          "child level not strictly below the node's level " +
              std::to_string(node.var) + " (lo level " +
              std::to_string(level_of(node.lo)) + ", hi level " +
              std::to_string(level_of(node.hi)) + ")");
    }
    const auto [it, inserted] =
        triples.emplace(std::make_tuple(node.var, node.lo, node.hi), idx);
    if (!inserted) {
      add(kDuplicateTriple, node_name(idx),
          "same (var, lo, hi) triple as node " + std::to_string(it->second) +
              "; the unique table no longer canonicalizes");
    }
    // The node must be discoverable through its own subtable bucket, or
    // every future make_node of this triple silently duplicates it.
    const VarTable& table = subtables_[node.var];
    bool found = false;
    std::size_t chain_len = 0;
    for (std::uint32_t c = table.buckets[unique_hash(node.lo, node.hi) &
                                        (table.buckets.size() - 1)];
         c != kInvalidId && chain_len <= n; c = nodes_[c].next, ++chain_len) {
      if (c == idx) {
        found = true;
        break;
      }
      if (c >= n) break;
    }
    if (!found) {
      add(kChainMiss, node_name(idx),
          "live node is absent from its level-" + std::to_string(node.var) +
              " subtable bucket chain");
    }
  }

  // --- per-level subtable counters ----------------------------------------
  for (unsigned v = 0; v < num_vars_; ++v) {
    if (subtables_[v].count != level_counts[v]) {
      add(kSubtableDrift, "subtable " + std::to_string(v),
          "level counter says " + std::to_string(subtables_[v].count) +
              " node(s) but the store holds " + std::to_string(level_counts[v]));
    }
  }

  // --- statistics ----------------------------------------------------------
  if (stats_.live_nodes != n - free_count_) {
    add(kStatsDrift, "stats",
        "live_nodes counter says " + std::to_string(stats_.live_nodes) +
            " but the store holds " + std::to_string(n - free_count_));
  }

  // --- computed cache ------------------------------------------------------
  for (std::size_t slot = 0; slot < cache_.size(); ++slot) {
    const CacheEntry& e = cache_[slot];
    if (e.tag == 0) continue;  // empty
    const std::uint32_t op = e.tag & 0xffu;
    if (op < kOpIte || op > kOpLast) {
      add(kCacheTag, "cache " + std::to_string(slot),
          "unknown operation tag " + std::to_string(e.tag));
      continue;
    }
    if (op != kOpCompose && (e.tag >> 8) != 0) {
      add(kCacheTag, "cache " + std::to_string(slot),
          "tag " + std::to_string(e.tag) + " carries payload bits but is not compose");
    }
    for (const NodeId ref : {e.a, e.b, e.c, e.result}) {
      const std::uint32_t ref_idx = edge_index(ref);
      if (ref_idx >= n) {
        add(kCacheDead, "cache " + std::to_string(slot),
            "entry references out-of-range edge " + std::to_string(ref));
      } else if (ref_idx != 0 && nodes_[ref_idx].var == kInvalidId) {
        add(kCacheDead, "cache " + std::to_string(slot),
            "entry references freed node " + std::to_string(ref_idx) +
                "; GC must sweep entries whose operands die");
      }
    }
  }

  return out;
}

}  // namespace bidec
