// Core of the ROBDD package: node storage, unique table, computed table,
// garbage collection, ITE and the Boolean connectives derived from it.
#include "bdd/bdd.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace bidec {

namespace {

// 64-bit mix (splitmix64 finalizer) used for both hash tables.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::size_t round_up_pow2(std::size_t n) noexcept {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

// ---------------------------------------------------------------------------
// Bdd handle
// ---------------------------------------------------------------------------

Bdd::Bdd(BddManager* mgr, NodeId id) noexcept : mgr_(mgr), id_(id) {
  if (mgr_ != nullptr) mgr_->inc_ref(id_);
}

Bdd::Bdd(const Bdd& other) noexcept : mgr_(other.mgr_), id_(other.id_) {
  if (mgr_ != nullptr) mgr_->inc_ref(id_);
}

Bdd::Bdd(Bdd&& other) noexcept : mgr_(other.mgr_), id_(other.id_) {
  other.mgr_ = nullptr;
  other.id_ = kFalseId;
}

Bdd& Bdd::operator=(const Bdd& other) noexcept {
  if (this == &other) return *this;
  if (other.mgr_ != nullptr) other.mgr_->inc_ref(other.id_);
  if (mgr_ != nullptr) mgr_->dec_ref(id_);
  mgr_ = other.mgr_;
  id_ = other.id_;
  return *this;
}

Bdd& Bdd::operator=(Bdd&& other) noexcept {
  if (this == &other) return *this;
  if (mgr_ != nullptr) mgr_->dec_ref(id_);
  mgr_ = other.mgr_;
  id_ = other.id_;
  other.mgr_ = nullptr;
  other.id_ = kFalseId;
  return *this;
}

Bdd::~Bdd() {
  if (mgr_ != nullptr) mgr_->dec_ref(id_);
}

unsigned Bdd::top_var() const { return mgr_->top_var(*this); }
Bdd Bdd::low() const { return mgr_->low(*this); }
Bdd Bdd::high() const { return mgr_->high(*this); }

Bdd Bdd::operator&(const Bdd& g) const { return mgr_->apply_and(*this, g); }
Bdd Bdd::operator|(const Bdd& g) const { return mgr_->apply_or(*this, g); }
Bdd Bdd::operator^(const Bdd& g) const { return mgr_->apply_xor(*this, g); }
Bdd Bdd::operator~() const { return mgr_->apply_not(*this); }
Bdd Bdd::operator-(const Bdd& g) const { return mgr_->apply_sharp(*this, g); }

bool Bdd::implies(const Bdd& g) const { return (*this - g).is_false(); }
bool Bdd::disjoint_with(const Bdd& g) const { return (*this & g).is_false(); }
std::size_t Bdd::dag_size() const { return mgr_->dag_size(*this); }

// ---------------------------------------------------------------------------
// Manager: construction, reference counting, garbage collection
// ---------------------------------------------------------------------------

BddManager::BddManager(unsigned num_vars, std::size_t initial_capacity)
    : num_vars_(num_vars), gc_threshold_(std::max<std::size_t>(initial_capacity, 1u << 12)) {
  nodes_.reserve(initial_capacity);
  // Terminals live at ids 0 (false) and 1 (true); var == num_vars marks them
  // as below every real level. They are permanently referenced.
  nodes_.push_back(Node{num_vars_, kFalseId, kFalseId, kInvalidId, 1});
  nodes_.push_back(Node{num_vars_, kTrueId, kTrueId, kInvalidId, 1});
  unique_table_.assign(round_up_pow2(initial_capacity), kInvalidId);
  cache_.assign(round_up_pow2(initial_capacity), CacheEntry{});
  stats_.live_nodes = 2;
  stats_.peak_nodes = 2;
}

BddManager::~BddManager() = default;

void BddManager::inc_ref(NodeId id) noexcept { ++nodes_[id].refs; }

void BddManager::dec_ref(NodeId id) noexcept {
  assert(nodes_[id].refs > 0);
  --nodes_[id].refs;
}

std::size_t BddManager::live_node_count() const noexcept {
  return nodes_.size() - free_count_;
}

void BddManager::reset_stats() noexcept {
  stats_ = BddStats{};
  stats_.live_nodes = live_node_count();
  stats_.peak_nodes = stats_.live_nodes;
  steps_ = 0;
}

// ---------------------------------------------------------------------------
// Cooperative abort
// ---------------------------------------------------------------------------

void BddManager::set_step_budget(std::uint64_t max_steps) noexcept {
  step_budget_ = max_steps == 0 ? 0 : steps_ + max_steps;
}

void BddManager::set_deadline(std::chrono::steady_clock::time_point deadline) noexcept {
  has_deadline_ = true;
  deadline_ = deadline;
}

void BddManager::clear_abort() noexcept {
  step_budget_ = 0;
  has_deadline_ = false;
}

void BddManager::adopt_abort_limits(const BddManager& src) noexcept {
  if (src.step_budget_ != 0) {
    const std::uint64_t remaining =
        src.step_budget_ > src.steps_ ? src.step_budget_ - src.steps_ : 1;
    step_budget_ = steps_ + remaining;
  }
  has_deadline_ = src.has_deadline_;
  deadline_ = src.deadline_;
}

void BddManager::throw_step_abort() const {
  throw BddAbortError("BDD operation aborted: step budget exceeded");
}

void BddManager::check_deadline() const {
  if (std::chrono::steady_clock::now() >= deadline_) {
    throw BddAbortError("BDD operation aborted: deadline exceeded");
  }
}

void BddManager::collect_garbage() {
  // Mark every node reachable from an externally referenced root.
  std::vector<bool> marked(nodes_.size(), false);
  marked[kFalseId] = marked[kTrueId] = true;
  std::vector<NodeId> stack;
  for (NodeId id = 2; id < nodes_.size(); ++id) {
    if (nodes_[id].refs > 0 && nodes_[id].var != kInvalidId) stack.push_back(id);
  }
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    if (marked[id]) continue;
    marked[id] = true;
    if (!marked[nodes_[id].lo]) stack.push_back(nodes_[id].lo);
    if (!marked[nodes_[id].hi]) stack.push_back(nodes_[id].hi);
  }

  // Sweep: rebuild the free list and the unique table from survivors.
  std::fill(unique_table_.begin(), unique_table_.end(), kInvalidId);
  free_list_ = kInvalidId;
  free_count_ = 0;
  const std::size_t mask = unique_table_.size() - 1;
  for (NodeId id = 2; id < nodes_.size(); ++id) {
    Node& n = nodes_[id];
    if (!marked[id]) {
      n.var = kInvalidId;  // tombstone: slot is free
      n.lo = free_list_;
      free_list_ = id;
      ++free_count_;
      continue;
    }
    if (n.var == kInvalidId) continue;  // already free before this GC
    const std::size_t h = unique_hash(n.var, n.lo, n.hi) & mask;
    n.next = unique_table_[h];
    unique_table_[h] = id;
  }
  // Cached results may reference dead nodes: drop everything.
  std::fill(cache_.begin(), cache_.end(), CacheEntry{});
  stats_.live_nodes = nodes_.size() - free_count_;
  ++stats_.gc_runs;
}

void BddManager::maybe_gc() {
  if (in_operation_ || live_node_count() < gc_threshold_) return;
  const std::size_t before = live_node_count();
  collect_garbage();
  // If the collection freed less than a quarter, grow the threshold so we
  // do not thrash.
  if (live_node_count() > before - before / 4) gc_threshold_ *= 2;
}

// ---------------------------------------------------------------------------
// Unique table / node construction
// ---------------------------------------------------------------------------

std::size_t BddManager::unique_hash(unsigned var, NodeId lo, NodeId hi) const noexcept {
  return static_cast<std::size_t>(
      mix64((static_cast<std::uint64_t>(var) << 48) ^
            (static_cast<std::uint64_t>(lo) << 24) ^ hi));
}

NodeId BddManager::alloc_slot() {
  if (free_list_ != kInvalidId) {
    const NodeId id = free_list_;
    free_list_ = nodes_[id].lo;
    --free_count_;
    return id;
  }
  nodes_.push_back(Node{});
  return static_cast<NodeId>(nodes_.size() - 1);
}

void BddManager::grow_unique_table() {
  const std::size_t new_size = unique_table_.size() * 2;
  std::vector<NodeId> fresh(new_size, kInvalidId);
  const std::size_t mask = new_size - 1;
  for (NodeId id = 2; id < nodes_.size(); ++id) {
    Node& n = nodes_[id];
    if (n.var == kInvalidId) continue;
    const std::size_t h = unique_hash(n.var, n.lo, n.hi) & mask;
    n.next = fresh[h];
    fresh[h] = id;
  }
  unique_table_.swap(fresh);
}

NodeId BddManager::make_node(unsigned var, NodeId lo, NodeId hi) {
  if (lo == hi) return lo;  // reduction rule
  assert(var < num_vars_);
  assert(level_of(lo) > var && level_of(hi) > var);
  const std::size_t mask = unique_table_.size() - 1;
  const std::size_t h = unique_hash(var, lo, hi) & mask;
  for (NodeId id = unique_table_[h]; id != kInvalidId; id = nodes_[id].next) {
    const Node& n = nodes_[id];
    if (n.var == var && n.lo == lo && n.hi == hi) {
      ++stats_.unique_hits;
      return id;
    }
  }
  ++stats_.unique_misses;
  const NodeId id = alloc_slot();
  nodes_[id] = Node{var, lo, hi, unique_table_[h], 0};
  unique_table_[h] = id;
  stats_.live_nodes = live_node_count();
  stats_.peak_nodes = std::max(stats_.peak_nodes, stats_.live_nodes);
  if (stats_.live_nodes * 2 > unique_table_.size()) grow_unique_table();
  return id;
}

// ---------------------------------------------------------------------------
// Computed table
// ---------------------------------------------------------------------------

NodeId BddManager::cache_lookup(std::uint32_t tag, NodeId a, NodeId b, NodeId c) noexcept {
  ++stats_.cache_lookups;
  const std::uint64_t h =
      mix64((static_cast<std::uint64_t>(tag) << 32) ^ a) ^
      mix64((static_cast<std::uint64_t>(b) << 32) ^ c);
  const CacheEntry& e = cache_[h & (cache_.size() - 1)];
  if (e.tag == tag && e.a == a && e.b == b && e.c == c) {
    ++stats_.cache_hits;
    return e.result;
  }
  return kInvalidId;
}

void BddManager::cache_insert(std::uint32_t tag, NodeId a, NodeId b, NodeId c,
                              NodeId result) noexcept {
  const std::uint64_t h =
      mix64((static_cast<std::uint64_t>(tag) << 32) ^ a) ^
      mix64((static_cast<std::uint64_t>(b) << 32) ^ c);
  cache_[h & (cache_.size() - 1)] = CacheEntry{tag, a, b, c, result};
}

// ---------------------------------------------------------------------------
// Variables and cubes
// ---------------------------------------------------------------------------

Bdd BddManager::var(unsigned v) {
  if (v >= num_vars_) throw std::out_of_range("BddManager::var: index out of range");
  return wrap(make_node(v, kFalseId, kTrueId));
}

Bdd BddManager::nvar(unsigned v) {
  if (v >= num_vars_) throw std::out_of_range("BddManager::nvar: index out of range");
  return wrap(make_node(v, kTrueId, kFalseId));
}

Bdd BddManager::literal(unsigned v, bool positive) { return positive ? var(v) : nvar(v); }

Bdd BddManager::make_cube(std::span<const unsigned> vars) {
  std::vector<unsigned> sorted(vars.begin(), vars.end());
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  NodeId r = kTrueId;
  for (const unsigned v : sorted) {
    if (v >= num_vars_) throw std::out_of_range("BddManager::make_cube: index out of range");
    r = make_node(v, kFalseId, r);
  }
  return wrap(r);
}

Bdd BddManager::make_cube(std::initializer_list<unsigned> vars) {
  return make_cube(std::span<const unsigned>(vars.begin(), vars.size()));
}

Bdd BddManager::make_cube(const CubeLits& lits) {
  if (lits.size() > num_vars_) throw std::out_of_range("BddManager::make_cube: too many literals");
  NodeId r = kTrueId;
  for (unsigned i = static_cast<unsigned>(lits.size()); i-- > 0;) {
    if (lits[i] < 0) continue;
    r = lits[i] == 1 ? make_node(i, kFalseId, r) : make_node(i, r, kFalseId);
  }
  return wrap(r);
}

// ---------------------------------------------------------------------------
// ITE and connectives
// ---------------------------------------------------------------------------

NodeId BddManager::not_rec(NodeId f) { return ite_rec(f, kFalseId, kTrueId); }

NodeId BddManager::ite_rec(NodeId f, NodeId g, NodeId h) {
  check_step();
  // Terminal rules.
  if (f == kTrueId) return g;
  if (f == kFalseId) return h;
  if (g == h) return g;
  if (g == kTrueId && h == kFalseId) return f;
  // ite(f, f, h) == ite(f, 1, h); ite(f, g, f) == ite(f, g, 0).
  if (f == g) g = kTrueId;
  if (f == h) h = kFalseId;

  // Commutative normalizations improve cache hit rates:
  // OR:  ite(f, 1, h) == ite(h, 1, f);  AND: ite(f, g, 0) == ite(g, f, 0).
  if (g == kTrueId && h > f) std::swap(f, h);
  if (h == kFalseId && g < f) std::swap(f, g);

  const NodeId cached = cache_lookup(kOpIte, f, g, h);
  if (cached != kInvalidId) return cached;

  const unsigned vf = level_of(f), vg = level_of(g), vh = level_of(h);
  const unsigned v = std::min({vf, vg, vh});
  const NodeId f0 = vf == v ? nodes_[f].lo : f;
  const NodeId f1 = vf == v ? nodes_[f].hi : f;
  const NodeId g0 = vg == v ? nodes_[g].lo : g;
  const NodeId g1 = vg == v ? nodes_[g].hi : g;
  const NodeId h0 = vh == v ? nodes_[h].lo : h;
  const NodeId h1 = vh == v ? nodes_[h].hi : h;

  const NodeId r0 = ite_rec(f0, g0, h0);
  const NodeId r1 = ite_rec(f1, g1, h1);
  const NodeId r = make_node(v, r0, r1);
  cache_insert(kOpIte, f, g, h, r);
  return r;
}

Bdd BddManager::ite(const Bdd& f, const Bdd& g, const Bdd& h) {
  ensure_owned(f, "ite");
  ensure_owned(g, "ite");
  ensure_owned(h, "ite");
  maybe_gc();
  return wrap(ite_rec(f.id(), g.id(), h.id()));
}

Bdd BddManager::apply_and(const Bdd& f, const Bdd& g) {
  ensure_owned(f, "apply_and");
  ensure_owned(g, "apply_and");
  maybe_gc();
  return wrap(ite_rec(f.id(), g.id(), kFalseId));
}

Bdd BddManager::apply_or(const Bdd& f, const Bdd& g) {
  ensure_owned(f, "apply_or");
  ensure_owned(g, "apply_or");
  maybe_gc();
  return wrap(ite_rec(f.id(), kTrueId, g.id()));
}

Bdd BddManager::apply_xor(const Bdd& f, const Bdd& g) {
  ensure_owned(f, "apply_xor");
  ensure_owned(g, "apply_xor");
  maybe_gc();
  // xor(f, g) = ite(f, ~g, g); normalize operand order (xor is commutative).
  NodeId a = f.id(), b = g.id();
  if (a > b) std::swap(a, b);
  const NodeId nb = not_rec(b);
  return wrap(ite_rec(a, nb, b));
}

Bdd BddManager::apply_xnor(const Bdd& f, const Bdd& g) {
  ensure_owned(f, "apply_xnor");
  ensure_owned(g, "apply_xnor");
  maybe_gc();
  NodeId a = f.id(), b = g.id();
  if (a > b) std::swap(a, b);
  const NodeId nb = not_rec(b);
  return wrap(ite_rec(a, b, nb));
}

Bdd BddManager::apply_not(const Bdd& f) {
  ensure_owned(f, "apply_not");
  maybe_gc();
  return wrap(not_rec(f.id()));
}

Bdd BddManager::apply_sharp(const Bdd& f, const Bdd& g) {
  ensure_owned(f, "apply_sharp");
  ensure_owned(g, "apply_sharp");
  maybe_gc();
  const NodeId ng = not_rec(g.id());
  return wrap(ite_rec(f.id(), ng, kFalseId));
}

// ---------------------------------------------------------------------------
// Structural queries
// ---------------------------------------------------------------------------

unsigned BddManager::top_var(const Bdd& f) const {
  ensure_owned(f, "top_var");
  assert(!f.is_const());
  return nodes_[f.id()].var;
}

Bdd BddManager::low(const Bdd& f) {
  ensure_owned(f, "low");
  assert(!f.is_const());
  return wrap(nodes_[f.id()].lo);
}

Bdd BddManager::high(const Bdd& f) {
  ensure_owned(f, "high");
  assert(!f.is_const());
  return wrap(nodes_[f.id()].hi);
}

std::size_t BddManager::dag_size(const Bdd& f) const {
  const Bdd fs[] = {f};
  return dag_size(std::span<const Bdd>(fs, 1));
}

std::size_t BddManager::dag_size(std::span<const Bdd> fs) const {
  mark_.assign(nodes_.size(), false);
  std::vector<NodeId> stack;
  std::size_t count = 0;
  for (const Bdd& f : fs) {
    if (!f.is_valid()) continue;  // default handles count as the empty set
    ensure_owned(f, "dag_size");
    stack.push_back(f.id());
  }
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    if (mark_[id]) continue;
    mark_[id] = true;
    ++count;
    if (id > kTrueId) {
      stack.push_back(nodes_[id].lo);
      stack.push_back(nodes_[id].hi);
    }
  }
  return count;
}

bool BddManager::eval(const Bdd& f, const std::vector<bool>& inputs) const {
  ensure_owned(f, "eval");
  NodeId id = f.id();
  while (id > kTrueId) {
    const Node& n = nodes_[id];
    id = inputs[n.var] ? n.hi : n.lo;
  }
  return id == kTrueId;
}

}  // namespace bidec
