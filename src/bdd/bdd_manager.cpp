// Core of the ROBDD package: node storage, per-variable unique subtables,
// the aging computed table, garbage collection, ITE and the Boolean
// connectives derived from it. Nodes are addressed by complement edges
// (see bdd.h); everything in this file works on raw edges.
#include "bdd/bdd.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <stdexcept>

namespace bidec {

namespace {

// 64-bit mix (splitmix64 finalizer) used for both hash tables.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::size_t round_up_pow2(std::size_t n) noexcept {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

// ---------------------------------------------------------------------------
// Bdd handle
// ---------------------------------------------------------------------------

Bdd::Bdd(BddManager* mgr, NodeId id) noexcept : mgr_(mgr), id_(id) {
  if (mgr_ != nullptr) mgr_->inc_ref(id_);
}

Bdd::Bdd(const Bdd& other) noexcept : mgr_(other.mgr_), id_(other.id_) {
  if (mgr_ != nullptr) mgr_->inc_ref(id_);
}

Bdd::Bdd(Bdd&& other) noexcept : mgr_(other.mgr_), id_(other.id_) {
  other.mgr_ = nullptr;
  other.id_ = kFalseId;
}

Bdd& Bdd::operator=(const Bdd& other) noexcept {
  if (this == &other) return *this;
  if (other.mgr_ != nullptr) other.mgr_->inc_ref(other.id_);
  if (mgr_ != nullptr) mgr_->dec_ref(id_);
  mgr_ = other.mgr_;
  id_ = other.id_;
  return *this;
}

Bdd& Bdd::operator=(Bdd&& other) noexcept {
  if (this == &other) return *this;
  if (mgr_ != nullptr) mgr_->dec_ref(id_);
  mgr_ = other.mgr_;
  id_ = other.id_;
  other.mgr_ = nullptr;
  other.id_ = kFalseId;
  return *this;
}

Bdd::~Bdd() {
  if (mgr_ != nullptr) mgr_->dec_ref(id_);
}

unsigned Bdd::top_var() const { return mgr_->top_var(*this); }
Bdd Bdd::low() const { return mgr_->low(*this); }
Bdd Bdd::high() const { return mgr_->high(*this); }

Bdd Bdd::operator&(const Bdd& g) const { return mgr_->apply_and(*this, g); }
Bdd Bdd::operator|(const Bdd& g) const { return mgr_->apply_or(*this, g); }
Bdd Bdd::operator^(const Bdd& g) const { return mgr_->apply_xor(*this, g); }
Bdd Bdd::operator~() const { return mgr_->apply_not(*this); }
Bdd Bdd::operator-(const Bdd& g) const { return mgr_->apply_sharp(*this, g); }

bool Bdd::implies(const Bdd& g) const { return (*this - g).is_false(); }
bool Bdd::disjoint_with(const Bdd& g) const { return (*this & g).is_false(); }
std::size_t Bdd::dag_size() const { return mgr_->dag_size(*this); }

// ---------------------------------------------------------------------------
// Manager: construction, reference counting, garbage collection
// ---------------------------------------------------------------------------

BddManager::BddManager(unsigned num_vars, std::size_t initial_capacity)
    : num_vars_(num_vars),
      gc_threshold_(std::max<std::size_t>(initial_capacity * 2, 1u << 14)),
      gc_floor_(gc_threshold_) {
  nodes_.reserve(initial_capacity);
  // The single terminal node lives at index 0 and denotes FALSE in its
  // regular polarity (edge 0); edge 1 is its complement, TRUE. var ==
  // num_vars marks it as below every real level. Permanently referenced.
  nodes_.push_back(Node{num_vars_, kFalseId, kFalseId, kInvalidId, 1});
  // Per-variable unique subtables start small and grow independently.
  subtables_.resize(num_vars_);
  for (VarTable& t : subtables_) t.buckets.assign(16, kInvalidId);
  // The computed table starts at the initial capacity and doubles with
  // insert pressure up to cache_budget_.
  cache_.assign(std::max<std::size_t>(round_up_pow2(initial_capacity), 1024),
                CacheEntry{});
  cache_budget_ = std::max(cache_budget_, cache_.size());
  stats_.live_nodes = 1;
  stats_.peak_nodes = 1;
}

// ~BddManager lives in bdd_parallel.cpp (it owns the parallel state).

void BddManager::inc_ref(NodeId id) noexcept { ++nodes_[edge_index(id)].refs; }

void BddManager::dec_ref(NodeId id) noexcept {
  assert(nodes_[edge_index(id)].refs > 0);
  --nodes_[edge_index(id)].refs;
}

std::size_t BddManager::live_node_count() const noexcept {
  return nodes_.size() - free_count_;
}

void BddManager::reset_stats() noexcept {
  stats_ = BddStats{};
  stats_.live_nodes = live_node_count();
  stats_.peak_nodes = stats_.live_nodes;
  steps_ = 0;
}

void BddManager::set_cache_budget(std::size_t max_entries) noexcept {
  cache_budget_ =
      std::max(round_up_pow2(std::max<std::size_t>(max_entries, 2)), cache_.size());
}

// ---------------------------------------------------------------------------
// Fault-injection hooks (no-op defaults; src/fault implements them)
// ---------------------------------------------------------------------------

BddFaultInjector::~BddFaultInjector() = default;
void BddFaultInjector::on_step(std::uint64_t) {}
void BddFaultInjector::on_node_alloc(std::size_t) {}
bool BddFaultInjector::poison_cache_insert() noexcept { return false; }
void BddFaultInjector::on_unique_table_grow(unsigned, std::size_t) {}

// ---------------------------------------------------------------------------
// Cooperative abort
// ---------------------------------------------------------------------------

void BddManager::set_step_budget(std::uint64_t max_steps) noexcept {
  step_budget_ = max_steps == 0 ? 0 : steps_ + max_steps;
}

void BddManager::set_node_budget(std::size_t max_live_nodes) noexcept {
  node_budget_ = max_live_nodes;
}

void BddManager::set_deadline(std::chrono::steady_clock::time_point deadline) noexcept {
  has_deadline_ = true;
  deadline_ = deadline;
}

void BddManager::clear_abort() noexcept {
  step_budget_ = 0;
  node_budget_ = 0;
  has_deadline_ = false;
  fault_ = nullptr;
}

void BddManager::adopt_abort_limits(const BddManager& src) noexcept {
  if (src.step_budget_ != 0) {
    const std::uint64_t remaining =
        src.step_budget_ > src.steps_ ? src.step_budget_ - src.steps_ : 1;
    step_budget_ = steps_ + remaining;
  }
  node_budget_ = src.node_budget_;
  has_deadline_ = src.has_deadline_;
  deadline_ = src.deadline_;
  fault_ = src.fault_;
}

void BddManager::throw_step_abort() const {
  throw BddAbortError("BDD operation aborted: step budget exceeded");
}

void BddManager::throw_node_abort() const {
  throw BddAbortError("BDD operation aborted: node budget exceeded");
}

void BddManager::check_deadline() const {
  if (std::chrono::steady_clock::now() >= deadline_) {
    throw BddAbortError("BDD operation aborted: deadline exceeded");
  }
}

void BddManager::collect_garbage() {
  const auto t0 = std::chrono::steady_clock::now();
  // Mark every node (index) reachable from an externally referenced root.
  std::vector<std::uint8_t> marked(nodes_.size(), 0);  // bytes, not bits:
  marked[0] = 1;  // the cache sweep below reads this 4x per entry  (terminal)
  std::vector<std::uint32_t> stack;
  for (std::uint32_t idx = 1; idx < nodes_.size(); ++idx) {
    if (nodes_[idx].refs > 0 && nodes_[idx].var != kInvalidId) stack.push_back(idx);
  }
  while (!stack.empty()) {
    const std::uint32_t idx = stack.back();
    stack.pop_back();
    if (marked[idx]) continue;
    marked[idx] = 1;
    const std::uint32_t lo_idx = edge_index(nodes_[idx].lo);
    const std::uint32_t hi_idx = edge_index(nodes_[idx].hi);
    if (!marked[lo_idx]) stack.push_back(lo_idx);
    if (!marked[hi_idx]) stack.push_back(hi_idx);
  }

  // Sweep: rebuild the free list and the per-variable subtables from
  // survivors.
  for (VarTable& t : subtables_) {
    std::fill(t.buckets.begin(), t.buckets.end(), kInvalidId);
    t.count = 0;
  }
  free_list_ = kInvalidId;
  free_count_ = 0;
  for (std::uint32_t idx = 1; idx < nodes_.size(); ++idx) {
    Node& n = nodes_[idx];
    if (!marked[idx]) {
      n.var = kInvalidId;  // tombstone: slot is free
      n.lo = free_list_;
      free_list_ = idx;
      ++free_count_;
      continue;
    }
    VarTable& t = subtables_[n.var];
    const std::size_t h = unique_hash(n.lo, n.hi) & (t.buckets.size() - 1);
    n.next = t.buckets[h];
    t.buckets[h] = idx;
    ++t.count;
  }

  // Sweep the computed table: an entry survives iff every node it touches
  // survived, so long decompositions keep their derived results across
  // collections instead of re-deriving everything.
  std::size_t kept = 0;
  std::size_t dropped = 0;
  for (CacheEntry& e : cache_) {
    if (e.tag == 0) continue;
    // Bitwise & on the byte flags: survival is ~50/50 during churn, so
    // short-circuit branches here mispredict constantly.
    const bool alive = (marked[edge_index(e.a)] & marked[edge_index(e.b)] &
                        marked[edge_index(e.c)] & marked[edge_index(e.result)]) != 0;
    if (alive) {
      ++kept;
    } else {
      e = CacheEntry{};
      ++dropped;
    }
  }
  stats_.cache_kept += kept;
  stats_.cache_swept += dropped;

  stats_.live_nodes = nodes_.size() - free_count_;
  ++stats_.gc_runs;
  ++gc_epoch_;  // monotonic, survives reset_stats (parallel cache stamp)
  stats_.gc_ms += std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - t0)
                      .count();

  // Threshold decay: when a collection leaves the heap far below the
  // trigger, relax a spike-inflated trigger back toward the configured
  // floor. Runs on forced collections too (the batch engine forces one
  // between jobs on reused managers), so a one-off spike cannot permanently
  // disable GC pressure for small follow-on jobs.
  while (gc_threshold_ / 2 >= gc_floor_ && stats_.live_nodes * 4 <= gc_threshold_) {
    gc_threshold_ /= 2;
  }
}

void BddManager::maybe_gc() {
  if (in_operation_ || live_node_count() < gc_threshold_) return;
  const std::size_t before = live_node_count();
  collect_garbage();
  // If the collection freed less than a quarter, grow the threshold so we
  // do not thrash. (collect_garbage shrinks it back once reclaim improves.)
  if (live_node_count() > before - before / 4) gc_threshold_ *= 2;
}

// ---------------------------------------------------------------------------
// Unique subtables / node construction
// ---------------------------------------------------------------------------

std::size_t BddManager::unique_hash(NodeId lo, NodeId hi) const noexcept {
  return static_cast<std::size_t>(
      mix64((static_cast<std::uint64_t>(lo) << 32) ^ hi));
}

std::uint32_t BddManager::alloc_slot() {
  if (free_list_ != kInvalidId) {
    const std::uint32_t idx = free_list_;
    free_list_ = nodes_[idx].lo;
    --free_count_;
    return idx;
  }
  nodes_.push_back(Node{});
  return static_cast<std::uint32_t>(nodes_.size() - 1);
}

void BddManager::grow_subtable(unsigned var) {
  VarTable& t = subtables_[var];
  const std::size_t new_size = t.buckets.size() * 2;
  // The first allocation a real out-of-memory would hit; the injector can
  // throw std::bad_alloc here, before any state is touched.
  if (fault_ != nullptr) fault_->on_unique_table_grow(var, new_size);
  std::vector<std::uint32_t> fresh(new_size, kInvalidId);
  const std::size_t mask = new_size - 1;
  for (const std::uint32_t head : t.buckets) {
    for (std::uint32_t idx = head; idx != kInvalidId;) {
      const std::uint32_t next = nodes_[idx].next;
      const std::size_t h = unique_hash(nodes_[idx].lo, nodes_[idx].hi) & mask;
      nodes_[idx].next = fresh[h];
      fresh[h] = idx;
      idx = next;
    }
  }
  t.buckets.swap(fresh);
}

NodeId BddManager::make_node(unsigned var, NodeId lo, NodeId hi) {
  if (lo == hi) return lo;  // reduction rule
  // Canonicity: the stored high edge is regular. A complemented high edge
  // is normalized by complementing both children and tagging the result.
  const NodeId out_c = edge_complement_bit(hi);
  lo ^= out_c;
  hi ^= out_c;
  assert(var < num_vars_);
  assert(level_of(lo) > var && level_of(hi) > var);
  VarTable& table = subtables_[var];
  const std::size_t h = unique_hash(lo, hi) & (table.buckets.size() - 1);
  for (std::uint32_t idx = table.buckets[h]; idx != kInvalidId; idx = nodes_[idx].next) {
    const Node& n = nodes_[idx];
    if (n.lo == lo && n.hi == hi) {
      ++stats_.unique_hits;
      return make_edge(idx, out_c);
    }
  }
  ++stats_.unique_misses;
  // Resource cap and injection point, checked before any mutation so an
  // abort here leaves the table exactly as it was.
  if (node_budget_ != 0 && live_node_count() >= node_budget_) throw_node_abort();
  if (fault_ != nullptr) fault_->on_node_alloc(live_node_count());
  const std::uint32_t idx = alloc_slot();
  nodes_[idx] = Node{var, lo, hi, table.buckets[h], 0};
  table.buckets[h] = idx;
  ++table.count;
  stats_.live_nodes = live_node_count();
  stats_.peak_nodes = std::max(stats_.peak_nodes, stats_.live_nodes);
  if (table.count * 2 > table.buckets.size()) grow_subtable(var);
  return make_edge(idx, out_c);
}

// ---------------------------------------------------------------------------
// Computed table
// ---------------------------------------------------------------------------

std::size_t BddManager::cache_bucket(std::uint32_t tag, NodeId a, NodeId b,
                                     NodeId c) const noexcept {
  // One multiply-mix over the folded triple: the full key is compared on
  // probe, so hash aliasing only costs an occasional miss, never a wrong
  // result. Folding keeps the hot path at a single mix64.
  const std::uint64_t h =
      mix64((static_cast<std::uint64_t>(a) << 32) ^
            (static_cast<std::uint64_t>(b) << 11) ^
            (static_cast<std::uint64_t>(tag) << 54) ^ c);
  return static_cast<std::size_t>(h & (cache_.size() / 2 - 1)) * 2;
}

NodeId BddManager::cache_lookup(std::uint32_t tag, NodeId a, NodeId b, NodeId c) noexcept {
  ++stats_.cache_lookups;
  const std::size_t base = cache_bucket(tag, a, b, c);
  CacheEntry& e0 = cache_[base];
  // A slot-0 hit is read-only: the entry is already in the preferred slot,
  // and its insert/promote-time stamp is recent enough for aging. Keeping
  // stores off the common path keeps the line clean for the next probe.
  if (e0.tag == tag && e0.a == a && e0.b == b && e0.c == c) {
    ++stats_.cache_hits;
    return e0.result;
  }
  CacheEntry& e1 = cache_[base + 1];
  if (e1.tag == tag && e1.a == a && e1.b == b && e1.c == c) {
    ++stats_.cache_hits;
    // Refresh the stamp so aging eviction keeps the hot entry; no slot
    // promotion — the extra stores cost more than the second compare saves.
    e1.stamp = ++cache_tick_;
    return e1.result;
  }
  return kInvalidId;
}

void BddManager::cache_insert(std::uint32_t tag, NodeId a, NodeId b, NodeId c,
                              NodeId result) {
  // Poison-eviction: dropping an insert is correctness-neutral (the result
  // is simply recomputed on the next miss), so the injector can starve the
  // computed table without ever producing a wrong answer.
  if (fault_ != nullptr && fault_->poison_cache_insert()) return;
  ++stats_.cache_inserts;
  if (++cache_inserts_since_grow_ > cache_.size()) {
    // Grow under insert pressure while the table is small relative to the
    // live working set. One entry per live node keeps the computed table
    // inside the same cache footprint as the node store; larger ratios
    // measured slower on apply-heavy suites (probe misses touch cold lines
    // faster than the extra capacity pays back).
    const std::size_t target = std::min(
        cache_budget_, round_up_pow2(live_node_count()));
    if (cache_.size() < target) {
      grow_cache();
    } else {
      cache_inserts_since_grow_ = 0;
    }
  }
  const std::size_t base = cache_bucket(tag, a, b, c);
  CacheEntry& e0 = cache_[base];
  CacheEntry& e1 = cache_[base + 1];
  // Aging: fill an empty slot if there is one, otherwise evict the entry
  // with the older stamp so hot entries survive collisions.
  CacheEntry& victim =
      e0.tag == 0 ? e0 : (e1.tag == 0 ? e1 : (e0.stamp <= e1.stamp ? e0 : e1));
  victim = CacheEntry{tag, a, b, c, result, ++cache_tick_};
}

void BddManager::grow_cache() {
  const std::size_t new_size = std::min(cache_.size() * 2, cache_budget_);
  if (new_size <= cache_.size()) return;
  std::vector<CacheEntry> old;
  old.swap(cache_);
  cache_.assign(new_size, CacheEntry{});
  for (const CacheEntry& e : old) {
    if (e.tag == 0) continue;
    const std::size_t base = cache_bucket(e.tag, e.a, e.b, e.c);
    CacheEntry& e0 = cache_[base];
    CacheEntry& e1 = cache_[base + 1];
    CacheEntry& victim =
        e0.tag == 0 ? e0 : (e1.tag == 0 ? e1 : (e0.stamp <= e1.stamp ? e0 : e1));
    if (victim.tag == 0 || victim.stamp <= e.stamp) victim = e;
  }
  cache_inserts_since_grow_ = 0;
  ++stats_.cache_resizes;
}

// ---------------------------------------------------------------------------
// Variables and cubes
// ---------------------------------------------------------------------------

Bdd BddManager::var(unsigned v) {
  if (v >= num_vars_) throw std::out_of_range("BddManager::var: index out of range");
  return wrap(make_node(v, kFalseId, kTrueId));
}

Bdd BddManager::nvar(unsigned v) {
  if (v >= num_vars_) throw std::out_of_range("BddManager::nvar: index out of range");
  return wrap(make_node(v, kTrueId, kFalseId));
}

Bdd BddManager::literal(unsigned v, bool positive) { return positive ? var(v) : nvar(v); }

Bdd BddManager::make_cube(std::span<const unsigned> vars) {
  std::vector<unsigned> sorted(vars.begin(), vars.end());
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  NodeId r = kTrueId;
  for (const unsigned v : sorted) {
    if (v >= num_vars_) throw std::out_of_range("BddManager::make_cube: index out of range");
    r = make_node(v, kFalseId, r);
  }
  return wrap(r);
}

Bdd BddManager::make_cube(std::initializer_list<unsigned> vars) {
  return make_cube(std::span<const unsigned>(vars.begin(), vars.size()));
}

Bdd BddManager::make_cube(const CubeLits& lits) {
  if (lits.size() > num_vars_) throw std::out_of_range("BddManager::make_cube: too many literals");
  NodeId r = kTrueId;
  for (unsigned i = static_cast<unsigned>(lits.size()); i-- > 0;) {
    if (lits[i] < 0) continue;
    r = lits[i] == 1 ? make_node(i, kFalseId, r) : make_node(i, r, kFalseId);
  }
  return wrap(r);
}

// ---------------------------------------------------------------------------
// ITE and connectives
// ---------------------------------------------------------------------------

NodeId BddManager::and_rec(NodeId f, NodeId g) {
  check_step();
  ++stats_.and_calls;
  // Terminal rules. AND has no absorption cases beyond these: every mixed
  // form (OR/NOR/NAND/SHARP) reaches this core pre-routed through De Morgan,
  // so there is no standard-triple normalization to pay here at all.
  if (f == kFalseId || g == kFalseId || f == edge_not(g)) return kFalseId;
  if (f == kTrueId) return g;
  if (g == kTrueId || f == g) return f;
  // Commutative: one deterministic operand order (top level, then regular
  // edge value) makes (f, g) and (g, f) share a cache entry.
  if (edge_before(g, f)) std::swap(f, g);

  const NodeId cached = cache_lookup(kOpAnd, f, g, 0);
  if (cached != kInvalidId) return cached;

  const unsigned vf = level_of(f), vg = level_of(g);
  const unsigned v = std::min(vf, vg);
  const NodeId f0 = vf == v ? lo_of(f) : f;
  const NodeId f1 = vf == v ? hi_of(f) : f;
  const NodeId g0 = vg == v ? lo_of(g) : g;
  const NodeId g1 = vg == v ? hi_of(g) : g;

  const NodeId r0 = and_rec(f0, g0);
  const NodeId r1 = and_rec(f1, g1);
  const NodeId r = make_node(v, r0, r1);
  cache_insert(kOpAnd, f, g, 0, r);
  return r;
}

NodeId BddManager::ite_rec(NodeId f, NodeId g, NodeId h) {
  check_step();
  ++stats_.ite_calls;
  // Terminal rules.
  if (f == kTrueId) return g;
  if (f == kFalseId) return h;
  if (g == h) return g;
  if (g == kTrueId && h == kFalseId) return f;
  if (g == kFalseId && h == kTrueId) return edge_not(f);
  // Absorb operands equal (or complementary) to the selector:
  // ite(f, f, h) = ite(f, 1, h); ite(f, ~f, h) = ite(f, 0, h); dually for h.
  if (f == g) {
    g = kTrueId;
  } else if (f == edge_not(g)) {
    g = kFalseId;
  }
  if (f == h) {
    h = kFalseId;
  } else if (f == edge_not(h)) {
    h = kTrueId;
  }
  if (g == h) return g;
  if (g == kTrueId && h == kFalseId) return f;
  if (g == kFalseId && h == kTrueId) return edge_not(f);

  // Binary shapes (Brace/Rudell/Bryant's AND/OR/NOR/NAND standard triples)
  // divert to the dedicated two-operand core — OR/NOR/NAND via De Morgan,
  // which complement edges make free. They skip the remaining normalization
  // machinery entirely and probe the kOpAnd cache tag, so conjunctions stop
  // thrashing the ITE buckets. Only the XOR triple stays an ITE.
  if (h == kFalseId) return and_rec(f, g);
  if (g == kTrueId) return edge_not(and_rec(edge_not(f), edge_not(h)));
  if (g == kFalseId) return and_rec(edge_not(f), h);
  if (h == kTrueId) return edge_not(and_rec(f, edge_not(g)));

  // XOR standard triple: ite(f, g, ~g) = ite(g, f, ~f) — order the operands
  // deterministically so both spellings share cache lines.
  if (g == edge_not(h) && edge_before(g, f)) {
    ++stats_.ite_norms;
    const NodeId t = g;
    g = f;
    h = edge_not(f);
    f = t;
  }

  // Complement canonicalization: the selector and the then-branch are made
  // regular; a complemented then-branch complements the cached result.
  if (edge_complemented(f)) {
    ++stats_.ite_norms;
    f = edge_not(f);
    std::swap(g, h);
  }
  NodeId out_c = 0;
  if (edge_complemented(g)) {
    ++stats_.ite_norms;
    out_c = 1;
    g = edge_not(g);
    h = edge_not(h);
  }

  const NodeId cached = cache_lookup(kOpIte, f, g, h);
  if (cached != kInvalidId) return cached ^ out_c;

  const unsigned vf = level_of(f), vg = level_of(g), vh = level_of(h);
  const unsigned v = std::min({vf, vg, vh});
  const NodeId f0 = vf == v ? lo_of(f) : f;
  const NodeId f1 = vf == v ? hi_of(f) : f;
  const NodeId g0 = vg == v ? lo_of(g) : g;
  const NodeId g1 = vg == v ? hi_of(g) : g;
  const NodeId h0 = vh == v ? lo_of(h) : h;
  const NodeId h1 = vh == v ? hi_of(h) : h;

  const NodeId r0 = ite_rec(f0, g0, h0);
  const NodeId r1 = ite_rec(f1, g1, h1);
  const NodeId r = make_node(v, r0, r1);
  cache_insert(kOpIte, f, g, h, r);
  return r ^ out_c;
}

Bdd BddManager::ite(const Bdd& f, const Bdd& g, const Bdd& h) {
  ensure_owned(f, "ite");
  ensure_owned(g, "ite");
  ensure_owned(h, "ite");
  maybe_gc();
  if (parallel_eligible()) {
    return wrap(parallel_apply(kOpIte, f.id(), g.id(), h.id()));
  }
  return wrap(ite_rec(f.id(), g.id(), h.id()));
}

Bdd BddManager::apply_and(const Bdd& f, const Bdd& g) {
  ensure_owned(f, "apply_and");
  ensure_owned(g, "apply_and");
  maybe_gc();
  if (parallel_eligible()) return wrap(parallel_apply(kOpAnd, f.id(), g.id(), 0));
  return wrap(and_rec(f.id(), g.id()));
}

Bdd BddManager::apply_or(const Bdd& f, const Bdd& g) {
  ensure_owned(f, "apply_or");
  ensure_owned(g, "apply_or");
  maybe_gc();
  // De Morgan: or(f, g) = ~and(~f, ~g); complement edges make this free.
  if (parallel_eligible()) {
    return wrap(edge_not(
        parallel_apply(kOpAnd, edge_not(f.id()), edge_not(g.id()), 0)));
  }
  return wrap(edge_not(and_rec(edge_not(f.id()), edge_not(g.id()))));
}

Bdd BddManager::apply_xor(const Bdd& f, const Bdd& g) {
  ensure_owned(f, "apply_xor");
  ensure_owned(g, "apply_xor");
  maybe_gc();
  // xor(f, g) = ite(f, ~g, g); the XOR standard triple normalizes order.
  if (parallel_eligible()) {
    return wrap(parallel_apply(kOpIte, f.id(), edge_not(g.id()), g.id()));
  }
  return wrap(ite_rec(f.id(), edge_not(g.id()), g.id()));
}

Bdd BddManager::apply_xnor(const Bdd& f, const Bdd& g) {
  ensure_owned(f, "apply_xnor");
  ensure_owned(g, "apply_xnor");
  maybe_gc();
  if (parallel_eligible()) {
    return wrap(parallel_apply(kOpIte, f.id(), g.id(), edge_not(g.id())));
  }
  return wrap(ite_rec(f.id(), g.id(), edge_not(g.id())));
}

Bdd BddManager::apply_not(const Bdd& f) {
  ensure_owned(f, "apply_not");
  // O(1): with complement edges negation is a bit flip, no traversal.
  return wrap(edge_not(f.id()));
}

Bdd BddManager::apply_sharp(const Bdd& f, const Bdd& g) {
  ensure_owned(f, "apply_sharp");
  ensure_owned(g, "apply_sharp");
  maybe_gc();
  if (parallel_eligible()) {
    return wrap(parallel_apply(kOpAnd, f.id(), edge_not(g.id()), 0));
  }
  return wrap(and_rec(f.id(), edge_not(g.id())));
}

// ---------------------------------------------------------------------------
// Structural queries
// ---------------------------------------------------------------------------

unsigned BddManager::top_var(const Bdd& f) const {
  ensure_owned(f, "top_var");
  assert(!f.is_const());
  return nodes_[edge_index(f.id())].var;
}

Bdd BddManager::low(const Bdd& f) {
  ensure_owned(f, "low");
  assert(!f.is_const());
  return wrap(lo_of(f.id()));
}

Bdd BddManager::high(const Bdd& f) {
  ensure_owned(f, "high");
  assert(!f.is_const());
  return wrap(hi_of(f.id()));
}

std::size_t BddManager::level_node_count(unsigned v) const {
  if (v >= num_vars_) {
    throw std::out_of_range("BddManager::level_node_count: index out of range");
  }
  return subtables_[v].count;
}

std::vector<std::size_t> BddManager::level_profile() const {
  std::vector<std::size_t> counts(num_vars_);
  for (unsigned v = 0; v < num_vars_; ++v) counts[v] = subtables_[v].count;
  return counts;
}

std::size_t BddManager::dag_size(const Bdd& f) const {
  const Bdd fs[] = {f};
  return dag_size(std::span<const Bdd>(fs, 1));
}

std::size_t BddManager::dag_size(std::span<const Bdd> fs) const {
  mark_.assign(nodes_.size(), false);
  std::vector<std::uint32_t> stack;
  std::size_t count = 0;
  for (const Bdd& f : fs) {
    if (!f.is_valid()) continue;  // default handles count as the empty set
    ensure_owned(f, "dag_size");
    stack.push_back(edge_index(f.id()));
  }
  while (!stack.empty()) {
    const std::uint32_t idx = stack.back();
    stack.pop_back();
    if (mark_[idx]) continue;
    mark_[idx] = true;
    ++count;
    if (idx != 0) {
      stack.push_back(edge_index(nodes_[idx].lo));
      stack.push_back(edge_index(nodes_[idx].hi));
    }
  }
  return count;
}

bool BddManager::eval(const Bdd& f, const std::vector<bool>& inputs) const {
  ensure_owned(f, "eval");
  NodeId e = f.id();
  // The complement bit accumulates along the path (lo_of/hi_of push it
  // through), so the final constant edge is already the answer.
  while (e > kTrueId) {
    const Node& n = nodes_[edge_index(e)];
    e = (inputs[n.var] ? n.hi : n.lo) ^ edge_complement_bit(e);
  }
  return e == kTrueId;
}

}  // namespace bidec
