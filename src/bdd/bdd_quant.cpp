// Quantification, cofactoring, composition and support extraction.
// These are the operators the bi-decomposition theorems (Thms 1-4) are
// expressed with.
//
// Complement-edge discipline: the recursive cores normalize their function
// operand to a regular edge whenever the operator is complement-linear
// (cofactors, constrain/restrict, compose: op(~f) == ~op(f)), so f and ~f
// share all recursion work and computed-table entries. Quantifiers are not
// complement-linear but satisfy the dual ∃x ~f == ~(∀x f), so a
// complemented operand flips the quantifier instead.
#include "bdd/bdd.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace bidec {

// Decode the variables of a positive cube into a level mask.
std::vector<bool> BddManager::cube_var_mask(NodeId cube) const {
  std::vector<bool> mask(num_vars_, false);
  for (NodeId e = cube; e > kTrueId; e = hi_of(e)) {
    if (lo_of(e) != kFalseId) {
      throw std::invalid_argument("quantifier cube must be a positive cube");
    }
    mask[level_of(e)] = true;
  }
  return mask;
}

NodeId BddManager::quant_rec(NodeId f, const std::vector<bool>& qvars, unsigned max_qvar,
                             bool existential, NodeId cube_id) {
  check_step();
  if (f <= kTrueId) return f;
  // ∃x ~f == ~(∀x f): strip the complement bit by flipping the quantifier.
  if (edge_complemented(f)) {
    return edge_not(quant_rec(edge_not(f), qvars, max_qvar, !existential, cube_id));
  }
  const Node& n = nodes_[edge_index(f)];
  if (n.var > max_qvar) return f;  // no quantified variable below this level

  const std::uint32_t tag = existential ? kOpExists : kOpForall;
  const NodeId cached = cache_lookup(tag, f, cube_id, 0);
  if (cached != kInvalidId) return cached;

  // f is regular, so the stored children are the functional cofactors. Copy
  // them out: `n` dangles once recursion grows the node store.
  const NodeId lo = n.lo, hi = n.hi;
  const unsigned v = n.var;
  NodeId r;
  if (qvars[v]) {
    const NodeId r0 = quant_rec(lo, qvars, max_qvar, existential, cube_id);
    // Short-circuit: OR with true / AND with false is decided.
    if (existential && r0 == kTrueId) {
      r = kTrueId;
    } else if (!existential && r0 == kFalseId) {
      r = kFalseId;
    } else {
      const NodeId r1 = quant_rec(hi, qvars, max_qvar, existential, cube_id);
      // Join through the dedicated AND core (OR via De Morgan).
      r = existential ? edge_not(and_rec(edge_not(r0), edge_not(r1)))
                      : and_rec(r0, r1);
    }
  } else {
    const NodeId r0 = quant_rec(lo, qvars, max_qvar, existential, cube_id);
    const NodeId r1 = quant_rec(hi, qvars, max_qvar, existential, cube_id);
    r = make_node(v, r0, r1);
  }
  cache_insert(tag, f, cube_id, 0, r);
  return r;
}

namespace {
unsigned max_set_bit(const std::vector<bool>& mask) {
  for (std::size_t i = mask.size(); i-- > 0;) {
    if (mask[i]) return static_cast<unsigned>(i);
  }
  return 0;
}
}  // namespace

Bdd BddManager::exists(const Bdd& f, const Bdd& cube) {
  ensure_owned(f, "exists");
  ensure_owned(cube, "exists");
  maybe_gc();
  if (cube.is_true()) return f;
  const std::vector<bool> mask = cube_var_mask(cube.id());
  return wrap(quant_rec(f.id(), mask, max_set_bit(mask), /*existential=*/true, cube.id()));
}

Bdd BddManager::exists(const Bdd& f, std::span<const unsigned> vars) {
  return exists(f, make_cube(vars));
}

Bdd BddManager::forall(const Bdd& f, const Bdd& cube) {
  ensure_owned(f, "forall");
  ensure_owned(cube, "forall");
  maybe_gc();
  if (cube.is_true()) return f;
  const std::vector<bool> mask = cube_var_mask(cube.id());
  return wrap(quant_rec(f.id(), mask, max_set_bit(mask), /*existential=*/false, cube.id()));
}

Bdd BddManager::forall(const Bdd& f, std::span<const unsigned> vars) {
  return forall(f, make_cube(vars));
}

NodeId BddManager::and_exists_rec(NodeId f, NodeId g, const std::vector<bool>& qvars,
                                  unsigned max_qvar, NodeId cube_id) {
  check_step();
  if (f == kFalseId || g == kFalseId) return kFalseId;
  if (f == kTrueId && g == kTrueId) return kTrueId;
  if (f == kTrueId) return quant_rec(g, qvars, max_qvar, true, cube_id);
  if (g == kTrueId) return quant_rec(f, qvars, max_qvar, true, cube_id);
  if (f == g) return quant_rec(f, qvars, max_qvar, true, cube_id);
  if (f == edge_not(g)) return kFalseId;  // f & ~f
  if (f > g) std::swap(f, g);             // AND is commutative

  const unsigned vf = level_of(f), vg = level_of(g);
  const unsigned v = std::min(vf, vg);
  if (v > max_qvar) {
    // No quantified variable remains: plain conjunction.
    return and_rec(f, g);
  }

  const NodeId cached = cache_lookup(kOpAndExists, f, g, cube_id);
  if (cached != kInvalidId) return cached;

  const NodeId f0 = vf == v ? lo_of(f) : f;
  const NodeId f1 = vf == v ? hi_of(f) : f;
  const NodeId g0 = vg == v ? lo_of(g) : g;
  const NodeId g1 = vg == v ? hi_of(g) : g;

  NodeId r;
  if (qvars[v]) {
    const NodeId r0 = and_exists_rec(f0, g0, qvars, max_qvar, cube_id);
    if (r0 == kTrueId) {
      r = kTrueId;
    } else {
      const NodeId r1 = and_exists_rec(f1, g1, qvars, max_qvar, cube_id);
      r = edge_not(and_rec(edge_not(r0), edge_not(r1)));
    }
  } else {
    const NodeId r0 = and_exists_rec(f0, g0, qvars, max_qvar, cube_id);
    const NodeId r1 = and_exists_rec(f1, g1, qvars, max_qvar, cube_id);
    r = make_node(v, r0, r1);
  }
  cache_insert(kOpAndExists, f, g, cube_id, r);
  return r;
}

Bdd BddManager::and_exists(const Bdd& f, const Bdd& g, const Bdd& cube) {
  ensure_owned(f, "and_exists");
  ensure_owned(g, "and_exists");
  ensure_owned(cube, "and_exists");
  maybe_gc();
  const std::vector<bool> mask = cube_var_mask(cube.id());
  return wrap(and_exists_rec(f.id(), g.id(), mask, max_set_bit(mask), cube.id()));
}

Bdd BddManager::derivative(const Bdd& f, unsigned v) {
  return apply_xor(cofactor(f, v, false), cofactor(f, v, true));
}

// ---------------------------------------------------------------------------
// Cofactors
// ---------------------------------------------------------------------------

Bdd BddManager::cofactor(const Bdd& f, unsigned v, bool val) {
  ensure_owned(f, "cofactor");
  maybe_gc();
  // Implemented as compose(f, v, const): cheap and cacheable.
  return wrap(compose_rec(f.id(), v, val ? kTrueId : kFalseId));
}

NodeId BddManager::cofactor_cube_rec(NodeId f, NodeId cube) {
  check_step();
  if (f <= kTrueId || cube == kTrueId) return f;
  // Complement-linear: (~f)|_c == ~(f|_c).
  if (edge_complemented(f)) return edge_not(cofactor_cube_rec(edge_not(f), cube));
  const unsigned vf = level_of(f);
  // Advance the cube past levels above f.
  if (level_of(cube) < vf) {
    return cofactor_cube_rec(f, lo_of(cube) == kFalseId ? hi_of(cube) : lo_of(cube));
  }
  const NodeId cached = cache_lookup(kOpCofCube, f, cube, 0);
  if (cached != kInvalidId) return cached;
  const Node& n = nodes_[edge_index(f)];
  const NodeId lo = n.lo, hi = n.hi;  // f regular: functional cofactors
  NodeId r;
  if (level_of(cube) == vf) {
    const bool positive = lo_of(cube) == kFalseId;
    const NodeId next = positive ? hi_of(cube) : lo_of(cube);
    r = cofactor_cube_rec(positive ? hi : lo, next);
  } else {
    const unsigned var = n.var;
    const NodeId r0 = cofactor_cube_rec(lo, cube);
    const NodeId r1 = cofactor_cube_rec(hi, cube);
    r = make_node(var, r0, r1);
  }
  cache_insert(kOpCofCube, f, cube, 0, r);
  return r;
}

Bdd BddManager::cofactor_cube(const Bdd& f, const Bdd& cube) {
  ensure_owned(f, "cofactor_cube");
  ensure_owned(cube, "cofactor_cube");
  maybe_gc();
  if (cube.is_false()) throw std::invalid_argument("cofactor_cube: empty cube");
  return wrap(cofactor_cube_rec(f.id(), cube.id()));
}

// ---------------------------------------------------------------------------
// Generalized cofactors (Coudert-Madre constrain / restrict)
// ---------------------------------------------------------------------------

NodeId BddManager::constrain_rec(NodeId f, NodeId c, bool restrict_mode) {
  check_step();
  if (c == kTrueId || f <= kTrueId) return f;
  // Complement-linear in f: constrain(~f, c) == ~constrain(f, c).
  if (edge_complemented(f)) return edge_not(constrain_rec(edge_not(f), c, restrict_mode));
  if (f == c) return kTrueId;
  if (f == edge_not(c)) return kFalseId;
  const std::uint32_t tag = restrict_mode ? kOpRestrict : kOpConstrain;
  const NodeId cached = cache_lookup(tag, f, c, 0);
  if (cached != kInvalidId) return cached;

  const unsigned vf = level_of(f), vc = level_of(c);
  NodeId r;
  if (restrict_mode && vc < vf) {
    // The care set constrains a variable f does not depend on: quantify it
    // away so the result's support stays within f's.
    const NodeId c_or = edge_not(and_rec(edge_not(lo_of(c)), edge_not(hi_of(c))));
    r = constrain_rec(f, c_or, restrict_mode);
  } else {
    const unsigned v = std::min(vf, vc);
    const NodeId f0 = vf == v ? lo_of(f) : f;
    const NodeId f1 = vf == v ? hi_of(f) : f;
    const NodeId c0 = vc == v ? lo_of(c) : c;
    const NodeId c1 = vc == v ? hi_of(c) : c;
    if (c0 == kFalseId) {
      r = constrain_rec(f1, c1, restrict_mode);
    } else if (c1 == kFalseId) {
      r = constrain_rec(f0, c0, restrict_mode);
    } else {
      const NodeId r0 = constrain_rec(f0, c0, restrict_mode);
      const NodeId r1 = constrain_rec(f1, c1, restrict_mode);
      r = make_node(v, r0, r1);
    }
  }
  cache_insert(tag, f, c, 0, r);
  return r;
}

Bdd BddManager::constrain(const Bdd& f, const Bdd& c) {
  ensure_owned(f, "constrain");
  ensure_owned(c, "constrain");
  if (c.is_false()) throw std::invalid_argument("constrain: empty care set");
  maybe_gc();
  return wrap(constrain_rec(f.id(), c.id(), /*restrict_mode=*/false));
}

Bdd BddManager::restrict_to(const Bdd& f, const Bdd& c) {
  ensure_owned(f, "restrict_to");
  ensure_owned(c, "restrict_to");
  if (c.is_false()) throw std::invalid_argument("restrict_to: empty care set");
  maybe_gc();
  return wrap(constrain_rec(f.id(), c.id(), /*restrict_mode=*/true));
}

// ---------------------------------------------------------------------------
// Composition / permutation
// ---------------------------------------------------------------------------

NodeId BddManager::compose_rec(NodeId f, unsigned v, NodeId g) {
  check_step();
  if (f <= kTrueId) return f;
  // Complement-linear: compose(~f) == ~compose(f).
  if (edge_complemented(f)) return edge_not(compose_rec(edge_not(f), v, g));
  const Node& n = nodes_[edge_index(f)];
  if (n.var > v) return f;  // v cannot appear below its own level
  const std::uint32_t tag = kOpCompose | (v << 8);
  const NodeId cached = cache_lookup(tag, f, g, 0);
  if (cached != kInvalidId) return cached;
  const NodeId lo = n.lo, hi = n.hi;  // f regular: functional cofactors
  const unsigned var = n.var;
  NodeId r;
  if (var == v) {
    r = ite_rec(g, hi, lo);
  } else {
    const NodeId r0 = compose_rec(lo, v, g);
    const NodeId r1 = compose_rec(hi, v, g);
    // The substituted function may depend on variables above this level, so
    // rebuild with ITE on the branch variable rather than make_node.
    if (level_of(r0) > var && level_of(r1) > var) {
      r = make_node(var, r0, r1);
    } else {
      const NodeId x = make_node(var, kFalseId, kTrueId);
      r = ite_rec(x, r1, r0);
    }
  }
  cache_insert(tag, f, g, 0, r);
  return r;
}

Bdd BddManager::compose(const Bdd& f, unsigned v, const Bdd& g) {
  ensure_owned(f, "compose");
  ensure_owned(g, "compose");
  maybe_gc();
  if (v >= num_vars_) throw std::out_of_range("compose: variable out of range");
  if (!g.is_const()) {
    // compose(f, v, g) == ite(g, f|v=1, f|v=0). The two cofactors are cheap
    // compose-with-constant calls that never re-expand, while the recursive
    // compose re-derives an ITE join at every node above v's level — on the
    // perf-gate workload the cofactor form is an order of magnitude faster.
    // The ITE carries the real work, so it is also the parallel entry.
    const Bdd f1 = wrap(compose_rec(f.id(), v, kTrueId));
    const Bdd f0 = wrap(compose_rec(f.id(), v, kFalseId));
    if (parallel_eligible()) {
      return wrap(parallel_apply(kOpIte, g.id(), f1.id(), f0.id()));
    }
    return wrap(ite_rec(g.id(), f1.id(), f0.id()));
  }
  return wrap(compose_rec(f.id(), v, g.id()));
}

Bdd BddManager::vector_compose(const Bdd& f, std::span<const Bdd> subst) {
  if (subst.size() != num_vars_) {
    throw std::invalid_argument("vector_compose: need one function per variable");
  }
  ensure_owned(f, "vector_compose");
  for (const Bdd& s : subst) ensure_owned(s, "vector_compose");
  maybe_gc();
  // Evaluate bottom-up over the DAG with an explicit memo indexed by node
  // index; memo[i] is the composed image of node i's *regular* function, so
  // a complemented child edge complements the memoized image. Handles are
  // used for intermediate results so GC cannot be an issue (it is disabled
  // during the loop anyway since we never call maybe_gc here).
  std::vector<std::uint32_t> order;
  mark_.assign(nodes_.size(), false);
  std::vector<std::uint32_t> stack{edge_index(f.id())};
  while (!stack.empty()) {
    const std::uint32_t idx = stack.back();
    stack.pop_back();
    if (idx == 0 || mark_[idx]) continue;
    mark_[idx] = true;
    order.push_back(idx);
    stack.push_back(edge_index(nodes_[idx].lo));
    stack.push_back(edge_index(nodes_[idx].hi));
  }
  std::sort(order.begin(), order.end(), [this](std::uint32_t a, std::uint32_t b) {
    return nodes_[a].var > nodes_[b].var;  // deepest levels first
  });
  std::vector<NodeId> memo(nodes_.size(), kInvalidId);
  memo[0] = kFalseId;  // terminal maps to itself
  std::vector<Bdd> keep;  // protect intermediates across ite_rec calls
  keep.reserve(order.size());
  for (const std::uint32_t idx : order) {
    const Node n = nodes_[idx];
    assert(memo[edge_index(n.lo)] != kInvalidId && memo[edge_index(n.hi)] != kInvalidId);
    const NodeId lo = memo[edge_index(n.lo)] ^ edge_complement_bit(n.lo);
    const NodeId hi = memo[edge_index(n.hi)] ^ edge_complement_bit(n.hi);
    const NodeId r = ite_rec(subst[n.var].id(), hi, lo);
    memo[idx] = r;
    keep.push_back(wrap(r));
  }
  return wrap(memo[edge_index(f.id())] ^ edge_complement_bit(f.id()));
}

Bdd BddManager::permute(const Bdd& f, std::span<const unsigned> perm) {
  if (perm.size() != num_vars_) {
    throw std::invalid_argument("permute: need one image per variable");
  }
  std::vector<Bdd> subst;
  subst.reserve(num_vars_);
  for (unsigned i = 0; i < num_vars_; ++i) subst.push_back(var(perm[i]));
  return vector_compose(f, subst);
}

// ---------------------------------------------------------------------------
// Support
// ---------------------------------------------------------------------------

void BddManager::support_rec(NodeId f, std::vector<bool>& seen,
                             std::vector<NodeId>& visited) const {
  std::vector<std::uint32_t> stack{edge_index(f)};
  while (!stack.empty()) {
    const std::uint32_t idx = stack.back();
    stack.pop_back();
    if (idx == 0 || mark_[idx]) continue;
    mark_[idx] = true;
    visited.push_back(idx);
    seen[nodes_[idx].var] = true;
    stack.push_back(edge_index(nodes_[idx].lo));
    stack.push_back(edge_index(nodes_[idx].hi));
  }
}

std::vector<unsigned> BddManager::support_vars(const Bdd& f) {
  ensure_owned(f, "support_vars");
  std::vector<bool> seen(num_vars_, false);
  std::vector<NodeId> visited;
  mark_.assign(nodes_.size(), false);
  support_rec(f.id(), seen, visited);
  std::vector<unsigned> result;
  for (unsigned v = 0; v < num_vars_; ++v) {
    if (seen[v]) result.push_back(v);
  }
  return result;
}

std::vector<unsigned> BddManager::support_vars(const Bdd& f, const Bdd& g) {
  ensure_owned(f, "support_vars");
  ensure_owned(g, "support_vars");
  std::vector<bool> seen(num_vars_, false);
  std::vector<NodeId> visited;
  mark_.assign(nodes_.size(), false);
  support_rec(f.id(), seen, visited);
  support_rec(g.id(), seen, visited);
  std::vector<unsigned> result;
  for (unsigned v = 0; v < num_vars_; ++v) {
    if (seen[v]) result.push_back(v);
  }
  return result;
}

Bdd BddManager::support_cube(const Bdd& f) {
  return make_cube(std::span<const unsigned>(support_vars(f)));
}

bool BddManager::depends_on(const Bdd& f, unsigned v) {
  ensure_owned(f, "depends_on");
  // Cheap check without building cofactors: scan for a node labelled v.
  mark_.assign(nodes_.size(), false);
  std::vector<std::uint32_t> stack{edge_index(f.id())};
  while (!stack.empty()) {
    const std::uint32_t idx = stack.back();
    stack.pop_back();
    if (idx == 0 || mark_[idx]) continue;
    const Node& n = nodes_[idx];
    if (n.var == v) return true;
    if (n.var > v) continue;  // ordered: v cannot appear deeper
    mark_[idx] = true;
    stack.push_back(edge_index(n.lo));
    stack.push_back(edge_index(n.hi));
  }
  return false;
}

}  // namespace bidec
