// Human-readable dumps of BDDs for debugging and documentation.
// Complemented edges are rendered with a `~` prefix (text) or a dotted
// style (graphviz); node names are node indices, so f and ~f print the
// same DAG with different root polarity.
#include "bdd/bdd.h"

#include <sstream>

namespace bidec {

namespace {

// Two statements: GCC 12's -Wrestrict misfires on `prefix +
// std::to_string(i)` once the string operator+ is inlined.
std::string numbered(const char* prefix, std::uint32_t i) {
  std::string s = prefix;
  s += std::to_string(i);
  return s;
}

}  // namespace

std::string BddManager::to_string(const Bdd& f) const {
  ensure_owned(f, "to_string");
  std::ostringstream out;
  if (f.is_false()) return "const0";
  if (f.is_true()) return "const1";
  // Edge spelling: constants as const0/const1, else [~]n<index>.
  auto edge_name = [](NodeId e) {
    if (e == kFalseId) return std::string("const0");
    if (e == kTrueId) return std::string("const1");
    std::string s = edge_complemented(e) ? "~n" : "n";
    s += std::to_string(edge_index(e));
    return s;
  };
  mark_.assign(nodes_.size(), false);
  std::vector<std::uint32_t> stack{edge_index(f.id())};
  out << "root " << edge_name(f.id()) << "\n";
  while (!stack.empty()) {
    const std::uint32_t idx = stack.back();
    stack.pop_back();
    if (idx == 0 || mark_[idx]) continue;
    mark_[idx] = true;
    const Node& n = nodes_[idx];
    out << "  n" << idx << " = ITE(x" << n.var << ", " << edge_name(n.hi) << ", "
        << edge_name(n.lo) << ")\n";
    stack.push_back(edge_index(n.lo));
    stack.push_back(edge_index(n.hi));
  }
  return out.str();
}

std::string BddManager::to_dot(const Bdd& f) const {
  ensure_owned(f, "to_dot");
  std::ostringstream out;
  out << "digraph bdd {\n"
      << "  node [shape=circle];\n"
      << "  t0 [shape=box,label=\"0\"];\n";
  auto name = [](NodeId e) {
    if (edge_index(e) == 0) return std::string("t0");
    return numbered("n", edge_index(e));
  };
  // Root pseudo-node shows the entry polarity (dotted = complemented).
  out << "  root [shape=plaintext,label=\"f\"];\n";
  out << "  root -> " << name(f.id())
      << (edge_complemented(f.id()) ? " [style=dotted];\n" : ";\n");
  mark_.assign(nodes_.size(), false);
  std::vector<std::uint32_t> stack{edge_index(f.id())};
  while (!stack.empty()) {
    const std::uint32_t idx = stack.back();
    stack.pop_back();
    if (idx == 0 || mark_[idx]) continue;
    mark_[idx] = true;
    const Node& n = nodes_[idx];
    out << "  n" << idx << " [label=\"x" << n.var << "\"];\n";
    // Low edges dashed; complemented edges additionally dotted (they can
    // only occur on low edges by the regular-high canonicity rule).
    out << "  n" << idx << " -> " << name(n.lo)
        << (edge_complemented(n.lo) ? " [style=dotted];\n" : " [style=dashed];\n");
    out << "  n" << idx << " -> " << name(n.hi) << ";\n";
    stack.push_back(edge_index(n.lo));
    stack.push_back(edge_index(n.hi));
  }
  out << "}\n";
  return out.str();
}

}  // namespace bidec
