// Human-readable dumps of BDDs for debugging and documentation.
#include "bdd/bdd.h"

#include <sstream>

namespace bidec {

std::string BddManager::to_string(const Bdd& f) const {
  ensure_owned(f, "to_string");
  std::ostringstream out;
  if (f.is_false()) return "const0";
  if (f.is_true()) return "const1";
  mark_.assign(nodes_.size(), false);
  std::vector<NodeId> stack{f.id()};
  out << "root " << f.id() << "\n";
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    if (id <= kTrueId || mark_[id]) continue;
    mark_[id] = true;
    const Node& n = nodes_[id];
    out << "  n" << id << " = ITE(x" << n.var << ", n" << n.hi << ", n" << n.lo << ")\n";
    stack.push_back(n.lo);
    stack.push_back(n.hi);
  }
  return out.str();
}

std::string BddManager::to_dot(const Bdd& f) const {
  ensure_owned(f, "to_dot");
  std::ostringstream out;
  out << "digraph bdd {\n"
      << "  node [shape=circle];\n"
      << "  t0 [shape=box,label=\"0\"];\n"
      << "  t1 [shape=box,label=\"1\"];\n";
  mark_.assign(nodes_.size(), false);
  std::vector<NodeId> stack{f.id()};
  auto name = [](NodeId id) {
    if (id == kFalseId) return std::string("t0");
    if (id == kTrueId) return std::string("t1");
    std::string s = "n";  // two statements: GCC 12's -Wrestrict misfires on
    s += std::to_string(id);  // `"n" + std::to_string(id)` inlined here
    return s;
  };
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    if (id <= kTrueId || mark_[id]) continue;
    mark_[id] = true;
    const Node& n = nodes_[id];
    out << "  n" << id << " [label=\"x" << n.var << "\"];\n";
    out << "  n" << id << " -> " << name(n.lo) << " [style=dashed];\n";
    out << "  n" << id << " -> " << name(n.hi) << ";\n";
    stack.push_back(n.lo);
    stack.push_back(n.hi);
  }
  out << "}\n";
  return out.str();
}

}  // namespace bidec
