#include "mv/mv_decompose.h"

#include <algorithm>

#include "bidec/bidecomposer.h"
#include "bidec/check.h"
#include "bidec/derive.h"

namespace bidec {

namespace {

/// Two statements: GCC 12's -Wrestrict misfires on `prefix +
/// std::to_string(i)` once the string operator+ is inlined.
std::string numbered_name(const char* prefix, std::size_t i) {
  std::string s = prefix;
  s += std::to_string(i);
  return s;
}

/// Repair a per-level derived chain into a monotone one by accumulating the
/// requirement sets downward (Q'_j = union of Q_i for i >= j). Safe because
/// R is monotone non-decreasing, so higher-level requirements never clash
/// with lower-level exclusions (see mv_decompose.h commentary).
std::vector<Isf> make_monotone(std::vector<Isf> chain) {
  for (std::size_t idx = chain.size() - 1; idx-- > 0;) {
    const Bdd q = chain[idx].q() | chain[idx + 1].q();
    chain[idx] = Isf(q, chain[idx].r());
  }
  // R accumulation upward gives the dual invariant (no-op when the derived
  // exclusion sets are already monotone, as in the MAX case).
  for (std::size_t idx = 1; idx < chain.size(); ++idx) {
    const Bdd r = chain[idx].r() | chain[idx - 1].r();
    chain[idx] = Isf(chain[idx].q(), r);
  }
  return chain;
}

}  // namespace

bool check_max_decomposable(const MvIsf& f, std::span<const unsigned> xa,
                            std::span<const unsigned> xb) {
  for (unsigned j = 1; j < f.num_values(); ++j) {
    if (!check_or_decomposable(f.threshold(j), xa, xb)) return false;
  }
  return true;
}

bool check_min_decomposable(const MvIsf& f, std::span<const unsigned> xa,
                            std::span<const unsigned> xb) {
  for (unsigned j = 1; j < f.num_values(); ++j) {
    if (!check_and_decomposable(f.threshold(j), xa, xb)) return false;
  }
  return true;
}

MvIsf derive_max_component_a(const MvIsf& f, std::span<const unsigned> xa,
                             std::span<const unsigned> xb) {
  std::vector<Isf> chain;
  for (unsigned j = 1; j < f.num_values(); ++j) {
    chain.push_back(derive_or_component_a(f.threshold(j), xa, xb));
  }
  return MvIsf::from_thresholds(make_monotone(std::move(chain)));
}

MvIsf derive_max_component_b(const MvIsf& f, std::span<const Bdd> fa_covers,
                             std::span<const unsigned> xa) {
  std::vector<Isf> chain;
  for (unsigned j = 1; j < f.num_values(); ++j) {
    chain.push_back(derive_or_component_b(f.threshold(j), fa_covers[j - 1], xa));
  }
  return MvIsf::from_thresholds(make_monotone(std::move(chain)));
}

MvIsf derive_min_component_a(const MvIsf& f, std::span<const unsigned> xa,
                             std::span<const unsigned> xb) {
  std::vector<Isf> chain;
  for (unsigned j = 1; j < f.num_values(); ++j) {
    chain.push_back(derive_and_component_a(f.threshold(j), xa, xb));
  }
  return MvIsf::from_thresholds(make_monotone(std::move(chain)));
}

MvIsf derive_min_component_b(const MvIsf& f, std::span<const Bdd> fa_covers,
                             std::span<const unsigned> xa) {
  std::vector<Isf> chain;
  for (unsigned j = 1; j < f.num_values(); ++j) {
    chain.push_back(derive_and_component_b(f.threshold(j), fa_covers[j - 1], xa));
  }
  return MvIsf::from_thresholds(make_monotone(std::move(chain)));
}

// ---------------------------------------------------------------------------
// Grouping (Figs. 5/6 on the simultaneous all-thresholds check)
// ---------------------------------------------------------------------------

namespace {

using MvCheck = bool (*)(const MvIsf&, std::span<const unsigned>, std::span<const unsigned>);

VarGrouping mv_group(const MvIsf& f, std::span<const unsigned> support, MvCheck check) {
  VarGrouping g;
  for (std::size_t i = 0; i < support.size() && g.empty(); ++i) {
    for (std::size_t j = i + 1; j < support.size() && g.empty(); ++j) {
      const unsigned xa[] = {support[i]}, xb[] = {support[j]};
      if (check(f, std::span<const unsigned>(xa), std::span<const unsigned>(xb))) {
        g = VarGrouping{{support[i]}, {support[j]}};
      }
    }
  }
  if (g.empty()) return g;
  for (const unsigned z : support) {
    if (std::find(g.xa.begin(), g.xa.end(), z) != g.xa.end() ||
        std::find(g.xb.begin(), g.xb.end(), z) != g.xb.end()) {
      continue;
    }
    std::vector<unsigned>& first = g.xa.size() <= g.xb.size() ? g.xa : g.xb;
    std::vector<unsigned>& second = g.xa.size() <= g.xb.size() ? g.xb : g.xa;
    first.push_back(z);
    if (check(f, g.xa, g.xb)) continue;
    first.pop_back();
    second.push_back(z);
    if (check(f, g.xa, g.xb)) continue;
    second.pop_back();
  }
  return g;
}

}  // namespace

std::optional<MvGrouping> find_best_mv_grouping(const MvIsf& f,
                                                std::span<const unsigned> support,
                                                const BidecOptions& options) {
  std::vector<MvGrouping> candidates;
  if (VarGrouping g = mv_group(f, support, &check_max_decomposable); !g.empty()) {
    candidates.push_back({std::move(g), MvGate::kMax});
  }
  if (VarGrouping g = mv_group(f, support, &check_min_decomposable); !g.empty()) {
    candidates.push_back({std::move(g), MvGate::kMin});
  }
  if (candidates.empty()) return std::nullopt;
  const auto score = [&options](const MvGrouping& c) {
    return static_cast<long>(c.grouping.size()) * 1000 -
           (options.balance_cost ? static_cast<long>(c.grouping.imbalance()) : 0);
  };
  return *std::max_element(candidates.begin(), candidates.end(),
                           [&score](const MvGrouping& a, const MvGrouping& b) {
                             return score(a) < score(b);
                           });
}

// ---------------------------------------------------------------------------
// Recursive realization
// ---------------------------------------------------------------------------

namespace {

struct Bundle {
  std::vector<Bdd> covers;
  std::vector<SignalId> sigs;
};

class MvDecomposer {
 public:
  MvDecomposer(BddManager& mgr, const BidecOptions& options)
      : options_(options), dec_(mgr, options) {}

  Bundle decompose(const MvIsf& f) {
    const std::vector<unsigned> support = f.support();
    if (support.size() > 2) {
      if (const auto split = find_best_mv_grouping(f, support, options_)) {
        if (split->gate == MvGate::kMax) {
          ++max_splits_;
          const MvIsf a = derive_max_component_a(f, split->grouping.xa, split->grouping.xb);
          const Bundle ba = decompose(a);
          const MvIsf b = derive_max_component_b(f, ba.covers, split->grouping.xa);
          const Bundle bb = decompose(b);
          return combine(ba, bb, GateType::kOr);
        }
        ++min_splits_;
        const MvIsf a = derive_min_component_a(f, split->grouping.xa, split->grouping.xb);
        const Bundle ba = decompose(a);
        const MvIsf b = derive_min_component_b(f, ba.covers, split->grouping.xa);
        const Bundle bb = decompose(b);
        return combine(ba, bb, GateType::kAnd);
      }
    }
    // No MV-level split: realize the monotone threshold chain with the
    // shared binary decomposer (which continues with the full binary
    // algorithm including EXOR splits).
    Bundle bundle;
    for (unsigned j = 1; j < f.num_values(); ++j) {
      Isf level = f.threshold(j);
      if (j > 1) level = Isf(level.q(), level.r() | ~bundle.covers.back());
      const auto [cover, sig] = dec_.decompose(level);
      bundle.covers.push_back(cover);
      bundle.sigs.push_back(sig);
    }
    return bundle;
  }

  MvRealization finish(const Bundle& top) {
    for (std::size_t j = 0; j < top.sigs.size(); ++j) {
      dec_.netlist().add_output(numbered_name("t", j + 1), top.sigs[j]);
    }
    dec_.finish();
    MvRealization r;
    r.netlist = std::move(dec_.netlist());
    r.max_splits = max_splits_;
    r.min_splits = min_splits_;
    return r;
  }

 private:
  Bundle combine(const Bundle& a, const Bundle& b, GateType gate) {
    Bundle out;
    for (std::size_t j = 0; j < a.covers.size(); ++j) {
      out.covers.push_back(gate == GateType::kOr ? (a.covers[j] | b.covers[j])
                                                 : (a.covers[j] & b.covers[j]));
      out.sigs.push_back(dec_.netlist().add_gate(gate, a.sigs[j], b.sigs[j]));
    }
    return out;
  }

  BidecOptions options_;
  BiDecomposer dec_;
  std::size_t max_splits_ = 0;
  std::size_t min_splits_ = 0;
};

}  // namespace

unsigned mv_evaluate(const Netlist& net, const std::vector<bool>& input) {
  const std::vector<bool> outs = net.evaluate(input);
  unsigned value = 0;
  for (const bool t : outs) value += t ? 1 : 0;
  return value;
}

MvRealization decompose_mv(const MvIsf& f, const BidecOptions& options) {
  MvDecomposer dec(*f.manager(), options);
  const Bundle top = dec.decompose(f);
  return dec.finish(top);
}

}  // namespace bidec
