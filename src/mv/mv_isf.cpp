#include "mv/mv_isf.h"

#include <stdexcept>

namespace bidec {

MvIsf MvIsf::from_value_sets(BddManager& mgr, std::vector<Bdd> value_sets) {
  if (value_sets.size() < 2) {
    throw std::invalid_argument("MvIsf: need at least two values");
  }
  // Disjointness.
  for (std::size_t i = 0; i < value_sets.size(); ++i) {
    for (std::size_t j = i + 1; j < value_sets.size(); ++j) {
      if (!value_sets[i].disjoint_with(value_sets[j])) {
        throw std::invalid_argument("MvIsf: value sets must be disjoint");
      }
    }
  }
  // Threshold j: required 1 where value >= j is fixed, required 0 where a
  // value < j is fixed; unspecified inputs are don't-care at every level.
  std::vector<Isf> thresholds;
  thresholds.reserve(value_sets.size() - 1);
  Bdd below = value_sets[0];
  Bdd above = mgr.bdd_false();
  for (std::size_t v = 1; v < value_sets.size(); ++v) above |= value_sets[v];
  for (std::size_t j = 1; j < value_sets.size(); ++j) {
    thresholds.emplace_back(above, below);
    if (j < value_sets.size() - 1) {
      below |= value_sets[j];
      above -= value_sets[j];
    }
  }
  return MvIsf(std::move(thresholds));
}

MvIsf MvIsf::from_thresholds(std::vector<Isf> thresholds) {
  if (thresholds.empty()) throw std::invalid_argument("MvIsf: empty threshold chain");
  // The interval model requires a monotone chain: the requirement sets
  // shrink with j (Q_{j+1} <= Q_j) and the exclusion sets grow
  // (R_j <= R_{j+1}). This is exactly "every input's permissible values
  // form an interval [lo, hi]" and is what makes a nested (monotone)
  // realization always possible.
  for (std::size_t j = 0; j + 1 < thresholds.size(); ++j) {
    if (!thresholds[j + 1].q().implies(thresholds[j].q()) ||
        !thresholds[j].r().implies(thresholds[j + 1].r())) {
      throw std::invalid_argument("MvIsf: threshold chain is not monotone");
    }
  }
  return MvIsf(std::move(thresholds));
}

bool MvIsf::value_allowed(const std::vector<bool>& input, unsigned value) const {
  BddManager& mgr = *manager();
  // Permissible iff no threshold forces the other side: for j <= value the
  // function may be >= j (not in R_j); for j > value it may be < j (not in
  // Q_j).
  for (unsigned j = 1; j < num_values(); ++j) {
    if (j <= value) {
      if (mgr.eval(threshold(j).r(), input)) return false;
    } else {
      if (mgr.eval(threshold(j).q(), input)) return false;
    }
  }
  return true;
}

unsigned MvIsf::min_allowed(const std::vector<bool>& input) const {
  BddManager& mgr = *manager();
  unsigned lo = 0;
  for (unsigned j = 1; j < num_values(); ++j) {
    if (mgr.eval(threshold(j).q(), input)) lo = j;
  }
  return lo;
}

unsigned MvIsf::max_allowed(const std::vector<bool>& input) const {
  BddManager& mgr = *manager();
  for (unsigned j = 1; j < num_values(); ++j) {
    if (mgr.eval(threshold(j).r(), input)) return j - 1;
  }
  return num_values() - 1;
}

std::vector<unsigned> MvIsf::support() const {
  BddManager& mgr = *manager();
  std::vector<bool> seen(mgr.num_vars(), false);
  for (const Isf& t : thresholds_) {
    for (const unsigned v : mgr.support_vars(t.q(), t.r())) seen[v] = true;
  }
  std::vector<unsigned> result;
  for (unsigned v = 0; v < mgr.num_vars(); ++v) {
    if (seen[v]) result.push_back(v);
  }
  return result;
}

std::vector<Bdd> MvIsf::monotone_covers() const {
  // Realize bottom-up: the widest threshold first, every higher one inside
  // its predecessor by adding ~cover_{j-1} to the off-set. Consistency is
  // guaranteed by the monotone chain (Q_j <= Q_{j-1} <= cover_{j-1}).
  std::vector<Bdd> covers(thresholds_.size());
  for (std::size_t idx = 0; idx < thresholds_.size(); ++idx) {
    const Isf& t = thresholds_[idx];
    if (idx == 0) {
      covers[0] = t.any_cover();
    } else {
      covers[idx] = Isf(t.q(), t.r() | ~covers[idx - 1]).any_cover();
    }
  }
  return covers;
}

}  // namespace bidec
