// Multiple-valued logic extension (the paper's future work: "generalization
// of the algorithm for multi-valued logic with potential applications in
// datamining", citing Steinbach/Perkowski/Lang ISMVL'99).
//
// Model: functions over BINARY inputs with values in {0 .. k-1}, possibly
// incompletely specified with an *interval* of permissible values per input
// (the natural don't-care shape for MIN/MAX decomposition). A k-valued
// interval function is represented by its k-1 threshold ISFs
//    T_j = [F >= j],   j = 1 .. k-1,
// which form a monotone chain (T_1 >= T_2 >= ... pointwise). The key fact
// the decomposition exploits:
//    [MAX(a,b) >= j] = [a >= j] OR  [b >= j]
//    [MIN(a,b) >= j] = [a >= j] AND [b >= j]
// so a MAX (MIN) bi-decomposition of the MV function is exactly a
// simultaneous OR (AND) bi-decomposition of all thresholds with one common
// variable partition.
#ifndef BIDEC_MV_MV_ISF_H
#define BIDEC_MV_MV_ISF_H

#include <vector>

#include "isf/isf.h"

namespace bidec {

class MvIsf {
 public:
  MvIsf() = default;

  /// Completely specified k-valued function from its value partition:
  /// value_sets[v] = inputs mapped to value v. The sets must be disjoint;
  /// uncovered inputs are fully unspecified (any value permitted).
  [[nodiscard]] static MvIsf from_value_sets(BddManager& mgr,
                                             std::vector<Bdd> value_sets);

  /// Interval-specified function: on input x the permissible values are
  /// [lo(x), hi(x)] where lo(x) = max{v : x in at_least[v]} and
  /// hi(x) = min{v : x in at_most[v]} under the natural encodings
  /// at_least[j] = inputs where F >= j is REQUIRED (j = 1..k-1, monotone
  /// non-increasing) and at_most mirror. Construct directly from threshold
  /// ISFs; throws if the chain is not monotone/consistent.
  [[nodiscard]] static MvIsf from_thresholds(std::vector<Isf> thresholds);

  [[nodiscard]] bool is_valid() const noexcept { return !thresholds_.empty(); }
  /// Number of logic values k (thresholds + 1).
  [[nodiscard]] unsigned num_values() const noexcept {
    return static_cast<unsigned>(thresholds_.size()) + 1;
  }
  /// Threshold ISF of [F >= j], j in [1, num_values()-1].
  [[nodiscard]] const Isf& threshold(unsigned j) const { return thresholds_.at(j - 1); }
  [[nodiscard]] BddManager* manager() const { return thresholds_.front().manager(); }

  /// True iff assigning `value` at `input` is permissible.
  [[nodiscard]] bool value_allowed(const std::vector<bool>& input, unsigned value) const;
  /// Smallest / largest permissible value at `input`.
  [[nodiscard]] unsigned min_allowed(const std::vector<bool>& input) const;
  [[nodiscard]] unsigned max_allowed(const std::vector<bool>& input) const;

  /// Union of the thresholds' supports.
  [[nodiscard]] std::vector<unsigned> support() const;

  /// A compatible completely specified MV function as a monotone family of
  /// threshold covers: covers[j-1] realizes [F >= j] and covers are nested.
  [[nodiscard]] std::vector<Bdd> monotone_covers() const;

 private:
  explicit MvIsf(std::vector<Isf> thresholds) : thresholds_(std::move(thresholds)) {}

  std::vector<Isf> thresholds_;
};

}  // namespace bidec

#endif  // BIDEC_MV_MV_ISF_H
