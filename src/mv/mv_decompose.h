// MIN/MAX bi-decomposition of multiple-valued interval functions, built on
// the threshold reduction (see mv_isf.h): a MAX split exists iff every
// threshold is OR-bi-decomposable with one shared variable partition, and
// the component intervals are the per-threshold Theorem 3/4 derivations,
// which remain a monotone chain.
#ifndef BIDEC_MV_MV_DECOMPOSE_H
#define BIDEC_MV_MV_DECOMPOSE_H

#include <optional>
#include <span>

#include "bidec/grouping.h"
#include "mv/mv_isf.h"
#include "netlist/netlist.h"

namespace bidec {

enum class MvGate { kMax, kMin };

/// MAX-decomposability with private sets (xa, xb): Theorem 1 on every
/// threshold level under the same partition.
[[nodiscard]] bool check_max_decomposable(const MvIsf& f, std::span<const unsigned> xa,
                                          std::span<const unsigned> xb);
[[nodiscard]] bool check_min_decomposable(const MvIsf& f, std::span<const unsigned> xa,
                                          std::span<const unsigned> xb);

/// Component A of a MAX split: per-threshold Theorem 3. The result is again
/// a monotone interval function over (X_A, X_C).
[[nodiscard]] MvIsf derive_max_component_a(const MvIsf& f, std::span<const unsigned> xa,
                                           std::span<const unsigned> xb);
/// Component B of a MAX split given the realized monotone covers of A
/// (per-threshold Theorem 4).
[[nodiscard]] MvIsf derive_max_component_b(const MvIsf& f, std::span<const Bdd> fa_covers,
                                           std::span<const unsigned> xa);
[[nodiscard]] MvIsf derive_min_component_a(const MvIsf& f, std::span<const unsigned> xa,
                                           std::span<const unsigned> xb);
[[nodiscard]] MvIsf derive_min_component_b(const MvIsf& f, std::span<const Bdd> fa_covers,
                                           std::span<const unsigned> xa);

struct MvGrouping {
  VarGrouping grouping;
  MvGate gate = MvGate::kMax;
};

/// Greedy grouping search (Figs. 5/6 applied to the simultaneous check).
[[nodiscard]] std::optional<MvGrouping> find_best_mv_grouping(
    const MvIsf& f, std::span<const unsigned> support, const BidecOptions& options);

/// Result of realizing an MV function: one binary netlist whose outputs are
/// the monotone threshold functions t_1 >= t_2 >= ...; the MV value of an
/// input is the number of asserted outputs. A MAX (MIN) MV gate corresponds
/// to a per-threshold OR (AND) of two such bundles.
struct MvRealization {
  Netlist netlist;                 ///< outputs "t1", "t2", ...
  std::size_t max_splits = 0;      ///< MV-level MAX decompositions taken
  std::size_t min_splits = 0;
};

/// Evaluate the MV value of `input` under a threshold-bundle netlist.
[[nodiscard]] unsigned mv_evaluate(const Netlist& net, const std::vector<bool>& input);

/// Decompose an MV interval function: applies MV-level MAX/MIN splits while
/// they exist (recursively, like Fig. 7 lifted to MV), then realizes the
/// remaining components' thresholds with the binary bi-decomposer sharing
/// one netlist and component cache.
[[nodiscard]] MvRealization decompose_mv(const MvIsf& f,
                                         const BidecOptions& options = {});

}  // namespace bidec

#endif  // BIDEC_MV_MV_DECOMPOSE_H
