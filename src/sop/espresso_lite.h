// A compact reimplementation of the espresso EXPAND / IRREDUNDANT / REDUCE
// loop. This is the "simplify" step of the SIS-like baseline flow the paper
// compares against (SIS ran "resub -a; simplify -m" before mapping).
// Heuristic, not exact: quality is espresso-like, runtime is polynomial in
// cover size per iteration.
#ifndef BIDEC_SOP_ESPRESSO_LITE_H
#define BIDEC_SOP_ESPRESSO_LITE_H

#include "sop/cover.h"

namespace bidec {

struct EspressoResult {
  Cover cover;
  std::size_t iterations = 0;
};

/// Minimize `on` against the don't-care cover `dc`. The result covers every
/// minterm of `on`, no minterm of the implicit off-set, and is irredundant.
[[nodiscard]] EspressoResult espresso_lite(const Cover& on, const Cover& dc);

/// Single passes, exposed for unit tests.
[[nodiscard]] Cover espresso_expand(const Cover& on, const Cover& off);
[[nodiscard]] Cover espresso_irredundant(const Cover& on, const Cover& dc);
[[nodiscard]] Cover espresso_reduce(const Cover& on, const Cover& dc);

}  // namespace bidec

#endif  // BIDEC_SOP_ESPRESSO_LITE_H
