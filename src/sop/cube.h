// Cubes (products of literals) over n variables, stored as positive/negative
// literal bitmasks. This is the data type of the two-level engine used by
// the SIS-like baseline (espresso-lite minimization and factoring).
#ifndef BIDEC_SOP_CUBE_H
#define BIDEC_SOP_CUBE_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "bdd/bdd.h"  // for CubeLits interop

namespace bidec {

class Cube {
 public:
  /// The universal cube (no literals) over `num_vars` variables.
  explicit Cube(unsigned num_vars);

  /// Parse from espresso notation: one char per variable, '0'/'1'/'-'.
  [[nodiscard]] static Cube from_string(const std::string& s);
  [[nodiscard]] static Cube from_lits(const CubeLits& lits);

  [[nodiscard]] unsigned num_vars() const noexcept { return num_vars_; }

  /// Literal of variable v: -1 absent, 0 negative, 1 positive.
  [[nodiscard]] int literal(unsigned v) const noexcept;
  void set_literal(unsigned v, bool positive) noexcept;
  void clear_literal(unsigned v) noexcept;

  [[nodiscard]] unsigned num_literals() const noexcept;
  [[nodiscard]] bool is_universal() const noexcept { return num_literals() == 0; }

  /// True iff this cube's set of minterms contains the other's.
  [[nodiscard]] bool contains(const Cube& other) const noexcept;
  /// True iff the two cubes share at least one minterm (no conflicting var).
  [[nodiscard]] bool intersects(const Cube& other) const noexcept;
  /// Product of two cubes; nullopt when they conflict in some variable.
  [[nodiscard]] std::optional<Cube> intersect(const Cube& other) const;
  /// Number of variables where the cubes have opposite literals.
  [[nodiscard]] unsigned distance(const Cube& other) const noexcept;
  /// Smallest cube containing both (literal-wise union of minterm sets).
  [[nodiscard]] Cube supercube(const Cube& other) const;

  /// True iff the cube contains the minterm whose bit v is (m >> v) & 1.
  [[nodiscard]] bool contains_minterm(std::uint64_t m) const noexcept;

  /// Cofactor w.r.t. v = val: nullopt if the cube requires v != val,
  /// otherwise the cube with v's literal dropped.
  [[nodiscard]] std::optional<Cube> cofactor(unsigned v, bool val) const;

  [[nodiscard]] bool operator==(const Cube& other) const noexcept;

  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] CubeLits to_lits() const;
  [[nodiscard]] Bdd to_bdd(BddManager& mgr) const;

 private:
  unsigned num_vars_;
  std::vector<std::uint64_t> pos_;
  std::vector<std::uint64_t> neg_;
};

}  // namespace bidec

#endif  // BIDEC_SOP_CUBE_H
