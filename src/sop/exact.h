// Exact two-level minimization (Quine-McCluskey prime generation plus
// branch-and-bound covering). Exponential; intended for functions of up to
// ~10 variables, where it serves as the golden quality reference for
// espresso-lite in tests and benches.
#ifndef BIDEC_SOP_EXACT_H
#define BIDEC_SOP_EXACT_H

#include "sop/cover.h"
#include "tt/truth_table.h"

namespace bidec {

/// All prime implicants of the interval [on, on | dc].
[[nodiscard]] std::vector<Cube> prime_implicants(const TruthTable& on, const TruthTable& dc);

/// A minimum-cube-count cover of `on` using only care minterms (don't-cares
/// may be covered for free). Ties are broken toward fewer literals.
[[nodiscard]] Cover exact_minimum_sop(const TruthTable& on, const TruthTable& dc);

/// Just the minimum cube count (slightly cheaper than materializing).
[[nodiscard]] std::size_t exact_minimum_cube_count(const TruthTable& on,
                                                   const TruthTable& dc);

}  // namespace bidec

#endif  // BIDEC_SOP_EXACT_H
