// Covers (cube lists) with the classical unate-recursive operations:
// tautology checking, complementation, sharp, cube-cover containment.
// These are the primitives espresso-lite and the factoring pass build on.
#ifndef BIDEC_SOP_COVER_H
#define BIDEC_SOP_COVER_H

#include <span>

#include "sop/cube.h"

namespace bidec {

class Cover {
 public:
  explicit Cover(unsigned num_vars) : num_vars_(num_vars) {}
  Cover(unsigned num_vars, std::vector<Cube> cubes)
      : num_vars_(num_vars), cubes_(std::move(cubes)) {}

  /// Cover with a single universal cube (constant 1).
  [[nodiscard]] static Cover universe(unsigned num_vars);
  /// Parse one cube string per line element.
  [[nodiscard]] static Cover from_strings(std::span<const std::string> rows);
  /// Extract a cover from a BDD interval via ISOP.
  [[nodiscard]] static Cover from_bdd(BddManager& mgr, const Bdd& lower, const Bdd& upper);

  [[nodiscard]] unsigned num_vars() const noexcept { return num_vars_; }
  [[nodiscard]] std::size_t size() const noexcept { return cubes_.size(); }
  [[nodiscard]] bool empty() const noexcept { return cubes_.empty(); }
  [[nodiscard]] const Cube& cube(std::size_t i) const { return cubes_[i]; }
  [[nodiscard]] const std::vector<Cube>& cubes() const noexcept { return cubes_; }
  [[nodiscard]] std::vector<Cube>& cubes() noexcept { return cubes_; }
  void add(Cube c) { cubes_.push_back(std::move(c)); }

  [[nodiscard]] std::size_t literal_count() const noexcept;
  [[nodiscard]] bool eval(std::uint64_t minterm) const noexcept;

  /// Unate-recursive tautology check.
  [[nodiscard]] bool is_tautology() const;
  /// True iff this cover evaluates to 1 on every minterm of `c`.
  [[nodiscard]] bool covers_cube(const Cube& c) const;
  /// Cofactor w.r.t. a cube (Shannon cofactor of the cover).
  [[nodiscard]] Cover cofactor(const Cube& c) const;
  [[nodiscard]] Cover cofactor(unsigned v, bool val) const;
  /// Recursive complement.
  [[nodiscard]] Cover complement() const;
  /// this AND NOT(cube) as a cover (disjoint sharp).
  [[nodiscard]] Cover sharp_cube(const Cube& c) const;

  /// Remove cubes contained in another cube of the cover.
  void remove_single_cube_containment();

  [[nodiscard]] Bdd to_bdd(BddManager& mgr) const;

  /// The variable appearing in the most cubes with both polarities (most
  /// binate); returns num_vars() if the cover is unate.
  [[nodiscard]] unsigned most_binate_variable() const;

 private:
  unsigned num_vars_;
  std::vector<Cube> cubes_;
};

}  // namespace bidec

#endif  // BIDEC_SOP_COVER_H
