#include "sop/espresso_lite.h"

#include <algorithm>

namespace bidec {

namespace {

/// True iff `c` intersects no cube of `off` (i.e. c is an implicant of
/// on+dc).
bool disjoint_from(const Cube& c, const Cover& off) {
  return std::none_of(off.cubes().begin(), off.cubes().end(),
                      [&c](const Cube& o) { return c.intersects(o); });
}

}  // namespace

Cover espresso_expand(const Cover& on, const Cover& off) {
  Cover result(on.num_vars());
  // Expand large cubes first so they absorb the small ones.
  std::vector<Cube> order = on.cubes();
  std::sort(order.begin(), order.end(), [](const Cube& a, const Cube& b) {
    return a.num_literals() < b.num_literals();
  });
  for (Cube c : order) {
    // Already absorbed by an expanded cube?
    const bool absorbed =
        std::any_of(result.cubes().begin(), result.cubes().end(),
                    [&c](const Cube& r) { return r.contains(c); });
    if (absorbed) continue;
    // Raise literals one at a time while the cube stays off-set-free.
    for (unsigned v = 0; v < on.num_vars(); ++v) {
      if (c.literal(v) < 0) continue;
      Cube raised = c;
      raised.clear_literal(v);
      if (disjoint_from(raised, off)) c = raised;
    }
    result.add(std::move(c));
  }
  result.remove_single_cube_containment();
  return result;
}

Cover espresso_irredundant(const Cover& on, const Cover& dc) {
  // Greedy: drop any cube covered by the rest of the cover plus don't-cares.
  std::vector<Cube> kept = on.cubes();
  // Try to drop large-literal (small) cubes first.
  std::sort(kept.begin(), kept.end(), [](const Cube& a, const Cube& b) {
    return a.num_literals() > b.num_literals();
  });
  for (std::size_t i = 0; i < kept.size();) {
    Cover rest(on.num_vars());
    for (std::size_t j = 0; j < kept.size(); ++j) {
      if (j != i) rest.add(kept[j]);
    }
    for (const Cube& d : dc.cubes()) rest.add(d);
    if (rest.covers_cube(kept[i])) {
      kept.erase(kept.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
  return Cover(on.num_vars(), std::move(kept));
}

Cover espresso_reduce(const Cover& on, const Cover& dc) {
  // Shrink each cube to the supercube of its essential part (the minterms
  // no other cube and no don't-care covers), enabling the next expand to
  // move in a different direction.
  std::vector<Cube> cubes = on.cubes();
  for (std::size_t i = 0; i < cubes.size(); ++i) {
    Cover others(on.num_vars());
    for (std::size_t j = 0; j < cubes.size(); ++j) {
      if (j != i) others.add(cubes[j]);
    }
    for (const Cube& d : dc.cubes()) others.add(d);
    // Essential part: cube_i minus everything else, as a cover.
    Cover essential(on.num_vars());
    essential.add(cubes[i]);
    for (const Cube& o : others.cubes()) {
      if (const auto clipped = o.intersect(cubes[i])) {
        essential = essential.sharp_cube(*clipped);
      }
      if (essential.empty()) break;
    }
    if (essential.empty()) continue;  // fully redundant; irredundant removes it
    Cube shrunk = essential.cube(0);
    for (std::size_t k = 1; k < essential.size(); ++k) {
      shrunk = shrunk.supercube(essential.cube(k));
    }
    cubes[i] = shrunk;
  }
  return Cover(on.num_vars(), std::move(cubes));
}

EspressoResult espresso_lite(const Cover& on, const Cover& dc) {
  Cover off_builder(on.num_vars());
  for (const Cube& c : on.cubes()) off_builder.add(c);
  for (const Cube& d : dc.cubes()) off_builder.add(d);
  const Cover off = off_builder.complement();

  Cover current = on;
  current.remove_single_cube_containment();
  std::size_t best_cost = current.size() * 1000 + current.literal_count();
  EspressoResult result{current, 0};
  for (std::size_t iter = 0; iter < 16; ++iter) {
    current = espresso_expand(current, off);
    current = espresso_irredundant(current, dc);
    const std::size_t cost = current.size() * 1000 + current.literal_count();
    result.iterations = iter + 1;
    if (cost < best_cost) {
      best_cost = cost;
      result.cover = current;
    } else {
      break;
    }
    current = espresso_reduce(current, dc);
  }
  return result;
}

}  // namespace bidec
