#include "sop/cover.h"

#include <algorithm>
#include <stdexcept>

namespace bidec {

Cover Cover::universe(unsigned num_vars) {
  Cover c(num_vars);
  c.add(Cube(num_vars));
  return c;
}

Cover Cover::from_strings(std::span<const std::string> rows) {
  if (rows.empty()) throw std::invalid_argument("Cover::from_strings: empty");
  Cover c(static_cast<unsigned>(rows.front().size()));
  for (const std::string& row : rows) c.add(Cube::from_string(row));
  return c;
}

Cover Cover::from_bdd(BddManager& mgr, const Bdd& lower, const Bdd& upper) {
  Cover c(mgr.num_vars());
  for (const CubeLits& lits : mgr.isop(lower, upper)) c.add(Cube::from_lits(lits));
  return c;
}

std::size_t Cover::literal_count() const noexcept {
  std::size_t n = 0;
  for (const Cube& c : cubes_) n += c.num_literals();
  return n;
}

bool Cover::eval(std::uint64_t minterm) const noexcept {
  return std::any_of(cubes_.begin(), cubes_.end(),
                     [minterm](const Cube& c) { return c.contains_minterm(minterm); });
}

unsigned Cover::most_binate_variable() const {
  unsigned best = num_vars_;
  long best_score = -1;
  for (unsigned v = 0; v < num_vars_; ++v) {
    long pos = 0, neg = 0;
    for (const Cube& c : cubes_) {
      const int lit = c.literal(v);
      if (lit == 1) ++pos;
      if (lit == 0) ++neg;
    }
    if (pos == 0 || neg == 0) continue;  // unate in v
    const long score = pos + neg;
    if (score > best_score) {
      best_score = score;
      best = v;
    }
  }
  return best;
}

Cover Cover::cofactor(unsigned v, bool val) const {
  Cover r(num_vars_);
  for (const Cube& c : cubes_) {
    if (auto cf = c.cofactor(v, val)) r.add(std::move(*cf));
  }
  return r;
}

Cover Cover::cofactor(const Cube& cube) const {
  Cover r(num_vars_);
  for (const Cube& c : cubes_) {
    if (!c.intersects(cube)) continue;
    Cube cf = c;
    for (unsigned v = 0; v < num_vars_; ++v) {
      if (cube.literal(v) >= 0) cf.clear_literal(v);
    }
    r.add(std::move(cf));
  }
  return r;
}

bool Cover::is_tautology() const {
  // Fast exits.
  for (const Cube& c : cubes_) {
    if (c.is_universal()) return true;
  }
  if (cubes_.empty()) return false;

  const unsigned v = most_binate_variable();
  if (v == num_vars_) {
    // Unate cover: tautology iff it contains the universal cube (already
    // checked above).
    return false;
  }
  return cofactor(v, false).is_tautology() && cofactor(v, true).is_tautology();
}

bool Cover::covers_cube(const Cube& c) const { return cofactor(c).is_tautology(); }

Cover Cover::complement() const {
  // Base cases.
  for (const Cube& c : cubes_) {
    if (c.is_universal()) return Cover(num_vars_);  // complement of 1 is 0
  }
  if (cubes_.empty()) return universe(num_vars_);
  if (cubes_.size() == 1) {
    // DeMorgan on one cube: one cube per complemented literal.
    Cover r(num_vars_);
    for (unsigned v = 0; v < num_vars_; ++v) {
      const int lit = cubes_[0].literal(v);
      if (lit < 0) continue;
      Cube c(num_vars_);
      c.set_literal(v, lit == 0);
      r.add(std::move(c));
    }
    return r;
  }

  unsigned v = most_binate_variable();
  if (v == num_vars_) {
    // Unate cover: split on any variable that appears at all.
    for (unsigned u = 0; u < num_vars_; ++u) {
      const bool used = std::any_of(cubes_.begin(), cubes_.end(),
                                    [u](const Cube& c) { return c.literal(u) >= 0; });
      if (used) {
        v = u;
        break;
      }
    }
    if (v == num_vars_) return Cover(num_vars_);  // all-universal handled above
  }

  Cover lo = cofactor(v, false).complement();
  Cover hi = cofactor(v, true).complement();
  Cover r(num_vars_);
  for (Cube c : lo.cubes()) {
    c.set_literal(v, false);
    r.add(std::move(c));
  }
  for (Cube c : hi.cubes()) {
    c.set_literal(v, true);
    r.add(std::move(c));
  }
  r.remove_single_cube_containment();
  return r;
}

Cover Cover::sharp_cube(const Cube& cube) const {
  Cover r(num_vars_);
  for (const Cube& c : cubes_) {
    if (!c.intersects(cube)) {
      r.add(c);
      continue;
    }
    // c & ~cube: peel one conflicting-free literal of `cube` at a time.
    Cube rest = c;
    for (unsigned v = 0; v < num_vars_; ++v) {
      const int lit = cube.literal(v);
      if (lit < 0) continue;
      if (rest.literal(v) >= 0) continue;  // already fixed consistently
      Cube piece = rest;
      piece.set_literal(v, lit == 0);  // opposite polarity escapes `cube`
      r.add(std::move(piece));
      rest.set_literal(v, lit == 1);
    }
    // The final `rest` lies fully inside `cube` and is dropped.
  }
  r.remove_single_cube_containment();
  return r;
}

void Cover::remove_single_cube_containment() {
  std::vector<Cube> kept;
  for (std::size_t i = 0; i < cubes_.size(); ++i) {
    bool contained = false;
    for (std::size_t j = 0; j < cubes_.size() && !contained; ++j) {
      if (i == j) continue;
      if (cubes_[j].contains(cubes_[i])) {
        // Break ties between identical cubes by index.
        contained = !(cubes_[i].contains(cubes_[j]) && i < j);
      }
    }
    if (!contained) kept.push_back(cubes_[i]);
  }
  cubes_.swap(kept);
}

Bdd Cover::to_bdd(BddManager& mgr) const {
  Bdd sum = mgr.bdd_false();
  for (const Cube& c : cubes_) sum |= c.to_bdd(mgr);
  return sum;
}

}  // namespace bidec
