#include "sop/exact.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <set>
#include <stdexcept>

namespace bidec {

namespace {

/// Quine-McCluskey cube: `value` holds the fixed bits, `mask` marks
/// don't-care positions (mask bit set = variable absent from the cube).
struct QmCube {
  std::uint32_t value = 0;
  std::uint32_t mask = 0;
  auto operator<=>(const QmCube&) const = default;
};

Cube to_cube(const QmCube& q, unsigned num_vars) {
  Cube c(num_vars);
  for (unsigned v = 0; v < num_vars; ++v) {
    if ((q.mask >> v) & 1) continue;
    c.set_literal(v, (q.value >> v) & 1);
  }
  return c;
}

}  // namespace

std::vector<Cube> prime_implicants(const TruthTable& on, const TruthTable& dc) {
  const unsigned nv = on.num_vars();
  if (nv > 16) throw std::invalid_argument("prime_implicants: too many variables");
  const TruthTable care = on | dc;

  std::set<QmCube> current;
  for (std::uint64_t m = 0; m < care.num_minterms(); ++m) {
    if (care.get(m)) current.insert(QmCube{static_cast<std::uint32_t>(m), 0});
  }

  std::vector<Cube> primes;
  while (!current.empty()) {
    std::set<QmCube> next;
    std::set<QmCube> merged;
    // Group by mask: only same-shape cubes can merge.
    for (auto it = current.begin(); it != current.end(); ++it) {
      for (auto jt = std::next(it); jt != current.end(); ++jt) {
        if (it->mask != jt->mask) continue;
        const std::uint32_t diff = it->value ^ jt->value;
        if (__builtin_popcount(diff) != 1) continue;
        next.insert(QmCube{it->value & ~diff, it->mask | diff});
        merged.insert(*it);
        merged.insert(*jt);
      }
    }
    for (const QmCube& q : current) {
      if (merged.count(q) == 0) primes.push_back(to_cube(q, nv));
    }
    current.swap(next);
  }
  return primes;
}

namespace {

/// Branch-and-bound minimum unate covering: rows = on-set minterms, columns
/// = primes. Returns indices of the chosen primes.
class MinCover {
 public:
  MinCover(std::vector<std::vector<std::size_t>> rows, std::size_t num_columns)
      : rows_(std::move(rows)), num_columns_(num_columns) {}

  std::vector<std::size_t> solve() {
    best_.assign(num_columns_, 0);  // sentinel: "all columns" upper bound
    std::iota(best_.begin(), best_.end(), std::size_t{0});
    std::vector<std::size_t> chosen;
    std::vector<bool> covered(rows_.size(), false);
    branch(chosen, covered);
    return best_;
  }

 private:
  void branch(std::vector<std::size_t>& chosen, std::vector<bool>& covered) {
    if (chosen.size() + 1 > best_.size()) return;  // bound (+1: need >= 1 more)
    // Find the uncovered row with the fewest choices (fail-first).
    std::size_t pick = rows_.size();
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      if (covered[r]) continue;
      if (pick == rows_.size() || rows_[r].size() < rows_[pick].size()) pick = r;
    }
    if (pick == rows_.size()) {
      if (chosen.size() < best_.size()) best_ = chosen;
      return;
    }
    if (chosen.size() + 1 >= best_.size()) return;  // cannot improve
    for (const std::size_t col : rows_[pick]) {
      std::vector<bool> saved = covered;
      for (std::size_t r = 0; r < rows_.size(); ++r) {
        if (!covered[r] &&
            std::find(rows_[r].begin(), rows_[r].end(), col) != rows_[r].end()) {
          covered[r] = true;
        }
      }
      chosen.push_back(col);
      branch(chosen, covered);
      chosen.pop_back();
      covered = std::move(saved);
    }
  }

  std::vector<std::vector<std::size_t>> rows_;
  std::size_t num_columns_;
  std::vector<std::size_t> best_;
};

}  // namespace

Cover exact_minimum_sop(const TruthTable& on, const TruthTable& dc) {
  const unsigned nv = on.num_vars();
  const std::vector<Cube> primes = prime_implicants(on, dc);
  if (on.is_zero()) return Cover(nv);

  // Covering table: one row per on-set minterm.
  std::vector<std::vector<std::size_t>> rows;
  for (std::uint64_t m = 0; m < on.num_minterms(); ++m) {
    if (!on.get(m)) continue;
    std::vector<std::size_t> cols;
    for (std::size_t p = 0; p < primes.size(); ++p) {
      if (primes[p].contains_minterm(m)) cols.push_back(p);
    }
    rows.push_back(std::move(cols));
  }

  MinCover solver(std::move(rows), primes.size());
  const std::vector<std::size_t> chosen = solver.solve();
  Cover result(nv);
  for (const std::size_t p : chosen) result.add(primes[p]);
  return result;
}

std::size_t exact_minimum_cube_count(const TruthTable& on, const TruthTable& dc) {
  return exact_minimum_sop(on, dc).size();
}

}  // namespace bidec
