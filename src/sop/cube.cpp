#include "sop/cube.h"

#include <stdexcept>

namespace bidec {

namespace {
std::size_t word_count(unsigned num_vars) { return (num_vars + 63) / 64; }
}  // namespace

Cube::Cube(unsigned num_vars)
    : num_vars_(num_vars), pos_(word_count(num_vars), 0), neg_(word_count(num_vars), 0) {}

Cube Cube::from_string(const std::string& s) {
  Cube c(static_cast<unsigned>(s.size()));
  for (unsigned v = 0; v < s.size(); ++v) {
    if (s[v] == '1') {
      c.set_literal(v, true);
    } else if (s[v] == '0') {
      c.set_literal(v, false);
    } else if (s[v] != '-') {
      throw std::invalid_argument("Cube::from_string: bad character");
    }
  }
  return c;
}

Cube Cube::from_lits(const CubeLits& lits) {
  Cube c(static_cast<unsigned>(lits.size()));
  for (unsigned v = 0; v < lits.size(); ++v) {
    if (lits[v] >= 0) c.set_literal(v, lits[v] == 1);
  }
  return c;
}

int Cube::literal(unsigned v) const noexcept {
  const std::uint64_t bit = std::uint64_t{1} << (v & 63);
  if (pos_[v >> 6] & bit) return 1;
  if (neg_[v >> 6] & bit) return 0;
  return -1;
}

void Cube::set_literal(unsigned v, bool positive) noexcept {
  const std::uint64_t bit = std::uint64_t{1} << (v & 63);
  if (positive) {
    pos_[v >> 6] |= bit;
    neg_[v >> 6] &= ~bit;
  } else {
    neg_[v >> 6] |= bit;
    pos_[v >> 6] &= ~bit;
  }
}

void Cube::clear_literal(unsigned v) noexcept {
  const std::uint64_t bit = std::uint64_t{1} << (v & 63);
  pos_[v >> 6] &= ~bit;
  neg_[v >> 6] &= ~bit;
}

unsigned Cube::num_literals() const noexcept {
  unsigned n = 0;
  for (std::size_t w = 0; w < pos_.size(); ++w) {
    n += static_cast<unsigned>(__builtin_popcountll(pos_[w] | neg_[w]));
  }
  return n;
}

bool Cube::contains(const Cube& other) const noexcept {
  // Every literal of this cube must appear (same polarity) in `other`.
  for (std::size_t w = 0; w < pos_.size(); ++w) {
    if ((pos_[w] & ~other.pos_[w]) != 0) return false;
    if ((neg_[w] & ~other.neg_[w]) != 0) return false;
  }
  return true;
}

bool Cube::intersects(const Cube& other) const noexcept {
  for (std::size_t w = 0; w < pos_.size(); ++w) {
    if ((pos_[w] & other.neg_[w]) != 0) return false;
    if ((neg_[w] & other.pos_[w]) != 0) return false;
  }
  return true;
}

std::optional<Cube> Cube::intersect(const Cube& other) const {
  if (!intersects(other)) return std::nullopt;
  Cube r(num_vars_);
  for (std::size_t w = 0; w < pos_.size(); ++w) {
    r.pos_[w] = pos_[w] | other.pos_[w];
    r.neg_[w] = neg_[w] | other.neg_[w];
  }
  return r;
}

unsigned Cube::distance(const Cube& other) const noexcept {
  unsigned d = 0;
  for (std::size_t w = 0; w < pos_.size(); ++w) {
    d += static_cast<unsigned>(
        __builtin_popcountll((pos_[w] & other.neg_[w]) | (neg_[w] & other.pos_[w])));
  }
  return d;
}

Cube Cube::supercube(const Cube& other) const {
  Cube r(num_vars_);
  for (std::size_t w = 0; w < pos_.size(); ++w) {
    r.pos_[w] = pos_[w] & other.pos_[w];
    r.neg_[w] = neg_[w] & other.neg_[w];
  }
  return r;
}

bool Cube::contains_minterm(std::uint64_t m) const noexcept {
  for (unsigned v = 0; v < num_vars_; ++v) {
    const int lit = literal(v);
    if (lit < 0) continue;
    if (static_cast<int>((m >> v) & 1) != lit) return false;
  }
  return true;
}

std::optional<Cube> Cube::cofactor(unsigned v, bool val) const {
  const int lit = literal(v);
  if (lit >= 0 && lit != static_cast<int>(val)) return std::nullopt;
  Cube r = *this;
  r.clear_literal(v);
  return r;
}

bool Cube::operator==(const Cube& other) const noexcept {
  return num_vars_ == other.num_vars_ && pos_ == other.pos_ && neg_ == other.neg_;
}

std::string Cube::to_string() const {
  std::string s(num_vars_, '-');
  for (unsigned v = 0; v < num_vars_; ++v) {
    const int lit = literal(v);
    if (lit == 1) s[v] = '1';
    if (lit == 0) s[v] = '0';
  }
  return s;
}

CubeLits Cube::to_lits() const {
  CubeLits lits(num_vars_, -1);
  for (unsigned v = 0; v < num_vars_; ++v) {
    lits[v] = static_cast<signed char>(literal(v));
  }
  return lits;
}

Bdd Cube::to_bdd(BddManager& mgr) const { return mgr.make_cube(to_lits()); }

}  // namespace bidec
