// BDS-like BDD-structural synthesis. Real BDS (Yang/Ciesielski, DAC 2000)
// walks the shared ROBDD looking for *dominators*:
//   - a 1-dominator d (every path to terminal 1 passes through d) yields a
//     conjunctive split  F = F[d -> 0-replaced-by...] ... specifically
//     F = L & D with L = F with node d replaced by terminal 1, D = the
//     function rooted at d;
//   - a 0-dominator yields the disjunctive dual  F = L | D with L = F with
//     d replaced by terminal 0;
//   - complement-child nodes yield XOR splits;
// and falls back to Shannon/MUX expansion of the root variable. This file
// implements exactly that hierarchy, which is also the behaviour the paper
// conjectures for BDS ("applies only weak bi-decomposition": every split
// keeps one side's support unrestricted).
//
// Don't-cares are resolved up front with the restrict-based minimized
// cover, mirroring BDS's completely-specified view of the problem.
#include "baseline/bds_like.h"

#include <algorithm>
#include <array>
#include <optional>
#include <unordered_map>

namespace bidec {

namespace {

/// Two statements: GCC 12's -Wrestrict misfires on `prefix +
/// std::to_string(i)` once the string operator+ is inlined.
std::string numbered_name(const char* prefix, std::size_t i) {
  std::string s = prefix;
  s += std::to_string(i);
  return s;
}

/// Structural substitution: the BDD obtained from `f` by replacing the node
/// with id `target` by the constant `value`. Memoized per (root, call).
class NodeReplacer {
 public:
  NodeReplacer(BddManager& mgr, NodeId target, bool value)
      : mgr_(mgr), target_(target), value_(value) {}

  Bdd operator()(const Bdd& f) {
    if (f.id() == target_) return value_ ? mgr_.bdd_true() : mgr_.bdd_false();
    if (f.is_const()) return f;
    if (const auto it = memo_.find(f.id()); it != memo_.end()) return it->second;
    const Bdd lo = (*this)(f.low());
    const Bdd hi = (*this)(f.high());
    const Bdd r = mgr_.ite(mgr_.var(f.top_var()), hi, lo);
    memo_.emplace(f.id(), r);
    return r;
  }

 private:
  BddManager& mgr_;
  NodeId target_;
  bool value_;
  std::unordered_map<NodeId, Bdd> memo_;
};

/// Dominator detection by path counting: d is a 1-dominator of f iff every
/// diagram path from the root to terminal 1 passes through d, i.e.
/// (paths root->d) * (1-paths d->1) == (total 1-paths of f). Counts are
/// taken modulo two large primes (path counts overflow 64 bits on big
/// diagrams); the chosen candidate is then verified exactly with a node
/// replacement, so a (vanishingly unlikely) double collision cannot cause
/// a wrong netlist.
struct DominatorScan {
  std::vector<Bdd> one_dominators;   ///< nearest-to-root first
  std::vector<Bdd> zero_dominators;
};

DominatorScan scan_dominators(const Bdd& f) {
  constexpr std::uint64_t kP[2] = {1'000'000'007ull, 998'244'353ull};

  // Topological order, root first (DFS post-order reversed).
  std::vector<Bdd> topo;
  {
    std::unordered_map<NodeId, bool> done;
    std::vector<std::pair<Bdd, bool>> stack{{f, false}};
    while (!stack.empty()) {
      auto [g, expanded] = stack.back();
      stack.pop_back();
      if (g.is_const() || done[g.id()]) continue;
      if (expanded) {
        done[g.id()] = true;
        topo.push_back(g);
        continue;
      }
      stack.push_back({g, true});
      stack.push_back({g.low(), false});
      stack.push_back({g.high(), false});
    }
    std::reverse(topo.begin(), topo.end());  // root first
  }

  // Downward counts: paths to terminal 1 / terminal 0 (per prime).
  std::unordered_map<NodeId, std::array<std::uint64_t, 2>> ones, zeros, from_root;
  auto down = [&](const Bdd& g, auto& table, bool to_one) -> std::array<std::uint64_t, 2> {
    if (g.is_const()) {
      const bool hit = g.is_true() == to_one;
      return {hit ? 1ull : 0ull, hit ? 1ull : 0ull};
    }
    return table.at(g.id());
  };
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {  // leaves first
    const Bdd& g = *it;
    const auto lo1 = down(g.low(), ones, true), hi1 = down(g.high(), ones, true);
    const auto lo0 = down(g.low(), zeros, false), hi0 = down(g.high(), zeros, false);
    ones[g.id()] = {(lo1[0] + hi1[0]) % kP[0], (lo1[1] + hi1[1]) % kP[1]};
    zeros[g.id()] = {(lo0[0] + hi0[0]) % kP[0], (lo0[1] + hi0[1]) % kP[1]};
  }
  // Root-to-node path counts (topo order, root first).
  from_root[f.id()] = {1, 1};
  for (const Bdd& g : topo) {
    const auto cnt = from_root.at(g.id());
    for (const Bdd& child : {g.low(), g.high()}) {
      if (child.is_const()) continue;
      auto& slot = from_root[child.id()];
      slot[0] = (slot[0] + cnt[0]) % kP[0];
      slot[1] = (slot[1] + cnt[1]) % kP[1];
    }
  }

  const auto total1 = ones.at(f.id());
  const auto total0 = zeros.at(f.id());
  DominatorScan scan;
  for (const Bdd& g : topo) {
    if (g == f) continue;
    const auto up = from_root.at(g.id());
    const auto d1 = ones.at(g.id());
    const auto d0 = zeros.at(g.id());
    const bool dominates1 = (up[0] * d1[0]) % kP[0] == total1[0] &&
                            (up[1] * d1[1]) % kP[1] == total1[1];
    const bool dominates0 = (up[0] * d0[0]) % kP[0] == total0[0] &&
                            (up[1] * d0[1]) % kP[1] == total0[1];
    if (dominates1) scan.one_dominators.push_back(g);
    if (dominates0) scan.zero_dominators.push_back(g);
  }
  return scan;
}

class BdsBuilder {
 public:
  BdsBuilder(BddManager& mgr, Netlist& net, std::vector<SignalId> inputs)
      : mgr_(mgr), net_(net), inputs_(std::move(inputs)) {}

  SignalId build(const Bdd& f) {
    if (f.is_false()) return net_.get_const(false);
    if (f.is_true()) return net_.get_const(true);
    if (const auto it = memo_.find(f.id()); it != memo_.end()) return it->second;

    SignalId sig = kNoSignal;
    if (const auto split = find_dominator_split(f)) {
      const SignalId upper = build(split->upper);
      const SignalId lower = build(split->lower);
      sig = net_.add_gate(split->gate, upper, lower);
    } else {
      sig = build_mux(f);
    }
    memo_.emplace(f.id(), sig);
    keep_.push_back(f);
    return sig;
  }

 private:
  struct Split {
    Bdd upper;  ///< f with the dominator node replaced by a constant
    Bdd lower;  ///< the dominator's own function
    GateType gate;
  };

  std::optional<Split> find_dominator_split(const Bdd& f) {
    constexpr std::size_t kSizeCap = 50000;  // scan is linear; cap for safety
    if (f.dag_size() > kSizeCap) return std::nullopt;
    const DominatorScan scan = scan_dominators(f);
    // Nearest-to-root dominators give the smallest upper part.
    for (const Bdd& d : scan.one_dominators) {
      // Exact verification (the scan is probabilistic): replacing d with 0
      // must kill every 1-path.
      if (!NodeReplacer(mgr_, d.id(), false)(f).is_false()) continue;
      const Bdd upper = NodeReplacer(mgr_, d.id(), true)(f);
      if (upper.is_true() || upper.id() == f.id()) continue;  // degenerate
      return Split{upper, d, GateType::kAnd};
    }
    for (const Bdd& d : scan.zero_dominators) {
      if (!NodeReplacer(mgr_, d.id(), true)(f).is_true()) continue;
      const Bdd upper = NodeReplacer(mgr_, d.id(), false)(f);
      if (upper.is_false() || upper.id() == f.id()) continue;
      return Split{upper, d, GateType::kOr};
    }
    return std::nullopt;
  }

  SignalId build_mux(const Bdd& f) {
    const unsigned v = f.top_var();
    const SignalId x = inputs_[v];
    const Bdd lo_f = f.low(), hi_f = f.high();
    if (lo_f.is_false()) return net_.add_and(x, build(hi_f));
    if (lo_f.is_true()) return net_.add_or(net_.add_not(x), build(hi_f));
    if (hi_f.is_false()) return net_.add_and(net_.add_not(x), build(lo_f));
    if (hi_f.is_true()) return net_.add_or(x, build(lo_f));
    if (hi_f == ~lo_f) return net_.add_xor(x, build(lo_f));  // x-split
    const SignalId lo = build(lo_f);
    const SignalId hi = build(hi_f);
    return net_.add_or(net_.add_and(x, hi), net_.add_and(net_.add_not(x), lo));
  }

  BddManager& mgr_;
  Netlist& net_;
  std::vector<SignalId> inputs_;
  std::unordered_map<NodeId, SignalId> memo_;
  std::vector<Bdd> keep_;  // pin memoized node ids across GC
};

}  // namespace

Netlist bds_like_synthesize(BddManager& mgr, std::span<const Isf> outputs,
                            const std::vector<std::string>& input_names,
                            const std::vector<std::string>& output_names,
                            bool absorb_inverters) {
  Netlist net;
  std::vector<SignalId> inputs;
  inputs.reserve(mgr.num_vars());
  for (unsigned v = 0; v < mgr.num_vars(); ++v) {
    const std::string name =
        v < input_names.size() ? input_names[v] : numbered_name("x", v);
    inputs.push_back(net.add_input(name));
  }

  BdsBuilder builder(mgr, net, inputs);
  for (std::size_t o = 0; o < outputs.size(); ++o) {
    const Bdd f = outputs[o].minimized_cover();
    const std::string name =
        o < output_names.size() ? output_names[o] : numbered_name("f", o);
    net.add_output(name, builder.build(f));
  }
  if (absorb_inverters) net.absorb_inverters();
  return net;
}

}  // namespace bidec
