// The BDS-like comparison point of the paper's Table 3: synthesis driven by
// the structure of the shared ROBDD. Every BDD node becomes a multiplexer
// realized with two-input gates (with the usual constant-child
// simplifications), so the netlist mirrors the diagram exactly -- the
// behaviour the paper conjectures BDS reduces to ("BDS applies only weak
// bi-decomposition"). The second ablation axis (weak-only bi-decomposition)
// lives in BidecOptions::use_strong.
#ifndef BIDEC_BASELINE_BDS_LIKE_H
#define BIDEC_BASELINE_BDS_LIKE_H

#include <span>
#include <string>
#include <vector>

#include "isf/isf.h"
#include "netlist/netlist.h"

namespace bidec {

/// Synthesize MUX netlists from the BDDs of the outputs (don't-cares are
/// resolved up front with each ISF's canonical cover, mirroring BDS's
/// completely-specified view of the problem).
[[nodiscard]] Netlist bds_like_synthesize(BddManager& mgr, std::span<const Isf> outputs,
                                          const std::vector<std::string>& input_names,
                                          const std::vector<std::string>& output_names,
                                          bool absorb_inverters = true);

}  // namespace bidec

#endif  // BIDEC_BASELINE_BDS_LIKE_H
