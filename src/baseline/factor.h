// Algebraic factoring of a two-level cover into a netlist of two-input
// gates (the "mapping" half of the SIS-like baseline): most-frequent-literal
// division, balanced AND/OR trees, shared input inverters via the netlist's
// structural hashing.
#ifndef BIDEC_BASELINE_FACTOR_H
#define BIDEC_BASELINE_FACTOR_H

#include <span>

#include "netlist/netlist.h"
#include "sop/cover.h"

namespace bidec {

/// Build a balanced tree of `gate` over `signals` (empty input yields the
/// neutral constant: 0 for OR/XOR, 1 for AND).
SignalId build_balanced_tree(Netlist& net, GateType gate, std::span<const SignalId> signals);

/// Factor `cover` into two-input gates over the given input signals
/// (input_signals[v] drives variable v). Returns the root signal.
SignalId factor_cover(Netlist& net, const Cover& cover,
                      std::span<const SignalId> input_signals);

}  // namespace bidec

#endif  // BIDEC_BASELINE_FACTOR_H
