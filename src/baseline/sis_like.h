// The SIS-like baseline flow of the paper's Table 2 comparison: two-level
// minimization (espresso-lite standing in for "simplify -m"), algebraic
// factoring, and mapping onto the two-input gate library. Like SIS in the
// paper's experiments, this flow never emits EXOR gates.
#ifndef BIDEC_BASELINE_SIS_LIKE_H
#define BIDEC_BASELINE_SIS_LIKE_H

#include <span>
#include <string>
#include <vector>

#include "io/pla.h"
#include "isf/isf.h"
#include "netlist/netlist.h"

namespace bidec {

struct SisLikeOptions {
  bool minimize = true;          ///< run espresso-lite before factoring
  bool absorb_inverters = true;  ///< merge inverters into NAND/NOR at the end
};

/// Synthesize a netlist for the given multi-output ISF specification.
[[nodiscard]] Netlist sis_like_synthesize(BddManager& mgr, std::span<const Isf> outputs,
                                          const std::vector<std::string>& input_names,
                                          const std::vector<std::string>& output_names,
                                          const SisLikeOptions& options = {});

/// Convenience entry running directly on a PLA file (the covers of the PLA
/// seed the minimizer, exactly how SIS consumed the benchmark files).
[[nodiscard]] Netlist sis_like_synthesize(BddManager& mgr, const PlaFile& pla,
                                          const SisLikeOptions& options = {});

}  // namespace bidec

#endif  // BIDEC_BASELINE_SIS_LIKE_H
