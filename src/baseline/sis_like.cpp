#include "baseline/sis_like.h"

#include "baseline/factor.h"
#include "sop/espresso_lite.h"

namespace bidec {

Netlist sis_like_synthesize(BddManager& mgr, std::span<const Isf> outputs,
                            const std::vector<std::string>& input_names,
                            const std::vector<std::string>& output_names,
                            const SisLikeOptions& options) {
  Netlist net;
  std::vector<SignalId> inputs;
  inputs.reserve(mgr.num_vars());
  for (unsigned v = 0; v < mgr.num_vars(); ++v) {
    const std::string name =
        v < input_names.size() ? input_names[v] : "x" + std::to_string(v);
    inputs.push_back(net.add_input(name));
  }

  for (std::size_t o = 0; o < outputs.size(); ++o) {
    const Isf& isf = outputs[o];
    // Seed cover from the interval (exploits don't-cares like espresso
    // would), then minimize against the explicit dc cover.
    Cover on = Cover::from_bdd(mgr, isf.q(), ~isf.r());
    if (options.minimize) {
      const Bdd dc_bdd = isf.dc();
      const Cover dc = Cover::from_bdd(mgr, dc_bdd, dc_bdd);
      on = espresso_lite(on, dc).cover;
    }
    const SignalId root = factor_cover(net, on, inputs);
    const std::string name =
        o < output_names.size() ? output_names[o] : "f" + std::to_string(o);
    net.add_output(name, root);
  }
  if (options.absorb_inverters) net.absorb_inverters();
  return net;
}

Netlist sis_like_synthesize(BddManager& mgr, const PlaFile& pla,
                            const SisLikeOptions& options) {
  std::vector<std::string> in_names, out_names;
  for (unsigned i = 0; i < pla.num_inputs; ++i) in_names.push_back(pla.input_name(i));
  for (unsigned o = 0; o < pla.num_outputs; ++o) out_names.push_back(pla.output_name(o));
  const std::vector<Isf> isfs = pla.to_isfs(mgr);
  return sis_like_synthesize(mgr, isfs, in_names, out_names, options);
}

}  // namespace bidec
