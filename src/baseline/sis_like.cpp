#include "baseline/sis_like.h"

#include "baseline/factor.h"
#include "sop/espresso_lite.h"

namespace bidec {

namespace {
/// Two statements: GCC 12's -Wrestrict misfires on `prefix +
/// std::to_string(i)` once the string operator+ is inlined.
std::string numbered_name(const char* prefix, std::size_t i) {
  std::string s = prefix;
  s += std::to_string(i);
  return s;
}
}  // namespace

Netlist sis_like_synthesize(BddManager& mgr, std::span<const Isf> outputs,
                            const std::vector<std::string>& input_names,
                            const std::vector<std::string>& output_names,
                            const SisLikeOptions& options) {
  Netlist net;
  std::vector<SignalId> inputs;
  inputs.reserve(mgr.num_vars());
  for (unsigned v = 0; v < mgr.num_vars(); ++v) {
    const std::string name =
        v < input_names.size() ? input_names[v] : numbered_name("x", v);
    inputs.push_back(net.add_input(name));
  }

  for (std::size_t o = 0; o < outputs.size(); ++o) {
    const Isf& isf = outputs[o];
    // Seed cover from the interval (exploits don't-cares like espresso
    // would), then minimize against the explicit dc cover.
    Cover on = Cover::from_bdd(mgr, isf.q(), ~isf.r());
    if (options.minimize) {
      const Bdd dc_bdd = isf.dc();
      const Cover dc = Cover::from_bdd(mgr, dc_bdd, dc_bdd);
      on = espresso_lite(on, dc).cover;
    }
    const SignalId root = factor_cover(net, on, inputs);
    const std::string name =
        o < output_names.size() ? output_names[o] : numbered_name("f", o);
    net.add_output(name, root);
  }
  if (options.absorb_inverters) net.absorb_inverters();
  return net;
}

Netlist sis_like_synthesize(BddManager& mgr, const PlaFile& pla,
                            const SisLikeOptions& options) {
  std::vector<std::string> in_names, out_names;
  for (unsigned i = 0; i < pla.num_inputs; ++i) in_names.push_back(pla.input_name(i));
  for (unsigned o = 0; o < pla.num_outputs; ++o) out_names.push_back(pla.output_name(o));
  const std::vector<Isf> isfs = pla.to_isfs(mgr);
  return sis_like_synthesize(mgr, isfs, in_names, out_names, options);
}

}  // namespace bidec
