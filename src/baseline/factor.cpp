#include "baseline/factor.h"

#include <algorithm>
#include <optional>

namespace bidec {

SignalId build_balanced_tree(Netlist& net, GateType gate,
                             std::span<const SignalId> signals) {
  if (signals.empty()) return net.get_const(gate == GateType::kAnd);
  std::vector<SignalId> level(signals.begin(), signals.end());
  while (level.size() > 1) {
    std::vector<SignalId> next;
    next.reserve((level.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(net.add_gate(gate, level[i], level[i + 1]));
    }
    if (level.size() % 2 == 1) next.push_back(level.back());
    level.swap(next);
  }
  return level.front();
}

namespace {

struct Literal {
  unsigned var;
  bool positive;
};

SignalId literal_signal(Netlist& net, std::span<const SignalId> inputs, Literal lit) {
  const SignalId s = inputs[lit.var];
  return lit.positive ? s : net.add_not(s);
}

SignalId cube_signal(Netlist& net, const Cube& c, std::span<const SignalId> inputs) {
  std::vector<SignalId> lits;
  for (unsigned v = 0; v < c.num_vars(); ++v) {
    const int lit = c.literal(v);
    if (lit >= 0) lits.push_back(literal_signal(net, inputs, Literal{v, lit == 1}));
  }
  return build_balanced_tree(net, GateType::kAnd, lits);
}

/// The literal occurring in the most cubes (at least two), or nullopt.
std::optional<Literal> best_divisor(const Cover& f) {
  std::optional<Literal> best;
  std::size_t best_count = 1;
  for (unsigned v = 0; v < f.num_vars(); ++v) {
    std::size_t pos = 0, neg = 0;
    for (const Cube& c : f.cubes()) {
      const int lit = c.literal(v);
      if (lit == 1) ++pos;
      if (lit == 0) ++neg;
    }
    if (pos > best_count) {
      best_count = pos;
      best = Literal{v, true};
    }
    if (neg > best_count) {
      best_count = neg;
      best = Literal{v, false};
    }
  }
  return best;
}

SignalId factor_rec(Netlist& net, const Cover& f, std::span<const SignalId> inputs) {
  if (f.empty()) return net.get_const(false);
  for (const Cube& c : f.cubes()) {
    if (c.is_universal()) return net.get_const(true);
  }
  if (f.size() == 1) return cube_signal(net, f.cube(0), inputs);

  const auto divisor = best_divisor(f);
  if (!divisor) {
    // No shared literal: a plain balanced OR of cube ANDs.
    std::vector<SignalId> terms;
    terms.reserve(f.size());
    for (const Cube& c : f.cubes()) terms.push_back(cube_signal(net, c, inputs));
    return build_balanced_tree(net, GateType::kOr, terms);
  }

  // F = lit * quotient + remainder.
  Cover quotient(f.num_vars());
  Cover remainder(f.num_vars());
  for (const Cube& c : f.cubes()) {
    if (c.literal(divisor->var) == static_cast<int>(divisor->positive)) {
      Cube q = c;
      q.clear_literal(divisor->var);
      quotient.add(std::move(q));
    } else {
      remainder.add(c);
    }
  }
  const SignalId lit = literal_signal(net, inputs, *divisor);
  const SignalId left = net.add_and(lit, factor_rec(net, quotient, inputs));
  if (remainder.empty()) return left;
  return net.add_or(left, factor_rec(net, remainder, inputs));
}

}  // namespace

SignalId factor_cover(Netlist& net, const Cover& cover,
                      std::span<const SignalId> input_signals) {
  return factor_rec(net, cover, input_signals);
}

}  // namespace bidec
