// Cross-job component reuse. The per-job ReuseCache shares cones between
// the outputs of one BiDecomposer; this interface shares them between
// *jobs*: realized components are exported as tiny manager-independent
// netlists keyed by their interval signature, and a later decomposition —
// in another manager, another worker thread, another client's job — can
// splice a cached component instead of recursing.
//
// The consumer side never trusts the cache. Every hit is re-validated by
// rebuilding the component's BDD in the *job's* manager and checking
// Theorem-6 compatibility against the job's own [Q, ~R] interval; an entry
// that fails (hash collision, torn write, deliberately poisoned by the
// fault injector) is reported through reject() and degrades to a miss, so
// a corrupt cache can cost performance but never a wrong netlist.
#ifndef BIDEC_BIDEC_SHARED_CACHE_H
#define BIDEC_BIDEC_SHARED_CACHE_H

#include <cstddef>
#include <optional>
#include <span>

#include "bidec/signature.h"
#include "netlist/netlist.h"

namespace bidec {

/// A cached component: a self-contained netlist whose primary input p is
/// the p-th support variable of the signature (positions, not manager
/// variable indices) and whose single output realizes the component.
struct SharedComponent {
  Netlist impl;
};

/// Sink/source for cross-job components. Implementations (the server's
/// sharded cache, test fakes) must be safe to call from multiple worker
/// threads concurrently.
class SharedComponentSink {
 public:
  virtual ~SharedComponentSink() = default;

  /// A component previously published under an equal signature, if any.
  virtual std::optional<SharedComponent> lookup(const ComponentSignature& sig) = 0;

  /// Offer a freshly realized component for future jobs.
  virtual void publish(const ComponentSignature& sig, const Netlist& impl) = 0;

  /// The entry returned for `sig` failed validation in the consuming job;
  /// the implementation should evict it.
  virtual void reject(const ComponentSignature& sig) = 0;
};

/// Extract the fanin cone of `root` as a positional component netlist:
/// input p of the result mirrors `inputs[p]` (a primary-input signal of
/// `net`). Returns nullopt if the cone reaches a primary input not listed
/// in `inputs` or contains more than `max_gates` nodes.
[[nodiscard]] std::optional<Netlist> extract_component(
    const Netlist& net, SignalId root, std::span<const SignalId> inputs,
    std::size_t max_gates);

/// Rebuild the component's function in `mgr`, reading input p as variable
/// `support[p]`. This is the validation half of a cache hit.
[[nodiscard]] Bdd component_to_bdd(BddManager& mgr, const Netlist& impl,
                                   std::span<const unsigned> support);

/// Replay the component's gates into `net`, substituting `inputs[p]` for
/// input p; returns the signal of the component's output. Gate creation
/// goes through the canonicalizing add_gate, so spliced cones participate
/// in structural hashing like natively built ones.
SignalId splice_component(Netlist& net, const Netlist& impl,
                          std::span<const SignalId> inputs);

/// Fault-injection helper: a functionally wrong copy of `impl` (its output
/// XOR-ed with input 0). Used to model a poisoned cache entry that a
/// consumer must catch by validation. XOR with an input — not an output
/// inverter — because Theorem-6 complement handling would accept an
/// inverted component as a legitimate complement hit.
[[nodiscard]] Netlist corrupt_component(const Netlist& impl);

}  // namespace bidec

#endif  // BIDEC_BIDEC_SHARED_CACHE_H
