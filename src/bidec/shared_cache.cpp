#include "bidec/shared_cache.h"

#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace bidec {

namespace {

/// Two statements: GCC 12's -Wrestrict misfires on `prefix +
/// std::to_string(i)` once the string operator+ is inlined.
std::string numbered_name(const char* prefix, std::size_t i) {
  std::string s = prefix;
  s += std::to_string(i);
  return s;
}

/// Replay the fanin cone of `root` into `out`, mapping old signal ids
/// through `map` (pre-seeded with the input substitutions). Returns the
/// new signal for `root`, or kNoSignal if the cone touches an unmapped
/// primary input or grows past `max_nodes` (0 = unbounded).
SignalId replay_cone(const Netlist& src, SignalId root, Netlist& out,
                     std::unordered_map<SignalId, SignalId>& map,
                     std::size_t max_nodes) {
  std::vector<SignalId> stack{root};
  std::size_t visited = 0;
  while (!stack.empty()) {
    const SignalId id = stack.back();
    if (map.contains(id)) {
      stack.pop_back();
      continue;
    }
    const Netlist::Node& n = src.node(id);
    switch (n.type) {
      case GateType::kInput:
        return kNoSignal;  // a PI that is not one of the substituted inputs
      case GateType::kConst0:
        map.emplace(id, out.get_const(false));
        stack.pop_back();
        continue;
      case GateType::kConst1:
        map.emplace(id, out.get_const(true));
        stack.pop_back();
        continue;
      default:
        break;
    }
    // Post-order, fanin0 first (LIFO: push fanin1 below fanin0), so the
    // replay creates gates in the same order the original recursion did —
    // splicing a cone yields the same node numbering as decomposing it.
    bool ready = true;
    if (gate_arity(n.type) == 2 && !map.contains(n.fanin1)) {
      stack.push_back(n.fanin1);
      ready = false;
    }
    if (!map.contains(n.fanin0)) {
      stack.push_back(n.fanin0);
      ready = false;
    }
    if (!ready) continue;
    if (max_nodes != 0 && ++visited > max_nodes) return kNoSignal;
    const SignalId b =
        gate_arity(n.type) == 2 ? map.at(n.fanin1) : kNoSignal;
    map.emplace(id, out.add_gate(n.type, map.at(n.fanin0), b));
    stack.pop_back();
  }
  return map.at(root);
}

}  // namespace

std::optional<Netlist> extract_component(const Netlist& net, SignalId root,
                                         std::span<const SignalId> inputs,
                                         std::size_t max_gates) {
  Netlist impl;
  std::unordered_map<SignalId, SignalId> map;
  for (std::size_t p = 0; p < inputs.size(); ++p) {
    map.emplace(inputs[p], impl.add_input(numbered_name("p", p)));
  }
  const SignalId out = replay_cone(net, root, impl, map, max_gates);
  if (out == kNoSignal) return std::nullopt;
  impl.add_output("f", out);
  return impl;
}

Bdd component_to_bdd(BddManager& mgr, const Netlist& impl,
                     std::span<const unsigned> support) {
  if (impl.num_inputs() != support.size() || impl.num_outputs() != 1) {
    throw std::invalid_argument("component_to_bdd: shape mismatch");
  }
  std::unordered_map<SignalId, Bdd> value;
  for (const SignalId id : impl.reachable_topo_order()) {
    const Netlist::Node& n = impl.node(id);
    switch (n.type) {
      case GateType::kInput:
        value.emplace(id, mgr.var(support[impl.input_index(id)]));
        break;
      case GateType::kConst0: value.emplace(id, mgr.bdd_false()); break;
      case GateType::kConst1: value.emplace(id, mgr.bdd_true()); break;
      case GateType::kBuf: value.emplace(id, value.at(n.fanin0)); break;
      case GateType::kNot: value.emplace(id, ~value.at(n.fanin0)); break;
      case GateType::kAnd:
        value.emplace(id, value.at(n.fanin0) & value.at(n.fanin1));
        break;
      case GateType::kOr:
        value.emplace(id, value.at(n.fanin0) | value.at(n.fanin1));
        break;
      case GateType::kXor:
        value.emplace(id, value.at(n.fanin0) ^ value.at(n.fanin1));
        break;
      case GateType::kNand:
        value.emplace(id, ~(value.at(n.fanin0) & value.at(n.fanin1)));
        break;
      case GateType::kNor:
        value.emplace(id, ~(value.at(n.fanin0) | value.at(n.fanin1)));
        break;
      case GateType::kXnor:
        value.emplace(id, ~(value.at(n.fanin0) ^ value.at(n.fanin1)));
        break;
    }
  }
  return value.at(impl.output_signal(0));
}

SignalId splice_component(Netlist& net, const Netlist& impl,
                          std::span<const SignalId> inputs) {
  if (impl.num_inputs() != inputs.size() || impl.num_outputs() != 1) {
    throw std::invalid_argument("splice_component: shape mismatch");
  }
  std::unordered_map<SignalId, SignalId> map;
  const std::vector<SignalId>& pis = impl.inputs();
  for (std::size_t p = 0; p < pis.size(); ++p) map.emplace(pis[p], inputs[p]);
  return replay_cone(impl, impl.output_signal(0), net, map, /*max_nodes=*/0);
}

Netlist corrupt_component(const Netlist& impl) {
  Netlist bad;
  std::vector<SignalId> ins;
  ins.reserve(impl.num_inputs());
  for (std::size_t p = 0; p < impl.num_inputs(); ++p) {
    ins.push_back(bad.add_input(numbered_name("p", p)));
  }
  const SignalId f = splice_component(bad, impl, ins);
  bad.add_output("f", bad.add_xor(f, ins.at(0)));
  return bad;
}

}  // namespace bidec
