#include "bidec/flow.h"

#include <algorithm>
#include <numeric>

#include "bdd/bdd_reorder.h"

namespace bidec {

const char* to_string(EngineSelect engine) noexcept {
  switch (engine) {
    case EngineSelect::kBdd: return "bdd";
    case EngineSelect::kSat: return "sat";
    case EngineSelect::kAuto: return "auto";
  }
  return "unknown";
}

std::optional<EngineSelect> parse_engine_select(std::string_view name) {
  if (name == "bdd") return EngineSelect::kBdd;
  if (name == "sat") return EngineSelect::kSat;
  if (name == "auto") return EngineSelect::kAuto;
  return std::nullopt;
}

namespace {
/// Two statements: GCC 12's -Wrestrict misfires on `prefix +
/// std::to_string(i)` once the string operator+ is inlined.
std::string numbered_name(const char* prefix, std::size_t i) {
  std::string s = prefix;
  s += std::to_string(i);
  return s;
}
}  // namespace

namespace {

/// Rebuild `net` with its primary inputs permuted back into the original
/// variable order: input slot `order[level]` of the result is driven by
/// what input slot `level` drove in `net`.
Netlist restore_input_order(const Netlist& net, std::span<const unsigned> order,
                            const std::vector<std::string>& input_names) {
  Netlist fresh;
  // Create inputs in original variable order first.
  std::vector<SignalId> orig_inputs;
  orig_inputs.reserve(order.size());
  for (unsigned v = 0; v < order.size(); ++v) {
    const std::string name =
        v < input_names.size() ? input_names[v] : numbered_name("x", v);
    orig_inputs.push_back(fresh.add_input(name));
  }
  std::vector<SignalId> map(net.num_nodes(), kNoSignal);
  for (std::size_t level = 0; level < net.num_inputs(); ++level) {
    map[net.inputs()[level]] = orig_inputs[order[level]];
  }
  for (const SignalId id : net.reachable_topo_order()) {
    const Netlist::Node& n = net.node(id);
    switch (n.type) {
      case GateType::kInput: break;
      case GateType::kConst0: map[id] = fresh.get_const(false); break;
      case GateType::kConst1: map[id] = fresh.get_const(true); break;
      default:
        map[id] = fresh.add_gate_native(n.type, map[n.fanin0],
                                        n.fanin1 != kNoSignal ? map[n.fanin1] : kNoSignal);
        break;
    }
  }
  for (std::size_t o = 0; o < net.num_outputs(); ++o) {
    fresh.add_output(net.output_name(o), map[net.output_signal(o)]);
  }
  return fresh;
}

}  // namespace

FlowResult synthesize_bidecomp(BddManager& mgr, std::span<const Isf> spec,
                               const std::vector<std::string>& input_names,
                               const std::vector<std::string>& output_names,
                               const FlowOptions& options) {
  FlowResult result;
  const unsigned n = mgr.num_vars();
  result.order.resize(n);
  std::iota(result.order.begin(), result.order.end(), 0u);

  // Shared size of the specification (both bounds of every output).
  std::vector<Bdd> bounds;
  bounds.reserve(spec.size() * 2);
  for (const Isf& isf : spec) {
    bounds.push_back(isf.q());
    bounds.push_back(isf.r());
  }
  result.bdd_nodes_before = mgr.dag_size(bounds);

  switch (options.reorder) {
    case OrderHeuristic::kNone: break;
    case OrderHeuristic::kForce: result.order = force_order(mgr, bounds); break;
    case OrderHeuristic::kSift: result.order = sift_order(mgr, bounds); break;
  }
  const bool identity =
      std::is_sorted(result.order.begin(), result.order.end());

  if (identity) {
    result.bdd_nodes_after = result.bdd_nodes_before;
    BiDecomposer dec(mgr, options.bidec, input_names);
    for (std::size_t o = 0; o < spec.size(); ++o) {
      const std::string name =
          o < output_names.size() ? output_names[o] : numbered_name("f", o);
      dec.add_output(name, spec[o]);
    }
    dec.finish();
    result.stats = dec.stats();
    result.lint.merge(dec.lint());
    result.netlist = std::move(dec.netlist());
  } else {
    // Transfer the specification into a manager under the chosen order:
    // original variable order[level] becomes variable `level`.
    BddManager ordered(n);
    // A job-level step budget or deadline must also cancel work done in the
    // helper manager, or a reordered job could dodge its timeout.
    ordered.adopt_abort_limits(mgr);
    const std::vector<unsigned> var_map = invert_order(result.order);
    std::vector<Isf> moved;
    moved.reserve(spec.size());
    std::vector<Bdd> moved_bounds;
    for (const Isf& isf : spec) {
      Bdd q = bdd_transfer(ordered, isf.q(), var_map);
      Bdd r = bdd_transfer(ordered, isf.r(), var_map);
      moved_bounds.push_back(q);
      moved_bounds.push_back(r);
      moved.emplace_back(std::move(q), std::move(r));
    }
    result.bdd_nodes_after = ordered.dag_size(moved_bounds);

    // Input `level` of the decomposer's netlist is original variable
    // order[level]; name it accordingly and restore the interface order
    // afterwards.
    std::vector<std::string> level_names;
    level_names.reserve(n);
    for (unsigned level = 0; level < n; ++level) {
      const unsigned v = result.order[level];
      level_names.push_back(v < input_names.size() ? input_names[v]
                                                   : numbered_name("x", v));
    }
    BiDecomposer dec(ordered, options.bidec, level_names);
    for (std::size_t o = 0; o < moved.size(); ++o) {
      const std::string name =
          o < output_names.size() ? output_names[o] : numbered_name("f", o);
      dec.add_output(name, moved[o]);
    }
    dec.finish();
    result.stats = dec.stats();
    result.lint.merge(dec.lint());
    result.netlist = restore_input_order(dec.netlist(), result.order, input_names);
  }

  if (options.library) {
    result.netlist = map_to_library(result.netlist, *options.library);
  }
  if (options.lint != LintMode::kOff) {
    result.lint.merge(lint_netlist(result.netlist));
  }
  return result;
}

}  // namespace bidec
