// Implementation of CheckExorBiDecomp (paper Fig. 4), transcribed directly
// from the pseudo-code.
//
// The invariant maintained by the propagation loop: q_A/r_A are regions of
// the (X_A, X_C) space where component A is already fixed to 1/0, and
// q_B/r_B the same for component B over (X_C, X_B). Fixing one side forces
// values of the other side wherever the original ISF has care points:
//   - where A = 1 and F must be 0 (R), B must be 1 (A xor B = 0 needs B=1);
//   - where A = 0 and F must be 1 (Q), B must be 1; and so on.
// Forced values are projected onto the respective component's space with an
// existential quantification. A conflict (a point forced both to 1 and 0)
// proves non-decomposability.
#include "bidec/exor_check.h"

namespace bidec {

std::optional<ExorComponents> check_exor_bidecomp(const Isf& f,
                                                  std::span<const unsigned> xa,
                                                  std::span<const unsigned> xb) {
  BddManager& mgr = *f.manager();
  const Bdd cube_a = mgr.make_cube(xa);
  const Bdd cube_b = mgr.make_cube(xb);

  Bdd q = f.q();
  Bdd r = f.r();

  Bdd big_qa = mgr.bdd_false(), big_ra = mgr.bdd_false();
  Bdd big_qb = mgr.bdd_false(), big_rb = mgr.bdd_false();

  while (!q.is_false()) {
    // Seed: one cube of the remaining on-set, projected onto A's space
    // ("the Boolean function of the cube is quantified and projected in the
    // directions of X_A and X_B").
    Bdd qa = mgr.exists(mgr.pick_one_cube(q), cube_b);
    Bdd ra = mgr.bdd_false();

    while (!(qa | ra).is_false()) {
      // Values of B forced by the fixed region of A.
      Bdd qb = mgr.exists((q & ra) | (r & qa), cube_a);
      Bdd rb = mgr.exists((q & qa) | (r & ra), cube_a);
      if (!(qb & rb).is_false()) return std::nullopt;

      // The care points that did the forcing are now settled.
      q -= qa | ra;
      r -= qa | ra;
      big_qa |= qa;
      big_ra |= ra;

      // Values of A forced back by the newly fixed region of B.
      qa = mgr.exists((q & rb) | (r & qb), cube_b);
      ra = mgr.exists((q & qb) | (r & rb), cube_b);
      if (!(qa & ra).is_false()) return std::nullopt;

      q -= qb | rb;
      r -= qb | rb;
      big_qb |= qb;
      big_rb |= rb;
    }
  }

  // Leftover off-set points were never touched by any propagation wave:
  // fix both components to 0 there (0 xor 0 = 0).
  if (!r.is_false()) {
    big_ra |= mgr.exists(r, cube_b);
    big_rb |= mgr.exists(r, cube_a);
  }

  if (!(big_qa & big_ra).is_false() || !(big_qb & big_rb).is_false()) {
    return std::nullopt;
  }
  return ExorComponents{Isf(big_qa, big_ra), Isf(big_qb, big_rb)};
}

}  // namespace bidec
