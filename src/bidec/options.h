// Tunable knobs of the bi-decomposition algorithm. Defaults reproduce the
// configuration evaluated in the paper; the other settings exist for the
// ablation experiments discussed in Sections 5-7 (see DESIGN.md).
#ifndef BIDEC_BIDEC_OPTIONS_H
#define BIDEC_BIDEC_OPTIONS_H

namespace bidec {

class SharedComponentSink;

struct BidecOptions {
  /// Consider EXOR bi-decomposition (Section 3.2). Disabling it forces
  /// AND/OR-only netlists (ablation for the "EXOR-intensive circuits" claim).
  bool use_exor = true;

  /// Consider strong bi-decomposition at all. Disabling it reproduces the
  /// paper's conjecture about BDS ("applies only weak bi-decomposition").
  bool use_strong = true;

  /// Functional component-reuse cache (Section 6).
  bool use_cache = true;

  /// Balance term in the grouping cost function (Section 7): prefer
  /// |X_A| ~ |X_B|. Disabling reproduces the "disballanced" behaviour the
  /// paper warns about.
  bool balance_cost = true;

  /// Variables placed in X_A for weak decompositions. The paper found 1 to
  /// be best ("the best results are achieved when X_A includes only one
  /// variable"); the ablation bench sweeps this.
  unsigned weak_xa_size = 1;

  /// Number of decomposable initial variable pairs each grouping search
  /// grows before keeping the best-scoring result. The paper's Fig. 5 grows
  /// only the first pair (value 1); larger values trade CPU time for
  /// netlist quality (swept by the ablation bench).
  unsigned grouping_pairs = 4;

  /// Section 5 variant: after greedy grouping, try excluding one variable
  /// to admit two others ("improved area by <3% but doubled CPU time").
  bool regroup = false;

  /// Post-process the netlist by absorbing inverters into NAND/NOR/XNOR.
  bool absorb_inverters = true;

  /// Skip the grouping searches entirely and recurse by Shannon cofactoring
  /// on the most-bound variable (the one labelling the most nodes in the
  /// interval's DAGs). Netlist quality is poor — this is the guaranteed
  /// terminal rung of the batch engine's degradation ladder: every step is
  /// two cofactors, so it finishes under node/step budgets that starve the
  /// grouping-based flow. Off everywhere else.
  bool force_shannon = false;

  /// Cross-job component cache (server mode; see bidec/shared_cache.h).
  /// Not owned, must outlive the decomposition; nullptr = disabled. Every
  /// hit is re-validated against this job's interval, so a stale or
  /// poisoned sink degrades to misses, never to wrong netlists.
  SharedComponentSink* shared_cache = nullptr;

  /// Only consult/publish the shared cache for cones whose support size is
  /// in [3, shared_max_support]: signatures enumerate 2^k minterms, and
  /// cones of support <= 2 are a single terminal-case gate anyway.
  unsigned shared_max_support = 12;

  /// Skip publishing cones larger than this many gates (0 = unbounded).
  unsigned shared_max_gates = 128;
};

}  // namespace bidec

#endif  // BIDEC_BIDEC_OPTIONS_H
