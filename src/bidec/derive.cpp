#include "bidec/derive.h"

namespace bidec {

Isf derive_or_component_a(const Isf& f, std::span<const unsigned> xa,
                          std::span<const unsigned> xb) {
  BddManager& mgr = *f.manager();
  const Bdd exa_r = mgr.exists(f.r(), xa);
  const Bdd qa = mgr.exists(f.q() & exa_r, xb);
  const Bdd ra = mgr.exists(f.r(), xb);
  return Isf(qa, ra);
}

Isf derive_or_component_b(const Isf& f, const Bdd& fa, std::span<const unsigned> xa) {
  BddManager& mgr = *f.manager();
  const Bdd qb = mgr.exists(f.q() - fa, xa);
  const Bdd rb = mgr.exists(f.r(), xa);
  return Isf(qb, rb);
}

namespace {
/// AND decomposition of F is OR decomposition of the complemented interval
/// (R, Q); the component ISFs come back complemented as well.
Isf complemented(const Isf& f) { return Isf(f.r(), f.q()); }
}  // namespace

Isf derive_and_component_a(const Isf& f, std::span<const unsigned> xa,
                           std::span<const unsigned> xb) {
  return complemented(derive_or_component_a(complemented(f), xa, xb));
}

Isf derive_and_component_b(const Isf& f, const Bdd& fa, std::span<const unsigned> xa) {
  // The realized CSF of the complemented component A is ~fa.
  return complemented(derive_or_component_b(complemented(f), ~fa, xa));
}

Isf derive_weak_or_component_a(const Isf& f, std::span<const unsigned> xa) {
  BddManager& mgr = *f.manager();
  return Isf(f.q() & mgr.exists(f.r(), xa), f.r());
}

Isf derive_weak_or_component_b(const Isf& f, const Bdd& fa, std::span<const unsigned> xa) {
  // Identical formula to the strong case; X_B is empty so the quantifier
  // over X_B in Theorem 4 disappears.
  return derive_or_component_b(f, fa, xa);
}

Isf derive_weak_and_component_a(const Isf& f, std::span<const unsigned> xa) {
  return complemented(derive_weak_or_component_a(complemented(f), xa));
}

Isf derive_weak_and_component_b(const Isf& f, const Bdd& fa, std::span<const unsigned> xa) {
  return complemented(derive_weak_or_component_b(complemented(f), ~fa, xa));
}

}  // namespace bidec
