// Variable grouping (paper Section 5, Figs. 5 and 6): find private variable
// sets X_A and X_B admitting a strong bi-decomposition, greedily grown and
// kept balanced; plus the weak-decomposition grouping of Section 7.
#ifndef BIDEC_BIDEC_GROUPING_H
#define BIDEC_BIDEC_GROUPING_H

#include <optional>
#include <span>

#include "bidec/check.h"
#include "bidec/options.h"
#include "isf/isf.h"

namespace bidec {

enum class GateKind { kOr, kAnd, kExor };

[[nodiscard]] constexpr const char* gate_kind_name(GateKind g) noexcept {
  switch (g) {
    case GateKind::kOr: return "OR";
    case GateKind::kAnd: return "AND";
    case GateKind::kExor: return "EXOR";
  }
  return "?";
}

/// GroupVariables (Fig. 6) specialized per gate type: returns a non-empty
/// grouping if the ISF is strongly decomposable with that gate, or an empty
/// grouping otherwise. `support` must be the support of `f`.
[[nodiscard]] VarGrouping group_variables_or(const Isf& f, std::span<const unsigned> support,
                                             const BidecOptions& options);
[[nodiscard]] VarGrouping group_variables_and(const Isf& f, std::span<const unsigned> support,
                                              const BidecOptions& options);
[[nodiscard]] VarGrouping group_variables_exor(const Isf& f, std::span<const unsigned> support,
                                               const BidecOptions& options);

struct BestGrouping {
  VarGrouping grouping;
  GateKind gate = GateKind::kOr;
};

/// FindBestVariableGrouping (Section 7): run the three group_variables_*
/// searches and rank the non-empty results by the cost function "more
/// variables in X_A+X_B is better; closer-to-equal sizes break ties".
/// Returns nullopt if no strong decomposition exists.
[[nodiscard]] std::optional<BestGrouping> find_best_grouping(
    const Isf& f, std::span<const unsigned> support, const BidecOptions& options);

struct WeakGrouping {
  std::vector<unsigned> xa;
  GateKind gate = GateKind::kOr;  // only kOr / kAnd are possible
};

/// GroupVariablesWeak (Section 7): choose X_A (of options.weak_xa_size
/// variables) and the gate maximizing the don't-cares introduced into
/// component A. Returns nullopt when no variable yields any gain (then the
/// caller must fall back to a Shannon step; see BidecStats::shannon_fallback).
[[nodiscard]] std::optional<WeakGrouping> group_variables_weak(
    const Isf& f, std::span<const unsigned> support, const BidecOptions& options);

}  // namespace bidec

#endif  // BIDEC_BIDEC_GROUPING_H
