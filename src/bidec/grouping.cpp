#include "bidec/grouping.h"

#include <algorithm>
#include <functional>

#include "bidec/exor_check.h"

namespace bidec {

namespace {

using CheckFn = std::function<bool(std::span<const unsigned>, std::span<const unsigned>)>;

/// FindInitialGrouping (Fig. 5), generalized: up to `max_pairs` decomposable
/// singleton pairs (the paper stops at the first one).
std::vector<VarGrouping> find_initial_groupings(std::span<const unsigned> support,
                                                const CheckFn& check,
                                                std::size_t max_pairs) {
  std::vector<VarGrouping> pairs;
  for (std::size_t i = 0; i < support.size() && pairs.size() < max_pairs; ++i) {
    for (std::size_t j = i + 1; j < support.size() && pairs.size() < max_pairs; ++j) {
      const unsigned xa[] = {support[i]};
      const unsigned xb[] = {support[j]};
      if (check(xa, xb)) pairs.push_back(VarGrouping{{support[i]}, {support[j]}});
    }
  }
  return pairs;
}

bool contains(const std::vector<unsigned>& set, unsigned v) {
  return std::find(set.begin(), set.end(), v) != set.end();
}

/// One greedy growth pass (Fig. 6): try to place each remaining support
/// variable, offering it to the smaller set first to keep the sets balanced.
void grow_grouping(VarGrouping& g, std::span<const unsigned> support, const CheckFn& check) {
  for (const unsigned z : support) {
    if (contains(g.xa, z) || contains(g.xb, z)) continue;
    std::vector<unsigned>& first = g.xa.size() <= g.xb.size() ? g.xa : g.xb;
    std::vector<unsigned>& second = g.xa.size() <= g.xb.size() ? g.xb : g.xa;
    first.push_back(z);
    if (check(g.xa, g.xb)) continue;
    first.pop_back();
    second.push_back(z);
    if (check(g.xa, g.xb)) continue;
    second.pop_back();
  }
}

/// The Section 5 variant the paper measured and rejected ("improved the
/// netlist area less than 3% but the CPU time increased by 100%"): exclude
/// one grouped variable at a time and re-grow; keep the change only if it
/// admits at least two other variables.
void regroup_pass(VarGrouping& g, std::span<const unsigned> support, const CheckFn& check) {
  for (std::vector<unsigned>* set : {&g.xa, &g.xb}) {
    for (std::size_t i = 0; i < set->size(); ++i) {
      VarGrouping trial = g;
      std::vector<unsigned>& trial_set = set == &g.xa ? trial.xa : trial.xb;
      trial_set.erase(trial_set.begin() + static_cast<std::ptrdiff_t>(i));
      if (!check(trial.xa, trial.xb)) continue;
      grow_grouping(trial, support, check);
      if (trial.size() >= g.size() + 1) {  // net gain of >= 2 added vs 1 removed
        g = trial;
        return;  // one improvement per call keeps cost bounded
      }
    }
  }
}

/// If the union of the grouped variables also decomposes as a *contiguous*
/// split (low indices in X_A, high ones in X_B), prefer that: canonical
/// splits repeat across the outputs of a multi-output function, so the
/// structural hashing and the reuse cache share far more logic (e.g. the
/// nested AND chains of priority logic).
void canonicalize_contiguous(VarGrouping& g, const CheckFn& check) {
  std::vector<unsigned> all;
  all.reserve(g.size());
  all.insert(all.end(), g.xa.begin(), g.xa.end());
  all.insert(all.end(), g.xb.begin(), g.xb.end());
  std::sort(all.begin(), all.end());

  const auto try_split = [&](std::size_t xa_size) {
    if (xa_size == 0 || xa_size >= all.size()) return false;
    VarGrouping contiguous;
    contiguous.xa.assign(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(xa_size));
    contiguous.xb.assign(all.begin() + static_cast<std::ptrdiff_t>(xa_size), all.end());
    if (contiguous.xa == g.xa && contiguous.xb == g.xb) return true;
    if (!check(contiguous.xa, contiguous.xb)) return false;
    g = std::move(contiguous);
    return true;
  };

  // Preferred: split at the largest power of two below the set size. Nested
  // supports (priority chains, counters) then share their low block across
  // every output while the tree depth stays ceil(log2 n).
  std::size_t pow2 = 1;
  while (pow2 * 2 < all.size()) pow2 *= 2;
  if (pow2 > 1 && try_split(pow2)) return;
  // Fallback: keep the grouping's own sizes, contiguously.
  (void)try_split(g.xa.size());
}

VarGrouping group_variables(const Isf& f, std::span<const unsigned> support,
                            const BidecOptions& options, const CheckFn& check) {
  (void)f;
  const std::size_t max_pairs = std::max(1u, options.grouping_pairs);
  std::vector<VarGrouping> candidates = find_initial_groupings(support, check, max_pairs);
  if (candidates.empty()) return {};
  VarGrouping best;
  long best_score = -1;
  for (VarGrouping& g : candidates) {
    grow_grouping(g, support, check);
    if (options.regroup) regroup_pass(g, support, check);
    const long score = static_cast<long>(g.size()) * 1000 -
                       (options.balance_cost ? static_cast<long>(g.imbalance()) : 0);
    if (score > best_score) {
      best_score = score;
      best = std::move(g);
    }
  }
  canonicalize_contiguous(best, check);
  return best;
}

}  // namespace

VarGrouping group_variables_or(const Isf& f, std::span<const unsigned> support,
                               const BidecOptions& options) {
  return group_variables(f, support, options,
                         [&f](std::span<const unsigned> xa, std::span<const unsigned> xb) {
                           return check_or_decomposable(f, xa, xb);
                         });
}

VarGrouping group_variables_and(const Isf& f, std::span<const unsigned> support,
                                const BidecOptions& options) {
  return group_variables(f, support, options,
                         [&f](std::span<const unsigned> xa, std::span<const unsigned> xb) {
                           return check_and_decomposable(f, xa, xb);
                         });
}

VarGrouping group_variables_exor(const Isf& f, std::span<const unsigned> support,
                                 const BidecOptions& options) {
  // Singleton pairs use the cheap Theorem 2 test; grown sets use the
  // constructive Fig. 4 algorithm.
  const CheckFn check = [&f](std::span<const unsigned> xa, std::span<const unsigned> xb) {
    if (xa.size() == 1 && xb.size() == 1) {
      return check_exor_decomposable_11(f, xa[0], xb[0]);
    }
    return check_exor_bidecomp(f, xa, xb).has_value();
  };
  return group_variables(f, support, options, check);
}

std::optional<BestGrouping> find_best_grouping(const Isf& f,
                                               std::span<const unsigned> support,
                                               const BidecOptions& options) {
  std::vector<BestGrouping> candidates;
  if (VarGrouping g = group_variables_or(f, support, options); !g.empty()) {
    candidates.push_back({std::move(g), GateKind::kOr});
  }
  if (VarGrouping g = group_variables_and(f, support, options); !g.empty()) {
    candidates.push_back({std::move(g), GateKind::kAnd});
  }
  if (options.use_exor) {
    if (VarGrouping g = group_variables_exor(f, support, options); !g.empty()) {
      candidates.push_back({std::move(g), GateKind::kExor});
    }
  }
  if (candidates.empty()) return std::nullopt;

  // Cost function of Section 7: more grouped variables is better; balance
  // breaks ties. (With balance_cost off, only the size counts -- ablation.)
  const auto score = [&options](const BestGrouping& c) {
    const long size_term = static_cast<long>(c.grouping.size()) * 1000;
    const long balance_term =
        options.balance_cost ? -static_cast<long>(c.grouping.imbalance()) : 0;
    return size_term + balance_term;
  };
  return *std::max_element(candidates.begin(), candidates.end(),
                           [&score](const BestGrouping& a, const BestGrouping& b) {
                             return score(a) < score(b);
                           });
}

std::optional<WeakGrouping> group_variables_weak(const Isf& f,
                                                 std::span<const unsigned> support,
                                                 const BidecOptions& options) {
  // Rank every candidate X_A by the number of minterms that become
  // don't-cares for component A; the paper found |X_A| = 1 optimal, so the
  // default enumerates single variables. For larger weak_xa_size the set is
  // grown greedily from the best singleton.
  std::optional<WeakGrouping> best;
  double best_gain = 0.0;
  for (const unsigned v : support) {
    const unsigned xa[] = {v};
    const double or_gain = weak_or_gain(f, xa);
    if (or_gain > best_gain) {
      best_gain = or_gain;
      best = WeakGrouping{{v}, GateKind::kOr};
    }
    const double and_gain = weak_and_gain(f, xa);
    if (and_gain > best_gain) {
      best_gain = and_gain;
      best = WeakGrouping{{v}, GateKind::kAnd};
    }
  }
  if (!best) return std::nullopt;

  while (best->xa.size() < options.weak_xa_size && best->xa.size() < support.size()) {
    double grown_gain = best_gain;
    std::optional<unsigned> grown_var;
    for (const unsigned v : support) {
      if (contains(best->xa, v)) continue;
      std::vector<unsigned> trial = best->xa;
      trial.push_back(v);
      const double gain = best->gate == GateKind::kOr ? weak_or_gain(f, trial)
                                                      : weak_and_gain(f, trial);
      if (gain > grown_gain) {
        grown_gain = gain;
        grown_var = v;
      }
    }
    if (!grown_var) break;
    best->xa.push_back(*grown_var);
    best_gain = grown_gain;
  }
  return best;
}

}  // namespace bidec
