#include "bidec/sat_check.h"

#include <stdexcept>
#include <vector>

#include "sat/tseitin.h"

namespace bidec {
namespace {

using sat::Lit;
using sat::Solver;
using sat::TseitinEncoder;
using sat::Var;

/// Q(x) & R(x') & R(x'') with x' free over xa, x'' free over xb, both tied
/// to x elsewhere. Decomposable iff UNSAT.
bool or_decomposable_two_copy(const Bdd& q, const Bdd& r, unsigned num_vars,
                              std::span<const unsigned> xa,
                              std::span<const unsigned> xb) {
  Solver solver;
  TseitinEncoder enc(solver);
  const std::vector<Var> x = enc.add_vars(num_vars);
  const std::vector<Var> x1 = enc.add_vars(num_vars);
  const std::vector<Var> x2 = enc.add_vars(num_vars);
  std::vector<bool> in_xa(num_vars, false);
  std::vector<bool> in_xb(num_vars, false);
  for (const unsigned v : xa) in_xa.at(v) = true;
  for (const unsigned v : xb) in_xb.at(v) = true;
  for (unsigned v = 0; v < num_vars; ++v) {
    if (!in_xa[v]) enc.add_equal(sat::mk_lit(x1[v]), sat::mk_lit(x[v]));
    if (!in_xb[v]) enc.add_equal(sat::mk_lit(x2[v]), sat::mk_lit(x[v]));
  }
  const Lit q_lit = enc.encode_bdd(q, x);
  const Lit r1_lit = enc.encode_bdd(r, x1);
  const Lit r2_lit = enc.encode_bdd(r, x2);
  switch (solver.solve({q_lit, r1_lit, r2_lit})) {
    case Solver::Result::kSat: return false;
    case Solver::Result::kUnsat: return true;
    case Solver::Result::kUnknown: break;
  }
  throw std::runtime_error("sat_check: solver returned unknown");
}

}  // namespace

bool sat_check_or_decomposable(const Isf& f, std::span<const unsigned> xa,
                               std::span<const unsigned> xb) {
  return or_decomposable_two_copy(f.q(), f.r(), f.manager()->num_vars(), xa, xb);
}

bool sat_check_and_decomposable(const Isf& f, std::span<const unsigned> xa,
                                std::span<const unsigned> xb) {
  // Same dual as check_and_decomposable: AND-decompose F = OR-decompose (R, Q).
  return or_decomposable_two_copy(f.r(), f.q(), f.manager()->num_vars(), xa, xb);
}

}  // namespace bidec
