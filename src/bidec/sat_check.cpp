#include "bidec/sat_check.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "proof/drat_check.h"
#include "proof/proof_log.h"
#include "sat/tseitin.h"

namespace bidec {
namespace {

using sat::Lit;
using sat::Solver;
using sat::TseitinEncoder;
using sat::Var;

/// Q(x) & R(x') & R(x'') with x' free over xa, x'' free over xb, both tied
/// to x elsewhere. Decomposable iff UNSAT.
bool in_set(std::span<const unsigned> set, unsigned v) {
  return std::find(set.begin(), set.end(), v) != set.end();
}

bool or_decomposable_two_copy(const Bdd& q, const Bdd& r, unsigned num_vars,
                              std::span<const unsigned> xa,
                              std::span<const unsigned> xb,
                              proof::ProofPolicy policy = proof::ProofPolicy::kOff,
                              proof::ProofStats* stats = nullptr) {
  // Degenerate inputs decide Theorem 1 without building the two-copy
  // encoding. An empty Q or R kills the product outright; once both are
  // nonzero, Q & exists_{X_A} R & exists_{X_B} R contains Q & R, so a
  // constant-true side can only fail.
  if (q.is_false() || r.is_false()) return true;
  if (q.is_true() || r.is_true()) return false;
  // Support inside a single variable: evaluate the condition at v=0 and
  // v=1 from the four cofactor values.
  if (const std::vector<unsigned> sup = q.manager()->support_vars(q, r);
      sup.size() == 1) {
    const unsigned v = sup.front();
    const bool exists_a = in_set(xa, v);
    const bool exists_b = in_set(xb, v);
    BddManager& mgr = *q.manager();
    for (const bool val : {false, true}) {
      const bool qv = mgr.cofactor(q, v, val).is_true();
      const bool rv = mgr.cofactor(r, v, val).is_true();
      const bool ra = exists_a || rv;  // r nonzero, so exists_v r == 1
      const bool rb = exists_b || rv;
      if (qv && ra && rb) return false;
    }
    return true;
  }
  Solver solver;
  proof::ProofLog log;
  if (policy != proof::ProofPolicy::kOff) solver.set_proof_log(&log);
  TseitinEncoder enc(solver);
  const std::vector<Var> x = enc.add_vars(num_vars);
  const std::vector<Var> x1 = enc.add_vars(num_vars);
  const std::vector<Var> x2 = enc.add_vars(num_vars);
  std::vector<bool> in_xa(num_vars, false);
  std::vector<bool> in_xb(num_vars, false);
  for (const unsigned v : xa) in_xa.at(v) = true;
  for (const unsigned v : xb) in_xb.at(v) = true;
  for (unsigned v = 0; v < num_vars; ++v) {
    if (!in_xa[v]) enc.add_equal(sat::mk_lit(x1[v]), sat::mk_lit(x[v]));
    if (!in_xb[v]) enc.add_equal(sat::mk_lit(x2[v]), sat::mk_lit(x[v]));
  }
  const Lit q_lit = enc.encode_bdd(q, x);
  const Lit r1_lit = enc.encode_bdd(r, x1);
  const Lit r2_lit = enc.encode_bdd(r, x2);
  const auto fold_log = [&] {
    if (stats == nullptr || policy == proof::ProofPolicy::kOff) return;
    stats->logged_inputs += log.input_clauses();
    stats->proof_clauses += log.derived_clauses();
    stats->deletions += log.deletions();
  };
  switch (solver.solve({q_lit, r1_lit, r2_lit})) {
    case Solver::Result::kSat:
      fold_log();
      return false;
    case Solver::Result::kUnsat: {
      fold_log();
      if (policy == proof::ProofPolicy::kCheck) {
        // "Decomposable" rests on this UNSAT; certify it before returning.
        proof::DratChecker checker;
        const std::vector<Lit> assumed = {q_lit, r1_lit, r2_lit};
        const proof::CheckResult res = checker.check(log, assumed);
        if (stats != nullptr) {
          ++stats->checked_unsat;
          stats->trimmed_clauses += res.checked;
          stats->core_inputs += res.core_inputs;
          stats->check_ms += res.check_ms;
          if (!res.valid) ++stats->failed_checks;
        }
        if (!res.valid) {
          throw proof::ProofCheckError(
              "sat_check: decomposability UNSAT failed proof check: " +
              res.error);
        }
      }
      return true;
    }
    case Solver::Result::kUnknown: break;
  }
  throw std::runtime_error("sat_check: solver returned unknown");
}

}  // namespace

bool sat_check_or_decomposable(const Isf& f, std::span<const unsigned> xa,
                               std::span<const unsigned> xb) {
  return or_decomposable_two_copy(f.q(), f.r(), f.manager()->num_vars(), xa, xb);
}

bool sat_check_and_decomposable(const Isf& f, std::span<const unsigned> xa,
                                std::span<const unsigned> xb) {
  // Same dual as check_and_decomposable: AND-decompose F = OR-decompose (R, Q).
  return or_decomposable_two_copy(f.r(), f.q(), f.manager()->num_vars(), xa, xb);
}

bool sat_check_or_decomposable(const Isf& f, std::span<const unsigned> xa,
                               std::span<const unsigned> xb,
                               proof::ProofPolicy policy,
                               proof::ProofStats* stats) {
  return or_decomposable_two_copy(f.q(), f.r(), f.manager()->num_vars(), xa,
                                  xb, policy, stats);
}

bool sat_check_and_decomposable(const Isf& f, std::span<const unsigned> xa,
                                std::span<const unsigned> xb,
                                proof::ProofPolicy policy,
                                proof::ProofStats* stats) {
  return or_decomposable_two_copy(f.r(), f.q(), f.manager()->num_vars(), xa,
                                  xb, policy, stats);
}

}  // namespace bidec
