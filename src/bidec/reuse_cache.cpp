#include "bidec/reuse_cache.h"

namespace bidec {

std::optional<ReuseCache::Hit> ReuseCache::lookup(const Isf& isf,
                                                  std::span<const unsigned> support) {
  const Bdd cube = mgr_->make_cube(support);
  const auto it = buckets_.find(cube.id());
  if (it == buckets_.end()) return std::nullopt;
  for (const Entry& e : it->second) {
    if (isf.is_compatible(e.func)) return Hit{e.func, e.signal, false};
    if (isf.is_compatible_complement(e.func)) return Hit{~e.func, e.signal, true};
  }
  return std::nullopt;
}

void ReuseCache::insert(const Bdd& csf, SignalId signal) {
  const Bdd cube = mgr_->support_cube(csf);
  auto [it, inserted] = buckets_.try_emplace(cube.id());
  if (inserted) keys_.push_back(cube);
  for (const Entry& e : it->second) {
    if (e.func == csf) return;  // identical function already registered
  }
  it->second.push_back(Entry{csf, signal});
  ++entries_;
}

}  // namespace bidec
