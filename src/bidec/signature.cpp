#include "bidec/signature.h"

#include <stdexcept>

namespace bidec {

namespace {

/// splitmix64 finalizer: cheap, well-mixed 64-bit avalanche.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t hash_words(std::uint64_t seed, std::span<const std::uint64_t> words) noexcept {
  std::uint64_t h = seed;
  for (const std::uint64_t w : words) h = mix64(h ^ w);
  return h;
}

}  // namespace

std::vector<std::uint64_t> truth_bits(const BddManager& mgr, const Bdd& f,
                                      std::span<const unsigned> support) {
  const unsigned k = static_cast<unsigned>(support.size());
  if (k > 20) {
    throw std::invalid_argument("truth_bits: support too wide (2^k blow-up)");
  }
  const std::uint64_t minterms = std::uint64_t{1} << k;
  std::vector<std::uint64_t> bits((minterms + 63) / 64, 0);
  std::vector<bool> assign(mgr.num_vars(), false);
  for (std::uint64_t m = 0; m < minterms; ++m) {
    for (unsigned p = 0; p < k; ++p) assign[support[p]] = ((m >> p) & 1) != 0;
    if (mgr.eval(f, assign)) bits[m >> 6] |= std::uint64_t{1} << (m & 63);
  }
  return bits;
}

ComponentSignature interval_signature(const Isf& isf,
                                      std::span<const unsigned> support) {
  BddManager& mgr = *isf.manager();
  ComponentSignature sig;
  sig.k = static_cast<unsigned>(support.size());
  sig.q_bits = truth_bits(mgr, isf.q(), support);
  // ~R enumerated by evaluating R and inverting; the tail of the last word
  // (minterms past 2^k) must stay zero so whole-vector equality works.
  sig.nr_bits = truth_bits(mgr, isf.r(), support);
  const std::uint64_t minterms = std::uint64_t{1} << sig.k;
  for (std::uint64_t& w : sig.nr_bits) w = ~w;
  if ((minterms & 63) != 0) {
    sig.nr_bits.back() &= (std::uint64_t{1} << (minterms & 63)) - 1;
  }
  sig.hash = hash_words(hash_words(mix64(sig.k), sig.q_bits), sig.nr_bits);
  return sig;
}

}  // namespace bidec
