// EXOR bi-decomposition with arbitrary (disjoint) variable sets X_A, X_B:
// the iterative cube-seeding algorithm of the paper's Fig. 4. The check is
// constructive: on success it returns the ISFs of both components.
#ifndef BIDEC_BIDEC_EXOR_CHECK_H
#define BIDEC_BIDEC_EXOR_CHECK_H

#include <optional>
#include <span>

#include "isf/isf.h"

namespace bidec {

struct ExorComponents {
  Isf a;
  Isf b;
};

/// CheckExorBiDecomp (paper Fig. 4). Returns the component ISFs if
/// F = (Q, R) is EXOR-bi-decomposable with private sets X_A and X_B
/// (component A depends on X_A and the shared variables only; B on X_B and
/// the shared variables), std::nullopt otherwise.
///
/// Deviation from the paper: SelectOneCube picks the lexicographically first
/// cube of Q instead of a random one, which makes results reproducible.
[[nodiscard]] std::optional<ExorComponents> check_exor_bidecomp(
    const Isf& f, std::span<const unsigned> xa, std::span<const unsigned> xb);

}  // namespace bidec

#endif  // BIDEC_BIDEC_EXOR_CHECK_H
