#include "bidec/bidecomposer.h"

#include <array>
#include <cassert>
#include <stdexcept>

#include "bidec/derive.h"
#include "bidec/exor_check.h"
#include "bidec/shared_cache.h"
#include "bidec/signature.h"

namespace bidec {

namespace {
/// Two statements: GCC 12's -Wrestrict misfires on `prefix +
/// std::to_string(i)` once the string operator+ is inlined.
std::string numbered_name(const char* prefix, std::size_t i) {
  std::string s = prefix;
  s += std::to_string(i);
  return s;
}
}  // namespace

BiDecomposer::BiDecomposer(BddManager& mgr, BidecOptions options,
                           std::vector<std::string> input_names)
    : mgr_(mgr), options_(options), cache_(mgr) {
  var_signal_.reserve(mgr.num_vars());
  for (unsigned v = 0; v < mgr.num_vars(); ++v) {
    std::string name =
        v < input_names.size() ? input_names[v] : numbered_name("x", v);
    var_signal_.push_back(net_.add_input(std::move(name)));
  }
}

SignalId BiDecomposer::add_output(const std::string& name, const Isf& isf) {
  const auto [func, signal] = decompose(isf);
  net_.add_output(name, signal);
  return signal;
}

std::pair<Bdd, SignalId> BiDecomposer::decompose(const Isf& isf) {
  const Result r = bidecompose(isf);
  return {r.func, r.signal};
}

void BiDecomposer::map_inverters() { net_.absorb_inverters(); }

void BiDecomposer::finish() {
  if (options_.absorb_inverters) map_inverters();
}

// ---------------------------------------------------------------------------
// Terminal case: support of two or fewer variables. All sixteen two-variable
// functions are realizable with at most one two-input gate plus inverters;
// pick the cheapest one compatible with the interval.
// ---------------------------------------------------------------------------

namespace {

/// Area cost of realizing the two-variable function with truth table `tt`
/// (bit m = value at minterm m, m = a + 2*b), assuming inputs are free.
double tt2_cost(unsigned tt) {
  switch (tt) {
    case 0x0: case 0xF: return 0.0;               // constants
    case 0xA: case 0xC: return 0.0;               // a, b
    case 0x5: case 0x3: return 1.0;               // ~a, ~b
    case 0x7: case 0x1: return 2.0;               // nand, nor
    case 0x9: return 5.0;                         // xnor
    case 0x8: case 0xE: return 3.0;               // and, or
    case 0x6: return 5.0;                         // xor
    case 0x2: case 0x4: return 4.0;               // a&~b, ~a&b
    case 0xB: case 0xD: return 4.0;               // a|~b, ~a|b
    default: return 1e9;
  }
}

}  // namespace

BiDecomposer::Result BiDecomposer::terminal_case(const Isf& isf,
                                                 std::span<const unsigned> support) {
  ++stats_.terminal_cases;
  assert(support.size() <= 2);
  const unsigned va = support.size() >= 1 ? support[0] : 0;
  const unsigned vb = support.size() >= 2 ? support[1] : 0;

  // Truth tables of the on-set and off-set over (va, vb).
  unsigned q_tt = 0, r_tt = 0;
  std::vector<bool> assign(mgr_.num_vars(), false);
  for (unsigned m = 0; m < 4; ++m) {
    assign[va] = (m & 1) != 0;
    assign[vb] = (m & 2) != 0;
    if (mgr_.eval(isf.q(), assign)) q_tt |= 1u << m;
    if (mgr_.eval(isf.r(), assign)) r_tt |= 1u << m;
  }

  // Cheapest compatible function: q_tt subset of tt, tt disjoint from r_tt.
  // With EXOR disabled, an (X)NOR-class truth table costs its AND/OR/NOT
  // realization (3 gates + inverters) instead.
  unsigned best_tt = 0;
  double best_cost = 1e18;
  for (unsigned tt = 0; tt < 16; ++tt) {
    if ((q_tt & ~tt) != 0 || (tt & r_tt) != 0) continue;
    double cost = tt2_cost(tt);
    if (!options_.use_exor && (tt == 0x6 || tt == 0x9)) cost = 11.0;
    if (cost < best_cost) {
      best_cost = cost;
      best_tt = tt;
    }
  }
  assert(best_cost < 1e18);  // an ISF always admits some cover

  const SignalId sa = var_signal_[va];
  const SignalId sb = var_signal_[vb];
  SignalId sig = kNoSignal;
  Bdd func;
  const Bdd a = mgr_.var(va), b = mgr_.var(vb);
  switch (best_tt) {
    case 0x0: sig = net_.get_const(false); func = mgr_.bdd_false(); break;
    case 0xF: sig = net_.get_const(true); func = mgr_.bdd_true(); break;
    case 0xA: sig = sa; func = a; break;
    case 0x5: sig = net_.add_not(sa); func = ~a; break;
    case 0xC: sig = sb; func = b; break;
    case 0x3: sig = net_.add_not(sb); func = ~b; break;
    case 0x8: sig = net_.add_and(sa, sb); func = a & b; break;
    case 0xE: sig = net_.add_or(sa, sb); func = a | b; break;
    case 0x6:
      sig = options_.use_exor
                ? net_.add_xor(sa, sb)
                : net_.add_or(net_.add_and(sa, net_.add_not(sb)),
                              net_.add_and(net_.add_not(sa), sb));
      func = a ^ b;
      break;
    case 0x7: sig = net_.add_not(net_.add_and(sa, sb)); func = ~(a & b); break;
    case 0x1: sig = net_.add_not(net_.add_or(sa, sb)); func = ~(a | b); break;
    case 0x9:
      sig = options_.use_exor
                ? net_.add_not(net_.add_xor(sa, sb))
                : net_.add_or(net_.add_and(sa, sb),
                              net_.add_and(net_.add_not(sa), net_.add_not(sb)));
      func = ~(a ^ b);
      break;
    case 0x2: sig = net_.add_and(sa, net_.add_not(sb)); func = a & ~b; break;
    case 0x4: sig = net_.add_and(net_.add_not(sa), sb); func = ~a & b; break;
    case 0xB: sig = net_.add_or(sa, net_.add_not(sb)); func = a | ~b; break;
    case 0xD: sig = net_.add_or(net_.add_not(sa), sb); func = ~a | b; break;
    default: throw std::logic_error("terminal_case: unreachable");
  }
  return Result{func, sig};
}

// ---------------------------------------------------------------------------
// Combination and the three decomposition flavours
// ---------------------------------------------------------------------------

BiDecomposer::Result BiDecomposer::combine(GateKind gate, const Result& a,
                                           const Result& b) {
  switch (gate) {
    case GateKind::kOr:
      return Result{a.func | b.func, net_.add_or(a.signal, b.signal)};
    case GateKind::kAnd:
      return Result{a.func & b.func, net_.add_and(a.signal, b.signal)};
    case GateKind::kExor:
      return Result{a.func ^ b.func, net_.add_xor(a.signal, b.signal)};
  }
  throw std::logic_error("combine: unreachable");
}

// Exact Theorem-5 precondition: a strong split's components must both have
// strictly smaller support than the parent, or the recursion makes no
// progress. Violations are recorded as NL109 findings rather than thrown —
// the decomposition result is still functionally correct, only the size
// argument of the theorem is broken.
void BiDecomposer::check_strong_support(const char* gate, std::size_t parent_support,
                                        const Result& component) {
  const std::size_t comp = mgr_.support_vars(component.func).size();
  if (comp < parent_support) return;
  lint_.add(std::string(kRuleSupportInflation), LintSeverity::kError,
            std::string("strong ") + gate + " split",
            std::string("strong ") + gate + " component supports " +
                std::to_string(comp) + " of the parent's " +
                std::to_string(parent_support) +
                " variables; Theorem 5 requires strictly fewer");
}

BiDecomposer::Result BiDecomposer::decompose_strong(const Isf& isf,
                                                    const BestGrouping& best) {
  const std::span<const unsigned> xa(best.grouping.xa);
  const std::span<const unsigned> xb(best.grouping.xb);
  const std::size_t parent = isf.support().size();
  switch (best.gate) {
    case GateKind::kOr: {
      ++stats_.strong_or;
      const Isf isf_a = derive_or_component_a(isf, xa, xb);
      const Result a = bidecompose(isf_a);
      const Isf isf_b = derive_or_component_b(isf, a.func, xa);
      const Result b = bidecompose(isf_b);
      check_strong_support("OR", parent, a);
      check_strong_support("OR", parent, b);
      return combine(GateKind::kOr, a, b);
    }
    case GateKind::kAnd: {
      ++stats_.strong_and;
      const Isf isf_a = derive_and_component_a(isf, xa, xb);
      const Result a = bidecompose(isf_a);
      const Isf isf_b = derive_and_component_b(isf, a.func, xa);
      const Result b = bidecompose(isf_b);
      check_strong_support("AND", parent, a);
      check_strong_support("AND", parent, b);
      return combine(GateKind::kAnd, a, b);
    }
    case GateKind::kExor: {
      ++stats_.strong_exor;
      const auto comps = check_exor_bidecomp(isf, xa, xb);
      if (!comps) {
        // The grouping pass verified decomposability; this cannot happen.
        throw std::logic_error("decompose_strong: EXOR grouping not decomposable");
      }
      const Result a = bidecompose(comps->a);
      const Result b = bidecompose(comps->b);
      check_strong_support("EXOR", parent, a);
      check_strong_support("EXOR", parent, b);
      return combine(GateKind::kExor, a, b);
    }
  }
  throw std::logic_error("decompose_strong: unreachable");
}

BiDecomposer::Result BiDecomposer::decompose_weak(const Isf& isf,
                                                  const WeakGrouping& weak) {
  const std::span<const unsigned> xa(weak.xa);
  if (weak.gate == GateKind::kOr) {
    ++stats_.weak_or;
    const Isf isf_a = derive_weak_or_component_a(isf, xa);
    const Result a = bidecompose(isf_a);
    const Isf isf_b = derive_weak_or_component_b(isf, a.func, xa);
    const Result b = bidecompose(isf_b);
    return combine(GateKind::kOr, a, b);
  }
  ++stats_.weak_and;
  const Isf isf_a = derive_weak_and_component_a(isf, xa);
  const Result a = bidecompose(isf_a);
  const Isf isf_b = derive_weak_and_component_b(isf, a.func, xa);
  const Result b = bidecompose(isf_b);
  return combine(GateKind::kAnd, a, b);
}

unsigned BiDecomposer::most_bound_variable(const Isf& isf,
                                           std::span<const unsigned> support) {
  // Count the nodes labelled with each variable across the Q and R DAGs
  // (shared nodes once per function — close enough for a ranking). Walked
  // through the public handle API: this runs only on the degraded fallback
  // path, where clarity beats the cost of handle churn.
  std::vector<std::size_t> counts(mgr_.num_vars(), 0);
  std::vector<bool> seen;
  for (const Bdd* root : {&isf.q(), &isf.r()}) {
    seen.clear();
    std::vector<Bdd> stack;
    if (!root->is_const()) stack.push_back(*root);
    while (!stack.empty()) {
      const Bdd f = std::move(stack.back());
      stack.pop_back();
      const std::size_t idx = f.id() >> 1;  // node index, polarity-blind
      if (idx >= seen.size()) seen.resize(idx + 1, false);
      if (seen[idx]) continue;
      seen[idx] = true;
      ++counts[f.top_var()];
      if (!f.low().is_const()) stack.push_back(f.low());
      if (!f.high().is_const()) stack.push_back(f.high());
    }
  }
  unsigned best = support.front();
  for (const unsigned v : support) {
    if (counts[v] > counts[best]) best = v;
  }
  return best;
}

BiDecomposer::Result BiDecomposer::decompose_shannon(const Isf& isf, unsigned v) {
  // F = (~v & F|v=0) | (v & F|v=1). Never reached for functions the paper's
  // flow handles (see Section 7 discussion); kept as a safety net so the
  // recursion provably terminates for any input.
  ++stats_.shannon_fallback;
  const Result lo = bidecompose(isf.cofactor(v, false));
  const Result hi = bidecompose(isf.cofactor(v, true));
  const Bdd x = mgr_.var(v);
  const SignalId sx = var_signal_[v];
  const Result left{~x & lo.func, net_.add_and(net_.add_not(sx), lo.signal)};
  const Result right{x & hi.func, net_.add_and(sx, hi.signal)};
  return combine(GateKind::kOr, left, right);
}

// ---------------------------------------------------------------------------
// BiDecompose (Fig. 7)
// ---------------------------------------------------------------------------

BiDecomposer::Result BiDecomposer::bidecompose(const Isf& isf_in) {
  ++stats_.calls;

  // RemoveInessentialVariables.
  Isf isf = isf_in.remove_inessential_variables();
  const std::vector<unsigned> support = isf.support();
  if (support.size() < isf_in.support().size()) ++stats_.inessential_removed;

  // LookupCacheForACompatibleComponent.
  if (options_.use_cache) {
    ++stats_.cache_lookups;
    if (const auto hit = cache_.lookup(isf, support)) {
      if (hit->complemented) {
        ++stats_.cache_complement_hits;
        return Result{hit->func, net_.add_not(hit->signal)};
      }
      ++stats_.cache_hits;
      return Result{hit->func, hit->signal};
    }
  }

  // Cross-job cache: consult after a per-job miss, for cones worth the
  // 2^k signature enumeration. A hit is only a *candidate* — the component
  // is rebuilt in this job's manager and must pass Theorem-6 compatibility
  // against this job's interval (directly or complemented) before any of
  // its gates touch the netlist; a failing entry is evicted and the call
  // proceeds as a miss.
  const bool shared_eligible = options_.shared_cache != nullptr &&
                               support.size() >= 3 &&
                               support.size() <= options_.shared_max_support;
  ComponentSignature sig;
  if (shared_eligible) {
    sig = interval_signature(isf, support);
    ++stats_.shared_lookups;
    if (const auto found = options_.shared_cache->lookup(sig)) {
      if (auto spliced = try_shared_component(isf, support, found->impl)) {
        ++stats_.shared_hits;
        if (options_.use_cache) cache_.insert(spliced->func, spliced->signal);
        return *spliced;
      }
      ++stats_.shared_rejects;
      options_.shared_cache->reject(sig);
    }
  }

  Result result;
  if (support.size() <= 2) {
    result = terminal_case(isf, support);
  } else if (options_.force_shannon) {
    // Degradation-ladder terminal rung: no grouping search at all, just
    // Shannon cofactoring on the most-bound variable. Guaranteed to
    // terminate (every step removes one support variable) and every step
    // costs two cofactors, so it survives budgets that starve the flow.
    result = decompose_shannon(isf, most_bound_variable(isf, support));
  } else {
    std::optional<BestGrouping> best;
    if (options_.use_strong) best = find_best_grouping(isf, support, options_);
    if (best) {
      result = decompose_strong(isf, *best);
    } else if (const auto weak = group_variables_weak(isf, support, options_)) {
      result = decompose_weak(isf, *weak);
    } else {
      result = decompose_shannon(isf, support.front());
    }
  }

  assert(isf.is_compatible(result.func));
  if (options_.use_cache) cache_.insert(result.func, result.signal);
  if (shared_eligible) publish_shared_component(sig, result, support);
  return result;
}

// ---------------------------------------------------------------------------
// Cross-job component reuse (server mode)
// ---------------------------------------------------------------------------

std::optional<BiDecomposer::Result> BiDecomposer::try_shared_component(
    const Isf& isf, std::span<const unsigned> support, const Netlist& impl) {
  if (impl.num_inputs() != support.size() || impl.num_outputs() != 1) {
    return std::nullopt;  // malformed entry; caller evicts it
  }
  Bdd f;
  try {
    f = component_to_bdd(mgr_, impl, support);
  } catch (const std::exception&) {
    return std::nullopt;  // unreplayable entry; caller evicts it
  }
  const bool direct = isf.is_compatible(f);
  if (!direct && !isf.is_compatible_complement(f)) return std::nullopt;
  std::vector<SignalId> ins;
  ins.reserve(support.size());
  for (const unsigned v : support) ins.push_back(var_signal_[v]);
  const SignalId s = splice_component(net_, impl, ins);
  if (direct) return Result{f, s};
  // Theorem 6: the complement is compatible; reuse through an inverter.
  return Result{~f, net_.add_not(s)};
}

void BiDecomposer::publish_shared_component(const ComponentSignature& sig,
                                            const Result& result,
                                            std::span<const unsigned> support) {
  std::vector<SignalId> ins;
  ins.reserve(support.size());
  for (const unsigned v : support) ins.push_back(var_signal_[v]);
  auto impl =
      extract_component(net_, result.signal, ins, options_.shared_max_gates);
  if (!impl) return;  // cone escapes the support set or is too large
  // Fault-injection site: a poisoned publish stores a functionally wrong
  // component (output XOR input 0 — an output inverter would be healed by
  // the consumer's legitimate Theorem-6 complement handling). Consumers
  // must catch it by validation and degrade to a miss.
  if (BddFaultInjector* inj = mgr_.fault_injector();
      inj != nullptr && inj->poison_cache_insert()) {
    *impl = corrupt_component(*impl);
  }
  ++stats_.shared_publishes;
  options_.shared_cache->publish(sig, *impl);
}

}  // namespace bidec
