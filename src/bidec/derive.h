// Deriving the component ISFs once a grouping and gate type are chosen:
// Theorem 3 (component A), Theorem 4 (component B given the realized CSF of
// A), their AND duals, and the weak-decomposition variants of Table 1.
#ifndef BIDEC_BIDEC_DERIVE_H
#define BIDEC_BIDEC_DERIVE_H

#include <span>

#include "isf/isf.h"

namespace bidec {

/// Theorem 3: ISF of component A for a strong OR decomposition:
///   Q_A = exists_{X_B} (Q & exists_{X_A} R),   R_A = exists_{X_B} R.
[[nodiscard]] Isf derive_or_component_a(const Isf& f, std::span<const unsigned> xa,
                                        std::span<const unsigned> xb);

/// Theorem 4: ISF of component B once a CSF f_a realizing A is fixed:
///   Q_B = exists_{X_A} (Q - f_a),   R_B = exists_{X_A} R.
[[nodiscard]] Isf derive_or_component_b(const Isf& f, const Bdd& fa,
                                        std::span<const unsigned> xa);

/// AND duals of Theorems 3 and 4 (obtained by decomposing the complemented
/// interval with OR and complementing the components).
[[nodiscard]] Isf derive_and_component_a(const Isf& f, std::span<const unsigned> xa,
                                         std::span<const unsigned> xb);
[[nodiscard]] Isf derive_and_component_b(const Isf& f, const Bdd& fa,
                                         std::span<const unsigned> xa);

/// Weak OR (Table 1): Q_A = Q & exists_{X_A} R, R_A = R; component A keeps
/// the full support but gains don't-cares.
[[nodiscard]] Isf derive_weak_or_component_a(const Isf& f, std::span<const unsigned> xa);
/// Weak OR component B: Q_B = exists_{X_A} (Q - f_a), R_B = exists_{X_A} R.
[[nodiscard]] Isf derive_weak_or_component_b(const Isf& f, const Bdd& fa,
                                             std::span<const unsigned> xa);

/// Weak AND duals.
[[nodiscard]] Isf derive_weak_and_component_a(const Isf& f, std::span<const unsigned> xa);
[[nodiscard]] Isf derive_weak_and_component_b(const Isf& f, const Bdd& fa,
                                              std::span<const unsigned> xa);

}  // namespace bidec

#endif  // BIDEC_BIDEC_DERIVE_H
