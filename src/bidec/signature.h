// Manager-independent component signatures for cross-job reuse. A cone of
// the decomposition is identified by its *normalized interval*: the truth
// bits of the on-set Q and the upper bound ~R enumerated over the cone's
// support variables in sorted order, with variable i of the signature being
// the i-th support variable (positions, not manager indices). Two cones in
// different jobs — over different managers, even over different variable
// index sets — get equal signatures exactly when their intervals are the
// same Boolean object, which is what makes the signature usable as a key
// in a cache shared by every worker of a long-lived server.
//
// The 64-bit `hash` is the shard/bucket key ("support-hashed CSF
// signature"); the full bit vectors ride along so a cache can reject hash
// collisions exactly, and so a validation pass can re-check a reused
// component against the interval without trusting the cache.
#ifndef BIDEC_BIDEC_SIGNATURE_H
#define BIDEC_BIDEC_SIGNATURE_H

#include <cstdint>
#include <span>
#include <vector>

#include "isf/isf.h"

namespace bidec {

struct ComponentSignature {
  unsigned k = 0;  ///< support size; truth vectors hold 2^k minterm bits
  std::vector<std::uint64_t> q_bits;   ///< on-set Q over support minterms
  std::vector<std::uint64_t> nr_bits;  ///< upper bound ~R over support minterms
  std::uint64_t hash = 0;              ///< 64-bit key over (k, q_bits, nr_bits)

  [[nodiscard]] bool same_interval(const ComponentSignature& other) const noexcept {
    return k == other.k && q_bits == other.q_bits && nr_bits == other.nr_bits;
  }
};

/// Truth bits of `f` over the minterms of `support` (sorted manager
/// variable indices): bit m of word m/64 is f evaluated with support[p] set
/// to bit p of m and every other variable 0. `f`'s support must be
/// contained in `support`. Cost: 2^k evaluations.
[[nodiscard]] std::vector<std::uint64_t> truth_bits(const BddManager& mgr, const Bdd& f,
                                                    std::span<const unsigned> support);

/// Signature of an ISF's interval [Q, ~R] over `support` (which must cover
/// the supports of both bounds, sorted ascending).
[[nodiscard]] ComponentSignature interval_signature(const Isf& isf,
                                                    std::span<const unsigned> support);

}  // namespace bidec

#endif  // BIDEC_BIDEC_SIGNATURE_H
