// Decomposability checks: Theorem 1 (OR), its AND dual, Theorem 2 (EXOR
// with singleton variable sets) and the weak-decomposition gain tests of
// Table 1. All are quantified Boolean formulas over the ISF's (Q, R).
#ifndef BIDEC_BIDEC_CHECK_H
#define BIDEC_BIDEC_CHECK_H

#include <span>
#include <vector>

#include "isf/isf.h"

namespace bidec {

/// A candidate variable grouping: the private sets of the two components.
/// The common set X_C is implicitly everything else in the support.
struct VarGrouping {
  std::vector<unsigned> xa;
  std::vector<unsigned> xb;

  [[nodiscard]] bool empty() const noexcept { return xa.empty() || xb.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return xa.size() + xb.size(); }
  [[nodiscard]] std::size_t imbalance() const noexcept {
    return xa.size() > xb.size() ? xa.size() - xb.size() : xb.size() - xa.size();
  }
};

/// Theorem 1: F = (Q, R) is OR-bi-decomposable with (X_A, X_B) iff
///   Q & exists_{X_A} R & exists_{X_B} R == 0.
[[nodiscard]] bool check_or_decomposable(const Isf& f, std::span<const unsigned> xa,
                                         std::span<const unsigned> xb);

/// Dual of Theorem 1: AND-bi-decomposability (swap on-set and off-set).
[[nodiscard]] bool check_and_decomposable(const Isf& f, std::span<const unsigned> xa,
                                          std::span<const unsigned> xb);

/// Theorem 2: EXOR-bi-decomposability for |X_A| = |X_B| = 1. The on/off-sets
/// of the Boolean derivative of F w.r.t. the variable in X_A are
///   Q_D = exists_a Q & exists_a R,   R_D = forall_a Q | forall_a R,
/// and the condition is Q_D & exists_b R_D == 0.
[[nodiscard]] bool check_exor_decomposable_11(const Isf& f, unsigned a, unsigned b);

/// Derivative of an ISF w.r.t. one variable, as an ISF over the remaining
/// variables (helper exposed for tests; see Theorem 2).
[[nodiscard]] Isf isf_derivative(const Isf& f, unsigned v);

/// Weak OR decomposition with private set X_A is *useful* (gains don't-cares
/// for component A) iff Q - exists_{X_A} R != 0 (Table 1).
[[nodiscard]] bool check_weak_or_useful(const Isf& f, std::span<const unsigned> xa);

/// Dual for weak AND: R - exists_{X_A} Q != 0.
[[nodiscard]] bool check_weak_and_useful(const Isf& f, std::span<const unsigned> xa);

/// Number of minterms moved into the don't-care set of component A by a weak
/// OR (resp. AND) decomposition with private set X_A; used to rank X_A
/// candidates in GroupVariablesWeak.
[[nodiscard]] double weak_or_gain(const Isf& f, std::span<const unsigned> xa);
[[nodiscard]] double weak_and_gain(const Isf& f, std::span<const unsigned> xa);

}  // namespace bidec

#endif  // BIDEC_BIDEC_CHECK_H
