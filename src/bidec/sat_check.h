// SAT-based decomposability checks: the two-copy CNF encoding of Theorem 1
// (after Chen/Janota/Marques-Silva's QBF formulation of bi-decomposition),
// existentially collapsed so a plain SAT call decides it. F = (Q, R) is
// OR-bi-decomposable with (X_A, X_B) iff
//   Q(x) & R(x') & R(x'')  is unsatisfiable,
// where x' ranges freely over X_A but equals x elsewhere, and x'' ranges
// freely over X_B but equals x elsewhere — the satisfying assignments are
// exactly the witnesses of Q & exists_{X_A} R & exists_{X_B} R from the BDD
// formula in check.h, so both engines must agree verdict-for-verdict.
#ifndef BIDEC_BIDEC_SAT_CHECK_H
#define BIDEC_BIDEC_SAT_CHECK_H

#include <span>

#include "isf/isf.h"
#include "proof/policy.h"

namespace bidec {

/// SAT counterpart of check_or_decomposable (Theorem 1).
[[nodiscard]] bool sat_check_or_decomposable(const Isf& f,
                                             std::span<const unsigned> xa,
                                             std::span<const unsigned> xb);

/// SAT counterpart of check_and_decomposable (the OR dual on (R, Q)).
[[nodiscard]] bool sat_check_and_decomposable(const Isf& f,
                                              std::span<const unsigned> xa,
                                              std::span<const unsigned> xb);

/// Proof-carrying variants. Under ProofPolicy::kLog the solver's DRAT log
/// is recorded and its sizes folded into `*stats`; under kCheck a
/// "decomposable" verdict (UNSAT of the two-copy encoding) is additionally
/// re-validated by the independent checker before being returned — a
/// rejected proof throws proof::ProofCheckError. The degenerate fast paths
/// never build a solver, so they log and check nothing. `stats` may be
/// null; kOff delegates to the plain overloads above.
[[nodiscard]] bool sat_check_or_decomposable(const Isf& f,
                                             std::span<const unsigned> xa,
                                             std::span<const unsigned> xb,
                                             proof::ProofPolicy policy,
                                             proof::ProofStats* stats);

[[nodiscard]] bool sat_check_and_decomposable(const Isf& f,
                                              std::span<const unsigned> xa,
                                              std::span<const unsigned> xb,
                                              proof::ProofPolicy policy,
                                              proof::ProofStats* stats);

}  // namespace bidec

#endif  // BIDEC_BIDEC_SAT_CHECK_H
