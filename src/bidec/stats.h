// Counters describing one run of the decomposition; several of the paper's
// prose claims (share of weak calls, cache reuse rate, inessential-variable
// frequency) are checked against these in the benches.
#ifndef BIDEC_BIDEC_STATS_H
#define BIDEC_BIDEC_STATS_H

#include <cstddef>

namespace bidec {

struct BidecStats {
  std::size_t calls = 0;             ///< recursive BiDecompose invocations
  std::size_t terminal_cases = 0;    ///< support <= 2
  std::size_t cache_hits = 0;        ///< compatible component found (Sec. 6)
  std::size_t cache_complement_hits = 0;  ///< reused through an inverter
  std::size_t cache_lookups = 0;
  std::size_t strong_or = 0;
  std::size_t strong_and = 0;
  std::size_t strong_exor = 0;
  std::size_t weak_or = 0;
  std::size_t weak_and = 0;
  std::size_t shannon_fallback = 0;  ///< weak gave no gain (expected ~never)
  std::size_t inessential_removed = 0;  ///< calls that dropped variables
  std::size_t shared_lookups = 0;    ///< cross-job cache consultations
  std::size_t shared_hits = 0;       ///< validated cross-job reuses
  std::size_t shared_rejects = 0;    ///< entries that failed validation
  std::size_t shared_publishes = 0;  ///< cones exported for future jobs

  [[nodiscard]] std::size_t strong_total() const {
    return strong_or + strong_and + strong_exor;
  }
  [[nodiscard]] std::size_t weak_total() const { return weak_or + weak_and; }

  void reset() { *this = BidecStats{}; }
};

}  // namespace bidec

#endif  // BIDEC_BIDEC_STATS_H
