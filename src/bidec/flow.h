// End-to-end synthesis flow: optional static variable reordering (FORCE or
// sifting, Section "bdd_reorder"), recursive bi-decomposition of every
// output, inverter absorption and optional technology mapping. This is the
// API the benches and examples drive; BiDecomposer remains the lower-level
// building block.
#ifndef BIDEC_BIDEC_FLOW_H
#define BIDEC_BIDEC_FLOW_H

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "bidec/bidecomposer.h"
#include "lint/netlist_lint.h"
#include "netlist/library.h"
#include "proof/policy.h"

namespace bidec {

enum class OrderHeuristic {
  kNone,   ///< keep the specification's variable order
  kForce,  ///< FORCE hypergraph placement (cheap, linear passes)
  kSift,   ///< greedy position search (quadratic rebuilds, best quality)
};

/// Which reasoning engine synthesizes a job. synthesize_bidecomp itself is
/// the BDD flow and ignores this field; the selection is applied one level
/// up (batch engine, server, CLI), where the SAT path can skip BDD
/// materialization entirely.
enum class EngineSelect : std::uint8_t {
  kBdd,   ///< the BDD flow below — the legacy default
  kSat,   ///< the SAT engine (src/satdec): no BddManager on the synthesis path
  kAuto,  ///< start on BDDs; fall over to the SAT rung of the degradation
          ///< ladder when a node-budget/step/deadline trip degrades the job
};

[[nodiscard]] const char* to_string(EngineSelect engine) noexcept;
/// Parse "bdd" | "sat" | "auto"; nullopt on anything else.
[[nodiscard]] std::optional<EngineSelect> parse_engine_select(std::string_view name);

struct FlowOptions {
  BidecOptions bidec;
  OrderHeuristic reorder = OrderHeuristic::kNone;
  /// Engine selection for the flow's driver (see EngineSelect). Carried in
  /// FlowOptions so one options object travels through JobSpec/server
  /// protocol; the bdd-only entry point below does not read it.
  EngineSelect engine = EngineSelect::kBdd;
  /// Map onto this library after decomposition (absorbing inverters first).
  std::optional<CellLibrary> library;
  /// kOff skips linting entirely; kWarn/kError run the structural netlist
  /// linter over the result and collect the decomposer's Theorem-5 findings
  /// into FlowResult::lint. The flow itself never fails on findings — the
  /// caller (CLI, batch engine) applies the policy.
  LintMode lint = LintMode::kOff;
  /// Clause-proof policy for every CDCL solver working on this job (the
  /// SAT engine's oracles and the SAT verifier's miters). Like `engine`,
  /// carried here so one options object travels through JobSpec and the
  /// server protocol; the bdd-only entry point does not read it.
  proof::ProofPolicy proof = proof::ProofPolicy::kOff;
  /// Worker threads for the BDD kernel's task-parallel apply/ITE
  /// (DESIGN.md §16). 1 = pure serial (bit-identical results and stable
  /// JSON), 0 = one per hardware thread. Carried here like `engine` so the
  /// knob travels through JobSpec and the server protocol.
  unsigned threads = 1;
};

struct FlowResult {
  Netlist netlist;          ///< inputs in the original variable order
  BidecStats stats;
  std::vector<unsigned> order;  ///< order[level] = original variable
  std::size_t bdd_nodes_before = 0;  ///< shared spec size, original order
  std::size_t bdd_nodes_after = 0;   ///< shared spec size, chosen order
  LintReport lint;  ///< empty unless FlowOptions::lint requested a run
};

/// Decompose `spec` (over `mgr`) into a netlist whose primary inputs are in
/// the original variable order regardless of the internal BDD order.
[[nodiscard]] FlowResult synthesize_bidecomp(BddManager& mgr, std::span<const Isf> spec,
                                             const std::vector<std::string>& input_names,
                                             const std::vector<std::string>& output_names,
                                             const FlowOptions& options = {});

}  // namespace bidec

#endif  // BIDEC_BIDEC_FLOW_H
