// The recursive bi-decomposition driver (paper Fig. 7): turns ISFs into a
// shared netlist of two-input AND/OR/EXOR gates (mapped to
// NAND/NOR/XNOR where an inverter can be absorbed). Multi-output functions
// are decomposed through one BiDecomposer instance so that the component
// cache and the structural hashing share gates across outputs.
#ifndef BIDEC_BIDEC_BIDECOMPOSER_H
#define BIDEC_BIDEC_BIDECOMPOSER_H

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "bidec/grouping.h"
#include "bidec/options.h"
#include "bidec/reuse_cache.h"
#include "bidec/stats.h"
#include "isf/isf.h"
#include "lint/diagnostics.h"
#include "netlist/netlist.h"

namespace bidec {

struct ComponentSignature;

class BiDecomposer {
 public:
  /// Creates one netlist primary input per manager variable, named
  /// `input_names[i]` (or "x<i>" when names are not provided).
  BiDecomposer(BddManager& mgr, BidecOptions options = {},
               std::vector<std::string> input_names = {});

  BiDecomposer(const BiDecomposer&) = delete;
  BiDecomposer& operator=(const BiDecomposer&) = delete;

  /// Decompose one output; returns the signal and registers it as a primary
  /// output under `name`. The returned CSF is compatible with `isf`.
  SignalId add_output(const std::string& name, const Isf& isf);

  /// Decompose without registering an output (the building block).
  [[nodiscard]] std::pair<Bdd, SignalId> decompose(const Isf& isf);

  [[nodiscard]] Netlist& netlist() noexcept { return net_; }
  [[nodiscard]] const Netlist& netlist() const noexcept { return net_; }
  [[nodiscard]] const BidecStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const BidecOptions& options() const noexcept { return options_; }

  /// Self-audit findings collected during decomposition. Today this is the
  /// exact Theorem-5 precondition: every strong-split component must have
  /// strictly smaller support than its parent (rule NL109). Weak splits are
  /// exempt — their second component legitimately keeps full support — which
  /// is why this check lives here, where the split kind is known, and not in
  /// the structural netlist linter.
  [[nodiscard]] const LintReport& lint() const noexcept { return lint_; }

  /// Run the inverter-absorption mapping once all outputs are added (called
  /// by finish(); exposed for tests). Invalidates cached SignalIds.
  void map_inverters();

  /// Final mapping pass per options; call after the last add_output.
  void finish();

 private:
  struct Result {
    Bdd func;
    SignalId signal = kNoSignal;
  };

  Result bidecompose(const Isf& isf);
  Result terminal_case(const Isf& isf, std::span<const unsigned> support);
  Result combine(GateKind gate, const Result& a, const Result& b);
  Result decompose_strong(const Isf& isf, const BestGrouping& best);
  void check_strong_support(const char* gate, std::size_t parent_support,
                            const Result& component);
  Result decompose_weak(const Isf& isf, const WeakGrouping& weak);
  Result decompose_shannon(const Isf& isf, unsigned v);
  /// Validate-and-splice a cross-job cache candidate: rebuild its BDD in
  /// this manager, Theorem-6 check against the interval (directly or
  /// complemented), splice on success; nullopt = reject.
  std::optional<Result> try_shared_component(const Isf& isf,
                                             std::span<const unsigned> support,
                                             const Netlist& impl);
  /// Export a freshly realized cone to the cross-job sink (no-op when the
  /// cone escapes `support` or exceeds the size cap).
  void publish_shared_component(const ComponentSignature& sig,
                                const Result& result,
                                std::span<const unsigned> support);
  /// The support variable labelling the most nodes of Q and R together —
  /// the variable the interval is most tightly bound by, so cofactoring on
  /// it shrinks the DAGs fastest. Drives the forced-Shannon fallback.
  [[nodiscard]] unsigned most_bound_variable(const Isf& isf,
                                             std::span<const unsigned> support);

  BddManager& mgr_;
  BidecOptions options_;
  Netlist net_;
  BidecStats stats_;
  LintReport lint_;
  ReuseCache cache_;
  std::vector<SignalId> var_signal_;  // BDD variable -> netlist input
};

}  // namespace bidec

#endif  // BIDEC_BIDEC_BIDECOMPOSER_H
