// Component-reuse cache (paper Section 6): a lossless hash table from
// support sets to the completely specified functions already realized as
// netlist gates. A new ISF first searches the functions with the same
// support for one that is compatible with the interval (Q, ~R), or whose
// complement is (Theorem 6); a hit returns the existing netlist signal and
// skips the whole decomposition of that cone.
#ifndef BIDEC_BIDEC_REUSE_CACHE_H
#define BIDEC_BIDEC_REUSE_CACHE_H

#include <cstddef>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "isf/isf.h"
#include "netlist/netlist.h"

namespace bidec {

class ReuseCache {
 public:
  struct Hit {
    Bdd func;          ///< the compatible CSF (already complemented if needed)
    SignalId signal;   ///< netlist signal realizing `func`'s stored form
    bool complemented; ///< true if the caller must add an inverter
  };

  explicit ReuseCache(BddManager& mgr) : mgr_(&mgr) {}

  /// Search the bucket of `support` for a CSF compatible with `isf` (or a
  /// complement-compatible one). `support` must be the support of `isf`.
  [[nodiscard]] std::optional<Hit> lookup(const Isf& isf,
                                          std::span<const unsigned> support);

  /// Register a realized component. No-op if the same function is already
  /// cached for its support.
  void insert(const Bdd& csf, SignalId signal);

  [[nodiscard]] std::size_t size() const noexcept { return entries_; }

 private:
  struct Entry {
    Bdd func;
    SignalId signal;
  };

  BddManager* mgr_;
  // Key: the NodeId of the support cube. The cube BDD of every bucket is
  // kept alive by the `keys_` handles, so ids are stable across GC.
  std::unordered_map<NodeId, std::vector<Entry>> buckets_;
  std::vector<Bdd> keys_;
  std::size_t entries_ = 0;
};

}  // namespace bidec

#endif  // BIDEC_BIDEC_REUSE_CACHE_H
