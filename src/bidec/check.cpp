#include "bidec/check.h"

namespace bidec {

bool check_or_decomposable(const Isf& f, std::span<const unsigned> xa,
                           std::span<const unsigned> xb) {
  BddManager& mgr = *f.manager();
  const Bdd exa_r = mgr.exists(f.r(), xa);
  // Short-circuit: Q & exists_XA R is often already empty.
  const Bdd q_and = f.q() & exa_r;
  if (q_and.is_false()) return true;
  const Bdd exb_r = mgr.exists(f.r(), xb);
  return (q_and & exb_r).is_false();
}

bool check_and_decomposable(const Isf& f, std::span<const unsigned> xa,
                            std::span<const unsigned> xb) {
  // AND-decomposing F is OR-decomposing the complemented interval (R, Q).
  return check_or_decomposable(Isf(f.r(), f.q()), xa, xb);
}

Isf isf_derivative(const Isf& f, unsigned v) {
  BddManager& mgr = *f.manager();
  const unsigned vars[] = {v};
  const Bdd qd = mgr.exists(f.q(), vars) & mgr.exists(f.r(), vars);
  const Bdd rd = mgr.forall(f.q(), vars) | mgr.forall(f.r(), vars);
  return Isf(qd, rd);
}

bool check_exor_decomposable_11(const Isf& f, unsigned a, unsigned b) {
  BddManager& mgr = *f.manager();
  const Isf d = isf_derivative(f, a);
  const unsigned vars_b[] = {b};
  return (d.q() & mgr.exists(d.r(), vars_b)).is_false();
}

bool check_weak_or_useful(const Isf& f, std::span<const unsigned> xa) {
  BddManager& mgr = *f.manager();
  return !(f.q() - mgr.exists(f.r(), xa)).is_false();
}

bool check_weak_and_useful(const Isf& f, std::span<const unsigned> xa) {
  BddManager& mgr = *f.manager();
  return !(f.r() - mgr.exists(f.q(), xa)).is_false();
}

double weak_or_gain(const Isf& f, std::span<const unsigned> xa) {
  BddManager& mgr = *f.manager();
  return mgr.sat_count(f.q() - mgr.exists(f.r(), xa));
}

double weak_and_gain(const Isf& f, std::span<const unsigned> xa) {
  BddManager& mgr = *f.manager();
  return mgr.sat_count(f.r() - mgr.exists(f.q(), xa));
}

}  // namespace bidec
