// Manager-independent job descriptions and per-job reports for the batch
// synthesis engine. `Bdd` handles are bound to one BddManager, so a job is
// submitted as a *specification source* (a PLA/BLIF path or an in-memory
// PLA cover) that the executing worker materializes into its private
// manager before running the ordinary synthesize_bidecomp flow.
#ifndef BIDEC_ENGINE_JOB_H
#define BIDEC_ENGINE_JOB_H

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "bidec/flow.h"
#include "io/pla.h"
#include "netlist/netlist.h"
#include "verify/verifier.h"

namespace bidec {

enum class JobStatus {
  kOk,            ///< synthesized and (if requested) verified
  kTimeout,       ///< cancelled by step budget or deadline (BddAbortError)
  kVerifyFailed,  ///< synthesized but the verifier rejected an output
  kLintFailed,    ///< synthesized but the post-synthesis lint gate rejected it
  kError,         ///< load/parse/synthesis raised an error
};

[[nodiscard]] const char* to_string(JobStatus status) noexcept;

/// One unit of work. Everything here is manager-independent and immutable
/// while the engine runs, so specs can be built on any thread.
struct JobSpec {
  std::string name;  ///< label for reports; defaults to the path if empty

  /// Where the specification comes from: a path ending in .pla or .blif,
  /// or an already-parsed PLA cover.
  std::variant<std::string, PlaFile> source;

  FlowOptions flow;

  /// Cancel the job after this many BDD steps (0 = engine default).
  std::uint64_t step_budget = 0;
  /// Cancel the job after this much wall time (0 = engine default).
  std::uint32_t timeout_ms = 0;
  /// Which engine(s) check the result against the specification. The SAT
  /// engine verifies straight against the job source (PLA cover rows or the
  /// original BLIF netlist), so kBoth cross-checks two independent
  /// reasoning paths; a disagreement is reported as kVerifyFailed.
  VerifyEngine verify = VerifyEngine::kBdd;

  // The post-synthesis lint gate is configured through `flow.lint`:
  // kWarn records findings in the JobReport, kError additionally fails the
  // job (kLintFailed) when any warning-or-worse finding exists.
};

/// Everything measured about one finished job.
struct JobReport {
  std::size_t job_id = 0;
  std::string name;
  JobStatus status = JobStatus::kOk;
  std::string error;  ///< message for kError / failing output for kVerifyFailed

  std::size_t worker = 0;  ///< index of the worker thread that ran the job
  double wall_ms = 0.0;

  /// Engine(s) that actually ran (kNone when verification was off or the
  /// job died before the netlist existed). Verdicts: 1 = pass, 0 = fail,
  /// -1 = that engine did not run.
  VerifyEngine verify_engine = VerifyEngine::kNone;
  int bdd_verdict = -1;
  int sat_verdict = -1;
  /// Output indices rejected by at least one engine that ran.
  std::vector<std::size_t> failed_outputs;

  unsigned num_inputs = 0;
  unsigned num_outputs = 0;

  // BDD substrate metrics, measured on the worker's manager since the
  // job-start reset_stats() call.
  std::uint64_t bdd_steps = 0;
  std::size_t peak_nodes = 0;
  std::size_t gc_runs = 0;
  double gc_ms = 0.0;  ///< wall time spent inside collect_garbage
  double unique_hit_rate = 0.0;
  double cache_hit_rate = 0.0;
  // Computed-cache dynamics (aging two-way buckets, GC-surviving entries).
  std::uint64_t cache_inserts = 0;
  std::uint64_t cache_resizes = 0;
  std::uint64_t cache_swept = 0;  ///< entries dropped by GC (dead operands)
  std::uint64_t cache_kept = 0;   ///< entries that survived GC sweeps

  // Decomposition call counters (empty unless the flow ran to completion).
  BidecStats bidec;

  // Gate counts by type of the produced netlist.
  /// Structural lint findings (empty unless JobSpec::flow.lint ran).
  LintReport lint;

  std::size_t gates = 0;
  std::size_t two_input = 0;
  std::size_t exors = 0;
  std::size_t inverters = 0;
  unsigned levels = 0;
  double area = 0.0;
  double delay = 0.0;

  [[nodiscard]] std::string to_json() const;
};

/// Report plus the synthesized netlist (valid only for kOk/kVerifyFailed;
/// netlists are plain DAGs with no manager dependency).
struct JobResult {
  JobReport report;
  Netlist netlist;
};

/// Engine-level aggregate over one run() call.
struct EngineReport {
  std::size_t jobs = 0;
  std::size_t ok = 0;
  std::size_t timeouts = 0;
  std::size_t verify_failures = 0;
  std::size_t lint_failures = 0;
  std::size_t errors = 0;
  unsigned workers = 0;
  double wall_ms = 0.0;        ///< end-to-end batch wall time
  double total_job_ms = 0.0;   ///< sum of per-job wall times
  std::size_t total_gates = 0;
  std::size_t total_exors = 0;
  std::vector<JobReport> job_reports;

  /// Full serialization: aggregate fields plus one object per job.
  [[nodiscard]] std::string to_json() const;
};

}  // namespace bidec

#endif  // BIDEC_ENGINE_JOB_H
