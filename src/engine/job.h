// Manager-independent job descriptions and per-job reports for the batch
// synthesis engine. `Bdd` handles are bound to one BddManager, so a job is
// submitted as a *specification source* (a PLA/BLIF path or an in-memory
// PLA cover) that the executing worker materializes into its private
// manager before running the ordinary synthesize_bidecomp flow.
#ifndef BIDEC_ENGINE_JOB_H
#define BIDEC_ENGINE_JOB_H

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "bidec/flow.h"
#include "io/pla.h"
#include "netlist/netlist.h"
#include "satdec/options.h"
#include "verify/verifier.h"

namespace bidec {

enum class JobStatus {
  kOk,            ///< synthesized and (if requested) verified
  kDegraded,      ///< synthesized and verified, but on a cheaper ladder rung
                  ///< after resource exhaustion (see JobReport::degradation)
  kTimeout,       ///< cancelled by step/node budget or deadline (all retries)
  kVerifyFailed,  ///< synthesized but the verifier rejected an output
  kLintFailed,    ///< synthesized but the post-synthesis lint gate rejected it
  kError,         ///< load/parse/synthesis raised an error
};

[[nodiscard]] const char* to_string(JobStatus status) noexcept;

/// One rung of the degradation ladder, cheapest last. On a budget or
/// deadline trip the engine retries the job one rung further down (with an
/// exponentially grown step budget), ending at the Shannon rung, which
/// decomposes any ISF under any budget that admits plain cofactoring.
enum class DegradeRung : std::uint8_t {
  kFull,           ///< the job's submitted flow options, unchanged
  kCheapGrouping,  ///< no reordering, single grouping pair, no regrouping
  kWeakOnly,       ///< additionally skip the strong-grouping search
  kSatRescue,      ///< the SAT engine (src/satdec): abandons the BDD substrate
                   ///< entirely, so a node-budget trip cannot repeat. Only on
                   ///< the ladder when FlowOptions::engine is kSat or kAuto.
  kShannon,        ///< forced Shannon cofactoring: the guaranteed terminal rung
};

[[nodiscard]] const char* to_string(DegradeRung rung) noexcept;

/// One attempt in a job's degradation trail: which rung ran under which
/// limits and how it ended. `outcome` is "ok" for the successful attempt,
/// otherwise the abort/exception message that triggered the next retry.
struct DegradeStep {
  DegradeRung rung = DegradeRung::kFull;
  std::uint64_t step_budget = 0;  ///< effective budget of the attempt (0 = none)
  std::uint32_t timeout_ms = 0;   ///< effective deadline of the attempt (0 = none)
  std::string outcome;
  bool success = false;
};

/// One unit of work. Everything here is manager-independent and immutable
/// while the engine runs, so specs can be built on any thread.
struct JobSpec {
  std::string name;  ///< label for reports; defaults to the path if empty

  /// Where the specification comes from: a path ending in .pla or .blif,
  /// or an already-parsed PLA cover.
  std::variant<std::string, PlaFile> source;

  FlowOptions flow;

  /// Cancel the job after this many BDD steps (0 = engine default).
  std::uint64_t step_budget = 0;
  /// Cancel the job after this much wall time (0 = engine default).
  std::uint32_t timeout_ms = 0;
  /// Cancel the job once its manager holds more than this many live BDD
  /// nodes (0 = engine default). A resource cap, not a work cap: with
  /// `degrade` set, a trip sends the job down the ladder instead of killing
  /// it, and the cap stays constant across retries (memory does not grow
  /// back just because we are retrying).
  std::size_t node_budget = 0;
  /// Re-run the job up to this many extra times after a budget/deadline
  /// trip or an allocation failure, doubling the step budget and deadline
  /// each time (exponential backoff in work, not in waiting).
  unsigned max_retries = 0;
  /// Walk the degradation ladder on retries: each retry uses progressively
  /// cheaper flow settings, and the final retry always uses the Shannon
  /// rung. Off: retries re-run the submitted settings with bigger budgets.
  bool degrade = false;
  /// Which engine(s) check the result against the specification. The SAT
  /// engine verifies straight against the job source (PLA cover rows or the
  /// original BLIF netlist), so kBoth cross-checks two independent
  /// reasoning paths; a disagreement is reported as kVerifyFailed.
  VerifyEngine verify = VerifyEngine::kBdd;

  // The post-synthesis lint gate is configured through `flow.lint`:
  // kWarn records findings in the JobReport, kError additionally fails the
  // job (kLintFailed) when any warning-or-worse finding exists.
};

/// Everything measured about one finished job.
struct JobReport {
  std::size_t job_id = 0;
  std::string name;
  JobStatus status = JobStatus::kOk;
  std::string error;  ///< message for kError / failing output for kVerifyFailed

  std::size_t worker = 0;  ///< index of the worker thread that ran the job
  double wall_ms = 0.0;

  /// One entry per attempt, in order; empty when the first attempt with the
  /// submitted settings succeeded (the common case records no trail).
  std::vector<DegradeStep> degradation;
  unsigned attempts = 1;  ///< attempts actually run (1 = no retries needed)

  /// Engine(s) that actually ran (kNone when verification was off or the
  /// job died before the netlist existed). Verdicts: 1 = pass, 0 = fail,
  /// -1 = that engine did not run.
  VerifyEngine verify_engine = VerifyEngine::kNone;
  int bdd_verdict = -1;
  int sat_verdict = -1;
  /// CDCL counters of the SAT verifier's private solver (zero unless the
  /// SAT verifier ran). Deterministic, so present in the stable JSON too.
  sat::SolverStats verify_solver;
  /// Output indices rejected by at least one engine that ran.
  std::vector<std::size_t> failed_outputs;

  unsigned num_inputs = 0;
  unsigned num_outputs = 0;

  // BDD substrate metrics, measured on the worker's manager since the
  // job-start reset_stats() call.
  std::uint64_t bdd_steps = 0;
  std::size_t peak_nodes = 0;
  std::size_t gc_runs = 0;
  double gc_ms = 0.0;  ///< wall time spent inside collect_garbage
  double unique_hit_rate = 0.0;
  double cache_hit_rate = 0.0;
  // Computed-cache dynamics (aging two-way buckets, GC-surviving entries).
  std::uint64_t cache_inserts = 0;
  std::uint64_t cache_resizes = 0;
  std::uint64_t cache_swept = 0;  ///< entries dropped by GC (dead operands)
  std::uint64_t cache_kept = 0;   ///< entries that survived GC sweeps

  // Decomposition call counters (empty unless the flow ran to completion).
  BidecStats bidec;

  /// True when the result came out of the SAT engine (FlowOptions::engine
  /// kSat, or a kSatRescue rung of the auto ladder). The satdec counters
  /// below are then valid; they are deterministic (no randomness, private
  /// solvers), so to_stable_json includes them.
  bool sat_engine = false;
  satdec::SatDecStats satdec;

  /// Clause-proof policy the job ran under (FlowOptions::proof) and the
  /// proof statistics aggregated across every solver that worked on the job
  /// (the SAT engine's oracles and the SAT verifier's miters). Deterministic
  /// except check_ms, so the stable JSON carries the counters whenever the
  /// policy is not kOff — and stays byte-identical under the default.
  proof::ProofPolicy proof_policy = proof::ProofPolicy::kOff;
  proof::ProofStats proof;

  /// BDD kernel threads the job ran with (FlowOptions::threads after the
  /// 0 = auto resolution) and the parallel-kernel counters (DESIGN.md §16).
  /// All five counters are exactly zero on a threads=1 run — a pinned test
  /// asserts that, and to_stable_json gates its "parallel" block on
  /// threads > 1 so serial stable output stays byte-identical.
  unsigned threads = 1;
  std::uint64_t par_ops = 0;          ///< parallel regions entered
  std::uint64_t par_tasks = 0;        ///< sibling tasks spawned
  std::uint64_t par_steals = 0;       ///< tasks taken from another worker
  std::uint64_t par_cache_drops = 0;  ///< lossy-cache inserts dropped on race
  std::uint64_t par_cas_retries = 0;  ///< allocation CAS retry loops

  // Gate counts by type of the produced netlist.
  /// Structural lint findings (empty unless JobSpec::flow.lint ran).
  LintReport lint;

  std::size_t gates = 0;
  std::size_t two_input = 0;
  std::size_t exors = 0;
  std::size_t inverters = 0;
  unsigned levels = 0;
  double area = 0.0;
  double delay = 0.0;

  [[nodiscard]] std::string to_json() const;
  /// Scheduling-independent serialization: everything in to_json() except
  /// wall-clock times, the worker index, and the BDD substrate counters
  /// (which depend on which jobs shared a worker's manager). With fresh
  /// per-job managers this is byte-identical across runs and worker counts
  /// — the contract the stress-determinism suite pins down.
  [[nodiscard]] std::string to_stable_json() const;
};

/// Report plus the synthesized netlist (valid only for kOk/kVerifyFailed;
/// netlists are plain DAGs with no manager dependency).
struct JobResult {
  JobReport report;
  Netlist netlist;
};

/// Engine-level aggregate over one run() call.
struct EngineReport {
  std::size_t jobs = 0;
  std::size_t ok = 0;
  std::size_t degraded = 0;  ///< finished+verified on a lower ladder rung
  std::size_t timeouts = 0;
  std::size_t verify_failures = 0;
  std::size_t lint_failures = 0;
  std::size_t errors = 0;
  unsigned workers = 0;
  /// Worker threads lost mid-run (fault-injected or real); their in-flight
  /// jobs were re-queued and finished by the surviving workers (or by the
  /// engine's inline recovery pass when the whole pool died).
  std::size_t worker_deaths = 0;
  double wall_ms = 0.0;        ///< end-to-end batch wall time
  double total_job_ms = 0.0;   ///< sum of per-job wall times
  std::size_t total_gates = 0;
  std::size_t total_exors = 0;
  std::vector<JobReport> job_reports;

  /// Full serialization: aggregate fields plus one object per job.
  [[nodiscard]] std::string to_json() const;
};

}  // namespace bidec

#endif  // BIDEC_ENGINE_JOB_H
