// JSON serialization of job and engine reports. Hand-rolled emitter: the
// schema is flat and fixed, and the repo takes no external dependencies.
#include "engine/job.h"

#include <cstdio>
#include <sstream>

namespace bidec {

const char* to_string(JobStatus status) noexcept {
  switch (status) {
    case JobStatus::kOk: return "ok";
    case JobStatus::kTimeout: return "timeout";
    case JobStatus::kVerifyFailed: return "verify_failed";
    case JobStatus::kLintFailed: return "lint_failed";
    case JobStatus::kError: return "error";
  }
  return "unknown";
}

namespace {

// Minimal JSON string escaping (quotes, backslashes, control characters);
// job names come from file paths, which may contain anything.
void append_json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      case '\b': os << "\\b"; break;
      case '\f': os << "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void append_double(std::ostream& os, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  os << buf;
}

}  // namespace

std::string JobReport::to_json() const {
  std::ostringstream os;
  os << "{\"id\": " << job_id << ", \"name\": ";
  append_json_string(os, name);
  os << ", \"status\": \"" << to_string(status) << "\", \"worker\": " << worker
     << ", \"wall_ms\": ";
  append_double(os, wall_ms);
  os << ", \"inputs\": " << num_inputs << ", \"outputs\": " << num_outputs;
  os << ", \"bdd\": {\"steps\": " << bdd_steps << ", \"peak_nodes\": " << peak_nodes
     << ", \"gc_runs\": " << gc_runs << ", \"unique_hit_rate\": ";
  append_double(os, unique_hit_rate);
  os << ", \"cache_hit_rate\": ";
  append_double(os, cache_hit_rate);
  os << ", \"gc_ms\": ";
  append_double(os, gc_ms);
  os << ", \"cache_inserts\": " << cache_inserts
     << ", \"cache_resizes\": " << cache_resizes
     << ", \"cache_swept\": " << cache_swept << ", \"cache_kept\": " << cache_kept;
  os << "}, \"decomposition\": {\"calls\": " << bidec.calls
     << ", \"strong_or\": " << bidec.strong_or
     << ", \"strong_and\": " << bidec.strong_and
     << ", \"strong_exor\": " << bidec.strong_exor
     << ", \"weak_or\": " << bidec.weak_or << ", \"weak_and\": " << bidec.weak_and
     << ", \"cache_hits\": " << bidec.cache_hits
     << ", \"terminal_cases\": " << bidec.terminal_cases << "}";
  os << ", \"netlist\": {\"gates\": " << gates << ", \"two_input\": " << two_input
     << ", \"exors\": " << exors << ", \"inverters\": " << inverters
     << ", \"levels\": " << levels << ", \"area\": ";
  append_double(os, area);
  os << ", \"delay\": ";
  append_double(os, delay);
  os << "}";
  os << ", \"verify\": {\"engine\": \"" << to_string(verify_engine)
     << "\", \"bdd\": " << bdd_verdict << ", \"sat\": " << sat_verdict
     << ", \"failed_outputs\": [";
  for (std::size_t i = 0; i < failed_outputs.size(); ++i) {
    if (i != 0) os << ", ";
    os << failed_outputs[i];
  }
  os << "]}";
  if (!lint.clean()) {
    os << ", \"lint\": " << lint.to_json();
  }
  if (!error.empty()) {
    os << ", \"error\": ";
    append_json_string(os, error);
  }
  os << "}";
  return os.str();
}

std::string EngineReport::to_json() const {
  std::ostringstream os;
  os << "{\"jobs\": " << jobs << ", \"ok\": " << ok << ", \"timeouts\": " << timeouts
     << ", \"verify_failures\": " << verify_failures
     << ", \"lint_failures\": " << lint_failures << ", \"errors\": " << errors
     << ", \"workers\": " << workers << ", \"wall_ms\": ";
  append_double(os, wall_ms);
  os << ", \"total_job_ms\": ";
  append_double(os, total_job_ms);
  os << ", \"total_gates\": " << total_gates << ", \"total_exors\": " << total_exors
     << ", \"job_reports\": [";
  for (std::size_t i = 0; i < job_reports.size(); ++i) {
    if (i != 0) os << ", ";
    os << job_reports[i].to_json();
  }
  os << "]}";
  return os.str();
}

}  // namespace bidec
