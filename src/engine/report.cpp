// JSON serialization of job and engine reports. Hand-rolled emitter: the
// schema is flat and fixed, and the repo takes no external dependencies.
#include "engine/job.h"

#include <cstdio>
#include <sstream>

namespace bidec {

const char* to_string(JobStatus status) noexcept {
  switch (status) {
    case JobStatus::kOk: return "ok";
    case JobStatus::kDegraded: return "degraded";
    case JobStatus::kTimeout: return "timeout";
    case JobStatus::kVerifyFailed: return "verify_failed";
    case JobStatus::kLintFailed: return "lint_failed";
    case JobStatus::kError: return "error";
  }
  return "unknown";
}

const char* to_string(DegradeRung rung) noexcept {
  switch (rung) {
    case DegradeRung::kFull: return "full";
    case DegradeRung::kCheapGrouping: return "cheap_grouping";
    case DegradeRung::kWeakOnly: return "weak_only";
    case DegradeRung::kSatRescue: return "sat";
    case DegradeRung::kShannon: return "shannon";
  }
  return "unknown";
}

namespace {

// Minimal JSON string escaping (quotes, backslashes, control characters);
// job names come from file paths, which may contain anything.
void append_json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      case '\b': os << "\\b"; break;
      case '\f': os << "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void append_double(std::ostream& os, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  os << buf;
}

// Shared emitter behind to_json / to_stable_json. `stable` omits every
// field that depends on scheduling: wall-clock times, the worker index,
// and the whole BDD substrate block (with recycled managers those counters
// depend on which jobs shared a worker; to_stable_json documents that the
// remaining fields are byte-identical across runs and -j levels).
void emit_job_json(std::ostream& os, const JobReport& rep, bool stable) {
  os << "{\"id\": " << rep.job_id << ", \"name\": ";
  append_json_string(os, rep.name);
  os << ", \"status\": \"" << to_string(rep.status) << '"';
  if (!stable) {
    os << ", \"worker\": " << rep.worker << ", \"wall_ms\": ";
    append_double(os, rep.wall_ms);
  }
  os << ", \"inputs\": " << rep.num_inputs << ", \"outputs\": " << rep.num_outputs;
  os << ", \"attempts\": " << rep.attempts;
  if (!rep.degradation.empty()) {
    os << ", \"degradation\": [";
    for (std::size_t i = 0; i < rep.degradation.size(); ++i) {
      const DegradeStep& step = rep.degradation[i];
      if (i != 0) os << ", ";
      os << "{\"rung\": \"" << to_string(step.rung)
         << "\", \"step_budget\": " << step.step_budget
         << ", \"timeout_ms\": " << step.timeout_ms << ", \"outcome\": ";
      append_json_string(os, step.outcome);
      os << ", \"success\": " << (step.success ? "true" : "false") << "}";
    }
    os << "]";
  }
  if (!stable) {
    os << ", \"bdd\": {\"steps\": " << rep.bdd_steps
       << ", \"peak_nodes\": " << rep.peak_nodes
       << ", \"gc_runs\": " << rep.gc_runs << ", \"unique_hit_rate\": ";
    append_double(os, rep.unique_hit_rate);
    os << ", \"cache_hit_rate\": ";
    append_double(os, rep.cache_hit_rate);
    os << ", \"gc_ms\": ";
    append_double(os, rep.gc_ms);
    os << ", \"cache_inserts\": " << rep.cache_inserts
       << ", \"cache_resizes\": " << rep.cache_resizes
       << ", \"cache_swept\": " << rep.cache_swept
       << ", \"cache_kept\": " << rep.cache_kept << "}";
  }
  // With a cross-job cache in play the recursion counters depend on what
  // other jobs published first — a hit short-circuits whole subtrees — so
  // they are not scheduling-independent and the stable form drops them
  // (the produced *netlist* still converges; only the trace differs).
  // Ordinary runs (shared_lookups == 0) keep the block byte-for-byte.
  if (!stable || rep.bidec.shared_lookups == 0) {
    os << ", \"decomposition\": {\"calls\": " << rep.bidec.calls
       << ", \"strong_or\": " << rep.bidec.strong_or
       << ", \"strong_and\": " << rep.bidec.strong_and
       << ", \"strong_exor\": " << rep.bidec.strong_exor
       << ", \"weak_or\": " << rep.bidec.weak_or
       << ", \"weak_and\": " << rep.bidec.weak_and
       << ", \"cache_hits\": " << rep.bidec.cache_hits
       << ", \"terminal_cases\": " << rep.bidec.terminal_cases << "}";
  }
  // SAT-engine counters, present only when the SAT path produced the result
  // — jobs that never ran it keep their JSON byte-identical to before the
  // engine existed (the golden corpus pins that). Every counter here is
  // deterministic (see SatDecStats), so the stable form keeps the block.
  if (rep.sat_engine) {
    const satdec::SatDecStats& sd = rep.satdec;
    os << ", \"sat_engine\": {\"formula_calls\": " << sd.formula_calls
       << ", \"tt_calls\": " << sd.tt_calls
       << ", \"grouping_queries\": " << sd.grouping_queries
       << ", \"core_freed_vars\": " << sd.core_freed_vars
       << ", \"solves\": " << sd.solves
       << ", \"materializations\": " << sd.materializations
       << ", \"enumerated_models\": " << sd.enumerated_models
       << ", \"expansions_capped\": " << sd.expansions_capped
       << ", \"strong_or\": " << sd.strong_or
       << ", \"strong_and\": " << sd.strong_and
       << ", \"strong_exor\": " << sd.strong_exor
       << ", \"weak_or\": " << sd.weak_or << ", \"weak_and\": " << sd.weak_and
       << ", \"shannon_steps\": " << sd.shannon_steps
       << ", \"terminal_cases\": " << sd.terminal_cases
       << ", \"memo_hits\": " << sd.memo_hits
       << ", \"solver\": {\"conflicts\": " << sd.solver.conflicts
       << ", \"decisions\": " << sd.solver.decisions
       << ", \"propagations\": " << sd.solver.propagations
       << ", \"restarts\": " << sd.solver.restarts
       << ", \"learned\": " << sd.solver.learned
       << ", \"deleted_learned\": " << sd.solver.deleted_learned << "}}";
  }
  os << ", \"netlist\": {\"gates\": " << rep.gates
     << ", \"two_input\": " << rep.two_input << ", \"exors\": " << rep.exors
     << ", \"inverters\": " << rep.inverters << ", \"levels\": " << rep.levels
     << ", \"area\": ";
  append_double(os, rep.area);
  os << ", \"delay\": ";
  append_double(os, rep.delay);
  os << "}";
  os << ", \"verify\": {\"engine\": \"" << to_string(rep.verify_engine)
     << "\", \"bdd\": " << rep.bdd_verdict << ", \"sat\": " << rep.sat_verdict
     << ", \"failed_outputs\": [";
  for (std::size_t i = 0; i < rep.failed_outputs.size(); ++i) {
    if (i != 0) os << ", ";
    os << rep.failed_outputs[i];
  }
  os << "]";
  // Solver counters of the SAT verifier (satellite: SolverStats surfacing).
  // Gated on the verifier actually having run so SAT-free reports keep
  // their exact prior bytes.
  if (rep.sat_verdict != -1) {
    os << ", \"solver\": {\"conflicts\": " << rep.verify_solver.conflicts
       << ", \"decisions\": " << rep.verify_solver.decisions
       << ", \"propagations\": " << rep.verify_solver.propagations
       << ", \"restarts\": " << rep.verify_solver.restarts
       << ", \"learned\": " << rep.verify_solver.learned << "}";
  }
  os << "}";
  // Clause-proof block, present only when the job ran with a proof policy —
  // default-off reports (the golden corpus among them) keep their exact
  // prior bytes. Every counter is deterministic; check_ms is wall time and
  // follows the wall_ms precedent of staying out of the stable form.
  if (rep.proof_policy != proof::ProofPolicy::kOff) {
    os << ", \"proof\": {\"policy\": \"" << proof::to_string(rep.proof_policy)
       << "\", \"checked_unsat\": " << rep.proof.checked_unsat
       << ", \"failed_checks\": " << rep.proof.failed_checks
       << ", \"logged_inputs\": " << rep.proof.logged_inputs
       << ", \"proof_clauses\": " << rep.proof.proof_clauses
       << ", \"deletions\": " << rep.proof.deletions
       << ", \"trimmed_clauses\": " << rep.proof.trimmed_clauses
       << ", \"core_inputs\": " << rep.proof.core_inputs;
    if (!stable) {
      os << ", \"check_ms\": ";
      append_double(os, rep.proof.check_ms);
    }
    os << "}";
  }
  // Parallel-kernel block, present only when the job ran with threads > 1 —
  // serial reports (the golden corpus among them) keep their exact prior
  // bytes, and a pinned test asserts every counter is zero then. The
  // contention counters (steals, drops, retries) are scheduling-dependent,
  // so a threads > 1 stable report is stable in its *results*, not in this
  // block; consumers diffing across runs should mask it.
  if (rep.threads > 1) {
    os << ", \"parallel\": {\"threads\": " << rep.threads
       << ", \"ops\": " << rep.par_ops << ", \"tasks\": " << rep.par_tasks
       << ", \"steals\": " << rep.par_steals
       << ", \"cache_drops\": " << rep.par_cache_drops
       << ", \"cas_retries\": " << rep.par_cas_retries << "}";
  }
  if (!rep.lint.clean()) {
    os << ", \"lint\": " << rep.lint.to_json();
  }
  if (!rep.error.empty()) {
    os << ", \"error\": ";
    append_json_string(os, rep.error);
  }
  os << "}";
}

}  // namespace

std::string JobReport::to_json() const {
  std::ostringstream os;
  emit_job_json(os, *this, /*stable=*/false);
  return os.str();
}

std::string JobReport::to_stable_json() const {
  std::ostringstream os;
  emit_job_json(os, *this, /*stable=*/true);
  return os.str();
}

std::string EngineReport::to_json() const {
  std::ostringstream os;
  os << "{\"jobs\": " << jobs << ", \"ok\": " << ok
     << ", \"degraded\": " << degraded << ", \"timeouts\": " << timeouts
     << ", \"verify_failures\": " << verify_failures
     << ", \"lint_failures\": " << lint_failures << ", \"errors\": " << errors
     << ", \"workers\": " << workers << ", \"worker_deaths\": " << worker_deaths
     << ", \"wall_ms\": ";
  append_double(os, wall_ms);
  os << ", \"total_job_ms\": ";
  append_double(os, total_job_ms);
  os << ", \"total_gates\": " << total_gates << ", \"total_exors\": " << total_exors
     << ", \"job_reports\": [";
  for (std::size_t i = 0; i < job_reports.size(); ++i) {
    if (i != 0) os << ", ";
    os << job_reports[i].to_json();
  }
  os << "]}";
  return os.str();
}

}  // namespace bidec
