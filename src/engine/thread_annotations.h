// Clang thread-safety (capability) annotation macros for the concurrent
// subsystems: the batch engine's scheduling state, the warm manager pool,
// the server's sharded component cache and queues. Under clang with
// -Wthread-safety the compiler statically proves that every access to a
// BIDEC_GUARDED_BY(mu) member happens with `mu` held; under GCC (which has
// no __attribute__((guarded_by))) every macro expands to nothing, so the
// annotations cost zero in the default toolchain and pay off in the clang
// CI build, where they are errors under BIDEC_WERROR.
//
// Only the subset the codebase actually uses is defined. The names carry a
// BIDEC_ prefix so they cannot collide with a platform header that defines
// the canonical GUARDED_BY spelling.
#ifndef BIDEC_ENGINE_THREAD_ANNOTATIONS_H
#define BIDEC_ENGINE_THREAD_ANNOTATIONS_H

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define BIDEC_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef BIDEC_THREAD_ANNOTATION
#define BIDEC_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

/// Marks a type as a lockable capability (std::mutex already is one via
/// clang's builtin annotations; this is for wrapper types).
#define BIDEC_CAPABILITY(name) BIDEC_THREAD_ANNOTATION(capability(name))

/// Data member readable/writable only with `mu` held.
#define BIDEC_GUARDED_BY(mu) BIDEC_THREAD_ANNOTATION(guarded_by(mu))

/// Pointer member whose *pointee* is protected by `mu`.
#define BIDEC_PT_GUARDED_BY(mu) BIDEC_THREAD_ANNOTATION(pt_guarded_by(mu))

/// Function that must be called with `mu` held.
#define BIDEC_REQUIRES(...) \
  BIDEC_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function that must be called with `mu` NOT held (it acquires it itself).
#define BIDEC_EXCLUDES(...) BIDEC_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function that acquires `mu` and returns holding it.
#define BIDEC_ACQUIRE(...) \
  BIDEC_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function that releases a held `mu`.
#define BIDEC_RELEASE(...) \
  BIDEC_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Escape hatch: function whose locking is intentionally invisible to the
/// analysis (e.g. std::condition_variable::wait re-acquisition patterns the
/// checker cannot follow).
#define BIDEC_NO_THREAD_SAFETY_ANALYSIS \
  BIDEC_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // BIDEC_ENGINE_THREAD_ANNOTATIONS_H
