// One job through the whole pipeline: parse/load, materialize into the
// supplied manager, synthesize under the attempt's budgets, verify, lint,
// and record every attempt of the degradation ladder. Moved verbatim from
// the batch engine so the server daemon drives the identical code path.
#include "engine/job_runner.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <stdexcept>
#include <utility>

#include "io/blif.h"
#include "proof/drat_check.h"
#include "satdec/decomposer.h"
#include "verify/sat_verifier.h"
#include "verify/verifier.h"

namespace bidec {

BddManager& OwnedManagerSource::manager_for(unsigned num_vars, bool fresh) {
  if (fresh || !mgr_ || mgr_->num_vars() != num_vars) {
    mgr_ = std::make_unique<BddManager>(num_vars);
  } else {
    mgr_->collect_garbage();
    mgr_->reset_stats();
  }
  return *mgr_;
}

BddManager& PooledManagerSource::manager_for(unsigned num_vars, bool fresh) {
  if (fresh) {
    lease_.reset();
    fresh_ = std::make_unique<BddManager>(num_vars);
    return *fresh_;
  }
  fresh_.reset();
  if (lease_ && lease_.manager().num_vars() == num_vars) {
    // Same width: skip the pool round-trip but apply the same per-job
    // hygiene the pool would (GC + stats reset) and count the job against
    // the recycle ratchet.
    lease_.note_reuse();
    lease_.manager().collect_garbage();
    lease_.manager().reset_stats();
    return lease_.manager();
  }
  lease_ = pool_->acquire(num_vars);
  return lease_.manager();
}

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// Hard cap on attempts per job: the ladder has four rungs and each retry
// doubles the step budget, so anything beyond this is configuration error,
// not persistence.
constexpr unsigned kMaxAttempts = 8;

// Clears the abort limits and detaches the fault injector on scope exit
// (including exceptional exit), so a failed attempt never leaks its limits
// into the next attempt or the worker's next job.
struct AbortLimitGuard {
  BddManager& mgr;
  ~AbortLimitGuard() { mgr.clear_abort(); }
};

// The specification a worker materialized into its manager. Destroyed
// before the manager can be recycled (Bdd handles must die first).
struct MaterializedSpec {
  std::vector<Isf> isfs;
  std::vector<std::string> input_names;
  std::vector<std::string> output_names;
};

// Parse/load phase: everything manager-independent about the source.
// Returns the input count so the worker can size its manager.
unsigned source_num_inputs(const JobSpec& spec, PlaFile& pla, Netlist& blif,
                           bool& is_pla) {
  if (const auto* path = std::get_if<std::string>(&spec.source)) {
    if (ends_with(*path, ".pla")) {
      pla = PlaFile::load(*path);
      is_pla = true;
      return pla.num_inputs;
    }
    if (ends_with(*path, ".blif")) {
      blif = load_blif(*path);
      is_pla = false;
      return static_cast<unsigned>(blif.num_inputs());
    }
    throw std::runtime_error("job source must end in .pla or .blif: " + *path);
  }
  pla = std::get<PlaFile>(spec.source);
  is_pla = true;
  return pla.num_inputs;
}

MaterializedSpec materialize(BddManager& mgr, const PlaFile& pla,
                             const Netlist& blif, bool is_pla) {
  MaterializedSpec spec;
  if (is_pla) {
    spec.isfs = pla.to_isfs(mgr);
    for (unsigned i = 0; i < pla.num_inputs; ++i) {
      spec.input_names.push_back(pla.input_name(i));
    }
    for (unsigned o = 0; o < pla.num_outputs; ++o) {
      spec.output_names.push_back(pla.output_name(o));
    }
  } else {
    const std::vector<Bdd> funcs = netlist_to_bdds(mgr, blif);
    for (const Bdd& f : funcs) spec.isfs.push_back(Isf::from_csf(f));
    for (std::size_t i = 0; i < blif.num_inputs(); ++i) {
      spec.input_names.push_back(blif.input_name(i));
    }
    for (std::size_t o = 0; o < blif.num_outputs(); ++o) {
      spec.output_names.push_back(blif.output_name(o));
    }
  }
  return spec;
}

// ---------------------------------------------------------------------------
// Degradation ladder
// ---------------------------------------------------------------------------

/// Which rung attempt `a` of `attempts` runs on. The first attempt always
/// uses the submitted settings; without `degrade`, every retry does too
/// (plain backoff). With `degrade`, retries walk down the ladder and the
/// final attempt is always the Shannon rung, so a degrading job's last try
/// is the one that provably terminates.
///
/// Engine selection bends the ladder without reordering it:
///  * kSat runs the SAT engine as the submitted flow (kFull and every plain
///    retry), keeping only the Shannon rung as the BDD-based terminal.
///  * kAuto inserts the SAT rung directly ahead of the Shannon fallback —
///    and guarantees it a slot as the second-to-last attempt even when the
///    retry count is too small to reach it by walking rung-per-attempt,
///    because that rung is the one a node-budget trip cannot follow the job
///    onto (there is no BDD manager to cap).
DegradeRung rung_for_attempt(unsigned a, unsigned attempts, bool degrade,
                             EngineSelect engine) {
  if (a == 0 || !degrade) return DegradeRung::kFull;
  if (a + 1 == attempts) return DegradeRung::kShannon;
  if (engine == EngineSelect::kSat) return DegradeRung::kSatRescue;
  if (engine == EngineSelect::kAuto && a + 2 == attempts) {
    return DegradeRung::kSatRescue;
  }
  switch (a) {
    case 1: return DegradeRung::kCheapGrouping;
    case 2: return DegradeRung::kWeakOnly;
    default:
      return engine == EngineSelect::kAuto ? DegradeRung::kSatRescue
                                           : DegradeRung::kShannon;
  }
}

/// The submitted flow options made progressively cheaper. Each rung
/// includes everything the previous one dropped.
FlowOptions flow_for_rung(const FlowOptions& base, DegradeRung rung) {
  FlowOptions flow = base;
  // Only the full rung talks to the cross-job component cache: degraded
  // rungs produce differently-shaped cones for the same interval, and
  // publishing those would make later full-flow jobs' netlists depend on
  // whether a degraded job got there first. They also skip the 2^k
  // signature enumeration — a resource-starved retry should not pay it.
  if (rung != DegradeRung::kFull) flow.bidec.shared_cache = nullptr;
  switch (rung) {
    case DegradeRung::kFull: break;
    case DegradeRung::kSatRescue: break;  // runs src/satdec, not this flow
    case DegradeRung::kShannon:
      flow.bidec.force_shannon = true;
      [[fallthrough]];
    case DegradeRung::kWeakOnly:
      flow.bidec.use_strong = false;
      [[fallthrough]];
    case DegradeRung::kCheapGrouping:
      flow.reorder = OrderHeuristic::kNone;
      flow.bidec.grouping_pairs = 1;
      flow.bidec.regroup = false;
      break;
  }
  return flow;
}

/// SAT-engine options for one attempt: the quality knobs mirror the
/// submitted BidecOptions; the attempt's step budget is reinterpreted as a
/// total CDCL conflict budget (both count "units of reasoning work" and
/// back off exponentially across retries) and the deadline carries over
/// unchanged. The node budget deliberately does not apply — there is no
/// BDD manager on this path, which is the whole point of the rung.
satdec::SatDecOptions satdec_options_for(const FlowOptions& flow,
                                         const DegradeStep& step,
                                         bool proof_corrupt_fault) {
  satdec::SatDecOptions o;
  o.grouping_pairs = flow.bidec.grouping_pairs;
  o.balance_cost = flow.bidec.balance_cost;
  o.use_strong = flow.bidec.use_strong;
  o.use_exor = flow.bidec.use_exor;
  o.absorb_inverters = flow.bidec.absorb_inverters;
  o.total_conflict_budget = step.step_budget;
  if (step.timeout_ms != 0) {
    o.deadline = Clock::now() + std::chrono::milliseconds(step.timeout_ms);
  }
  o.proof = flow.proof;
  o.proof_corrupt_fault = proof_corrupt_fault;
  return o;
}

/// Whether the fault plan asks for a corrupted proof verdict on this job.
/// The proof layer has no BddManager hooks, so this point is decoded here
/// and carried to the engine through SatDecOptions instead of the injector.
bool plan_wants_proof_corrupt(const FaultPlan& plan, std::size_t job_id) {
  for (const FaultSpec& f : plan.faults) {
    if (f.point == FaultPoint::kProofCorrupt &&
        (f.job < 0 || static_cast<std::size_t>(f.job) == job_id)) {
      return true;
    }
  }
  return false;
}

/// Exponential backoff in work: attempt `a` runs under the base budget
/// shifted left by `a` (0 stays 0 = unlimited).
std::uint64_t backoff_steps(std::uint64_t base, unsigned a) {
  if (base == 0) return 0;
  const unsigned shift = std::min(a, 16u);
  return base << shift;
}

std::uint32_t backoff_timeout(std::uint32_t base, unsigned a) {
  if (base == 0) return 0;
  const std::uint64_t scaled = static_cast<std::uint64_t>(base)
                               << std::min(a, 16u);
  return static_cast<std::uint32_t>(
      std::min<std::uint64_t>(scaled, 0xffffffffu));
}

/// Runs the engines requested by `spec.verify` over `net` and records the
/// verdicts (and the failure status/message) in `rep`. `mgr`/`isfs` back
/// the BDD leg and must be valid when that leg is requested; the SAT leg
/// always checks against the raw job source.
void apply_verification(const JobSpec& spec, JobReport& rep, const Netlist& net,
                        BddManager* mgr, std::span<const Isf> isfs,
                        const PlaFile& pla, const Netlist& blif, bool is_pla) {
  if (spec.verify == VerifyEngine::kNone) return;
  DualVerifyResult v;
  if (spec.verify == VerifyEngine::kBdd || spec.verify == VerifyEngine::kBoth) {
    v.bdd_ran = true;
    v.bdd = verify_against_isfs(*mgr, net, isfs);
    rep.bdd_verdict = v.bdd.ok ? 1 : 0;
  }
  if (spec.verify == VerifyEngine::kSat || spec.verify == VerifyEngine::kBoth) {
    // The SAT engine checks against the *source* (cover rows or the
    // original BLIF network), not the materialized BDDs, so it shares
    // no reasoning with the synthesis substrate — degraded results
    // included.
    v.sat_ran = true;
    const SatVerifyOptions vopt{.proof = spec.flow.proof,
                                .proof_stats = &rep.proof,
                                .solver_stats = &rep.verify_solver};
    v.sat = is_pla ? sat_verify_against_pla(net, pla, vopt)
                   : sat_verify_equivalent(net, blif, vopt);
    rep.sat_verdict = v.sat.ok ? 1 : 0;
  }
  rep.verify_engine = spec.verify;
  rep.failed_outputs = v.bdd.failed_outputs;
  for (const std::size_t o : v.sat.failed_outputs) {
    if (std::find(rep.failed_outputs.begin(), rep.failed_outputs.end(), o) ==
        rep.failed_outputs.end()) {
      rep.failed_outputs.push_back(o);
    }
  }
  std::sort(rep.failed_outputs.begin(), rep.failed_outputs.end());
  if (!v.agree()) {
    rep.status = JobStatus::kVerifyFailed;
    rep.error = "verification engines disagree (bdd says " +
                std::string(v.bdd.ok ? "pass" : "fail") + ", sat says " +
                std::string(v.sat.ok ? "pass" : "fail") +
                "): engine bug, not a netlist property";
  } else if (!v.ok()) {
    rep.status = JobStatus::kVerifyFailed;
    std::string which = v.bdd_ran && !v.bdd.ok
                            ? (v.sat_ran && !v.sat.ok ? "bdd+sat" : "bdd")
                            : "sat";
    rep.error = "output " +
                std::to_string(rep.failed_outputs.empty()
                                   ? std::size_t{0}
                                   : rep.failed_outputs.front()) +
                " incompatible with its specification (engine: " + which +
                ", " + std::to_string(rep.failed_outputs.size()) +
                " failing output(s))";
  }
}

/// Shared success tail of an attempt: the lint gate, the degraded-status
/// marking, and the netlist metrics.
void finalize_success(const JobSpec& spec, JobReport& rep, DegradeRung rung,
                      Netlist&& net, JobResult& result) {
  if (spec.flow.lint == LintMode::kError && rep.status == JobStatus::kOk &&
      rep.lint.has_findings(LintSeverity::kWarning)) {
    rep.status = JobStatus::kLintFailed;
    rep.error = "lint gate: " + std::to_string(rep.lint.errors()) +
                " error(s), " + std::to_string(rep.lint.warnings()) +
                " warning(s); first: " + rep.lint.findings().front().rule +
                " " + rep.lint.findings().front().message;
  }
  // A result produced below the submitted rung is degraded, not ok — it is
  // correct (the requested verifiers just ran on it) but cheaper-shaped.
  if (rung != DegradeRung::kFull && rep.status == JobStatus::kOk) {
    rep.status = JobStatus::kDegraded;
  }
  const NetlistStats ns = net.stats();
  rep.gates = ns.gates;
  rep.two_input = ns.two_input;
  rep.exors = ns.exors;
  rep.inverters = ns.inverters;
  rep.levels = ns.cascades;
  rep.area = ns.area;
  rep.delay = ns.delay;
  result.netlist = std::move(net);
}

}  // namespace

JobResult run_synthesis_job(const JobSpec& spec, std::size_t job_id,
                            std::size_t worker_id, ManagerSource& managers,
                            const FaultPlan& plan, bool allow_worker_death,
                            bool fresh_managers) {
  JobResult result;
  JobReport& rep = result.report;
  rep.job_id = job_id;
  rep.name = spec.name;
  rep.worker = worker_id;
  rep.proof_policy = spec.flow.proof;
  const Clock::time_point t0 = Clock::now();
  const bool proof_corrupt = plan_wants_proof_corrupt(plan, job_id);

  // One injector per job, persisting across retry attempts: a `times = 1`
  // fault kills the first attempt and lets the degraded retry through,
  // which is exactly how a transient resource spike behaves.
  std::optional<JobFaultInjector> injector;
  if (!plan.empty()) {
    injector.emplace(plan, job_id, worker_id, allow_worker_death);
  }
  const bool fresh = fresh_managers || !plan.empty();

  const unsigned attempts =
      std::min(spec.max_retries + 1, kMaxAttempts);
  BddManager* mgr = nullptr;

  for (unsigned attempt = 0; attempt < attempts; ++attempt) {
    const DegradeRung rung =
        rung_for_attempt(attempt, attempts, spec.degrade, spec.flow.engine);
    DegradeStep step;
    step.rung = rung;
    step.step_budget = backoff_steps(spec.step_budget, attempt);
    step.timeout_ms = backoff_timeout(spec.timeout_ms, attempt);
    rep.attempts = attempt + 1;
    const bool last_attempt = attempt + 1 == attempts;
    // The SAT engine runs the kSatRescue rung, and — when it IS the
    // submitted engine — the kFull rung (including plain-backoff retries).
    const bool sat_attempt =
        rung == DegradeRung::kSatRescue ||
        (spec.flow.engine == EngineSelect::kSat && rung != DegradeRung::kShannon);

    try {
      PlaFile pla;
      Netlist blif;
      bool is_pla = false;
      const unsigned num_vars = source_num_inputs(spec, pla, blif, is_pla);

      if (sat_attempt) {
        // No BddManager anywhere on this synthesis path: budgets map onto
        // the solver (conflicts + deadline) and the node budget is moot.
        satdec::SatFlowResult sat =
            is_pla ? satdec::synthesize_satdec(
                         pla, satdec_options_for(spec.flow, step, proof_corrupt))
                   : satdec::synthesize_satdec(
                         blif, satdec_options_for(spec.flow, step, proof_corrupt));
        rep.num_inputs = num_vars;
        rep.num_outputs = static_cast<unsigned>(
            is_pla ? pla.num_outputs : blif.num_outputs());
        rep.status = JobStatus::kOk;
        rep.error.clear();
        if (spec.verify == VerifyEngine::kBdd || spec.verify == VerifyEngine::kBoth) {
          // The BDD leg needs the spec as BDDs after all — but only for the
          // check, so the materialization runs without budgets (a job whose
          // spec genuinely cannot be built should request --verify=sat).
          mgr = &managers.manager_for(num_vars, fresh);
          MaterializedSpec m = materialize(*mgr, pla, blif, is_pla);
          apply_verification(spec, rep, sat.netlist, mgr, m.isfs, pla, blif, is_pla);
        } else {
          apply_verification(spec, rep, sat.netlist, nullptr, {}, pla, blif, is_pla);
        }
        if (spec.flow.lint != LintMode::kOff) {
          rep.lint = lint_netlist(sat.netlist);
        }
        rep.sat_engine = true;
        rep.satdec = sat.stats;
        rep.proof += sat.stats.proof;
        finalize_success(spec, rep, rung, std::move(sat.netlist), result);
        step.outcome = "ok";
        step.success = true;
        if (attempt != 0 || !rep.degradation.empty()) {
          rep.degradation.push_back(std::move(step));
        }
        break;
      }

      mgr = &managers.manager_for(num_vars, fresh);
      // Set every job (managers are reused across jobs): a serial job must
      // put a previously-parallel manager back on the bit-exact path.
      mgr->set_threads(spec.flow.threads);
      rep.threads = mgr->threads();
      if (step.step_budget != 0) mgr->set_step_budget(step.step_budget);
      if (step.timeout_ms != 0) {
        mgr->set_deadline(Clock::now() +
                          std::chrono::milliseconds(step.timeout_ms));
      }
      // The node budget is a memory cap: it does NOT back off with retries,
      // the cheaper rungs have to fit under it.
      if (spec.node_budget != 0) mgr->set_node_budget(spec.node_budget);
      if (injector) mgr->set_fault_injector(&*injector);
      const AbortLimitGuard guard{*mgr};

      {
        // Inner scope: every Bdd handle dies before the worker reuses or
        // replaces its manager for the next attempt or job.
        MaterializedSpec m = materialize(*mgr, pla, blif, is_pla);
        rep.num_inputs = num_vars;
        rep.num_outputs = static_cast<unsigned>(m.isfs.size());

        FlowResult flow = synthesize_bidecomp(*mgr, m.isfs, m.input_names,
                                              m.output_names,
                                              flow_for_rung(spec.flow, rung));
        rep.status = JobStatus::kOk;
        rep.error.clear();
        apply_verification(spec, rep, flow.netlist, mgr, m.isfs, pla, blif, is_pla);
        rep.bidec = flow.stats;
        rep.lint = flow.lint;
        finalize_success(spec, rep, rung, std::move(flow.netlist), result);
      }
      step.outcome = "ok";
      step.success = true;
      // The common case — first attempt, submitted settings, success —
      // records no trail at all.
      if (attempt != 0 || !rep.degradation.empty()) {
        rep.degradation.push_back(std::move(step));
      }
      break;
    } catch (const BddAbortError& e) {
      // Budget or deadline trip: retryable resource exhaustion.
      step.outcome = e.what();
      rep.degradation.push_back(std::move(step));
      if (last_attempt) {
        rep.status = JobStatus::kTimeout;
        rep.error = e.what();
      }
      result.netlist = Netlist{};
    } catch (const proof::ProofCheckError& e) {
      // The independent checker rejected an UNSAT the engine wanted to act
      // on. This is an engine bug, exactly as severe as the bdd/sat
      // verifier disagreement above — terminal, never retried (a retry
      // would just re-trust the same broken solver).
      step.outcome = e.what();
      if (!rep.degradation.empty() || attempt != 0) {
        rep.degradation.push_back(std::move(step));
      }
      rep.status = JobStatus::kVerifyFailed;
      rep.error = std::string(e.what()) +
                  ": engine bug, not a netlist property";
      result.netlist = Netlist{};
      break;
    } catch (const std::bad_alloc&) {
      // Synthetic (or real) allocation failure: retryable — the degraded
      // rungs need less memory.
      step.outcome = "allocation failure (std::bad_alloc)";
      rep.degradation.push_back(std::move(step));
      if (last_attempt) {
        rep.status = JobStatus::kError;
        rep.error = "allocation failure (std::bad_alloc)";
      }
      result.netlist = Netlist{};
    } catch (const std::exception& e) {
      // Anything else (parse error, missing file, logic error) is not a
      // resource problem; retrying cannot help.
      step.outcome = e.what();
      if (!rep.degradation.empty() || attempt != 0) {
        rep.degradation.push_back(std::move(step));
      }
      rep.status = JobStatus::kError;
      rep.error = e.what();
      result.netlist = Netlist{};
      break;
    }
  }

  rep.wall_ms = ms_since(t0);
  if (mgr != nullptr) {
    const BddStats& s = mgr->stats();
    rep.bdd_steps = mgr->steps_used();
    rep.peak_nodes = s.peak_nodes;
    rep.gc_runs = s.gc_runs;
    const std::size_t unique_total = s.unique_hits + s.unique_misses;
    rep.unique_hit_rate =
        unique_total != 0 ? static_cast<double>(s.unique_hits) / unique_total : 0.0;
    rep.cache_hit_rate = s.cache_lookups != 0
                             ? static_cast<double>(s.cache_hits) / s.cache_lookups
                             : 0.0;
    rep.gc_ms = s.gc_ms;
    rep.cache_inserts = s.cache_inserts;
    rep.cache_resizes = s.cache_resizes;
    rep.cache_swept = s.cache_swept;
    rep.cache_kept = s.cache_kept;
    rep.par_ops = s.par_ops;
    rep.par_tasks = s.par_tasks;
    rep.par_steals = s.par_steals;
    rep.par_cache_drops = s.par_cache_drops;
    rep.par_cas_retries = s.par_cas_retries;
  }
  return result;
}

}  // namespace bidec
