#include "engine/batch_engine.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "io/blif.h"
#include "verify/sat_verifier.h"
#include "verify/verifier.h"

namespace bidec {

namespace {

/// Two statements: GCC 12's -Wrestrict misfires on `prefix +
/// std::to_string(i)` once the string operator+ is inlined.
std::string numbered_name(const char* prefix, std::size_t i) {
  std::string s = prefix;
  s += std::to_string(i);
  return s;
}

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// Per-worker state. The manager is private to one thread and reused across
// jobs with matching variable counts; reset_stats() at job start keeps the
// per-job metrics clean, collect_garbage() drops the previous job's nodes.
struct Worker {
  std::unique_ptr<BddManager> mgr;

  BddManager& manager_for(unsigned num_vars) {
    if (!mgr || mgr->num_vars() != num_vars) {
      mgr = std::make_unique<BddManager>(num_vars);
    } else {
      mgr->collect_garbage();
      mgr->reset_stats();
    }
    return *mgr;
  }
};

// Clears the abort limits on scope exit (including exceptional exit), so a
// timed-out job never leaks its deadline into the worker's next job.
struct AbortLimitGuard {
  BddManager& mgr;
  ~AbortLimitGuard() { mgr.clear_abort(); }
};

// The specification a worker materialized into its manager. Destroyed
// before the manager can be recycled (Bdd handles must die first).
struct MaterializedSpec {
  std::vector<Isf> isfs;
  std::vector<std::string> input_names;
  std::vector<std::string> output_names;
};

// Parse/load phase: everything manager-independent about the source.
// Returns the input count so the worker can size its manager.
unsigned source_num_inputs(const JobSpec& spec, PlaFile& pla, Netlist& blif,
                           bool& is_pla) {
  if (const auto* path = std::get_if<std::string>(&spec.source)) {
    if (ends_with(*path, ".pla")) {
      pla = PlaFile::load(*path);
      is_pla = true;
      return pla.num_inputs;
    }
    if (ends_with(*path, ".blif")) {
      blif = load_blif(*path);
      is_pla = false;
      return static_cast<unsigned>(blif.num_inputs());
    }
    throw std::runtime_error("job source must end in .pla or .blif: " + *path);
  }
  pla = std::get<PlaFile>(spec.source);
  is_pla = true;
  return pla.num_inputs;
}

MaterializedSpec materialize(BddManager& mgr, const PlaFile& pla,
                             const Netlist& blif, bool is_pla) {
  MaterializedSpec spec;
  if (is_pla) {
    spec.isfs = pla.to_isfs(mgr);
    for (unsigned i = 0; i < pla.num_inputs; ++i) {
      spec.input_names.push_back(pla.input_name(i));
    }
    for (unsigned o = 0; o < pla.num_outputs; ++o) {
      spec.output_names.push_back(pla.output_name(o));
    }
  } else {
    const std::vector<Bdd> funcs = netlist_to_bdds(mgr, blif);
    for (const Bdd& f : funcs) spec.isfs.push_back(Isf::from_csf(f));
    for (std::size_t i = 0; i < blif.num_inputs(); ++i) {
      spec.input_names.push_back(blif.input_name(i));
    }
    for (std::size_t o = 0; o < blif.num_outputs(); ++o) {
      spec.output_names.push_back(blif.output_name(o));
    }
  }
  return spec;
}

JobResult run_job(const JobSpec& spec, std::size_t job_id, std::size_t worker_id,
                  Worker& worker) {
  JobResult result;
  JobReport& rep = result.report;
  rep.job_id = job_id;
  rep.name = spec.name;
  rep.worker = worker_id;
  const Clock::time_point t0 = Clock::now();

  BddManager* mgr = nullptr;
  try {
    PlaFile pla;
    Netlist blif;
    bool is_pla = false;
    const unsigned num_vars = source_num_inputs(spec, pla, blif, is_pla);

    mgr = &worker.manager_for(num_vars);
    if (spec.step_budget != 0) mgr->set_step_budget(spec.step_budget);
    if (spec.timeout_ms != 0) {
      mgr->set_deadline(t0 + std::chrono::milliseconds(spec.timeout_ms));
    }
    const AbortLimitGuard guard{*mgr};

    {
      // Inner scope: every Bdd handle dies before the worker reuses or
      // replaces its manager for the next job.
      MaterializedSpec m = materialize(*mgr, pla, blif, is_pla);
      rep.num_inputs = num_vars;
      rep.num_outputs = static_cast<unsigned>(m.isfs.size());

      FlowResult flow = synthesize_bidecomp(*mgr, m.isfs, m.input_names,
                                            m.output_names, spec.flow);
      if (spec.verify != VerifyEngine::kNone) {
        DualVerifyResult v;
        if (spec.verify == VerifyEngine::kBdd || spec.verify == VerifyEngine::kBoth) {
          v.bdd_ran = true;
          v.bdd = verify_against_isfs(*mgr, flow.netlist, m.isfs);
          rep.bdd_verdict = v.bdd.ok ? 1 : 0;
        }
        if (spec.verify == VerifyEngine::kSat || spec.verify == VerifyEngine::kBoth) {
          // The SAT engine checks against the *source* (cover rows or the
          // original BLIF network), not the materialized BDDs, so it shares
          // no reasoning with the synthesis substrate.
          v.sat_ran = true;
          v.sat = is_pla ? sat_verify_against_pla(flow.netlist, pla)
                         : sat_verify_equivalent(flow.netlist, blif);
          rep.sat_verdict = v.sat.ok ? 1 : 0;
        }
        rep.verify_engine = spec.verify;
        rep.failed_outputs = v.bdd.failed_outputs;
        for (const std::size_t o : v.sat.failed_outputs) {
          if (std::find(rep.failed_outputs.begin(), rep.failed_outputs.end(), o) ==
              rep.failed_outputs.end()) {
            rep.failed_outputs.push_back(o);
          }
        }
        std::sort(rep.failed_outputs.begin(), rep.failed_outputs.end());
        if (!v.agree()) {
          rep.status = JobStatus::kVerifyFailed;
          rep.error = "verification engines disagree (bdd says " +
                      std::string(v.bdd.ok ? "pass" : "fail") + ", sat says " +
                      std::string(v.sat.ok ? "pass" : "fail") +
                      "): engine bug, not a netlist property";
        } else if (!v.ok()) {
          rep.status = JobStatus::kVerifyFailed;
          std::string which = v.bdd_ran && !v.bdd.ok
                                  ? (v.sat_ran && !v.sat.ok ? "bdd+sat" : "bdd")
                                  : "sat";
          rep.error = "output " +
                      std::to_string(rep.failed_outputs.empty()
                                         ? std::size_t{0}
                                         : rep.failed_outputs.front()) +
                      " incompatible with its specification (engine: " + which +
                      ", " + std::to_string(rep.failed_outputs.size()) +
                      " failing output(s))";
        }
      }
      rep.bidec = flow.stats;
      rep.lint = flow.lint;
      if (spec.flow.lint == LintMode::kError && rep.status == JobStatus::kOk &&
          rep.lint.has_findings(LintSeverity::kWarning)) {
        rep.status = JobStatus::kLintFailed;
        rep.error = "lint gate: " + std::to_string(rep.lint.errors()) +
                    " error(s), " + std::to_string(rep.lint.warnings()) +
                    " warning(s); first: " + rep.lint.findings().front().rule +
                    " " + rep.lint.findings().front().message;
      }
      const NetlistStats ns = flow.netlist.stats();
      rep.gates = ns.gates;
      rep.two_input = ns.two_input;
      rep.exors = ns.exors;
      rep.inverters = ns.inverters;
      rep.levels = ns.cascades;
      rep.area = ns.area;
      rep.delay = ns.delay;
      result.netlist = std::move(flow.netlist);
    }
  } catch (const BddAbortError&) {
    rep.status = JobStatus::kTimeout;
    result.netlist = Netlist{};
  } catch (const std::exception& e) {
    rep.status = JobStatus::kError;
    rep.error = e.what();
    result.netlist = Netlist{};
  }

  rep.wall_ms = ms_since(t0);
  if (mgr != nullptr) {
    const BddStats& s = mgr->stats();
    rep.bdd_steps = mgr->steps_used();
    rep.peak_nodes = s.peak_nodes;
    rep.gc_runs = s.gc_runs;
    const std::size_t unique_total = s.unique_hits + s.unique_misses;
    rep.unique_hit_rate =
        unique_total != 0 ? static_cast<double>(s.unique_hits) / unique_total : 0.0;
    rep.cache_hit_rate = s.cache_lookups != 0
                             ? static_cast<double>(s.cache_hits) / s.cache_lookups
                             : 0.0;
    rep.gc_ms = s.gc_ms;
    rep.cache_inserts = s.cache_inserts;
    rep.cache_resizes = s.cache_resizes;
    rep.cache_swept = s.cache_swept;
    rep.cache_kept = s.cache_kept;
  }
  return result;
}

EngineReport aggregate(const std::vector<JobResult>& results, unsigned workers,
                       double wall_ms) {
  EngineReport sum;
  sum.jobs = results.size();
  sum.workers = workers;
  sum.wall_ms = wall_ms;
  for (const JobResult& r : results) {
    const JobReport& rep = r.report;
    switch (rep.status) {
      case JobStatus::kOk: ++sum.ok; break;
      case JobStatus::kTimeout: ++sum.timeouts; break;
      case JobStatus::kVerifyFailed: ++sum.verify_failures; break;
      case JobStatus::kLintFailed: ++sum.lint_failures; break;
      case JobStatus::kError: ++sum.errors; break;
    }
    sum.total_job_ms += rep.wall_ms;
    sum.total_gates += rep.gates;
    sum.total_exors += rep.exors;
    sum.job_reports.push_back(rep);
  }
  return sum;
}

}  // namespace

BatchEngine::BatchEngine(EngineOptions options) : options_(options) {}

std::size_t BatchEngine::submit(JobSpec spec) {
  if (spec.name.empty()) {
    if (const auto* path = std::get_if<std::string>(&spec.source)) {
      spec.name = *path;
    } else {
      spec.name = numbered_name("job", queue_.size());
    }
  }
  if (spec.step_budget == 0) spec.step_budget = options_.default_step_budget;
  if (spec.timeout_ms == 0) spec.timeout_ms = options_.default_timeout_ms;
  queue_.push_back(std::move(spec));
  return queue_.size() - 1;
}

BatchOutcome BatchEngine::run() {
  const Clock::time_point t0 = Clock::now();
  const std::size_t num_jobs = queue_.size();
  std::vector<JobResult> results(num_jobs);

  unsigned workers = options_.num_workers != 0
                         ? options_.num_workers
                         : std::max(1u, std::thread::hardware_concurrency());
  workers = static_cast<unsigned>(
      std::min<std::size_t>(workers, std::max<std::size_t>(num_jobs, 1)));

  std::mutex queue_mutex;
  std::size_t next_job = 0;
  auto drain = [&](std::size_t worker_id) {
    Worker worker;
    for (;;) {
      std::size_t i;
      {
        const std::lock_guard<std::mutex> lock(queue_mutex);
        if (next_job >= num_jobs) return;
        i = next_job++;
      }
      // Each slot of `results` is written by exactly one worker; the join
      // below publishes them to the caller.
      results[i] = run_job(queue_[i], i, worker_id, worker);
      if (!options_.keep_netlists) results[i].netlist = Netlist{};
    }
  };

  if (workers <= 1) {
    drain(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) pool.emplace_back(drain, w);
    for (std::thread& t : pool) t.join();
  }
  queue_.clear();

  BatchOutcome outcome;
  outcome.summary = aggregate(results, workers, ms_since(t0));
  outcome.results = std::move(results);
  return outcome;
}

}  // namespace bidec
