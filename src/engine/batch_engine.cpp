#include "engine/batch_engine.h"

#include <chrono>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "engine/cli_opts.h"
#include "engine/job_runner.h"
#include "engine/thread_annotations.h"

namespace bidec {

namespace {

/// Two statements: GCC 12's -Wrestrict misfires on `prefix +
/// std::to_string(i)` once the string operator+ is inlined.
std::string numbered_name(const char* prefix, std::size_t i) {
  std::string s = prefix;
  s += std::to_string(i);
  return s;
}

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

EngineReport aggregate(const std::vector<JobResult>& results, unsigned workers,
                       std::size_t worker_deaths, double wall_ms) {
  EngineReport sum;
  sum.jobs = results.size();
  sum.workers = workers;
  sum.worker_deaths = worker_deaths;
  sum.wall_ms = wall_ms;
  for (const JobResult& r : results) {
    const JobReport& rep = r.report;
    switch (rep.status) {
      case JobStatus::kOk: ++sum.ok; break;
      case JobStatus::kDegraded: ++sum.degraded; break;
      case JobStatus::kTimeout: ++sum.timeouts; break;
      case JobStatus::kVerifyFailed: ++sum.verify_failures; break;
      case JobStatus::kLintFailed: ++sum.lint_failures; break;
      case JobStatus::kError: ++sum.errors; break;
    }
    sum.total_job_ms += rep.wall_ms;
    sum.total_gates += rep.gates;
    sum.total_exors += rep.exors;
    sum.job_reports.push_back(rep);
  }
  return sum;
}

}  // namespace

BatchEngine::BatchEngine(EngineOptions options)
    : options_(std::move(options)),
      pool_(ManagerPoolOptions{/*max_idle_per_width=*/8,
                               options_.recycle_after_jobs,
                               options_.audit_managers}) {}

std::size_t BatchEngine::submit(JobSpec spec) {
  if (spec.name.empty()) {
    if (const auto* path = std::get_if<std::string>(&spec.source)) {
      spec.name = *path;
    } else {
      spec.name = numbered_name("job", queue_.size());
    }
  }
  if (spec.step_budget == 0) spec.step_budget = options_.default_step_budget;
  if (spec.timeout_ms == 0) spec.timeout_ms = options_.default_timeout_ms;
  if (spec.node_budget == 0) spec.node_budget = options_.default_node_budget;
  if (spec.max_retries == 0) spec.max_retries = options_.default_max_retries;
  spec.degrade = spec.degrade || options_.degrade;
  queue_.push_back(std::move(spec));
  return queue_.size() - 1;
}

BatchOutcome BatchEngine::run() {
  const Clock::time_point t0 = Clock::now();
  const std::size_t num_jobs = queue_.size();
  std::vector<JobResult> results(num_jobs);

  const unsigned workers = resolve_worker_count(options_.num_workers, num_jobs);

  // Shared scheduling state, all guarded by one mutex: the next fresh job,
  // jobs re-queued by a dying worker, and the death count. A job id leaves
  // this state exactly once per execution; a death puts its id back. The
  // capability annotations let the clang -Wthread-safety build prove every
  // access below really holds `mu`.
  struct Scheduler {
    std::mutex mu;
    std::size_t next_job BIDEC_GUARDED_BY(mu) = 0;
    std::vector<std::size_t> requeued BIDEC_GUARDED_BY(mu);
    std::size_t deaths BIDEC_GUARDED_BY(mu) = 0;
  } sched;

  auto pop_job = [&](std::size_t& i) {
    const std::lock_guard<std::mutex> lock(sched.mu);
    if (!sched.requeued.empty()) {
      i = sched.requeued.back();
      sched.requeued.pop_back();
      return true;
    }
    if (sched.next_job >= num_jobs) return false;
    i = sched.next_job++;
    return true;
  };

  auto drain = [&](std::size_t worker_id, bool allow_worker_death) {
    PooledManagerSource source(pool_);
    for (;;) {
      std::size_t i;
      if (!pop_job(i)) return;
      try {
        // Each slot of `results` is written by exactly one worker; the join
        // below publishes them to the caller.
        results[i] = run_synthesis_job(queue_[i], i, worker_id, source,
                                       options_.fault, allow_worker_death,
                                       options_.fresh_managers);
        if (!options_.keep_netlists) results[i].netlist = Netlist{};
      } catch (const WorkerDeathFault&) {
        // This worker is gone. Put the in-flight job back for the survivors
        // and exit the thread; the queue keeps draining without us.
        const std::lock_guard<std::mutex> lock(sched.mu);
        sched.requeued.push_back(i);
        ++sched.deaths;
        return;
      } catch (...) {
        // Unknown exception type: record a clean failure for this job and
        // keep the worker alive. Nothing may escape into std::thread —
        // that would terminate the whole process.
        JobResult failed;
        failed.report.job_id = i;
        failed.report.name = queue_[i].name;
        failed.report.worker = worker_id;
        failed.report.status = JobStatus::kError;
        failed.report.error = "worker caught an unidentified exception";
        results[i] = std::move(failed);
      }
    }
  };

  if (workers <= 1) {
    drain(0, /*allow_worker_death=*/true);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
      pool.emplace_back(drain, w, /*allow_worker_death=*/true);
    }
    for (std::thread& t : pool) t.join();
  }

  // Recovery pass: if every worker died (or the single inline worker did),
  // jobs may remain. Run them on this thread with worker-death injection
  // disabled — there is no pool left to kill, and the batch contract is
  // that every submitted job gets a report. The workers are joined, but the
  // reads still take the lock so the capability annotations stay honest.
  bool leftovers = false;
  std::size_t deaths = 0;
  {
    const std::lock_guard<std::mutex> lock(sched.mu);
    leftovers = !sched.requeued.empty() || sched.next_job < num_jobs;
    deaths = sched.deaths;
  }
  if (leftovers) {
    drain(workers, /*allow_worker_death=*/false);
  }

  queue_.clear();

  BatchOutcome outcome;
  outcome.summary = aggregate(results, workers, deaths, ms_since(t0));
  outcome.results = std::move(results);
  return outcome;
}

}  // namespace bidec
