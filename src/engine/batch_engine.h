// Parallel batch-synthesis engine: a fixed pool of worker threads draining
// a mutex-guarded queue of synthesis jobs. Each worker owns a private
// BddManager (the ROBDD package is single-threaded by design; nothing in
// it is shared across workers), materializes each job's manager-independent
// spec locally, runs synthesize_bidecomp, verifies, and fills in a
// JobReport. A per-job step budget / deadline cancels runaway BDD blow-ups
// through the manager's cooperative abort hook, so one pathological job
// ends with JobStatus::kTimeout while the rest of the pool keeps draining.
#ifndef BIDEC_ENGINE_BATCH_ENGINE_H
#define BIDEC_ENGINE_BATCH_ENGINE_H

#include <cstdint>
#include <vector>

#include "engine/job.h"
#include "engine/manager_pool.h"
#include "fault/fault.h"

namespace bidec {

struct EngineOptions {
  /// Worker threads (0 = hardware concurrency, capped at the job count).
  unsigned num_workers = 0;
  /// Default per-job BDD step budget for specs that leave it 0 (0 = none).
  std::uint64_t default_step_budget = 0;
  /// Default per-job wall-time deadline for specs that leave it 0 (0 = none).
  std::uint32_t default_timeout_ms = 0;
  /// Default per-job live-node cap for specs that leave it 0 (0 = none).
  std::size_t default_node_budget = 0;
  /// Default retry count for specs that leave max_retries 0.
  unsigned default_max_retries = 0;
  /// Degradation-ladder policy for every submitted job (a spec can also opt
  /// in individually; the engine default ORs in).
  bool degrade = false;
  /// Keep synthesized netlists in the results (drop to save memory when
  /// only the metrics matter).
  bool keep_netlists = true;
  /// Construct a fresh BddManager for every job instead of recycling the
  /// worker's. Slower (no warm tables) but makes every per-job metric
  /// independent of which jobs shared a worker — the determinism tests and
  /// any non-empty fault plan need that isolation, so a non-empty `fault`
  /// implies fresh managers regardless of this flag.
  bool fresh_managers = false;
  /// Deterministic fault plan replayed into every job (empty = none).
  /// See fault/fault.h; exercised by tests and chaos CI, never in
  /// production configurations.
  FaultPlan fault;
  /// Rebuild a pooled manager after this many jobs (0 = never); see
  /// ManagerPoolOptions::recycle_after_jobs.
  unsigned recycle_after_jobs = 64;
  /// Audit pooled managers on release and discard unhealthy ones; see
  /// ManagerPoolOptions::audit_on_release.
  bool audit_managers = false;
};

/// Everything run() produces: one result per submitted job (indexed by the
/// id submit() returned) plus the aggregate report.
struct BatchOutcome {
  std::vector<JobResult> results;
  EngineReport summary;
};

class BatchEngine {
 public:
  explicit BatchEngine(EngineOptions options = {});

  BatchEngine(const BatchEngine&) = delete;
  BatchEngine& operator=(const BatchEngine&) = delete;

  /// Enqueue one job; returns its id (the index in BatchOutcome::results).
  /// Engine-level defaults are applied to zero-valued per-job limits here.
  std::size_t submit(JobSpec spec);

  /// Run all submitted jobs to completion and clear the queue. Safe to
  /// submit() and run() again afterwards.
  [[nodiscard]] BatchOutcome run();

  [[nodiscard]] const EngineOptions& options() const noexcept { return options_; }
  [[nodiscard]] std::size_t pending_jobs() const noexcept { return queue_.size(); }
  /// Warm-pool counters: managers outlive run() cycles, so a second batch
  /// over same-width specs leases warm instead of constructing cold.
  [[nodiscard]] ManagerPoolStats pool_stats() const { return pool_.stats(); }

 private:
  EngineOptions options_;
  std::vector<JobSpec> queue_;
  // Warm managers shared by the worker threads of every run() cycle.
  // Workers lease per width and hold the lease across same-width jobs;
  // release hygiene (GC, stats reset, recycle ratchet) lives in the pool.
  ManagerPool pool_;
};

}  // namespace bidec

#endif  // BIDEC_ENGINE_BATCH_ENGINE_H
