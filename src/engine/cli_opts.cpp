#include "engine/cli_opts.h"

#include <algorithm>
#include <thread>

namespace bidec {

std::optional<std::uint64_t> parse_cli_unsigned(const char* value) {
  if (value == nullptr || *value == '\0') return std::nullopt;
  std::uint64_t n = 0;
  for (const char* p = value; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') return std::nullopt;
    n = n * 10 + static_cast<std::uint64_t>(*p - '0');
  }
  return n;
}

unsigned resolve_worker_count(unsigned requested) noexcept {
  if (requested != 0) return requested;
  return std::max(1u, std::thread::hardware_concurrency());
}

unsigned resolve_worker_count(unsigned requested, std::size_t num_jobs) noexcept {
  const unsigned resolved = resolve_worker_count(requested);
  return static_cast<unsigned>(
      std::min<std::size_t>(resolved, std::max<std::size_t>(num_jobs, 1)));
}

}  // namespace bidec
