// Warm BddManager pool: long-lived managers handed out as RAII leases so
// unique tables, computed caches and GC ratchets survive across jobs (and,
// for the server, across requests). Release hygiene keeps a recycled
// manager indistinguishable from a healthy one: abort limits cleared, fault
// injector detached, garbage collected, stats reset, and — optionally — a
// full structural audit; a manager that fails any of it is discarded, never
// re-issued. A recycle-after-N-jobs ratchet bounds how much history a
// single manager can accumulate before it is rebuilt from scratch.
#ifndef BIDEC_ENGINE_MANAGER_POOL_H
#define BIDEC_ENGINE_MANAGER_POOL_H

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "bdd/bdd.h"
#include "engine/thread_annotations.h"

namespace bidec {

struct ManagerPoolOptions {
  /// Idle managers kept per variable count; extras are destroyed on release.
  std::size_t max_idle_per_width = 8;
  /// Destroy (instead of pooling) a manager after this many jobs, so table
  /// growth and cache aging cannot compound forever (0 = never recycle).
  unsigned recycle_after_jobs = 64;
  /// Run BddManager::audit() on release and discard managers with findings.
  /// The structural audit is O(live nodes); after the release-time GC a
  /// healthy manager is small, so this is cheap insurance for a daemon.
  bool audit_on_release = false;
};

struct ManagerPoolStats {
  std::uint64_t leases = 0;         ///< acquire() calls
  std::uint64_t warm = 0;           ///< served from the idle pool
  std::uint64_t cold = 0;           ///< served by constructing a manager
  std::uint64_t recycled = 0;       ///< discarded by the after-N-jobs ratchet
  std::uint64_t audit_discards = 0; ///< discarded by a failing release audit
  std::uint64_t dirty_discards = 0; ///< discarded by mark_dirty / leaked nodes
};

class ManagerPool {
  struct Pooled;  // one pooled manager plus its job odometer

 public:
  explicit ManagerPool(ManagerPoolOptions options = {}) : options_(options) {}

  ManagerPool(const ManagerPool&) = delete;
  ManagerPool& operator=(const ManagerPool&) = delete;

  /// RAII handle to one pooled manager. Movable; returns the manager to the
  /// pool (through release hygiene) on destruction. All Bdd handles into
  /// the manager must be dead by then.
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept { swap(other); }
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        reset();
        swap(other);
      }
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { reset(); }

    [[nodiscard]] explicit operator bool() const noexcept { return pooled_ != nullptr; }
    [[nodiscard]] BddManager& manager() const { return *pooled_->mgr; }
    /// Count one more job against the recycle ratchet without a pool
    /// round-trip (a batch worker reuses its lease across jobs).
    void note_reuse() noexcept {
      if (pooled_ != nullptr) ++pooled_->jobs_run;
    }
    /// Discard the manager on release instead of pooling it (the job left
    /// it in a state not worth trusting or cleaning).
    void mark_dirty() noexcept { dirty_ = true; }
    /// Return the manager to the pool now (destructor semantics, early).
    void reset() noexcept {
      if (pooled_ != nullptr) pool_->release(std::unique_ptr<Pooled>(pooled_), dirty_);
      pooled_ = nullptr;
      dirty_ = false;
    }

   private:
    friend class ManagerPool;
    void swap(Lease& other) noexcept {
      std::swap(pool_, other.pool_);
      std::swap(pooled_, other.pooled_);
      std::swap(dirty_, other.dirty_);
    }

    ManagerPool* pool_ = nullptr;
    Pooled* pooled_ = nullptr;  // owned while leased (raw for movability)
    bool dirty_ = false;
  };

  /// Lease a manager with exactly `num_vars` variables: warm from the idle
  /// pool when one exists, freshly constructed otherwise. Thread-safe.
  [[nodiscard]] Lease acquire(unsigned num_vars) BIDEC_EXCLUDES(mutex_);

  [[nodiscard]] ManagerPoolStats stats() const BIDEC_EXCLUDES(mutex_);
  /// Idle managers currently pooled (all widths).
  [[nodiscard]] std::size_t idle_count() const BIDEC_EXCLUDES(mutex_);
  [[nodiscard]] const ManagerPoolOptions& options() const noexcept { return options_; }

 private:
  struct Pooled {
    std::unique_ptr<BddManager> mgr;
    unsigned jobs_run = 0;
  };

  void release(std::unique_ptr<Pooled> pooled, bool dirty) BIDEC_EXCLUDES(mutex_);

  ManagerPoolOptions options_;
  mutable std::mutex mutex_;
  std::unordered_map<unsigned, std::vector<std::unique_ptr<Pooled>>> idle_
      BIDEC_GUARDED_BY(mutex_);
  ManagerPoolStats stats_ BIDEC_GUARDED_BY(mutex_);
};

}  // namespace bidec

#endif  // BIDEC_ENGINE_MANAGER_POOL_H
