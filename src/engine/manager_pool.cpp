#include "engine/manager_pool.h"

namespace bidec {

ManagerPool::Lease ManagerPool::acquire(unsigned num_vars) {
  std::unique_ptr<Pooled> pooled;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.leases;
    const auto it = idle_.find(num_vars);
    if (it != idle_.end() && !it->second.empty()) {
      pooled = std::move(it->second.back());
      it->second.pop_back();
      ++stats_.warm;
    } else {
      ++stats_.cold;
    }
  }
  if (!pooled) {
    // Construct outside the lock: building a manager allocates its node
    // store and tables, which must not serialize every other lease.
    pooled = std::make_unique<Pooled>();
    pooled->mgr = std::make_unique<BddManager>(num_vars);
  }
  ++pooled->jobs_run;
  Lease lease;
  lease.pool_ = this;
  lease.pooled_ = pooled.release();
  return lease;
}

void ManagerPool::release(std::unique_ptr<Pooled> pooled, bool dirty) {
  // Hygiene outside the lock; only the final push is serialized.
  enum class Drop { kNo, kDirty, kRecycle, kAudit };
  Drop drop = Drop::kNo;
  if (dirty) {
    drop = Drop::kDirty;
  } else if (options_.recycle_after_jobs != 0 &&
             pooled->jobs_run >= options_.recycle_after_jobs) {
    drop = Drop::kRecycle;
  } else {
    BddManager& mgr = *pooled->mgr;
    mgr.clear_abort();  // also detaches any fault injector
    mgr.collect_garbage();
    if (mgr.live_node_count() != 0) {
      // Live nodes after a full collection mean the job leaked handles into
      // the manager; re-issuing it would let one job's nodes haunt another.
      drop = Drop::kDirty;
    } else if (options_.audit_on_release && !mgr.audit().empty()) {
      drop = Drop::kAudit;
    } else {
      mgr.reset_stats();
    }
  }

  const std::lock_guard<std::mutex> lock(mutex_);
  switch (drop) {
    case Drop::kDirty: ++stats_.dirty_discards; return;
    case Drop::kRecycle: ++stats_.recycled; return;
    case Drop::kAudit: ++stats_.audit_discards; return;
    case Drop::kNo: break;
  }
  std::vector<std::unique_ptr<Pooled>>& bucket = idle_[pooled->mgr->num_vars()];
  if (bucket.size() >= options_.max_idle_per_width) {
    ++stats_.dirty_discards;
    return;
  }
  bucket.push_back(std::move(pooled));
}

ManagerPoolStats ManagerPool::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t ManagerPool::idle_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& [vars, bucket] : idle_) n += bucket.size();
  return n;
}

}  // namespace bidec
