// Flag-parsing helpers shared by every engine-driving executable
// (batch_synth, bidecomp_cli, bidec_server). Kept in the library — not in
// examples/ — so the contract is unit-testable: in particular, a worker
// count of 0 always means "auto-detect" (std::thread::hardware_concurrency,
// never fewer than one worker), both as an explicit `--jobs 0` and as the
// flag's default.
#ifndef BIDEC_ENGINE_CLI_OPTS_H
#define BIDEC_ENGINE_CLI_OPTS_H

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>

namespace bidec {

/// Strict decimal parse: the whole token must be digits. Returns
/// std::nullopt for null/empty/garbage ("--jobs banana") instead of
/// silently mapping it to 0, i.e. to the default.
[[nodiscard]] std::optional<std::uint64_t> parse_cli_unsigned(const char* value);

/// Resolve a requested worker count: 0 means auto-detect (hardware
/// concurrency, at least 1). Any explicit request is honoured as-is.
[[nodiscard]] unsigned resolve_worker_count(unsigned requested) noexcept;

/// Same, additionally capped at the number of jobs (a batch never spawns
/// more threads than it has work for; at least 1 so an empty batch still
/// resolves to something runnable).
[[nodiscard]] unsigned resolve_worker_count(unsigned requested,
                                            std::size_t num_jobs) noexcept;

}  // namespace bidec

#endif  // BIDEC_ENGINE_CLI_OPTS_H
