// Single-job execution, factored out of the batch engine so every frontend
// that runs synthesis jobs — the batch engine's worker pool, the server's
// long-lived daemon workers, tests — shares one implementation of the
// load/synthesize/verify/degrade pipeline. The caller supplies the manager
// through a ManagerSource, which is where ownership policy lives: a batch
// worker hands back its thread-private (pool-leased) manager, the server
// leases from a warm cross-request pool.
#ifndef BIDEC_ENGINE_JOB_RUNNER_H
#define BIDEC_ENGINE_JOB_RUNNER_H

#include <cstddef>
#include <memory>

#include "engine/job.h"
#include "engine/manager_pool.h"
#include "fault/fault.h"

namespace bidec {

/// Supplies the BddManager a job attempt runs on. `manager_for` is called
/// once per attempt; the returned manager must have exactly `num_vars`
/// variables, fresh per-job stats, and no live nodes or abort limits left
/// over from a previous job. With `fresh` set the caller demands a
/// brand-new manager (fault replay and the determinism suites need metrics
/// independent of job co-location). The reference must stay valid until
/// the next manager_for call or the source's destruction.
class ManagerSource {
 public:
  virtual ~ManagerSource() = default;
  virtual BddManager& manager_for(unsigned num_vars, bool fresh) = 0;
};

/// Trivial source: one owned manager, recycled across calls when the
/// variable count matches (collect_garbage + reset_stats), rebuilt
/// otherwise. This is the pre-pool worker behaviour, kept for callers that
/// want strict per-thread ownership.
class OwnedManagerSource final : public ManagerSource {
 public:
  BddManager& manager_for(unsigned num_vars, bool fresh) override;

 private:
  std::unique_ptr<BddManager> mgr_;
};

/// Per-worker source backed by a warm ManagerPool. The lease is held
/// across jobs (a worker draining ten same-width jobs touches the pool
/// once) and returned — through release hygiene — when the source is
/// destroyed at worker exit, so the next worker generation leases warm.
/// Fresh-manager requests (fault replay, determinism runs) bypass the pool
/// entirely: those managers are constructed per attempt and never pooled.
class PooledManagerSource final : public ManagerSource {
 public:
  explicit PooledManagerSource(ManagerPool& pool) : pool_(&pool) {}

  BddManager& manager_for(unsigned num_vars, bool fresh) override;

 private:
  ManagerPool* pool_;
  ManagerPool::Lease lease_;
  std::unique_ptr<BddManager> fresh_;
};

/// Run one job start to finish: materialize the spec, walk the retry /
/// degradation ladder, verify, lint-gate, and fill in the JobReport
/// (including the manager's substrate counters). Exceptions never escape —
/// every failure mode ends as a JobStatus — except WorkerDeathFault, which
/// deliberately flies through to kill the calling worker.
[[nodiscard]] JobResult run_synthesis_job(const JobSpec& spec, std::size_t job_id,
                                          std::size_t worker_id,
                                          ManagerSource& managers,
                                          const FaultPlan& plan,
                                          bool allow_worker_death,
                                          bool fresh_managers);

}  // namespace bidec

#endif  // BIDEC_ENGINE_JOB_RUNNER_H
