// Proof policy and counters shared by every layer that carries them
// (FlowOptions, SatDecOptions, JobReport, the server protocol, the CLIs).
// Deliberately dependency-free: this header is included from option structs
// all over the tree, so it must not pull in the solver or the checker.
#ifndef BIDEC_PROOF_POLICY_H
#define BIDEC_PROOF_POLICY_H

#include <cstdint>
#include <optional>
#include <string_view>

namespace bidec::proof {

/// What to do about UNSAT verdicts of the CDCL solver.
///  * kOff:   no logging, no checking — the zero-overhead default.
///  * kLog:   record a DRAT clause proof (learned clauses + deletions) for
///            every solver; nothing is validated, but the proof is there.
///  * kCheck: additionally re-validate every UNSAT verdict with the
///            independent backward-RUP checker *before the result is
///            trusted*. A failed check is an engine bug and is reported
///            with the same severity as a bdd/sat verifier disagreement —
///            never a silent pass.
enum class ProofPolicy : std::uint8_t { kOff, kLog, kCheck };

[[nodiscard]] constexpr const char* to_string(ProofPolicy policy) noexcept {
  switch (policy) {
    case ProofPolicy::kOff: return "off";
    case ProofPolicy::kLog: return "log";
    case ProofPolicy::kCheck: return "check";
  }
  return "unknown";
}

/// Parse "off" | "log" | "check"; nullopt on anything else.
[[nodiscard]] inline std::optional<ProofPolicy> parse_proof_policy(
    std::string_view name) {
  if (name == "off") return ProofPolicy::kOff;
  if (name == "log") return ProofPolicy::kLog;
  if (name == "check") return ProofPolicy::kCheck;
  return std::nullopt;
}

/// Everything measured about proof logging/checking, aggregated per job.
/// Every counter except `check_ms` is deterministic (the solver and the
/// checker have no randomness), so stable reports may include them;
/// `check_ms` is wall time and stays out of byte-stable JSON.
struct ProofStats {
  std::uint64_t checked_unsat = 0;  ///< UNSAT verdicts validated by the checker
  std::uint64_t failed_checks = 0;  ///< checker rejections (engine bugs); 0 or the job failed
  std::uint64_t logged_inputs = 0;  ///< original problem clauses recorded
  std::uint64_t proof_clauses = 0;  ///< derived (learned/verdict) clauses recorded
  std::uint64_t deletions = 0;      ///< clause deletions recorded
  std::uint64_t trimmed_clauses = 0;  ///< derived clauses the backward check marked
  std::uint64_t core_inputs = 0;      ///< input clauses in the verified cores
  double check_ms = 0.0;              ///< wall time inside the checker

  ProofStats& operator+=(const ProofStats& o) noexcept {
    checked_unsat += o.checked_unsat;
    failed_checks += o.failed_checks;
    logged_inputs += o.logged_inputs;
    proof_clauses += o.proof_clauses;
    deletions += o.deletions;
    trimmed_clauses += o.trimmed_clauses;
    core_inputs += o.core_inputs;
    check_ms += o.check_ms;
    return *this;
  }
};

}  // namespace bidec::proof

#endif  // BIDEC_PROOF_POLICY_H
