#include "proof/proof_log.h"

#include <ostream>

namespace bidec::proof {

namespace {

/// DIMACS rendering of a packed literal: 1-based variable, minus = negated.
long long dimacs(sat::Lit l) noexcept {
  const long long v = static_cast<long long>(l.var()) + 1;
  return l.negated() ? -v : v;
}

}  // namespace

void ProofLog::append_event(EventKind kind, std::span<const sat::Lit> lits) {
  Event e;
  e.kind = kind;
  e.begin = static_cast<std::uint32_t>(pool_.size());
  pool_.insert(pool_.end(), lits.begin(), lits.end());
  e.end = static_cast<std::uint32_t>(pool_.size());
  events_.push_back(e);
  if (tee_.is_open() && kind != EventKind::kInput) {
    write_proof_line(tee_, e);
  }
}

void ProofLog::on_add(std::span<const sat::Lit> lits, bool derived) {
  if (derived) {
    last_derived_ = events_.size();
    ++derived_;
    append_event(EventKind::kDerived, lits);
  } else {
    ++inputs_;
    append_event(EventKind::kInput, lits);
  }
}

void ProofLog::on_delete(std::span<const sat::Lit> lits) {
  ++deletions_;
  append_event(EventKind::kDelete, lits);
}

bool ProofLog::tee_to_file(const std::string& path) {
  tee_.open(path, std::ios::out | std::ios::trunc);
  return tee_.is_open();
}

void ProofLog::write_proof_line(std::ostream& os, const Event& e) const {
  if (e.kind == EventKind::kDelete) os << "d ";
  for (const sat::Lit l : lits(e)) os << dimacs(l) << ' ';
  os << "0\n";
}

void ProofLog::write_drat(std::ostream& os) const {
  for (const Event& e : events_) {
    if (e.kind == EventKind::kInput) continue;
    write_proof_line(os, e);
  }
}

void ProofLog::clear() {
  pool_.clear();
  events_.clear();
  inputs_ = 0;
  derived_ = 0;
  deletions_ = 0;
  last_derived_ = npos;
}

void ProofLog::corrupt_last_derived_for_test() {
  if (last_derived_ == npos) return;
  Event& e = events_[last_derived_];
  if (e.begin == e.end) {
    // Empty verdict clause: replace it with a bogus unit so the "UNSAT"
    // conclusion no longer follows from the proof.
    e.begin = static_cast<std::uint32_t>(pool_.size());
    pool_.push_back(sat::mk_lit(0));
    e.end = static_cast<std::uint32_t>(pool_.size());
  } else {
    pool_[e.begin] = ~pool_[e.begin];
  }
}

}  // namespace bidec::proof
