// In-memory (optionally file-teed) DRAT clause-proof log. One ProofLog is
// armed on one sat::Solver via set_proof_log() *before* the first clause is
// added; from then on it records, in order, every original clause, every
// clause the solver claims to have derived (learned clauses and the UNSAT
// verdict clauses), and every learned-clause deletion. The independent
// checker in drat_check.h replays this record; the log itself never
// interprets it.
//
// Storage is a flat literal pool plus fixed-size event descriptors, so a
// armed-but-never-checked run ("--proof=log") costs one amortized append
// per learned clause and nothing else.
#ifndef BIDEC_PROOF_PROOF_LOG_H
#define BIDEC_PROOF_PROOF_LOG_H

#include <cstdint>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "proof/policy.h"
#include "sat/solver.h"

namespace bidec::proof {

class ProofLog final : public sat::ProofSink {
 public:
  enum class EventKind : std::uint8_t {
    kInput,    ///< original problem clause (the formula side of DRAT)
    kDerived,  ///< clause claimed RUP-derivable at this point
    kDelete,   ///< learned clause removed from the database
  };

  struct Event {
    EventKind kind = EventKind::kInput;
    std::uint32_t begin = 0;  ///< first literal in the pool
    std::uint32_t end = 0;    ///< one past the last literal
  };

  ProofLog() = default;

  // --- sat::ProofSink ------------------------------------------------------
  void on_add(std::span<const sat::Lit> lits, bool derived) override;
  void on_delete(std::span<const sat::Lit> lits) override;

  // --- access for the checker ---------------------------------------------
  [[nodiscard]] std::size_t num_events() const noexcept { return events_.size(); }
  [[nodiscard]] const Event& event(std::size_t i) const { return events_[i]; }
  [[nodiscard]] std::span<const sat::Lit> lits(const Event& e) const noexcept {
    return {pool_.data() + e.begin, pool_.data() + e.end};
  }

  [[nodiscard]] std::uint64_t input_clauses() const noexcept { return inputs_; }
  [[nodiscard]] std::uint64_t derived_clauses() const noexcept { return derived_; }
  [[nodiscard]] std::uint64_t deletions() const noexcept { return deletions_; }

  /// Index of the most recent kDerived event, or npos when none exists.
  /// After a solve() that returned kUnsat this is the verdict clause.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  [[nodiscard]] std::size_t last_derived() const noexcept { return last_derived_; }

  // --- file-backed mode ----------------------------------------------------
  /// Additionally stream proof lines (derived adds and deletions, standard
  /// textual DRAT: DIMACS literals, "d " prefix for deletions, 0-terminated)
  /// to `path` as they arrive. Input clauses belong to the formula, not the
  /// proof, and are not written. Returns false when the file cannot open.
  bool tee_to_file(const std::string& path);
  /// Write the same textual DRAT proof for everything logged so far.
  void write_drat(std::ostream& os) const;

  /// Drop everything (events, pool, counters); the tee file stays attached.
  void clear();

  // --- fault-injection hook ------------------------------------------------
  /// Corrupt the most recent derived clause by flipping its first literal
  /// (or, for the empty clause, turning it into a bogus unit). This is the
  /// deliberate-engine-bug hook the fault layer uses to prove the checker
  /// actually gates results; it has no other legitimate use.
  void corrupt_last_derived_for_test();

 private:
  void append_event(EventKind kind, std::span<const sat::Lit> lits);
  void write_proof_line(std::ostream& os, const Event& e) const;

  std::vector<sat::Lit> pool_;
  std::vector<Event> events_;
  std::uint64_t inputs_ = 0;
  std::uint64_t derived_ = 0;
  std::uint64_t deletions_ = 0;
  std::size_t last_derived_ = npos;
  std::ofstream tee_;
};

}  // namespace bidec::proof

#endif  // BIDEC_PROOF_PROOF_LOG_H
