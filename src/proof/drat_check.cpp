#include "proof/drat_check.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <unordered_set>

namespace bidec::proof {

namespace {

using sat::Lit;
using sat::Var;

/// Normalized-clause key for deletion matching: the sorted, deduplicated
/// literal codes as raw bytes. Deterministic and collision-free.
std::string clause_key(const std::vector<Lit>& lits) {
  std::string key(lits.size() * sizeof(std::uint32_t), '\0');
  for (std::size_t i = 0; i < lits.size(); ++i) {
    std::memcpy(key.data() + i * sizeof(std::uint32_t), &lits[i].code,
                sizeof(std::uint32_t));
  }
  return key;
}

/// Sort by code and drop duplicates; report whether the clause contains a
/// complementary pair (a tautology — satisfied under every assignment).
std::vector<Lit> normalize(std::span<const Lit> lits, bool& taut) {
  std::vector<Lit> out(lits.begin(), lits.end());
  std::sort(out.begin(), out.end(),
            [](Lit a, Lit b) { return a.code < b.code; });
  out.erase(std::unique(out.begin(), out.end()), out.end());
  taut = false;
  for (std::size_t i = 1; i < out.size(); ++i) {
    if (out[i].code == (out[i - 1].code ^ 1u)) {
      taut = true;
      break;
    }
  }
  return out;
}

struct BirthLess {
  const std::vector<std::uint32_t>& births;
  bool operator()(std::uint32_t a, std::uint32_t b) const noexcept {
    return births[a] < births[b];
  }
};

}  // namespace

void DratChecker::ensure_var(Var v) {
  if (v < value_.size()) return;
  value_.resize(v + 1, 0);
  reason_.resize(v + 1, kNoClause);
  seen_.resize(v + 1, 0);
}

bool DratChecker::assign(Lit l, std::uint32_t reason) {
  ensure_var(l.var());
  const int v = lit_value(l);
  if (v == -1) return false;
  if (v == 0) {
    value_[l.var()] = l.negated() ? std::int8_t{-1} : std::int8_t{1};
    reason_[l.var()] = reason;
    trail_.push_back(l);
  }
  return true;
}

bool DratChecker::sync(const ProofLog& log, std::string& error) {
  for (; synced_events_ < log.num_events(); ++synced_events_) {
    const ProofLog::Event& e = log.event(synced_events_);
    const std::uint32_t t = static_cast<std::uint32_t>(synced_events_);
    if (e.kind == ProofLog::EventKind::kDelete) {
      bool taut = false;
      const std::vector<Lit> lits = normalize(log.lits(e), taut);
      auto it = live_.find(clause_key(lits));
      if (it == live_.end() || it->second.empty()) {
        error = "event " + std::to_string(t) +
                ": deletion of a clause that is not alive";
        return false;
      }
      db_[it->second.back()].death = t;
      it->second.pop_back();
      continue;
    }
    CClause c;
    c.lits = normalize(log.lits(e), c.taut);
    c.birth = t;
    c.input = e.kind == ProofLog::EventKind::kInput;
    const std::uint32_t ci = static_cast<std::uint32_t>(db_.size());
    for (const Lit l : c.lits) {
      ensure_var(l.var());
      if (l.code >= occ_.size()) occ_.resize(l.code + 1);
      occ_[l.code].push_back(ci);
    }
    if (c.lits.empty()) {
      empty_clauses_.push_back(ci);
    } else if (c.lits.size() == 1) {
      unit_clauses_.push_back(ci);
    }
    live_[clause_key(c.lits)].push_back(ci);
    db_.push_back(std::move(c));
  }
  return true;
}

void DratChecker::mark_clause(std::uint32_t ci) {
  CClause& c = db_[ci];
  if (c.marked) return;
  c.marked = true;
  if (c.input) {
    ++marked_inputs_;
  } else {
    ++marked_derived_;
    if (!c.verified) pending_.push_back(ci);
  }
}

bool DratChecker::rup_at(std::uint32_t ci) {
  const std::uint32_t t = db_[ci].birth;
  std::uint32_t conflict = kNoClause;

  // Assume the negation of every literal of the clause under check. A
  // complementary pair cannot appear (tautologies are filtered before this
  // point), so these assignments are consistent.
  for (const Lit l : db_[ci].lits) {
    if (!assign(~l, kNoClause)) {
      conflict = ci;  // defensive; unreachable for non-tautologies
      break;
    }
  }

  // An alive empty clause refutes everything on its own.
  if (conflict == kNoClause) {
    for (const std::uint32_t ei : empty_clauses_) {
      if (ei != ci && active_at(db_[ei], t)) {
        conflict = ei;
        break;
      }
    }
  }

  // Seed propagation with the alive unit clauses.
  if (conflict == kNoClause) {
    for (const std::uint32_t ui : unit_clauses_) {
      if (ui == ci || !active_at(db_[ui], t)) continue;
      const Lit l = db_[ui].lits.front();
      ensure_var(l.var());
      const int v = lit_value(l);
      if (v == -1) {
        conflict = ui;
        break;
      }
      if (v == 0) assign(l, ui);
    }
  }

  // Unit propagation to fixpoint over the alive clauses, full occurrence
  // lists (deliberately not the solver's watched-literal scheme).
  std::size_t qhead = 0;
  while (conflict == kNoClause && qhead < trail_.size()) {
    const Lit p = trail_[qhead++];
    const std::uint32_t falsified = (~p).code;
    if (falsified >= occ_.size()) continue;
    for (const std::uint32_t oi : occ_[falsified]) {
      const CClause& c2 = db_[oi];
      if (oi == ci || c2.taut || !active_at(c2, t)) continue;
      bool satisfied = false;
      Lit unit = sat::kUndefLit;
      unsigned undef = 0;
      for (const Lit l : c2.lits) {
        const int v = lit_value(l);
        if (v == 1) {
          satisfied = true;
          break;
        }
        if (v == 0) {
          unit = l;
          if (++undef > 1) break;
        }
      }
      if (satisfied || undef > 1) continue;
      if (undef == 0) {
        conflict = oi;
        break;
      }
      assign(unit, oi);
    }
  }

  const bool ok = conflict != kNoClause;
  if (ok) {
    // Mark the derivation cone: the conflict clause plus, transitively,
    // the reason clause of every propagated variable the conflict rests
    // on. This is the trimmer — unmarked clauses are proof fat.
    mark_clause(conflict);
    std::vector<Var> stack;
    std::vector<Var> visited;
    for (const Lit l : db_[conflict].lits) stack.push_back(l.var());
    while (!stack.empty()) {
      const Var v = stack.back();
      stack.pop_back();
      if (v >= seen_.size() || seen_[v] != 0) continue;
      seen_[v] = 1;
      visited.push_back(v);
      const std::uint32_t r = v < reason_.size() ? reason_[v] : kNoClause;
      if (r == kNoClause) continue;
      mark_clause(r);
      for (const Lit l : db_[r].lits) stack.push_back(l.var());
    }
    for (const Var v : visited) seen_[v] = 0;
  }

  for (const Lit l : trail_) {
    value_[l.var()] = 0;
    reason_[l.var()] = kNoClause;
  }
  trail_.clear();
  return ok;
}

CheckResult DratChecker::check(const ProofLog& log,
                               std::span<const sat::Lit> assumptions) {
  const auto t0 = std::chrono::steady_clock::now();
  CheckResult res;
  const auto finish = [&](bool valid) {
    res.valid = valid;
    res.derived = log.derived_clauses();
    res.checked = marked_derived_;
    res.core_inputs = marked_inputs_;
    res.check_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
    return res;
  };

  if (!sync(log, res.error)) return finish(false);

  if (log.last_derived() == ProofLog::npos) {
    res.error = "log contains no derived clause to use as an UNSAT verdict";
    return finish(false);
  }

  // Locate the verdict: the clause whose birth is the last derived event.
  // Adds map to database entries in event order, so binary-search on birth.
  const std::uint32_t verdict_event =
      static_cast<std::uint32_t>(log.last_derived());
  const auto it = std::lower_bound(
      db_.begin(), db_.end(), verdict_event,
      [](const CClause& c, std::uint32_t ev) { return c.birth < ev; });
  if (it == db_.end() || it->birth != verdict_event || it->input) {
    res.error = "internal: verdict event has no database entry";
    return finish(false);
  }
  const std::uint32_t verdict = static_cast<std::uint32_t>(it - db_.begin());

  // Semantic gate first: the verdict clause must actually say "the
  // assumptions are contradictory" — every literal the negation of an
  // assumption, the empty clause for global UNSAT. Without this a valid
  // RUP chain ending in an unrelated clause would certify nothing.
  {
    std::unordered_set<std::uint32_t> negated;
    for (const Lit a : assumptions) negated.insert((~a).code);
    for (const Lit l : db_[verdict].lits) {
      if (negated.count(l.code) == 0) {
        res.error = "event " + std::to_string(verdict_event) +
                    ": verdict clause contains a literal that is not a "
                    "negated assumption";
        return finish(false);
      }
    }
  }

  mark_clause(verdict);

  // Backward pass: verify marked derived clauses newest-first, so the cone
  // each verification marks is processed after it. Antecedents always have
  // smaller birth than the clause they support, so a max-heap on birth
  // yields exactly the backward order.
  std::vector<std::uint32_t> births(db_.size());
  for (std::size_t i = 0; i < db_.size(); ++i) births[i] = db_[i].birth;
  const BirthLess less{births};
  std::make_heap(pending_.begin(), pending_.end(), less);
  while (!pending_.empty()) {
    std::pop_heap(pending_.begin(), pending_.end(), less);
    const std::uint32_t ci = pending_.back();
    pending_.pop_back();
    CClause& c = db_[ci];
    if (c.verified || c.input) continue;
    if (c.taut) {
      c.verified = true;  // satisfied everywhere: trivially sound to add
      continue;
    }
    if (!rup_at(ci)) {
      res.error = "event " + std::to_string(c.birth) +
                  ": derived clause is not RUP against the clauses alive "
                  "at that point";
      return finish(false);
    }
    c.verified = true;
  }

  return finish(true);
}

}  // namespace bidec::proof
