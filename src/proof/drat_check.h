// Independent DRAT proof checker: backward RUP (reverse unit propagation)
// with deletion support, plus the trimmer bookkeeping (which input clauses
// form the UNSAT core, which derived clauses the verdict actually needs).
//
// Independence is the design requirement: this checker shares zero code
// with sat::Solver's propagation loop — it keeps its own clause database,
// full occurrence lists instead of two-watched literals, and its own
// trail/reason bookkeeping — so a learning bug in the solver cannot be
// mirrored here and silently agreed with.
//
// Semantics of one check: the log's most recent derived clause is the
// claimed UNSAT verdict. It certifies `solve(assumptions) == kUnsat` iff
//   (1) every literal of the verdict clause is the negation of one of the
//       assumptions (the empty clause certifies global UNSAT), and
//   (2) the verdict clause — and transitively every derived clause its
//       derivation depends on — is RUP against the clauses alive at its
//       point in the log (deletions respected).
// The backward pass only ever verifies derived clauses the verdict's cone
// reaches; everything else is skipped, which is exactly the trimmed proof.
//
// DratChecker is incremental: repeated check() calls against one growing
// log (the per-UNSAT re-validation mode of ProofPolicy::kCheck) reuse all
// verification work of earlier calls.
#ifndef BIDEC_PROOF_DRAT_CHECK_H
#define BIDEC_PROOF_DRAT_CHECK_H

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "proof/policy.h"
#include "proof/proof_log.h"

namespace bidec::proof {

/// Thrown by proof-policy enforcement points when a checker rejects an
/// UNSAT verdict. Deliberately NOT derived from BddAbortError: a failed
/// proof check is an engine bug, never retryable resource exhaustion, so
/// it must not send a job down the degradation ladder.
class ProofCheckError : public std::runtime_error {
 public:
  explicit ProofCheckError(const std::string& what) : std::runtime_error(what) {}
};

/// Outcome of one check() call. The marked counters are cumulative over
/// the checker's lifetime (the incremental trimmer keeps extending one
/// core), so callers aggregating per-call deltas subtract the previous
/// call's values.
struct CheckResult {
  bool valid = false;
  std::string error;  ///< empty when valid; names the failing event otherwise

  std::uint64_t derived = 0;      ///< derived clauses in the log so far
  std::uint64_t checked = 0;      ///< derived clauses RUP-verified (trimmed proof)
  std::uint64_t core_inputs = 0;  ///< input clauses the verified cone touches
  double check_ms = 0.0;          ///< wall time of this call
};

class DratChecker {
 public:
  DratChecker() = default;

  DratChecker(const DratChecker&) = delete;
  DratChecker& operator=(const DratChecker&) = delete;

  /// Verify that `log`'s most recent derived clause certifies UNSAT under
  /// `assumptions` (see the file comment for the exact claim). Safe to call
  /// repeatedly as the log grows; each call validates the newest verdict.
  [[nodiscard]] CheckResult check(const ProofLog& log,
                                  std::span<const sat::Lit> assumptions);
  [[nodiscard]] CheckResult check(const ProofLog& log) {
    return check(log, {});
  }

 private:
  static constexpr std::uint32_t kNever = 0xffffffffu;
  static constexpr std::uint32_t kNoClause = 0xffffffffu;

  struct CClause {
    std::vector<sat::Lit> lits;  ///< normalized: sorted by code, deduplicated
    std::uint32_t birth = 0;     ///< event index that added the clause
    std::uint32_t death = kNever;  ///< event index that deleted it
    bool input = false;
    bool taut = false;      ///< contains l and ~l: satisfied always
    bool marked = false;    ///< reached by some verdict's cone
    bool verified = false;  ///< RUP-checked at its own birth point
  };

  /// Consume log events newer than the last sync into the clause database.
  /// Returns false (with `error` set) on a malformed log, e.g. a deletion
  /// with no matching live clause.
  bool sync(const ProofLog& log, std::string& error);

  [[nodiscard]] bool active_at(const CClause& c, std::uint32_t t) const noexcept {
    return c.birth < t && c.death > t;
  }

  /// RUP-check clause `ci` against the clauses alive at its birth point,
  /// marking every clause in the derivation cone. False = not RUP.
  [[nodiscard]] bool rup_at(std::uint32_t ci);

  void mark_clause(std::uint32_t ci);
  void ensure_var(sat::Var v);
  [[nodiscard]] int lit_value(sat::Lit l) const noexcept {
    const std::int8_t v = value_[l.var()];
    if (v == 0) return 0;
    return (v > 0) != l.negated() ? 1 : -1;
  }
  bool assign(sat::Lit l, std::uint32_t reason);  ///< false = already false

  std::vector<CClause> db_;
  std::vector<std::vector<std::uint32_t>> occ_;  ///< by Lit::code
  std::vector<std::uint32_t> unit_clauses_;      ///< size-1 clauses, any time
  std::vector<std::uint32_t> empty_clauses_;     ///< size-0 clauses, any time
  std::size_t synced_events_ = 0;

  /// Live clauses per normalized-literal key, for deletion matching
  /// (DRAT deletes the most recently added matching clause).
  std::unordered_map<std::string, std::vector<std::uint32_t>> live_;

  // Propagation scratch (reset after every rup_at call).
  std::vector<std::int8_t> value_;  ///< by var: 0 undef, +1 true, -1 false
  std::vector<std::uint32_t> reason_;
  std::vector<sat::Lit> trail_;
  std::vector<std::uint8_t> seen_;  ///< cone-walk scratch, by var

  /// Worklist of marked-but-unverified derived clauses (processed in
  /// decreasing birth order by the backward pass).
  std::vector<std::uint32_t> pending_;

  std::uint64_t marked_inputs_ = 0;
  std::uint64_t marked_derived_ = 0;
};

}  // namespace bidec::proof

#endif  // BIDEC_PROOF_DRAT_CHECK_H
