// The daemon's cross-job component cache: a sharded, lock-striped
// implementation of bidec::SharedComponentSink shared by every worker of
// every job the server runs. Entries are keyed by the 64-bit signature
// hash; the full signature is stored and compared on lookup, so a hash
// collision reads as a miss rather than returning a wrong-interval
// component (the consumer would reject it anyway — collision checking here
// just avoids burning a validation BDD build on a known mismatch).
//
// Striping: hash -> shard (top bits), each shard its own mutex + map, so
// 8-64 concurrent workers rarely contend on the same lock. Eviction is
// per-shard FIFO at `max_entries_per_shard`; reject() (failed validation
// in a consumer — poisoned, torn, or stale entry) evicts immediately.
#ifndef BIDEC_SERVER_COMPONENT_CACHE_H
#define BIDEC_SERVER_COMPONENT_CACHE_H

#include <array>
#include <atomic>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "bidec/shared_cache.h"
#include "engine/thread_annotations.h"

namespace bidec {

struct ComponentCacheStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t publishes = 0;
  std::uint64_t replaced = 0;   ///< publish over an existing key
  std::uint64_t rejected = 0;   ///< evicted after failed consumer validation
  std::uint64_t evicted = 0;    ///< FIFO capacity evictions
  std::uint64_t collisions = 0; ///< hash matched, full signature did not
  std::size_t entries = 0;
};

class ServerComponentCache final : public SharedComponentSink {
 public:
  explicit ServerComponentCache(std::size_t max_entries_per_shard = 4096)
      : max_per_shard_(max_entries_per_shard == 0 ? 1 : max_entries_per_shard) {}

  std::optional<SharedComponent> lookup(const ComponentSignature& sig) override;
  void publish(const ComponentSignature& sig, const Netlist& impl) override;
  void reject(const ComponentSignature& sig) override;

  [[nodiscard]] ComponentCacheStats stats() const;
  [[nodiscard]] std::size_t size() const;
  void clear();

 private:
  static constexpr std::size_t kShards = 16;

  struct Entry {
    ComponentSignature sig;
    Netlist impl;
  };

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::uint64_t, Entry> map BIDEC_GUARDED_BY(mu);
    std::deque<std::uint64_t> fifo BIDEC_GUARDED_BY(mu);  ///< insertion order
  };

  [[nodiscard]] Shard& shard_for(std::uint64_t hash) noexcept {
    return shards_[(hash >> 60) & (kShards - 1)];
  }

  std::size_t max_per_shard_;
  std::array<Shard, kShards> shards_;
  // Counters are relaxed atomics: they feed the stats op, not decisions.
  mutable std::atomic<std::uint64_t> lookups_{0}, hits_{0}, publishes_{0},
      replaced_{0}, rejected_{0}, evicted_{0}, collisions_{0};
};

}  // namespace bidec

#endif  // BIDEC_SERVER_COMPONENT_CACHE_H
