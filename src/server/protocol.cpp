#include "server/protocol.h"

#include "io/blif.h"

namespace bidec {

std::optional<Request> parse_request(const std::string& line,
                                     std::uint64_t& id, std::string& error) {
  id = 0;
  const std::optional<JsonValue> doc = JsonValue::parse(line);
  if (!doc || !doc->is_object()) {
    error = "request is not a JSON object";
    return std::nullopt;
  }
  if (const auto got = doc->get_uint("id")) id = *got;

  const std::optional<std::string> op = doc->get_string("op");
  if (!op) {
    error = "missing \"op\"";
    return std::nullopt;
  }

  Request req;
  req.id = id;
  if (*op == "ping") {
    req.op = RequestOp::kPing;
    return req;
  }
  if (*op == "stats") {
    req.op = RequestOp::kStats;
    return req;
  }
  if (*op == "shutdown") {
    req.op = RequestOp::kShutdown;
    return req;
  }
  if (*op != "synth") {
    error = "unknown op \"" + *op + "\"";
    return std::nullopt;
  }

  req.op = RequestOp::kSynth;
  const std::optional<std::string> path = doc->get_string("path");
  const std::optional<std::string> pla = doc->get_string("pla");
  if (path.has_value() == pla.has_value()) {
    error = "synth needs exactly one of \"path\" or \"pla\"";
    return std::nullopt;
  }
  if (path) {
    req.spec.source = *path;
    req.spec.name = *path;
  } else {
    // Inline covers are parsed at admission time so a malformed spec is a
    // bad_request, not a burned worker slot.
    try {
      req.spec.source = PlaFile::parse_string(*pla);
    } catch (const std::exception& e) {
      error = std::string("inline PLA: ") + e.what();
      return std::nullopt;
    }
    req.spec.name = doc->get_string("name").value_or("inline");
  }
  if (const auto name = doc->get_string("name")) req.spec.name = *name;

  req.spec.verify = VerifyEngine::kBdd;
  if (const auto v = doc->get_string("verify")) {
    const std::optional<VerifyEngine> engine = parse_verify_engine(*v);
    if (!engine) {
      error = "verify must be none|bdd|sat|both";
      return std::nullopt;
    }
    req.spec.verify = *engine;
  }
  if (const auto v = doc->get_string("engine")) {
    const std::optional<EngineSelect> engine = parse_engine_select(*v);
    if (!engine) {
      error = "engine must be bdd|sat|auto";
      return std::nullopt;
    }
    req.spec.flow.engine = *engine;
  }
  if (const auto v = doc->get_string("proof")) {
    const std::optional<proof::ProofPolicy> policy = proof::parse_proof_policy(*v);
    if (!policy) {
      error = "proof must be off|log|check";
      return std::nullopt;
    }
    req.spec.flow.proof = *policy;
  }
  if (const auto v = doc->get_uint("timeout_ms")) {
    req.spec.timeout_ms = static_cast<std::uint32_t>(*v);
  }
  if (const auto v = doc->get_uint("step_budget")) req.spec.step_budget = *v;
  if (const auto v = doc->get_uint("node_budget")) {
    req.spec.node_budget = static_cast<std::size_t>(*v);
  }
  if (const auto v = doc->get_uint("max_retries")) {
    req.spec.max_retries = static_cast<unsigned>(*v);
  }
  if (const auto v = doc->get_bool("degrade")) req.spec.degrade = *v;
  if (const auto v = doc->get_bool("netlist")) req.want_netlist = *v;
  return req;
}

std::string error_response(std::uint64_t id, const std::string& status,
                           const std::string& message) {
  std::string out = "{\"id\": ";
  out += std::to_string(id);
  out += ", \"status\": \"";
  out += status;
  out += "\", \"error\": \"";
  out += json_escape(message);
  out += "\"}";
  return out;
}

std::string synth_response(const JobReport& report, const Netlist& netlist,
                           bool want_netlist) {
  std::string out = report.to_stable_json();
  if (want_netlist && (report.status == JobStatus::kOk ||
                       report.status == JobStatus::kDegraded)) {
    // The stable report is one JSON object; graft the BLIF text onto it.
    out.pop_back();  // trailing '}'
    out += ", \"blif\": \"";
    out += json_escape(write_blif(netlist, report.name));
    out += "\"}";
  }
  return out;
}

}  // namespace bidec
