// Synthesis-as-a-service: a long-lived daemon wrapping the job runner.
// Clients connect over loopback TCP and exchange newline-delimited JSON
// (see server/protocol.h). Three subsystems make the daemon more than a
// socket wrapper around run_synthesis_job:
//
//  * a warm ManagerPool shared by the worker threads — BddManagers survive
//    across jobs and across clients, with the pool's release hygiene
//    (GC, stats reset, recycle-after-N-jobs, optional audit) keeping a
//    twenty-thousandth job as clean as the first;
//  * a sharded cross-job component cache (server/component_cache.h) wired
//    into every decomposition through BidecOptions::shared_cache, so a
//    cone solved for one client is spliced, after validation, into the
//    next client's netlist;
//  * admission control — a bounded job queue with a reject-vs-block
//    policy, per-client in-flight caps, and drain-on-shutdown that
//    finishes accepted work before the listener goes away.
#ifndef BIDEC_SERVER_SERVER_H
#define BIDEC_SERVER_SERVER_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/manager_pool.h"
#include "engine/thread_annotations.h"
#include "server/component_cache.h"
#include "server/protocol.h"

namespace bidec {

/// What a full queue does to the next synth request.
enum class AdmissionPolicy {
  kReject,  ///< answer {"status":"rejected"} immediately
  kBlock,   ///< park the connection until a slot frees up
};

struct ServerOptions {
  /// Loopback TCP port (0 = let the kernel pick; see BidecServer::port()).
  std::uint16_t port = 0;
  /// Worker threads running jobs (0 = hardware concurrency).
  unsigned num_workers = 0;
  /// Bounded job-queue capacity; at most this many admitted-but-unstarted
  /// jobs exist at once.
  std::size_t queue_capacity = 64;
  AdmissionPolicy admission = AdmissionPolicy::kReject;
  /// Max jobs one connection may have admitted-or-running at once; the
  /// connection's further synth requests are rejected (never blocked —
  /// blocking here would deadlock a client pipelining over one socket)
  /// until its own jobs finish.
  std::size_t per_client_inflight = 8;
  /// Cross-job component cache on/off plus its per-shard capacity.
  bool shared_cache = true;
  std::size_t cache_entries_per_shard = 4096;
  /// Manager-pool hygiene knobs (see ManagerPoolOptions).
  unsigned recycle_after_jobs = 64;
  bool audit_managers = false;
  /// Default per-job limits applied to requests that set none.
  std::uint64_t default_step_budget = 0;
  std::uint32_t default_timeout_ms = 0;
  std::size_t default_node_budget = 0;
};

struct ServerStats {
  std::uint64_t accepted = 0;   ///< jobs admitted to the queue
  std::uint64_t completed = 0;  ///< jobs run to a report
  std::uint64_t rejected_queue = 0;   ///< admission rejections, full queue
  std::uint64_t rejected_client = 0;  ///< admission rejections, client cap
  std::uint64_t bad_requests = 0;
  std::uint64_t connections = 0;
};

class BidecServer {
 public:
  explicit BidecServer(ServerOptions options = {});
  ~BidecServer();

  BidecServer(const BidecServer&) = delete;
  BidecServer& operator=(const BidecServer&) = delete;

  /// Bind, listen, and spin up the acceptor and worker threads. Throws
  /// std::runtime_error if the socket cannot be bound.
  void start();

  /// Stop accepting, drain admitted jobs, answer them, join every thread.
  /// Idempotent; also triggered by a client "shutdown" op and by SIGTERM
  /// in the daemon binary (which calls request_stop from the handler).
  void stop();

  /// Async-signal-safe shutdown trigger: flips the stop flag; the acceptor
  /// notices within its poll interval and runs the same drain as stop().
  void request_stop() noexcept { stopping_.store(true, std::memory_order_release); }

  /// Block until stop() has finished (the daemon's main thread parks here).
  void wait();

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] ServerStats stats() const;
  [[nodiscard]] ComponentCacheStats cache_stats() const { return cache_.stats(); }
  [[nodiscard]] ManagerPoolStats pool_stats() const { return pool_.stats(); }

 private:
  struct Connection;

  /// One admitted job: the request plus where to send the answer.
  struct QueuedJob {
    Request req;
    std::shared_ptr<Connection> conn;
  };

  void acceptor_loop();
  void connection_loop(const std::shared_ptr<Connection>& conn);
  void worker_loop(unsigned worker_id);
  void handle_line(const std::shared_ptr<Connection>& conn, const std::string& line);
  [[nodiscard]] std::string stats_json(std::uint64_t id) const;
  void drain_and_join();

  ServerOptions options_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;

  std::atomic<bool> stopping_{false};
  std::atomic<bool> started_{false};
  std::atomic<bool> joined_{false};

  // Bounded job queue (admission control lives at the push side).
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;       ///< workers wait: queue non-empty/stop
  std::condition_variable admission_cv_;   ///< kBlock producers wait: queue has room
  std::deque<QueuedJob> queue_ BIDEC_GUARDED_BY(queue_mu_);

  ManagerPool pool_;
  ServerComponentCache cache_;

  std::thread acceptor_;
  std::vector<std::thread> workers_;
  std::mutex conn_mu_;
  std::vector<std::thread> conn_threads_ BIDEC_GUARDED_BY(conn_mu_);
  std::vector<std::weak_ptr<Connection>> conns_ BIDEC_GUARDED_BY(conn_mu_);

  mutable std::mutex stats_mu_;
  ServerStats stats_ BIDEC_GUARDED_BY(stats_mu_);

  std::mutex stopped_mu_;
  std::condition_variable stopped_cv_;
  bool stopped_ BIDEC_GUARDED_BY(stopped_mu_) = false;
};

}  // namespace bidec

#endif  // BIDEC_SERVER_SERVER_H
