// Minimal JSON reader for the server's wire protocol. The repo emits JSON
// by hand (report.cpp) but never had to *read* any until the daemon: one
// request per line, parsed into a small DOM. Full JSON grammar (objects,
// arrays, strings with escapes, numbers, booleans, null); numbers are kept
// as both double and integer views since job ids and budgets are integral.
#ifndef BIDEC_SERVER_JSON_H
#define BIDEC_SERVER_JSON_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace bidec {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_object() const noexcept { return kind_ == Kind::kObject; }

  [[nodiscard]] bool as_bool() const { return bool_; }
  [[nodiscard]] double as_number() const { return num_; }
  [[nodiscard]] const std::string& as_string() const { return str_; }
  [[nodiscard]] const std::vector<JsonValue>& as_array() const { return arr_; }

  /// Object member by key; nullptr if absent or not an object.
  [[nodiscard]] const JsonValue* get(std::string_view key) const;

  // Typed member lookups with defaults — the shape every protocol field
  // check takes. A present member of the wrong type reads as absent.
  [[nodiscard]] std::optional<std::string> get_string(std::string_view key) const;
  [[nodiscard]] std::optional<std::uint64_t> get_uint(std::string_view key) const;
  [[nodiscard]] std::optional<bool> get_bool(std::string_view key) const;

  /// Parse one JSON document (must consume the whole input up to trailing
  /// whitespace). nullopt on any syntax error.
  [[nodiscard]] static std::optional<JsonValue> parse(std::string_view text);

 private:
  friend class JsonParser;
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<JsonValue> arr_;
  std::vector<std::pair<std::string, JsonValue>> obj_;
};

/// Escape a string for embedding in emitted JSON (quotes not included).
[[nodiscard]] std::string json_escape(std::string_view s);

}  // namespace bidec

#endif  // BIDEC_SERVER_JSON_H
