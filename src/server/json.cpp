#include "server/json.h"

#include <cctype>
#include <cmath>
#include <cstdlib>

namespace bidec {

namespace {

bool is_ws(char c) noexcept {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

}  // namespace

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> run() {
    skip_ws();
    JsonValue v;
    if (!parse_value(v, /*depth=*/0)) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  void skip_ws() {
    while (pos_ < text_.size() && is_ws(text_[pos_])) ++pos_;
  }

  [[nodiscard]] bool eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  [[nodiscard]] bool eat_word(std::string_view w) {
    if (text_.substr(pos_, w.size()) != w) return false;
    pos_ += w.size();
    return true;
  }

  bool parse_value(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return false;
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return parse_object(out, depth);
      case '[': return parse_array(out, depth);
      case '"':
        out.kind_ = JsonValue::Kind::kString;
        return parse_string(out.str_);
      case 't':
        out.kind_ = JsonValue::Kind::kBool;
        out.bool_ = true;
        return eat_word("true");
      case 'f':
        out.kind_ = JsonValue::Kind::kBool;
        out.bool_ = false;
        return eat_word("false");
      case 'n':
        out.kind_ = JsonValue::Kind::kNull;
        return eat_word("null");
      default:
        return parse_number(out);
    }
  }

  bool parse_object(JsonValue& out, int depth) {
    out.kind_ = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (eat('}')) return true;
    for (;;) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!eat(':')) return false;
      skip_ws();
      JsonValue v;
      if (!parse_value(v, depth + 1)) return false;
      out.obj_.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (eat('}')) return true;
      if (!eat(',')) return false;
    }
  }

  bool parse_array(JsonValue& out, int depth) {
    out.kind_ = JsonValue::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (eat(']')) return true;
    for (;;) {
      skip_ws();
      JsonValue v;
      if (!parse_value(v, depth + 1)) return false;
      out.arr_.push_back(std::move(v));
      skip_ws();
      if (eat(']')) return true;
      if (!eat(',')) return false;
    }
  }

  bool parse_string(std::string& out) {
    if (!eat('"')) return false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return false;
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            if (pos_ >= text_.size()) return false;
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else return false;
          }
          // UTF-8 encode the BMP code point; surrogate pairs are passed
          // through as two 3-byte sequences (the protocol is ASCII anyway).
          if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default: return false;
      }
    }
    return false;  // unterminated
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return false;
    out.kind_ = JsonValue::Kind::kNumber;
    out.num_ = d;
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

const JsonValue* JsonValue::get(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::optional<std::string> JsonValue::get_string(std::string_view key) const {
  const JsonValue* v = get(key);
  if (v == nullptr || v->kind_ != Kind::kString) return std::nullopt;
  return v->str_;
}

std::optional<std::uint64_t> JsonValue::get_uint(std::string_view key) const {
  const JsonValue* v = get(key);
  if (v == nullptr || v->kind_ != Kind::kNumber) return std::nullopt;
  if (v->num_ < 0.0 || v->num_ != std::floor(v->num_)) return std::nullopt;
  return static_cast<std::uint64_t>(v->num_);
}

std::optional<bool> JsonValue::get_bool(std::string_view key) const {
  const JsonValue* v = get(key);
  if (v == nullptr || v->kind_ != Kind::kBool) return std::nullopt;
  return v->bool_;
}

std::optional<JsonValue> JsonValue::parse(std::string_view text) {
  return JsonParser(text).run();
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr const char* hex = "0123456789abcdef";
          out += "\\u00";
          out.push_back(hex[(c >> 4) & 0xF]);
          out.push_back(hex[c & 0xF]);
        } else {
          out.push_back(c);
        }
        break;
    }
  }
  return out;
}

}  // namespace bidec
