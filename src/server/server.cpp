#include "server/server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>

#include "engine/job_runner.h"

namespace bidec {

namespace {

/// How often blocking loops re-check the stop flag.
constexpr int kPollMs = 100;
/// A request line longer than this kills the connection (inline PLA text
/// for the widest supported specs fits comfortably).
constexpr std::size_t kMaxLineBytes = 16u << 20;

}  // namespace

// One client socket. Workers answer through it concurrently with the
// reader admitting new lines, so writes are serialized by write_mu and the
// in-flight counter is atomic.
struct BidecServer::Connection {
  int fd = -1;
  std::mutex write_mu;
  std::atomic<std::size_t> inflight{0};
  std::atomic<bool> closed{false};

  ~Connection() {
    if (fd >= 0) ::close(fd);
  }

  void send_line(const std::string& line) {
    const std::lock_guard<std::mutex> lock(write_mu);
    if (closed.load(std::memory_order_acquire)) return;
    std::string framed = line;
    framed.push_back('\n');
    std::size_t off = 0;
    while (off < framed.size()) {
      const ssize_t n =
          ::send(fd, framed.data() + off, framed.size() - off, MSG_NOSIGNAL);
      if (n <= 0) {
        if (n < 0 && (errno == EINTR)) continue;
        closed.store(true, std::memory_order_release);
        return;
      }
      off += static_cast<std::size_t>(n);
    }
  }
};

BidecServer::BidecServer(ServerOptions options)
    : options_(std::move(options)),
      pool_(ManagerPoolOptions{/*max_idle_per_width=*/8,
                               options_.recycle_after_jobs,
                               options_.audit_managers}),
      cache_(options_.cache_entries_per_shard) {
  if (options_.queue_capacity == 0) options_.queue_capacity = 1;
  if (options_.per_client_inflight == 0) options_.per_client_inflight = 1;
}

BidecServer::~BidecServer() { stop(); }

void BidecServer::start() {
  if (started_.exchange(true)) {
    throw std::logic_error("BidecServer::start called twice");
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("bind() failed on port " +
                             std::to_string(options_.port));
  }
  if (::listen(listen_fd_, 128) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("listen() failed");
  }
  socklen_t len = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  unsigned workers = options_.num_workers;
  if (workers == 0) {
    workers = std::thread::hardware_concurrency();
    if (workers == 0) workers = 1;
  }
  workers_.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
  acceptor_ = std::thread([this] { acceptor_loop(); });
}

void BidecServer::acceptor_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int r = ::poll(&pfd, 1, kPollMs);
    if (r <= 0) continue;  // timeout or EINTR: re-check the stop flag
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    {
      const std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.connections;
    }
    const std::lock_guard<std::mutex> lock(conn_mu_);
    conns_.push_back(conn);
    conn_threads_.emplace_back([this, conn] { connection_loop(conn); });
  }
}

void BidecServer::connection_loop(const std::shared_ptr<Connection>& conn) {
  std::string buf;
  char chunk[4096];
  while (!stopping_.load(std::memory_order_acquire) &&
         !conn->closed.load(std::memory_order_acquire)) {
    pollfd pfd{conn->fd, POLLIN, 0};
    const int r = ::poll(&pfd, 1, kPollMs);
    if (r <= 0) continue;
    const ssize_t n = ::recv(conn->fd, chunk, sizeof chunk, 0);
    if (n == 0) break;  // peer closed
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    buf.append(chunk, static_cast<std::size_t>(n));
    if (buf.size() > kMaxLineBytes) {
      conn->send_line(error_response(0, "bad_request", "request line too long"));
      break;
    }
    std::size_t start = 0;
    for (;;) {
      const std::size_t nl = buf.find('\n', start);
      if (nl == std::string::npos) break;
      std::string line = buf.substr(start, nl - start);
      start = nl + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (!line.empty()) handle_line(conn, line);
    }
    buf.erase(0, start);
  }
  // Drain: answered-but-running jobs still hold this connection; keep the
  // socket alive until the workers have responded to all of them.
  while (conn->inflight.load(std::memory_order_acquire) != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  conn->closed.store(true, std::memory_order_release);
}

void BidecServer::handle_line(const std::shared_ptr<Connection>& conn,
                              const std::string& line) {
  std::uint64_t id = 0;
  std::string error;
  std::optional<Request> req = parse_request(line, id, error);
  if (!req) {
    {
      const std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.bad_requests;
    }
    conn->send_line(error_response(id, "bad_request", error));
    return;
  }

  switch (req->op) {
    case RequestOp::kPing:
      conn->send_line("{\"id\": " + std::to_string(req->id) +
                      ", \"status\": \"ok\", \"op\": \"ping\"}");
      return;
    case RequestOp::kStats:
      conn->send_line(stats_json(req->id));
      return;
    case RequestOp::kShutdown:
      conn->send_line("{\"id\": " + std::to_string(req->id) +
                      ", \"status\": \"ok\", \"op\": \"shutdown\"}");
      request_stop();
      return;
    case RequestOp::kSynth:
      break;
  }

  // Admission control. Per-client cap first: one pipelining client must
  // not monopolize the queue, and blocking it would deadlock its own
  // responses, so the cap always rejects.
  if (conn->inflight.load(std::memory_order_acquire) >=
      options_.per_client_inflight) {
    {
      const std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.rejected_client;
    }
    conn->send_line(error_response(
        req->id, "rejected",
        "per-client in-flight cap (" +
            std::to_string(options_.per_client_inflight) + ") reached"));
    return;
  }

  {
    std::unique_lock<std::mutex> lock(queue_mu_);
    if (queue_.size() >= options_.queue_capacity) {
      if (options_.admission == AdmissionPolicy::kBlock) {
        // Explicit wait loop (not the predicate overload): the thread-safety
        // analysis can follow guarded accesses here but not inside a lambda.
        while (queue_.size() >= options_.queue_capacity &&
               !stopping_.load(std::memory_order_acquire)) {
          admission_cv_.wait(lock);
        }
      }
      if (queue_.size() >= options_.queue_capacity ||
          stopping_.load(std::memory_order_acquire)) {
        lock.unlock();
        {
          const std::lock_guard<std::mutex> slock(stats_mu_);
          ++stats_.rejected_queue;
        }
        conn->send_line(error_response(
            req->id, "rejected",
            stopping_.load(std::memory_order_acquire)
                ? "server is shutting down"
                : "job queue full (capacity " +
                      std::to_string(options_.queue_capacity) + ")"));
        return;
      }
    }
    conn->inflight.fetch_add(1, std::memory_order_acq_rel);
    queue_.push_back(QueuedJob{std::move(*req), conn});
  }
  {
    const std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.accepted;
  }
  queue_cv_.notify_one();
}

void BidecServer::worker_loop(unsigned worker_id) {
  // The warm substrate: this source keeps its manager lease across jobs,
  // and the lease's destructor routes the manager through release hygiene
  // back into the shared pool when the server stops.
  PooledManagerSource source(pool_);

  for (;;) {
    QueuedJob job;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      while (queue_.empty() && !stopping_.load(std::memory_order_acquire)) {
        queue_cv_.wait(lock);
      }
      if (queue_.empty()) {
        // stopping_ and nothing left: the queue is drained, exit.
        if (stopping_.load(std::memory_order_acquire)) return;
        continue;
      }
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    admission_cv_.notify_one();  // a queue slot freed up

    JobSpec& spec = job.req.spec;
    if (spec.step_budget == 0) spec.step_budget = options_.default_step_budget;
    if (spec.timeout_ms == 0) spec.timeout_ms = options_.default_timeout_ms;
    if (spec.node_budget == 0) spec.node_budget = options_.default_node_budget;
    spec.flow.bidec.shared_cache = options_.shared_cache ? &cache_ : nullptr;

    std::string response;
    try {
      // The client's request id doubles as the job id, so the stable JSON
      // response depends only on the request — not on worker count,
      // arrival order, or which jobs shared a warm manager.
      const JobResult result =
          run_synthesis_job(spec, job.req.id, worker_id, source, FaultPlan{},
                            /*allow_worker_death=*/false,
                            /*fresh_managers=*/false);
      response =
          synth_response(result.report, result.netlist, job.req.want_netlist);
    } catch (const std::exception& e) {
      response = error_response(job.req.id, "error", e.what());
    } catch (...) {
      response = error_response(job.req.id, "error", "unidentified exception");
    }
    job.conn->send_line(response);
    job.conn->inflight.fetch_sub(1, std::memory_order_acq_rel);
    {
      const std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.completed;
    }
  }
}

std::string BidecServer::stats_json(std::uint64_t id) const {
  const ServerStats s = stats();
  const ComponentCacheStats c = cache_.stats();
  const ManagerPoolStats p = pool_.stats();
  std::string out = "{\"id\": " + std::to_string(id) + ", \"status\": \"ok\"";
  out += ", \"jobs\": {\"accepted\": " + std::to_string(s.accepted) +
         ", \"completed\": " + std::to_string(s.completed) +
         ", \"rejected_queue\": " + std::to_string(s.rejected_queue) +
         ", \"rejected_client\": " + std::to_string(s.rejected_client) +
         ", \"bad_requests\": " + std::to_string(s.bad_requests) +
         ", \"connections\": " + std::to_string(s.connections) + "}";
  out += ", \"cache\": {\"lookups\": " + std::to_string(c.lookups) +
         ", \"hits\": " + std::to_string(c.hits) +
         ", \"publishes\": " + std::to_string(c.publishes) +
         ", \"replaced\": " + std::to_string(c.replaced) +
         ", \"rejected\": " + std::to_string(c.rejected) +
         ", \"evicted\": " + std::to_string(c.evicted) +
         ", \"collisions\": " + std::to_string(c.collisions) +
         ", \"entries\": " + std::to_string(c.entries) + "}";
  out += ", \"pool\": {\"leases\": " + std::to_string(p.leases) +
         ", \"warm\": " + std::to_string(p.warm) +
         ", \"cold\": " + std::to_string(p.cold) +
         ", \"recycled\": " + std::to_string(p.recycled) +
         ", \"audit_discards\": " + std::to_string(p.audit_discards) +
         ", \"dirty_discards\": " + std::to_string(p.dirty_discards) + "}";
  out += "}";
  return out;
}

ServerStats BidecServer::stats() const {
  const std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

void BidecServer::stop() {
  if (!started_.load(std::memory_order_acquire)) return;
  stopping_.store(true, std::memory_order_release);
  if (joined_.exchange(true)) {
    wait();
    return;
  }
  drain_and_join();
  {
    const std::lock_guard<std::mutex> lock(stopped_mu_);
    stopped_ = true;
  }
  stopped_cv_.notify_all();
}

void BidecServer::drain_and_join() {
  // Wake everyone parked on the queue: workers drain what was admitted
  // (the drain contract — every accepted job gets its response), blocked
  // producers wake up and reject.
  queue_cv_.notify_all();
  admission_cv_.notify_all();

  if (acceptor_.joinable()) acceptor_.join();
  // No new connections past this point; existing connection loops exit on
  // the stop flag once their in-flight jobs are answered.
  for (std::thread& t : workers_) {
    queue_cv_.notify_all();
    if (t.joinable()) t.join();
  }
  std::vector<std::thread> conn_threads;
  {
    const std::lock_guard<std::mutex> lock(conn_mu_);
    conn_threads.swap(conn_threads_);
  }
  for (std::thread& t : conn_threads) {
    if (t.joinable()) t.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void BidecServer::wait() {
  // Daemon main parks here; request_stop (signal handler, shutdown op)
  // flips the flag, and the poll below runs the full drain exactly once.
  while (!stopping_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(kPollMs));
  }
  if (!joined_.exchange(true)) {
    drain_and_join();
    {
      const std::lock_guard<std::mutex> lock(stopped_mu_);
      stopped_ = true;
    }
    stopped_cv_.notify_all();
    return;
  }
  std::unique_lock<std::mutex> lock(stopped_mu_);
  while (!stopped_) stopped_cv_.wait(lock);
}

}  // namespace bidec
