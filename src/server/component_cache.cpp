#include "server/component_cache.h"

namespace bidec {

std::optional<SharedComponent> ServerComponentCache::lookup(
    const ComponentSignature& sig) {
  lookups_.fetch_add(1, std::memory_order_relaxed);
  Shard& s = shard_for(sig.hash);
  const std::lock_guard<std::mutex> lock(s.mu);
  const auto it = s.map.find(sig.hash);
  if (it == s.map.end()) return std::nullopt;
  if (!it->second.sig.same_interval(sig)) {
    collisions_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return SharedComponent{it->second.impl};  // copy out under the lock
}

void ServerComponentCache::publish(const ComponentSignature& sig,
                                   const Netlist& impl) {
  publishes_.fetch_add(1, std::memory_order_relaxed);
  Shard& s = shard_for(sig.hash);
  const std::lock_guard<std::mutex> lock(s.mu);
  const auto it = s.map.find(sig.hash);
  if (it != s.map.end()) {
    // Last writer wins. Concurrent jobs publish the same canonical
    // component for equal intervals, so overwriting is idempotent in the
    // common case and self-healing after a reject() raced a republish.
    replaced_.fetch_add(1, std::memory_order_relaxed);
    it->second = Entry{sig, impl};
    return;
  }
  while (s.map.size() >= max_per_shard_ && !s.fifo.empty()) {
    const std::uint64_t victim = s.fifo.front();
    s.fifo.pop_front();
    // Skip fifo ids a reject() already erased.
    if (s.map.erase(victim) != 0) {
      evicted_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  s.map.emplace(sig.hash, Entry{sig, impl});
  s.fifo.push_back(sig.hash);
}

void ServerComponentCache::reject(const ComponentSignature& sig) {
  Shard& s = shard_for(sig.hash);
  const std::lock_guard<std::mutex> lock(s.mu);
  if (s.map.erase(sig.hash) != 0) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
  }
  // The stale fifo entry is harmless: eviction skips ids no longer mapped.
}

ComponentCacheStats ServerComponentCache::stats() const {
  ComponentCacheStats out;
  out.lookups = lookups_.load(std::memory_order_relaxed);
  out.hits = hits_.load(std::memory_order_relaxed);
  out.publishes = publishes_.load(std::memory_order_relaxed);
  out.replaced = replaced_.load(std::memory_order_relaxed);
  out.rejected = rejected_.load(std::memory_order_relaxed);
  out.evicted = evicted_.load(std::memory_order_relaxed);
  out.collisions = collisions_.load(std::memory_order_relaxed);
  out.entries = size();
  return out;
}

std::size_t ServerComponentCache::size() const {
  std::size_t n = 0;
  for (const Shard& s : shards_) {
    const std::lock_guard<std::mutex> lock(s.mu);
    n += s.map.size();
  }
  return n;
}

void ServerComponentCache::clear() {
  for (Shard& s : shards_) {
    const std::lock_guard<std::mutex> lock(s.mu);
    s.map.clear();
    s.fifo.clear();
  }
}

}  // namespace bidec
