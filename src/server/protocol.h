// Wire protocol of the synthesis daemon: newline-delimited JSON over a
// loopback TCP socket. One request object per line, one response object
// per line, matched by the client-chosen numeric "id" (responses may
// arrive out of request order when a client pipelines).
//
// Requests:
//   {"op":"synth","id":N, "path":"file.pla" | "pla":"<inline PLA text>",
//    ["verify":"none|bdd|sat|both"] ["timeout_ms":T] ["step_budget":S]
//    ["node_budget":B] ["max_retries":R] ["degrade":true]
//    ["netlist":true]}
//   {"op":"ping","id":N}
//   {"op":"stats","id":N}
//   {"op":"shutdown","id":N}
//
// Synth responses wrap JobReport::to_stable_json — the same
// scheduling-independent serialization the batch engine pins in its golden
// corpus, with job_id equal to the request id, so responses are
// byte-identical regardless of worker count or which jobs shared a warm
// manager. Admission rejections and parse errors answer
//   {"id":N,"status":"rejected|bad_request","error":"..."}.
#ifndef BIDEC_SERVER_PROTOCOL_H
#define BIDEC_SERVER_PROTOCOL_H

#include <cstdint>
#include <optional>
#include <string>

#include "engine/job.h"
#include "server/json.h"

namespace bidec {

enum class RequestOp { kSynth, kPing, kStats, kShutdown };

struct Request {
  RequestOp op = RequestOp::kPing;
  std::uint64_t id = 0;
  JobSpec spec;            ///< populated for kSynth
  bool want_netlist = false;  ///< attach the synthesized netlist as BLIF text
};

/// Parse one request line. On failure returns nullopt and sets `error`
/// (and `id` when the line carried a readable one, so the error response
/// can still be matched).
[[nodiscard]] std::optional<Request> parse_request(const std::string& line,
                                                   std::uint64_t& id,
                                                   std::string& error);

/// {"id":N,"status":"<status>","error":"<escaped msg>"}
[[nodiscard]] std::string error_response(std::uint64_t id,
                                         const std::string& status,
                                         const std::string& message);

/// The synth response: the stable job report, with the client's request id
/// substituted for the engine job id, plus optionally the netlist as BLIF.
[[nodiscard]] std::string synth_response(const JobReport& report,
                                         const Netlist& netlist,
                                         bool want_netlist);

}  // namespace bidec

#endif  // BIDEC_SERVER_PROTOCOL_H
