// A combinational netlist of two-input gates over named primary inputs and
// outputs. Nodes are created in topological order and structurally hashed:
// constant folding and idempotence rules run at construction, and an
// identical (type, fanins) gate is never created twice (paper Section 6
// relies on this on top of the functional reuse cache).
#ifndef BIDEC_NETLIST_NETLIST_H
#define BIDEC_NETLIST_NETLIST_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "netlist/gate.h"

namespace bidec {

using SignalId = std::uint32_t;
inline constexpr SignalId kNoSignal = 0xffffffffu;

/// Aggregate quality metrics of a netlist (computed over the cone reachable
/// from the primary outputs). Matches the columns of the paper's Table 2.
struct NetlistStats {
  std::size_t gates = 0;        ///< two-input gates plus inverters
  std::size_t two_input = 0;    ///< two-input gates only
  std::size_t exors = 0;        ///< XOR/XNOR gates
  std::size_t inverters = 0;
  unsigned cascades = 0;        ///< logic levels (two-input gate depth)
  double area = 0.0;
  double delay = 0.0;
};

class Netlist {
 public:
  struct Node {
    GateType type = GateType::kConst0;
    SignalId fanin0 = kNoSignal;
    SignalId fanin1 = kNoSignal;
  };

  Netlist() = default;

  // --- construction -------------------------------------------------------
  SignalId add_input(std::string name);
  [[nodiscard]] SignalId get_const(bool value);
  /// Create (or reuse) a gate; applies constant folding and local rewrite
  /// rules, so the returned signal may be an existing node or even a fanin.
  /// Negated types (NAND/NOR/XNOR) are canonicalized into base gate plus
  /// inverter so the structural hashing shares maximally; the inverter
  /// absorption pass re-merges them at the end.
  SignalId add_gate(GateType type, SignalId a, SignalId b = kNoSignal);
  /// Like add_gate but keeps the requested (possibly negated) type as one
  /// native node when no folding applies. Used by the technology mapper and
  /// the inverter-absorption pass, where the gate type must match a library
  /// cell exactly.
  SignalId add_gate_native(GateType type, SignalId a, SignalId b = kNoSignal);
  SignalId add_not(SignalId a) { return add_gate(GateType::kNot, a); }
  SignalId add_and(SignalId a, SignalId b) { return add_gate(GateType::kAnd, a, b); }
  SignalId add_or(SignalId a, SignalId b) { return add_gate(GateType::kOr, a, b); }
  SignalId add_xor(SignalId a, SignalId b) { return add_gate(GateType::kXor, a, b); }
  void add_output(std::string name, SignalId signal);

  // --- structure ----------------------------------------------------------
  [[nodiscard]] std::size_t num_nodes() const noexcept { return nodes_.size(); }
  [[nodiscard]] const Node& node(SignalId id) const { return nodes_[id]; }
  [[nodiscard]] std::size_t num_inputs() const noexcept { return inputs_.size(); }
  [[nodiscard]] std::size_t num_outputs() const noexcept { return outputs_.size(); }
  [[nodiscard]] const std::vector<SignalId>& inputs() const noexcept { return inputs_; }
  [[nodiscard]] SignalId output_signal(std::size_t i) const { return outputs_[i].second; }
  [[nodiscard]] const std::string& output_name(std::size_t i) const { return outputs_[i].first; }
  [[nodiscard]] const std::string& input_name(std::size_t i) const;
  /// Index of the primary input a node id refers to; kNoSignal if not a PI.
  [[nodiscard]] std::size_t input_index(SignalId id) const;

  /// Nodes reachable from the outputs, in topological order (inputs first).
  [[nodiscard]] std::vector<SignalId> reachable_topo_order() const;

  // --- metrics -----------------------------------------------------------
  [[nodiscard]] NetlistStats stats() const;

  // --- simulation --------------------------------------------------------
  /// 64-way parallel simulation: `in_words[i]` holds 64 stacked values of
  /// input i; returns one word per output.
  [[nodiscard]] std::vector<std::uint64_t> simulate64(
      const std::vector<std::uint64_t>& in_words) const;
  /// Single-pattern evaluation.
  [[nodiscard]] std::vector<bool> evaluate(const std::vector<bool>& inputs) const;

  /// Merge inverters into their single two-input fanin gate where possible
  /// (AND+NOT -> NAND etc.), reducing area per the cost table. Keeps
  /// functionality; returns the number of merges performed.
  std::size_t absorb_inverters();

  /// Graphviz rendering of the reachable cone (inputs as boxes, gates
  /// labelled with their type, outputs as double circles).
  [[nodiscard]] std::string to_dot() const;

 private:
  SignalId add_gate_impl(GateType type, SignalId a, SignalId b, bool native);
  [[nodiscard]] SignalId strash_lookup(GateType type, SignalId a, SignalId b) const;
  void strash_insert(GateType type, SignalId a, SignalId b, SignalId id);
  SignalId create_node(GateType type, SignalId a, SignalId b);

  std::vector<Node> nodes_;
  std::vector<SignalId> inputs_;
  std::vector<std::string> input_names_;
  std::vector<std::pair<std::string, SignalId>> outputs_;
  std::unordered_map<std::uint64_t, std::vector<SignalId>> strash_;
  SignalId const0_ = kNoSignal;
  SignalId const1_ = kNoSignal;
};

}  // namespace bidec

#endif  // BIDEC_NETLIST_NETLIST_H
