// Gate vocabulary of the two-input-gate netlists the decomposition emits,
// plus the area/delay cost table used throughout the paper's experiments
// (Section 8: "the ratio of area and delay of EXOR and NOR is assumed to be
// 5/2 and 2.1/1.0 respectively").
#ifndef BIDEC_NETLIST_GATE_H
#define BIDEC_NETLIST_GATE_H

#include <cstdint>
#include <string_view>

namespace bidec {

enum class GateType : std::uint8_t {
  kInput,   ///< primary input (no fanin)
  kConst0,  ///< constant 0
  kConst1,  ///< constant 1
  kBuf,     ///< single-fanin buffer (used only transiently)
  kNot,     ///< inverter
  kAnd,
  kOr,
  kXor,
  kNand,
  kNor,
  kXnor,
};

[[nodiscard]] constexpr bool is_two_input(GateType t) noexcept {
  return t >= GateType::kAnd;
}

[[nodiscard]] constexpr bool is_exor_type(GateType t) noexcept {
  return t == GateType::kXor || t == GateType::kXnor;
}

[[nodiscard]] constexpr bool is_commutative(GateType t) noexcept { return is_two_input(t); }

[[nodiscard]] constexpr unsigned gate_arity(GateType t) noexcept {
  switch (t) {
    case GateType::kInput:
    case GateType::kConst0:
    case GateType::kConst1:
      return 0;
    case GateType::kBuf:
    case GateType::kNot:
      return 1;
    default:
      return 2;
  }
}

/// Bitwise evaluation over 64 parallel patterns.
[[nodiscard]] constexpr std::uint64_t gate_eval64(GateType t, std::uint64_t a,
                                                  std::uint64_t b) noexcept {
  switch (t) {
    case GateType::kConst0: return 0;
    case GateType::kConst1: return ~std::uint64_t{0};
    case GateType::kInput:  return a;  // value supplied externally
    case GateType::kBuf:    return a;
    case GateType::kNot:    return ~a;
    case GateType::kAnd:    return a & b;
    case GateType::kOr:     return a | b;
    case GateType::kXor:    return a ^ b;
    case GateType::kNand:   return ~(a & b);
    case GateType::kNor:    return ~(a | b);
    case GateType::kXnor:   return ~(a ^ b);
  }
  return 0;
}

/// Area units (paper Section 8 ratios; see DESIGN.md Section 5).
[[nodiscard]] constexpr double gate_area(GateType t) noexcept {
  switch (t) {
    case GateType::kInput:
    case GateType::kConst0:
    case GateType::kConst1:
      return 0.0;
    case GateType::kBuf:
    case GateType::kNot:
      return 1.0;
    case GateType::kNand:
    case GateType::kNor:
      return 2.0;
    case GateType::kAnd:
    case GateType::kOr:
      return 3.0;
    case GateType::kXor:
    case GateType::kXnor:
      return 5.0;
  }
  return 0.0;
}

/// Delay units (NOR2 = 1.0, EXOR = 2.1 per the paper).
[[nodiscard]] constexpr double gate_delay(GateType t) noexcept {
  switch (t) {
    case GateType::kInput:
    case GateType::kConst0:
    case GateType::kConst1:
      return 0.0;
    case GateType::kBuf:
    case GateType::kNot:
      return 0.5;
    case GateType::kNand:
    case GateType::kNor:
      return 1.0;
    case GateType::kAnd:
    case GateType::kOr:
      return 1.2;
    case GateType::kXor:
    case GateType::kXnor:
      return 2.1;
  }
  return 0.0;
}

[[nodiscard]] constexpr std::string_view gate_name(GateType t) noexcept {
  switch (t) {
    case GateType::kInput:  return "input";
    case GateType::kConst0: return "const0";
    case GateType::kConst1: return "const1";
    case GateType::kBuf:    return "buf";
    case GateType::kNot:    return "not";
    case GateType::kAnd:    return "and";
    case GateType::kOr:     return "or";
    case GateType::kXor:    return "xor";
    case GateType::kNand:   return "nand";
    case GateType::kNor:    return "nor";
    case GateType::kXnor:   return "xnor";
  }
  return "?";
}

}  // namespace bidec

#endif  // BIDEC_NETLIST_GATE_H
