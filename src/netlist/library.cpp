#include "netlist/library.h"

#include <limits>
#include <map>
#include <sstream>
#include <stdexcept>

namespace bidec {

namespace {

const std::map<std::string, GateType>& func_names() {
  static const std::map<std::string, GateType> names = {
      {"const0", GateType::kConst0}, {"const1", GateType::kConst1},
      {"buf", GateType::kBuf},       {"inv", GateType::kNot},
      {"and2", GateType::kAnd},      {"or2", GateType::kOr},
      {"xor2", GateType::kXor},      {"nand2", GateType::kNand},
      {"nor2", GateType::kNor},      {"xnor2", GateType::kXnor},
  };
  return names;
}

}  // namespace

CellLibrary CellLibrary::paper_default() {
  CellLibrary lib;
  lib.add_cell({"inv", GateType::kNot, 1.0, 0.5});
  lib.add_cell({"nand2", GateType::kNand, 2.0, 1.0});
  lib.add_cell({"nor2", GateType::kNor, 2.0, 1.0});
  lib.add_cell({"and2", GateType::kAnd, 3.0, 1.2});
  lib.add_cell({"or2", GateType::kOr, 3.0, 1.2});
  lib.add_cell({"xor2", GateType::kXor, 5.0, 2.1});
  lib.add_cell({"xnor2", GateType::kXnor, 5.0, 2.1});
  return lib;
}

CellLibrary CellLibrary::nand_inv() {
  CellLibrary lib;
  lib.add_cell({"inv", GateType::kNot, 1.0, 0.5});
  lib.add_cell({"nand2", GateType::kNand, 2.0, 1.0});
  return lib;
}

CellLibrary CellLibrary::parse(std::istream& in) {
  CellLibrary lib;
  std::string line;
  while (std::getline(in, line)) {
    if (const auto pos = line.find('#'); pos != std::string::npos) line.erase(pos);
    std::istringstream ss(line);
    std::string keyword;
    if (!(ss >> keyword)) continue;
    if (keyword != "GATE") throw std::runtime_error("library: expected GATE, got " + keyword);
    Cell cell;
    std::string func;
    if (!(ss >> cell.name >> cell.area >> cell.delay >> func)) {
      throw std::runtime_error("library: malformed GATE line: " + line);
    }
    const auto it = func_names().find(func);
    if (it == func_names().end()) {
      throw std::runtime_error("library: unknown function " + func);
    }
    cell.function = it->second;
    lib.add_cell(std::move(cell));
  }
  if (lib.cells().empty()) throw std::runtime_error("library: no cells");
  return lib;
}

CellLibrary CellLibrary::parse_string(const std::string& text) {
  std::istringstream ss(text);
  return parse(ss);
}

void CellLibrary::add_cell(Cell cell) { cells_.push_back(std::move(cell)); }

std::optional<Cell> CellLibrary::best_cell(GateType function) const {
  std::optional<Cell> best;
  for (const Cell& c : cells_) {
    if (c.function != function) continue;
    if (!best || c.area < best->area) best = c;
  }
  return best;
}

std::string CellLibrary::to_string() const {
  std::ostringstream out;
  for (const Cell& c : cells_) {
    std::string func = "?";
    for (const auto& [name, type] : func_names()) {
      if (type == c.function) func = name;
    }
    out << "GATE " << c.name << ' ' << c.area << ' ' << c.delay << ' ' << func << "\n";
  }
  return out.str();
}

// ---------------------------------------------------------------------------
// Mapping
// ---------------------------------------------------------------------------

namespace {

/// Emits gates into `net` using only functions available in `lib`.
class Mapper {
 public:
  Mapper(Netlist& net, const CellLibrary& lib) : net_(net), lib_(lib) {
    if (!lib.has(GateType::kNot)) {
      throw std::invalid_argument("map_to_library: library needs an inverter");
    }
    if (!lib.has(GateType::kAnd) && !lib.has(GateType::kOr) &&
        !lib.has(GateType::kNand) && !lib.has(GateType::kNor)) {
      throw std::invalid_argument("map_to_library: library needs an AND/OR-class cell");
    }
  }

  SignalId emit(GateType type, SignalId a, SignalId b) {
    switch (type) {
      case GateType::kNot: return net_.add_not(a);
      case GateType::kBuf: return a;
      case GateType::kAnd: return emit_and(a, b);
      case GateType::kOr: return emit_or(a, b);
      case GateType::kNand: return emit_nand(a, b);
      case GateType::kNor: return emit_nor(a, b);
      case GateType::kXor: return emit_xor(a, b);
      case GateType::kXnor:
        if (lib_.has(GateType::kXnor)) return net_.add_gate_native(GateType::kXnor, a, b);
        return net_.add_not(emit_xor(a, b));
      default: throw std::logic_error("Mapper::emit: unexpected type");
    }
  }

 private:
  SignalId emit_and(SignalId a, SignalId b) {
    if (lib_.has(GateType::kAnd)) return net_.add_gate_native(GateType::kAnd, a, b);
    if (lib_.has(GateType::kNand)) {
      return net_.add_not(net_.add_gate_native(GateType::kNand, a, b));
    }
    if (lib_.has(GateType::kNor)) {
      return net_.add_gate_native(GateType::kNor, net_.add_not(a), net_.add_not(b));
    }
    // a & b = ~(~a | ~b)
    return net_.add_not(net_.add_gate_native(GateType::kOr, net_.add_not(a), net_.add_not(b)));
  }

  SignalId emit_or(SignalId a, SignalId b) {
    if (lib_.has(GateType::kOr)) return net_.add_gate_native(GateType::kOr, a, b);
    if (lib_.has(GateType::kNor)) {
      return net_.add_not(net_.add_gate_native(GateType::kNor, a, b));
    }
    if (lib_.has(GateType::kNand)) {
      return net_.add_gate_native(GateType::kNand, net_.add_not(a), net_.add_not(b));
    }
    return net_.add_not(net_.add_gate_native(GateType::kAnd, net_.add_not(a), net_.add_not(b)));
  }

  SignalId emit_nand(SignalId a, SignalId b) {
    if (lib_.has(GateType::kNand)) return net_.add_gate_native(GateType::kNand, a, b);
    return net_.add_not(emit_and(a, b));
  }

  SignalId emit_nor(SignalId a, SignalId b) {
    if (lib_.has(GateType::kNor)) return net_.add_gate_native(GateType::kNor, a, b);
    return net_.add_not(emit_or(a, b));
  }

  SignalId emit_xor(SignalId a, SignalId b) {
    if (lib_.has(GateType::kXor)) return net_.add_gate_native(GateType::kXor, a, b);
    if (lib_.has(GateType::kXnor)) {
      return net_.add_not(net_.add_gate_native(GateType::kXnor, a, b));
    }
    // a ^ b = (a & ~b) | (~a & b); the emitters pick whatever the library
    // offers and the strash shares the inverters.
    return emit_or(emit_and(a, net_.add_not(b)), emit_and(net_.add_not(a), b));
  }

  Netlist& net_;
  const CellLibrary& lib_;
};

}  // namespace

Netlist map_to_library(const Netlist& net, const CellLibrary& library) {
  Netlist fresh;
  Mapper mapper(fresh, library);
  std::vector<SignalId> map(net.num_nodes(), kNoSignal);
  for (std::size_t i = 0; i < net.num_inputs(); ++i) {
    map[net.inputs()[i]] = fresh.add_input(net.input_name(i));
  }
  for (const SignalId id : net.reachable_topo_order()) {
    const Netlist::Node& n = net.node(id);
    switch (n.type) {
      case GateType::kInput:
        break;
      case GateType::kConst0:
        map[id] = fresh.get_const(false);
        break;
      case GateType::kConst1:
        map[id] = fresh.get_const(true);
        break;
      default:
        map[id] = mapper.emit(n.type, map[n.fanin0],
                              n.fanin1 != kNoSignal ? map[n.fanin1] : kNoSignal);
        break;
    }
  }
  for (std::size_t o = 0; o < net.num_outputs(); ++o) {
    fresh.add_output(net.output_name(o), map[net.output_signal(o)]);
  }
  return fresh;
}

MappedStats library_stats(const Netlist& net, const CellLibrary& library) {
  MappedStats s;
  std::vector<double> arrival(net.num_nodes(), 0.0);
  std::vector<unsigned> depth(net.num_nodes(), 0);
  for (const SignalId id : net.reachable_topo_order()) {
    const Netlist::Node& n = net.node(id);
    if (n.type == GateType::kInput || n.type == GateType::kConst0 ||
        n.type == GateType::kConst1) {
      continue;
    }
    const auto cell = library.best_cell(n.type);
    if (!cell) {
      throw std::invalid_argument("library_stats: netlist uses a gate outside the library");
    }
    const double a0 = n.fanin0 != kNoSignal ? arrival[n.fanin0] : 0.0;
    const double a1 = n.fanin1 != kNoSignal ? arrival[n.fanin1] : 0.0;
    const unsigned d0 = n.fanin0 != kNoSignal ? depth[n.fanin0] : 0;
    const unsigned d1 = n.fanin1 != kNoSignal ? depth[n.fanin1] : 0;
    arrival[id] = std::max(a0, a1) + cell->delay;
    depth[id] = std::max(d0, d1) + 1;
    s.area += cell->area;
    ++s.cells;
    if (n.type == GateType::kNot) ++s.inverters;
  }
  for (std::size_t o = 0; o < net.num_outputs(); ++o) {
    s.delay = std::max(s.delay, arrival[net.output_signal(o)]);
    s.depth = std::max(s.depth, depth[net.output_signal(o)]);
  }
  return s;
}

}  // namespace bidec
