#include "netlist/netlist.h"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <stdexcept>

namespace bidec {

namespace {

/// Base (non-negated) type and negation flag of a two-input gate type.
struct BaseType {
  GateType base;
  bool negated;
};

BaseType base_of(GateType t) {
  switch (t) {
    case GateType::kNand: return {GateType::kAnd, true};
    case GateType::kNor:  return {GateType::kOr, true};
    case GateType::kXnor: return {GateType::kXor, true};
    default:              return {t, false};
  }
}

GateType negated_of(GateType t) {
  switch (t) {
    case GateType::kAnd: return GateType::kNand;
    case GateType::kOr:  return GateType::kNor;
    case GateType::kXor: return GateType::kXnor;
    default: throw std::logic_error("negated_of: not a base type");
  }
}

std::uint64_t strash_key(GateType type, SignalId a, SignalId b) {
  return (static_cast<std::uint64_t>(type) << 60) ^
         (static_cast<std::uint64_t>(a) << 30) ^ b;
}

}  // namespace

SignalId Netlist::add_input(std::string name) {
  const auto id = static_cast<SignalId>(nodes_.size());
  nodes_.push_back(Node{GateType::kInput, kNoSignal, kNoSignal});
  inputs_.push_back(id);
  input_names_.push_back(std::move(name));
  return id;
}

const std::string& Netlist::input_name(std::size_t i) const { return input_names_[i]; }

std::size_t Netlist::input_index(SignalId id) const {
  const auto it = std::find(inputs_.begin(), inputs_.end(), id);
  return it == inputs_.end() ? kNoSignal : static_cast<std::size_t>(it - inputs_.begin());
}

SignalId Netlist::get_const(bool value) {
  SignalId& slot = value ? const1_ : const0_;
  if (slot == kNoSignal) {
    slot = static_cast<SignalId>(nodes_.size());
    nodes_.push_back(Node{value ? GateType::kConst1 : GateType::kConst0, kNoSignal, kNoSignal});
  }
  return slot;
}

SignalId Netlist::strash_lookup(GateType type, SignalId a, SignalId b) const {
  const auto it = strash_.find(strash_key(type, a, b));
  if (it == strash_.end()) return kNoSignal;
  for (const SignalId id : it->second) {
    const Node& n = nodes_[id];
    if (n.type == type && n.fanin0 == a && n.fanin1 == b) return id;
  }
  return kNoSignal;
}

void Netlist::strash_insert(GateType type, SignalId a, SignalId b, SignalId id) {
  strash_[strash_key(type, a, b)].push_back(id);
}

SignalId Netlist::create_node(GateType type, SignalId a, SignalId b) {
  const SignalId hit = strash_lookup(type, a, b);
  if (hit != kNoSignal) return hit;
  const auto id = static_cast<SignalId>(nodes_.size());
  nodes_.push_back(Node{type, a, b});
  strash_insert(type, a, b, id);
  return id;
}

SignalId Netlist::add_gate(GateType type, SignalId a, SignalId b) {
  return add_gate_impl(type, a, b, /*native=*/false);
}

SignalId Netlist::add_gate_native(GateType type, SignalId a, SignalId b) {
  return add_gate_impl(type, a, b, /*native=*/true);
}

SignalId Netlist::add_gate_impl(GateType type, SignalId a, SignalId b, bool native) {
  switch (type) {
    case GateType::kInput:
      throw std::invalid_argument("add_gate: use add_input for primary inputs");
    case GateType::kConst0: return get_const(false);
    case GateType::kConst1: return get_const(true);
    case GateType::kBuf:    return a;
    case GateType::kNot: {
      const Node& n = nodes_[a];
      if (n.type == GateType::kNot) return n.fanin0;  // double negation
      if (n.type == GateType::kConst0) return get_const(true);
      if (n.type == GateType::kConst1) return get_const(false);
      return create_node(GateType::kNot, a, kNoSignal);
    }
    default: break;
  }

  assert(a < nodes_.size() && b < nodes_.size());
  auto [base, negated] = base_of(type);
  auto finish = [this, &negated](SignalId s) { return negated ? add_not(s) : s; };

  const auto type_of = [this](SignalId s) { return nodes_[s].type; };
  const auto complement_of = [this](SignalId x, SignalId y) {
    return (nodes_[x].type == GateType::kNot && nodes_[x].fanin0 == y) ||
           (nodes_[y].type == GateType::kNot && nodes_[y].fanin0 == x);
  };

  if (base == GateType::kXor && !native) {
    // Push inverters out of XOR fanins: xor(~a, b) == ~xor(a, b). Skipped in
    // native mode, where the caller needs the requested cell type verbatim.
    if (type_of(a) == GateType::kNot) {
      a = nodes_[a].fanin0;
      negated = !negated;
    }
    if (type_of(b) == GateType::kNot) {
      b = nodes_[b].fanin0;
      negated = !negated;
    }
  }
  if (a > b) std::swap(a, b);  // all two-input gates are commutative

  // Constant and structural folding on the base function.
  const GateType ta = type_of(a), tb = type_of(b);
  switch (base) {
    case GateType::kAnd:
      if (ta == GateType::kConst0 || tb == GateType::kConst0) return finish(get_const(false));
      if (ta == GateType::kConst1) return finish(b);
      if (tb == GateType::kConst1) return finish(a);
      if (a == b) return finish(a);
      if (complement_of(a, b)) return finish(get_const(false));
      break;
    case GateType::kOr:
      if (ta == GateType::kConst1 || tb == GateType::kConst1) return finish(get_const(true));
      if (ta == GateType::kConst0) return finish(b);
      if (tb == GateType::kConst0) return finish(a);
      if (a == b) return finish(a);
      if (complement_of(a, b)) return finish(get_const(true));
      break;
    case GateType::kXor:
      if (ta == GateType::kConst0) return finish(b);
      if (tb == GateType::kConst0) return finish(a);
      if (ta == GateType::kConst1) return negated ? b : add_not(b);
      if (tb == GateType::kConst1) return negated ? a : add_not(a);
      if (a == b) return finish(get_const(false));
      if (complement_of(a, b)) return finish(get_const(true));
      break;
    default:
      throw std::logic_error("add_gate: unexpected gate type");
  }
  if (native && negated) return create_node(negated_of(base), a, b);
  return finish(create_node(base, a, b));
}

void Netlist::add_output(std::string name, SignalId signal) {
  assert(signal < nodes_.size());
  outputs_.emplace_back(std::move(name), signal);
}

std::vector<SignalId> Netlist::reachable_topo_order() const {
  std::vector<bool> reachable(nodes_.size(), false);
  std::vector<SignalId> stack;
  for (const auto& [name, sig] : outputs_) stack.push_back(sig);
  while (!stack.empty()) {
    const SignalId id = stack.back();
    stack.pop_back();
    if (reachable[id]) continue;
    reachable[id] = true;
    const Node& n = nodes_[id];
    if (n.fanin0 != kNoSignal) stack.push_back(n.fanin0);
    if (n.fanin1 != kNoSignal) stack.push_back(n.fanin1);
  }
  // Node ids are already topologically ordered by construction.
  std::vector<SignalId> order;
  for (SignalId id = 0; id < nodes_.size(); ++id) {
    if (reachable[id]) order.push_back(id);
  }
  return order;
}

NetlistStats Netlist::stats() const {
  NetlistStats s;
  std::vector<unsigned> level(nodes_.size(), 0);
  std::vector<double> arrival(nodes_.size(), 0.0);
  for (const SignalId id : reachable_topo_order()) {
    const Node& n = nodes_[id];
    if (n.type == GateType::kInput || n.type == GateType::kConst0 ||
        n.type == GateType::kConst1) {
      continue;
    }
    const unsigned l0 = n.fanin0 != kNoSignal ? level[n.fanin0] : 0;
    const unsigned l1 = n.fanin1 != kNoSignal ? level[n.fanin1] : 0;
    const double a0 = n.fanin0 != kNoSignal ? arrival[n.fanin0] : 0.0;
    const double a1 = n.fanin1 != kNoSignal ? arrival[n.fanin1] : 0.0;
    // Inverters contribute delay but not a cascade level.
    level[id] = std::max(l0, l1) + (is_two_input(n.type) ? 1 : 0);
    arrival[id] = std::max(a0, a1) + gate_delay(n.type);
    s.area += gate_area(n.type);
    if (is_two_input(n.type)) {
      ++s.two_input;
      if (is_exor_type(n.type)) ++s.exors;
    } else if (n.type == GateType::kNot) {
      ++s.inverters;
    }
  }
  for (const auto& [name, sig] : outputs_) {
    s.cascades = std::max(s.cascades, level[sig]);
    s.delay = std::max(s.delay, arrival[sig]);
  }
  s.gates = s.two_input + s.inverters;
  return s;
}

std::vector<std::uint64_t> Netlist::simulate64(
    const std::vector<std::uint64_t>& in_words) const {
  if (in_words.size() != inputs_.size()) {
    throw std::invalid_argument("simulate64: wrong number of input words");
  }
  std::vector<std::uint64_t> value(nodes_.size(), 0);
  for (std::size_t i = 0; i < inputs_.size(); ++i) value[inputs_[i]] = in_words[i];
  for (SignalId id = 0; id < nodes_.size(); ++id) {
    const Node& n = nodes_[id];
    if (n.type == GateType::kInput) continue;
    const std::uint64_t a = n.fanin0 != kNoSignal ? value[n.fanin0] : 0;
    const std::uint64_t b = n.fanin1 != kNoSignal ? value[n.fanin1] : 0;
    value[id] = gate_eval64(n.type, a, b);
  }
  std::vector<std::uint64_t> out;
  out.reserve(outputs_.size());
  for (const auto& [name, sig] : outputs_) out.push_back(value[sig]);
  return out;
}

std::vector<bool> Netlist::evaluate(const std::vector<bool>& inputs) const {
  std::vector<std::uint64_t> words(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) words[i] = inputs[i] ? 1 : 0;
  const std::vector<std::uint64_t> out = simulate64(words);
  std::vector<bool> result(out.size());
  for (std::size_t i = 0; i < out.size(); ++i) result[i] = out[i] & 1;
  return result;
}

std::string Netlist::to_dot() const {
  std::ostringstream out;
  out << "digraph netlist {\n  rankdir=LR;\n";
  for (const SignalId id : reachable_topo_order()) {
    const Node& n = nodes_[id];
    if (n.type == GateType::kInput) {
      const std::size_t i = input_index(id);
      out << "  n" << id << " [shape=box,label=\""
          << (i != kNoSignal ? input_names_[i] : "?") << "\"];\n";
      continue;
    }
    out << "  n" << id << " [label=\"" << gate_name(n.type) << "\"];\n";
    if (n.fanin0 != kNoSignal) out << "  n" << n.fanin0 << " -> n" << id << ";\n";
    if (n.fanin1 != kNoSignal) out << "  n" << n.fanin1 << " -> n" << id << ";\n";
  }
  for (const auto& [name, sig] : outputs_) {
    out << "  out_" << name << " [shape=doublecircle,label=\"" << name << "\"];\n";
    out << "  n" << sig << " -> out_" << name << ";\n";
  }
  out << "}\n";
  return out.str();
}

std::size_t Netlist::absorb_inverters() {
  // Count fanouts over the reachable cone (outputs count as fanout).
  const std::vector<SignalId> order = reachable_topo_order();
  std::vector<unsigned> fanout(nodes_.size(), 0);
  for (const SignalId id : order) {
    const Node& n = nodes_[id];
    if (n.fanin0 != kNoSignal) ++fanout[n.fanin0];
    if (n.fanin1 != kNoSignal) ++fanout[n.fanin1];
  }
  std::vector<bool> is_po(nodes_.size(), false);
  for (const auto& [name, sig] : outputs_) {
    ++fanout[sig];
    is_po[sig] = true;
  }

  // Rebuild into a fresh netlist, merging NOT(g) with single-fanout base g.
  Netlist fresh;
  std::vector<SignalId> map(nodes_.size(), kNoSignal);
  std::size_t merges = 0;
  for (std::size_t i = 0; i < inputs_.size(); ++i) {
    const SignalId ni = fresh.add_input(input_names_[i]);
    map[inputs_[i]] = ni;
  }
  for (const SignalId id : order) {
    const Node& n = nodes_[id];
    if (map[id] != kNoSignal) continue;  // inputs already mapped
    switch (n.type) {
      case GateType::kConst0: map[id] = fresh.get_const(false); break;
      case GateType::kConst1: map[id] = fresh.get_const(true); break;
      case GateType::kNot: {
        const Node& g = nodes_[n.fanin0];
        if ((g.type == GateType::kAnd || g.type == GateType::kOr ||
             g.type == GateType::kXor) &&
            fanout[n.fanin0] == 1 && !is_po[n.fanin0]) {
          // Merge into a native NAND/NOR/XNOR (add_gate would re-decompose
          // the negated type into base gate + inverter).
          map[id] = fresh.add_gate_native(negated_of(g.type), map[g.fanin0], map[g.fanin1]);
          ++merges;
        } else {
          map[id] = fresh.add_not(map[n.fanin0]);
        }
        break;
      }
      case GateType::kInput:
        break;  // already mapped
      default:
        map[id] = fresh.add_gate(n.type, map[n.fanin0], map[n.fanin1]);
        break;
    }
  }
  for (const auto& [name, sig] : outputs_) fresh.add_output(name, map[sig]);
  *this = std::move(fresh);
  return merges;
}

}  // namespace bidec
