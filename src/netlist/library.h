// Standard-cell libraries: the paper's future-work item "extending the
// algorithm to work with arbitrary standard cell libraries". A library is a
// set of cells, each realizing one of the two-variable functions (plus
// inverter/buffer/constants) with its own area and delay; `map_to_library`
// rewrites a netlist so that it only uses gates present in the library,
// synthesizing recipes for missing ones (e.g. XOR out of NANDs) and then
// costs it with the library's numbers.
//
// The text format is a simplified genlib:
//   GATE <name> <area> <delay> <func>
// with <func> one of: const0 const1 buf inv and2 or2 xor2 nand2 nor2 xnor2
// andnot2 (a & !b) ornot2 (a | !b). Lines starting with '#' are comments.
#ifndef BIDEC_NETLIST_LIBRARY_H
#define BIDEC_NETLIST_LIBRARY_H

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "netlist/netlist.h"

namespace bidec {

struct Cell {
  std::string name;
  GateType function = GateType::kAnd;  ///< semantics (kBuf for buffers)
  double area = 0.0;
  double delay = 0.0;
};

class CellLibrary {
 public:
  CellLibrary() = default;

  /// The paper's cost table (Section 8) as a library: INV, AND2, OR2, XOR2,
  /// NAND2, NOR2, XNOR2 with DESIGN.md Section 5 area/delay.
  [[nodiscard]] static CellLibrary paper_default();
  /// A NAND2+INV-only library (the classic mapping stress case).
  [[nodiscard]] static CellLibrary nand_inv();

  /// Parse the simplified genlib format; throws std::runtime_error.
  [[nodiscard]] static CellLibrary parse(std::istream& in);
  [[nodiscard]] static CellLibrary parse_string(const std::string& text);

  void add_cell(Cell cell);
  [[nodiscard]] const std::vector<Cell>& cells() const noexcept { return cells_; }

  /// Cheapest cell implementing `function`, if any.
  [[nodiscard]] std::optional<Cell> best_cell(GateType function) const;
  [[nodiscard]] bool has(GateType function) const { return best_cell(function).has_value(); }

  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<Cell> cells_;
};

/// Metrics of a mapped netlist under a library.
struct MappedStats {
  std::size_t cells = 0;      ///< library cell instances (excl. constants)
  std::size_t inverters = 0;
  double area = 0.0;
  double delay = 0.0;         ///< critical path using library delays
  unsigned depth = 0;         ///< cell count depth
};

/// Rewrite `net` so every gate has a cell in `library` (missing gate types
/// are synthesized from available ones) and return the rewritten netlist.
/// Throws std::invalid_argument if the library cannot express inversion or
/// any AND/OR-class gate (a functionally incomplete library).
[[nodiscard]] Netlist map_to_library(const Netlist& net, const CellLibrary& library);

/// Cost a netlist whose gates are all available in `library`.
[[nodiscard]] MappedStats library_stats(const Netlist& net, const CellLibrary& library);

}  // namespace bidec

#endif  // BIDEC_NETLIST_LIBRARY_H
