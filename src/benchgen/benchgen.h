// Benchmark functions reproducing the paper's MCNC workload. Functions with
// published functional definitions (symmetric functions, weight encoders,
// the 16-variable symmetric function of Table 2) are generated exactly;
// benchmarks whose PLA tables are not redistributable offline are replaced
// by synthetic equivalents with the same interface size and character
// (documented per function; see DESIGN.md Section 4 and EXPERIMENTS.md).
#ifndef BIDEC_BENCHGEN_BENCHGEN_H
#define BIDEC_BENCHGEN_BENCHGEN_H

#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "io/pla.h"
#include "isf/isf.h"
#include "netlist/netlist.h"

namespace bidec {

struct Benchmark {
  std::string name;
  unsigned num_inputs = 0;
  unsigned num_outputs = 0;
  /// True when this is a synthetic stand-in rather than the exact MCNC
  /// function (see the note).
  bool stand_in = false;
  std::string note;
  /// Build the specification over a manager with >= num_inputs variables.
  std::function<std::vector<Isf>(BddManager&)> build;
  /// PLA view when the benchmark is cube-defined (used by the SIS-like flow
  /// exactly how SIS consumed the original files); null for functional ones.
  std::shared_ptr<const PlaFile> pla;

  [[nodiscard]] std::vector<std::string> input_names() const;
  [[nodiscard]] std::vector<std::string> output_names() const;
};

/// The Table 2 suite (9sym, alu4, cps, duke2, e64, misex2, pdc, spla, vg2,
/// 16sym8) in the paper's row order.
[[nodiscard]] const std::vector<Benchmark>& table2_suite();

/// The Table 3 suite (5xp1, 9sym, alu2, alu4, cordic, rd84, t481).
[[nodiscard]] const std::vector<Benchmark>& table3_suite();

/// Union of the two suites (unique by name).
[[nodiscard]] const std::vector<Benchmark>& full_suite();

/// Lookup by name across the full suite; throws std::out_of_range if absent.
[[nodiscard]] const Benchmark& find_benchmark(const std::string& name);

// --- individual generators (exposed for tests) ----------------------------

/// Totally symmetric function: on iff popcount(inputs) is in `weights`.
[[nodiscard]] Bdd symmetric_function(BddManager& mgr, unsigned num_inputs,
                                     std::span<const unsigned> weights);

/// weight_indicators[k] = "exactly k of the first num_inputs variables are 1".
[[nodiscard]] std::vector<Bdd> weight_indicators(BddManager& mgr, unsigned num_inputs);

/// Ripple-carry sum of two bit-vectors (LSB first), result one bit longer.
[[nodiscard]] std::vector<Bdd> bdd_add(BddManager& mgr, std::span<const Bdd> a,
                                       std::span<const Bdd> b);
/// a - b as two's complement over max(|a|,|b|)+1 bits; last bit = sign.
[[nodiscard]] std::vector<Bdd> bdd_sub(BddManager& mgr, std::span<const Bdd> a,
                                       std::span<const Bdd> b);
/// Shift-add product of two bit-vectors (LSB first), |a|+|b| result bits.
[[nodiscard]] std::vector<Bdd> bdd_mul(BddManager& mgr, std::span<const Bdd> a,
                                       std::span<const Bdd> b);

/// Gate-level array multiplier (partial-product rows summed by ripple-carry
/// adders). The primary inputs are created interleaved a0,b0,a1,b1,..., so a
/// flow that materializes the netlist into BDDs in input order inherits the
/// ordering under which multiplier middle bits are known to blow up; see
/// ROADMAP.md "Escape the BDD ceiling". Outputs p0..p{na+nb-1}, LSB first.
[[nodiscard]] Netlist multiplier_netlist(unsigned na, unsigned nb);

/// Benchmark "mul<na>x<nb>": the same product as a functional BDD spec
/// (bdd_mul over the interleaved variable layout of multiplier_netlist).
/// Not part of the Table 2/3 suites — it exists as the BDD-hostile workload
/// for the SAT engine benchmarks.
[[nodiscard]] Benchmark multiplier_benchmark(unsigned na, unsigned nb);

/// Seeded synthetic control-logic PLA (stand-in generator): `cubes` product
/// terms over `inputs` variables with `min_lits..max_lits` literals each,
/// each activating 1..`outs_per_cube` outputs; a `dc_fraction` of rows mark
/// don't-cares instead of on-set.
///
/// Note: purely random cubes are structure-free, the adversarial best case
/// for two-level synthesis; the Table 2 stand-ins use
/// random_structured_spec instead, and the random-PLA workload is kept as
/// the `randompla` ablation (see bench/ablation_main.cpp).
[[nodiscard]] PlaFile random_control_pla(unsigned inputs, unsigned outputs,
                                         unsigned cubes, unsigned min_lits,
                                         unsigned max_lits, unsigned outs_per_cube,
                                         double dc_fraction, std::uint64_t seed);

struct StructuredSpecParams {
  unsigned inputs = 16;
  unsigned outputs = 8;
  /// Internal gate pool built before outputs are drawn.
  unsigned internal_nodes = 100;
  /// Fraction of internal gates that are XORs (control logic has few).
  double xor_fraction = 0.08;
  /// Probability that an output receives a random-cube don't-care region.
  double dc_fraction = 0.0;
  std::uint64_t seed = 1;
};

/// Seeded synthetic multi-output control logic *with internal sharing*: a
/// random gate DAG over the inputs whose outputs are drawn from the deeper
/// half of the pool. This models the origin of the MCNC control benchmarks
/// (flattened multi-level controllers): flattening to two-level form
/// obscures shared subfunctions that decomposition can rediscover.
[[nodiscard]] std::vector<Isf> random_structured_spec(BddManager& mgr,
                                                      const StructuredSpecParams& params);

}  // namespace bidec

#endif  // BIDEC_BENCHGEN_BENCHGEN_H
