// Seeded synthetic control-logic PLA generator: the stand-in for MCNC
// benchmarks whose cube tables are not redistributable here (cps, duke2,
// misex2, pdc, spla, vg2). Cube counts and literal densities are matched to
// the originals so the flows see workloads of the same size and shape.
#include <random>

#include "benchgen/benchgen.h"

namespace bidec {

std::vector<Isf> random_structured_spec(BddManager& mgr,
                                        const StructuredSpecParams& params) {
  std::mt19937_64 rng(params.seed);
  std::vector<Bdd> pool;
  pool.reserve(params.inputs + params.internal_nodes);
  for (unsigned v = 0; v < params.inputs; ++v) pool.push_back(mgr.var(v));

  std::bernoulli_distribution flip(0.3);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  for (unsigned i = 0; i < params.internal_nodes; ++i) {
    std::uniform_int_distribution<std::size_t> pick(0, pool.size() - 1);
    const std::size_t ia = pick(rng);
    std::size_t ib = pick(rng);
    while (ib == ia) ib = pick(rng);
    Bdd a = pool[ia];
    Bdd b = pool[ib];
    if (flip(rng)) a = ~a;
    if (flip(rng)) b = ~b;
    const double op = coin(rng);
    Bdd g;
    if (op < params.xor_fraction) {
      g = a ^ b;
    } else if (op < params.xor_fraction + (1.0 - params.xor_fraction) / 2) {
      g = a & b;
    } else {
      g = a | b;
    }
    if (!g.is_const()) pool.push_back(std::move(g));
  }

  // Outputs come from the deeper half of the pool so they carry structure.
  const std::size_t lo = pool.size() / 2;
  std::uniform_int_distribution<std::size_t> out_pick(lo, pool.size() - 1);
  std::vector<Isf> spec;
  spec.reserve(params.outputs);
  std::bernoulli_distribution has_dc(params.dc_fraction);
  std::uniform_int_distribution<unsigned> var_pick(0, params.inputs - 1);
  std::bernoulli_distribution pol(0.5);
  for (unsigned o = 0; o < params.outputs; ++o) {
    const Bdd f = pool[out_pick(rng)];
    if (has_dc(rng)) {
      // Don't-care region: a random three-literal cube.
      CubeLits lits(params.inputs, -1);
      for (int l = 0; l < 3; ++l) {
        lits[var_pick(rng)] = pol(rng) ? 1 : 0;
      }
      const Bdd dc = mgr.make_cube(lits);
      spec.push_back(Isf(f - dc, ~(f | dc)));
    } else {
      spec.push_back(Isf::from_csf(f));
    }
  }
  return spec;
}

PlaFile random_control_pla(unsigned inputs, unsigned outputs, unsigned cubes,
                           unsigned min_lits, unsigned max_lits, unsigned outs_per_cube,
                           double dc_fraction, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<unsigned> lit_count(min_lits, max_lits);
  std::uniform_int_distribution<unsigned> var_pick(0, inputs - 1);
  std::uniform_int_distribution<unsigned> out_count(1, outs_per_cube);
  std::uniform_int_distribution<unsigned> out_pick(0, outputs - 1);
  std::bernoulli_distribution polarity(0.5);
  std::bernoulli_distribution dc_row(dc_fraction);

  PlaFile pla;
  pla.num_inputs = inputs;
  pla.num_outputs = outputs;
  pla.type = PlaFile::Type::kFD;
  pla.rows.reserve(cubes);
  for (unsigned c = 0; c < cubes; ++c) {
    std::string in_part(inputs, '-');
    const unsigned lits = lit_count(rng);
    for (unsigned l = 0; l < lits; ++l) {
      in_part[var_pick(rng)] = polarity(rng) ? '1' : '0';
    }
    std::string out_part(outputs, '0');
    const char mark = dc_row(rng) ? '-' : '1';
    const unsigned outs = out_count(rng);
    for (unsigned o = 0; o < outs; ++o) out_part[out_pick(rng)] = mark;
    pla.rows.push_back(PlaFile::Row{std::move(in_part), std::move(out_part)});
  }
  return pla;
}

}  // namespace bidec
