// BDD-level arithmetic helpers used by the functional benchmark generators.
#include <stdexcept>

#include "benchgen/benchgen.h"

namespace bidec {

std::vector<Bdd> weight_indicators(BddManager& mgr, unsigned num_inputs) {
  // Dynamic programming over variables: after processing variable v, w[k] is
  // "exactly k ones among variables 0..v".
  std::vector<Bdd> w(num_inputs + 1, mgr.bdd_false());
  w[0] = mgr.bdd_true();
  for (unsigned v = 0; v < num_inputs; ++v) {
    const Bdd x = mgr.var(v);
    for (unsigned k = v + 1; k-- > 0;) {
      w[k + 1] = mgr.ite(x, w[k], w[k + 1]);
    }
    w[0] = mgr.ite(x, mgr.bdd_false(), w[0]);
  }
  return w;
}

Bdd symmetric_function(BddManager& mgr, unsigned num_inputs,
                       std::span<const unsigned> weights) {
  const std::vector<Bdd> w = weight_indicators(mgr, num_inputs);
  Bdd f = mgr.bdd_false();
  for (const unsigned k : weights) {
    if (k > num_inputs) throw std::out_of_range("symmetric_function: weight > inputs");
    f |= w[k];
  }
  return f;
}

std::vector<Bdd> bdd_add(BddManager& mgr, std::span<const Bdd> a, std::span<const Bdd> b) {
  const std::size_t width = std::max(a.size(), b.size());
  std::vector<Bdd> sum;
  sum.reserve(width + 1);
  Bdd carry = mgr.bdd_false();
  for (std::size_t i = 0; i < width; ++i) {
    const Bdd ai = i < a.size() ? a[i] : mgr.bdd_false();
    const Bdd bi = i < b.size() ? b[i] : mgr.bdd_false();
    sum.push_back(ai ^ bi ^ carry);
    carry = (ai & bi) | (carry & (ai ^ bi));
  }
  sum.push_back(carry);
  return sum;
}

std::vector<Bdd> bdd_sub(BddManager& mgr, std::span<const Bdd> a, std::span<const Bdd> b) {
  // a + ~b + 1 over width+1 bits; the top bit is the sign.
  const std::size_t width = std::max(a.size(), b.size()) + 1;
  std::vector<Bdd> diff;
  diff.reserve(width);
  Bdd carry = mgr.bdd_true();
  for (std::size_t i = 0; i < width; ++i) {
    const Bdd ai = i < a.size() ? a[i] : mgr.bdd_false();
    const Bdd bi = ~(i < b.size() ? b[i] : mgr.bdd_false());
    diff.push_back(ai ^ bi ^ carry);
    carry = (ai & bi) | (carry & (ai ^ bi));
  }
  return diff;
}

std::vector<Bdd> bdd_mul(BddManager& mgr, std::span<const Bdd> a, std::span<const Bdd> b) {
  std::vector<Bdd> prod(a.size() + b.size(), mgr.bdd_false());
  for (std::size_t j = 0; j < b.size(); ++j) {
    // prod += (a & b[j]) << j, ripple-carried into the accumulator.
    Bdd carry = mgr.bdd_false();
    for (std::size_t i = 0; i < a.size(); ++i) {
      const Bdd pp = a[i] & b[j];
      const Bdd s = prod[i + j] ^ pp;
      const Bdd next_carry = (prod[i + j] & pp) | (carry & s);
      prod[i + j] = s ^ carry;
      carry = next_carry;
    }
    for (std::size_t k = a.size() + j; carry != mgr.bdd_false() && k < prod.size(); ++k) {
      const Bdd s = prod[k];
      prod[k] = s ^ carry;
      carry = s & carry;
    }
  }
  return prod;
}

namespace {

/// a0,b0,a1,b1,... with the tail of the longer operand appended; returns the
/// index each operand bit ends up at.
void interleaved_layout(unsigned na, unsigned nb, std::vector<unsigned>& a_pos,
                        std::vector<unsigned>& b_pos) {
  a_pos.clear();
  b_pos.clear();
  unsigned next = 0;
  for (unsigned i = 0; i < std::max(na, nb); ++i) {
    if (i < na) a_pos.push_back(next++);
    if (i < nb) b_pos.push_back(next++);
  }
}

std::string numbered(const char* prefix, std::size_t i) {
  std::string s = prefix;
  s += std::to_string(i);
  return s;
}

}  // namespace

Netlist multiplier_netlist(unsigned na, unsigned nb) {
  if (na == 0 || nb == 0) throw std::invalid_argument("multiplier_netlist: zero width");
  std::vector<unsigned> a_pos;
  std::vector<unsigned> b_pos;
  interleaved_layout(na, nb, a_pos, b_pos);
  Netlist net;
  std::vector<SignalId> a(na);
  std::vector<SignalId> b(nb);
  // Create the PIs in interleaved order so input index == layout position.
  for (unsigned pos = 0, i = 0, j = 0; pos < na + nb; ++pos) {
    if (i < na && a_pos[i] == pos) {
      a[i] = net.add_input(numbered("a", i));
      ++i;
    } else {
      b[j] = net.add_input(numbered("b", j));
      ++j;
    }
  }
  std::vector<SignalId> acc(na + nb, net.get_const(false));
  for (unsigned j = 0; j < nb; ++j) {
    SignalId carry = net.get_const(false);
    for (unsigned i = 0; i < na; ++i) {
      const SignalId pp = net.add_and(a[i], b[j]);
      const SignalId s = net.add_xor(acc[i + j], pp);
      const SignalId next_carry =
          net.add_or(net.add_and(acc[i + j], pp), net.add_and(carry, s));
      acc[i + j] = net.add_xor(s, carry);
      carry = next_carry;
    }
    for (unsigned k = na + j; k < na + nb; ++k) {
      const SignalId s = acc[k];
      acc[k] = net.add_xor(s, carry);
      carry = net.add_and(s, carry);
    }
  }
  for (unsigned k = 0; k < na + nb; ++k) net.add_output(numbered("p", k), acc[k]);
  return net;
}

Benchmark multiplier_benchmark(unsigned na, unsigned nb) {
  Benchmark bench;
  bench.name = numbered("mul", na) + "x" + std::to_string(nb);
  bench.num_inputs = na + nb;
  bench.num_outputs = na + nb;
  bench.note = "synthetic: array multiplier, interleaved inputs (BDD-hostile)";
  bench.build = [na, nb](BddManager& mgr) {
    std::vector<unsigned> a_pos;
    std::vector<unsigned> b_pos;
    interleaved_layout(na, nb, a_pos, b_pos);
    std::vector<Bdd> a;
    std::vector<Bdd> b;
    for (unsigned i = 0; i < na; ++i) a.push_back(mgr.var(a_pos[i]));
    for (unsigned j = 0; j < nb; ++j) b.push_back(mgr.var(b_pos[j]));
    std::vector<Bdd> prod = bdd_mul(mgr, a, b);
    std::vector<Isf> out;
    out.reserve(prod.size());
    for (Bdd& f : prod) out.push_back(Isf::from_csf(f));
    return out;
  };
  return bench;
}

}  // namespace bidec
