// BDD-level arithmetic helpers used by the functional benchmark generators.
#include <stdexcept>

#include "benchgen/benchgen.h"

namespace bidec {

std::vector<Bdd> weight_indicators(BddManager& mgr, unsigned num_inputs) {
  // Dynamic programming over variables: after processing variable v, w[k] is
  // "exactly k ones among variables 0..v".
  std::vector<Bdd> w(num_inputs + 1, mgr.bdd_false());
  w[0] = mgr.bdd_true();
  for (unsigned v = 0; v < num_inputs; ++v) {
    const Bdd x = mgr.var(v);
    for (unsigned k = v + 1; k-- > 0;) {
      w[k + 1] = mgr.ite(x, w[k], w[k + 1]);
    }
    w[0] = mgr.ite(x, mgr.bdd_false(), w[0]);
  }
  return w;
}

Bdd symmetric_function(BddManager& mgr, unsigned num_inputs,
                       std::span<const unsigned> weights) {
  const std::vector<Bdd> w = weight_indicators(mgr, num_inputs);
  Bdd f = mgr.bdd_false();
  for (const unsigned k : weights) {
    if (k > num_inputs) throw std::out_of_range("symmetric_function: weight > inputs");
    f |= w[k];
  }
  return f;
}

std::vector<Bdd> bdd_add(BddManager& mgr, std::span<const Bdd> a, std::span<const Bdd> b) {
  const std::size_t width = std::max(a.size(), b.size());
  std::vector<Bdd> sum;
  sum.reserve(width + 1);
  Bdd carry = mgr.bdd_false();
  for (std::size_t i = 0; i < width; ++i) {
    const Bdd ai = i < a.size() ? a[i] : mgr.bdd_false();
    const Bdd bi = i < b.size() ? b[i] : mgr.bdd_false();
    sum.push_back(ai ^ bi ^ carry);
    carry = (ai & bi) | (carry & (ai ^ bi));
  }
  sum.push_back(carry);
  return sum;
}

std::vector<Bdd> bdd_sub(BddManager& mgr, std::span<const Bdd> a, std::span<const Bdd> b) {
  // a + ~b + 1 over width+1 bits; the top bit is the sign.
  const std::size_t width = std::max(a.size(), b.size()) + 1;
  std::vector<Bdd> diff;
  diff.reserve(width);
  Bdd carry = mgr.bdd_true();
  for (std::size_t i = 0; i < width; ++i) {
    const Bdd ai = i < a.size() ? a[i] : mgr.bdd_false();
    const Bdd bi = ~(i < b.size() ? b[i] : mgr.bdd_false());
    diff.push_back(ai ^ bi ^ carry);
    carry = (ai & bi) | (carry & (ai ^ bi));
  }
  return diff;
}

}  // namespace bidec
