// The benchmark suites of the paper's Tables 2 and 3. Per-function
// provenance:
//
//   exact (functional definition is public knowledge):
//     9sym    9-input totally symmetric, on iff weight in {3..6}
//     16sym8  16-input totally symmetric with the paper's polarity window
//             (on iff weight >= 8)
//     rd84    8-input weight encoder, 4 output bits of the ones-count
//   structural stand-ins (same interface, same functional character):
//     5xp1    arithmetic: 4-bit a, 3-bit b -> 5*a + b (7 bits) plus parity,
//             zero-flag and MSB outputs (10 outputs like the original)
//     alu2    3+3-bit operands, 4 control bits, 16 ops -> 6 outputs
//     alu4    5+5-bit operands, 4 control bits, 16 ops -> 8 outputs
//     cordic  CORDIC rotation step: 11-bit target and current angles plus a
//             mode bit -> rotation-direction and convergence outputs
//     t481    the well-known EXOR/AND two-level-of-pairs structure that
//             makes t481 the classic EXOR-decomposition benchmark
//     e64     priority chain: out_i = x_i & none-of(x_0..x_{i-1})
//   seeded synthetic control PLAs (matched interface and cube counts):
//     cps duke2 misex2 pdc spla vg2
#include "benchgen/benchgen.h"

#include <map>
#include <stdexcept>

namespace bidec {

namespace {
/// Two statements: GCC 12's -Wrestrict misfires on `prefix +
/// std::to_string(i)` once the string operator+ is inlined.
std::string numbered_name(const char* prefix, std::size_t i) {
  std::string s = prefix;
  s += std::to_string(i);
  return s;
}
}  // namespace

std::vector<std::string> Benchmark::input_names() const {
  if (pla && !pla->input_names.empty()) return pla->input_names;
  std::vector<std::string> names;
  names.reserve(num_inputs);
  for (unsigned i = 0; i < num_inputs; ++i) names.push_back(numbered_name("x", i));
  return names;
}

std::vector<std::string> Benchmark::output_names() const {
  if (pla && !pla->output_names.empty()) return pla->output_names;
  std::vector<std::string> names;
  names.reserve(num_outputs);
  for (unsigned o = 0; o < num_outputs; ++o) names.push_back(numbered_name("f", o));
  return names;
}

namespace {

std::vector<Isf> csf_outputs(std::vector<Bdd> funcs) {
  std::vector<Isf> result;
  result.reserve(funcs.size());
  for (Bdd& f : funcs) result.push_back(Isf::from_csf(f));
  return result;
}

std::vector<Bdd> input_bits(BddManager& mgr, unsigned first, unsigned count) {
  std::vector<Bdd> bits;
  bits.reserve(count);
  for (unsigned i = 0; i < count; ++i) bits.push_back(mgr.var(first + i));
  return bits;
}

// --- exact functional benchmarks -------------------------------------------

Benchmark make_sym9() {
  Benchmark b;
  b.name = "9sym";
  b.num_inputs = 9;
  b.num_outputs = 1;
  b.note = "exact: totally symmetric, on iff 3 <= weight <= 6";
  b.build = [](BddManager& mgr) {
    const unsigned weights[] = {3, 4, 5, 6};
    return csf_outputs({symmetric_function(mgr, 9, weights)});
  };
  return b;
}

Benchmark make_sym16() {
  Benchmark b;
  b.name = "16sym8";
  b.num_inputs = 16;
  b.num_outputs = 1;
  b.note = "exact: totally symmetric, polarity window weight >= 8";
  b.build = [](BddManager& mgr) {
    std::vector<unsigned> weights;
    for (unsigned k = 8; k <= 16; ++k) weights.push_back(k);
    return csf_outputs({symmetric_function(mgr, 16, weights)});
  };
  return b;
}

Benchmark make_rd(unsigned inputs, unsigned outputs) {
  Benchmark b;
  b.name = numbered_name("rd", inputs);
  b.name += std::to_string(outputs);
  b.num_inputs = inputs;
  b.num_outputs = outputs;
  b.note = "exact: " + std::to_string(inputs) + "-input weight encoder (" +
           std::to_string(outputs) + "-bit ones-count)";
  b.build = [inputs, outputs](BddManager& mgr) {
    const std::vector<Bdd> w = weight_indicators(mgr, inputs);
    std::vector<Bdd> outs(outputs, mgr.bdd_false());
    for (unsigned k = 0; k <= inputs; ++k) {
      for (unsigned bit = 0; bit < outputs; ++bit) {
        if ((k >> bit) & 1) outs[bit] |= w[k];
      }
    }
    return csf_outputs(std::move(outs));
  };
  return b;
}

// --- structural stand-ins ----------------------------------------------------

Benchmark make_5xp1() {
  Benchmark b;
  b.name = "5xp1";
  b.num_inputs = 7;
  b.num_outputs = 10;
  b.stand_in = true;
  b.note = "stand-in: 5*a + b over a[4],b[3]; 7 sum bits + parity/zero/msb";
  b.build = [](BddManager& mgr) {
    const std::vector<Bdd> a = input_bits(mgr, 0, 4);
    const std::vector<Bdd> bv = input_bits(mgr, 4, 3);
    // 5*a = (a << 2) + a.
    std::vector<Bdd> a4(6, mgr.bdd_false());
    for (unsigned i = 0; i < 4; ++i) a4[i + 2] = a[i];
    const std::vector<Bdd> times5 = bdd_add(mgr, a4, a);
    const std::vector<Bdd> sum = bdd_add(mgr, times5, bv);  // up to 8 bits
    std::vector<Bdd> outs(sum.begin(), sum.begin() + 7);
    Bdd parity = mgr.bdd_false();
    Bdd zero = mgr.bdd_true();
    for (unsigned i = 0; i < 7; ++i) {
      parity ^= sum[i];
      zero &= ~sum[i];
    }
    outs.push_back(parity);
    outs.push_back(zero);
    outs.push_back(sum[6] | sum[5]);  // "large result" flag
    return csf_outputs(std::move(outs));
  };
  return b;
}

std::vector<Bdd> alu_outputs(BddManager& mgr, unsigned op_width, unsigned result_outs) {
  // Inputs: a[op_width], b[op_width], ctl[4].
  const std::vector<Bdd> a = input_bits(mgr, 0, op_width);
  const std::vector<Bdd> bv = input_bits(mgr, op_width, op_width);
  const std::vector<Bdd> ctl = input_bits(mgr, 2 * op_width, 4);

  // The 16 operations (classic 74181-flavoured mix of arithmetic/logic).
  std::vector<std::vector<Bdd>> results;
  const std::vector<Bdd> add = bdd_add(mgr, a, bv);
  const std::vector<Bdd> sub = bdd_sub(mgr, a, bv);
  auto logic = [&](auto&& op) {
    std::vector<Bdd> r;
    for (unsigned i = 0; i < op_width; ++i) r.push_back(op(a[i], bv[i]));
    r.push_back(mgr.bdd_false());
    return r;
  };
  std::vector<Bdd> shl(op_width + 1, mgr.bdd_false());
  for (unsigned i = 0; i < op_width; ++i) shl[i + 1] = a[i];
  std::vector<Bdd> nota;
  for (unsigned i = 0; i < op_width; ++i) nota.push_back(~a[i]);
  nota.push_back(mgr.bdd_false());
  std::vector<Bdd> pass_a = a;
  pass_a.push_back(mgr.bdd_false());
  std::vector<Bdd> pass_b = bv;
  pass_b.push_back(mgr.bdd_false());
  const std::vector<Bdd> one{mgr.bdd_true()};
  const std::vector<Bdd> inc = bdd_add(mgr, a, one);

  results.push_back(add);                                            // 0 add
  results.push_back(sub);                                            // 1 sub
  results.push_back(logic([](const Bdd& x, const Bdd& y) { return x & y; }));   // 2
  results.push_back(logic([](const Bdd& x, const Bdd& y) { return x | y; }));   // 3
  results.push_back(logic([](const Bdd& x, const Bdd& y) { return x ^ y; }));   // 4
  results.push_back(logic([](const Bdd& x, const Bdd& y) { return ~(x | y); })); // 5
  results.push_back(logic([](const Bdd& x, const Bdd& y) { return ~(x & y); })); // 6
  results.push_back(logic([](const Bdd& x, const Bdd& y) { return ~(x ^ y); })); // 7
  results.push_back(shl);                                            // 8
  results.push_back(nota);                                           // 9
  results.push_back(pass_a);                                         // 10
  results.push_back(pass_b);                                         // 11
  results.push_back(inc);                                            // 12
  results.push_back(bdd_sub(mgr, bv, a));                            // 13
  results.push_back(bdd_add(mgr, a, a));                             // 14
  results.push_back(logic([](const Bdd& x, const Bdd& y) { return x & ~y; }));  // 15

  // Select by control value.
  const std::size_t width = op_width + 1;
  std::vector<Bdd> selected(width, mgr.bdd_false());
  for (unsigned op = 0; op < 16; ++op) {
    Bdd is_op = mgr.bdd_true();
    for (unsigned c = 0; c < 4; ++c) {
      is_op &= ((op >> c) & 1) ? ctl[c] : ~ctl[c];
    }
    for (std::size_t i = 0; i < width; ++i) {
      const Bdd bit = i < results[op].size() ? results[op][i] : mgr.bdd_false();
      selected[i] |= is_op & bit;
    }
  }

  // Pack: result bits, then carry/overflow bit, then zero flag, truncated or
  // padded to result_outs.
  Bdd zero = mgr.bdd_true();
  for (unsigned i = 0; i < op_width; ++i) zero &= ~selected[i];
  std::vector<Bdd> outs(selected.begin(), selected.end());
  outs.push_back(zero);
  outs.resize(result_outs, mgr.bdd_false());
  return outs;
}

Benchmark make_alu2() {
  Benchmark b;
  b.name = "alu2";
  b.num_inputs = 10;
  b.num_outputs = 6;
  b.stand_in = true;
  b.note = "stand-in: 3+3-bit 16-op ALU with carry and zero flags";
  b.build = [](BddManager& mgr) { return csf_outputs(alu_outputs(mgr, 3, 6)); };
  return b;
}

Benchmark make_alu4() {
  Benchmark b;
  b.name = "alu4";
  b.num_inputs = 14;
  b.num_outputs = 8;
  b.stand_in = true;
  b.note = "stand-in: 5+5-bit 16-op ALU with carry and zero flags";
  b.build = [](BddManager& mgr) { return csf_outputs(alu_outputs(mgr, 5, 8)); };
  return b;
}

Benchmark make_cordic() {
  Benchmark b;
  b.name = "cordic";
  b.num_inputs = 23;
  b.num_outputs = 2;
  b.stand_in = true;
  b.note = "stand-in: CORDIC step: sign(target - angle) and convergence flag";
  b.build = [](BddManager& mgr) {
    const std::vector<Bdd> target = input_bits(mgr, 0, 11);
    const std::vector<Bdd> angle = input_bits(mgr, 11, 11);
    const Bdd mode = mgr.var(22);
    const std::vector<Bdd> diff = bdd_sub(mgr, target, angle);
    const Bdd sign = diff.back();
    // Converged when the difference is tiny: all bits above the low 3 agree
    // with the sign bit.
    Bdd converged = mgr.bdd_true();
    for (std::size_t i = 3; i < diff.size(); ++i) converged &= ~(diff[i] ^ sign);
    return csf_outputs({sign ^ mode, converged});
  };
  return b;
}

Benchmark make_t481() {
  Benchmark b;
  b.name = "t481";
  b.num_inputs = 16;
  b.num_outputs = 1;
  b.stand_in = true;
  b.note = "stand-in: two levels of (xor-pair AND xor-pair) OR-ed, then EXOR";
  b.build = [](BddManager& mgr) {
    auto xp = [&mgr](unsigned i) { return mgr.var(i) ^ mgr.var(i + 1); };
    const Bdd left = (xp(0) & xp(2)) | (xp(4) & xp(6));
    const Bdd right = (xp(8) & xp(10)) | (xp(12) & xp(14));
    return csf_outputs({left ^ right});
  };
  return b;
}

Benchmark make_e64() {
  Benchmark b;
  b.name = "e64";
  b.num_inputs = 65;
  b.num_outputs = 65;
  b.stand_in = true;
  b.note = "stand-in: 65-way priority chain (out_i = x_i & no higher x set)";
  b.build = [](BddManager& mgr) {
    std::vector<Bdd> outs;
    outs.reserve(65);
    Bdd none_above = mgr.bdd_true();
    for (unsigned i = 0; i < 65; ++i) {
      outs.push_back(mgr.var(i) & none_above);
      none_above &= ~mgr.var(i);
    }
    return csf_outputs(std::move(outs));
  };
  return b;
}

// --- seeded synthetic control logic -----------------------------------------

Benchmark make_structured_bench(std::string name, unsigned inputs, unsigned outputs,
                                unsigned internal_nodes, double dc_fraction,
                                std::uint64_t seed) {
  Benchmark b;
  b.name = std::move(name);
  b.num_inputs = inputs;
  b.num_outputs = outputs;
  b.stand_in = true;
  b.note = "stand-in: seeded synthetic control logic with internal sharing";
  StructuredSpecParams params;
  params.inputs = inputs;
  params.outputs = outputs;
  params.internal_nodes = internal_nodes;
  params.dc_fraction = dc_fraction;
  params.seed = seed;
  b.build = [params](BddManager& mgr) { return random_structured_spec(mgr, params); };
  return b;
}

std::vector<Benchmark> build_all() {
  std::vector<Benchmark> all;
  all.push_back(make_sym9());
  all.push_back(make_alu4());
  all.push_back(make_structured_bench("cps", 24, 109, 330, 0.0, 0xc0ffee01));
  all.push_back(make_structured_bench("duke2", 22, 29, 150, 0.0, 0xc0ffee02));
  all.push_back(make_e64());
  all.push_back(make_structured_bench("misex2", 25, 18, 90, 0.0, 0xc0ffee03));
  all.push_back(make_structured_bench("pdc", 16, 40, 160, 0.5, 0xc0ffee04));
  all.push_back(make_structured_bench("spla", 16, 46, 170, 0.0, 0xc0ffee05));
  all.push_back(make_structured_bench("vg2", 25, 8, 100, 0.0, 0xc0ffee06));
  all.push_back(make_sym16());
  all.push_back(make_5xp1());
  all.push_back(make_alu2());
  all.push_back(make_cordic());
  all.push_back(make_rd(5, 3));   // rd53
  all.push_back(make_rd(7, 3));   // rd73
  all.push_back(make_rd(8, 4));   // rd84
  all.push_back(make_t481());
  return all;
}

}  // namespace

const std::vector<Benchmark>& full_suite() {
  static const std::vector<Benchmark> suite = build_all();
  return suite;
}

const Benchmark& find_benchmark(const std::string& name) {
  for (const Benchmark& b : full_suite()) {
    if (b.name == name) return b;
  }
  throw std::out_of_range("find_benchmark: unknown benchmark " + name);
}

const std::vector<Benchmark>& table2_suite() {
  static const std::vector<Benchmark> suite = [] {
    std::vector<Benchmark> s;
    for (const char* name : {"9sym", "alu4", "cps", "duke2", "e64", "misex2", "pdc",
                             "spla", "vg2", "16sym8"}) {
      s.push_back(find_benchmark(name));
    }
    return s;
  }();
  return suite;
}

const std::vector<Benchmark>& table3_suite() {
  static const std::vector<Benchmark> suite = [] {
    std::vector<Benchmark> s;
    for (const char* name : {"5xp1", "9sym", "alu2", "alu4", "cordic", "rd84", "t481"}) {
      s.push_back(find_benchmark(name));
    }
    return s;
  }();
  return suite;
}

}  // namespace bidec
