#include "io/blif.h"

#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace bidec {

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

namespace {

std::string signal_name(const Netlist& net, SignalId id) {
  const std::size_t pi = net.input_index(id);
  if (pi != kNoSignal) return net.input_name(pi);
  std::string s = "n";  // two statements: GCC 12's -Wrestrict misfires on
  s += std::to_string(id);  // `"n" + std::to_string(id)` inlined here
  return s;
}

}  // namespace

std::string write_blif(const Netlist& net, const std::string& model) {
  std::ostringstream out;
  out << ".model " << model << "\n.inputs";
  for (std::size_t i = 0; i < net.num_inputs(); ++i) out << ' ' << net.input_name(i);
  out << "\n.outputs";
  for (std::size_t i = 0; i < net.num_outputs(); ++i) out << ' ' << net.output_name(i);
  out << "\n";

  for (const SignalId id : net.reachable_topo_order()) {
    const Netlist::Node& n = net.node(id);
    const std::string y = signal_name(net, id);
    const auto a = [&] { return signal_name(net, n.fanin0); };
    const auto b = [&] { return signal_name(net, n.fanin1); };
    switch (n.type) {
      case GateType::kInput: break;
      case GateType::kConst0: out << ".names " << y << "\n"; break;
      case GateType::kConst1: out << ".names " << y << "\n1\n"; break;
      case GateType::kBuf: out << ".names " << a() << ' ' << y << "\n1 1\n"; break;
      case GateType::kNot: out << ".names " << a() << ' ' << y << "\n0 1\n"; break;
      case GateType::kAnd:
        out << ".names " << a() << ' ' << b() << ' ' << y << "\n11 1\n";
        break;
      case GateType::kOr:
        out << ".names " << a() << ' ' << b() << ' ' << y << "\n1- 1\n-1 1\n";
        break;
      case GateType::kXor:
        out << ".names " << a() << ' ' << b() << ' ' << y << "\n10 1\n01 1\n";
        break;
      case GateType::kNand:
        out << ".names " << a() << ' ' << b() << ' ' << y << "\n0- 1\n-0 1\n";
        break;
      case GateType::kNor:
        out << ".names " << a() << ' ' << b() << ' ' << y << "\n00 1\n";
        break;
      case GateType::kXnor:
        out << ".names " << a() << ' ' << b() << ' ' << y << "\n00 1\n11 1\n";
        break;
    }
  }
  // Output buffers connect internal names to the declared output names.
  for (std::size_t i = 0; i < net.num_outputs(); ++i) {
    out << ".names " << signal_name(net, net.output_signal(i)) << ' '
        << net.output_name(i) << "\n1 1\n";
  }
  out << ".end\n";
  return out.str();
}

void save_blif(const Netlist& net, const std::string& model, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("BLIF: cannot write " + path);
  out << write_blif(net, model);
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

namespace {

struct NamesNode {
  std::vector<std::string> fanins;
  std::vector<std::string> rows;  // "<input-plane> <output-bit>"
};

struct BlifModel {
  std::vector<std::string> inputs;
  std::vector<std::string> outputs;
  std::map<std::string, NamesNode> nodes;  // keyed by driven signal name
};

BlifModel parse_structure(std::istream& in) {
  BlifModel model;
  std::string line, pending;
  NamesNode* current = nullptr;
  auto read_logical_line = [&](std::string& out_line) {
    out_line.clear();
    std::string raw;
    while (std::getline(in, raw)) {
      if (const auto pos = raw.find('#'); pos != std::string::npos) raw.erase(pos);
      // Handle continuation backslash.
      while (!raw.empty() && raw.back() == '\\') {
        raw.pop_back();
        std::string next;
        if (!std::getline(in, next)) break;
        raw += next;
      }
      if (raw.find_first_not_of(" \t\r") == std::string::npos) continue;
      out_line = raw;
      return true;
    }
    return false;
  };

  while (read_logical_line(line)) {
    std::istringstream ss(line);
    std::vector<std::string> tokens;
    std::string tok;
    while (ss >> tok) tokens.push_back(tok);
    if (tokens.empty()) continue;
    const std::string& head = tokens.front();
    if (head == ".model") {
      current = nullptr;
    } else if (head == ".inputs") {
      model.inputs.insert(model.inputs.end(), tokens.begin() + 1, tokens.end());
      current = nullptr;
    } else if (head == ".outputs") {
      model.outputs.insert(model.outputs.end(), tokens.begin() + 1, tokens.end());
      current = nullptr;
    } else if (head == ".names") {
      if (tokens.size() < 2) throw std::runtime_error("BLIF: .names without signals");
      NamesNode node;
      node.fanins.assign(tokens.begin() + 1, tokens.end() - 1);
      current = &model.nodes.emplace(tokens.back(), std::move(node)).first->second;
    } else if (head == ".latch") {
      throw std::runtime_error("BLIF: sequential models are not supported");
    } else if (head == ".end") {
      break;
    } else if (head[0] == '.') {
      current = nullptr;  // ignore unknown directives
    } else {
      if (current == nullptr) throw std::runtime_error("BLIF: cover row outside .names");
      if (tokens.size() == 1 && current->fanins.empty()) {
        current->rows.push_back(tokens[0]);
      } else if (tokens.size() == 2) {
        if (tokens[0].size() != current->fanins.size()) {
          throw std::runtime_error("BLIF: cover row width mismatch: " + line);
        }
        current->rows.push_back(tokens[0] + " " + tokens[1]);
      } else {
        throw std::runtime_error("BLIF: malformed cover row: " + line);
      }
    }
  }
  return model;
}

class BlifBuilder {
 public:
  BlifBuilder(const BlifModel& model, Netlist& net) : model_(model), net_(net) {
    for (const std::string& name : model.inputs) signals_[name] = net_.add_input(name);
  }

  SignalId build(const std::string& name) {
    if (const auto it = signals_.find(name); it != signals_.end()) return it->second;
    if (building_.count(name) != 0) {
      throw std::runtime_error("BLIF: combinational cycle through " + name);
    }
    const auto node_it = model_.nodes.find(name);
    if (node_it == model_.nodes.end()) {
      throw std::runtime_error("BLIF: undriven signal " + name);
    }
    building_.insert(name);
    const SignalId sig = build_names(node_it->second);
    building_.erase(name);
    signals_[name] = sig;
    return sig;
  }

 private:
  SignalId build_names(const NamesNode& node) {
    std::vector<SignalId> fanins;
    fanins.reserve(node.fanins.size());
    for (const std::string& f : node.fanins) fanins.push_back(build(f));

    if (node.fanins.empty()) {
      // Constant: a "1" row means const1, no rows means const0.
      return net_.get_const(!node.rows.empty());
    }

    bool out_value = true;
    std::vector<std::string> planes;
    for (const std::string& row : node.rows) {
      const auto space = row.find(' ');
      if (space == std::string::npos) throw std::runtime_error("BLIF: bad row " + row);
      planes.push_back(row.substr(0, space));
      out_value = row.substr(space + 1) == "1";
    }

    SignalId sum = net_.get_const(false);
    for (const std::string& plane : planes) {
      SignalId product = net_.get_const(true);
      for (std::size_t i = 0; i < plane.size(); ++i) {
        if (plane[i] == '1') {
          product = net_.add_and(product, fanins[i]);
        } else if (plane[i] == '0') {
          product = net_.add_and(product, net_.add_not(fanins[i]));
        }
      }
      sum = net_.add_or(sum, product);
    }
    // Off-set cover: the rows describe where the output is 0.
    return out_value ? sum : net_.add_not(sum);
  }

  const BlifModel& model_;
  Netlist& net_;
  std::map<std::string, SignalId> signals_;
  std::set<std::string> building_;
};

}  // namespace

Netlist read_blif(std::istream& in) {
  const BlifModel model = parse_structure(in);
  Netlist net;
  BlifBuilder builder(model, net);
  for (const std::string& out : model.outputs) net.add_output(out, builder.build(out));
  return net;
}

Netlist read_blif_string(const std::string& text) {
  std::istringstream ss(text);
  return read_blif(ss);
}

Netlist load_blif(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("BLIF: cannot open " + path);
  return read_blif(in);
}

}  // namespace bidec
