// BLIF reader/writer for combinational netlists. The decomposition results
// are exported in BLIF like the original BI-DECOMP program ("write the
// results into a BLIF file"). The reader accepts general .names covers
// (any fanin count, on-set or off-set covers) and rebuilds them from
// two-input gates, so written files round-trip.
#ifndef BIDEC_IO_BLIF_H
#define BIDEC_IO_BLIF_H

#include <iosfwd>
#include <string>

#include "netlist/netlist.h"

namespace bidec {

/// Serialize a netlist as BLIF with model name `model`.
[[nodiscard]] std::string write_blif(const Netlist& net, const std::string& model);
void save_blif(const Netlist& net, const std::string& model, const std::string& path);

/// Parse a combinational BLIF model into a netlist (multi-input .names
/// covers are decomposed into trees of two-input gates). Throws
/// std::runtime_error on latches or malformed input.
[[nodiscard]] Netlist read_blif(std::istream& in);
[[nodiscard]] Netlist read_blif_string(const std::string& text);
[[nodiscard]] Netlist load_blif(const std::string& path);

}  // namespace bidec

#endif  // BIDEC_IO_BLIF_H
