#include "io/pla.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace bidec {

namespace {
/// Two statements: GCC 12's -Wrestrict misfires on `prefix +
/// std::to_string(i)` once the string operator+ is inlined.
std::string numbered_name(const char* prefix, std::size_t i) {
  std::string s = prefix;
  s += std::to_string(i);
  return s;
}
}  // namespace

namespace {

std::vector<std::string> split_tokens(const std::string& line) {
  std::istringstream ss(line);
  std::vector<std::string> tokens;
  std::string tok;
  while (ss >> tok) tokens.push_back(tok);
  return tokens;
}

}  // namespace

PlaFile PlaFile::parse(std::istream& in) {
  PlaFile pla;
  bool saw_i = false, saw_o = false;
  std::string line;
  while (std::getline(in, line)) {
    // Strip comments.
    if (const auto pos = line.find('#'); pos != std::string::npos) line.erase(pos);
    const std::vector<std::string> tokens = split_tokens(line);
    if (tokens.empty()) continue;
    const std::string& head = tokens.front();
    if (head == ".i") {
      if (tokens.size() != 2) throw std::runtime_error("PLA: malformed .i");
      pla.num_inputs = static_cast<unsigned>(std::stoul(tokens[1]));
      saw_i = true;
    } else if (head == ".o") {
      if (tokens.size() != 2) throw std::runtime_error("PLA: malformed .o");
      pla.num_outputs = static_cast<unsigned>(std::stoul(tokens[1]));
      saw_o = true;
    } else if (head == ".p") {
      // cube-count hint; rows are counted as parsed
    } else if (head == ".ilb") {
      pla.input_names.assign(tokens.begin() + 1, tokens.end());
    } else if (head == ".ob") {
      pla.output_names.assign(tokens.begin() + 1, tokens.end());
    } else if (head == ".type") {
      if (tokens.size() != 2) throw std::runtime_error("PLA: malformed .type");
      if (tokens[1] == "f") {
        pla.type = Type::kF;
      } else if (tokens[1] == "fd") {
        pla.type = Type::kFD;
      } else if (tokens[1] == "fr") {
        pla.type = Type::kFR;
      } else {
        throw std::runtime_error("PLA: unsupported .type " + tokens[1]);
      }
    } else if (head == ".e" || head == ".end") {
      break;
    } else if (head[0] == '.') {
      // Unknown directive: ignore (matches espresso's permissiveness).
    } else {
      if (!saw_i || !saw_o) throw std::runtime_error("PLA: cube before .i/.o");
      std::string in_part, out_part;
      if (tokens.size() == 2) {
        in_part = tokens[0];
        out_part = tokens[1];
      } else if (tokens.size() == 1 && tokens[0].size() == pla.num_inputs + pla.num_outputs) {
        in_part = tokens[0].substr(0, pla.num_inputs);
        out_part = tokens[0].substr(pla.num_inputs);
      } else {
        throw std::runtime_error("PLA: malformed cube line: " + line);
      }
      if (in_part.size() != pla.num_inputs || out_part.size() != pla.num_outputs) {
        throw std::runtime_error("PLA: cube width mismatch: " + line);
      }
      for (const char c : in_part) {
        if (c != '0' && c != '1' && c != '-') {
          throw std::runtime_error("PLA: bad input character in: " + line);
        }
      }
      for (char& c : out_part) {
        if (c == '~') c = '0';  // espresso alias
        if (c != '0' && c != '1' && c != '-') {
          throw std::runtime_error("PLA: bad output character in: " + line);
        }
      }
      pla.rows.push_back(Row{std::move(in_part), std::move(out_part)});
    }
  }
  if (!saw_i || !saw_o) throw std::runtime_error("PLA: missing .i or .o");
  return pla;
}

PlaFile PlaFile::parse_string(const std::string& text) {
  std::istringstream ss(text);
  return parse(ss);
}

PlaFile PlaFile::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("PLA: cannot open " + path);
  return parse(in);
}

std::string PlaFile::write() const {
  std::ostringstream out;
  out << ".i " << num_inputs << "\n.o " << num_outputs << "\n";
  if (!input_names.empty()) {
    out << ".ilb";
    for (const std::string& n : input_names) out << ' ' << n;
    out << "\n";
  }
  if (!output_names.empty()) {
    out << ".ob";
    for (const std::string& n : output_names) out << ' ' << n;
    out << "\n";
  }
  switch (type) {
    case Type::kF: out << ".type f\n"; break;
    case Type::kFD: out << ".type fd\n"; break;
    case Type::kFR: out << ".type fr\n"; break;
  }
  out << ".p " << rows.size() << "\n";
  for (const Row& row : rows) out << row.inputs << ' ' << row.outputs << "\n";
  out << ".e\n";
  return out.str();
}

void PlaFile::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("PLA: cannot write " + path);
  out << write();
}

std::string PlaFile::input_name(unsigned i) const {
  return i < input_names.size() ? input_names[i] : numbered_name("in", i);
}

std::string PlaFile::output_name(unsigned i) const {
  return i < output_names.size() ? output_names[i] : numbered_name("out", i);
}

namespace {

Bdd cube_bdd(BddManager& mgr, const std::string& inputs) {
  CubeLits lits(inputs.size(), -1);
  for (std::size_t v = 0; v < inputs.size(); ++v) {
    if (inputs[v] == '0') lits[v] = 0;
    if (inputs[v] == '1') lits[v] = 1;
  }
  return mgr.make_cube(lits);
}

}  // namespace

Bdd PlaFile::on_set(BddManager& mgr, unsigned o) const {
  Bdd sum = mgr.bdd_false();
  for (const Row& row : rows) {
    if (row.outputs[o] == '1') sum |= cube_bdd(mgr, row.inputs);
  }
  return sum;
}

Bdd PlaFile::dc_set(BddManager& mgr, unsigned o) const {
  Bdd sum = mgr.bdd_false();
  for (const Row& row : rows) {
    if (row.outputs[o] == '-') sum |= cube_bdd(mgr, row.inputs);
  }
  return sum;
}

std::vector<Isf> PlaFile::to_isfs(BddManager& mgr) const {
  if (mgr.num_vars() < num_inputs) {
    throw std::invalid_argument("PlaFile::to_isfs: manager has too few variables");
  }
  std::vector<Isf> result;
  result.reserve(num_outputs);
  for (unsigned o = 0; o < num_outputs; ++o) {
    const Bdd on = on_set(mgr, o);
    switch (type) {
      case Type::kF:
        result.emplace_back(on, ~on);
        break;
      case Type::kFD: {
        const Bdd dc = dc_set(mgr, o);
        result.push_back(Isf::from_on_dc(on, dc));
        break;
      }
      case Type::kFR: {
        Bdd off = mgr.bdd_false();
        for (const Row& row : rows) {
          if (row.outputs[o] == '0') off |= cube_bdd(mgr, row.inputs);
        }
        result.emplace_back(on - off, off);
        break;
      }
    }
  }
  return result;
}

}  // namespace bidec
