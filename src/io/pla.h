// Espresso-format PLA files: the input format of the paper's experiments
// ("Both programs used the PLA input files"). Supports types f, fd and fr;
// converts rows to per-output ISFs over a shared BDD manager.
#ifndef BIDEC_IO_PLA_H
#define BIDEC_IO_PLA_H

#include <iosfwd>
#include <string>
#include <vector>

#include "isf/isf.h"

namespace bidec {

struct PlaFile {
  /// Output-plane semantics (espresso .type directive).
  enum class Type {
    kF,   ///< '1' = on-set; everything else off
    kFD,  ///< '1' = on-set, '-' = don't-care (default)
    kFR,  ///< '1' = on-set, '0' = off-set; rest don't-care
  };

  struct Row {
    std::string inputs;   ///< one char per input: '0', '1' or '-'
    std::string outputs;  ///< one char per output: '0', '1', '-' (or '~')
  };

  unsigned num_inputs = 0;
  unsigned num_outputs = 0;
  Type type = Type::kFD;
  std::vector<std::string> input_names;   ///< empty if the file had no .ilb
  std::vector<std::string> output_names;  ///< empty if the file had no .ob
  std::vector<Row> rows;

  /// Parse espresso PLA text. Throws std::runtime_error on malformed input.
  [[nodiscard]] static PlaFile parse(std::istream& in);
  [[nodiscard]] static PlaFile parse_string(const std::string& text);
  [[nodiscard]] static PlaFile load(const std::string& path);

  /// Serialize back to PLA text.
  [[nodiscard]] std::string write() const;
  void save(const std::string& path) const;

  /// Input name for position i ("in<i>" when unnamed), same for outputs.
  [[nodiscard]] std::string input_name(unsigned i) const;
  [[nodiscard]] std::string output_name(unsigned i) const;

  /// Convert to one ISF per output over `mgr` (which must have at least
  /// num_inputs variables; input i = BDD variable i).
  [[nodiscard]] std::vector<Isf> to_isfs(BddManager& mgr) const;

  /// The on-set cover of output `o` as a BDD (ignoring don't-cares).
  [[nodiscard]] Bdd on_set(BddManager& mgr, unsigned o) const;
  /// The don't-care cover of output `o` as a BDD.
  [[nodiscard]] Bdd dc_set(BddManager& mgr, unsigned o) const;
};

}  // namespace bidec

#endif  // BIDEC_IO_PLA_H
