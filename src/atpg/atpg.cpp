#include "atpg/atpg.h"

#include <random>
#include <stdexcept>

#include "verify/verifier.h"

namespace bidec {

std::vector<Fault> enumerate_faults(const Netlist& net) {
  std::vector<Fault> faults;
  for (const SignalId id : net.reachable_topo_order()) {
    const Netlist::Node& n = net.node(id);
    if (n.type == GateType::kConst0 || n.type == GateType::kConst1) continue;
    for (const bool v : {false, true}) faults.push_back(Fault{id, -1, v});
    const unsigned arity = gate_arity(n.type);
    for (unsigned pin = 0; pin < arity; ++pin) {
      for (const bool v : {false, true}) {
        faults.push_back(Fault{id, static_cast<int>(pin), v});
      }
    }
  }
  return faults;
}

std::vector<std::uint64_t> simulate_with_fault(const Netlist& net,
                                               const std::vector<std::uint64_t>& in_words,
                                               const Fault& fault) {
  if (in_words.size() != net.num_inputs()) {
    throw std::invalid_argument("simulate_with_fault: wrong number of input words");
  }
  std::vector<std::uint64_t> value(net.num_nodes(), 0);
  for (std::size_t i = 0; i < net.num_inputs(); ++i) value[net.inputs()[i]] = in_words[i];
  const std::uint64_t stuck = fault.stuck_value ? ~std::uint64_t{0} : 0;
  for (SignalId id = 0; id < net.num_nodes(); ++id) {
    const Netlist::Node& n = net.node(id);
    std::uint64_t a = n.fanin0 != kNoSignal ? value[n.fanin0] : 0;
    std::uint64_t b = n.fanin1 != kNoSignal ? value[n.fanin1] : 0;
    if (id == fault.node) {
      if (fault.pin == 0) a = stuck;
      if (fault.pin == 1) b = stuck;
    }
    std::uint64_t out = n.type == GateType::kInput ? value[id] : gate_eval64(n.type, a, b);
    if (id == fault.node && fault.pin < 0) out = stuck;
    value[id] = out;
  }
  std::vector<std::uint64_t> out;
  out.reserve(net.num_outputs());
  for (std::size_t o = 0; o < net.num_outputs(); ++o) {
    out.push_back(value[net.output_signal(o)]);
  }
  return out;
}

std::vector<Bdd> faulty_netlist_to_bdds(BddManager& mgr, const Netlist& net,
                                        const Fault& fault) {
  std::vector<Bdd> value(net.num_nodes());
  for (std::size_t i = 0; i < net.num_inputs(); ++i) {
    value[net.inputs()[i]] = mgr.var(static_cast<unsigned>(i));
  }
  const auto stuck_bdd = [&] {
    return fault.stuck_value ? mgr.bdd_true() : mgr.bdd_false();
  };
  for (const SignalId id : net.reachable_topo_order()) {
    const Netlist::Node& n = net.node(id);
    Bdd a = n.fanin0 != kNoSignal ? value[n.fanin0] : Bdd{};
    Bdd b = n.fanin1 != kNoSignal ? value[n.fanin1] : Bdd{};
    if (id == fault.node) {
      if (fault.pin == 0) a = stuck_bdd();
      if (fault.pin == 1) b = stuck_bdd();
    }
    switch (n.type) {
      case GateType::kInput: break;
      case GateType::kConst0: value[id] = mgr.bdd_false(); break;
      case GateType::kConst1: value[id] = mgr.bdd_true(); break;
      case GateType::kBuf: value[id] = a; break;
      case GateType::kNot: value[id] = ~a; break;
      case GateType::kAnd: value[id] = a & b; break;
      case GateType::kOr: value[id] = a | b; break;
      case GateType::kXor: value[id] = a ^ b; break;
      case GateType::kNand: value[id] = ~(a & b); break;
      case GateType::kNor: value[id] = ~(a | b); break;
      case GateType::kXnor: value[id] = ~(a ^ b); break;
    }
    if (id == fault.node && fault.pin < 0) value[id] = stuck_bdd();
  }
  std::vector<Bdd> outputs;
  outputs.reserve(net.num_outputs());
  for (std::size_t o = 0; o < net.num_outputs(); ++o) {
    outputs.push_back(value[net.output_signal(o)]);
  }
  return outputs;
}

namespace {

/// Rebuild the netlist with the faulted line tied to the stuck value; with a
/// redundant fault this is functionality-preserving, and the constant
/// folding in add_gate deletes the logic the line was masking.
Netlist apply_stuck(const Netlist& net, const Fault& fault) {
  Netlist fresh;
  std::vector<SignalId> map(net.num_nodes(), kNoSignal);
  for (std::size_t i = 0; i < net.num_inputs(); ++i) {
    map[net.inputs()[i]] = fresh.add_input(net.input_name(i));
  }
  for (const SignalId id : net.reachable_topo_order()) {
    const Netlist::Node& n = net.node(id);
    SignalId s = kNoSignal;
    switch (n.type) {
      case GateType::kInput:
        s = map[id];
        break;
      case GateType::kConst0:
        s = fresh.get_const(false);
        break;
      case GateType::kConst1:
        s = fresh.get_const(true);
        break;
      default: {
        SignalId a = n.fanin0 != kNoSignal ? map[n.fanin0] : kNoSignal;
        SignalId b = n.fanin1 != kNoSignal ? map[n.fanin1] : kNoSignal;
        if (id == fault.node) {
          if (fault.pin == 0) a = fresh.get_const(fault.stuck_value);
          if (fault.pin == 1) b = fresh.get_const(fault.stuck_value);
        }
        s = fresh.add_gate(n.type, a, b);
        break;
      }
    }
    if (id == fault.node && fault.pin < 0) s = fresh.get_const(fault.stuck_value);
    map[id] = s;
  }
  for (std::size_t o = 0; o < net.num_outputs(); ++o) {
    fresh.add_output(net.output_name(o), map[net.output_signal(o)]);
  }
  return fresh;
}

}  // namespace

std::size_t remove_redundancies(BddManager& mgr, Netlist& net) {
  std::size_t removed = 0;
  for (;;) {
    const AtpgResult res = run_atpg(mgr, net, /*random_words=*/16);
    if (res.redundant == 0) return removed;
    // Remove one redundancy at a time: fixing one line can make other
    // previously-redundant faults testable (or vice versa).
    net = apply_stuck(net, res.redundant_faults.front());
    ++removed;
  }
}

AtpgResult run_atpg(BddManager& mgr, const Netlist& net, unsigned random_words,
                    std::uint64_t seed) {
  AtpgResult result;
  const std::vector<Fault> faults = enumerate_faults(net);
  result.total_faults = faults.size();

  // Phase 1: random-pattern fault simulation.
  std::mt19937_64 rng(seed);
  std::vector<bool> detected(faults.size(), false);
  for (unsigned round = 0; round < random_words; ++round) {
    std::vector<std::uint64_t> in_words(net.num_inputs());
    for (std::uint64_t& w : in_words) w = rng();
    const std::vector<std::uint64_t> good = net.simulate64(in_words);
    for (std::size_t f = 0; f < faults.size(); ++f) {
      if (detected[f]) continue;
      const std::vector<std::uint64_t> bad = simulate_with_fault(net, in_words, faults[f]);
      for (std::size_t o = 0; o < good.size(); ++o) {
        if (good[o] != bad[o]) {
          detected[f] = true;
          ++result.detected_by_random;
          break;
        }
      }
    }
  }

  // Phase 2: exact BDD-based generation for the survivors.
  const std::vector<Bdd> good = netlist_to_bdds(mgr, net);
  for (std::size_t f = 0; f < faults.size(); ++f) {
    if (detected[f]) continue;
    const std::vector<Bdd> bad = faulty_netlist_to_bdds(mgr, net, faults[f]);
    Bdd diff = mgr.bdd_false();
    for (std::size_t o = 0; o < good.size(); ++o) diff |= good[o] ^ bad[o];
    if (diff.is_false()) {
      ++result.redundant;
      result.redundant_faults.push_back(faults[f]);
    } else {
      ++result.detected_by_exact;
      result.generated_tests.emplace_back(faults[f], mgr.pick_one_minterm(diff));
    }
  }
  return result;
}

}  // namespace bidec
