// Single-stuck-at test infrastructure: fault enumeration, 64-way parallel
// fault simulation with random patterns, and exact BDD-based test generation
// (a fault is provably redundant iff the faulty and good functions agree on
// every input). Used to validate Theorem 5: netlists produced by the
// bi-decomposition are 100% testable under the single stuck-at fault model.
#ifndef BIDEC_ATPG_ATPG_H
#define BIDEC_ATPG_ATPG_H

#include <cstdint>
#include <vector>

#include "bdd/bdd.h"
#include "netlist/netlist.h"

namespace bidec {

struct Fault {
  SignalId node = 0;
  /// -1 = fault on the gate output (stem); 0/1 = fault on that input pin.
  int pin = -1;
  bool stuck_value = false;
};

/// All single stuck-at faults on the cone reachable from the outputs:
/// one SA0/SA1 pair per gate output (including primary inputs) and per gate
/// input pin.
[[nodiscard]] std::vector<Fault> enumerate_faults(const Netlist& net);

/// Simulate 64 stacked patterns with `fault` injected.
[[nodiscard]] std::vector<std::uint64_t> simulate_with_fault(
    const Netlist& net, const std::vector<std::uint64_t>& in_words, const Fault& fault);

/// Build the faulty output functions as BDDs.
[[nodiscard]] std::vector<Bdd> faulty_netlist_to_bdds(BddManager& mgr, const Netlist& net,
                                                      const Fault& fault);

struct AtpgResult {
  std::size_t total_faults = 0;
  std::size_t detected_by_random = 0;
  std::size_t detected_by_exact = 0;
  std::size_t redundant = 0;
  std::vector<Fault> redundant_faults;
  /// One generated test vector per exactly-detected fault.
  std::vector<std::pair<Fault, std::vector<bool>>> generated_tests;

  [[nodiscard]] std::size_t detected() const {
    return detected_by_random + detected_by_exact;
  }
  [[nodiscard]] double coverage() const {
    return total_faults == 0 ? 1.0
                             : static_cast<double>(detected()) /
                                   static_cast<double>(total_faults);
  }
};

/// Full flow: random-pattern fault simulation (random_words words of 64
/// patterns each), then exact BDD-based generation for the survivors.
[[nodiscard]] AtpgResult run_atpg(BddManager& mgr, const Netlist& net,
                                  unsigned random_words = 16,
                                  std::uint64_t seed = 0x5eed);

/// Classic redundancy removal: while some fault is provably redundant,
/// replace the faulted line by the stuck value (functionality is unchanged
/// by definition of redundancy) and let constant folding shrink the
/// netlist. Returns the number of removed redundancies. This implements the
/// ATPG-integration direction the paper lists as future work; bi-decomposed
/// netlists need it only for EXOR components derived with don't-cares (see
/// DESIGN.md).
std::size_t remove_redundancies(BddManager& mgr, Netlist& net);

}  // namespace bidec

#endif  // BIDEC_ATPG_ATPG_H
