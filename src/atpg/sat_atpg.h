// SAT-based test generation: the independent backend next to the exact
// BDD-based one in atpg.h. The good circuit is Tseitin-encoded once into an
// incremental CDCL solver; each fault then adds a faulty copy of only the
// fault's fanout cone (fanins outside the cone reuse the good circuit's
// variables) plus a miter over the affected outputs, and the miter is
// activated with a solver assumption — so learned clauses about the good
// circuit are shared across the whole fault list. A satisfying assignment
// is a test vector; an unsatisfiable miter proves the fault redundant.
#ifndef BIDEC_ATPG_SAT_ATPG_H
#define BIDEC_ATPG_SAT_ATPG_H

#include <cstdint>
#include <vector>

#include "atpg/atpg.h"
#include "netlist/netlist.h"
#include "sat/tseitin.h"

namespace bidec {

enum class FaultClass : std::uint8_t {
  kTestable,   ///< the returned vector distinguishes faulty from good
  kRedundant,  ///< provably untestable (miter UNSAT)
  kAborted,    ///< conflict budget exhausted before a verdict
};

struct SatFaultResult {
  FaultClass cls = FaultClass::kAborted;
  std::vector<bool> test;  ///< one value per primary input when kTestable
};

class SatAtpg {
 public:
  /// Encode the good circuit of `net`. `conflict_budget` bounds the solver
  /// effort per fault (0 = decide every fault exactly).
  explicit SatAtpg(const Netlist& net, std::uint64_t conflict_budget = 0);

  /// Classify one fault (and produce a test vector when testable).
  [[nodiscard]] SatFaultResult test_fault(const Fault& fault);

  [[nodiscard]] const sat::Solver::Stats& solver_stats() const noexcept {
    return solver_.stats();
  }

 private:
  const Netlist& net_;
  sat::Solver solver_;
  sat::TseitinEncoder enc_;
  std::vector<sat::Var> in_vars_;
  std::vector<sat::Lit> good_lit_;      ///< per netlist node, good value
  std::vector<SignalId> topo_;          ///< reachable cone, inputs first
};

/// Aggregate over the complete single-stuck-at fault list of `net`.
struct SatAtpgResult {
  std::size_t total_faults = 0;
  std::size_t testable = 0;
  std::size_t redundant = 0;
  std::size_t aborted = 0;
  std::vector<Fault> redundant_faults;
  std::vector<std::pair<Fault, std::vector<bool>>> generated_tests;
};

[[nodiscard]] SatAtpgResult run_sat_atpg(const Netlist& net,
                                         std::uint64_t conflict_budget = 0);

}  // namespace bidec

#endif  // BIDEC_ATPG_SAT_ATPG_H
