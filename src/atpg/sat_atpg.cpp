#include "atpg/sat_atpg.h"

#include <stdexcept>

namespace bidec {

using sat::Lit;
using sat::Solver;
using sat::Var;

SatAtpg::SatAtpg(const Netlist& net, std::uint64_t conflict_budget)
    : net_(net), enc_(solver_), topo_(net.reachable_topo_order()) {
  solver_.set_conflict_budget(conflict_budget);
  in_vars_ = enc_.add_vars(net.num_inputs());
  good_lit_.assign(net.num_nodes(), sat::kUndefLit);
  for (const SignalId id : topo_) {
    const Netlist::Node& n = net.node(id);
    switch (n.type) {
      case GateType::kInput:
        good_lit_[id] = sat::mk_lit(in_vars_[net.input_index(id)]);
        break;
      case GateType::kConst0:
        good_lit_[id] = enc_.constant(false);
        break;
      case GateType::kConst1:
        good_lit_[id] = enc_.constant(true);
        break;
      default:
        good_lit_[id] = enc_.encode_gate(
            n.type, good_lit_[n.fanin0],
            n.fanin1 != kNoSignal ? good_lit_[n.fanin1] : sat::kUndefLit);
        break;
    }
  }
}

SatFaultResult SatAtpg::test_fault(const Fault& fault) {
  if (fault.node >= net_.num_nodes()) {
    throw std::invalid_argument("test_fault: fault node out of range");
  }
  // Faulty copy of the fanout cone only: every node downstream of the fault
  // site gets a fresh literal; fanins outside the cone keep the shared good
  // encoding (this mirrors simulate_with_fault's semantics exactly, pin
  // faults included).
  std::vector<Lit> faulty(net_.num_nodes(), sat::kUndefLit);
  std::vector<bool> affected(net_.num_nodes(), false);
  const Lit stuck = enc_.constant(fault.stuck_value);
  for (const SignalId id : topo_) {
    const Netlist::Node& n = net_.node(id);
    const bool is_site = id == fault.node;
    const bool fanin_affected =
        (n.fanin0 != kNoSignal && affected[n.fanin0]) ||
        (n.fanin1 != kNoSignal && affected[n.fanin1]);
    if (!is_site && !fanin_affected) continue;
    affected[id] = true;
    if (is_site && fault.pin < 0) {
      faulty[id] = stuck;
      continue;
    }
    const auto pick = [&](SignalId f) {
      return affected[f] ? faulty[f] : good_lit_[f];
    };
    Lit a = n.fanin0 != kNoSignal ? pick(n.fanin0) : sat::kUndefLit;
    Lit b = n.fanin1 != kNoSignal ? pick(n.fanin1) : sat::kUndefLit;
    if (is_site) {
      if (fault.pin == 0) a = stuck;
      if (fault.pin == 1) b = stuck;
    }
    faulty[id] = enc_.encode_gate(n.type, a, b);
  }

  // Miter over the affected outputs, gated by a fresh activation literal so
  // the clauses are disabled (not deleted) once this fault is classified.
  std::vector<Lit> activation_clause;
  const Lit act = sat::mk_lit(enc_.add_var());
  activation_clause.push_back(~act);
  for (std::size_t o = 0; o < net_.num_outputs(); ++o) {
    const SignalId sig = net_.output_signal(o);
    if (!affected[sig]) continue;
    activation_clause.push_back(enc_.encode_xor(good_lit_[sig], faulty[sig]));
  }
  SatFaultResult result;
  if (activation_clause.size() == 1) {
    // Fault effect cannot reach any primary output.
    result.cls = FaultClass::kRedundant;
    return result;
  }
  solver_.add_clause(std::move(activation_clause));
  switch (solver_.solve({act})) {
    case Solver::Result::kSat:
      result.cls = FaultClass::kTestable;
      result.test.reserve(net_.num_inputs());
      for (const Var v : in_vars_) result.test.push_back(solver_.model_value(v));
      break;
    case Solver::Result::kUnsat:
      result.cls = FaultClass::kRedundant;
      break;
    case Solver::Result::kUnknown:
      result.cls = FaultClass::kAborted;
      break;
  }
  solver_.add_clause({~act});  // retire this fault's miter
  return result;
}

SatAtpgResult run_sat_atpg(const Netlist& net, std::uint64_t conflict_budget) {
  SatAtpg atpg(net, conflict_budget);
  SatAtpgResult result;
  const std::vector<Fault> faults = enumerate_faults(net);
  result.total_faults = faults.size();
  for (const Fault& fault : faults) {
    SatFaultResult r = atpg.test_fault(fault);
    switch (r.cls) {
      case FaultClass::kTestable:
        ++result.testable;
        result.generated_tests.emplace_back(fault, std::move(r.test));
        break;
      case FaultClass::kRedundant:
        ++result.redundant;
        result.redundant_faults.push_back(fault);
        break;
      case FaultClass::kAborted:
        ++result.aborted;
        break;
    }
  }
  return result;
}

}  // namespace bidec
