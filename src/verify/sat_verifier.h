// SAT-based verification: the independent second opinion next to the
// BDD-based verifier. Each check is a miter solved by the CDCL engine in
// src/sat/ — a netlist output is wrong iff some input assignment violates
// Q <= f <= ~R (or distinguishes two netlists), i.e. iff the corresponding
// CNF is satisfiable. The checks share one incremental solver per call and
// select the output/bound under test with assumptions.
//
// sat_verify_against_pla is fully BDD-free: the bounds come straight from
// the PLA cover rows, so an agreement with verify_against_isfs really does
// cross-check the two reasoning engines end to end.
#ifndef BIDEC_VERIFY_SAT_VERIFIER_H
#define BIDEC_VERIFY_SAT_VERIFIER_H

#include <span>

#include "io/pla.h"
#include "isf/isf.h"
#include "netlist/netlist.h"
#include "proof/policy.h"
#include "sat/solver.h"
#include "verify/verifier.h"

namespace bidec {

// Every entry point takes an optional `stats` out-param: when non-null, the
// solver counters of the call's private CDCL instance are folded into it
// with operator+=, so one accumulator can span several verifier calls.

/// Knobs for the proof-carrying verifier overloads. A miter check passes by
/// being UNSAT, so under ProofPolicy::kCheck every passing bound/miter is
/// re-validated against the solver's DRAT log by the independent checker
/// before the verifier reports "ok"; a rejected proof throws
/// proof::ProofCheckError — that is an engine bug, reported with the same
/// severity as a bdd/sat verdict disagreement, never a silent pass.
struct SatVerifyOptions {
  proof::ProofPolicy proof = proof::ProofPolicy::kOff;
  proof::ProofStats* proof_stats = nullptr;   ///< optional accumulator
  sat::SolverStats* solver_stats = nullptr;   ///< optional accumulator
};

/// Check every output of `net` against the PLA specification: Q <= f <= ~R
/// with (Q, R) taken from the cover rows under the file's .type semantics
/// (mirroring PlaFile::to_isfs, including the on-minus-dc rule of fd/fr).
[[nodiscard]] VerifyResult sat_verify_against_pla(const Netlist& net, const PlaFile& pla,
                                                  sat::SolverStats* stats = nullptr);

/// Check every output against an ISF interval. The CNF for Q and R is the
/// Tseitin encoding of their BDDs, so this variant shares the *structure*
/// with the BDD substrate but none of the reasoning.
[[nodiscard]] VerifyResult sat_verify_against_isfs(const Netlist& net,
                                                   std::span<const Isf> spec,
                                                   sat::SolverStats* stats = nullptr);

/// Combinational equivalence of two netlists with identical interfaces
/// (per-output XOR miters over shared input variables).
[[nodiscard]] VerifyResult sat_verify_equivalent(const Netlist& a, const Netlist& b,
                                                 sat::SolverStats* stats = nullptr);

// Proof-carrying overloads (see SatVerifyOptions).
[[nodiscard]] VerifyResult sat_verify_against_pla(const Netlist& net,
                                                  const PlaFile& pla,
                                                  const SatVerifyOptions& opt);
[[nodiscard]] VerifyResult sat_verify_against_isfs(const Netlist& net,
                                                   std::span<const Isf> spec,
                                                   const SatVerifyOptions& opt);
[[nodiscard]] VerifyResult sat_verify_equivalent(const Netlist& a,
                                                 const Netlist& b,
                                                 const SatVerifyOptions& opt);

/// Outcome of running the selected engine(s) on one netlist/spec pair.
struct DualVerifyResult {
  bool bdd_ran = false;
  bool sat_ran = false;
  VerifyResult bdd;
  VerifyResult sat;

  /// Every engine that ran accepted the netlist.
  [[nodiscard]] bool ok() const noexcept {
    return (!bdd_ran || bdd.ok) && (!sat_ran || sat.ok);
  }
  /// False only when both engines ran and returned different verdicts —
  /// that is a bug in one of the engines, not in the netlist.
  [[nodiscard]] bool agree() const noexcept {
    return !(bdd_ran && sat_ran) || bdd.ok == sat.ok;
  }
};

/// Dispatch on a VerifyEngine: run the BDD verifier and/or the SAT verifier
/// against the ISF specification. `mgr` must be the spec's manager.
[[nodiscard]] DualVerifyResult verify_with_engines(VerifyEngine engine, BddManager& mgr,
                                                   const Netlist& net,
                                                   std::span<const Isf> spec);
/// Proof-carrying variant: `opt` applies to the SAT side only (the BDD
/// verifier has no solver to certify).
[[nodiscard]] DualVerifyResult verify_with_engines(VerifyEngine engine, BddManager& mgr,
                                                   const Netlist& net,
                                                   std::span<const Isf> spec,
                                                   const SatVerifyOptions& opt);

}  // namespace bidec

#endif  // BIDEC_VERIFY_SAT_VERIFIER_H
