#include "verify/sat_verifier.h"

#include <stdexcept>

#include "proof/drat_check.h"
#include "proof/proof_log.h"
#include "sat/tseitin.h"

namespace bidec {

namespace {

using sat::Lit;
using sat::Solver;
using sat::TseitinEncoder;
using sat::Var;

VerifyResult result_from_failures(std::vector<std::size_t> failed) {
  VerifyResult res;
  if (!failed.empty()) {
    res.ok = false;
    res.first_failed_output = failed.front();
    res.failed_outputs = std::move(failed);
  }
  return res;
}

/// Arms one solver's proof log per SatVerifyOptions and re-validates every
/// UNSAT the verifier relies on. The checker is incremental over the call's
/// single growing log, so a run with many bounds pays once per verdict cone.
class ProofGuard {
 public:
  ProofGuard(Solver& solver, const SatVerifyOptions& opt) : opt_(opt) {
    if (opt_.proof != proof::ProofPolicy::kOff) {
      solver.set_proof_log(&log_);
    }
  }

  ~ProofGuard() {
    if (opt_.proof == proof::ProofPolicy::kOff ||
        opt_.proof_stats == nullptr) {
      return;
    }
    opt_.proof_stats->logged_inputs += log_.input_clauses();
    opt_.proof_stats->proof_clauses += log_.derived_clauses();
    opt_.proof_stats->deletions += log_.deletions();
  }

  ProofGuard(const ProofGuard&) = delete;
  ProofGuard& operator=(const ProofGuard&) = delete;

  /// Solve under assumptions and insist on a definite verdict: the verifier
  /// runs without a conflict budget, so kUnknown cannot happen. An UNSAT
  /// verdict is certified before the caller may treat the bound as passed.
  bool satisfiable(Solver& solver, std::initializer_list<Lit> assumptions) {
    const Solver::Result r = solver.solve(assumptions);
    if (r == Solver::Result::kUnknown) {
      throw std::runtime_error("sat verifier: solver returned unknown");
    }
    if (r == Solver::Result::kUnsat &&
        opt_.proof == proof::ProofPolicy::kCheck) {
      check_unsat({assumptions.begin(), assumptions.size()});
    }
    return r == Solver::Result::kSat;
  }

 private:
  void check_unsat(std::span<const Lit> assumptions) {
    const proof::CheckResult res = checker_.check(log_, assumptions);
    proof::ProofStats* ps = opt_.proof_stats;
    if (ps != nullptr) {
      ++ps->checked_unsat;
      ps->check_ms += res.check_ms;
      ps->trimmed_clauses += res.checked - checked_seen_;
      ps->core_inputs += res.core_inputs - core_seen_;
    }
    checked_seen_ = res.checked;
    core_seen_ = res.core_inputs;
    if (!res.valid) {
      if (ps != nullptr) ++ps->failed_checks;
      throw proof::ProofCheckError(
          "sat verifier: passing bound failed proof check: " + res.error);
    }
  }

  const SatVerifyOptions& opt_;
  proof::ProofLog log_;
  proof::DratChecker checker_;
  std::uint64_t checked_seen_ = 0;
  std::uint64_t core_seen_ = 0;
};

}  // namespace

VerifyResult sat_verify_against_pla(const Netlist& net, const PlaFile& pla,
                                    const SatVerifyOptions& opt) {
  if (pla.num_outputs != net.num_outputs() || pla.num_inputs != net.num_inputs()) {
    throw std::invalid_argument("sat_verify_against_pla: interface mismatch");
  }
  Solver solver;
  ProofGuard guard(solver, opt);
  TseitinEncoder enc(solver);
  const std::vector<Var> in = enc.add_vars(net.num_inputs());
  const std::vector<Lit> f = enc.encode_netlist(net, in);

  std::vector<std::size_t> failed;
  for (unsigned o = 0; o < pla.num_outputs; ++o) {
    const Lit on = enc.encode_cover(pla, in, o, '1');
    bool q_violated = false;
    bool r_violated = false;
    switch (pla.type) {
      case PlaFile::Type::kF:
        // Q = on, R = ~on.
        q_violated = guard.satisfiable(solver, {on, ~f[o]});
        r_violated = guard.satisfiable(solver, {~on, f[o]});
        break;
      case PlaFile::Type::kFD: {
        // Q = on - dc, R = ~(on | dc)  (matches Isf::from_on_dc).
        const Lit dc = enc.encode_cover(pla, in, o, '-');
        q_violated = guard.satisfiable(solver, {on, ~dc, ~f[o]});
        r_violated = guard.satisfiable(solver, {~on, ~dc, f[o]});
        break;
      }
      case PlaFile::Type::kFR: {
        // Q = on - off, R = off  (matches PlaFile::to_isfs).
        const Lit off = enc.encode_cover(pla, in, o, '0');
        q_violated = guard.satisfiable(solver, {on, ~off, ~f[o]});
        r_violated = guard.satisfiable(solver, {off, f[o]});
        break;
      }
    }
    if (q_violated || r_violated) failed.push_back(o);
  }
  if (opt.solver_stats != nullptr) *opt.solver_stats += solver.stats();
  return result_from_failures(std::move(failed));
}

VerifyResult sat_verify_against_isfs(const Netlist& net, std::span<const Isf> spec,
                                     const SatVerifyOptions& opt) {
  if (spec.size() != net.num_outputs()) {
    throw std::invalid_argument("sat_verify_against_isfs: output count mismatch");
  }
  Solver solver;
  ProofGuard guard(solver, opt);
  TseitinEncoder enc(solver);
  // BDD variables beyond the netlist inputs are unconstrained, which is
  // exactly existential quantification — the same semantics the BDD check
  // Q & ~f == 0 gives them.
  std::size_t num_in_vars = net.num_inputs();
  for (const Isf& isf : spec) {
    if (isf.is_valid()) {
      num_in_vars = std::max<std::size_t>(num_in_vars, isf.manager()->num_vars());
    }
  }
  const std::vector<Var> in = enc.add_vars(num_in_vars);
  const std::vector<Lit> f = enc.encode_netlist(net, in);

  std::vector<std::size_t> failed;
  for (std::size_t o = 0; o < spec.size(); ++o) {
    const Lit q = enc.encode_bdd(spec[o].q(), in);
    const Lit r = enc.encode_bdd(spec[o].r(), in);
    const bool q_violated = guard.satisfiable(solver, {q, ~f[o]});
    const bool r_violated = guard.satisfiable(solver, {r, f[o]});
    if (q_violated || r_violated) failed.push_back(o);
  }
  if (opt.solver_stats != nullptr) *opt.solver_stats += solver.stats();
  return result_from_failures(std::move(failed));
}

VerifyResult sat_verify_equivalent(const Netlist& a, const Netlist& b,
                                   const SatVerifyOptions& opt) {
  if (a.num_inputs() != b.num_inputs() || a.num_outputs() != b.num_outputs()) {
    throw std::invalid_argument("sat_verify_equivalent: interface mismatch");
  }
  Solver solver;
  ProofGuard guard(solver, opt);
  TseitinEncoder enc(solver);
  const std::vector<Var> in = enc.add_vars(a.num_inputs());
  const std::vector<Lit> fa = enc.encode_netlist(a, in);
  const std::vector<Lit> fb = enc.encode_netlist(b, in);

  std::vector<std::size_t> failed;
  for (std::size_t o = 0; o < fa.size(); ++o) {
    const Lit miter = enc.encode_xor(fa[o], fb[o]);
    if (guard.satisfiable(solver, {miter})) failed.push_back(o);
  }
  if (opt.solver_stats != nullptr) *opt.solver_stats += solver.stats();
  return result_from_failures(std::move(failed));
}

VerifyResult sat_verify_against_pla(const Netlist& net, const PlaFile& pla,
                                    sat::SolverStats* stats) {
  return sat_verify_against_pla(net, pla, SatVerifyOptions{.solver_stats = stats});
}

VerifyResult sat_verify_against_isfs(const Netlist& net, std::span<const Isf> spec,
                                     sat::SolverStats* stats) {
  return sat_verify_against_isfs(net, spec, SatVerifyOptions{.solver_stats = stats});
}

VerifyResult sat_verify_equivalent(const Netlist& a, const Netlist& b,
                                   sat::SolverStats* stats) {
  return sat_verify_equivalent(a, b, SatVerifyOptions{.solver_stats = stats});
}

DualVerifyResult verify_with_engines(VerifyEngine engine, BddManager& mgr,
                                     const Netlist& net, std::span<const Isf> spec,
                                     const SatVerifyOptions& opt) {
  DualVerifyResult res;
  if (engine == VerifyEngine::kBdd || engine == VerifyEngine::kBoth) {
    res.bdd = verify_against_isfs(mgr, net, spec);
    res.bdd_ran = true;
  }
  if (engine == VerifyEngine::kSat || engine == VerifyEngine::kBoth) {
    res.sat = sat_verify_against_isfs(net, spec, opt);
    res.sat_ran = true;
  }
  return res;
}

DualVerifyResult verify_with_engines(VerifyEngine engine, BddManager& mgr,
                                     const Netlist& net, std::span<const Isf> spec) {
  return verify_with_engines(engine, mgr, net, spec, SatVerifyOptions{});
}

}  // namespace bidec
