#include "verify/sat_verifier.h"

#include <stdexcept>

#include "sat/tseitin.h"

namespace bidec {

namespace {

using sat::Lit;
using sat::Solver;
using sat::TseitinEncoder;
using sat::Var;

VerifyResult result_from_failures(std::vector<std::size_t> failed) {
  VerifyResult res;
  if (!failed.empty()) {
    res.ok = false;
    res.first_failed_output = failed.front();
    res.failed_outputs = std::move(failed);
  }
  return res;
}

/// Solve under assumptions and insist on a definite verdict: the verifier
/// runs without a conflict budget, so kUnknown cannot happen.
bool satisfiable(Solver& solver, std::initializer_list<Lit> assumptions) {
  const Solver::Result r = solver.solve(assumptions);
  if (r == Solver::Result::kUnknown) {
    throw std::runtime_error("sat verifier: solver returned unknown");
  }
  return r == Solver::Result::kSat;
}

}  // namespace

VerifyResult sat_verify_against_pla(const Netlist& net, const PlaFile& pla,
                                    sat::SolverStats* stats) {
  if (pla.num_outputs != net.num_outputs() || pla.num_inputs != net.num_inputs()) {
    throw std::invalid_argument("sat_verify_against_pla: interface mismatch");
  }
  Solver solver;
  TseitinEncoder enc(solver);
  const std::vector<Var> in = enc.add_vars(net.num_inputs());
  const std::vector<Lit> f = enc.encode_netlist(net, in);

  std::vector<std::size_t> failed;
  for (unsigned o = 0; o < pla.num_outputs; ++o) {
    const Lit on = enc.encode_cover(pla, in, o, '1');
    bool q_violated = false;
    bool r_violated = false;
    switch (pla.type) {
      case PlaFile::Type::kF:
        // Q = on, R = ~on.
        q_violated = satisfiable(solver, {on, ~f[o]});
        r_violated = satisfiable(solver, {~on, f[o]});
        break;
      case PlaFile::Type::kFD: {
        // Q = on - dc, R = ~(on | dc)  (matches Isf::from_on_dc).
        const Lit dc = enc.encode_cover(pla, in, o, '-');
        q_violated = satisfiable(solver, {on, ~dc, ~f[o]});
        r_violated = satisfiable(solver, {~on, ~dc, f[o]});
        break;
      }
      case PlaFile::Type::kFR: {
        // Q = on - off, R = off  (matches PlaFile::to_isfs).
        const Lit off = enc.encode_cover(pla, in, o, '0');
        q_violated = satisfiable(solver, {on, ~off, ~f[o]});
        r_violated = satisfiable(solver, {off, f[o]});
        break;
      }
    }
    if (q_violated || r_violated) failed.push_back(o);
  }
  if (stats != nullptr) *stats += solver.stats();
  return result_from_failures(std::move(failed));
}

VerifyResult sat_verify_against_isfs(const Netlist& net, std::span<const Isf> spec,
                                     sat::SolverStats* stats) {
  if (spec.size() != net.num_outputs()) {
    throw std::invalid_argument("sat_verify_against_isfs: output count mismatch");
  }
  Solver solver;
  TseitinEncoder enc(solver);
  // BDD variables beyond the netlist inputs are unconstrained, which is
  // exactly existential quantification — the same semantics the BDD check
  // Q & ~f == 0 gives them.
  std::size_t num_in_vars = net.num_inputs();
  for (const Isf& isf : spec) {
    if (isf.is_valid()) {
      num_in_vars = std::max<std::size_t>(num_in_vars, isf.manager()->num_vars());
    }
  }
  const std::vector<Var> in = enc.add_vars(num_in_vars);
  const std::vector<Lit> f = enc.encode_netlist(net, in);

  std::vector<std::size_t> failed;
  for (std::size_t o = 0; o < spec.size(); ++o) {
    const Lit q = enc.encode_bdd(spec[o].q(), in);
    const Lit r = enc.encode_bdd(spec[o].r(), in);
    const bool q_violated = satisfiable(solver, {q, ~f[o]});
    const bool r_violated = satisfiable(solver, {r, f[o]});
    if (q_violated || r_violated) failed.push_back(o);
  }
  if (stats != nullptr) *stats += solver.stats();
  return result_from_failures(std::move(failed));
}

VerifyResult sat_verify_equivalent(const Netlist& a, const Netlist& b,
                                   sat::SolverStats* stats) {
  if (a.num_inputs() != b.num_inputs() || a.num_outputs() != b.num_outputs()) {
    throw std::invalid_argument("sat_verify_equivalent: interface mismatch");
  }
  Solver solver;
  TseitinEncoder enc(solver);
  const std::vector<Var> in = enc.add_vars(a.num_inputs());
  const std::vector<Lit> fa = enc.encode_netlist(a, in);
  const std::vector<Lit> fb = enc.encode_netlist(b, in);

  std::vector<std::size_t> failed;
  for (std::size_t o = 0; o < fa.size(); ++o) {
    const Lit miter = enc.encode_xor(fa[o], fb[o]);
    if (satisfiable(solver, {miter})) failed.push_back(o);
  }
  if (stats != nullptr) *stats += solver.stats();
  return result_from_failures(std::move(failed));
}

DualVerifyResult verify_with_engines(VerifyEngine engine, BddManager& mgr,
                                     const Netlist& net, std::span<const Isf> spec) {
  DualVerifyResult res;
  if (engine == VerifyEngine::kBdd || engine == VerifyEngine::kBoth) {
    res.bdd = verify_against_isfs(mgr, net, spec);
    res.bdd_ran = true;
  }
  if (engine == VerifyEngine::kSat || engine == VerifyEngine::kBoth) {
    res.sat = sat_verify_against_isfs(net, spec);
    res.sat_ran = true;
  }
  return res;
}

}  // namespace bidec
