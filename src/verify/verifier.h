// BDD-based verification, the paper's correctness check ("The correctness
// of the resulting networks has been tested using a BDD-based verifier"):
// collapse a netlist into one BDD per output and compare against the
// specification interval Q <= f <= ~R, or against another netlist.
#ifndef BIDEC_VERIFY_VERIFIER_H
#define BIDEC_VERIFY_VERIFIER_H

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "isf/isf.h"
#include "netlist/netlist.h"

namespace bidec {

/// Collapse: one BDD per primary output; netlist input i maps to BDD
/// variable i (the manager must have enough variables).
[[nodiscard]] std::vector<Bdd> netlist_to_bdds(BddManager& mgr, const Netlist& net);

/// Which verification engine(s) to run. The BDD verifier collapses the
/// netlist over the specification's manager; the SAT verifier (see
/// sat_verifier.h) solves miters over a CNF encoding and shares no code
/// with the BDD substrate, so kBoth is a genuine cross-engine check.
enum class VerifyEngine : std::uint8_t { kNone, kBdd, kSat, kBoth };

[[nodiscard]] const char* to_string(VerifyEngine engine) noexcept;
/// Parse "none"/"bdd"/"sat"/"both"; std::nullopt on anything else.
[[nodiscard]] std::optional<VerifyEngine> parse_verify_engine(std::string_view name);

struct VerifyResult {
  bool ok = true;
  std::size_t first_failed_output = 0;        ///< valid when !ok
  std::vector<std::size_t> failed_outputs;    ///< every failing output index
  [[nodiscard]] explicit operator bool() const noexcept { return ok; }
};

/// Check that every output of the netlist realizes a function compatible
/// with the corresponding ISF.
[[nodiscard]] VerifyResult verify_against_isfs(BddManager& mgr, const Netlist& net,
                                               std::span<const Isf> spec);

/// Combinational equivalence of two netlists with identical interfaces.
[[nodiscard]] VerifyResult verify_equivalent(BddManager& mgr, const Netlist& a,
                                             const Netlist& b);

}  // namespace bidec

#endif  // BIDEC_VERIFY_VERIFIER_H
