// BDD-based verification, the paper's correctness check ("The correctness
// of the resulting networks has been tested using a BDD-based verifier"):
// collapse a netlist into one BDD per output and compare against the
// specification interval Q <= f <= ~R, or against another netlist.
#ifndef BIDEC_VERIFY_VERIFIER_H
#define BIDEC_VERIFY_VERIFIER_H

#include <cstddef>
#include <span>
#include <vector>

#include "isf/isf.h"
#include "netlist/netlist.h"

namespace bidec {

/// Collapse: one BDD per primary output; netlist input i maps to BDD
/// variable i (the manager must have enough variables).
[[nodiscard]] std::vector<Bdd> netlist_to_bdds(BddManager& mgr, const Netlist& net);

struct VerifyResult {
  bool ok = true;
  std::size_t first_failed_output = 0;  ///< valid when !ok
  [[nodiscard]] explicit operator bool() const noexcept { return ok; }
};

/// Check that every output of the netlist realizes a function compatible
/// with the corresponding ISF.
[[nodiscard]] VerifyResult verify_against_isfs(BddManager& mgr, const Netlist& net,
                                               std::span<const Isf> spec);

/// Combinational equivalence of two netlists with identical interfaces.
[[nodiscard]] VerifyResult verify_equivalent(BddManager& mgr, const Netlist& a,
                                             const Netlist& b);

}  // namespace bidec

#endif  // BIDEC_VERIFY_VERIFIER_H
