#include "verify/verifier.h"

#include <stdexcept>

namespace bidec {

const char* to_string(VerifyEngine engine) noexcept {
  switch (engine) {
    case VerifyEngine::kNone: return "none";
    case VerifyEngine::kBdd: return "bdd";
    case VerifyEngine::kSat: return "sat";
    case VerifyEngine::kBoth: return "both";
  }
  return "unknown";
}

std::optional<VerifyEngine> parse_verify_engine(std::string_view name) {
  if (name == "none") return VerifyEngine::kNone;
  if (name == "bdd") return VerifyEngine::kBdd;
  if (name == "sat") return VerifyEngine::kSat;
  if (name == "both") return VerifyEngine::kBoth;
  return std::nullopt;
}

namespace {

VerifyResult result_from_failures(std::vector<std::size_t> failed) {
  VerifyResult res;
  if (!failed.empty()) {
    res.ok = false;
    res.first_failed_output = failed.front();
    res.failed_outputs = std::move(failed);
  }
  return res;
}

}  // namespace

std::vector<Bdd> netlist_to_bdds(BddManager& mgr, const Netlist& net) {
  if (mgr.num_vars() < net.num_inputs()) {
    throw std::invalid_argument("netlist_to_bdds: manager has too few variables");
  }
  std::vector<Bdd> value(net.num_nodes());
  for (std::size_t i = 0; i < net.num_inputs(); ++i) {
    value[net.inputs()[i]] = mgr.var(static_cast<unsigned>(i));
  }
  for (const SignalId id : net.reachable_topo_order()) {
    const Netlist::Node& n = net.node(id);
    switch (n.type) {
      case GateType::kInput: break;
      case GateType::kConst0: value[id] = mgr.bdd_false(); break;
      case GateType::kConst1: value[id] = mgr.bdd_true(); break;
      case GateType::kBuf: value[id] = value[n.fanin0]; break;
      case GateType::kNot: value[id] = ~value[n.fanin0]; break;
      case GateType::kAnd: value[id] = value[n.fanin0] & value[n.fanin1]; break;
      case GateType::kOr: value[id] = value[n.fanin0] | value[n.fanin1]; break;
      case GateType::kXor: value[id] = value[n.fanin0] ^ value[n.fanin1]; break;
      case GateType::kNand: value[id] = ~(value[n.fanin0] & value[n.fanin1]); break;
      case GateType::kNor: value[id] = ~(value[n.fanin0] | value[n.fanin1]); break;
      case GateType::kXnor: value[id] = ~(value[n.fanin0] ^ value[n.fanin1]); break;
    }
  }
  std::vector<Bdd> outputs;
  outputs.reserve(net.num_outputs());
  for (std::size_t o = 0; o < net.num_outputs(); ++o) {
    outputs.push_back(value[net.output_signal(o)]);
  }
  return outputs;
}

VerifyResult verify_against_isfs(BddManager& mgr, const Netlist& net,
                                 std::span<const Isf> spec) {
  if (spec.size() != net.num_outputs()) {
    throw std::invalid_argument("verify_against_isfs: output count mismatch");
  }
  const std::vector<Bdd> funcs = netlist_to_bdds(mgr, net);
  std::vector<std::size_t> failed;
  for (std::size_t o = 0; o < funcs.size(); ++o) {
    if (!spec[o].is_compatible(funcs[o])) failed.push_back(o);
  }
  return result_from_failures(std::move(failed));
}

VerifyResult verify_equivalent(BddManager& mgr, const Netlist& a, const Netlist& b) {
  if (a.num_inputs() != b.num_inputs() || a.num_outputs() != b.num_outputs()) {
    throw std::invalid_argument("verify_equivalent: interface mismatch");
  }
  const std::vector<Bdd> fa = netlist_to_bdds(mgr, a);
  const std::vector<Bdd> fb = netlist_to_bdds(mgr, b);
  std::vector<std::size_t> failed;
  for (std::size_t o = 0; o < fa.size(); ++o) {
    if (fa[o] != fb[o]) failed.push_back(o);
  }
  return result_from_failures(std::move(failed));
}

}  // namespace bidec
