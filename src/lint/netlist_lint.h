// Structural netlist linter: audits a RawNetlist (or an in-memory Netlist)
// against the paper's netlist contract without evaluating the function.
//
// Rules (see diagnostics.h for the id catalog):
//   NL101  combinational loop (SCCs of the gate dependency graph)
//   NL102  undriven net (read by a gate or an output, no driver, not a PI)
//   NL103  multiply-driven net (two .names blocks, or a driver on a PI)
//   NL104  dangling net (gate output with no reader that is not a PO)
//   NL105  dead cone (gate with readers, but outside every PO cone)
//   NL106  gate arity violation (more than two fanins)
//   NL107  library membership violation (cover computes no library cell
//          function, or a degenerate one for its fanin count)
//   NL108  duplicate gate (structurally identical type+fanins; buffers are
//          exempt, they are BLIF name-aliasing plumbing)
//   NL109  support inflation (a two-input gate one of whose fanin cones
//          already spans the gate's whole input support)
//   NL110  primary input redefined or driven (a PI declared more than once
//          in .inputs, or a gate whose output net is a PI)
//
// NL109 is the structural shadow of the Theorem-5 precondition ("both
// strong-split components have strictly smaller support"). It is exact for
// strong-split gates — a strong split can never produce a full-support
// component — but ordinary circuits (a full adder's carry) and weak splits
// legitimately contain such gates, so the rule is opt-in here. The exact
// per-split check runs inside BiDecomposer, where strong and weak splits
// are distinguishable, and surfaces through FlowResult::lint.
#ifndef BIDEC_LINT_NETLIST_LINT_H
#define BIDEC_LINT_NETLIST_LINT_H

#include "lint/diagnostics.h"
#include "lint/raw_netlist.h"

namespace bidec {

struct NetlistLintOptions {
  /// Enable the structural NL109 support-inflation rule (see header note).
  bool check_support = false;
  /// Demote NL104/NL105/NL108 (redundancy-class rules) to info severity.
  bool relaxed_redundancy = false;
};

/// Run every netlist rule over a raw (possibly malformed) netlist.
[[nodiscard]] LintReport lint_netlist(const RawNetlist& net,
                                      const NetlistLintOptions& options = {});

/// Lint the PO-reachable cone of an in-memory netlist (what write_blif
/// ships); construction-orphaned scaffolding nodes are not audited.
[[nodiscard]] LintReport lint_netlist(const Netlist& net,
                                      const NetlistLintOptions& options = {});

/// How lint findings gate a synthesis flow or batch job.
enum class LintMode { kOff, kWarn, kError };

[[nodiscard]] const char* to_string(LintMode mode) noexcept;
/// Parse "off"/"warn"/"error"; std::nullopt on anything else.
[[nodiscard]] std::optional<LintMode> parse_lint_mode(std::string_view name);

}  // namespace bidec

#endif  // BIDEC_LINT_NETLIST_LINT_H
