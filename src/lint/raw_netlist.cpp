#include "lint/raw_netlist.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace bidec {

namespace {

/// Truth table of a cover over `n <= 2` fanins, as a bitmask over the 2^n
/// input patterns (bit i = value under pattern i, fanin0 = bit 0 of i).
std::optional<unsigned> cover_truth(const RawGate& g) {
  const std::size_t n = g.fanins.size();
  if (n > 2) return std::nullopt;
  const unsigned patterns = 1u << n;

  // Split rows into planes + the (single, per BLIF) output phase.
  bool on_set = true;
  std::vector<std::string> planes;
  for (const std::string& row : g.rows) {
    const auto space = row.find(' ');
    if (n == 0) {
      // Constant block: a bare "1" row means const1; no rows means const0.
      on_set = true;
      planes.push_back("");
      continue;
    }
    if (space == std::string::npos) return std::nullopt;
    const std::string plane = row.substr(0, space);
    if (plane.size() != n) return std::nullopt;
    planes.push_back(plane);
    on_set = row.substr(space + 1) == "1";
  }

  unsigned covered = 0;
  for (const std::string& plane : planes) {
    for (unsigned p = 0; p < patterns; ++p) {
      bool match = true;
      for (std::size_t i = 0; i < n; ++i) {
        const char c = plane[i];
        const bool bit = (p >> i) & 1u;
        if ((c == '1' && !bit) || (c == '0' && bit)) {
          match = false;
          break;
        }
        if (c != '0' && c != '1' && c != '-') return std::nullopt;
      }
      if (match) covered |= 1u << p;
    }
  }
  if (n == 0) return g.rows.empty() ? 0u : 1u;
  const unsigned all = (1u << patterns) - 1;
  return on_set ? covered : (~covered & all);
}

}  // namespace

std::optional<GateType> RawGate::classify() const {
  const std::optional<unsigned> tt = cover_truth(*this);
  if (!tt) return std::nullopt;
  switch (fanins.size()) {
    case 0:
      return *tt != 0 ? GateType::kConst1 : GateType::kConst0;
    case 1:
      switch (*tt) {
        case 0x0: return GateType::kConst0;
        case 0x1: return GateType::kNot;
        case 0x2: return GateType::kBuf;
        case 0x3: return GateType::kConst1;
      }
      return std::nullopt;
    case 2:
      switch (*tt) {
        case 0x0: return GateType::kConst0;
        case 0x1: return GateType::kNor;
        case 0x6: return GateType::kXor;
        case 0x7: return GateType::kNand;
        case 0x8: return GateType::kAnd;
        case 0x9: return GateType::kXnor;
        case 0xe: return GateType::kOr;
        case 0xf: return GateType::kConst1;
        default: return std::nullopt;  // degenerate or non-library function
      }
    default:
      return std::nullopt;
  }
}

RawNetlist RawNetlist::parse_blif(std::istream& in) {
  RawNetlist net;
  RawGate* current = nullptr;
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    if (const auto pos = raw.find('#'); pos != std::string::npos) raw.erase(pos);
    while (!raw.empty() && raw.back() == '\\') {
      raw.pop_back();
      std::string next;
      if (!std::getline(in, next)) break;
      ++line_no;
      raw += next;
    }
    std::istringstream ss(raw);
    std::vector<std::string> tokens;
    std::string tok;
    while (ss >> tok) tokens.push_back(tok);
    if (tokens.empty()) continue;
    const std::string& head = tokens.front();
    if (head == ".names") {
      if (tokens.size() < 2) {
        throw std::runtime_error("BLIF: .names without signals (line " +
                                 std::to_string(line_no) + ")");
      }
      RawGate gate;
      gate.output = tokens.back();
      gate.fanins.assign(tokens.begin() + 1, tokens.end() - 1);
      gate.line = line_no;
      net.gates.push_back(std::move(gate));
      current = &net.gates.back();
    } else if (head == ".inputs") {
      net.inputs.insert(net.inputs.end(), tokens.begin() + 1, tokens.end());
      current = nullptr;
    } else if (head == ".outputs") {
      net.outputs.insert(net.outputs.end(), tokens.begin() + 1, tokens.end());
      current = nullptr;
    } else if (head == ".latch") {
      throw std::runtime_error("BLIF: sequential models are not supported");
    } else if (head == ".end") {
      break;
    } else if (head[0] == '.') {
      current = nullptr;  // unknown directive: skip, like the strict reader
    } else {
      if (current == nullptr) {
        throw std::runtime_error("BLIF: cover row outside .names (line " +
                                 std::to_string(line_no) + ")");
      }
      if (tokens.size() == 1 && current->fanins.empty()) {
        current->rows.push_back(tokens[0]);
      } else if (tokens.size() == 2) {
        if (tokens[0].size() != current->fanins.size()) {
          throw std::runtime_error("BLIF: cover row width mismatch (line " +
                                   std::to_string(line_no) + ")");
        }
        current->rows.push_back(tokens[0] + " " + tokens[1]);
      } else {
        throw std::runtime_error("BLIF: malformed cover row (line " +
                                 std::to_string(line_no) + ")");
      }
    }
  }
  return net;
}

RawNetlist RawNetlist::parse_blif_string(const std::string& text) {
  std::istringstream ss(text);
  return parse_blif(ss);
}

RawNetlist RawNetlist::load_blif(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("BLIF: cannot open " + path);
  return parse_blif(in);
}

RawNetlist RawNetlist::from_netlist(const Netlist& net) {
  RawNetlist raw;
  const auto name_of = [&net](SignalId id) {
    const std::size_t pi = net.input_index(id);
    if (pi != kNoSignal) return net.input_name(pi);
    std::string s = "n";  // two statements: GCC 12's -Wrestrict misfires on
    s += std::to_string(id);  // `"n" + std::to_string(id)` inlined here
    return s;
  };

  for (std::size_t i = 0; i < net.num_inputs(); ++i) {
    raw.inputs.push_back(net.input_name(i));
  }
  for (const SignalId id : net.reachable_topo_order()) {
    const Netlist::Node& n = net.node(id);
    if (n.type == GateType::kInput) continue;
    RawGate gate;
    gate.output = name_of(id);
    if (n.fanin0 != kNoSignal) gate.fanins.push_back(name_of(n.fanin0));
    if (n.fanin1 != kNoSignal) gate.fanins.push_back(name_of(n.fanin1));
    switch (n.type) {
      case GateType::kConst0: break;
      case GateType::kConst1: gate.rows = {"1"}; break;
      case GateType::kBuf: gate.rows = {"1 1"}; break;
      case GateType::kNot: gate.rows = {"0 1"}; break;
      case GateType::kAnd: gate.rows = {"11 1"}; break;
      case GateType::kOr: gate.rows = {"1- 1", "-1 1"}; break;
      case GateType::kXor: gate.rows = {"10 1", "01 1"}; break;
      case GateType::kNand: gate.rows = {"0- 1", "-0 1"}; break;
      case GateType::kNor: gate.rows = {"00 1"}; break;
      case GateType::kXnor: gate.rows = {"00 1", "11 1"}; break;
      case GateType::kInput: break;  // unreachable
    }
    raw.gates.push_back(std::move(gate));
  }
  // Like write_blif: a buffer row connects each declared output name to the
  // internal net driving it, unless the output *is* the internal net (a
  // primary input fed straight through keeps its own name).
  for (std::size_t o = 0; o < net.num_outputs(); ++o) {
    const std::string internal = name_of(net.output_signal(o));
    const std::string& out_name = net.output_name(o);
    raw.outputs.push_back(out_name);
    if (internal != out_name) {
      RawGate buf;
      buf.output = out_name;
      buf.fanins = {internal};
      buf.rows = {"1 1"};
      raw.gates.push_back(std::move(buf));
    }
  }
  return raw;
}

}  // namespace bidec
