#include "lint/netlist_lint.h"

#include <algorithm>
#include <cstdint>
#include <string_view>
#include <unordered_map>
#include <utility>

namespace bidec {

namespace {

constexpr std::size_t kNoGate = static_cast<std::size_t>(-1);

/// Name-interned view of a RawNetlist with driver/reader indices, built once
/// and shared by all rules.
struct NetIndex {
  std::vector<std::string> names;                  // net index -> name
  std::unordered_map<std::string, std::size_t> id; // name -> net index
  std::vector<bool> is_input;
  std::vector<unsigned> input_decls;  // times the name appears in .inputs
  std::vector<bool> is_output;
  std::vector<std::size_t> driver;       // first driving gate, kNoGate if none
  std::vector<unsigned> driver_count;    // gate drivers (PIs counted separately)
  std::vector<unsigned> reader_count;    // gate fanin references + PO references
  std::vector<std::size_t> gate_net;     // gate index -> output net index
  std::vector<std::vector<std::size_t>> gate_fanins;  // gate -> fanin net indices

  std::size_t intern(const std::string& name) {
    const auto [it, inserted] = id.emplace(name, names.size());
    if (inserted) {
      names.push_back(name);
      is_input.push_back(false);
      input_decls.push_back(0);
      is_output.push_back(false);
      driver.push_back(kNoGate);
      driver_count.push_back(0);
      reader_count.push_back(0);
    }
    return it->second;
  }

  explicit NetIndex(const RawNetlist& net) {
    for (const std::string& in : net.inputs) {
      const std::size_t n = intern(in);
      is_input[n] = true;
      ++input_decls[n];
    }
    for (const std::string& out : net.outputs) {
      const std::size_t n = intern(out);
      is_output[n] = true;
      ++reader_count[n];
    }
    gate_net.reserve(net.gates.size());
    gate_fanins.reserve(net.gates.size());
    for (std::size_t g = 0; g < net.gates.size(); ++g) {
      const RawGate& gate = net.gates[g];
      const std::size_t out = intern(gate.output);
      gate_net.push_back(out);
      if (driver[out] == kNoGate) driver[out] = g;
      ++driver_count[out];
      std::vector<std::size_t> fanins;
      fanins.reserve(gate.fanins.size());
      for (const std::string& f : gate.fanins) {
        const std::size_t fn = intern(f);
        ++reader_count[fn];
        fanins.push_back(fn);
      }
      gate_fanins.push_back(std::move(fanins));
    }
  }
};

/// Strongly connected components of the gate dependency graph (edge: gate ->
/// driver of one of its fanins), iterative Tarjan. Returned in reverse
/// topological order: a component's dependencies appear before it.
struct SccResult {
  std::vector<std::vector<std::size_t>> components;
  std::vector<std::size_t> component_of;  // gate -> component index
  std::vector<bool> cyclic;               // component has >1 gate or a self-loop
};

SccResult find_sccs(const NetIndex& ix) {
  const std::size_t n = ix.gate_net.size();
  SccResult out;
  out.component_of.assign(n, kNoGate);

  std::vector<std::uint32_t> index(n, 0), lowlink(n, 0);
  std::vector<bool> visited(n, false), on_stack(n, false);
  std::vector<std::size_t> stack;
  std::uint32_t counter = 1;

  struct Frame {
    std::size_t gate;
    std::size_t next_fanin;
  };
  std::vector<Frame> call;

  const auto fanin_gate = [&ix](std::size_t gate, std::size_t i) {
    const std::size_t net = ix.gate_fanins[gate][i];
    return ix.driver[net];
  };

  for (std::size_t root = 0; root < n; ++root) {
    if (visited[root]) continue;
    call.push_back({root, 0});
    while (!call.empty()) {
      Frame& fr = call.back();
      const std::size_t g = fr.gate;
      if (fr.next_fanin == 0) {
        visited[g] = true;
        index[g] = lowlink[g] = counter++;
        stack.push_back(g);
        on_stack[g] = true;
      }
      bool descended = false;
      while (fr.next_fanin < ix.gate_fanins[g].size()) {
        const std::size_t w = fanin_gate(g, fr.next_fanin++);
        if (w == kNoGate) continue;  // undriven or PI fanin: no edge
        if (!visited[w]) {
          call.push_back({w, 0});
          descended = true;
          break;
        }
        if (on_stack[w]) lowlink[g] = std::min(lowlink[g], index[w]);
      }
      if (descended) continue;
      if (lowlink[g] == index[g]) {
        std::vector<std::size_t> comp;
        std::size_t w;
        do {
          w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          out.component_of[w] = out.components.size();
          comp.push_back(w);
        } while (w != g);
        bool self_loop = false;
        if (comp.size() == 1) {
          for (const std::size_t f : ix.gate_fanins[comp[0]]) {
            if (ix.driver[f] == comp[0]) self_loop = true;
          }
        }
        out.cyclic.push_back(comp.size() > 1 || self_loop);
        out.components.push_back(std::move(comp));
      }
      call.pop_back();
      if (!call.empty()) {
        Frame& parent = call.back();
        lowlink[parent.gate] = std::min(lowlink[parent.gate], lowlink[g]);
      }
    }
  }
  return out;
}

/// Bit-set support of each net over the primary inputs.
class SupportTable {
 public:
  SupportTable(std::size_t num_nets, std::size_t num_inputs)
      : words_((num_inputs + 63) / 64),
        bits_(num_nets * std::max<std::size_t>(words_, 1), 0) {}

  void set_input(std::size_t net, std::size_t input_index) {
    word(net)[input_index / 64] |= std::uint64_t{1} << (input_index % 64);
  }
  void add(std::size_t dst, std::size_t src) {
    std::uint64_t* d = word(dst);
    const std::uint64_t* s = word(src);
    for (std::size_t i = 0; i < words_; ++i) d[i] |= s[i];
  }
  [[nodiscard]] bool equal(std::size_t a, std::size_t b) const {
    const std::uint64_t* pa = word(a);
    const std::uint64_t* pb = word(b);
    for (std::size_t i = 0; i < words_; ++i) {
      if (pa[i] != pb[i]) return false;
    }
    return true;
  }
  [[nodiscard]] bool empty(std::size_t a) const {
    const std::uint64_t* p = word(a);
    for (std::size_t i = 0; i < words_; ++i) {
      if (p[i] != 0) return false;
    }
    return true;
  }

 private:
  [[nodiscard]] std::uint64_t* word(std::size_t net) {
    return bits_.data() + net * words_;
  }
  [[nodiscard]] const std::uint64_t* word(std::size_t net) const {
    return bits_.data() + net * words_;
  }
  std::size_t words_;
  std::vector<std::uint64_t> bits_;
};

void rule_connectivity(const RawNetlist& net, const NetIndex& ix, LintReport& rep) {
  for (std::size_t n = 0; n < ix.names.size(); ++n) {
    // A primary input owns its net: any gate driver is an NL110 violation
    // (the gate silently shadows the environment's value), and so is a
    // duplicate .inputs declaration. NL103 keeps the gate-vs-gate conflict.
    if (ix.is_input[n]) {
      if (ix.driver_count[n] > 0) {
        rep.add(std::string(kRulePiRedefined), LintSeverity::kError, ix.names[n],
                "primary input is driven by " +
                    std::to_string(ix.driver_count[n]) +
                    " gate(s); a PI's value comes from the environment, never "
                    "from logic");
      }
      if (ix.input_decls[n] > 1) {
        rep.add(std::string(kRulePiRedefined), LintSeverity::kError, ix.names[n],
                "primary input declared " + std::to_string(ix.input_decls[n]) +
                    " times in .inputs");
      }
    }
    if (ix.driver_count[n] > 1) {
      rep.add(std::string(kRuleMultiDriven), LintSeverity::kError, ix.names[n],
              "net has " + std::to_string(ix.driver_count[n]) + " drivers");
    }
    const unsigned drivers = ix.driver_count[n] + (ix.is_input[n] ? 1 : 0);
    if (drivers == 0 && ix.reader_count[n] > 0) {
      rep.add(std::string(kRuleUndriven), LintSeverity::kError, ix.names[n],
              ix.is_output[n] && ix.reader_count[n] == 1
                  ? "primary output is never driven"
                  : "net is read but never driven and is not a primary input");
    }
  }
  (void)net;
}

void rule_loops(const NetIndex& ix, const SccResult& scc, LintReport& rep) {
  for (std::size_t c = 0; c < scc.components.size(); ++c) {
    if (!scc.cyclic[c]) continue;
    const std::vector<std::size_t>& comp = scc.components[c];
    std::string members;
    for (std::size_t i = 0; i < comp.size() && i < 4; ++i) {
      if (i != 0) members += ", ";
      members += ix.names[ix.gate_net[comp[i]]];
    }
    if (comp.size() > 4) members += ", ...";
    rep.add(std::string(kRuleLoop), LintSeverity::kError,
            ix.names[ix.gate_net[comp.front()]],
            "combinational loop through " + std::to_string(comp.size()) +
                " gate(s): " + members);
  }
}

void rule_reachability(const RawNetlist& net, const NetIndex& ix,
                       const NetlistLintOptions& options, LintReport& rep) {
  // BFS from the primary outputs through first drivers.
  std::vector<bool> reached(ix.gate_net.size(), false);
  std::vector<std::size_t> work;
  for (std::size_t n = 0; n < ix.names.size(); ++n) {
    if (ix.is_output[n] && ix.driver[n] != kNoGate) work.push_back(ix.driver[n]);
  }
  while (!work.empty()) {
    const std::size_t g = work.back();
    work.pop_back();
    if (reached[g]) continue;
    reached[g] = true;
    for (const std::size_t f : ix.gate_fanins[g]) {
      if (ix.driver[f] != kNoGate && !reached[ix.driver[f]]) {
        work.push_back(ix.driver[f]);
      }
    }
  }
  const LintSeverity sev =
      options.relaxed_redundancy ? LintSeverity::kInfo : LintSeverity::kWarning;
  for (std::size_t g = 0; g < ix.gate_net.size(); ++g) {
    if (reached[g]) continue;
    const std::size_t out = ix.gate_net[g];
    if (ix.reader_count[out] == 0) {
      rep.add(std::string(kRuleDangling), sev, ix.names[out],
              "gate output is never read and is not a primary output (line " +
                  std::to_string(net.gates[g].line) + ")");
    } else {
      rep.add(std::string(kRuleDeadCone), sev, ix.names[out],
              "gate is outside every primary-output cone (line " +
                  std::to_string(net.gates[g].line) + ")");
    }
  }
}

void rule_gates(const RawNetlist& net, const NetIndex& ix,
                const NetlistLintOptions& options, LintReport& rep) {
  struct DupKey {
    GateType type;
    std::size_t a, b;
    bool operator==(const DupKey&) const = default;
  };
  struct DupHash {
    std::size_t operator()(const DupKey& k) const noexcept {
      return (static_cast<std::size_t>(k.type) * 0x9e3779b9u) ^ (k.a * 31) ^ k.b;
    }
  };
  std::unordered_map<DupKey, std::size_t, DupHash> seen;
  const LintSeverity dup_sev =
      options.relaxed_redundancy ? LintSeverity::kInfo : LintSeverity::kWarning;

  for (std::size_t g = 0; g < net.gates.size(); ++g) {
    const RawGate& gate = net.gates[g];
    if (gate.fanins.size() > 2) {
      rep.add(std::string(kRuleArity), LintSeverity::kError, gate.output,
              "gate has " + std::to_string(gate.fanins.size()) +
                  " fanins; the netlist contract is two-input gates (line " +
                  std::to_string(gate.line) + ")");
      continue;  // arity already reported; classification is meaningless
    }
    const std::optional<GateType> type = gate.classify();
    if (!type || gate_arity(*type) != gate.fanins.size()) {
      rep.add(std::string(kRuleLibrary), LintSeverity::kError, gate.output,
              std::string("cover does not compute a library cell function") +
                  (type ? " (degenerate: reduces to " +
                              std::string(gate_name(*type)) + ")"
                        : "") +
                  " (line " + std::to_string(gate.line) + ")");
      continue;
    }
    // Duplicate detection over canonical (type, fanins); buffers are exempt
    // (they are BLIF output-name aliasing, not logic).
    if (gate_arity(*type) >= 1 && *type != GateType::kBuf) {
      std::size_t a = ix.gate_fanins[g][0];
      std::size_t b = gate.fanins.size() == 2 ? ix.gate_fanins[g][1] : kNoGate;
      if (b != kNoGate && is_commutative(*type) && a > b) std::swap(a, b);
      const auto [it, inserted] = seen.emplace(DupKey{*type, a, b}, g);
      if (!inserted) {
        rep.add(std::string(kRuleDuplicateGate), dup_sev, gate.output,
                "structurally identical to gate driving '" +
                    net.gates[it->second].output + "' (" +
                    std::string(gate_name(*type)) + " with the same fanins, line " +
                    std::to_string(gate.line) + ")");
      }
    }
  }
}

void rule_support(const RawNetlist& net, const NetIndex& ix, const SccResult& scc,
                  LintReport& rep) {
  SupportTable support(ix.names.size(), net.inputs.size());
  std::size_t input_index = 0;
  for (const std::string& in : net.inputs) {
    support.set_input(ix.id.at(in), input_index++);
  }
  // SCCs arrive dependencies-first; propagate supports in that order and
  // skip cyclic components (their support is not well defined).
  for (std::size_t c = 0; c < scc.components.size(); ++c) {
    if (scc.cyclic[c]) continue;
    for (const std::size_t g : scc.components[c]) {
      const std::size_t out = ix.gate_net[g];
      if (ix.driver[out] != g) continue;  // only the first driver defines a net
      for (const std::size_t f : ix.gate_fanins[g]) support.add(out, f);
    }
  }
  for (std::size_t c = 0; c < scc.components.size(); ++c) {
    if (scc.cyclic[c]) continue;
    for (const std::size_t g : scc.components[c]) {
      const RawGate& gate = net.gates[g];
      if (gate.fanins.size() != 2) continue;
      const std::optional<GateType> type = gate.classify();
      if (!type || !is_two_input(*type)) continue;
      const std::size_t out = ix.gate_net[g];
      if (ix.driver[out] != g || support.empty(out)) continue;
      for (int side = 0; side < 2; ++side) {
        const std::size_t f = ix.gate_fanins[g][side];
        if (support.equal(f, out)) {
          rep.add(std::string(kRuleSupportInflation), LintSeverity::kWarning,
                  gate.output,
                  "fanin '" + gate.fanins[side] +
                      "' already spans the gate's whole input support; a "
                      "strong bi-decomposition component must have strictly "
                      "smaller support (line " +
                      std::to_string(gate.line) + ")");
          break;  // one finding per gate
        }
      }
    }
  }
}

}  // namespace

LintReport lint_netlist(const RawNetlist& net, const NetlistLintOptions& options) {
  LintReport rep;
  const NetIndex ix(net);
  const SccResult scc = find_sccs(ix);
  rule_connectivity(net, ix, rep);
  rule_loops(ix, scc, rep);
  rule_reachability(net, ix, options, rep);
  rule_gates(net, ix, options, rep);
  if (options.check_support) rule_support(net, ix, scc, rep);
  return rep;
}

LintReport lint_netlist(const Netlist& net, const NetlistLintOptions& options) {
  return lint_netlist(RawNetlist::from_netlist(net), options);
}

const char* to_string(LintMode mode) noexcept {
  switch (mode) {
    case LintMode::kOff: return "off";
    case LintMode::kWarn: return "warn";
    case LintMode::kError: return "error";
  }
  return "unknown";
}

std::optional<LintMode> parse_lint_mode(std::string_view name) {
  if (name == "off") return LintMode::kOff;
  if (name == "warn") return LintMode::kWarn;
  if (name == "error") return LintMode::kError;
  return std::nullopt;
}

}  // namespace bidec
