// Lenient net-level IR for the structural linter. The strict BLIF reader in
// io/blif.h rebuilds designs through Netlist::add_gate, which makes loops,
// multiply-driven nets and over-arity gates *unrepresentable* (it throws on
// the first one it meets). A linter has the opposite requirement: it must
// load a malformed design completely and report every defect with a rule id.
// RawNetlist therefore keeps exactly what the file said: a flat list of
// named gates with name-based fanins, no structural hashing, no rewriting,
// and no topological-order requirement.
#ifndef BIDEC_LINT_RAW_NETLIST_H
#define BIDEC_LINT_RAW_NETLIST_H

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "netlist/gate.h"
#include "netlist/netlist.h"

namespace bidec {

/// One `.names` block (or one Netlist node): output net, fanin nets in file
/// order, and the cover rows as written ("<plane> <value>", or just
/// "<value>" for constants).
struct RawGate {
  std::string output;
  std::vector<std::string> fanins;
  std::vector<std::string> rows;
  int line = 0;  ///< 1-based source line of the .names head (0 = synthetic)

  /// Library classification of the cover: the GateType whose function the
  /// cover computes, or nullopt when the cover matches no library cell
  /// (over-arity gates and non-standard two-input functions).
  [[nodiscard]] std::optional<GateType> classify() const;
};

struct RawNetlist {
  std::vector<std::string> inputs;
  std::vector<std::string> outputs;
  std::vector<RawGate> gates;

  /// Lenient BLIF parse: keeps duplicate drivers, forward references and
  /// arbitrary-arity covers. Throws std::runtime_error only on input that
  /// has no structural reading at all (cover row outside .names, row width
  /// mismatch, sequential models).
  [[nodiscard]] static RawNetlist parse_blif(std::istream& in);
  [[nodiscard]] static RawNetlist parse_blif_string(const std::string& text);
  [[nodiscard]] static RawNetlist load_blif(const std::string& path);

  /// Adapter for in-memory results of the synthesis flow: exports the cone
  /// reachable from the primary outputs (matching what write_blif ships;
  /// scaffolding nodes orphaned by folding or inverter absorption are not
  /// part of the circuit).
  [[nodiscard]] static RawNetlist from_netlist(const Netlist& net);
};

}  // namespace bidec

#endif  // BIDEC_LINT_RAW_NETLIST_H
