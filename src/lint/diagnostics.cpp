#include "lint/diagnostics.h"

#include <sstream>
#include <utility>

namespace bidec {

namespace {

// Shared with engine/report.cpp in spirit; duplicated here because the lint
// library must not depend on the engine.
void append_json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

const char* to_string(LintSeverity severity) noexcept {
  switch (severity) {
    case LintSeverity::kInfo: return "info";
    case LintSeverity::kWarning: return "warning";
    case LintSeverity::kError: return "error";
  }
  return "unknown";
}

void LintReport::add(std::string rule, LintSeverity severity, std::string object,
                     std::string message) {
  if (severity == LintSeverity::kError) ++errors_;
  if (severity == LintSeverity::kWarning) ++warnings_;
  findings_.push_back(LintFinding{std::move(rule), severity, std::move(object),
                                  std::move(message)});
}

void LintReport::merge(const LintReport& other) {
  findings_.insert(findings_.end(), other.findings_.begin(), other.findings_.end());
  errors_ += other.errors_;
  warnings_ += other.warnings_;
}

bool LintReport::has_findings(LintSeverity at_least) const noexcept {
  for (const LintFinding& f : findings_) {
    if (f.severity >= at_least) return true;
  }
  return false;
}

std::size_t LintReport::count_rule(std::string_view rule) const noexcept {
  std::size_t n = 0;
  for (const LintFinding& f : findings_) {
    if (f.rule == rule) ++n;
  }
  return n;
}

std::string LintReport::to_text() const {
  std::ostringstream os;
  for (const LintFinding& f : findings_) {
    os << f.rule << ':' << to_string(f.severity) << ": " << f.message;
    if (!f.object.empty()) os << " [" << f.object << ']';
    os << '\n';
  }
  return os.str();
}

std::string LintReport::to_json() const {
  std::ostringstream os;
  os << "{\"errors\": " << errors_ << ", \"warnings\": " << warnings_
     << ", \"findings\": [";
  for (std::size_t i = 0; i < findings_.size(); ++i) {
    const LintFinding& f = findings_[i];
    if (i != 0) os << ", ";
    os << "{\"rule\": \"" << f.rule << "\", \"severity\": \"" << to_string(f.severity)
       << "\", \"object\": ";
    append_json_string(os, f.object);
    os << ", \"message\": ";
    append_json_string(os, f.message);
    os << "}";
  }
  os << "]}";
  return os.str();
}

std::string_view lint_rule_title(std::string_view rule) noexcept {
  if (rule == kRuleLoop) return "combinational loop";
  if (rule == kRuleUndriven) return "undriven net";
  if (rule == kRuleMultiDriven) return "multiply-driven net";
  if (rule == kRuleDangling) return "dangling net";
  if (rule == kRuleDeadCone) return "dead cone";
  if (rule == kRuleArity) return "gate arity violation";
  if (rule == kRuleLibrary) return "library membership violation";
  if (rule == kRuleDuplicateGate) return "duplicate gate";
  if (rule == kRuleSupportInflation) return "component support not reduced";
  if (rule == kRulePiRedefined) return "primary input redefined or driven";
  if (rule == kRuleBddDuplicateTriple) return "duplicate unique-table triple";
  if (rule == kRuleBddRedundantNode) return "redundant BDD node";
  if (rule == kRuleBddLevelOrder) return "variable-order violation";
  if (rule == kRuleBddVarRange) return "variable index out of range";
  if (rule == kRuleBddChainMiss) return "unique-table chain miss";
  if (rule == kRuleBddFreeList) return "free-list corruption";
  if (rule == kRuleBddStatsDrift) return "live-node counter drift";
  if (rule == kRuleBddCacheDead) return "computed-cache entry references freed node";
  if (rule == kRuleBddCacheTag) return "computed-cache entry with unknown tag";
  if (rule == kRuleBddTerminal) return "terminal invariant violation";
  if (rule == kRuleBddComplementHigh) return "complemented high edge stored";
  if (rule == kRuleBddTaggedTerminal) return "tagged-terminal rule violation";
  if (rule == kRuleBddSubtableDrift) return "per-level subtable counter drift";
  return {};
}

}  // namespace bidec
