// Structured diagnostics shared by every bidec_lint analyzer. A finding is
// one rule violation anchored to a named object (a net, a gate, a BDD node
// or a cache slot); a report is an ordered list of findings plus severity
// counters. Analyzers never assert or abort: they return findings and leave
// the policy (warn, fail the job, exit non-zero) to the caller.
#ifndef BIDEC_LINT_DIAGNOSTICS_H
#define BIDEC_LINT_DIAGNOSTICS_H

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace bidec {

enum class LintSeverity { kInfo, kWarning, kError };

[[nodiscard]] const char* to_string(LintSeverity severity) noexcept;

/// One rule violation. `rule` is a stable identifier from the catalog below
/// (tests and downstream tooling match on it); `object` names the offending
/// net/gate/node; `message` is the human-readable explanation.
struct LintFinding {
  std::string rule;
  LintSeverity severity = LintSeverity::kWarning;
  std::string object;
  std::string message;
};

/// Ordered list of findings with severity counters and serializers.
class LintReport {
 public:
  void add(std::string rule, LintSeverity severity, std::string object,
           std::string message);
  void merge(const LintReport& other);

  [[nodiscard]] const std::vector<LintFinding>& findings() const noexcept {
    return findings_;
  }
  [[nodiscard]] bool clean() const noexcept { return findings_.empty(); }
  [[nodiscard]] std::size_t errors() const noexcept { return errors_; }
  [[nodiscard]] std::size_t warnings() const noexcept { return warnings_; }
  /// True iff at least one finding with severity `at_least` or higher.
  [[nodiscard]] bool has_findings(LintSeverity at_least) const noexcept;
  /// Number of findings carrying this exact rule id.
  [[nodiscard]] std::size_t count_rule(std::string_view rule) const noexcept;

  /// One line per finding: "<rule>:<severity>: <message> [<object>]".
  [[nodiscard]] std::string to_text() const;
  /// JSON object {"findings": [...], "errors": N, "warnings": N}.
  [[nodiscard]] std::string to_json() const;

 private:
  std::vector<LintFinding> findings_;
  std::size_t errors_ = 0;
  std::size_t warnings_ = 0;
};

// --- rule catalog ----------------------------------------------------------
// Netlist linter (structural, no simulation). Stable ids: tests, JobReport
// JSON consumers and CI greps depend on these strings.
inline constexpr std::string_view kRuleLoop = "NL101";            ///< combinational loop
inline constexpr std::string_view kRuleUndriven = "NL102";        ///< net used but never driven
inline constexpr std::string_view kRuleMultiDriven = "NL103";     ///< net with more than one driver
inline constexpr std::string_view kRuleDangling = "NL104";        ///< gate output with no reader
inline constexpr std::string_view kRuleDeadCone = "NL105";        ///< gate outside every output cone
inline constexpr std::string_view kRuleArity = "NL106";           ///< gate with more than two fanins
inline constexpr std::string_view kRuleLibrary = "NL107";         ///< cover not in the two-input library
inline constexpr std::string_view kRuleDuplicateGate = "NL108";   ///< structurally identical gates
inline constexpr std::string_view kRuleSupportInflation = "NL109"; ///< Theorem-5 precondition violated
inline constexpr std::string_view kRulePiRedefined = "NL110";     ///< primary input redefined or driven

// BDD-manager auditor (see BddManager::audit).
inline constexpr std::string_view kRuleBddDuplicateTriple = "BM201";  ///< unique table has duplicate (var,lo,hi)
inline constexpr std::string_view kRuleBddRedundantNode = "BM202";    ///< node with lo == hi survived reduction
inline constexpr std::string_view kRuleBddLevelOrder = "BM203";       ///< child level not below parent level
inline constexpr std::string_view kRuleBddVarRange = "BM204";         ///< node labelled with an out-of-range variable
inline constexpr std::string_view kRuleBddChainMiss = "BM205";        ///< live node absent from its hash bucket chain
inline constexpr std::string_view kRuleBddFreeList = "BM206";         ///< free-list slot referenced or miscounted
inline constexpr std::string_view kRuleBddStatsDrift = "BM207";       ///< live_nodes counter disagrees with storage
inline constexpr std::string_view kRuleBddCacheDead = "BM208";        ///< computed-cache entry references a freed node
inline constexpr std::string_view kRuleBddCacheTag = "BM209";         ///< computed-cache entry with unknown op tag
inline constexpr std::string_view kRuleBddTerminal = "BM210";         ///< terminal node invariants broken
inline constexpr std::string_view kRuleBddComplementHigh = "BM211";   ///< stored high edge carries a complement tag
inline constexpr std::string_view kRuleBddTaggedTerminal = "BM212";   ///< stray terminal or tagged terminal self-edge
inline constexpr std::string_view kRuleBddSubtableDrift = "BM213";    ///< per-level subtable counter disagrees with storage

/// Short human title for a rule id (empty for unknown ids).
[[nodiscard]] std::string_view lint_rule_title(std::string_view rule) noexcept;

}  // namespace bidec

#endif  // BIDEC_LINT_DIAGNOSTICS_H
