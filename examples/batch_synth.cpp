// Batch front-end to the parallel synthesis engine: decompose every
// PLA/BLIF file in a directory (or an explicit file list) across N worker
// threads, verify each result against its specification, and emit a
// summary table plus a metrics JSON file.
//
//   batch_synth <dir | files...> [options]
//     --jobs N            worker threads (0 or omitted: auto-detect
//                         hardware concurrency, capped at the job count)
//     --timeout-ms T      per-job wall-time deadline (0 = none)
//     --step-budget S     per-job BDD step budget (0 = none)
//     --node-budget N     per-job live-BDD-node cap (0 = none)
//     --max-retries R     re-run budget-tripped jobs up to R times with
//                         exponentially larger step budgets/deadlines
//     --degrade           walk the degradation ladder on retries (cheaper
//                         settings each rung, Shannon cofactoring last);
//                         such results report status "degraded"
//     --json <file>       write the full metrics report as JSON
//     --out-dir <dir>     write each synthesized netlist as <name>.blif
//     --reorder <none|force|sift>
//     --weak-only --no-exor --no-cache
//     --verify <engine>   none|bdd|sat|both (default bdd)
//     --no-verify         alias for --verify none
//     --proof <policy>    off|log|check (default off): DRAT proof logging
//                         and independent re-validation of UNSAT verdicts
//     --lint <mode>       off|warn|error (default off); post-synthesis
//                         structural lint gate, findings land in the JSON
//     --threads N         BDD-kernel worker threads inside each job
//                         (default 1 = bit-identical serial kernel;
//                         0 = one per hardware thread). Orthogonal to
//                         --jobs, which parallelizes across jobs
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "engine/batch_engine.h"
#include "engine/cli_opts.h"
#include "io/blif.h"

namespace {

using namespace bidec;
namespace fs = std::filesystem;

int usage() {
  std::fprintf(stderr,
               "usage: batch_synth <dir | files...> [--jobs N] [--timeout-ms T]\n"
               "       [--step-budget S] [--node-budget N] [--max-retries R]\n"
               "       [--degrade] [--json out.json] [--out-dir dir]\n"
               "       [--reorder none|force|sift] [--weak-only] [--no-exor]\n"
               "       [--no-cache] [--verify none|bdd|sat|both] [--no-verify]\n"
               "       [--proof off|log|check]\n"
               "       [--lint off|warn|error] [--threads N]\n");
  return 2;
}

bool has_spec_extension(const fs::path& p) {
  return p.extension() == ".pla" || p.extension() == ".blif";
}

// Strict parsing via the shared engine helper: the whole token must be
// digits, so garbage ("--jobs banana") errors instead of silently mapping
// to 0 (which means auto-detect for --jobs).
bool parse_unsigned(const char* flag, const char* v, std::uint64_t& out) {
  const std::optional<std::uint64_t> n = parse_cli_unsigned(v);
  if (!n) {
    std::fprintf(stderr, "error: %s expects a number, got '%s'\n", flag,
                 v ? v : "(nothing)");
    return false;
  }
  out = *n;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> inputs;
  EngineOptions engine_opts;
  FlowOptions flow;
  std::string json_path, out_dir;
  VerifyEngine verify = VerifyEngine::kBdd;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (a == "--jobs") {
      std::uint64_t n = 0;
      if (!parse_unsigned("--jobs", next(), n)) return usage();
      engine_opts.num_workers = static_cast<unsigned>(n);
    } else if (a == "--timeout-ms") {
      std::uint64_t n = 0;
      if (!parse_unsigned("--timeout-ms", next(), n)) return usage();
      engine_opts.default_timeout_ms = static_cast<std::uint32_t>(n);
    } else if (a == "--step-budget") {
      std::uint64_t n = 0;
      if (!parse_unsigned("--step-budget", next(), n)) return usage();
      engine_opts.default_step_budget = n;
    } else if (a == "--node-budget") {
      std::uint64_t n = 0;
      if (!parse_unsigned("--node-budget", next(), n)) return usage();
      engine_opts.default_node_budget = static_cast<std::size_t>(n);
    } else if (a == "--max-retries") {
      std::uint64_t n = 0;
      if (!parse_unsigned("--max-retries", next(), n)) return usage();
      engine_opts.default_max_retries = static_cast<unsigned>(n);
    } else if (a == "--degrade") {
      engine_opts.degrade = true;
    } else if (a == "--json") {
      const char* v = next();
      if (!v) return usage();
      json_path = v;
    } else if (a == "--out-dir") {
      const char* v = next();
      if (!v) return usage();
      out_dir = v;
    } else if (a == "--reorder") {
      const char* v = next();
      if (!v) return usage();
      if (std::strcmp(v, "none") == 0) {
        flow.reorder = OrderHeuristic::kNone;
      } else if (std::strcmp(v, "force") == 0) {
        flow.reorder = OrderHeuristic::kForce;
      } else if (std::strcmp(v, "sift") == 0) {
        flow.reorder = OrderHeuristic::kSift;
      } else {
        return usage();
      }
    } else if (a == "--weak-only") {
      flow.bidec.use_strong = false;
    } else if (a == "--no-exor") {
      flow.bidec.use_exor = false;
    } else if (a == "--no-cache") {
      flow.bidec.use_cache = false;
    } else if (a == "--verify") {
      const char* v = next();
      if (!v) return usage();
      const std::optional<VerifyEngine> engine = parse_verify_engine(v);
      if (!engine) {
        std::fprintf(stderr, "error: --verify expects none|bdd|sat|both, got '%s'\n", v);
        return usage();
      }
      verify = *engine;
    } else if (a == "--no-verify") {
      verify = VerifyEngine::kNone;
    } else if (a == "--proof" || a.rfind("--proof=", 0) == 0) {
      const char* v = a == "--proof" ? next() : a.c_str() + std::strlen("--proof=");
      if (!v) return usage();
      const std::optional<proof::ProofPolicy> policy = proof::parse_proof_policy(v);
      if (!policy) {
        std::fprintf(stderr, "error: --proof expects off|log|check, got '%s'\n", v);
        return usage();
      }
      flow.proof = *policy;
    } else if (a == "--lint" || a.rfind("--lint=", 0) == 0) {
      const char* v = a == "--lint" ? next() : a.c_str() + std::strlen("--lint=");
      if (!v) return usage();
      const std::optional<LintMode> mode = parse_lint_mode(v);
      if (!mode) {
        std::fprintf(stderr, "error: --lint expects off|warn|error, got '%s'\n", v);
        return usage();
      }
      flow.lint = *mode;
    } else if (a == "--threads") {
      std::uint64_t n = 0;
      if (!parse_unsigned("--threads", next(), n)) return usage();
      flow.threads = static_cast<unsigned>(n);
    } else if (!a.empty() && a[0] != '-') {
      inputs.push_back(a);
    } else {
      return usage();
    }
  }
  if (inputs.empty()) return usage();

  try {
    // Expand directories into their .pla/.blif members, sorted for
    // reproducible job ids.
    std::vector<fs::path> files;
    for (const std::string& in : inputs) {
      const fs::path p(in);
      if (fs::is_directory(p)) {
        for (const fs::directory_entry& e : fs::directory_iterator(p)) {
          if (e.is_regular_file() && has_spec_extension(e.path())) {
            files.push_back(e.path());
          }
        }
      } else {
        files.push_back(p);
      }
    }
    std::sort(files.begin(), files.end());
    if (files.empty()) {
      std::fprintf(stderr, "error: no .pla/.blif files found\n");
      return 2;
    }

    BatchEngine engine(engine_opts);
    for (const fs::path& f : files) {
      JobSpec spec;
      spec.name = f.filename().string();
      spec.source = f.string();
      spec.flow = flow;
      spec.verify = verify;
      engine.submit(std::move(spec));
    }

    const BatchOutcome outcome = engine.run();
    const EngineReport& sum = outcome.summary;

    std::printf("%-24s %-13s %6s %6s %8s %6s %10s %10s\n", "job", "status",
                "gates", "exors", "area", "levels", "wall_ms", "peak_nodes");
    for (const JobResult& r : outcome.results) {
      const JobReport& rep = r.report;
      std::printf("%-24s %-13s %6zu %6zu %8.0f %6u %10.2f %10zu\n",
                  rep.name.c_str(), to_string(rep.status), rep.gates, rep.exors,
                  rep.area, rep.levels, rep.wall_ms, rep.peak_nodes);
      if (!rep.error.empty()) {
        std::printf("    %s\n", rep.error.c_str());
      }
      if (!rep.degradation.empty()) {
        std::printf("    %u attempt(s), final rung %s\n", rep.attempts,
                    to_string(rep.degradation.back().rung));
      }
    }
    std::printf("%zu jobs on %u workers: %zu ok, %zu degraded, %zu timeout, "
                "%zu verify-failed, %zu lint-failed, %zu error; batch %.1f ms "
                "(cpu %.1f ms), %zu gates total\n",
                sum.jobs, sum.workers, sum.ok, sum.degraded, sum.timeouts,
                sum.verify_failures, sum.lint_failures, sum.errors, sum.wall_ms,
                sum.total_job_ms, sum.total_gates);

    if (!out_dir.empty()) {
      fs::create_directories(out_dir);
      std::size_t written = 0;
      for (const JobResult& r : outcome.results) {
        // Degraded results are verified netlists too; only shaped cheaper.
        if (r.report.status != JobStatus::kOk &&
            r.report.status != JobStatus::kDegraded) {
          continue;
        }
        const fs::path out =
            fs::path(out_dir) / (fs::path(r.report.name).stem().string() + ".blif");
        save_blif(r.netlist, fs::path(r.report.name).stem().string(), out.string());
        ++written;
      }
      std::printf("wrote %zu netlists to %s\n", written, out_dir.c_str());
    }
    if (!json_path.empty()) {
      std::ofstream js(json_path);
      if (!js) throw std::runtime_error("cannot open " + json_path);
      js << sum.to_json() << "\n";
      std::printf("wrote %s\n", json_path.c_str());
    }
    return sum.errors == 0 && sum.verify_failures == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
