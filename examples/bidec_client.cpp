// Line-protocol client for the synthesis daemon. Sends one synth request
// per spec file (or a ping/stats/shutdown op) and prints each response
// line to stdout.
//
//   bidec_client [--port P] [options] <files...>
//     --port P        server port (default 7171)
//     --op OP         synth | ping | stats | shutdown  (default synth)
//     --inline        send PLA files as inline text instead of paths
//                     (the server then needs no filesystem access)
//     --verify E      none|bdd|sat|both forwarded with each synth request
//     --netlist       ask for the synthesized netlist (BLIF) in responses
//     --repeat N      send each request N times (ids stay distinct)
//     --id-base N     first request id (default 1)
//
// Exit status: 0 when every response line reports a terminal status that
// is "ok" or "degraded", 1 otherwise, 2 on usage/connection errors.
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "engine/cli_opts.h"
#include "server/json.h"

namespace {

using namespace bidec;

int usage() {
  std::fprintf(stderr,
               "usage: bidec_client [--port P] [--op synth|ping|stats|shutdown]\n"
               "       [--inline] [--verify none|bdd|sat|both] [--netlist]\n"
               "       [--repeat N] [--id-base N] <files...>\n");
  return 2;
}

int connect_to(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off, 0);
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Read exactly `count` newline-terminated responses.
bool read_lines(int fd, std::size_t count, std::vector<std::string>& out) {
  std::string buf;
  char chunk[4096];
  while (out.size() < count) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) return false;
    buf.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (;;) {
      const std::size_t nl = buf.find('\n', start);
      if (nl == std::string::npos) break;
      out.push_back(buf.substr(start, nl - start));
      start = nl + 1;
    }
    buf.erase(0, start);
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint16_t port = 7171;
  std::string op = "synth";
  std::string verify;
  bool inline_pla = false;
  bool want_netlist = false;
  std::uint64_t repeat = 1;
  std::uint64_t id = 1;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (a == "--port") {
      const auto n = parse_cli_unsigned(next());
      if (!n || *n > 0xffff) return usage();
      port = static_cast<std::uint16_t>(*n);
    } else if (a == "--op") {
      const char* v = next();
      if (!v) return usage();
      op = v;
    } else if (a == "--inline") {
      inline_pla = true;
    } else if (a == "--verify") {
      const char* v = next();
      if (!v) return usage();
      verify = v;
    } else if (a == "--netlist") {
      want_netlist = true;
    } else if (a == "--repeat") {
      const auto n = parse_cli_unsigned(next());
      if (!n || *n == 0) return usage();
      repeat = *n;
    } else if (a == "--id-base") {
      const auto n = parse_cli_unsigned(next());
      if (!n) return usage();
      id = *n;
    } else if (!a.empty() && a[0] != '-') {
      files.push_back(a);
    } else {
      return usage();
    }
  }
  if (op == "synth" && files.empty()) return usage();
  if (op != "synth" && op != "ping" && op != "stats" && op != "shutdown") {
    return usage();
  }

  // Build all request lines up front.
  std::vector<std::string> requests;
  if (op != "synth") {
    requests.push_back("{\"op\": \"" + op + "\", \"id\": " +
                       std::to_string(id) + "}");
  } else {
    for (std::uint64_t r = 0; r < repeat; ++r) {
      for (const std::string& f : files) {
        std::string line = "{\"op\": \"synth\", \"id\": " + std::to_string(id++);
        if (inline_pla) {
          std::ifstream in(f);
          if (!in) {
            std::fprintf(stderr, "error: cannot read %s\n", f.c_str());
            return 2;
          }
          std::ostringstream text;
          text << in.rdbuf();
          line += ", \"pla\": \"" + json_escape(text.str()) + "\"";
          line += ", \"name\": \"" + json_escape(f) + "\"";
        } else {
          line += ", \"path\": \"" + json_escape(f) + "\"";
        }
        if (!verify.empty()) line += ", \"verify\": \"" + verify + "\"";
        if (want_netlist) line += ", \"netlist\": true";
        line += "}";
        requests.push_back(std::move(line));
      }
    }
  }

  const int fd = connect_to(port);
  if (fd < 0) {
    std::fprintf(stderr, "error: cannot connect to 127.0.0.1:%u\n",
                 static_cast<unsigned>(port));
    return 2;
  }

  std::string payload;
  for (const std::string& r : requests) {
    payload += r;
    payload += '\n';
  }
  std::vector<std::string> responses;
  const bool ok = send_all(fd, payload) &&
                  read_lines(fd, requests.size(), responses);
  ::close(fd);
  if (!ok) {
    std::fprintf(stderr, "error: connection lost (%zu of %zu responses)\n",
                 responses.size(), requests.size());
    return 2;
  }

  int rc = 0;
  for (const std::string& line : responses) {
    std::printf("%s\n", line.c_str());
    const auto doc = JsonValue::parse(line);
    const auto status = doc ? doc->get_string("status") : std::nullopt;
    if (!status || (*status != "ok" && *status != "degraded")) rc = 1;
  }
  return rc;
}
