// The everything-tool: read a PLA or BLIF design, synthesize it with the
// bi-decomposition flow (optionally reordered and technology-mapped),
// verify, optionally run ATPG, and write BLIF/DOT. This is the interface a
// downstream user scripts against.
//
//   bidecomp_cli <input.{pla,blif}>... [options]
//     -o <file.blif>        write the synthesized netlist
//     --dot <file.dot>      write a Graphviz rendering
//     --lib <file.genlib>   map onto this cell library (simplified genlib)
//     --reorder <none|force|sift>
//     --weak-only --no-exor --no-cache --no-map
//     --atpg                run stuck-at ATPG and report coverage
//     --sweep               remove redundancies after synthesis
//     --stats               print decomposition statistics
//     --lint=<mode>         off|warn|error (default off); run the structural
//                           netlist linter on the result. warn prints
//                           findings, error also exits with code 4
//     --verify=<engine>     none|bdd|sat|both (default bdd); sat checks the
//                           netlist straight against the PLA cover / original
//                           BLIF with the CDCL engine, both cross-checks
//     --engine=<engine>     bdd|sat|auto (default bdd); sat synthesizes with
//                           the SAT-backed engine (src/satdec) and never
//                           builds the specification's BDDs; auto starts on
//                           BDDs and falls over to the SAT rung of the
//                           degradation ladder when a budget trips (batch
//                           path with --degrade; single files run bdd)
//     --proof=<policy>      off|log|check (default off); log records a DRAT
//                           clause proof in every CDCL solver, check also
//                           re-validates every UNSAT verdict with the
//                           independent checker before it is trusted (a
//                           rejected proof is an engine bug and fails the
//                           job, exit code 3)
//     --threads N           BDD-kernel worker threads inside each operation
//                           (default 1 = bit-identical serial kernel;
//                           0 = one per hardware thread). Orthogonal to
//                           --jobs, which parallelizes across files
//     --jobs N              worker threads for multi-file invocations
//                           (0 or omitted: auto-detect hardware concurrency)
//     --timeout-ms T        per-job deadline for multi-file invocations
//     --node-budget N       per-job live-BDD-node cap (multi-file)
//     --max-retries R       retries after a budget/deadline trip (multi-file)
//     --degrade             retry tripped jobs on progressively cheaper flow
//                           settings, ending at forced Shannon cofactoring;
//                           such results report status "degraded" (multi-file)
//
// A single input file runs the sequential flow exactly as before. Several
// input files are dispatched through the parallel batch engine (-o/--dot/
// --lib/--atpg/--sweep apply to the single-file path only).
//
// Exit codes: 0 success, 1 load/synthesis error, 2 usage, 3 verification
// failure (the netlist was produced but an engine rejected an output),
// 4 lint gate failure (--lint=error and the linter found problems).
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "atpg/atpg.h"
#include "bidec/flow.h"
#include "engine/batch_engine.h"
#include "engine/cli_opts.h"
#include "io/blif.h"
#include "io/pla.h"
#include "proof/drat_check.h"
#include "satdec/decomposer.h"
#include "verify/sat_verifier.h"
#include "verify/verifier.h"

namespace {

using namespace bidec;

struct CliArgs {
  std::vector<std::string> inputs;
  std::string output_blif;
  std::string output_dot;
  std::string library;
  FlowOptions flow;
  bool atpg = false;
  bool sweep = false;
  bool stats = false;
  VerifyEngine verify = VerifyEngine::kBdd;
  unsigned jobs = 0;
  std::uint32_t timeout_ms = 0;
  std::size_t node_budget = 0;
  unsigned max_retries = 0;
  bool degrade = false;
};

constexpr int kExitVerifyFailed = 3;
constexpr int kExitLintFailed = 4;

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: bidecomp_cli <input.{pla,blif}>... [-o out.blif] [--dot out.dot]\n"
               "       [--lib lib.genlib] [--reorder none|force|sift]\n"
               "       [--weak-only] [--no-exor] [--no-cache] [--no-map]\n"
               "       [--atpg] [--sweep] [--stats] [--verify=none|bdd|sat|both]\n"
               "       [--engine=bdd|sat|auto] [--proof=off|log|check]\n"
               "       [--lint=off|warn|error] [--threads N]\n"
               "       [--jobs N] [--timeout-ms T]\n"
               "       [--node-budget N] [--max-retries R] [--degrade]\n");
  return 2;
}

// Strict parsing via the shared engine helper: the whole token must be
// digits, so garbage ("--jobs banana") errors instead of silently mapping
// to 0 (which means auto-detect for --jobs).
bool parse_unsigned(const char* flag, const char* v, std::uint64_t& out) {
  const std::optional<std::uint64_t> n = parse_cli_unsigned(v);
  if (!n) {
    std::fprintf(stderr, "error: %s expects a number, got '%s'\n", flag,
                 v ? v : "(nothing)");
    return false;
  }
  out = *n;
  return true;
}

/// Multi-file path: push every input through the batch engine and print one
/// summary line per file.
int run_batch(const CliArgs& args) {
  EngineOptions opts;
  opts.num_workers = args.jobs;
  opts.default_timeout_ms = args.timeout_ms;
  opts.default_node_budget = args.node_budget;
  opts.default_max_retries = args.max_retries;
  opts.degrade = args.degrade;
  opts.keep_netlists = false;
  BatchEngine engine(opts);
  for (const std::string& path : args.inputs) {
    JobSpec spec;
    spec.source = path;
    spec.flow = args.flow;
    spec.verify = args.verify;
    engine.submit(std::move(spec));
  }
  const BatchOutcome outcome = engine.run();
  for (const JobResult& r : outcome.results) {
    const JobReport& rep = r.report;
    std::printf("%-32s %-13s %zu gates (%zu exors), area %.0f, %u levels, %.1f ms\n",
                rep.name.c_str(), to_string(rep.status), rep.gates, rep.exors,
                rep.area, rep.levels, rep.wall_ms);
    if (!rep.error.empty()) std::printf("    %s\n", rep.error.c_str());
    if (!rep.degradation.empty()) {
      std::printf("    %u attempt(s), final rung %s\n", rep.attempts,
                  to_string(rep.degradation.back().rung));
    }
    for (const LintFinding& f : rep.lint.findings()) {
      std::printf("    lint %s:%s: %s [%s]\n", f.rule.c_str(),
                  to_string(f.severity), f.message.c_str(), f.object.c_str());
    }
    for (const std::size_t o : rep.failed_outputs) {
      std::printf("    failed output %zu (bdd=%d sat=%d)\n", o, rep.bdd_verdict,
                  rep.sat_verdict);
    }
  }
  const EngineReport& sum = outcome.summary;
  std::printf("%zu jobs on %u workers: %zu ok, %zu degraded, %zu timeout, "
              "%zu verify-failed, %zu lint-failed, %zu error in %.1f ms\n",
              sum.jobs, sum.workers, sum.ok, sum.degraded, sum.timeouts,
              sum.verify_failures, sum.lint_failures, sum.errors, sum.wall_ms);
  if (sum.ok + sum.degraded == sum.jobs) return 0;
  if (sum.verify_failures != 0) return kExitVerifyFailed;
  return sum.lint_failures != 0 ? kExitLintFailed : 1;
}

/// Single-file path for --engine=sat: synthesis never touches a BddManager;
/// the specification is only turned into BDDs if the BDD verifier is
/// explicitly requested (--verify=bdd|both).
int run_single_sat(const CliArgs& args) {
  const std::string& input = args.inputs.front();
  try {
    PlaFile pla;
    Netlist original;
    bool is_pla = false;
    unsigned num_inputs = 0;
    std::vector<std::string> out_names;
    if (ends_with(input, ".pla")) {
      pla = PlaFile::load(input);
      is_pla = true;
      num_inputs = pla.num_inputs;
      for (unsigned o = 0; o < pla.num_outputs; ++o) out_names.push_back(pla.output_name(o));
      std::printf("read PLA %s: %u in, %u out, %zu cubes\n", input.c_str(),
                  pla.num_inputs, pla.num_outputs, pla.rows.size());
    } else if (ends_with(input, ".blif")) {
      original = load_blif(input);
      num_inputs = static_cast<unsigned>(original.num_inputs());
      for (std::size_t o = 0; o < original.num_outputs(); ++o) {
        out_names.push_back(original.output_name(o));
      }
      std::printf("read BLIF %s: %u in, %zu out, %zu gates (kept as netlist)\n",
                  input.c_str(), num_inputs, original.num_outputs(),
                  original.stats().gates);
    } else {
      std::fprintf(stderr, "error: input must end in .pla or .blif\n");
      return 2;
    }
    if (!args.library.empty() || args.atpg || args.sweep) {
      std::fprintf(stderr,
                   "note: --lib/--atpg/--sweep run on the BDD engine only; ignored\n");
    }

    satdec::SatDecOptions opt;
    opt.use_strong = args.flow.bidec.use_strong;
    opt.use_exor = args.flow.bidec.use_exor;
    opt.absorb_inverters = args.flow.bidec.absorb_inverters;
    opt.grouping_pairs = args.flow.bidec.grouping_pairs;
    opt.balance_cost = args.flow.bidec.balance_cost;
    opt.proof = args.flow.proof;
    satdec::SatFlowResult res = is_pla ? satdec::synthesize_satdec(pla, opt)
                                       : satdec::synthesize_satdec(original, opt);
    proof::ProofStats proof_stats = res.stats.proof;

    bool verify_failed = false;
    const auto report_failures = [&](const char* engine, const VerifyResult& v) {
      if (v.ok) return;
      verify_failed = true;
      for (const std::size_t o : v.failed_outputs) {
        const char* name = o < out_names.size() ? out_names[o].c_str() : "?";
        std::fprintf(stderr, "VERIFICATION FAILED [%s] on output %zu (%s)\n",
                     engine, o, name);
      }
    };
    if (args.verify == VerifyEngine::kBdd || args.verify == VerifyEngine::kBoth) {
      BddManager mgr(num_inputs);
      std::vector<Isf> spec;
      if (is_pla) {
        spec = pla.to_isfs(mgr);
      } else {
        const std::vector<Bdd> funcs = netlist_to_bdds(mgr, original);
        for (const Bdd& f : funcs) spec.push_back(Isf::from_csf(f));
      }
      report_failures("bdd", verify_against_isfs(mgr, res.netlist, spec));
    }
    if (args.verify == VerifyEngine::kSat || args.verify == VerifyEngine::kBoth) {
      const SatVerifyOptions vopt{.proof = args.flow.proof,
                                  .proof_stats = &proof_stats};
      report_failures("sat",
                      is_pla ? sat_verify_against_pla(res.netlist, pla, vopt)
                             : sat_verify_equivalent(res.netlist, original, vopt));
    }
    if (args.flow.proof != proof::ProofPolicy::kOff) {
      std::printf("proof (%s): %llu UNSAT checked, %llu failed, %llu proof "
                  "clauses (%llu trimmed), %llu core inputs\n",
                  proof::to_string(args.flow.proof),
                  static_cast<unsigned long long>(proof_stats.checked_unsat),
                  static_cast<unsigned long long>(proof_stats.failed_checks),
                  static_cast<unsigned long long>(proof_stats.proof_clauses),
                  static_cast<unsigned long long>(proof_stats.trimmed_clauses),
                  static_cast<unsigned long long>(proof_stats.core_inputs));
    }
    if (verify_failed) return kExitVerifyFailed;
    if (args.flow.lint != LintMode::kOff) {
      const LintReport lint = lint_netlist(res.netlist);
      if (!lint.clean()) {
        std::fputs(lint.to_text().c_str(), stderr);
        std::fprintf(stderr, "lint: %zu error(s), %zu warning(s)\n",
                     lint.errors(), lint.warnings());
        if (args.flow.lint == LintMode::kError &&
            lint.has_findings(LintSeverity::kWarning)) {
          return kExitLintFailed;
        }
      }
    }
    const NetlistStats s = res.netlist.stats();
    std::printf("synthesized (sat engine): %zu gates (%zu exors, %zu inverters), "
                "area %.0f, %u levels, delay %.1f -- %s\n",
                s.gates, s.exors, s.inverters, s.area, s.cascades, s.delay,
                args.verify == VerifyEngine::kNone
                    ? "not verified"
                    : (std::string("verified OK (") + to_string(args.verify) + ")")
                          .c_str());
    if (args.stats) {
      const satdec::SatDecStats& d = res.stats;
      std::printf("formula=%llu tt=%llu grouping-queries=%llu core-freed=%llu "
                  "solves=%llu materializations=%llu models=%llu "
                  "strong(or/and/exor)=%llu/%llu/%llu weak(or/and)=%llu/%llu "
                  "shannon=%llu conflicts=%llu propagations=%llu restarts=%llu\n",
                  static_cast<unsigned long long>(d.formula_calls),
                  static_cast<unsigned long long>(d.tt_calls),
                  static_cast<unsigned long long>(d.grouping_queries),
                  static_cast<unsigned long long>(d.core_freed_vars),
                  static_cast<unsigned long long>(d.solves),
                  static_cast<unsigned long long>(d.materializations),
                  static_cast<unsigned long long>(d.enumerated_models),
                  static_cast<unsigned long long>(d.strong_or),
                  static_cast<unsigned long long>(d.strong_and),
                  static_cast<unsigned long long>(d.strong_exor),
                  static_cast<unsigned long long>(d.weak_or),
                  static_cast<unsigned long long>(d.weak_and),
                  static_cast<unsigned long long>(d.shannon_steps),
                  static_cast<unsigned long long>(d.solver.conflicts),
                  static_cast<unsigned long long>(d.solver.propagations),
                  static_cast<unsigned long long>(d.solver.restarts));
    }
    if (!args.output_blif.empty()) {
      save_blif(res.netlist, "bidecomp", args.output_blif);
      std::printf("wrote %s\n", args.output_blif.c_str());
    }
    if (!args.output_dot.empty()) {
      std::ofstream dot(args.output_dot);
      dot << res.netlist.to_dot();
      std::printf("wrote %s\n", args.output_dot.c_str());
    }
    return 0;
  } catch (const proof::ProofCheckError& e) {
    std::fprintf(stderr,
                 "PROOF CHECK FAILED: %s (engine bug, not a netlist property)\n",
                 e.what());
    return kExitVerifyFailed;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (a == "-o") {
      const char* v = next();
      if (!v) return usage();
      args.output_blif = v;
    } else if (a == "--dot") {
      const char* v = next();
      if (!v) return usage();
      args.output_dot = v;
    } else if (a == "--lib") {
      const char* v = next();
      if (!v) return usage();
      args.library = v;
    } else if (a == "--reorder") {
      const char* v = next();
      if (!v) return usage();
      if (std::strcmp(v, "none") == 0) {
        args.flow.reorder = OrderHeuristic::kNone;
      } else if (std::strcmp(v, "force") == 0) {
        args.flow.reorder = OrderHeuristic::kForce;
      } else if (std::strcmp(v, "sift") == 0) {
        args.flow.reorder = OrderHeuristic::kSift;
      } else {
        return usage();
      }
    } else if (a == "--weak-only") {
      args.flow.bidec.use_strong = false;
    } else if (a == "--no-exor") {
      args.flow.bidec.use_exor = false;
    } else if (a == "--no-cache") {
      args.flow.bidec.use_cache = false;
    } else if (a == "--no-map") {
      args.flow.bidec.absorb_inverters = false;
    } else if (a == "--verify" || a.rfind("--verify=", 0) == 0) {
      const char* v = a == "--verify" ? next() : a.c_str() + std::strlen("--verify=");
      if (!v) return usage();
      const std::optional<VerifyEngine> engine = parse_verify_engine(v);
      if (!engine) {
        std::fprintf(stderr, "error: --verify expects none|bdd|sat|both, got '%s'\n", v);
        return usage();
      }
      args.verify = *engine;
    } else if (a == "--engine" || a.rfind("--engine=", 0) == 0) {
      const char* v = a == "--engine" ? next() : a.c_str() + std::strlen("--engine=");
      if (!v) return usage();
      const std::optional<EngineSelect> engine = parse_engine_select(v);
      if (!engine) {
        std::fprintf(stderr, "error: --engine expects bdd|sat|auto, got '%s'\n", v);
        return usage();
      }
      args.flow.engine = *engine;
    } else if (a == "--proof" || a.rfind("--proof=", 0) == 0) {
      const char* v = a == "--proof" ? next() : a.c_str() + std::strlen("--proof=");
      if (!v) return usage();
      const std::optional<proof::ProofPolicy> policy = proof::parse_proof_policy(v);
      if (!policy) {
        std::fprintf(stderr, "error: --proof expects off|log|check, got '%s'\n", v);
        return usage();
      }
      args.flow.proof = *policy;
    } else if (a == "--lint" || a.rfind("--lint=", 0) == 0) {
      const char* v = a == "--lint" ? next() : a.c_str() + std::strlen("--lint=");
      if (!v) return usage();
      const std::optional<LintMode> mode = parse_lint_mode(v);
      if (!mode) {
        std::fprintf(stderr, "error: --lint expects off|warn|error, got '%s'\n", v);
        return usage();
      }
      args.flow.lint = *mode;
    } else if (a == "--threads" || a.rfind("--threads=", 0) == 0) {
      const char* v = a == "--threads" ? next() : a.c_str() + std::strlen("--threads=");
      if (!v) return usage();
      std::uint64_t n = 0;
      if (!parse_unsigned("--threads", v, n)) return usage();
      args.flow.threads = static_cast<unsigned>(n);
    } else if (a == "--atpg") {
      args.atpg = true;
    } else if (a == "--sweep") {
      args.sweep = true;
    } else if (a == "--stats") {
      args.stats = true;
    } else if (a == "--jobs") {
      std::uint64_t n = 0;
      if (!parse_unsigned("--jobs", next(), n)) return usage();
      args.jobs = static_cast<unsigned>(n);
    } else if (a == "--timeout-ms") {
      std::uint64_t n = 0;
      if (!parse_unsigned("--timeout-ms", next(), n)) return usage();
      args.timeout_ms = static_cast<std::uint32_t>(n);
    } else if (a == "--node-budget") {
      std::uint64_t n = 0;
      if (!parse_unsigned("--node-budget", next(), n)) return usage();
      args.node_budget = static_cast<std::size_t>(n);
    } else if (a == "--max-retries") {
      std::uint64_t n = 0;
      if (!parse_unsigned("--max-retries", next(), n)) return usage();
      args.max_retries = static_cast<unsigned>(n);
    } else if (a == "--degrade") {
      args.degrade = true;
    } else if (!a.empty() && a[0] != '-') {
      args.inputs.push_back(a);
    } else {
      return usage();
    }
  }
  if (args.inputs.empty()) return usage();
  if (args.inputs.size() > 1) return run_batch(args);
  if (args.flow.engine == EngineSelect::kSat) return run_single_sat(args);
  const std::string& input = args.inputs.front();

  try {
    // --- read the specification --------------------------------------------
    // NOTE: the manager must be declared before every Bdd/Isf handle so it
    // is destroyed last (handles dereference their manager on destruction).
    std::unique_ptr<BddManager> mgr;
    std::vector<Isf> spec;
    std::vector<std::string> in_names, out_names;
    unsigned num_inputs = 0;
    // The raw sources outlive the flow so the SAT verifier can check the
    // result against them directly (no BDD involvement).
    PlaFile pla;
    Netlist original;
    bool is_pla = false;
    if (ends_with(input, ".pla")) {
      pla = PlaFile::load(input);
      is_pla = true;
      num_inputs = pla.num_inputs;
      mgr = std::make_unique<BddManager>(num_inputs);
      spec = pla.to_isfs(*mgr);
      for (unsigned i = 0; i < pla.num_inputs; ++i) in_names.push_back(pla.input_name(i));
      for (unsigned o = 0; o < pla.num_outputs; ++o) out_names.push_back(pla.output_name(o));
      std::printf("read PLA %s: %u in, %u out, %zu cubes\n", input.c_str(),
                  pla.num_inputs, pla.num_outputs, pla.rows.size());
    } else if (ends_with(input, ".blif")) {
      original = load_blif(input);
      num_inputs = static_cast<unsigned>(original.num_inputs());
      mgr = std::make_unique<BddManager>(num_inputs);
      const std::vector<Bdd> funcs = netlist_to_bdds(*mgr, original);
      for (const Bdd& f : funcs) spec.push_back(Isf::from_csf(f));
      for (std::size_t i = 0; i < original.num_inputs(); ++i) {
        in_names.push_back(original.input_name(i));
      }
      for (std::size_t o = 0; o < original.num_outputs(); ++o) {
        out_names.push_back(original.output_name(o));
      }
      std::printf("read BLIF %s: %u in, %zu out, %zu gates (collapsed to BDDs)\n",
                  input.c_str(), num_inputs, original.num_outputs(),
                  original.stats().gates);
    } else {
      std::fprintf(stderr, "error: input must end in .pla or .blif\n");
      return 2;
    }

    // --- synthesize ---------------------------------------------------------
    if (!args.library.empty()) {
      std::ifstream lib_in(args.library);
      if (!lib_in) throw std::runtime_error("cannot open library " + args.library);
      args.flow.library = CellLibrary::parse(lib_in);
    }
    mgr->set_threads(args.flow.threads);
    FlowResult res = synthesize_bidecomp(*mgr, spec, in_names, out_names, args.flow);
    if (args.sweep) {
      const std::size_t removed = remove_redundancies(*mgr, res.netlist);
      if (removed != 0) std::printf("redundancy sweep removed %zu faults\n", removed);
    }

    // --- verify + report ----------------------------------------------------
    // Each requested engine reports every failing output by index, name, and
    // engine; any failure exits with the dedicated code so scripts can tell
    // a bad netlist (3) from a bad input (1).
    bool verify_failed = false;
    const auto report_failures = [&](const char* engine, const VerifyResult& v) {
      if (v.ok) return;
      verify_failed = true;
      for (const std::size_t o : v.failed_outputs) {
        const char* name = o < out_names.size() ? out_names[o].c_str() : "?";
        std::fprintf(stderr, "VERIFICATION FAILED [%s] on output %zu (%s)\n",
                     engine, o, name);
      }
    };
    if (args.verify == VerifyEngine::kBdd || args.verify == VerifyEngine::kBoth) {
      report_failures("bdd", verify_against_isfs(*mgr, res.netlist, spec));
    }
    // On the BDD engine the only CDCL solvers are the verifier miters, so
    // the proof line reports exactly what --proof certified here.
    proof::ProofStats proof_stats;
    if (args.verify == VerifyEngine::kSat || args.verify == VerifyEngine::kBoth) {
      const SatVerifyOptions vopt{.proof = args.flow.proof,
                                  .proof_stats = &proof_stats};
      report_failures("sat",
                      is_pla ? sat_verify_against_pla(res.netlist, pla, vopt)
                             : sat_verify_equivalent(res.netlist, original, vopt));
    }
    if (args.flow.proof != proof::ProofPolicy::kOff &&
        args.verify != VerifyEngine::kNone && args.verify != VerifyEngine::kBdd) {
      std::printf("proof (%s): %llu UNSAT checked, %llu failed, %llu proof "
                  "clauses (%llu trimmed), %llu core inputs\n",
                  proof::to_string(args.flow.proof),
                  static_cast<unsigned long long>(proof_stats.checked_unsat),
                  static_cast<unsigned long long>(proof_stats.failed_checks),
                  static_cast<unsigned long long>(proof_stats.proof_clauses),
                  static_cast<unsigned long long>(proof_stats.trimmed_clauses),
                  static_cast<unsigned long long>(proof_stats.core_inputs));
    }
    if (verify_failed) return kExitVerifyFailed;
    if (args.flow.lint != LintMode::kOff && !res.lint.clean()) {
      std::fputs(res.lint.to_text().c_str(), stderr);
      std::fprintf(stderr, "lint: %zu error(s), %zu warning(s)\n",
                   res.lint.errors(), res.lint.warnings());
      if (args.flow.lint == LintMode::kError &&
          res.lint.has_findings(LintSeverity::kWarning)) {
        return kExitLintFailed;
      }
    }
    const NetlistStats s = res.netlist.stats();
    std::printf("synthesized: %zu gates (%zu exors, %zu inverters), area %.0f, "
                "%u levels, delay %.1f -- %s\n",
                s.gates, s.exors, s.inverters, s.area, s.cascades, s.delay,
                args.verify == VerifyEngine::kNone
                    ? "not verified"
                    : (std::string("verified OK (") + to_string(args.verify) + ")")
                          .c_str());
    if (args.stats) {
      const BidecStats& d = res.stats;
      std::printf("calls=%zu strong(or/and/exor)=%zu/%zu/%zu weak(or/and)=%zu/%zu "
                  "terminal=%zu cache=%zu+%zu bdd-nodes=%zu->%zu\n",
                  d.calls, d.strong_or, d.strong_and, d.strong_exor, d.weak_or,
                  d.weak_and, d.terminal_cases, d.cache_hits, d.cache_complement_hits,
                  res.bdd_nodes_before, res.bdd_nodes_after);
    }
    if (args.atpg) {
      const AtpgResult atpg = run_atpg(*mgr, res.netlist);
      std::printf("ATPG: %zu faults, %.2f%% coverage (%zu redundant)\n",
                  atpg.total_faults, 100.0 * atpg.coverage(), atpg.redundant);
    }

    // --- write outputs ------------------------------------------------------
    if (!args.output_blif.empty()) {
      save_blif(res.netlist, "bidecomp", args.output_blif);
      std::printf("wrote %s\n", args.output_blif.c_str());
    }
    if (!args.output_dot.empty()) {
      std::ofstream dot(args.output_dot);
      dot << res.netlist.to_dot();
      std::printf("wrote %s\n", args.output_dot.c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
