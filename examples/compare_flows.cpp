// Compare the three synthesis flows of the paper's evaluation on one
// benchmark: BI-DECOMP (this work), the SIS-like two-level baseline, and the
// BDS-like BDD-structural baseline. All three netlists are verified against
// the same specification.
//
//   $ ./compare_flows [benchmark-name]       (default: 9sym)
//   $ ./compare_flows --list
#include <cstdio>
#include <cstring>
#include <string>

#include "baseline/bds_like.h"
#include "baseline/sis_like.h"
#include "benchgen/benchgen.h"
#include "bidec/bidecomposer.h"
#include "verify/verifier.h"

int main(int argc, char** argv) {
  using namespace bidec;

  if (argc > 1 && std::strcmp(argv[1], "--list") == 0) {
    std::printf("available benchmarks:\n");
    for (const Benchmark& b : full_suite()) {
      std::printf("  %-8s %3u in %4u out  %s\n", b.name.c_str(), b.num_inputs,
                  b.num_outputs, b.note.c_str());
    }
    return 0;
  }
  const std::string name = argc > 1 ? argv[1] : "9sym";

  try {
    const Benchmark& bench = find_benchmark(name);
    BddManager mgr(bench.num_inputs);
    const std::vector<Isf> spec = bench.build(mgr);

    BiDecomposer dec(mgr, {}, bench.input_names());
    const auto out_names = bench.output_names();
    for (std::size_t o = 0; o < spec.size(); ++o) dec.add_output(out_names[o], spec[o]);
    dec.finish();
    const Netlist& ours = dec.netlist();

    const Netlist sis =
        sis_like_synthesize(mgr, spec, bench.input_names(), bench.output_names());
    const Netlist bds =
        bds_like_synthesize(mgr, spec, bench.input_names(), bench.output_names());

    std::printf("benchmark %s (%u in, %u out)%s\n\n", bench.name.c_str(),
                bench.num_inputs, bench.num_outputs,
                bench.stand_in ? " [synthetic stand-in]" : "");
    std::printf("%-22s %7s %7s %9s %6s %8s %9s\n", "flow", "gates", "exors", "area",
                "casc", "delay", "verified");
    const auto row = [&](const char* label, const Netlist& net) {
      const NetlistStats s = net.stats();
      const bool ok = verify_against_isfs(mgr, net, spec).ok;
      std::printf("%-22s %7zu %7zu %9.0f %6u %8.1f %9s\n", label, s.gates, s.exors,
                  s.area, s.cascades, s.delay, ok ? "yes" : "NO");
    };
    row("BI-DECOMP (strong)", ours);
    row("SIS-like baseline", sis);
    row("BDS-like baseline", bds);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
