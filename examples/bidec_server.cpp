// Synthesis daemon: bind a loopback port and serve synthesis jobs over
// newline-delimited JSON until SIGTERM/SIGINT or a client "shutdown" op.
// Shutdown drains: every admitted job is finished and answered before the
// process exits.
//
//   bidec_server [options]
//     --port P            loopback TCP port (default 7171; 0 = ephemeral,
//                         printed on stdout as "listening on <port>")
//     --jobs N            worker threads (0 = hardware concurrency)
//     --queue-cap Q       bounded job-queue capacity (default 64)
//     --admission M       reject | block  (what a full queue does; default
//                         reject answers {"status":"rejected"} immediately)
//     --client-inflight K max in-flight jobs per connection (default 8)
//     --no-shared-cache   disable the cross-job component cache
//     --cache-shard-cap E max entries per cache shard (default 4096)
//     --recycle-jobs N    rebuild a pooled manager after N jobs (default 64)
//     --audit-managers    audit managers between leases, discard unhealthy
//     --timeout-ms T      default per-job deadline for requests without one
//     --step-budget S     default per-job BDD step budget
//     --node-budget B     default per-job live-node cap
#include <csignal>
#include <cstdio>
#include <cstring>

#include "engine/cli_opts.h"
#include "server/server.h"

namespace {

using namespace bidec;

// SIGTERM/SIGINT flip the server's stop flag; the main thread parked in
// wait() then runs the ordinary drain. request_stop is an atomic store —
// async-signal-safe.
BidecServer* g_server = nullptr;

void on_signal(int) {
  if (g_server != nullptr) g_server->request_stop();
}

int usage() {
  std::fprintf(stderr,
               "usage: bidec_server [--port P] [--jobs N] [--queue-cap Q]\n"
               "       [--admission reject|block] [--client-inflight K]\n"
               "       [--no-shared-cache] [--cache-shard-cap E]\n"
               "       [--recycle-jobs N] [--audit-managers]\n"
               "       [--timeout-ms T] [--step-budget S] [--node-budget B]\n");
  return 2;
}

bool parse_flag_number(const char* flag, const char* value, std::uint64_t& out) {
  const std::optional<std::uint64_t> n = parse_cli_unsigned(value);
  if (!n) {
    std::fprintf(stderr, "error: %s expects a number, got '%s'\n", flag,
                 value ? value : "(nothing)");
    return false;
  }
  out = *n;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  ServerOptions opts;
  opts.port = 7171;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    std::uint64_t n = 0;
    if (a == "--port") {
      if (!parse_flag_number("--port", next(), n) || n > 0xffff) return usage();
      opts.port = static_cast<std::uint16_t>(n);
    } else if (a == "--jobs") {
      if (!parse_flag_number("--jobs", next(), n)) return usage();
      // 0 = auto-detect; resolved to hardware concurrency here so the
      // startup banner shows the real worker count.
      opts.num_workers = resolve_worker_count(static_cast<unsigned>(n));
    } else if (a == "--queue-cap") {
      if (!parse_flag_number("--queue-cap", next(), n)) return usage();
      opts.queue_capacity = static_cast<std::size_t>(n);
    } else if (a == "--admission") {
      const char* v = next();
      if (!v) return usage();
      if (std::strcmp(v, "reject") == 0) {
        opts.admission = AdmissionPolicy::kReject;
      } else if (std::strcmp(v, "block") == 0) {
        opts.admission = AdmissionPolicy::kBlock;
      } else {
        return usage();
      }
    } else if (a == "--client-inflight") {
      if (!parse_flag_number("--client-inflight", next(), n)) return usage();
      opts.per_client_inflight = static_cast<std::size_t>(n);
    } else if (a == "--no-shared-cache") {
      opts.shared_cache = false;
    } else if (a == "--cache-shard-cap") {
      if (!parse_flag_number("--cache-shard-cap", next(), n)) return usage();
      opts.cache_entries_per_shard = static_cast<std::size_t>(n);
    } else if (a == "--recycle-jobs") {
      if (!parse_flag_number("--recycle-jobs", next(), n)) return usage();
      opts.recycle_after_jobs = static_cast<unsigned>(n);
    } else if (a == "--audit-managers") {
      opts.audit_managers = true;
    } else if (a == "--timeout-ms") {
      if (!parse_flag_number("--timeout-ms", next(), n)) return usage();
      opts.default_timeout_ms = static_cast<std::uint32_t>(n);
    } else if (a == "--step-budget") {
      if (!parse_flag_number("--step-budget", next(), n)) return usage();
      opts.default_step_budget = n;
    } else if (a == "--node-budget") {
      if (!parse_flag_number("--node-budget", next(), n)) return usage();
      opts.default_node_budget = static_cast<std::size_t>(n);
    } else {
      return usage();
    }
  }

  try {
    BidecServer server(opts);
    g_server = &server;
    std::signal(SIGTERM, on_signal);
    std::signal(SIGINT, on_signal);
    server.start();
    std::printf("listening on %u\n", static_cast<unsigned>(server.port()));
    std::fflush(stdout);
    server.wait();
    const ServerStats s = server.stats();
    std::printf("drained: %llu accepted, %llu completed, %llu rejected\n",
                static_cast<unsigned long long>(s.accepted),
                static_cast<unsigned long long>(s.completed),
                static_cast<unsigned long long>(s.rejected_queue +
                                                s.rejected_client));
    g_server = nullptr;
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
