// Export the benchmark suite to disk: one .pla (two-level view, extracted
// with ISOP) and one .blif (decomposed netlist) per benchmark, plus a .dot
// rendering of the smallest ones. Useful for feeding the workload into
// external tools.
//
//   $ ./export_suite [output-dir]     (default: ./suite_export)
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "benchgen/benchgen.h"
#include "bidec/flow.h"
#include "io/blif.h"
#include "io/pla.h"
#include "sop/cover.h"

int main(int argc, char** argv) {
  using namespace bidec;
  const std::string dir = argc > 1 ? argv[1] : "suite_export";
  std::filesystem::create_directories(dir);

  for (const Benchmark& bench : full_suite()) {
    if (bench.num_inputs > 32) {
      std::printf("%-8s skipped for PLA export (%u inputs)\n", bench.name.c_str(),
                  bench.num_inputs);
      continue;
    }
    try {
      BddManager mgr(bench.num_inputs);
      const std::vector<Isf> spec = bench.build(mgr);

      // Two-level view: ISOP covers of every output interval.
      PlaFile pla;
      pla.num_inputs = bench.num_inputs;
      pla.num_outputs = bench.num_outputs;
      pla.type = PlaFile::Type::kFD;
      pla.input_names = bench.input_names();
      pla.output_names = bench.output_names();
      for (unsigned o = 0; o < bench.num_outputs; ++o) {
        for (const CubeLits& lits : mgr.isop(spec[o].q(), ~spec[o].r())) {
          std::string in_part(bench.num_inputs, '-');
          for (unsigned v = 0; v < bench.num_inputs; ++v) {
            if (lits[v] == 1) in_part[v] = '1';
            if (lits[v] == 0) in_part[v] = '0';
          }
          std::string out_part(bench.num_outputs, '0');
          out_part[o] = '1';
          pla.rows.push_back(PlaFile::Row{std::move(in_part), std::move(out_part)});
        }
      }
      pla.save(dir + "/" + bench.name + ".pla");

      // Multi-level view: the decomposed netlist.
      const FlowResult res =
          synthesize_bidecomp(mgr, spec, bench.input_names(), bench.output_names());
      save_blif(res.netlist, bench.name, dir + "/" + bench.name + ".blif");
      if (res.netlist.stats().gates <= 60) {
        std::ofstream dot(dir + "/" + bench.name + ".dot");
        dot << res.netlist.to_dot();
      }
      std::printf("%-8s -> %s/%s.{pla,blif} (%zu cubes, %zu gates)\n",
                  bench.name.c_str(), dir.c_str(), bench.name.c_str(), pla.rows.size(),
                  res.netlist.stats().gates);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: error: %s\n", bench.name.c_str(), e.what());
      return 1;
    }
  }
  return 0;
}
