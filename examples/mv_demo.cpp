// Multiple-valued bi-decomposition demo (the paper's future-work extension,
// Section 9: "generalization of the algorithm for multi-valued logic with
// potential applications in datamining").
//
// Scenario in the datamining spirit: a 4-level risk score over six binary
// attributes, defined as the MAX of two independent sub-scores. The MV
// decomposer rediscovers the MAX split and realizes the result as a bundle
// of nested threshold netlists (value = number of asserted thresholds).
//
//   $ ./mv_demo
#include <cstdio>

#include "mv/mv_decompose.h"

int main() {
  using namespace bidec;

  // Six binary attributes: a0..a2 drive the "history" sub-score, a3..a5 the
  // "exposure" sub-score; each sub-score is the number of set attributes,
  // clipped to 3; the total risk is the MAX of the two.
  const unsigned nv = 6, k = 4;
  BddManager mgr(nv);
  const auto value_of = [](unsigned m) {
    const unsigned g = std::min(3u, static_cast<unsigned>(__builtin_popcount(m & 0b000111)));
    const unsigned h = std::min(3u, static_cast<unsigned>(__builtin_popcount(m & 0b111000)));
    return std::max(g, h);
  };
  std::vector<Bdd> value_sets(k, mgr.bdd_false());
  for (unsigned m = 0; m < (1u << nv); ++m) {
    CubeLits lits(nv, -1);
    for (unsigned v = 0; v < nv; ++v) lits[v] = static_cast<signed char>((m >> v) & 1);
    value_sets[value_of(m)] |= mgr.make_cube(lits);
  }
  const MvIsf risk = MvIsf::from_value_sets(mgr, value_sets);
  std::printf("4-valued risk score over %u binary attributes (%u thresholds)\n",
              nv, risk.num_values() - 1);

  // Show the threshold encoding.
  for (unsigned j = 1; j < k; ++j) {
    std::printf("  [risk >= %u]: |Q| = %4.0f minterms\n", j,
                mgr.sat_count(risk.threshold(j).q()));
  }

  // Is the MAX structure detectable at MV level?
  const unsigned xa[] = {0, 1, 2}, xb[] = {3, 4, 5};
  std::printf("MAX-decomposable with {a0,a1,a2} | {a3,a4,a5}: %s\n",
              check_max_decomposable(risk, xa, xb) ? "yes" : "no");

  // Decompose and check.
  const MvRealization real = decompose_mv(risk);
  const NetlistStats s = real.netlist.stats();
  std::printf("decomposed: %zu gates, %u levels; MV-level splits: %zu MAX, %zu MIN\n",
              s.gates, s.cascades, real.max_splits, real.min_splits);

  unsigned mismatches = 0;
  for (unsigned m = 0; m < (1u << nv); ++m) {
    std::vector<bool> in(nv);
    for (unsigned v = 0; v < nv; ++v) in[v] = (m >> v) & 1;
    if (mv_evaluate(real.netlist, in) != value_of(m)) ++mismatches;
  }
  std::printf("exhaustive check over %u inputs: %u mismatches\n", 1u << nv, mismatches);

  // A few sample evaluations.
  for (const unsigned m : {0b000000u, 0b000111u, 0b101001u, 0b111111u}) {
    std::vector<bool> in(nv);
    for (unsigned v = 0; v < nv; ++v) in[v] = (m >> v) & 1;
    std::printf("  attrs=%c%c%c%c%c%c -> risk %u\n", in[5] ? '1' : '0', in[4] ? '1' : '0',
                in[3] ? '1' : '0', in[2] ? '1' : '0', in[1] ? '1' : '0',
                in[0] ? '1' : '0', mv_evaluate(real.netlist, in));
  }
  return mismatches == 0 ? 0 : 1;
}
