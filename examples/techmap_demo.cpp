// Technology mapping demo (the paper's future-work item "extending the
// algorithm to work with arbitrary standard cell libraries"): decompose a
// benchmark, then map the same netlist onto three different libraries and
// compare cost. Shows why EXOR-rich netlists need an EXOR-priced library.
//
//   $ ./techmap_demo [benchmark-name] [library-file]   (default: 9sym)
#include <cstdio>
#include <fstream>
#include <string>

#include "benchgen/benchgen.h"
#include "bidec/flow.h"
#include "verify/verifier.h"

int main(int argc, char** argv) {
  using namespace bidec;
  const std::string name = argc > 1 ? argv[1] : "9sym";

  try {
    const Benchmark& bench = find_benchmark(name);
    BddManager mgr(bench.num_inputs);
    const std::vector<Isf> spec = bench.build(mgr);

    const FlowResult res =
        synthesize_bidecomp(mgr, spec, bench.input_names(), bench.output_names());
    std::printf("benchmark %s: decomposed into %zu gates (%zu EXOR)\n\n",
                bench.name.c_str(), res.netlist.stats().gates, res.netlist.stats().exors);

    struct Entry {
      const char* label;
      CellLibrary lib;
    };
    std::vector<Entry> libraries;
    libraries.push_back({"paper default (full)", CellLibrary::paper_default()});
    libraries.push_back({"NAND2 + INV only", CellLibrary::nand_inv()});
    // A library where EXOR is expensive: models the paper's observation that
    // SIS ignored EXOR cells even when listed.
    CellLibrary pricey = CellLibrary::paper_default();
    CellLibrary no_xor;
    for (const Cell& c : pricey.cells()) {
      if (c.function != GateType::kXor && c.function != GateType::kXnor) {
        no_xor.add_cell(c);
      }
    }
    libraries.push_back({"no EXOR cells", no_xor});
    if (argc > 2) {
      std::ifstream in(argv[2]);
      // (CellLibrary::parse throws with a readable message on bad files.)
      libraries.push_back({argv[2], CellLibrary::parse(in)});
    }

    std::printf("%-22s %7s %9s %9s %7s %9s\n", "library", "cells", "area", "delay",
                "depth", "verified");
    for (const Entry& e : libraries) {
      const Netlist mapped = map_to_library(res.netlist, e.lib);
      const MappedStats s = library_stats(mapped, e.lib);
      const bool ok = verify_against_isfs(mgr, mapped, spec).ok;
      std::printf("%-22s %7zu %9.1f %9.1f %7u %9s\n", e.label, s.cells, s.area,
                  s.delay, s.depth, ok ? "yes" : "NO");
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
