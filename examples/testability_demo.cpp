// Testability demo (Theorem 5): decompose a benchmark, enumerate all single
// stuck-at faults, detect them with random fault simulation plus exact
// BDD-based generation, and print a handful of generated test vectors.
//
//   $ ./testability_demo [benchmark-name]    (default: rd84)
#include <cstdio>
#include <string>

#include "atpg/atpg.h"
#include "benchgen/benchgen.h"
#include "bidec/bidecomposer.h"

int main(int argc, char** argv) {
  using namespace bidec;
  const std::string name = argc > 1 ? argv[1] : "rd84";

  try {
    const Benchmark& bench = find_benchmark(name);
    std::printf("benchmark %s: %u inputs, %u outputs%s\n", bench.name.c_str(),
                bench.num_inputs, bench.num_outputs,
                bench.stand_in ? " (synthetic stand-in)" : "");

    BddManager mgr(bench.num_inputs);
    const std::vector<Isf> spec = bench.build(mgr);
    BiDecomposer dec(mgr, {}, bench.input_names());
    const auto out_names = bench.output_names();
    for (std::size_t o = 0; o < spec.size(); ++o) dec.add_output(out_names[o], spec[o]);
    dec.finish();

    const NetlistStats s = dec.netlist().stats();
    std::printf("netlist: %zu gates, %u levels\n", s.gates, s.cascades);

    // Use few random rounds so the exact engine generates plenty of tests to
    // show off.
    const AtpgResult res = run_atpg(mgr, dec.netlist(), /*random_words=*/2);
    std::printf("faults: %zu total, %zu detected by random patterns, %zu by exact "
                "generation, %zu redundant\n",
                res.total_faults, res.detected_by_random, res.detected_by_exact,
                res.redundant);
    std::printf("coverage: %.2f%% (Theorem 5 predicts 100%%)\n", 100.0 * res.coverage());

    std::printf("\nsample generated tests (fault -> input vector):\n");
    std::size_t shown = 0;
    for (const auto& [fault, test] : res.generated_tests) {
      if (shown++ == 8) break;
      std::string vec;
      for (const bool bit : test) vec += bit ? '1' : '0';
      std::printf("  node %u %s stuck-at-%d  ->  %s\n", fault.node,
                  fault.pin < 0 ? "output" : (fault.pin == 0 ? "pin0" : "pin1"),
                  fault.stuck_value ? 1 : 0, vec.c_str());
    }
    if (res.generated_tests.empty()) {
      std::printf("  (random patterns already detected every fault)\n");
    }
    return res.redundant == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
