// bidec_lint: standalone structural netlist linter. Reads BLIF files with a
// deliberately lenient parser (combinational loops, undriven and
// multiply-driven nets, wide gates — everything the strict flow reader
// rejects outright — stay representable) and reports findings with stable
// rule ids. See DESIGN.md section 10 for the rule catalog.
//
//   bidec_lint <file.blif>... [options]
//     --json       emit one JSON report per file instead of text lines
//     --support    enable the NL109 structural support-inflation rule
//     --relaxed    demote redundancy rules (NL104/NL105/NL108) to info
//     --quiet      no output, exit code only
//
// Exit codes: 0 all files clean, 1 findings reported, 2 usage,
// 3 a file could not be read or parsed at all.
#include <cstdio>
#include <string>
#include <vector>

#include "lint/netlist_lint.h"

namespace {

using namespace bidec;

int usage() {
  std::fprintf(stderr,
               "usage: bidec_lint <file.blif>... [--json] [--support] [--relaxed]\n"
               "       [--quiet]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> inputs;
  NetlistLintOptions options;
  bool json = false;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--json") {
      json = true;
    } else if (a == "--support") {
      options.check_support = true;
    } else if (a == "--relaxed") {
      options.relaxed_redundancy = true;
    } else if (a == "--quiet") {
      quiet = true;
    } else if (!a.empty() && a[0] != '-') {
      inputs.push_back(a);
    } else {
      return usage();
    }
  }
  if (inputs.empty()) return usage();

  bool any_findings = false;
  bool any_io_error = false;
  for (const std::string& path : inputs) {
    RawNetlist net;
    try {
      net = RawNetlist::load_blif(path);
    } catch (const std::exception& e) {
      any_io_error = true;
      if (!quiet) std::fprintf(stderr, "%s: %s\n", path.c_str(), e.what());
      continue;
    }
    const LintReport report = lint_netlist(net, options);
    if (!report.clean()) any_findings = true;
    if (quiet) continue;
    if (json) {
      std::printf("{\"file\": \"%s\", \"report\": %s}\n", path.c_str(),
                  report.to_json().c_str());
    } else if (report.clean()) {
      std::printf("%s: clean (%zu gates)\n", path.c_str(), net.gates.size());
    } else {
      std::string text = report.to_text();
      // Prefix every finding line with the file name, compiler-style.
      std::string prefixed;
      std::size_t start = 0;
      while (start < text.size()) {
        std::size_t end = text.find('\n', start);
        if (end == std::string::npos) end = text.size();
        prefixed += path + ": " + text.substr(start, end - start) + "\n";
        start = end + 1;
      }
      std::fputs(prefixed.c_str(), stdout);
      std::printf("%s: %zu error(s), %zu warning(s)\n", path.c_str(),
                  report.errors(), report.warnings());
    }
  }
  if (any_io_error) return 3;
  return any_findings ? 1 : 0;
}
