// Quickstart: build an incompletely specified function, bi-decompose it
// into a two-input gate netlist, inspect the result and export BLIF.
//
//   $ ./quickstart
//
// Walks through the core API: BddManager -> Isf -> BiDecomposer -> Netlist.
#include <cstdio>

#include "bidec/bidecomposer.h"
#include "io/blif.h"
#include "verify/verifier.h"

int main() {
  using namespace bidec;

  // 1. A BDD manager over four variables a, b, c, d.
  BddManager mgr(4);
  const Bdd a = mgr.var(0), b = mgr.var(1), c = mgr.var(2), d = mgr.var(3);

  // 2. A specification with don't-cares: the function must be 1 where
  //    (a&b)^c holds and d is 0, must be 0 where ~(a|c) holds and d is 1,
  //    and is free elsewhere.
  const Bdd on_set = ((a & b) ^ c) & ~d;
  const Bdd off_set = ~(a | c) & d;
  const Isf spec(on_set, off_set - on_set);
  std::printf("specification: |Q| = %.0f minterms, |R| = %.0f minterms, "
              "|DC| = %.0f minterms\n",
              mgr.sat_count(spec.q()), mgr.sat_count(spec.r()),
              mgr.sat_count(spec.dc()));

  // 3. Decompose. The decomposer owns a netlist whose inputs mirror the
  //    manager's variables.
  BiDecomposer decomposer(mgr, BidecOptions{}, {"a", "b", "c", "d"});
  decomposer.add_output("f", spec);
  decomposer.finish();  // map inverters into NAND/NOR/XNOR

  // 4. Inspect the result.
  const NetlistStats stats = decomposer.netlist().stats();
  std::printf("netlist: %zu gates (%zu EXOR, %zu inverters), area %.0f, "
              "%u levels, delay %.1f\n",
              stats.gates, stats.exors, stats.inverters, stats.area,
              stats.cascades, stats.delay);
  const BidecStats& ds = decomposer.stats();
  std::printf("decomposition: %zu recursive calls (%zu strong, %zu weak, "
              "%zu terminal, %zu cache hits)\n",
              ds.calls, ds.strong_total(), ds.weak_total(), ds.terminal_cases,
              ds.cache_hits + ds.cache_complement_hits);

  // 5. Verify with the BDD-based verifier and print the BLIF.
  const std::vector<Isf> outputs{spec};
  const bool ok = verify_against_isfs(mgr, decomposer.netlist(), outputs).ok;
  std::printf("verification: %s\n\n", ok ? "netlist is compatible with the spec"
                                         : "MISMATCH");
  std::printf("%s", write_blif(decomposer.netlist(), "quickstart").c_str());
  return ok ? 0 : 1;
}
