// Command-line decomposer mirroring the original BI-DECOMP program: read an
// espresso PLA, bi-decompose every output into two-input gates, verify with
// the BDD-based verifier and write a BLIF netlist.
//
//   $ ./decompose_pla input.pla output.blif [options]
//   $ ./decompose_pla --demo            # run on a built-in example
//
// Options: --no-exor --no-cache --weak-only --no-map --stats
#include <cstdio>
#include <cstring>
#include <string>

#include "bidec/bidecomposer.h"
#include "io/blif.h"
#include "io/pla.h"
#include "verify/verifier.h"

namespace {

constexpr const char* kDemoPla = R"(.i 5
.o 3
.ilb a b c d e
.ob s0 s1 s2
.type fd
11--- 100
--11- 110
1-1-1 011
0-0-0 -01
---11 1-0
.e
)";

void usage() {
  std::fprintf(stderr,
               "usage: decompose_pla <input.pla> <output.blif> "
               "[--no-exor] [--no-cache] [--weak-only] [--no-map] [--stats]\n"
               "       decompose_pla --demo [options]\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bidec;

  std::string in_path, out_path;
  BidecOptions options;
  bool demo = false, print_stats = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--demo") == 0) {
      demo = true;
    } else if (std::strcmp(arg, "--no-exor") == 0) {
      options.use_exor = false;
    } else if (std::strcmp(arg, "--no-cache") == 0) {
      options.use_cache = false;
    } else if (std::strcmp(arg, "--weak-only") == 0) {
      options.use_strong = false;
    } else if (std::strcmp(arg, "--no-map") == 0) {
      options.absorb_inverters = false;
    } else if (std::strcmp(arg, "--stats") == 0) {
      print_stats = true;
    } else if (in_path.empty()) {
      in_path = arg;
    } else if (out_path.empty()) {
      out_path = arg;
    } else {
      usage();
      return 2;
    }
  }
  if (!demo && in_path.empty()) {
    usage();
    return 2;
  }

  try {
    const PlaFile pla = demo ? PlaFile::parse_string(kDemoPla) : PlaFile::load(in_path);
    std::printf("read %s: %u inputs, %u outputs, %zu cubes\n",
                demo ? "<demo>" : in_path.c_str(), pla.num_inputs, pla.num_outputs,
                pla.rows.size());

    BddManager mgr(pla.num_inputs);
    const std::vector<Isf> spec = pla.to_isfs(mgr);

    std::vector<std::string> in_names;
    for (unsigned i = 0; i < pla.num_inputs; ++i) in_names.push_back(pla.input_name(i));
    BiDecomposer dec(mgr, options, in_names);
    for (unsigned o = 0; o < pla.num_outputs; ++o) {
      dec.add_output(pla.output_name(o), spec[o]);
    }
    dec.finish();

    const VerifyResult ok = verify_against_isfs(mgr, dec.netlist(), spec);
    if (!ok.ok) {
      std::fprintf(stderr, "VERIFICATION FAILED on output %zu\n", ok.first_failed_output);
      return 1;
    }

    const NetlistStats s = dec.netlist().stats();
    std::printf("decomposed: %zu gates (%zu exors), area %.0f, %u cascades, "
                "delay %.1f -- verified OK\n",
                s.gates, s.exors, s.area, s.cascades, s.delay);
    if (print_stats) {
      const BidecStats& ds = dec.stats();
      std::printf("calls=%zu strong(or/and/exor)=%zu/%zu/%zu weak(or/and)=%zu/%zu "
                  "terminal=%zu cache=%zu+%zu inessential=%zu\n",
                  ds.calls, ds.strong_or, ds.strong_and, ds.strong_exor, ds.weak_or,
                  ds.weak_and, ds.terminal_cases, ds.cache_hits,
                  ds.cache_complement_hits, ds.inessential_removed);
    }

    if (!out_path.empty()) {
      save_blif(dec.netlist(), "bidecomp", out_path);
      std::printf("wrote %s\n", out_path.c_str());
    } else {
      std::printf("\n%s", write_blif(dec.netlist(), "bidecomp").c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
