// Randomized cross-cutting stress: every option combination of the
// decomposer against random multi-output ISFs, BDS-like dominator splits on
// structured functions, netlist pipelines through BLIF round trips. These
// are the "kitchen sink" safety nets on top of the per-module suites.
#include <gtest/gtest.h>

#include <random>

#include "baseline/bds_like.h"
#include "bidec/flow.h"
#include "io/blif.h"
#include "tt/truth_table.h"
#include "verify/verifier.h"

namespace bidec {
namespace {

struct OptionCase {
  bool exor;
  bool strong;
  bool cache;
  bool balance;
  bool absorb;
  unsigned pairs;
};

class DecomposerOptionMatrix : public ::testing::TestWithParam<OptionCase> {};

TEST_P(DecomposerOptionMatrix, AllCombinationsVerify) {
  const OptionCase oc = GetParam();
  std::mt19937_64 rng(0xbeef ^ (oc.exor << 1) ^ (oc.strong << 2) ^ (oc.cache << 3) ^
                      (oc.balance << 4) ^ (oc.absorb << 5) ^ oc.pairs);
  for (int trial = 0; trial < 4; ++trial) {
    const unsigned nv = 5 + trial % 3;
    BddManager mgr(nv);
    std::vector<Isf> spec;
    for (int o = 0; o < 3; ++o) {
      const TruthTable on = TruthTable::random(nv, rng, 0.5);
      const TruthTable dc = TruthTable::random(nv, rng, 0.25);
      spec.emplace_back((on - dc).to_bdd(mgr), ((~on) - dc).to_bdd(mgr));
    }
    FlowOptions options;
    options.bidec.use_exor = oc.exor;
    options.bidec.use_strong = oc.strong;
    options.bidec.use_cache = oc.cache;
    options.bidec.balance_cost = oc.balance;
    options.bidec.absorb_inverters = oc.absorb;
    options.bidec.grouping_pairs = oc.pairs;
    const FlowResult res = synthesize_bidecomp(mgr, spec, {}, {}, options);
    ASSERT_TRUE(verify_against_isfs(mgr, res.netlist, spec).ok)
        << "exor=" << oc.exor << " strong=" << oc.strong << " cache=" << oc.cache
        << " balance=" << oc.balance << " absorb=" << oc.absorb
        << " pairs=" << oc.pairs << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, DecomposerOptionMatrix,
    ::testing::Values(OptionCase{true, true, true, true, true, 4},
                      OptionCase{false, true, true, true, true, 4},
                      OptionCase{true, false, true, true, true, 4},
                      OptionCase{true, true, false, true, true, 4},
                      OptionCase{true, true, true, false, true, 4},
                      OptionCase{true, true, true, true, false, 4},
                      OptionCase{true, true, true, true, true, 1},
                      OptionCase{false, false, false, false, false, 1},
                      OptionCase{true, true, true, true, true, 8}),
    // `pinfo`, not `info`: the macro body has its own `info` that
    // -Wshadow would flag.
    [](const auto& pinfo) {
      const OptionCase& o = pinfo.param;
      std::string s;
      s += o.exor ? "X" : "x";
      s += o.strong ? "S" : "s";
      s += o.cache ? "C" : "c";
      s += o.balance ? "B" : "b";
      s += o.absorb ? "A" : "a";
      s += std::to_string(o.pairs);
      return s;
    });

TEST(BdsDominators, ConjunctiveStructureIsFound) {
  // F = (a | b) & (c | d) & (e | f): the BDD has 1-dominators; the
  // dominator-driven BDS flow must find the AND split and stay close to the
  // optimal 5 gates.
  BddManager mgr(6);
  const Bdd f = (mgr.var(0) | mgr.var(1)) & (mgr.var(2) | mgr.var(3)) &
                (mgr.var(4) | mgr.var(5));
  const std::vector<Isf> spec{Isf::from_csf(f)};
  const Netlist net = bds_like_synthesize(mgr, spec, {}, {}, /*absorb=*/false);
  EXPECT_TRUE(verify_against_isfs(mgr, net, spec).ok);
  EXPECT_LE(net.stats().two_input, 6u);  // 3 ORs + 2 ANDs (+ slack 1)
  EXPECT_EQ(net.stats().inverters, 0u);
}

TEST(BdsDominators, DisjunctiveStructureIsFound) {
  BddManager mgr(6);
  const Bdd f = (mgr.var(0) & mgr.var(1)) | (mgr.var(2) & mgr.var(3)) |
                (mgr.var(4) & mgr.var(5));
  const std::vector<Isf> spec{Isf::from_csf(f)};
  const Netlist net = bds_like_synthesize(mgr, spec, {}, {}, /*absorb=*/false);
  EXPECT_TRUE(verify_against_isfs(mgr, net, spec).ok);
  EXPECT_LE(net.stats().two_input, 6u);
}

TEST(BdsDominators, RandomFunctionsAlwaysCorrect) {
  std::mt19937_64 rng(0xd0d0);
  for (int trial = 0; trial < 15; ++trial) {
    const unsigned nv = 4 + trial % 4;
    BddManager mgr(nv);
    std::vector<Isf> spec;
    for (int o = 0; o < 2; ++o) {
      const TruthTable on = TruthTable::random(nv, rng, 0.4);
      const TruthTable dc = TruthTable::random(nv, rng, 0.2);
      spec.emplace_back((on - dc).to_bdd(mgr), ((~on) - dc).to_bdd(mgr));
    }
    const Netlist net = bds_like_synthesize(mgr, spec, {}, {});
    EXPECT_TRUE(verify_against_isfs(mgr, net, spec).ok) << trial;
  }
}

TEST(Pipelines, DecomposeMapBlifRoundTrip) {
  std::mt19937_64 rng(0xfeed);
  BddManager mgr(6);
  std::vector<Isf> spec;
  for (int o = 0; o < 3; ++o) {
    spec.push_back(Isf::from_csf(TruthTable::random(6, rng).to_bdd(mgr)));
  }
  FlowOptions options;
  options.reorder = OrderHeuristic::kSift;
  options.library = CellLibrary::nand_inv();
  const FlowResult res = synthesize_bidecomp(mgr, spec, {}, {}, options);
  const Netlist reread = read_blif_string(write_blif(res.netlist, "pipe"));
  EXPECT_TRUE(verify_against_isfs(mgr, reread, spec).ok);
  EXPECT_TRUE(verify_equivalent(mgr, res.netlist, reread).ok);
}

TEST(Pipelines, NetlistDotIsWellFormed) {
  BddManager mgr(3);
  const std::vector<Isf> spec{Isf::from_csf(mgr.var(0) ^ (mgr.var(1) & mgr.var(2)))};
  const FlowResult res = synthesize_bidecomp(mgr, spec, {"a", "b", "c"}, {"y"});
  const std::string dot = res.netlist.to_dot();
  EXPECT_NE(dot.find("digraph netlist"), std::string::npos);
  EXPECT_NE(dot.find("\"a\""), std::string::npos);
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);
  EXPECT_EQ(dot.find("buf"), std::string::npos);  // no transient gates leak
}

}  // namespace
}  // namespace bidec
