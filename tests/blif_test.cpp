// BLIF writer/reader: round-tripping preserves functionality; the reader
// handles general covers and rejects sequential constructs.
#include "io/blif.h"

#include <gtest/gtest.h>

#include "bdd/bdd.h"
#include "verify/verifier.h"

namespace bidec {
namespace {

Netlist example_netlist() {
  Netlist net;
  const SignalId a = net.add_input("a");
  const SignalId b = net.add_input("b");
  const SignalId c = net.add_input("c");
  const SignalId g1 = net.add_xor(a, b);
  const SignalId g2 = net.add_gate(GateType::kNand, g1, c);
  const SignalId g3 = net.add_or(g2, net.add_not(a));
  net.add_output("y", g3);
  net.add_output("p", g1);
  return net;
}

TEST(Blif, WriterEmitsStructure) {
  const std::string text = write_blif(example_netlist(), "example");
  EXPECT_NE(text.find(".model example"), std::string::npos);
  EXPECT_NE(text.find(".inputs a b c"), std::string::npos);
  EXPECT_NE(text.find(".outputs y p"), std::string::npos);
  EXPECT_NE(text.find(".names"), std::string::npos);
  EXPECT_NE(text.find(".end"), std::string::npos);
}

TEST(Blif, RoundTripPreservesFunction) {
  const Netlist original = example_netlist();
  const Netlist reread = read_blif_string(write_blif(original, "m"));
  ASSERT_EQ(reread.num_inputs(), original.num_inputs());
  ASSERT_EQ(reread.num_outputs(), original.num_outputs());
  BddManager mgr(static_cast<unsigned>(original.num_inputs()));
  EXPECT_TRUE(verify_equivalent(mgr, original, reread).ok);
}

TEST(Blif, RoundTripAllGateTypes) {
  Netlist net;
  const SignalId a = net.add_input("a");
  const SignalId b = net.add_input("b");
  unsigned idx = 0;
  for (const GateType t : {GateType::kAnd, GateType::kOr, GateType::kXor,
                           GateType::kNand, GateType::kNor, GateType::kXnor}) {
    // Build each gate type directly (bypassing derived-type decomposition by
    // absorbing later would complicate matters; add_gate may simplify, so
    // check the output count instead of the structure).
    std::string name = "o";  // two statements: GCC 12's -Wrestrict
    name += std::to_string(idx++);  // misfires on the operator+ form here
    net.add_output(name, net.add_gate(t, a, b));
  }
  net.add_output("inv", net.add_not(a));
  net.add_output("c0", net.get_const(false));
  net.add_output("c1", net.get_const(true));
  const Netlist reread = read_blif_string(write_blif(net, "gates"));
  BddManager mgr(2);
  EXPECT_TRUE(verify_equivalent(mgr, net, reread).ok);
}

TEST(Blif, ReaderHandlesWideCovers) {
  const char* text = R"(.model wide
.inputs a b c d
.outputs y
.names a b c d y
1--1 1
01-- 1
--10 1
.end
)";
  const Netlist net = read_blif_string(text);
  // y = a&d | ~a&b | c&~d.
  EXPECT_TRUE(net.evaluate({true, false, false, true})[0]);
  EXPECT_TRUE(net.evaluate({false, true, false, false})[0]);
  EXPECT_TRUE(net.evaluate({false, false, true, false})[0]);
  EXPECT_FALSE(net.evaluate({true, false, false, false})[0]);
}

TEST(Blif, ReaderHandlesOffsetCover) {
  const char* text = R"(.model off
.inputs a b
.outputs y
.names a b y
11 0
.end
)";
  const Netlist net = read_blif_string(text);  // y = ~(a & b)
  EXPECT_FALSE(net.evaluate({true, true})[0]);
  EXPECT_TRUE(net.evaluate({true, false})[0]);
}

TEST(Blif, ReaderHandlesConstants) {
  const char* text = ".model k\n.inputs a\n.outputs z o\n.names z\n.names o\n1\n.end\n";
  const Netlist net = read_blif_string(text);
  EXPECT_FALSE(net.evaluate({false})[0]);
  EXPECT_TRUE(net.evaluate({false})[1]);
}

TEST(Blif, ReaderFollowsDependenciesOutOfOrder) {
  // g is used before it is defined.
  const char* text = R"(.model ooo
.inputs a b
.outputs y
.names g a y
11 1
.names a b g
10 1
01 1
.end
)";
  const Netlist net = read_blif_string(text);  // y = (a^b) & a = a & ~b
  EXPECT_TRUE(net.evaluate({true, false})[0]);
  EXPECT_FALSE(net.evaluate({true, true})[0]);
}

TEST(Blif, ReaderRejectsLatchesCyclesAndUndriven) {
  EXPECT_THROW((void)read_blif_string(".model m\n.inputs a\n.outputs q\n"
                                      ".latch a q 0\n.end\n"),
               std::runtime_error);
  EXPECT_THROW((void)read_blif_string(".model m\n.inputs a\n.outputs y\n.end\n"),
               std::runtime_error);
  EXPECT_THROW((void)read_blif_string(".model m\n.inputs a\n.outputs y\n"
                                      ".names y y\n1 1\n.end\n"),
               std::runtime_error);
}

TEST(Blif, SaveLoadRoundTrip) {
  const Netlist original = example_netlist();
  const std::string path = ::testing::TempDir() + "/roundtrip.blif";
  save_blif(original, "m", path);
  const Netlist loaded = load_blif(path);
  BddManager mgr(3);
  EXPECT_TRUE(verify_equivalent(mgr, original, loaded).ok);
}

}  // namespace
}  // namespace bidec
