// SAT-based test generation cross-checked against the exact BDD-based
// classifier: both backends must agree on testable/redundant for every
// single-stuck-at fault, and every SAT-generated test vector must actually
// detect its fault in the fault simulator.
#include "atpg/sat_atpg.h"

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <tuple>
#include <vector>

#include "atpg/atpg.h"
#include "benchgen/benchgen.h"
#include "bidec/bidecomposer.h"
#include "verify/verifier.h"

namespace bidec {
namespace {

/// Two statements: GCC 12's -Wrestrict misfires on `prefix +
/// std::to_string(i)` once the string operator+ is inlined.
std::string numbered_name(const char* prefix, std::size_t i) {
  std::string s = prefix;
  s += std::to_string(i);
  return s;
}

// Does `test` distinguish the faulty circuit from the good one?
bool detects(const Netlist& net, const Fault& fault, const std::vector<bool>& test) {
  std::vector<std::uint64_t> words;
  words.reserve(test.size());
  for (const bool b : test) words.push_back(b ? 1 : 0);
  const std::vector<std::uint64_t> good = net.simulate64(words);
  const std::vector<std::uint64_t> bad = simulate_with_fault(net, words, fault);
  for (std::size_t o = 0; o < good.size(); ++o) {
    if (((good[o] ^ bad[o]) & 1u) != 0) return true;
  }
  return false;
}

// Exact BDD classification: redundant iff faulty and good functions agree
// everywhere.
bool bdd_redundant(BddManager& mgr, const Netlist& net, const Fault& fault) {
  const std::vector<Bdd> good = netlist_to_bdds(mgr, net);
  const std::vector<Bdd> bad = faulty_netlist_to_bdds(mgr, net, fault);
  Bdd diff = mgr.bdd_false();
  for (std::size_t o = 0; o < good.size(); ++o) diff |= good[o] ^ bad[o];
  return diff.is_false();
}

Netlist random_netlist(std::mt19937_64& rng, unsigned inputs) {
  Netlist net;
  std::vector<SignalId> pool;
  for (unsigned i = 0; i < inputs; ++i) {
    pool.push_back(net.add_input(numbered_name("i", i)));
  }
  const GateType types[] = {GateType::kNot, GateType::kAnd,  GateType::kOr,
                            GateType::kXor, GateType::kNand, GateType::kNor,
                            GateType::kXnor};
  for (int g = 0; g < 10; ++g) {
    const GateType t = types[rng() % std::size(types)];
    const SignalId a = pool[rng() % pool.size()];
    const SignalId b = pool[rng() % pool.size()];
    pool.push_back(gate_arity(t) == 1 ? net.add_gate(t, a) : net.add_gate(t, a, b));
  }
  net.add_output("f", pool.back());
  net.add_output("g", pool[pool.size() - 2]);
  return net;
}

TEST(SatAtpg, AgreesWithBddExactOnRandomNetlists) {
  // Random netlists deliberately contain redundant faults (reconvergence,
  // duplicated fanins), so both verdicts get exercised.
  std::mt19937_64 rng(41);
  std::size_t redundant_seen = 0;
  std::size_t testable_seen = 0;
  for (int round = 0; round < 15; ++round) {
    const unsigned inputs = 4;
    const Netlist net = random_netlist(rng, inputs);
    BddManager mgr(inputs);
    SatAtpg atpg(net);
    for (const Fault& fault : enumerate_faults(net)) {
      const SatFaultResult res = atpg.test_fault(fault);
      ASSERT_NE(res.cls, FaultClass::kAborted);
      const bool redundant = bdd_redundant(mgr, net, fault);
      ASSERT_EQ(res.cls == FaultClass::kRedundant, redundant)
          << "round " << round << " fault node " << fault.node << " pin "
          << fault.pin << " sa" << fault.stuck_value;
      if (redundant) {
        ++redundant_seen;
      } else {
        ++testable_seen;
        ASSERT_EQ(res.test.size(), net.num_inputs());
        ASSERT_TRUE(detects(net, fault, res.test))
            << "round " << round << " fault node " << fault.node << " pin "
            << fault.pin << " sa" << fault.stuck_value;
      }
    }
  }
  // The sweep must have seen both classes, or it tested nothing.
  EXPECT_GT(redundant_seen, 0u);
  EXPECT_GT(testable_seen, 0u);
}

TEST(SatAtpg, Theorem5NetlistsAreFullyTestable) {
  // The SAT backend independently confirms Theorem 5 on decomposed
  // benchmark netlists: no redundant faults, and every generated vector
  // detects its fault in the simulator.
  for (const char* name : {"9sym", "rd84", "5xp1"}) {
    const Benchmark& bench = find_benchmark(name);
    BddManager mgr(bench.num_inputs);
    const std::vector<Isf> spec = bench.build(mgr);
    BiDecomposer dec(mgr, {}, bench.input_names());
    const auto out_names = bench.output_names();
    for (std::size_t o = 0; o < spec.size(); ++o) dec.add_output(out_names[o], spec[o]);
    const Netlist& net = dec.netlist();

    const SatAtpgResult res = run_sat_atpg(net);
    EXPECT_EQ(res.redundant, 0u) << name;
    EXPECT_EQ(res.aborted, 0u) << name;
    EXPECT_EQ(res.testable, res.total_faults) << name;
    for (const auto& [fault, test] : res.generated_tests) {
      ASSERT_TRUE(detects(net, fault, test)) << name;
    }
  }
}

TEST(SatAtpg, RedundantFaultListMatchesBddAtpgOnT481) {
  // t481's EXOR components derived with don't-cares leave redundant faults
  // (the Theorem 5 boundary case); the SAT and BDD backends must flag the
  // exact same fault list.
  const Benchmark& bench = find_benchmark("t481");
  BddManager mgr(bench.num_inputs);
  const std::vector<Isf> spec = bench.build(mgr);
  BiDecomposer dec(mgr, {}, bench.input_names());
  dec.add_output("f", spec[0]);
  const Netlist& net = dec.netlist();

  const AtpgResult bdd_res = run_atpg(mgr, net);
  const SatAtpgResult sat_res = run_sat_atpg(net);
  ASSERT_EQ(sat_res.aborted, 0u);
  EXPECT_EQ(sat_res.total_faults, bdd_res.total_faults);
  EXPECT_EQ(sat_res.redundant, bdd_res.redundant);

  const auto key = [](const Fault& f) {
    return std::make_tuple(f.node, f.pin, f.stuck_value);
  };
  ASSERT_EQ(sat_res.redundant_faults.size(), bdd_res.redundant_faults.size());
  for (std::size_t i = 0; i < sat_res.redundant_faults.size(); ++i) {
    // Both backends walk enumerate_faults() in order, so the lists line up.
    EXPECT_EQ(key(sat_res.redundant_faults[i]), key(bdd_res.redundant_faults[i]));
  }
  for (const auto& [fault, test] : sat_res.generated_tests) {
    ASSERT_TRUE(detects(net, fault, test));
  }
}

TEST(SatAtpg, PinFaultsOnInvertersAndSharedFanins) {
  // x -> NOT -> AND(x, ~x): the AND output is constant 0, so its stem SA0
  // is redundant but SA1 is testable; pin faults distinguish the two uses
  // of x.
  Netlist net;
  const SignalId x = net.add_input("x");
  const SignalId y = net.add_input("y");
  const SignalId nx = net.add_gate_native(GateType::kNot, x);
  const SignalId a = net.add_gate_native(GateType::kAnd, x, nx);
  const SignalId f = net.add_gate_native(GateType::kOr, a, y);
  net.add_output("f", f);

  BddManager mgr(2);
  SatAtpg atpg(net);
  for (const Fault& fault : enumerate_faults(net)) {
    const SatFaultResult res = atpg.test_fault(fault);
    ASSERT_NE(res.cls, FaultClass::kAborted);
    EXPECT_EQ(res.cls == FaultClass::kRedundant, bdd_redundant(mgr, net, fault))
        << "fault node " << fault.node << " pin " << fault.pin << " sa"
        << fault.stuck_value;
    if (res.cls == FaultClass::kTestable) {
      EXPECT_TRUE(detects(net, fault, res.test));
    }
  }
}

TEST(SatAtpg, GenerousBudgetMatchesExactRun) {
  std::mt19937_64 rng(43);
  const Netlist net = random_netlist(rng, 4);
  const SatAtpgResult exact = run_sat_atpg(net);
  const SatAtpgResult budgeted = run_sat_atpg(net, /*conflict_budget=*/100000);
  EXPECT_EQ(budgeted.testable, exact.testable);
  EXPECT_EQ(budgeted.redundant, exact.redundant);
  EXPECT_EQ(budgeted.aborted, 0u);
}

TEST(SatAtpg, SolverStatsAccumulateAcrossFaults) {
  std::mt19937_64 rng(44);
  const Netlist net = random_netlist(rng, 4);
  SatAtpg atpg(net);
  const std::vector<Fault> faults = enumerate_faults(net);
  for (const Fault& f : faults) (void)atpg.test_fault(f);
  // One incremental solver served every fault.
  EXPECT_GT(atpg.solver_stats().propagations, 0u);
}

}  // namespace
}  // namespace bidec
