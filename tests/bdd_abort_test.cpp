// The cooperative abort hook: step budgets and deadlines cancel BDD
// operations with BddAbortError and leave the manager fully usable.
#include <gtest/gtest.h>

#include <chrono>

#include "bdd/bdd.h"

namespace bidec {
namespace {

// Enough XOR chaining to guarantee thousands of recursive steps.
Bdd parity_chain(BddManager& mgr, unsigned rounds) {
  Bdd f = mgr.bdd_false();
  for (unsigned i = 0; i < rounds; ++i) {
    f ^= mgr.var(i % mgr.num_vars());
  }
  return f;
}

TEST(BddAbort, StepBudgetThrows) {
  BddManager mgr(16);
  mgr.set_step_budget(16);
  EXPECT_THROW(parity_chain(mgr, 64), BddAbortError);
}

TEST(BddAbort, ZeroBudgetMeansUnlimited) {
  BddManager mgr(16);
  mgr.set_step_budget(0);
  EXPECT_NO_THROW(parity_chain(mgr, 64));
}

TEST(BddAbort, ManagerUsableAfterAbort) {
  BddManager mgr(16);
  mgr.set_step_budget(16);
  EXPECT_THROW(parity_chain(mgr, 256), BddAbortError);
  mgr.clear_abort();
  mgr.collect_garbage();
  // Canonical structure must be intact: rebuild and check a known identity.
  const Bdd a = mgr.var(0), b = mgr.var(1);
  EXPECT_TRUE(((a & b) | (a & ~b)) == a);
  EXPECT_NO_THROW(parity_chain(mgr, 64));
}

TEST(BddAbort, ExpiredDeadlineThrows) {
  BddManager mgr(16);
  mgr.set_deadline(std::chrono::steady_clock::now() - std::chrono::milliseconds(1));
  // The deadline is only consulted every few thousand steps, so drive many.
  EXPECT_THROW(
      {
        for (int round = 0; round < 100000; ++round) {
          (void)parity_chain(mgr, 16);
        }
      },
      BddAbortError);
  mgr.clear_abort();
  EXPECT_NO_THROW(parity_chain(mgr, 64));
}

TEST(BddAbort, StepsUsedAdvances) {
  BddManager mgr(8);
  const std::uint64_t before = mgr.steps_used();
  (void)(mgr.var(0) & mgr.var(1));
  EXPECT_GT(mgr.steps_used(), before);
}

TEST(BddAbort, AdoptLimitsCopiesRemainingBudget) {
  BddManager src(8);
  src.set_step_budget(1000);
  (void)parity_chain(src, 8);  // consume part of the budget

  BddManager dst(8);
  dst.adopt_abort_limits(src);
  // The adopted budget is the remainder, so a large workload must abort.
  EXPECT_THROW(parity_chain(dst, 4096), BddAbortError);
}

TEST(BddStats, ResetStatsClearsCountersAndRestartsPeak) {
  BddManager mgr(12);
  (void)parity_chain(mgr, 48);
  ASSERT_GT(mgr.stats().cache_lookups, 0u);
  ASSERT_GT(mgr.steps_used(), 0u);

  mgr.reset_stats();
  const BddStats& s = mgr.stats();
  EXPECT_EQ(s.cache_lookups, 0u);
  EXPECT_EQ(s.cache_hits, 0u);
  EXPECT_EQ(s.unique_hits, 0u);
  EXPECT_EQ(s.unique_misses, 0u);
  EXPECT_EQ(s.gc_runs, 0u);
  EXPECT_EQ(s.live_nodes, mgr.live_node_count());
  EXPECT_EQ(s.peak_nodes, s.live_nodes);
  EXPECT_EQ(mgr.steps_used(), 0u);

  // The high-water mark restarts from the current live count.
  (void)parity_chain(mgr, 48);
  EXPECT_GE(mgr.stats().peak_nodes, mgr.stats().live_nodes);
}

}  // namespace
}  // namespace bidec
