// The proof-carrying SAT layer: DRAT logging inside the solver, the
// independent backward-RUP checker, the trimmer counters, and the policy
// plumbing through satdec and the job runner. The adversarial half of the
// suite hand-crafts valid proofs and mutates them (drop a clause, flip a
// literal, move deletions, truncate) asserting every mutation is rejected;
// the property half solves randomized instances and asserts every UNSAT
// the solver reports carries a proof the checker accepts.
#include "proof/drat_check.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <random>
#include <sstream>
#include <vector>

#include "engine/job_runner.h"
#include "io/pla.h"
#include "proof/proof_log.h"
#include "sat/solver.h"
#include "satdec/decomposer.h"

namespace bidec::proof {
namespace {

using sat::Lit;
using sat::Solver;
using sat::Var;
using sat::mk_lit;

Lit pos(Var v) { return mk_lit(v); }
Lit neg(Var v) { return mk_lit(v, true); }

// ---------------------------------------------------------------------------
// Hand-crafted proof material
// ---------------------------------------------------------------------------

// The double-XOR contradiction x^y^z = 1 and x^y^z = 0: UNSAT, but no unit
// propagation fires from the inputs alone, so a proof NEEDS its derived
// clauses — exactly the property the mutation tests exploit.
const std::vector<std::vector<Lit>> kXorInputs = {
    // x ^ y ^ z = 1
    {pos(0), pos(1), pos(2)},
    {pos(0), neg(1), neg(2)},
    {neg(0), pos(1), neg(2)},
    {neg(0), neg(1), pos(2)},
    // x ^ y ^ z = 0
    {neg(0), neg(1), neg(2)},
    {neg(0), pos(1), pos(2)},
    {pos(0), neg(1), pos(2)},
    {pos(0), pos(1), neg(2)},
};

// A valid derivation chain for the double-XOR formula, ending in the empty
// clause: {x,y}, {x,~y}, {x}, {y}, {}.
const std::vector<std::vector<Lit>> kXorChain = {
    {pos(0), pos(1)}, {pos(0), neg(1)}, {pos(0)}, {pos(1)}, {},
};

void add_inputs(ProofLog& log) {
  for (const auto& c : kXorInputs) log.on_add(c, /*derived=*/false);
}

TEST(DratChecker, AcceptsValidHandCraftedChain) {
  ProofLog log;
  add_inputs(log);
  for (const auto& c : kXorChain) log.on_add(c, /*derived=*/true);
  DratChecker checker;
  const CheckResult res = checker.check(log);
  EXPECT_TRUE(res.valid) << res.error;
  EXPECT_EQ(res.derived, kXorChain.size());
  EXPECT_GT(res.checked, 0u);
  EXPECT_GT(res.core_inputs, 0u);
}

TEST(DratChecker, AcceptsValidChainWithLateDeletions) {
  // {x,y} and {x,~y} deleted after {x} exists: everything later re-derives
  // from {x} and the inputs, so the proof stays valid.
  ProofLog log;
  add_inputs(log);
  log.on_add(kXorChain[0], true);
  log.on_add(kXorChain[1], true);
  log.on_add(kXorChain[2], true);  // {x}
  log.on_delete(kXorChain[0]);
  log.on_delete(kXorChain[1]);
  log.on_add(kXorChain[3], true);  // {y}
  log.on_add(kXorChain[4], true);  // {}
  DratChecker checker;
  const CheckResult res = checker.check(log);
  EXPECT_TRUE(res.valid) << res.error;
}

TEST(DratChecker, RejectsDroppedClause) {
  // Without {y} the empty clause is not RUP: after propagating {x} no unit
  // remains alive.
  ProofLog log;
  add_inputs(log);
  for (std::size_t i = 0; i < kXorChain.size(); ++i) {
    if (i == 3) continue;  // drop {y}
    log.on_add(kXorChain[i], true);
  }
  DratChecker checker;
  const CheckResult res = checker.check(log);
  EXPECT_FALSE(res.valid);
  EXPECT_NE(res.error.find("not RUP"), std::string::npos) << res.error;
}

TEST(DratChecker, RejectsFlippedLiteral) {
  // {x} flipped to {~x}: the flipped clause is not RUP (assuming x kills
  // every clause that could propagate), and the verdict's cone reaches it.
  ProofLog log;
  add_inputs(log);
  for (std::size_t i = 0; i < kXorChain.size(); ++i) {
    if (i == 2) {
      log.on_add(std::vector<Lit>{neg(0)}, true);
    } else {
      log.on_add(kXorChain[i], true);
    }
  }
  DratChecker checker;
  const CheckResult res = checker.check(log);
  EXPECT_FALSE(res.valid);
}

TEST(DratChecker, RejectsReorderedDeletions) {
  // Moving the deletions of {x,y} and {x,~y} ahead of {x} removes the only
  // justification {x} has at its birth point.
  ProofLog log;
  add_inputs(log);
  log.on_add(kXorChain[0], true);
  log.on_add(kXorChain[1], true);
  log.on_delete(kXorChain[0]);
  log.on_delete(kXorChain[1]);
  log.on_add(kXorChain[2], true);  // {x} — now unsupported
  log.on_add(kXorChain[3], true);
  log.on_add(kXorChain[4], true);
  DratChecker checker;
  const CheckResult res = checker.check(log);
  EXPECT_FALSE(res.valid);
  EXPECT_NE(res.error.find("not RUP"), std::string::npos) << res.error;
}

TEST(DratChecker, RejectsTruncatedProof) {
  // Without the final empty clause the log's last derived clause is {y},
  // which certifies nothing for a global-UNSAT claim.
  ProofLog log;
  add_inputs(log);
  for (std::size_t i = 0; i + 1 < kXorChain.size(); ++i) {
    log.on_add(kXorChain[i], true);
  }
  DratChecker checker;
  const CheckResult res = checker.check(log);
  EXPECT_FALSE(res.valid);
}

TEST(DratChecker, RejectsProofWithNoDerivedClauses) {
  ProofLog log;
  add_inputs(log);
  DratChecker checker;
  const CheckResult res = checker.check(log);
  EXPECT_FALSE(res.valid);
  EXPECT_NE(res.error.find("no derived clause"), std::string::npos) << res.error;
}

TEST(DratChecker, RejectsDeletionOfUnknownClause) {
  ProofLog log;
  add_inputs(log);
  log.on_delete(std::vector<Lit>{pos(0), pos(7)});
  log.on_add(std::vector<Lit>{}, true);
  DratChecker checker;
  const CheckResult res = checker.check(log);
  EXPECT_FALSE(res.valid);
  EXPECT_NE(res.error.find("deletion"), std::string::npos) << res.error;
}

TEST(DratChecker, RejectsVerdictNotMatchingAssumptions) {
  // A perfectly RUP clause that is not composed of negated assumptions
  // certifies nothing about solve(assumptions); the semantic gate must
  // reject it even though the RUP chain is fine.
  ProofLog log;
  log.on_add(std::vector<Lit>{neg(3), pos(0)}, false);   // a -> x
  log.on_add(std::vector<Lit>{neg(3), neg(0)}, false);   // a -> ~x
  log.on_add(std::vector<Lit>{neg(3)}, true);            // {~a}: RUP
  DratChecker checker;
  // Correct assumption set: accepted.
  const std::vector<Lit> good = {pos(3)};
  EXPECT_TRUE(checker.check(log, good).valid);
  // Wrong assumption set: the verdict {~a} is not built from ~b.
  DratChecker checker2;
  const std::vector<Lit> bad = {pos(4)};
  const CheckResult res = checker2.check(log, bad);
  EXPECT_FALSE(res.valid);
  EXPECT_NE(res.error.find("negated assumption"), std::string::npos) << res.error;
}

// ---------------------------------------------------------------------------
// Solver integration
// ---------------------------------------------------------------------------

TEST(ProofLog, SolverGlobalUnsatProducesCheckableProof) {
  Solver s;
  ProofLog log;
  s.set_proof_log(&log);
  for (int i = 0; i < 3; ++i) s.new_var();
  for (const auto& c : kXorInputs) ASSERT_TRUE(s.add_clause(c));
  ASSERT_EQ(s.solve(), Solver::Result::kUnsat);
  EXPECT_EQ(log.input_clauses(), kXorInputs.size());
  EXPECT_GT(log.derived_clauses(), 0u);
  DratChecker checker;
  const CheckResult res = checker.check(log);
  EXPECT_TRUE(res.valid) << res.error;
}

TEST(ProofLog, SolverAssumptionUnsatProducesCheckableProof) {
  Solver s;
  ProofLog log;
  s.set_proof_log(&log);
  const Var a = s.new_var();
  const Var x = s.new_var();
  ASSERT_TRUE(s.add_clause({neg(a), pos(x)}));
  ASSERT_TRUE(s.add_clause({neg(a), neg(x)}));
  const std::vector<Lit> assumptions = {pos(a)};
  ASSERT_EQ(s.solve(assumptions), Solver::Result::kUnsat);
  DratChecker checker;
  const CheckResult res = checker.check(log, assumptions);
  EXPECT_TRUE(res.valid) << res.error;
}

TEST(ProofLog, CorruptedVerdictIsRejected) {
  Solver s;
  ProofLog log;
  s.set_proof_log(&log);
  const Var a = s.new_var();
  const Var x = s.new_var();
  ASSERT_TRUE(s.add_clause({neg(a), pos(x)}));
  ASSERT_TRUE(s.add_clause({neg(a), neg(x)}));
  const std::vector<Lit> assumptions = {pos(a)};
  ASSERT_EQ(s.solve(assumptions), Solver::Result::kUnsat);
  log.corrupt_last_derived_for_test();
  DratChecker checker;
  EXPECT_FALSE(checker.check(log, assumptions).valid);
}

TEST(ProofLog, CorruptedEmptyVerdictIsRejected) {
  Solver s;
  ProofLog log;
  s.set_proof_log(&log);
  const Var x = s.new_var();
  ASSERT_TRUE(s.add_clause({pos(x)}));
  EXPECT_FALSE(s.add_clause({neg(x)}));
  ASSERT_EQ(s.solve(), Solver::Result::kUnsat);
  log.corrupt_last_derived_for_test();
  DratChecker checker;
  EXPECT_FALSE(checker.check(log).valid);
}

TEST(ProofLog, IncrementalChecksAcrossGrowingLog) {
  // One solver, several UNSAT solves under different assumptions; each
  // check validates the newest verdict and the cumulative counters only
  // ever grow.
  Solver s;
  ProofLog log;
  s.set_proof_log(&log);
  const Var a = s.new_var();
  const Var b = s.new_var();
  const Var x = s.new_var();
  ASSERT_TRUE(s.add_clause({neg(a), pos(x)}));
  ASSERT_TRUE(s.add_clause({neg(a), neg(x)}));
  ASSERT_TRUE(s.add_clause({neg(b), pos(x)}));
  DratChecker checker;
  const std::vector<Lit> first = {pos(a)};
  ASSERT_EQ(s.solve(first), Solver::Result::kUnsat);
  const CheckResult r1 = checker.check(log, first);
  EXPECT_TRUE(r1.valid) << r1.error;
  const std::vector<Lit> second = {pos(b), pos(a)};
  ASSERT_EQ(s.solve(second), Solver::Result::kUnsat);
  const CheckResult r2 = checker.check(log, second);
  EXPECT_TRUE(r2.valid) << r2.error;
  EXPECT_GE(r2.checked, r1.checked);
  EXPECT_GE(r2.core_inputs, r1.core_inputs);
}

// ---------------------------------------------------------------------------
// Property: solver UNSAT => proof checks, on randomized instances
// ---------------------------------------------------------------------------

TEST(ProofProperty, RandomInstancesEveryUnsatCarriesValidProof) {
  std::mt19937 rng(20260809);
  unsigned unsat_seen = 0;
  for (int round = 0; round < 40; ++round) {
    const unsigned num_vars = 8 + rng() % 5;
    const unsigned num_clauses = num_vars * 5;  // past the 3-SAT threshold
    Solver s;
    ProofLog log;
    s.set_proof_log(&log);
    for (unsigned i = 0; i < num_vars; ++i) s.new_var();
    bool input_conflict = false;
    for (unsigned c = 0; c < num_clauses; ++c) {
      std::vector<Lit> lits;
      for (int k = 0; k < 3; ++k) {
        lits.push_back(mk_lit(rng() % num_vars, (rng() & 1) != 0));
      }
      if (!s.add_clause(lits)) input_conflict = true;
    }
    (void)input_conflict;
    if (s.solve() != Solver::Result::kUnsat) continue;
    ++unsat_seen;
    DratChecker checker;
    const CheckResult res = checker.check(log);
    ASSERT_TRUE(res.valid) << "round " << round << ": " << res.error;
  }
  EXPECT_GT(unsat_seen, 5u);  // the density guarantees plenty of UNSAT
}

TEST(ProofProperty, RandomAssumptionUnsatsCarryValidProofs) {
  std::mt19937 rng(1234577);
  unsigned unsat_seen = 0;
  for (int round = 0; round < 40; ++round) {
    const unsigned num_vars = 10;
    Solver s;
    ProofLog log;
    s.set_proof_log(&log);
    for (unsigned i = 0; i < num_vars; ++i) s.new_var();
    for (unsigned c = 0; c < 35; ++c) {  // satisfiable-ish density
      std::vector<Lit> lits;
      for (int k = 0; k < 3; ++k) {
        lits.push_back(mk_lit(rng() % num_vars, (rng() & 1) != 0));
      }
      if (!s.add_clause(lits)) break;
    }
    DratChecker checker;
    // Several solves against one growing log, assumptions re-rolled.
    for (int q = 0; q < 4; ++q) {
      std::vector<Lit> assumptions;
      for (unsigned v = 0; v < num_vars; ++v) {
        if ((rng() & 3) == 0) assumptions.push_back(mk_lit(v, (rng() & 1) != 0));
      }
      if (s.solve(assumptions) != Solver::Result::kUnsat) continue;
      ++unsat_seen;
      const CheckResult res = checker.check(log, assumptions);
      ASSERT_TRUE(res.valid) << "round " << round << ": " << res.error;
    }
  }
  EXPECT_GT(unsat_seen, 3u);
}

// ---------------------------------------------------------------------------
// DRAT text output
// ---------------------------------------------------------------------------

TEST(ProofLog, WritesTextualDrat) {
  ProofLog log;
  log.on_add(std::vector<Lit>{pos(0), neg(1)}, false);  // input: not written
  log.on_add(std::vector<Lit>{pos(0)}, true);
  log.on_delete(std::vector<Lit>{pos(0), neg(1)});
  log.on_add(std::vector<Lit>{}, true);
  std::ostringstream os;
  log.write_drat(os);
  EXPECT_EQ(os.str(), "1 0\nd 1 -2 0\n0\n");
}

TEST(ProofLog, TeeMatchesWriteDrat) {
  const std::string path = "proof_test_tee.drat";
  {
    ProofLog log;
    ASSERT_TRUE(log.tee_to_file(path));
    log.on_add(std::vector<Lit>{pos(0), pos(1)}, false);
    log.on_add(std::vector<Lit>{neg(1)}, true);
    log.on_delete(std::vector<Lit>{pos(0), pos(1)});
    std::ostringstream expect;
    log.write_drat(expect);
    // Destroying the log flushes the tee.
    std::ostringstream expect2;
    log.write_drat(expect2);
    ASSERT_EQ(expect.str(), expect2.str());
  }
  std::ifstream in(path);
  std::stringstream got;
  got << in.rdbuf();
  EXPECT_EQ(got.str(), "-2 0\nd 1 2 0\n");
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Policy plumbing: satdec and the job runner
// ---------------------------------------------------------------------------

const char* kSmallPla =
    ".i 4\n.o 1\n.p 4\n"
    "01-1 1\n1-01 1\n-110 1\n0000 1\n"
    ".e\n";

TEST(ProofPolicy, SatdecCheckPassesAndCountsVerdicts) {
  const PlaFile pla = PlaFile::parse_string(kSmallPla);
  satdec::SatDecOptions opt;
  opt.tt_threshold = 2;  // keep the run at formula level: real SAT queries
  opt.proof = ProofPolicy::kCheck;
  const satdec::SatFlowResult res = satdec::synthesize_satdec(pla, opt);
  EXPECT_GT(res.stats.proof.checked_unsat, 0u);
  EXPECT_EQ(res.stats.proof.failed_checks, 0u);
  EXPECT_GT(res.stats.proof.logged_inputs, 0u);
}

TEST(ProofPolicy, SatdecLogOnlyRecordsWithoutChecking) {
  const PlaFile pla = PlaFile::parse_string(kSmallPla);
  satdec::SatDecOptions opt;
  opt.tt_threshold = 2;
  opt.proof = ProofPolicy::kLog;
  const satdec::SatFlowResult res = satdec::synthesize_satdec(pla, opt);
  EXPECT_EQ(res.stats.proof.checked_unsat, 0u);
  EXPECT_GT(res.stats.proof.logged_inputs, 0u);
}

TEST(ProofPolicy, SatdecCorruptFaultThrowsProofCheckError) {
  const PlaFile pla = PlaFile::parse_string(kSmallPla);
  satdec::SatDecOptions opt;
  opt.tt_threshold = 2;
  opt.proof = ProofPolicy::kCheck;
  opt.proof_corrupt_fault = true;
  EXPECT_THROW((void)satdec::synthesize_satdec(pla, opt), ProofCheckError);
}

TEST(ProofPolicy, JobRunnerReportsCorruptProofAsEngineBug) {
  // The acceptance criterion: a deliberately corrupted learned clause must
  // surface as an engine-bug report, never a decomposition.
  JobSpec spec;
  spec.name = "proof-corrupt";
  spec.source = PlaFile::parse_string(kSmallPla);
  spec.flow.engine = EngineSelect::kSat;
  spec.flow.proof = ProofPolicy::kCheck;
  spec.flow.bidec.use_cache = false;
  spec.verify = VerifyEngine::kNone;
  FaultPlan plan;
  plan.add({.point = FaultPoint::kProofCorrupt});
  OwnedManagerSource managers;
  const JobResult res = run_synthesis_job(spec, 0, 0, managers, plan,
                                          /*allow_worker_death=*/false,
                                          /*fresh_managers=*/true);
  EXPECT_EQ(res.report.status, JobStatus::kVerifyFailed);
  EXPECT_NE(res.report.error.find("engine bug"), std::string::npos)
      << res.report.error;
  EXPECT_EQ(res.netlist.num_outputs(), 0u);  // no decomposition escaped
  // The stable JSON carries the proof block with the failure visible.
  const std::string json = res.report.to_stable_json();
  EXPECT_NE(json.find("\"proof\": {\"policy\": \"check\""), std::string::npos)
      << json;
}

TEST(ProofPolicy, JobRunnerStableJsonCarriesProofCounts) {
  JobSpec spec;
  spec.name = "proof-ok";
  spec.source = PlaFile::parse_string(kSmallPla);
  spec.flow.engine = EngineSelect::kSat;
  spec.flow.proof = ProofPolicy::kCheck;
  spec.verify = VerifyEngine::kSat;
  OwnedManagerSource managers;
  const JobResult res = run_synthesis_job(spec, 0, 0, managers, FaultPlan{},
                                          false, true);
  ASSERT_EQ(res.report.status, JobStatus::kOk) << res.report.error;
  EXPECT_EQ(res.report.proof.failed_checks, 0u);
  EXPECT_GT(res.report.proof.checked_unsat, 0u);
  const std::string json = res.report.to_stable_json();
  EXPECT_NE(json.find("\"checked_unsat\": "), std::string::npos) << json;
  EXPECT_EQ(json.find("check_ms"), std::string::npos) << json;  // non-stable
}

TEST(ProofPolicy, DefaultOffKeepsJsonFree) {
  JobSpec spec;
  spec.name = "proof-off";
  spec.source = PlaFile::parse_string(kSmallPla);
  spec.flow.engine = EngineSelect::kSat;
  spec.verify = VerifyEngine::kSat;
  OwnedManagerSource managers;
  const JobResult res = run_synthesis_job(spec, 0, 0, managers, FaultPlan{},
                                          false, true);
  ASSERT_EQ(res.report.status, JobStatus::kOk) << res.report.error;
  EXPECT_EQ(res.report.to_stable_json().find("\"proof\""), std::string::npos);
}

}  // namespace
}  // namespace bidec::proof
