// End-to-end behaviour of the recursive decomposer (Fig. 7): on random
// ISFs, structured functions and multi-output specs, the produced CSF is
// compatible, the netlist realizes exactly that CSF, and option toggles
// behave as documented.
#include "bidec/bidecomposer.h"

#include <gtest/gtest.h>

#include <random>

#include "tt/truth_table.h"
#include "verify/verifier.h"

namespace bidec {
namespace {

Isf random_isf(BddManager& mgr, unsigned nv, std::mt19937_64& rng, double dc_density) {
  const TruthTable on = TruthTable::random(nv, rng, 0.5);
  const TruthTable dc = TruthTable::random(nv, rng, dc_density);
  return Isf((on - dc).to_bdd(mgr), ((~on) - dc).to_bdd(mgr));
}

void expect_netlist_matches(BddManager& mgr, BiDecomposer& dec, const Bdd& func,
                            SignalId sig) {
  dec.netlist().add_output("t", sig);
  const std::vector<Bdd> out = netlist_to_bdds(mgr, dec.netlist());
  EXPECT_EQ(out.back(), func);
}

struct DecompCase {
  unsigned num_vars;
  double dc_density;
  std::uint64_t seed;
};

class DecomposeRandom : public ::testing::TestWithParam<DecompCase> {};

TEST_P(DecomposeRandom, CompatibleAndNetlistConsistent) {
  const auto [nv, dc_density, seed] = GetParam();
  std::mt19937_64 rng(seed);
  BddManager mgr(nv);
  const Isf isf = random_isf(mgr, nv, rng, dc_density);
  BiDecomposer dec(mgr);
  const auto [func, sig] = dec.decompose(isf);
  EXPECT_TRUE(isf.is_compatible(func));
  expect_netlist_matches(mgr, dec, func, sig);
  EXPECT_GE(dec.stats().calls, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DecomposeRandom,
    ::testing::Values(DecompCase{3, 0.0, 1}, DecompCase{4, 0.0, 2},
                      DecompCase{4, 0.3, 3}, DecompCase{5, 0.0, 4},
                      DecompCase{5, 0.3, 5}, DecompCase{6, 0.2, 6},
                      DecompCase{6, 0.5, 7}, DecompCase{7, 0.1, 8},
                      DecompCase{7, 0.4, 9}, DecompCase{8, 0.25, 10}),
    // `pinfo`, not `info`: the macro body has its own `info` that
    // -Wshadow would flag.
    [](const auto& pinfo) {
      std::string s = "v";  // two statements per append: GCC 12's -Wrestrict
      s += std::to_string(pinfo.param.num_vars);  // misfires on the operator+
      s += "_s";  // chain once inlined
      s += std::to_string(pinfo.param.seed);
      return s;
    });

TEST(Decompose, ConstantFunctions) {
  BddManager mgr(3);
  BiDecomposer dec(mgr);
  const auto [f0, s0] = dec.decompose(Isf::from_csf(mgr.bdd_false()));
  EXPECT_TRUE(f0.is_false());
  const auto [f1, s1] = dec.decompose(Isf::from_csf(mgr.bdd_true()));
  EXPECT_TRUE(f1.is_true());
  EXPECT_NE(s0, s1);
}

TEST(Decompose, SingleLiteralCostsNoGates) {
  BddManager mgr(3);
  BiDecomposer dec(mgr);
  const auto [f, sig] = dec.decompose(Isf::from_csf(mgr.var(1)));
  EXPECT_EQ(f, mgr.var(1));
  dec.netlist().add_output("f", sig);
  EXPECT_EQ(dec.netlist().stats().gates, 0u);
}

TEST(Decompose, ParityUsesExorGates) {
  BddManager mgr(6);
  Bdd parity = mgr.bdd_false();
  for (unsigned v = 0; v < 6; ++v) parity ^= mgr.var(v);
  BiDecomposer dec(mgr);
  const auto [f, sig] = dec.decompose(Isf::from_csf(parity));
  EXPECT_EQ(f, parity);
  dec.netlist().add_output("p", sig);
  const NetlistStats s = dec.netlist().stats();
  // A 6-input parity needs exactly 5 XOR gates, and a balanced tree has
  // depth 3.
  EXPECT_EQ(s.exors, 5u);
  EXPECT_EQ(s.two_input, 5u);
  EXPECT_LE(s.cascades, 3u);
  EXPECT_GT(dec.stats().strong_exor, 0u);
  EXPECT_EQ(dec.stats().weak_total(), 0u);
}

TEST(Decompose, NoExorOptionForcesAndOrNetlist) {
  BddManager mgr(5);
  Bdd parity = mgr.bdd_false();
  for (unsigned v = 0; v < 5; ++v) parity ^= mgr.var(v);
  BidecOptions options;
  options.use_exor = false;
  options.absorb_inverters = false;
  BiDecomposer dec(mgr, options);
  const auto [f, sig] = dec.decompose(Isf::from_csf(parity));
  EXPECT_EQ(f, parity);
  dec.netlist().add_output("p", sig);
  EXPECT_EQ(dec.netlist().stats().exors, 0u);
  EXPECT_EQ(dec.stats().strong_exor, 0u);
}

TEST(Decompose, WeakOnlyModeStillCorrect) {
  std::mt19937_64 rng(41);
  BddManager mgr(6);
  const Isf isf = random_isf(mgr, 6, rng, 0.2);
  BidecOptions options;
  options.use_strong = false;
  BiDecomposer dec(mgr, options);
  const auto [f, sig] = dec.decompose(isf);
  EXPECT_TRUE(isf.is_compatible(f));
  EXPECT_EQ(dec.stats().strong_total(), 0u);
}

TEST(Decompose, CacheSharesLogicAcrossOutputs) {
  BddManager mgr(6);
  const Bdd shared = (mgr.var(0) & mgr.var(1)) | (mgr.var(2) & mgr.var(3));
  const Bdd f1 = shared ^ mgr.var(4);
  const Bdd f2 = shared ^ mgr.var(5);
  BiDecomposer dec(mgr);
  dec.add_output("f1", Isf::from_csf(f1));
  const std::size_t gates_after_first = dec.netlist().stats().gates;
  dec.add_output("f2", Isf::from_csf(f2));
  const std::size_t gates_after_second = dec.netlist().stats().gates;
  // The shared cone must not be rebuilt: the second output costs at most
  // a couple of gates on top.
  EXPECT_LE(gates_after_second - gates_after_first, 2u);
  EXPECT_GT(dec.stats().cache_hits + dec.stats().cache_complement_hits, 0u);
}

TEST(Decompose, CacheDisabledStillCorrect) {
  std::mt19937_64 rng(42);
  BddManager mgr(5);
  const Isf isf = random_isf(mgr, 5, rng, 0.3);
  BidecOptions options;
  options.use_cache = false;
  BiDecomposer dec(mgr, options);
  const auto [f, sig] = dec.decompose(isf);
  EXPECT_TRUE(isf.is_compatible(f));
  EXPECT_EQ(dec.stats().cache_hits, 0u);
  EXPECT_EQ(dec.stats().cache_lookups, 0u);
}

TEST(Decompose, MultiOutputVerifiesAgainstSpec) {
  std::mt19937_64 rng(43);
  BddManager mgr(6);
  std::vector<Isf> spec;
  for (int o = 0; o < 4; ++o) spec.push_back(random_isf(mgr, 6, rng, 0.2));
  BiDecomposer dec(mgr);
  for (std::size_t o = 0; o < spec.size(); ++o) {
    std::string name = "f";  // two statements: GCC 12's -Wrestrict misfires
    name += std::to_string(o);  // on `"f" + std::to_string(o)` inlined here
    dec.add_output(name, spec[o]);
  }
  dec.finish();
  EXPECT_TRUE(verify_against_isfs(mgr, dec.netlist(), spec).ok);
}

TEST(Decompose, FinishAbsorbsInverters) {
  BddManager mgr(4);
  // ~(a & b) & ~(c | d): inverter-heavy before mapping.
  const Bdd f = ~(mgr.var(0) & mgr.var(1)) & ~(mgr.var(2) | mgr.var(3));
  BiDecomposer dec(mgr);
  dec.add_output("f", Isf::from_csf(f));
  const std::size_t inverters_before = dec.netlist().stats().inverters;
  dec.finish();
  const std::vector<Isf> spec{Isf::from_csf(f)};
  EXPECT_TRUE(verify_against_isfs(mgr, dec.netlist(), spec).ok);
  EXPECT_LE(dec.netlist().stats().inverters, inverters_before);
}

TEST(Decompose, DontCaresReduceCost) {
  // A dense spec vs the same spec with 60% don't-cares: the ISF version
  // must never need more gates.
  std::mt19937_64 rng(44);
  BddManager mgr(7);
  const TruthTable on = TruthTable::random(7, rng, 0.5);
  const TruthTable dc = TruthTable::random(7, rng, 0.6);
  const Isf full = Isf::from_csf(on.to_bdd(mgr));
  const Isf loose((on - dc).to_bdd(mgr), ((~on) - dc).to_bdd(mgr));

  BiDecomposer dec_full(mgr);
  dec_full.add_output("f", full);
  BiDecomposer dec_loose(mgr);
  dec_loose.add_output("f", loose);
  EXPECT_LE(dec_loose.netlist().stats().gates, dec_full.netlist().stats().gates);
}

TEST(Decompose, StatsAccounting) {
  std::mt19937_64 rng(45);
  BddManager mgr(6);
  const Isf isf = random_isf(mgr, 6, rng, 0.3);
  BiDecomposer dec(mgr);
  (void)dec.decompose(isf);
  const BidecStats& s = dec.stats();
  EXPECT_EQ(s.calls, s.terminal_cases + s.cache_hits + s.cache_complement_hits +
                         s.strong_total() + s.weak_total() + s.shannon_fallback);
  EXPECT_GE(s.cache_lookups, s.cache_hits + s.cache_complement_hits);
}

TEST(Decompose, InputNamesAreUsed) {
  BddManager mgr(3);
  BiDecomposer dec(mgr, {}, {"alpha", "beta", "gamma"});
  EXPECT_EQ(dec.netlist().input_name(0), "alpha");
  EXPECT_EQ(dec.netlist().input_name(2), "gamma");
}

}  // namespace
}  // namespace bidec
