// Cross-job component reuse: interval signatures are manager-independent,
// extracted components round-trip through splice and BDD rebuild, a second
// decomposer hits components published by the first, and a poisoned cache
// entry is caught by validation-on-hit — degrading to a miss, never to a
// wrong netlist.
#include <gtest/gtest.h>

#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "benchgen/benchgen.h"
#include "bidec/bidecomposer.h"
#include "bidec/shared_cache.h"
#include "bidec/signature.h"
#include "engine/job_runner.h"
#include "fault/fault.h"

namespace bidec {
namespace {

/// Minimal single-threaded sink: a map keyed by the signature hash, with
/// exact same_interval checking on lookup (the contract a real cache must
/// honour so hash collisions read as misses).
class MapSink final : public SharedComponentSink {
 public:
  std::optional<SharedComponent> lookup(const ComponentSignature& sig) override {
    const std::lock_guard<std::mutex> lock(mu_);
    ++lookups;
    const auto it = map_.find(sig.hash);
    if (it == map_.end() || !it->second.first.same_interval(sig)) return std::nullopt;
    ++hits;
    return SharedComponent{it->second.second};
  }
  void publish(const ComponentSignature& sig, const Netlist& impl) override {
    const std::lock_guard<std::mutex> lock(mu_);
    ++publishes;
    map_.insert_or_assign(sig.hash, std::make_pair(sig, impl));
  }
  void reject(const ComponentSignature& sig) override {
    const std::lock_guard<std::mutex> lock(mu_);
    ++rejects;
    map_.erase(sig.hash);
  }

  [[nodiscard]] std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return map_.size();
  }

  std::size_t lookups = 0, hits = 0, publishes = 0, rejects = 0;

 private:
  mutable std::mutex mu_;
  std::map<std::uint64_t, std::pair<ComponentSignature, Netlist>> map_;
};

TEST(ComponentSignature, TruthBitsMatchEvaluation) {
  BddManager mgr(3);
  // Majority of three variables.
  const Bdd a = mgr.var(0), b = mgr.var(1), c = mgr.var(2);
  const Bdd maj = (a & b) | (a & c) | (b & c);
  const std::vector<unsigned> support{0, 1, 2};
  const std::vector<std::uint64_t> bits = truth_bits(mgr, maj, support);
  ASSERT_EQ(bits.size(), 1u);
  for (unsigned m = 0; m < 8; ++m) {
    const int pop = ((m >> 0) & 1) + ((m >> 1) & 1) + ((m >> 2) & 1);
    EXPECT_EQ((bits[0] >> m) & 1, pop >= 2 ? 1u : 0u) << "minterm " << m;
  }
}

TEST(ComponentSignature, PositionalEqualityAcrossManagers) {
  // The same Boolean object over different variable index sets — even in
  // different managers — must produce byte-equal signatures: the signature
  // is positional over the sorted support, not tied to manager indices.
  BddManager small(4);
  BddManager wide(9);
  const Bdd f = small.var(1) ^ (small.var(2) & small.var(3));
  const Bdd g = wide.var(5) ^ (wide.var(7) & wide.var(8));
  const std::vector<unsigned> fs{1, 2, 3};
  const std::vector<unsigned> gs{5, 7, 8};
  const ComponentSignature sf = interval_signature(Isf::from_csf(f), fs);
  const ComponentSignature sg = interval_signature(Isf::from_csf(g), gs);
  EXPECT_TRUE(sf.same_interval(sg));
  EXPECT_EQ(sf.hash, sg.hash);

  // A genuinely different function must not collide on the full signature.
  const Bdd h = wide.var(5) | (wide.var(7) & wide.var(8));
  const ComponentSignature sh = interval_signature(Isf::from_csf(h), gs);
  EXPECT_FALSE(sf.same_interval(sh));
  EXPECT_NE(sf.hash, sh.hash);
}

TEST(ComponentSignature, DontCaresWidenTheInterval) {
  // An ISF with don't-cares is a different interval than its on-set taken
  // as a CSF: same Q bits, wider ~R bits.
  BddManager mgr(3);
  const Bdd on = mgr.var(0) & mgr.var(1);
  const Bdd dc = mgr.var(2) & ~mgr.var(0);
  const std::vector<unsigned> support{0, 1, 2};
  const ComponentSignature csf = interval_signature(Isf::from_csf(on), support);
  const ComponentSignature isf =
      interval_signature(Isf::from_on_dc(on, dc), support);
  EXPECT_EQ(csf.q_bits, isf.q_bits);
  EXPECT_NE(csf.nr_bits, isf.nr_bits);
  EXPECT_FALSE(csf.same_interval(isf));
}

TEST(SharedComponent, ExtractSpliceRoundTrip) {
  Netlist net;
  const SignalId a = net.add_input("a");
  const SignalId b = net.add_input("b");
  const SignalId c = net.add_input("c");
  const SignalId g = net.add_xor(net.add_and(a, b), c);
  net.add_output("g", g);

  const std::vector<SignalId> ins{a, b, c};
  const std::optional<Netlist> impl = extract_component(net, g, ins, 16);
  ASSERT_TRUE(impl.has_value());
  EXPECT_EQ(impl->num_inputs(), 3u);
  EXPECT_EQ(impl->num_outputs(), 1u);

  // BDD rebuild equals the original function.
  BddManager mgr(3);
  const std::vector<unsigned> support{0, 1, 2};
  const Bdd rebuilt = component_to_bdd(mgr, *impl, support);
  const Bdd expect = (mgr.var(0) & mgr.var(1)) ^ mgr.var(2);
  EXPECT_EQ(rebuilt, expect);

  // Splice into a fresh netlist and compare by exhaustive evaluation.
  Netlist host;
  std::vector<SignalId> hins;
  for (const char* n : {"x", "y", "z"}) hins.push_back(host.add_input(n));
  host.add_output("f", splice_component(host, *impl, hins));
  for (unsigned m = 0; m < 8; ++m) {
    const std::vector<bool> in{(m & 1) != 0, (m & 2) != 0, (m & 4) != 0};
    const bool want = (in[0] && in[1]) != in[2];
    EXPECT_EQ(host.evaluate(in)[0], want) << "minterm " << m;
  }
}

TEST(SharedComponent, ExtractRefusesForeignInputsAndOversizeCones) {
  Netlist net;
  const SignalId a = net.add_input("a");
  const SignalId b = net.add_input("b");
  const SignalId c = net.add_input("c");
  const SignalId g = net.add_or(net.add_and(a, b), c);
  net.add_output("g", g);

  // The cone reaches c, which is not in the substitution list.
  const std::vector<SignalId> partial{a, b};
  EXPECT_FALSE(extract_component(net, g, partial, 16).has_value());
  // Two gates against a one-node budget.
  const std::vector<SignalId> all{a, b, c};
  EXPECT_FALSE(extract_component(net, g, all, 1).has_value());
  EXPECT_TRUE(extract_component(net, g, all, 2).has_value());
}

TEST(SharedComponent, CorruptComponentIsNeitherFunctionNorComplement) {
  // The poisoning model must produce something validation cannot excuse:
  // Theorem-6 handling legitimately accepts a complemented component, so
  // the corruption (output XOR input 0) must differ from both f and ~f.
  Netlist net;
  const SignalId a = net.add_input("a");
  const SignalId b = net.add_input("b");
  const SignalId c = net.add_input("c");
  net.add_output("f", net.add_and(net.add_and(a, b), c));
  const std::vector<SignalId> ins{a, b, c};
  const std::optional<Netlist> impl =
      extract_component(net, net.output_signal(0), ins, 16);
  ASSERT_TRUE(impl.has_value());

  const Netlist bad = corrupt_component(*impl);
  BddManager mgr(3);
  const std::vector<unsigned> support{0, 1, 2};
  const Bdd good_f = component_to_bdd(mgr, *impl, support);
  const Bdd bad_f = component_to_bdd(mgr, bad, support);
  EXPECT_NE(bad_f, good_f);
  EXPECT_NE(bad_f, ~good_f);
}

TEST(SharedCache, SecondDecomposerHitsPublishedComponents) {
  BidecOptions opts;
  MapSink sink;
  opts.shared_cache = &sink;

  // Job 1: decompose a 4-variable function; eligible cones get published.
  BddManager mgr1(4);
  const Bdd f1 =
      (mgr1.var(0) ^ mgr1.var(1)) & (mgr1.var(2) | mgr1.var(3));
  BiDecomposer d1(mgr1, opts);
  d1.add_output("f", Isf::from_csf(f1));
  EXPECT_GT(d1.stats().shared_publishes, 0u);
  EXPECT_GT(sink.publishes, 0u);
  EXPECT_EQ(sink.rejects, 0u);

  // Job 2: a fresh manager, same function — the root cone must hit.
  BddManager mgr2(4);
  const Bdd f2 =
      (mgr2.var(0) ^ mgr2.var(1)) & (mgr2.var(2) | mgr2.var(3));
  const Isf isf2 = Isf::from_csf(f2);
  BiDecomposer d2(mgr2, opts);
  const SignalId out = d2.add_output("f", isf2);
  ASSERT_NE(out, kNoSignal);
  EXPECT_GT(d2.stats().shared_lookups, 0u);
  EXPECT_GT(d2.stats().shared_hits, 0u);
  EXPECT_EQ(d2.stats().shared_rejects, 0u);

  // The spliced netlist computes the function exactly.
  d2.finish();
  const Netlist& net = d2.netlist();
  for (unsigned m = 0; m < 16; ++m) {
    const bool x0 = (m & 1) != 0, x1 = (m & 2) != 0;
    const bool x2 = (m & 4) != 0, x3 = (m & 8) != 0;
    const bool want = (x0 != x1) && (x2 || x3);
    EXPECT_EQ(net.evaluate({x0, x1, x2, x3})[0], want) << "minterm " << m;
  }
}

TEST(SharedCache, DifferentFunctionMissesCleanly) {
  BidecOptions opts;
  MapSink sink;
  opts.shared_cache = &sink;

  BddManager mgr1(4);
  BiDecomposer d1(mgr1, opts);
  d1.add_output("f", Isf::from_csf(mgr1.var(0) & mgr1.var(1) & mgr1.var(2)));

  const std::size_t hits_before = sink.hits;
  BddManager mgr2(4);
  BiDecomposer d2(mgr2, opts);
  d2.add_output("g", Isf::from_csf(mgr2.var(0) ^ mgr2.var(1) ^ mgr2.var(3)));
  // Nothing published for the AND-chain can serve the parity function.
  EXPECT_EQ(d2.stats().shared_hits, sink.hits - hits_before);
  EXPECT_EQ(d2.stats().shared_rejects, 0u);
}

TEST(SharedCache, PoisonedEntryDegradesToMissNeverWrongNetlist) {
  BidecOptions opts;
  MapSink sink;
  opts.shared_cache = &sink;

  // Job 1 runs under a cache-poison fault plan: every published component
  // is corrupted before it reaches the sink.
  FaultPlan plan;
  plan.seed = 11;
  FaultSpec poison;
  poison.point = FaultPoint::kCachePoison;
  poison.probability = 1.0;
  poison.times = 0;  // unlimited
  plan.add(poison);
  JobFaultInjector injector(plan, /*job_id=*/0, /*worker_id=*/0);

  BddManager mgr1(4);
  mgr1.set_fault_injector(&injector);
  const Bdd f1 =
      (mgr1.var(0) ^ mgr1.var(1)) & (mgr1.var(2) | mgr1.var(3));
  BiDecomposer d1(mgr1, opts);
  d1.add_output("f", Isf::from_csf(f1));
  mgr1.set_fault_injector(nullptr);
  ASSERT_GT(sink.publishes, 0u);

  // Job 2, clean manager: every lookup that matches a poisoned entry must
  // fail validation, be rejected (evicting the entry), and fall through to
  // a fresh decomposition — which still produces the right function.
  BddManager mgr2(4);
  const Bdd f2 =
      (mgr2.var(0) ^ mgr2.var(1)) & (mgr2.var(2) | mgr2.var(3));
  const Isf isf2 = Isf::from_csf(f2);
  BiDecomposer d2(mgr2, opts);
  d2.add_output("f", isf2);
  EXPECT_GT(d2.stats().shared_lookups, 0u);
  EXPECT_EQ(d2.stats().shared_hits, 0u);
  EXPECT_GT(d2.stats().shared_rejects, 0u);
  EXPECT_EQ(sink.rejects, d2.stats().shared_rejects);

  d2.finish();
  const Netlist& net = d2.netlist();
  for (unsigned m = 0; m < 16; ++m) {
    const bool x0 = (m & 1) != 0, x1 = (m & 2) != 0;
    const bool x2 = (m & 4) != 0, x3 = (m & 8) != 0;
    const bool want = (x0 != x1) && (x2 || x3);
    EXPECT_EQ(net.evaluate({x0, x1, x2, x3})[0], want) << "minterm " << m;
  }
}

// --- engine-level reuse: run_synthesis_job with a shared sink ------------

JobSpec shared_spec(const PlaFile& pla, SharedComponentSink* sink) {
  JobSpec spec;
  spec.name = "shared";
  spec.source = pla;
  spec.flow.bidec.shared_cache = sink;
  spec.verify = VerifyEngine::kBoth;
  return spec;
}

TEST(SharedCache, ReusedResultsPassBothVerifiers) {
  const PlaFile pla = random_control_pla(/*inputs=*/8, /*outputs=*/3,
                                         /*cubes=*/18, /*min_lits=*/2,
                                         /*max_lits=*/5, /*outs_per_cube=*/2,
                                         /*dc_fraction=*/0.0, /*seed=*/42);
  MapSink sink;
  OwnedManagerSource managers;

  const JobResult first = run_synthesis_job(shared_spec(pla, &sink), 1, 0,
                                            managers, FaultPlan{}, false, false);
  ASSERT_EQ(first.report.status, JobStatus::kOk) << first.report.error;
  EXPECT_GT(first.report.bidec.shared_publishes, 0u);

  const JobResult second = run_synthesis_job(shared_spec(pla, &sink), 2, 0,
                                             managers, FaultPlan{}, false, false);
  ASSERT_EQ(second.report.status, JobStatus::kOk) << second.report.error;
  EXPECT_GT(second.report.bidec.shared_hits, 0u);
  EXPECT_EQ(second.report.bidec.shared_rejects, 0u);
  // Both verification engines ran and passed on the reuse-built netlist.
  EXPECT_EQ(second.report.bdd_verdict, 1);
  EXPECT_EQ(second.report.sat_verdict, 1);

  // With the cross-job cache consulted, the scheduling-dependent
  // decomposition counters must be absent from the stable serialization —
  // a hit short-circuits whole subtrees, so they are not byte-stable.
  EXPECT_EQ(second.report.to_stable_json().find("\"decomposition\""),
            std::string::npos);
  // An ordinary job keeps them.
  JobSpec plain;
  plain.name = "plain";
  plain.source = pla;
  const JobResult lone =
      run_synthesis_job(plain, 3, 0, managers, FaultPlan{}, false, false);
  EXPECT_NE(lone.report.to_stable_json().find("\"decomposition\""),
            std::string::npos);
}

TEST(SharedCache, PoisonedPublishesUnderFaultPlanStillVerify) {
  const PlaFile pla = random_control_pla(8, 3, 18, 2, 5, 2, 0.0, 43);
  MapSink sink;
  OwnedManagerSource managers;

  FaultPlan plan;
  plan.seed = 7;
  FaultSpec poison;
  poison.point = FaultPoint::kCachePoison;
  poison.probability = 1.0;
  poison.times = 0;
  plan.add(poison);

  // Every publish of job 1 is corrupted through the same injector path the
  // fault-injection layer uses for the computed cache.
  const JobResult first = run_synthesis_job(shared_spec(pla, &sink), 1, 0,
                                            managers, plan, false, false);
  ASSERT_EQ(first.report.status, JobStatus::kOk) << first.report.error;
  ASSERT_GT(first.report.bidec.shared_publishes, 0u);

  // Job 2 (also under the plan — publishes poisoned, lookups clean) must
  // reject every poisoned hit and still verify on both engines.
  const JobResult second = run_synthesis_job(shared_spec(pla, &sink), 2, 0,
                                             managers, plan, false, false);
  ASSERT_EQ(second.report.status, JobStatus::kOk) << second.report.error;
  EXPECT_EQ(second.report.bidec.shared_hits, 0u);
  EXPECT_GT(second.report.bidec.shared_rejects, 0u);
  EXPECT_EQ(second.report.bdd_verdict, 1);
  EXPECT_EQ(second.report.sat_verdict, 1);
  EXPECT_TRUE(second.report.failed_outputs.empty());
}

}  // namespace
}  // namespace bidec
