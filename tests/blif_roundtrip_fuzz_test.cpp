// BLIF round-trip fuzzing: synthesize seeded random specifications, write
// the netlist as BLIF, re-read it, and prove the reparsed netlist
// equivalent to the original with both verification engines. This covers
// the writer/reader pair (multi-fanin .names covers, off-set covers,
// constants) far beyond the hand-written blif_test cases.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "benchgen/benchgen.h"
#include "bidec/flow.h"
#include "io/blif.h"
#include "verify/sat_verifier.h"
#include "verify/verifier.h"

namespace bidec {
namespace {

/// Two statements: GCC 12's -Wrestrict misfires on `prefix +
/// std::to_string(i)` once the string operator+ is inlined.
std::string numbered_name(const char* prefix, std::size_t i) {
  std::string s = prefix;
  s += std::to_string(i);
  return s;
}

class BlifRoundTripFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BlifRoundTripFuzz, SynthesizedNetlistsSurviveWriteRead) {
  StructuredSpecParams params;
  params.inputs = 8;
  params.outputs = 4;
  params.internal_nodes = 40;
  params.xor_fraction = 0.15;
  params.dc_fraction = 0.0;  // spec must be fully specified for equivalence
  params.seed = GetParam() * 7919 + 1;

  BddManager mgr(params.inputs);
  const std::vector<Isf> spec = random_structured_spec(mgr, params);
  std::vector<std::string> in_names, out_names;
  for (unsigned i = 0; i < params.inputs; ++i) in_names.push_back(numbered_name("x", i));
  for (unsigned o = 0; o < params.outputs; ++o) out_names.push_back(numbered_name("y", o));

  const FlowResult flow = synthesize_bidecomp(mgr, spec, in_names, out_names);
  const std::string text = write_blif(flow.netlist, "fuzz");
  const Netlist reread = read_blif_string(text);

  ASSERT_EQ(reread.num_inputs(), flow.netlist.num_inputs());
  ASSERT_EQ(reread.num_outputs(), flow.netlist.num_outputs());
  for (std::size_t i = 0; i < reread.num_inputs(); ++i) {
    EXPECT_EQ(reread.input_name(i), flow.netlist.input_name(i));
  }
  for (std::size_t o = 0; o < reread.num_outputs(); ++o) {
    EXPECT_EQ(reread.output_name(o), flow.netlist.output_name(o));
  }

  // Both engines must find the reparsed netlist equivalent to the original.
  const VerifyResult bdd = verify_equivalent(mgr, flow.netlist, reread);
  EXPECT_TRUE(bdd.ok) << "BDD verifier rejected the round-trip (seed "
                      << GetParam() << ", outputs:"
                      << [&] {
                           std::string s;
                           for (const std::size_t o : bdd.failed_outputs) {
                             s += ' ';  // two appends: -Wrestrict misfire
                             s += std::to_string(o);
                           }
                           return s;
                         }();
  const VerifyResult sat = sat_verify_equivalent(flow.netlist, reread);
  EXPECT_TRUE(sat.ok) << "SAT miter rejected the round-trip (seed " << GetParam() << ")";
  EXPECT_EQ(bdd.ok, sat.ok);

  // And the round-tripped netlist still satisfies the original spec.
  EXPECT_TRUE(verify_against_isfs(mgr, reread, spec).ok);
  EXPECT_TRUE(sat_verify_against_isfs(reread, spec).ok);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BlifRoundTripFuzz,
                         ::testing::Range<std::uint64_t>(0, 12));

TEST(BlifRoundTrip, DoubleRoundTripIsStable) {
  // write(read(write(n))) must equal write(read-result) textually: the
  // second pass starts from a two-input-gate netlist, which the writer
  // serializes canonically.
  StructuredSpecParams params;
  params.inputs = 6;
  params.outputs = 3;
  params.internal_nodes = 25;
  params.seed = 424242;
  BddManager mgr(params.inputs);
  const std::vector<Isf> spec = random_structured_spec(mgr, params);
  std::vector<std::string> in_names, out_names;
  for (unsigned i = 0; i < params.inputs; ++i) in_names.push_back(numbered_name("x", i));
  for (unsigned o = 0; o < params.outputs; ++o) out_names.push_back(numbered_name("y", o));
  const FlowResult flow = synthesize_bidecomp(mgr, spec, in_names, out_names);

  const std::string once = write_blif(flow.netlist, "m");
  const Netlist n1 = read_blif_string(once);
  const std::string twice = write_blif(n1, "m");
  const Netlist n2 = read_blif_string(twice);
  EXPECT_TRUE(verify_equivalent(mgr, n1, n2).ok);
  EXPECT_TRUE(sat_verify_equivalent(n1, n2).ok);
}

}  // namespace
}  // namespace bidec
