// Netlist substrate: structural hashing, folding rules, metrics, parallel
// simulation and inverter absorption.
#include "netlist/netlist.h"

#include <gtest/gtest.h>

namespace bidec {
namespace {

TEST(Netlist, InputsAndOutputs) {
  Netlist net;
  const SignalId a = net.add_input("a");
  const SignalId b = net.add_input("b");
  net.add_output("y", net.add_and(a, b));
  EXPECT_EQ(net.num_inputs(), 2u);
  EXPECT_EQ(net.num_outputs(), 1u);
  EXPECT_EQ(net.input_name(0), "a");
  EXPECT_EQ(net.output_name(0), "y");
  EXPECT_EQ(net.input_index(a), 0u);
  EXPECT_EQ(net.input_index(b), 1u);
}

TEST(Netlist, StructuralHashingMergesDuplicates) {
  Netlist net;
  const SignalId a = net.add_input("a");
  const SignalId b = net.add_input("b");
  const SignalId g1 = net.add_and(a, b);
  const SignalId g2 = net.add_and(b, a);  // commuted
  EXPECT_EQ(g1, g2);
  EXPECT_EQ(net.add_xor(a, b), net.add_xor(b, a));
  EXPECT_EQ(net.add_not(g1), net.add_not(g1));
}

TEST(Netlist, ConstantFolding) {
  Netlist net;
  const SignalId a = net.add_input("a");
  const SignalId c0 = net.get_const(false);
  const SignalId c1 = net.get_const(true);
  EXPECT_EQ(net.add_and(a, c0), c0);
  EXPECT_EQ(net.add_and(a, c1), a);
  EXPECT_EQ(net.add_or(a, c1), c1);
  EXPECT_EQ(net.add_or(a, c0), a);
  EXPECT_EQ(net.add_xor(a, c0), a);
  EXPECT_EQ(net.add_xor(a, c1), net.add_not(a));
  EXPECT_EQ(net.add_gate(GateType::kNand, a, c1), net.add_not(a));
  EXPECT_EQ(net.add_gate(GateType::kNor, a, a), net.add_not(a));
}

TEST(Netlist, IdempotenceAndComplementRules) {
  Netlist net;
  const SignalId a = net.add_input("a");
  const SignalId na = net.add_not(a);
  EXPECT_EQ(net.add_and(a, a), a);
  EXPECT_EQ(net.add_or(a, a), a);
  EXPECT_EQ(net.add_xor(a, a), net.get_const(false));
  EXPECT_EQ(net.add_and(a, na), net.get_const(false));
  EXPECT_EQ(net.add_or(a, na), net.get_const(true));
  EXPECT_EQ(net.add_xor(a, na), net.get_const(true));
  EXPECT_EQ(net.add_not(na), a);  // double negation
}

TEST(Netlist, XorInverterPushing) {
  Netlist net;
  const SignalId a = net.add_input("a");
  const SignalId b = net.add_input("b");
  // xor(~a, b) == ~xor(a, b): the base XOR node must be shared.
  const SignalId x1 = net.add_xor(net.add_not(a), b);
  const SignalId x2 = net.add_xor(a, b);
  EXPECT_EQ(x1, net.add_not(x2));
  // xor(~a, ~b) == xor(a, b).
  EXPECT_EQ(net.add_xor(net.add_not(a), net.add_not(b)), x2);
}

TEST(Netlist, StatsCountsAndLevels) {
  Netlist net;
  const SignalId a = net.add_input("a");
  const SignalId b = net.add_input("b");
  const SignalId c = net.add_input("c");
  const SignalId g1 = net.add_and(a, b);
  const SignalId g2 = net.add_xor(g1, c);
  net.add_output("y", g2);
  const NetlistStats s = net.stats();
  EXPECT_EQ(s.two_input, 2u);
  EXPECT_EQ(s.exors, 1u);
  EXPECT_EQ(s.inverters, 0u);
  EXPECT_EQ(s.gates, 2u);
  EXPECT_EQ(s.cascades, 2u);
  EXPECT_DOUBLE_EQ(s.area, 3.0 + 5.0);
  EXPECT_DOUBLE_EQ(s.delay, 1.2 + 2.1);
}

TEST(Netlist, StatsIgnoreDanglingLogic) {
  Netlist net;
  const SignalId a = net.add_input("a");
  const SignalId b = net.add_input("b");
  (void)net.add_xor(a, b);  // dangling
  net.add_output("y", net.add_and(a, b));
  const NetlistStats s = net.stats();
  EXPECT_EQ(s.two_input, 1u);
  EXPECT_EQ(s.exors, 0u);
}

TEST(Netlist, InverterDelayCountsButNotCascades) {
  Netlist net;
  const SignalId a = net.add_input("a");
  const SignalId b = net.add_input("b");
  const SignalId y = net.add_and(net.add_not(a), b);
  net.add_output("y", y);
  const NetlistStats s = net.stats();
  EXPECT_EQ(s.cascades, 1u);
  EXPECT_DOUBLE_EQ(s.delay, 0.5 + 1.2);
  EXPECT_EQ(s.inverters, 1u);
  EXPECT_EQ(s.gates, 2u);
}

TEST(Netlist, Simulate64MatchesEvaluate) {
  Netlist net;
  const SignalId a = net.add_input("a");
  const SignalId b = net.add_input("b");
  const SignalId c = net.add_input("c");
  net.add_output("y", net.add_or(net.add_and(a, b), net.add_not(c)));
  net.add_output("z", net.add_xor(a, c));
  for (unsigned m = 0; m < 8; ++m) {
    const std::vector<bool> in{(m & 1) != 0, (m & 2) != 0, (m & 4) != 0};
    const std::vector<bool> out = net.evaluate(in);
    const bool y = ((m & 1) && (m & 2)) || !(m & 4);
    const bool z = ((m & 1) != 0) != ((m & 4) != 0);
    EXPECT_EQ(out[0], y) << m;
    EXPECT_EQ(out[1], z) << m;
  }
}

TEST(Netlist, Simulate64StacksPatterns) {
  Netlist net;
  const SignalId a = net.add_input("a");
  const SignalId b = net.add_input("b");
  net.add_output("y", net.add_and(a, b));
  const std::vector<std::uint64_t> out = net.simulate64({0b1100, 0b1010});
  EXPECT_EQ(out[0] & 0xF, 0b1000u);
}

TEST(Netlist, Simulate64RejectsWrongArity) {
  Netlist net;
  net.add_input("a");
  EXPECT_THROW((void)net.simulate64({1, 2}), std::invalid_argument);
}

TEST(Netlist, AbsorbInvertersCreatesNegatedGates) {
  Netlist net;
  const SignalId a = net.add_input("a");
  const SignalId b = net.add_input("b");
  const SignalId y = net.add_not(net.add_and(a, b));  // should become NAND
  net.add_output("y", y);
  const std::size_t merges = net.absorb_inverters();
  EXPECT_EQ(merges, 1u);
  const NetlistStats s = net.stats();
  EXPECT_EQ(s.inverters, 0u);
  EXPECT_EQ(s.two_input, 1u);
  EXPECT_DOUBLE_EQ(s.area, 2.0);  // NAND is cheaper than AND+INV
  // Functionality preserved.
  EXPECT_EQ(net.evaluate({true, true})[0], false);
  EXPECT_EQ(net.evaluate({true, false})[0], true);
}

TEST(Netlist, AbsorbKeepsSharedGateIntact) {
  Netlist net;
  const SignalId a = net.add_input("a");
  const SignalId b = net.add_input("b");
  const SignalId g = net.add_and(a, b);
  net.add_output("y", net.add_not(g));
  net.add_output("z", g);  // g has another fanout: no merge allowed
  const std::size_t merges = net.absorb_inverters();
  EXPECT_EQ(merges, 0u);
  EXPECT_EQ(net.evaluate({true, true})[0], false);
  EXPECT_EQ(net.evaluate({true, true})[1], true);
}

TEST(Netlist, ReachableTopoOrderIsTopological) {
  Netlist net;
  const SignalId a = net.add_input("a");
  const SignalId b = net.add_input("b");
  const SignalId g1 = net.add_or(a, b);
  const SignalId g2 = net.add_xor(g1, a);
  net.add_output("y", g2);
  const std::vector<SignalId> order = net.reachable_topo_order();
  std::vector<std::size_t> pos(net.num_nodes(), SIZE_MAX);
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (const SignalId id : order) {
    const Netlist::Node& n = net.node(id);
    if (n.fanin0 != kNoSignal) {
      EXPECT_LT(pos[n.fanin0], pos[id]);
    }
    if (n.fanin1 != kNoSignal) {
      EXPECT_LT(pos[n.fanin1], pos[id]);
    }
  }
}

TEST(Netlist, AddGateRejectsInputType) {
  Netlist net;
  EXPECT_THROW((void)net.add_gate(GateType::kInput, 0, 0), std::invalid_argument);
}

TEST(GateTables, AreaDelayRatiosFromPaper) {
  // Section 8: EXOR:NOR area ratio 5:2, delay ratio 2.1:1.0.
  EXPECT_DOUBLE_EQ(gate_area(GateType::kXor) / gate_area(GateType::kNor), 5.0 / 2.0);
  EXPECT_DOUBLE_EQ(gate_delay(GateType::kXor) / gate_delay(GateType::kNor), 2.1);
}

TEST(GateTables, Eval64Semantics) {
  const std::uint64_t a = 0b1100, b = 0b1010;
  EXPECT_EQ(gate_eval64(GateType::kAnd, a, b) & 0xF, 0b1000u);
  EXPECT_EQ(gate_eval64(GateType::kOr, a, b) & 0xF, 0b1110u);
  EXPECT_EQ(gate_eval64(GateType::kXor, a, b) & 0xF, 0b0110u);
  EXPECT_EQ(gate_eval64(GateType::kNand, a, b) & 0xF, 0b0111u);
  EXPECT_EQ(gate_eval64(GateType::kNor, a, b) & 0xF, 0b0001u);
  EXPECT_EQ(gate_eval64(GateType::kXnor, a, b) & 0xF, 0b1001u);
  EXPECT_EQ(gate_eval64(GateType::kNot, a, 0) & 0xF, 0b0011u);
}

}  // namespace
}  // namespace bidec
