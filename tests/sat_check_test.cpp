// The SAT-based two-copy decomposability check must agree with Theorem 1's
// BDD formula (and the brute-force component enumeration) on exhaustive
// sweeps of small random ISFs, for OR and the AND dual alike.
#include "bidec/sat_check.h"

#include <gtest/gtest.h>

#include <random>

#include "bidec/check.h"
#include "brute_force.h"
#include "tt/truth_table.h"

namespace bidec {
namespace {

using testing::BruteGate;
using testing::brute_force_decomposable;

Isf random_isf(BddManager& mgr, unsigned nv, std::mt19937_64& rng, double dc_density) {
  const TruthTable on = TruthTable::random(nv, rng, 0.5);
  const TruthTable dc = TruthTable::random(nv, rng, dc_density);
  return Isf((on - dc).to_bdd(mgr), ((~on) - dc).to_bdd(mgr));
}

class SatCheckVsTheorem1 : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SatCheckVsTheorem1, OrAllSingletonPairs) {
  std::mt19937_64 rng(GetParam());
  const unsigned nv = 4;
  BddManager mgr(nv);
  const Isf isf = random_isf(mgr, nv, rng, 0.25);
  for (unsigned a = 0; a < nv; ++a) {
    for (unsigned b = 0; b < nv; ++b) {
      if (a == b) continue;
      const unsigned xa[] = {a}, xb[] = {b};
      const bool bdd = check_or_decomposable(isf, xa, xb);
      const bool sat = sat_check_or_decomposable(isf, xa, xb);
      EXPECT_EQ(sat, bdd) << "xa=" << a << " xb=" << b;
      // And both equal the ground truth from component enumeration.
      EXPECT_EQ(sat, brute_force_decomposable(mgr, isf, nv, xa, xb, BruteGate::kOr))
          << "xa=" << a << " xb=" << b;
    }
  }
}

TEST_P(SatCheckVsTheorem1, AndDualAllSingletonPairs) {
  std::mt19937_64 rng(GetParam() + 1000);
  const unsigned nv = 4;
  BddManager mgr(nv);
  const Isf isf = random_isf(mgr, nv, rng, 0.25);
  for (unsigned a = 0; a < nv; ++a) {
    for (unsigned b = 0; b < nv; ++b) {
      if (a == b) continue;
      const unsigned xa[] = {a}, xb[] = {b};
      const bool bdd = check_and_decomposable(isf, xa, xb);
      const bool sat = sat_check_and_decomposable(isf, xa, xb);
      EXPECT_EQ(sat, bdd) << "xa=" << a << " xb=" << b;
      EXPECT_EQ(sat, brute_force_decomposable(mgr, isf, nv, xa, xb, BruteGate::kAnd))
          << "xa=" << a << " xb=" << b;
    }
  }
}

TEST_P(SatCheckVsTheorem1, LargerPrivateSets) {
  std::mt19937_64 rng(GetParam() + 2000);
  const unsigned nv = 4;
  BddManager mgr(nv);
  const Isf isf = random_isf(mgr, nv, rng, 0.3);
  const unsigned xa[] = {0, 1}, xb[] = {2};
  EXPECT_EQ(sat_check_or_decomposable(isf, xa, xb),
            check_or_decomposable(isf, xa, xb));
  const unsigned xa2[] = {0}, xb2[] = {1, 3};
  EXPECT_EQ(sat_check_or_decomposable(isf, xa2, xb2),
            check_or_decomposable(isf, xa2, xb2));
  const unsigned xa3[] = {0, 2}, xb3[] = {1, 3};
  EXPECT_EQ(sat_check_or_decomposable(isf, xa3, xb3),
            check_or_decomposable(isf, xa3, xb3));
  EXPECT_EQ(sat_check_and_decomposable(isf, xa3, xb3),
            check_and_decomposable(isf, xa3, xb3));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SatCheckVsTheorem1,
                         ::testing::Range<std::uint64_t>(0, 12));

TEST(SatCheck, KnownDecomposableExample) {
  // f = x0 | x1 is OR-decomposable with XA={0}, XB={1} (take fA = x0,
  // fB = x1) but not AND-decomposable with those sets.
  BddManager mgr(2);
  const Isf f = Isf::from_csf(mgr.var(0) | mgr.var(1));
  const unsigned xa[] = {0}, xb[] = {1};
  EXPECT_TRUE(sat_check_or_decomposable(f, xa, xb));
  EXPECT_FALSE(sat_check_and_decomposable(f, xa, xb));

  const Isf g = Isf::from_csf(mgr.var(0) & mgr.var(1));
  EXPECT_TRUE(sat_check_and_decomposable(g, xa, xb));
  EXPECT_FALSE(sat_check_or_decomposable(g, xa, xb));
}

TEST(SatCheck, DontCaresEnableDecomposition) {
  // XOR is not OR-decomposable as a completely specified function, but an
  // interval that contains OR (Q = minterms where exactly one input is 1,
  // R = the 00 minterm only, 11 free) is.
  BddManager mgr(2);
  const Bdd x = mgr.var(0), y = mgr.var(1);
  const unsigned xa[] = {0}, xb[] = {1};
  EXPECT_FALSE(sat_check_or_decomposable(Isf::from_csf(x ^ y), xa, xb));
  const Isf loose(x ^ y, ~x & ~y);
  EXPECT_TRUE(sat_check_or_decomposable(loose, xa, xb));
}

TEST(SatCheck, SixVariableSweepMatchesBdd) {
  // Beyond the brute-force range: 6-variable ISFs, SAT vs the Theorem 1
  // formula on random bipartitions.
  std::mt19937_64 rng(77);
  const unsigned nv = 6;
  BddManager mgr(nv);
  for (int round = 0; round < 10; ++round) {
    const Isf isf = random_isf(mgr, nv, rng, 0.35);
    std::vector<unsigned> xa, xb;
    for (unsigned v = 0; v < nv; ++v) {
      switch (rng() % 3) {
        case 0: xa.push_back(v); break;
        case 1: xb.push_back(v); break;
        default: break;  // common set
      }
    }
    if (xa.empty() || xb.empty()) continue;
    EXPECT_EQ(sat_check_or_decomposable(isf, xa, xb),
              check_or_decomposable(isf, xa, xb))
        << "round " << round;
    EXPECT_EQ(sat_check_and_decomposable(isf, xa, xb),
              check_and_decomposable(isf, xa, xb))
        << "round " << round;
  }
}

// --- degenerate-input short-circuits ---------------------------------------
// These hit the constant/single-variable fast paths that never build the
// two-copy encoding; each must agree with the Theorem-1 BDD formula.

TEST(SatCheckDegenerate, EmptyOnSetIsAlwaysDecomposable) {
  BddManager mgr(3);
  const unsigned xa[] = {0}, xb[] = {1};
  // Q = 0: any pair of constant-0 components works.
  const Isf empty_q(mgr.bdd_false(), mgr.var(2));
  EXPECT_TRUE(sat_check_or_decomposable(empty_q, xa, xb));
  EXPECT_EQ(sat_check_or_decomposable(empty_q, xa, xb),
            check_or_decomposable(empty_q, xa, xb));
  // R = 0: the interval is [Q, 1]; constant-1 components cover it.
  const Isf empty_r(mgr.var(2), mgr.bdd_false());
  EXPECT_TRUE(sat_check_or_decomposable(empty_r, xa, xb));
  EXPECT_EQ(sat_check_or_decomposable(empty_r, xa, xb),
            check_or_decomposable(empty_r, xa, xb));
}

TEST(SatCheckDegenerate, ConstantTrueSides) {
  BddManager mgr(3);
  const unsigned xa[] = {0}, xb[] = {1};
  // Q = 1 with nonzero R is impossible (inconsistent), but R = 1 with
  // nonzero Q (constant-0 interval with care everywhere Q) exercises the
  // constant-true branch: Q & exists R & exists R ⊇ Q & R ≠ 0.
  const Isf f(mgr.var(2), mgr.bdd_true() & ~mgr.var(2));
  EXPECT_EQ(sat_check_or_decomposable(f, xa, xb),
            check_or_decomposable(f, xa, xb));
  const Isf tautology(mgr.bdd_true(), mgr.bdd_false());
  EXPECT_TRUE(sat_check_or_decomposable(tautology, xa, xb));
  EXPECT_TRUE(sat_check_and_decomposable(tautology, xa, xb));
}

TEST(SatCheckDegenerate, SingleSupportVariableAllPlacements) {
  // Support = {v}: the evaluated-cofactor fast path, with v private to A,
  // private to B, or common — swept against the BDD check for both q = x2
  // and q = !x2 and partial intervals.
  BddManager mgr(4);
  for (const bool pol : {false, true}) {
    const Bdd lit = pol ? mgr.var(2) : ~mgr.var(2);
    const Isf csf = Isf::from_csf(lit);
    const Isf loose(lit, mgr.bdd_false());
    for (const Isf* f : {&csf, &loose}) {
      const unsigned xa_with_v[] = {2}, xb_other[] = {1};
      EXPECT_EQ(sat_check_or_decomposable(*f, xa_with_v, xb_other),
                check_or_decomposable(*f, xa_with_v, xb_other))
          << "pol=" << pol;
      EXPECT_EQ(sat_check_or_decomposable(*f, xb_other, xa_with_v),
                check_or_decomposable(*f, xb_other, xa_with_v))
          << "pol=" << pol;
      const unsigned xa_common[] = {0}, xb_common[] = {1};
      EXPECT_EQ(sat_check_or_decomposable(*f, xa_common, xb_common),
                check_or_decomposable(*f, xa_common, xb_common))
          << "pol=" << pol;
      EXPECT_EQ(sat_check_and_decomposable(*f, xa_common, xb_common),
                check_and_decomposable(*f, xa_common, xb_common))
          << "pol=" << pol;
    }
  }
}

TEST(SatCheckDegenerate, RandomSingleVarIntervalsMatchBdd) {
  std::mt19937_64 rng(99);
  BddManager mgr(5);
  for (int round = 0; round < 30; ++round) {
    const unsigned v = static_cast<unsigned>(rng() % 5);
    const Bdd q = (rng() & 1) ? mgr.var(v) : ~mgr.var(v);
    // r is 0, !q, or a strict subset of !q restricted to v's literals.
    const Bdd r = (rng() % 3 == 0) ? mgr.bdd_false() : ~q;
    const Isf f(q, r);
    std::vector<unsigned> xa = {static_cast<unsigned>(rng() % 5)};
    std::vector<unsigned> xb = {static_cast<unsigned>(rng() % 5)};
    if (xa == xb) continue;
    EXPECT_EQ(sat_check_or_decomposable(f, xa, xb),
              check_or_decomposable(f, xa, xb))
        << "round " << round << " v=" << v;
  }
}

}  // namespace
}  // namespace bidec
