// The SAT-based two-copy decomposability check must agree with Theorem 1's
// BDD formula (and the brute-force component enumeration) on exhaustive
// sweeps of small random ISFs, for OR and the AND dual alike.
#include "bidec/sat_check.h"

#include <gtest/gtest.h>

#include <random>

#include "bidec/check.h"
#include "brute_force.h"
#include "tt/truth_table.h"

namespace bidec {
namespace {

using testing::BruteGate;
using testing::brute_force_decomposable;

Isf random_isf(BddManager& mgr, unsigned nv, std::mt19937_64& rng, double dc_density) {
  const TruthTable on = TruthTable::random(nv, rng, 0.5);
  const TruthTable dc = TruthTable::random(nv, rng, dc_density);
  return Isf((on - dc).to_bdd(mgr), ((~on) - dc).to_bdd(mgr));
}

class SatCheckVsTheorem1 : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SatCheckVsTheorem1, OrAllSingletonPairs) {
  std::mt19937_64 rng(GetParam());
  const unsigned nv = 4;
  BddManager mgr(nv);
  const Isf isf = random_isf(mgr, nv, rng, 0.25);
  for (unsigned a = 0; a < nv; ++a) {
    for (unsigned b = 0; b < nv; ++b) {
      if (a == b) continue;
      const unsigned xa[] = {a}, xb[] = {b};
      const bool bdd = check_or_decomposable(isf, xa, xb);
      const bool sat = sat_check_or_decomposable(isf, xa, xb);
      EXPECT_EQ(sat, bdd) << "xa=" << a << " xb=" << b;
      // And both equal the ground truth from component enumeration.
      EXPECT_EQ(sat, brute_force_decomposable(mgr, isf, nv, xa, xb, BruteGate::kOr))
          << "xa=" << a << " xb=" << b;
    }
  }
}

TEST_P(SatCheckVsTheorem1, AndDualAllSingletonPairs) {
  std::mt19937_64 rng(GetParam() + 1000);
  const unsigned nv = 4;
  BddManager mgr(nv);
  const Isf isf = random_isf(mgr, nv, rng, 0.25);
  for (unsigned a = 0; a < nv; ++a) {
    for (unsigned b = 0; b < nv; ++b) {
      if (a == b) continue;
      const unsigned xa[] = {a}, xb[] = {b};
      const bool bdd = check_and_decomposable(isf, xa, xb);
      const bool sat = sat_check_and_decomposable(isf, xa, xb);
      EXPECT_EQ(sat, bdd) << "xa=" << a << " xb=" << b;
      EXPECT_EQ(sat, brute_force_decomposable(mgr, isf, nv, xa, xb, BruteGate::kAnd))
          << "xa=" << a << " xb=" << b;
    }
  }
}

TEST_P(SatCheckVsTheorem1, LargerPrivateSets) {
  std::mt19937_64 rng(GetParam() + 2000);
  const unsigned nv = 4;
  BddManager mgr(nv);
  const Isf isf = random_isf(mgr, nv, rng, 0.3);
  const unsigned xa[] = {0, 1}, xb[] = {2};
  EXPECT_EQ(sat_check_or_decomposable(isf, xa, xb),
            check_or_decomposable(isf, xa, xb));
  const unsigned xa2[] = {0}, xb2[] = {1, 3};
  EXPECT_EQ(sat_check_or_decomposable(isf, xa2, xb2),
            check_or_decomposable(isf, xa2, xb2));
  const unsigned xa3[] = {0, 2}, xb3[] = {1, 3};
  EXPECT_EQ(sat_check_or_decomposable(isf, xa3, xb3),
            check_or_decomposable(isf, xa3, xb3));
  EXPECT_EQ(sat_check_and_decomposable(isf, xa3, xb3),
            check_and_decomposable(isf, xa3, xb3));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SatCheckVsTheorem1,
                         ::testing::Range<std::uint64_t>(0, 12));

TEST(SatCheck, KnownDecomposableExample) {
  // f = x0 | x1 is OR-decomposable with XA={0}, XB={1} (take fA = x0,
  // fB = x1) but not AND-decomposable with those sets.
  BddManager mgr(2);
  const Isf f = Isf::from_csf(mgr.var(0) | mgr.var(1));
  const unsigned xa[] = {0}, xb[] = {1};
  EXPECT_TRUE(sat_check_or_decomposable(f, xa, xb));
  EXPECT_FALSE(sat_check_and_decomposable(f, xa, xb));

  const Isf g = Isf::from_csf(mgr.var(0) & mgr.var(1));
  EXPECT_TRUE(sat_check_and_decomposable(g, xa, xb));
  EXPECT_FALSE(sat_check_or_decomposable(g, xa, xb));
}

TEST(SatCheck, DontCaresEnableDecomposition) {
  // XOR is not OR-decomposable as a completely specified function, but an
  // interval that contains OR (Q = minterms where exactly one input is 1,
  // R = the 00 minterm only, 11 free) is.
  BddManager mgr(2);
  const Bdd x = mgr.var(0), y = mgr.var(1);
  const unsigned xa[] = {0}, xb[] = {1};
  EXPECT_FALSE(sat_check_or_decomposable(Isf::from_csf(x ^ y), xa, xb));
  const Isf loose(x ^ y, ~x & ~y);
  EXPECT_TRUE(sat_check_or_decomposable(loose, xa, xb));
}

TEST(SatCheck, SixVariableSweepMatchesBdd) {
  // Beyond the brute-force range: 6-variable ISFs, SAT vs the Theorem 1
  // formula on random bipartitions.
  std::mt19937_64 rng(77);
  const unsigned nv = 6;
  BddManager mgr(nv);
  for (int round = 0; round < 10; ++round) {
    const Isf isf = random_isf(mgr, nv, rng, 0.35);
    std::vector<unsigned> xa, xb;
    for (unsigned v = 0; v < nv; ++v) {
      switch (rng() % 3) {
        case 0: xa.push_back(v); break;
        case 1: xb.push_back(v); break;
        default: break;  // common set
      }
    }
    if (xa.empty() || xb.empty()) continue;
    EXPECT_EQ(sat_check_or_decomposable(isf, xa, xb),
              check_or_decomposable(isf, xa, xb))
        << "round " << round;
    EXPECT_EQ(sat_check_and_decomposable(isf, xa, xb),
              check_and_decomposable(isf, xa, xb))
        << "round " << round;
  }
}

}  // namespace
}  // namespace bidec
