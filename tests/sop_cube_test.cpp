// Cube algebra of the two-level engine.
#include "sop/cube.h"

#include <gtest/gtest.h>

namespace bidec {
namespace {

TEST(Cube, UniversalCube) {
  const Cube c(5);
  EXPECT_TRUE(c.is_universal());
  EXPECT_EQ(c.num_literals(), 0u);
  for (unsigned v = 0; v < 5; ++v) EXPECT_EQ(c.literal(v), -1);
  for (unsigned m = 0; m < 32; ++m) EXPECT_TRUE(c.contains_minterm(m));
}

TEST(Cube, StringRoundTrip) {
  const Cube c = Cube::from_string("1-0-1");
  EXPECT_EQ(c.to_string(), "1-0-1");
  EXPECT_EQ(c.literal(0), 1);
  EXPECT_EQ(c.literal(1), -1);
  EXPECT_EQ(c.literal(2), 0);
  EXPECT_EQ(c.num_literals(), 3u);
  EXPECT_THROW((void)Cube::from_string("1x"), std::invalid_argument);
}

TEST(Cube, SetClearLiterals) {
  Cube c(3);
  c.set_literal(1, true);
  EXPECT_EQ(c.literal(1), 1);
  c.set_literal(1, false);  // flip polarity
  EXPECT_EQ(c.literal(1), 0);
  c.clear_literal(1);
  EXPECT_EQ(c.literal(1), -1);
}

TEST(Cube, ContainsIsMintermContainment) {
  const Cube big = Cube::from_string("1--");
  const Cube small = Cube::from_string("1-0");
  EXPECT_TRUE(big.contains(small));
  EXPECT_FALSE(small.contains(big));
  EXPECT_TRUE(big.contains(big));
  EXPECT_FALSE(big.contains(Cube::from_string("0--")));
}

TEST(Cube, IntersectAndDistance) {
  const Cube a = Cube::from_string("1-0");
  const Cube b = Cube::from_string("11-");
  const auto i = a.intersect(b);
  ASSERT_TRUE(i.has_value());
  EXPECT_EQ(i->to_string(), "110");
  const Cube c = Cube::from_string("0--");
  EXPECT_FALSE(a.intersects(c));
  EXPECT_FALSE(a.intersect(c).has_value());
  EXPECT_EQ(a.distance(c), 1u);
  EXPECT_EQ(Cube::from_string("10-").distance(Cube::from_string("01-")), 2u);
}

TEST(Cube, SupercubeIsSmallestCommonSuperset) {
  const Cube a = Cube::from_string("110");
  const Cube b = Cube::from_string("100");
  const Cube s = a.supercube(b);
  EXPECT_EQ(s.to_string(), "1-0");
  EXPECT_TRUE(s.contains(a));
  EXPECT_TRUE(s.contains(b));
}

TEST(Cube, MintermMembership) {
  const Cube c = Cube::from_string("1-0");
  EXPECT_TRUE(c.contains_minterm(0b001));   // a=1,b=0,c=0
  EXPECT_TRUE(c.contains_minterm(0b011));
  EXPECT_FALSE(c.contains_minterm(0b101));  // c=1 conflicts
  EXPECT_FALSE(c.contains_minterm(0b000));  // a=0 conflicts
}

TEST(Cube, CofactorDropsOrKills) {
  const Cube c = Cube::from_string("1-0");
  EXPECT_EQ(c.cofactor(0, true)->to_string(), "--0");
  EXPECT_FALSE(c.cofactor(0, false).has_value());
  EXPECT_EQ(c.cofactor(1, true)->to_string(), "1-0");  // absent literal
}

TEST(Cube, WideCubesSpanWordBoundary) {
  Cube c(80);
  c.set_literal(3, true);
  c.set_literal(70, false);
  EXPECT_EQ(c.num_literals(), 2u);
  EXPECT_EQ(c.literal(70), 0);
  Cube d(80);
  d.set_literal(70, true);
  EXPECT_FALSE(c.intersects(d));
}

TEST(Cube, LitsAndBddInterop) {
  BddManager mgr(4);
  const Cube c = Cube::from_string("1--0");
  EXPECT_EQ(c.to_bdd(mgr), mgr.var(0) & ~mgr.var(3));
  EXPECT_EQ(Cube::from_lits(c.to_lits()), c);
}

TEST(Cube, Equality) {
  EXPECT_EQ(Cube::from_string("1-0"), Cube::from_string("1-0"));
  EXPECT_FALSE(Cube::from_string("1-0") == Cube::from_string("1-1"));
}

}  // namespace
}  // namespace bidec
