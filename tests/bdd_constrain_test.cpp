// Generalized cofactors (constrain / restrict) and the restrict-based
// don't-care cover minimization.
#include <gtest/gtest.h>

#include <random>

#include "bdd/bdd.h"
#include "isf/isf.h"
#include "tt/truth_table.h"

namespace bidec {
namespace {

class ConstrainProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConstrainProperty, AgreesOnCareSet) {
  std::mt19937_64 rng(GetParam());
  const unsigned nv = 4 + GetParam() % 4;
  BddManager mgr(nv);
  const TruthTable f_tt = TruthTable::random(nv, rng);
  TruthTable c_tt = TruthTable::random(nv, rng, 0.4);
  if (c_tt.is_zero()) c_tt.set(0, true);
  const Bdd f = f_tt.to_bdd(mgr);
  const Bdd c = c_tt.to_bdd(mgr);

  for (const Bdd& g : {mgr.constrain(f, c), mgr.restrict_to(f, c)}) {
    // g & c == f & c: the generalized cofactor agrees with f wherever the
    // care set holds.
    EXPECT_EQ(g & c, f & c);
  }
}

TEST_P(ConstrainProperty, RestrictKeepsSupportWithinF) {
  std::mt19937_64 rng(GetParam() + 77);
  const unsigned nv = 6;
  BddManager mgr(nv);
  // f over the first 3 variables only; care set over all 6.
  const TruthTable f3 = TruthTable::random(3, rng);
  Bdd f = mgr.bdd_false();
  for (std::uint64_t m = 0; m < 8; ++m) {
    if (!f3.get(m)) continue;
    CubeLits lits(nv, -1);
    for (unsigned v = 0; v < 3; ++v) lits[v] = static_cast<signed char>((m >> v) & 1);
    f |= mgr.make_cube(lits);
  }
  TruthTable c_tt = TruthTable::random(nv, rng, 0.5);
  if (c_tt.is_zero()) c_tt.set(5, true);
  const Bdd c = c_tt.to_bdd(mgr);

  const Bdd r = mgr.restrict_to(f, c);
  for (unsigned v = 3; v < nv; ++v) {
    EXPECT_FALSE(mgr.depends_on(r, v)) << "restrict leaked variable " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConstrainProperty, ::testing::Range<std::uint64_t>(0, 10));

TEST(Constrain, Identities) {
  BddManager mgr(3);
  const Bdd f = mgr.var(0) ^ mgr.var(1);
  EXPECT_EQ(mgr.constrain(f, mgr.bdd_true()), f);
  EXPECT_EQ(mgr.constrain(f, f), mgr.bdd_true());
  EXPECT_EQ(mgr.constrain(mgr.bdd_true(), mgr.var(2)), mgr.bdd_true());
  EXPECT_EQ(mgr.constrain(mgr.bdd_false(), mgr.var(2)), mgr.bdd_false());
  EXPECT_THROW((void)mgr.constrain(f, mgr.bdd_false()), std::invalid_argument);
  EXPECT_THROW((void)mgr.restrict_to(f, mgr.bdd_false()), std::invalid_argument);
}

TEST(Constrain, CubeCareSetIsCofactor) {
  // constrain(f, literal-cube) equals the ordinary cofactor.
  std::mt19937_64 rng(5);
  BddManager mgr(4);
  const Bdd f = TruthTable::random(4, rng).to_bdd(mgr);
  const Bdd cube = mgr.var(1) & ~mgr.var(3);
  const Bdd expected = mgr.cofactor(mgr.cofactor(f, 1, true), 3, false);
  EXPECT_EQ(mgr.constrain(f, cube), expected);
}

TEST(Constrain, TendsToShrink) {
  // On a dense care set the restrict result should not be (much) larger
  // than f; on structured examples it is strictly smaller.
  BddManager mgr(6);
  Bdd f = (mgr.var(0) & mgr.var(1)) | (mgr.var(2) & mgr.var(3)) |
          (mgr.var(4) & mgr.var(5));
  const Bdd care = mgr.var(0) & mgr.var(1);  // f == 1 on the whole care set
  const Bdd r = mgr.restrict_to(f, care);
  EXPECT_EQ(r, mgr.bdd_true());
}

TEST(MinimizedCover, CompatibleAndNoLarger) {
  std::mt19937_64 rng(6);
  for (int trial = 0; trial < 30; ++trial) {
    BddManager mgr(7);
    const TruthTable on = TruthTable::random(7, rng, 0.4);
    const TruthTable dc = TruthTable::random(7, rng, 0.4);
    const Isf isf((on - dc).to_bdd(mgr), ((~on) - dc).to_bdd(mgr));
    const Bdd cover = isf.minimized_cover();
    EXPECT_TRUE(isf.is_compatible(cover)) << trial;
    // The restrict cover is meant to shrink the diagram; it is not a hard
    // guarantee, so only assert it never blows up.
    EXPECT_LE(cover.dag_size(), 2 * isf.q().dag_size() + 2) << trial;
  }
}

TEST(MinimizedCover, CsfPassthrough) {
  BddManager mgr(3);
  const Bdd f = mgr.var(0) | mgr.var(1);
  const Isf isf = Isf::from_csf(f);
  EXPECT_EQ(isf.minimized_cover(), f);
}

}  // namespace
}  // namespace bidec
