// The end-to-end flow: reordering preserves interface semantics, library
// mapping composes, statistics are populated.
#include "bidec/flow.h"

#include <gtest/gtest.h>

#include <random>

#include "tt/truth_table.h"
#include "verify/verifier.h"

namespace bidec {
namespace {

std::vector<Isf> random_spec(BddManager& mgr, unsigned nv, unsigned outs,
                             std::mt19937_64& rng) {
  std::vector<Isf> spec;
  for (unsigned o = 0; o < outs; ++o) {
    spec.push_back(Isf::from_csf(TruthTable::random(nv, rng).to_bdd(mgr)));
  }
  return spec;
}

TEST(Flow, DefaultMatchesBiDecomposer) {
  std::mt19937_64 rng(3);
  BddManager mgr(6);
  const std::vector<Isf> spec = random_spec(mgr, 6, 2, rng);
  const FlowResult res = synthesize_bidecomp(mgr, spec, {"a", "b", "c", "d", "e", "f"},
                                             {"y0", "y1"});
  EXPECT_TRUE(verify_against_isfs(mgr, res.netlist, spec).ok);
  EXPECT_EQ(res.netlist.input_name(0), "a");
  EXPECT_EQ(res.netlist.output_name(1), "y1");
  EXPECT_EQ(res.bdd_nodes_before, res.bdd_nodes_after);
  EXPECT_GT(res.stats.calls, 0u);
}

class FlowReorder : public ::testing::TestWithParam<OrderHeuristic> {};

TEST_P(FlowReorder, InterfaceOrderIsPreservedUnderReordering) {
  // Order-sensitive function: interleaved pairing forces a real reorder.
  const unsigned pairs = 4;
  BddManager mgr(2 * pairs);
  Bdd f = mgr.bdd_false();
  for (unsigned i = 0; i < pairs; ++i) f |= mgr.var(i) & mgr.var(pairs + i);
  const std::vector<Isf> spec{Isf::from_csf(f)};

  FlowOptions options;
  options.reorder = GetParam();
  const FlowResult res = synthesize_bidecomp(mgr, spec, {}, {}, options);
  // Verification happens against the ORIGINAL manager and order: input i of
  // the netlist must still be variable i.
  EXPECT_TRUE(verify_against_isfs(mgr, res.netlist, spec).ok);
  EXPECT_EQ(res.netlist.input_name(0), "x0");
  // The chosen order must be a permutation.
  std::vector<unsigned> sorted = res.order;
  std::sort(sorted.begin(), sorted.end());
  for (unsigned v = 0; v < sorted.size(); ++v) EXPECT_EQ(sorted[v], v);
}

INSTANTIATE_TEST_SUITE_P(Heuristics, FlowReorder,
                         ::testing::Values(OrderHeuristic::kForce, OrderHeuristic::kSift),
                         // `pinfo`, not `info`: the macro body has its
                         // own `info` that -Wshadow would flag.
                         [](const auto& pinfo) {
                           return pinfo.param == OrderHeuristic::kForce ? "force" : "sift";
                         });

TEST(Flow, SiftShrinksOrderSensitiveSpec) {
  const unsigned pairs = 5;
  BddManager mgr(2 * pairs);
  Bdd f = mgr.bdd_false();
  for (unsigned i = 0; i < pairs; ++i) f |= mgr.var(i) & mgr.var(pairs + i);
  const std::vector<Isf> spec{Isf::from_csf(f)};
  FlowOptions options;
  options.reorder = OrderHeuristic::kSift;
  const FlowResult res = synthesize_bidecomp(mgr, spec, {}, {}, options);
  EXPECT_LT(res.bdd_nodes_after, res.bdd_nodes_before);
  EXPECT_TRUE(verify_against_isfs(mgr, res.netlist, spec).ok);
}

TEST(Flow, LibraryMappingComposes) {
  std::mt19937_64 rng(4);
  BddManager mgr(5);
  const std::vector<Isf> spec = random_spec(mgr, 5, 2, rng);
  FlowOptions options;
  options.library = CellLibrary::nand_inv();
  const FlowResult res = synthesize_bidecomp(mgr, spec, {}, {}, options);
  EXPECT_TRUE(verify_against_isfs(mgr, res.netlist, spec).ok);
  for (const SignalId id : res.netlist.reachable_topo_order()) {
    const GateType t = res.netlist.node(id).type;
    EXPECT_TRUE(t == GateType::kInput || t == GateType::kConst0 ||
                t == GateType::kConst1 || t == GateType::kNot ||
                t == GateType::kNand);
  }
}

TEST(Flow, ReorderPlusLibrary) {
  std::mt19937_64 rng(5);
  BddManager mgr(8);
  const std::vector<Isf> spec = random_spec(mgr, 8, 3, rng);
  FlowOptions options;
  options.reorder = OrderHeuristic::kForce;
  options.library = CellLibrary::paper_default();
  const FlowResult res = synthesize_bidecomp(mgr, spec, {}, {}, options);
  EXPECT_TRUE(verify_against_isfs(mgr, res.netlist, spec).ok);
}

TEST(Flow, WithDontCares) {
  std::mt19937_64 rng(6);
  BddManager mgr(6);
  const TruthTable on = TruthTable::random(6, rng, 0.4);
  const TruthTable dc = TruthTable::random(6, rng, 0.3);
  const std::vector<Isf> spec{
      Isf((on - dc).to_bdd(mgr), ((~on) - dc).to_bdd(mgr))};
  FlowOptions options;
  options.reorder = OrderHeuristic::kSift;
  const FlowResult res = synthesize_bidecomp(mgr, spec, {}, {}, options);
  EXPECT_TRUE(verify_against_isfs(mgr, res.netlist, spec).ok);
}

}  // namespace
}  // namespace bidec
