// Variable grouping (Figs. 5/6), the best-grouping cost function and the
// weak grouping of Section 7.
#include "bidec/grouping.h"

#include <gtest/gtest.h>

#include <random>

#include "bidec/exor_check.h"
#include "tt/truth_table.h"

namespace bidec {
namespace {

Isf random_isf(BddManager& mgr, unsigned nv, std::mt19937_64& rng, double dc_density) {
  const TruthTable on = TruthTable::random(nv, rng, 0.5);
  const TruthTable dc = TruthTable::random(nv, rng, dc_density);
  return Isf((on - dc).to_bdd(mgr), ((~on) - dc).to_bdd(mgr));
}

bool disjoint_sets(const VarGrouping& g) {
  for (const unsigned a : g.xa) {
    for (const unsigned b : g.xb) {
      if (a == b) return false;
    }
  }
  return true;
}

TEST(Grouping, OrGroupingOfDisjointOrFunction) {
  BddManager mgr(6);
  const Bdd f = (mgr.var(0) & mgr.var(1) & mgr.var(2)) | (mgr.var(3) & mgr.var(4) & mgr.var(5));
  const Isf isf = Isf::from_csf(f);
  const auto support = isf.support();
  const VarGrouping g = group_variables_or(isf, support, {});
  ASSERT_FALSE(g.empty());
  EXPECT_TRUE(disjoint_sets(g));
  EXPECT_TRUE(check_or_decomposable(isf, g.xa, g.xb));
  // The ideal grouping separates {0,1,2} from {3,4,5} completely.
  EXPECT_EQ(g.size(), 6u);
  EXPECT_EQ(g.imbalance(), 0u);
}

TEST(Grouping, AndGroupingOfConjunction) {
  BddManager mgr(4);
  const Bdd f = (mgr.var(0) | mgr.var(1)) & (mgr.var(2) | mgr.var(3));
  const Isf isf = Isf::from_csf(f);
  const VarGrouping g = group_variables_and(isf, isf.support(), {});
  ASSERT_FALSE(g.empty());
  EXPECT_TRUE(check_and_decomposable(isf, g.xa, g.xb));
  EXPECT_EQ(g.size(), 4u);
}

TEST(Grouping, ExorGroupingOfParity) {
  BddManager mgr(6);
  Bdd parity = mgr.bdd_false();
  for (unsigned v = 0; v < 6; ++v) parity ^= mgr.var(v);
  const Isf isf = Isf::from_csf(parity);
  const VarGrouping g = group_variables_exor(isf, isf.support(), {});
  ASSERT_FALSE(g.empty());
  // Parity admits a full split.
  EXPECT_EQ(g.size(), 6u);
  EXPECT_TRUE(check_exor_bidecomp(isf, g.xa, g.xb).has_value());
}

TEST(Grouping, NonDecomposableReturnsEmpty) {
  // A 3-input majority-with-a-twist that is not strongly bi-decomposable:
  // 2-out-of-3 majority is not OR/AND/EXOR bi-decomposable with singleton
  // private sets.
  BddManager mgr(3);
  const Bdd a = mgr.var(0), b = mgr.var(1), c = mgr.var(2);
  const Bdd maj = (a & b) | (a & c) | (b & c);
  const Isf isf = Isf::from_csf(maj);
  EXPECT_TRUE(group_variables_or(isf, isf.support(), {}).empty());
  EXPECT_TRUE(group_variables_and(isf, isf.support(), {}).empty());
  EXPECT_TRUE(group_variables_exor(isf, isf.support(), {}).empty());
  EXPECT_FALSE(find_best_grouping(isf, isf.support(), {}).has_value());
}

TEST(Grouping, GroupingsAlwaysValidOnRandomIsfs) {
  std::mt19937_64 rng(31);
  for (int trial = 0; trial < 20; ++trial) {
    BddManager mgr(6);
    const Isf isf = random_isf(mgr, 6, rng, 0.4);
    const auto support = isf.support();
    if (support.size() < 2) continue;
    if (const VarGrouping g = group_variables_or(isf, support, {}); !g.empty()) {
      EXPECT_TRUE(disjoint_sets(g));
      EXPECT_TRUE(check_or_decomposable(isf, g.xa, g.xb));
    }
    if (const VarGrouping g = group_variables_and(isf, support, {}); !g.empty()) {
      EXPECT_TRUE(check_and_decomposable(isf, g.xa, g.xb));
    }
    if (const VarGrouping g = group_variables_exor(isf, support, {}); !g.empty()) {
      EXPECT_TRUE(check_exor_bidecomp(isf, g.xa, g.xb).has_value());
    }
  }
}

TEST(Grouping, BestGroupingPrefersLargerSets) {
  // F = or of two 3-var halves: OR grouping covers all 6 variables, EXOR
  // generally cannot; the best grouping must be the OR one.
  BddManager mgr(6);
  const Bdd f = (mgr.var(0) & mgr.var(1) & mgr.var(2)) | (mgr.var(3) & mgr.var(4) & mgr.var(5));
  const Isf isf = Isf::from_csf(f);
  const auto best = find_best_grouping(isf, isf.support(), {});
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->gate, GateKind::kOr);
  EXPECT_EQ(best->grouping.size(), 6u);
}

TEST(Grouping, BalanceCostBreaksTies) {
  // On 4-var parity the full split is found and the canonical
  // power-of-two-aligned partition is perfectly balanced.
  BddManager mgr(4);
  Bdd parity = mgr.bdd_false();
  for (unsigned v = 0; v < 4; ++v) parity ^= mgr.var(v);
  const Isf isf = Isf::from_csf(parity);
  const auto best = find_best_grouping(isf, isf.support(), {});
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->grouping.size(), 4u);
  EXPECT_EQ(best->grouping.imbalance(), 0u);
}

TEST(Grouping, CanonicalSplitKeepsLogDepthOnOddSizes) {
  // 5-var parity: the canonical split is 4|1 (largest power of two below the
  // size), which preserves the ceil(log2 n) tree depth while maximizing
  // shared low blocks across outputs.
  BddManager mgr(5);
  Bdd parity = mgr.bdd_false();
  for (unsigned v = 0; v < 5; ++v) parity ^= mgr.var(v);
  const Isf isf = Isf::from_csf(parity);
  const auto best = find_best_grouping(isf, isf.support(), {});
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->grouping.size(), 5u);
  EXPECT_EQ(best->grouping.xa.size(), 4u);
  EXPECT_EQ(best->grouping.xb.size(), 1u);
}

TEST(Grouping, WeakGroupingFindsGain) {
  std::mt19937_64 rng(32);
  for (int trial = 0; trial < 20; ++trial) {
    BddManager mgr(5);
    const Isf isf = random_isf(mgr, 5, rng, 0.2);
    const auto support = isf.support();
    if (support.size() < 3) continue;
    const auto weak = group_variables_weak(isf, support, {});
    if (!weak) continue;
    EXPECT_EQ(weak->xa.size(), 1u);  // default weak_xa_size = 1
    if (weak->gate == GateKind::kOr) {
      EXPECT_TRUE(check_weak_or_useful(isf, weak->xa));
    } else {
      EXPECT_TRUE(check_weak_and_useful(isf, weak->xa));
    }
  }
}

TEST(Grouping, WeakGroupingRespectsXaSizeOption) {
  std::mt19937_64 rng(33);
  BddManager mgr(6);
  const Isf isf = random_isf(mgr, 6, rng, 0.1);
  BidecOptions options;
  options.weak_xa_size = 2;
  const auto weak = group_variables_weak(isf, isf.support(), options);
  if (weak) {
    EXPECT_LE(weak->xa.size(), 2u);
  }
}

TEST(Grouping, WeakGroupingEmptyForParity) {
  BddManager mgr(4);
  Bdd parity = mgr.bdd_false();
  for (unsigned v = 0; v < 4; ++v) parity ^= mgr.var(v);
  const Isf isf = Isf::from_csf(parity);
  EXPECT_FALSE(group_variables_weak(isf, isf.support(), {}).has_value());
}

TEST(Grouping, RegroupOptionStaysValid) {
  std::mt19937_64 rng(34);
  BidecOptions options;
  options.regroup = true;
  for (int trial = 0; trial < 10; ++trial) {
    BddManager mgr(6);
    const Isf isf = random_isf(mgr, 6, rng, 0.5);
    const auto support = isf.support();
    if (support.size() < 2) continue;
    if (const VarGrouping g = group_variables_or(isf, support, options); !g.empty()) {
      EXPECT_TRUE(check_or_decomposable(isf, g.xa, g.xb));
    }
  }
}

}  // namespace
}  // namespace bidec
