// Benchmark generators: interface sizes match the paper's tables; the
// exactly-defined functions have their known mathematical properties.
#include "benchgen/benchgen.h"

#include <gtest/gtest.h>

namespace bidec {
namespace {

TEST(Benchgen, Table2SuiteMatchesPaperInterface) {
  // Columns "ins"/"outs" of Table 2.
  const struct {
    const char* name;
    unsigned ins, outs;
  } expected[] = {
      {"9sym", 9, 1},  {"alu4", 14, 8},  {"cps", 24, 109}, {"duke2", 22, 29},
      {"e64", 65, 65}, {"misex2", 25, 18}, {"pdc", 16, 40}, {"spla", 16, 46},
      {"vg2", 25, 8},  {"16sym8", 16, 1},
  };
  const auto& suite = table2_suite();
  ASSERT_EQ(suite.size(), std::size(expected));
  for (std::size_t i = 0; i < suite.size(); ++i) {
    EXPECT_EQ(suite[i].name, expected[i].name);
    EXPECT_EQ(suite[i].num_inputs, expected[i].ins) << suite[i].name;
    EXPECT_EQ(suite[i].num_outputs, expected[i].outs) << suite[i].name;
  }
}

TEST(Benchgen, Table3SuiteNames) {
  const auto& suite = table3_suite();
  ASSERT_EQ(suite.size(), 7u);
  EXPECT_EQ(suite.front().name, "5xp1");
  EXPECT_EQ(suite.back().name, "t481");
}

TEST(Benchgen, FindBenchmarkThrowsOnUnknown) {
  EXPECT_THROW((void)find_benchmark("nope"), std::out_of_range);
  EXPECT_EQ(find_benchmark("9sym").num_inputs, 9u);
}

TEST(Benchgen, BuildsMatchDeclaredOutputCount) {
  for (const Benchmark& b : full_suite()) {
    if (b.num_inputs > 30) continue;  // keep the test quick; e64 covered below
    BddManager mgr(b.num_inputs);
    const std::vector<Isf> isfs = b.build(mgr);
    EXPECT_EQ(isfs.size(), b.num_outputs) << b.name;
    for (const Isf& isf : isfs) {
      EXPECT_TRUE((isf.q() & isf.r()).is_false()) << b.name;
    }
  }
}

TEST(Benchgen, WeightIndicatorsPartitionTheSpace) {
  BddManager mgr(6);
  const std::vector<Bdd> w = weight_indicators(mgr, 6);
  ASSERT_EQ(w.size(), 7u);
  Bdd union_all = mgr.bdd_false();
  for (const Bdd& wk : w) union_all |= wk;
  EXPECT_TRUE(union_all.is_true());
  for (std::size_t i = 0; i < w.size(); ++i) {
    for (std::size_t j = i + 1; j < w.size(); ++j) {
      EXPECT_TRUE((w[i] & w[j]).is_false());
    }
  }
  // Binomial counts.
  EXPECT_DOUBLE_EQ(mgr.sat_count(w[3]), 20.0);
  EXPECT_DOUBLE_EQ(mgr.sat_count(w[0]), 1.0);
}

TEST(Benchgen, NineSymIsTotallySymmetricWithCorrectWindow) {
  BddManager mgr(9);
  const std::vector<Isf> isfs = find_benchmark("9sym").build(mgr);
  const Bdd f = isfs[0].q();
  // Symmetry: swapping any two adjacent variables preserves the function.
  std::vector<unsigned> perm(9);
  for (unsigned v = 0; v < 9; ++v) perm[v] = v;
  std::swap(perm[2], perm[3]);
  EXPECT_EQ(mgr.permute(f, perm), f);
  // Window: on iff weight in {3..6}.
  std::vector<bool> in(9, false);
  for (unsigned k = 0; k < 9; ++k) in[k] = k < 3;  // weight 3
  EXPECT_TRUE(mgr.eval(f, in));
  in[3] = in[4] = in[5] = true;  // weight 6
  EXPECT_TRUE(mgr.eval(f, in));
  in[6] = true;  // weight 7
  EXPECT_FALSE(mgr.eval(f, in));
  EXPECT_FALSE(mgr.eval(f, std::vector<bool>(9, false)));  // weight 0
}

TEST(Benchgen, RdFamilyEncodesTheWeight) {
  const struct {
    const char* name;
    unsigned ins, outs;
  } rds[] = {{"rd53", 5, 3}, {"rd73", 7, 3}, {"rd84", 8, 4}};
  for (const auto& rd : rds) {
    BddManager mgr(rd.ins);
    const std::vector<Isf> isfs = find_benchmark(rd.name).build(mgr);
    ASSERT_EQ(isfs.size(), rd.outs) << rd.name;
    for (unsigned weight = 0; weight <= rd.ins; ++weight) {
      std::vector<bool> in(rd.ins, false);
      for (unsigned k = 0; k < weight; ++k) in[k] = true;
      for (unsigned bit = 0; bit < rd.outs; ++bit) {
        EXPECT_EQ(mgr.eval(isfs[bit].q(), in), ((weight >> bit) & 1) != 0)
            << rd.name << " weight " << weight << " bit " << bit;
      }
    }
  }
}

TEST(Benchgen, AluAddOperation) {
  // alu2 stand-in: ctl=0 is ADD over 3-bit operands.
  const Benchmark& b = find_benchmark("alu2");
  BddManager mgr(b.num_inputs);
  const std::vector<Isf> isfs = b.build(mgr);
  // a=3 (011), b=5 (101) -> sum=8 (1000).
  std::vector<bool> in(10, false);
  in[0] = true;  in[1] = true;            // a = 3
  in[3] = true;  in[5] = true;            // b = 5
  // ctl bits 6..9 all 0 -> ADD
  unsigned result = 0;
  for (unsigned bit = 0; bit < 4; ++bit) {
    if (mgr.eval(isfs[bit].q(), in)) result |= 1u << bit;
  }
  EXPECT_EQ(result, 8u);
}

TEST(Benchgen, T481IsExorOfTwoHalves) {
  BddManager mgr(16);
  const Bdd f = find_benchmark("t481").build(mgr)[0].q();
  // The function must be EXOR-separable between variables {0..7} and {8..15}:
  // its derivative w.r.t. any first-half variable is independent of the
  // second half.
  const unsigned vars0[] = {0};
  const Bdd d = mgr.derivative(f, 0);
  for (unsigned v = 8; v < 16; ++v) EXPECT_FALSE(mgr.depends_on(d, v));
  (void)vars0;
}

TEST(Benchgen, E64IsOneHot) {
  BddManager mgr(65);
  const std::vector<Isf> isfs = find_benchmark("e64").build(mgr);
  ASSERT_EQ(isfs.size(), 65u);
  // At most one output is on for any input: outputs are pairwise disjoint.
  for (unsigned i = 0; i < 10; ++i) {
    EXPECT_TRUE((isfs[i].q() & isfs[i + 1].q()).is_false());
  }
  // out_3 = ~x0 ~x1 ~x2 x3.
  EXPECT_EQ(isfs[3].q(),
            ~mgr.var(0) & ~mgr.var(1) & ~mgr.var(2) & mgr.var(3));
}

TEST(Benchgen, RandomPlaIsDeterministic) {
  const PlaFile p1 = random_control_pla(10, 5, 20, 3, 6, 2, 0.1, 42);
  const PlaFile p2 = random_control_pla(10, 5, 20, 3, 6, 2, 0.1, 42);
  ASSERT_EQ(p1.rows.size(), p2.rows.size());
  for (std::size_t i = 0; i < p1.rows.size(); ++i) {
    EXPECT_EQ(p1.rows[i].inputs, p2.rows[i].inputs);
    EXPECT_EQ(p1.rows[i].outputs, p2.rows[i].outputs);
  }
  const PlaFile p3 = random_control_pla(10, 5, 20, 3, 6, 2, 0.1, 43);
  bool any_diff = false;
  for (std::size_t i = 0; i < p1.rows.size(); ++i) {
    any_diff |= p1.rows[i].inputs != p3.rows[i].inputs;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Benchgen, RandomPlaRespectsLiteralBounds) {
  const PlaFile pla = random_control_pla(12, 4, 30, 4, 7, 2, 0.0, 7);
  for (const PlaFile::Row& row : pla.rows) {
    const auto lits = static_cast<unsigned>(
        std::count_if(row.inputs.begin(), row.inputs.end(),
                      [](char c) { return c != '-'; }));
    EXPECT_LE(lits, 7u);
    EXPECT_GE(lits, 1u);
  }
}

TEST(Benchgen, StandInsAreFlagged) {
  EXPECT_FALSE(find_benchmark("9sym").stand_in);
  EXPECT_FALSE(find_benchmark("rd84").stand_in);
  EXPECT_FALSE(find_benchmark("16sym8").stand_in);
  EXPECT_TRUE(find_benchmark("alu4").stand_in);
  EXPECT_TRUE(find_benchmark("cps").stand_in);
  EXPECT_TRUE(find_benchmark("t481").stand_in);
}

TEST(Benchgen, MultiplierNetlistComputesProducts) {
  // Exhaustive against integer multiplication for a couple of widths,
  // including a rectangular one.
  const struct {
    unsigned na, nb;
  } sizes[] = {{2, 2}, {3, 4}, {4, 3}};
  for (const auto [na, nb] : sizes) {
    const Netlist net = multiplier_netlist(na, nb);
    ASSERT_EQ(net.num_inputs(), na + nb);
    ASSERT_EQ(net.num_outputs(), na + nb);
    for (unsigned a = 0; a < (1u << na); ++a) {
      for (unsigned b = 0; b < (1u << nb); ++b) {
        std::vector<bool> in(na + nb, false);
        // Resolve operand bits by input name (a<i>/b<j>) instead of
        // re-deriving the interleaved layout.
        for (std::size_t i = 0; i < net.num_inputs(); ++i) {
          const std::string& name = net.input_name(i);
          const unsigned bit = static_cast<unsigned>(
              std::stoul(name.substr(1)));
          in[i] = name[0] == 'a' ? ((a >> bit) & 1) : ((b >> bit) & 1);
        }
        const std::vector<bool> out = net.evaluate(in);
        unsigned product = 0;
        for (unsigned k = 0; k < na + nb; ++k) {
          product |= static_cast<unsigned>(out[k]) << k;
        }
        EXPECT_EQ(product, a * b) << na << "x" << nb << " a=" << a
                                  << " b=" << b;
      }
    }
  }
}

TEST(Benchgen, MultiplierInputsAreInterleaved) {
  // The interleaving is the whole point of the generator (it defeats any
  // contiguous BDD order); pin the layout so a reorder doesn't silently
  // turn the benchmark BDD-friendly.
  const Netlist net = multiplier_netlist(3, 3);
  ASSERT_EQ(net.num_inputs(), 6u);
  EXPECT_EQ(net.input_name(0), "a0");
  EXPECT_EQ(net.input_name(1), "b0");
  EXPECT_EQ(net.input_name(2), "a1");
  EXPECT_EQ(net.input_name(3), "b1");
  EXPECT_EQ(net.input_name(4), "a2");
  EXPECT_EQ(net.input_name(5), "b2");
}

TEST(Benchgen, MultiplierBenchmarkBddMatchesNetlist) {
  // bdd_mul (the Benchmark::build path) against the netlist, exhaustively.
  const unsigned na = 3, nb = 3;
  const Benchmark bench = multiplier_benchmark(na, nb);
  EXPECT_EQ(bench.name, "mul3x3");
  EXPECT_EQ(bench.num_inputs, na + nb);
  EXPECT_EQ(bench.num_outputs, na + nb);
  BddManager mgr(bench.num_inputs);
  const std::vector<Isf> isfs = bench.build(mgr);
  ASSERT_EQ(isfs.size(), bench.num_outputs);
  const Netlist net = multiplier_netlist(na, nb);
  for (unsigned m = 0; m < (1u << (na + nb)); ++m) {
    std::vector<bool> in(na + nb);
    for (unsigned v = 0; v < na + nb; ++v) in[v] = (m >> v) & 1;
    const std::vector<bool> out = net.evaluate(in);
    for (unsigned k = 0; k < bench.num_outputs; ++k) {
      EXPECT_EQ(mgr.eval(isfs[k].q(), in), out[k]) << "m=" << m << " k=" << k;
    }
  }
}

}  // namespace
}  // namespace bidec
