// espresso-lite: the result must stay inside the care interval, remain
// irredundant, and never be worse than the input cover.
#include "sop/espresso_lite.h"

#include <gtest/gtest.h>

#include <random>

#include "tt/truth_table.h"

namespace bidec {
namespace {

TruthTable cover_to_tt(const Cover& c) {
  return TruthTable::from_function(c.num_vars(),
                                   [&c](std::uint64_t m) { return c.eval(m); });
}

Cover tt_to_minterm_cover(const TruthTable& t) {
  Cover c(t.num_vars());
  for (std::uint64_t m = 0; m < t.num_minterms(); ++m) {
    if (!t.get(m)) continue;
    Cube cube(t.num_vars());
    for (unsigned v = 0; v < t.num_vars(); ++v) cube.set_literal(v, (m >> v) & 1);
    c.add(std::move(cube));
  }
  return c;
}

class EspressoProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EspressoProperty, ResultInsideCareInterval) {
  std::mt19937_64 rng(GetParam());
  const unsigned nv = 4 + GetParam() % 3;
  const TruthTable on = TruthTable::random(nv, rng, 0.35);
  const TruthTable dc = TruthTable::random(nv, rng, 0.2) - on;
  const Cover on_cover = tt_to_minterm_cover(on);
  const Cover dc_cover = tt_to_minterm_cover(dc);

  const EspressoResult res = espresso_lite(on_cover, dc_cover);
  const TruthTable result = cover_to_tt(res.cover);
  // Covers every on-set minterm.
  EXPECT_TRUE((on - result).is_zero());
  // Never touches the off-set.
  const TruthTable off = ~(on | dc);
  EXPECT_TRUE((result & off).is_zero());
  EXPECT_GE(res.iterations, 1u);
}

TEST_P(EspressoProperty, NeverWorseThanInput) {
  std::mt19937_64 rng(GetParam() + 70);
  const unsigned nv = 5;
  const TruthTable on = TruthTable::random(nv, rng, 0.4);
  const Cover on_cover = tt_to_minterm_cover(on);
  const EspressoResult res = espresso_lite(on_cover, Cover(nv));
  EXPECT_LE(res.cover.size(), on_cover.size());
}

TEST_P(EspressoProperty, ResultIsIrredundant) {
  std::mt19937_64 rng(GetParam() + 140);
  const unsigned nv = 4;
  const TruthTable on = TruthTable::random(nv, rng, 0.4);
  const Cover minimized = espresso_lite(tt_to_minterm_cover(on), Cover(nv)).cover;
  // Removing any cube must uncover some on-set minterm (no dc here).
  for (std::size_t skip = 0; skip < minimized.size(); ++skip) {
    Cover rest(nv);
    for (std::size_t i = 0; i < minimized.size(); ++i) {
      if (i != skip) rest.add(minimized.cube(i));
    }
    EXPECT_NE(cover_to_tt(rest), on) << "cube " << skip << " redundant";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EspressoProperty, ::testing::Range<std::uint64_t>(0, 10));

TEST(Espresso, MergesAdjacentMinterms) {
  // on = {00, 01} over 2 vars: must merge into the single cube "0-" (var0=0).
  TruthTable on(2);
  on.set(0b00, true);
  on.set(0b10, true);  // var1 = 1, var0 = 0
  const Cover minimized = espresso_lite(tt_to_minterm_cover(on), Cover(2)).cover;
  ASSERT_EQ(minimized.size(), 1u);
  EXPECT_EQ(minimized.cube(0).to_string(), "0-");
}

TEST(Espresso, UsesDontCaresToExpand) {
  // on = minterm 11, dc = {01, 10}: the tautology-free best cover is one
  // cube covering on plus whatever dc it wants; literal count must drop to 1
  // or 0 literals.
  TruthTable on(2), dc(2);
  on.set(0b11, true);
  dc.set(0b01, true);
  dc.set(0b10, true);
  const Cover minimized =
      espresso_lite(tt_to_minterm_cover(on), tt_to_minterm_cover(dc)).cover;
  ASSERT_EQ(minimized.size(), 1u);
  EXPECT_LE(minimized.cube(0).num_literals(), 1u);
}

TEST(Espresso, ExpandAgainstOffset) {
  const std::string on_rows[] = {"110", "100"};
  const std::string off_rows[] = {"0--", "--1"};
  const Cover expanded =
      espresso_expand(Cover::from_strings(on_rows), Cover::from_strings(off_rows));
  // Both cubes expand to 1-0 and merge.
  ASSERT_EQ(expanded.size(), 1u);
  EXPECT_EQ(expanded.cube(0).to_string(), "1-0");
}

TEST(Espresso, IrredundantDropsCoveredCube) {
  const std::string rows[] = {"1--", "-1-", "11-"};
  const Cover irr = espresso_irredundant(
      Cover::from_strings(rows), Cover(3));
  EXPECT_EQ(irr.size(), 2u);
}

TEST(Espresso, ReduceShrinksOverlappingCube) {
  // Two overlapping cubes: after reduce, at least one shrinks but the union
  // is preserved together with expand.
  const std::string rows[] = {"1--", "-1-"};
  const Cover original = Cover::from_strings(rows);
  const Cover reduced = espresso_reduce(original, Cover(3));
  EXPECT_EQ(cover_to_tt(reduced) | cover_to_tt(original), cover_to_tt(original));
  // Reduction never grows a cube.
  for (std::size_t i = 0; i < reduced.size(); ++i) {
    EXPECT_TRUE(original.cube(i).contains(reduced.cube(i)));
  }
}

TEST(Espresso, EmptyOnSet) {
  const EspressoResult res = espresso_lite(Cover(3), Cover(3));
  EXPECT_TRUE(res.cover.empty());
}

}  // namespace
}  // namespace bidec
